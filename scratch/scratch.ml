(* Short-run (x100) engine comparison, mimicking the bechamel shape. *)
let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let () =
  let warmed ~decode_cache ~jit =
    let system = Ssos.Reinstall.build ~decode_cache ~jit ~obs:false () in
    Ssos.System.run system ~ticks:30_000;
    system.Ssos.System.machine
  in
  let reps = 20_000 in
  let probe name m =
    ignore (time (fun () -> for _ = 1 to 1000 do Ssx.Machine.run m ~ticks:100 done));
    let dt = time (fun () ->
      for _ = 1 to reps do Ssx.Machine.run m ~ticks:100 done) in
    Printf.printf "%-10s %8.1f ns/x100-run  (%.1f ns/tick)\n%!" name
      (dt /. float_of_int reps *. 1e9) (dt /. float_of_int reps *. 1e7)
  in
  probe "jit" (warmed ~decode_cache:true ~jit:true);
  probe "cached" (warmed ~decode_cache:true ~jit:false);
  probe "uncached" (warmed ~decode_cache:false ~jit:false)
