(* ssos — command-line interface to the reproduction.

   Subcommands:
     demo <design>      run one of the paper's designs and narrate
     experiment <id>    regenerate an evaluation table (T1..T20, or all)
     figures            print the paper's figures as assembling source
     listing <figure>   disassemble an assembled figure
     trace <design>     run a design and dump its last events
     campaign           custom fault-injection campaign
     cluster            multi-machine token ring over lossy links
     serve              closed-loop continuous operation with SLO metrics
     adversary          adversarial daemons + exhaustive abstract checker
     fuzz               differential fuzzing against the reference oracle *)

let ok = Cmdliner.Cmd.Exit.ok

(* ------------------------------------------------------------- metrics *)

(* Every subcommand accepts a global [--metrics[=FORMAT]] flag.  Giving
   it raises the observability switch before the command runs (so
   builders attach their instrumentation) and dumps the whole registry
   after it finishes — as an aligned table, or as JSON lines with
   [--metrics=json]. *)
let metrics_arg =
  let open Cmdliner in
  Arg.(
    value
    & opt ~vopt:(Some `Table) (some (enum [ ("table", `Table); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Enable the observability layer and dump the metric registry \
           after the command: $(b,table) (default) or $(b,json) (one JSON \
           object per line).")

(* Every subcommand also accepts [--no-jit]: drop the process-wide
   default for the basic-block compiler so all machines built by the
   command run on the plain interpreter (same observable behaviour,
   slower — for timing comparisons and differential smoke runs). *)
let no_jit_arg =
  let open Cmdliner in
  Arg.(
    value & flag
    & info [ "no-jit" ]
        ~doc:
          "Disable the basic-block threaded-code compiler; execute \
           through the plain interpreter.  Observable behaviour is \
           identical, only slower.")

let run_with_metrics metrics no_jit thunk =
  if no_jit then Ssx.Machine.set_jit_default false;
  (match metrics with
  | Some _ -> Ssos_obs.Obs.set_enabled true
  | None -> ());
  let code = thunk () in
  (match metrics with
  | Some `Table ->
    Format.printf "%a@." Ssos_obs.Obs.pp_table (Ssos_obs.Obs.snapshot ())
  | Some `Json ->
    print_string (Ssos_obs.Obs.to_json_lines (Ssos_obs.Obs.snapshot ()))
  | None -> ());
  code

(* ---------------------------------------------------------------- demo *)

let heartbeat_tail system n =
  let samples = Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat in
  let total = List.length samples in
  let tail = List.filteri (fun i _ -> i >= total - n) samples in
  String.concat ", "
    (List.map
       (fun s ->
         Printf.sprintf "%d@%d" s.Ssx_devices.Heartbeat.value
           s.Ssx_devices.Heartbeat.tick)
       tail)

let demo_reinstall () =
  Format.printf "== Section 3: periodical reinstall and restart ==@.";
  let system = Ssos.Reinstall.build () in
  Ssos.System.run system ~ticks:30_000;
  Format.printf "booted through Figure 1; last heartbeats: %s@."
    (heartbeat_tail system 5);
  Format.printf "smashing the whole OS RAM image...@.";
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  for i = 0 to Ssos.Layout.os_image_size - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + i) 0xFF
  done;
  Ssos.System.run system ~ticks:120_000;
  let verdict =
    Ssx_stab.Convergence.judge ~spec:(Ssos.Reinstall.weak_spec ())
      ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
      ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
  in
  Format.printf "after 120k further ticks: %a@." Ssx_stab.Convergence.pp_verdict
    verdict;
  Format.printf "last heartbeats: %s@." (heartbeat_tail system 5)

let demo_monitor () =
  Format.printf "== Section 4: reinstall executable and monitor state ==@.";
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  Format.printf "task kernel running; last heartbeats: %s@."
    (heartbeat_tail system 5);
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Format.printf "corrupting the task index and zeroing a divisor...@.";
  Ssx.Memory.write_word mem Ssos.Guest.task_index_addr 0x7777;
  Ssx.Memory.write_word mem (Ssos.Guest.task_table_addr + 2) 0;
  Ssos.System.run system ~ticks:120_000;
  List.iter
    (fun d ->
      Format.printf "  tick %d: monitor repaired [%s]@." d.Ssos.Monitor.tick
        (String.concat "; " d.Ssos.Monitor.violated))
    (Ssos.Monitor.detections monitor);
  Format.printf "last heartbeats: %s@." (heartbeat_tail system 5)

let demo_sched () =
  Format.printf "== Section 5.2: the self-stabilizing scheduler ==@.";
  let sched = Ssos.Sched.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:200_000;
  Array.iteri
    (fun i hb ->
      Format.printf "  process %d: %d heartbeats@." i
        (Ssx_devices.Heartbeat.count hb))
    sched.Ssos.Sched.heartbeats;
  Format.printf "corrupting the process table and the index...@.";
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Memory.write_word mem Ssos.Sched.process_index_addr 0xFFFF;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 1 + 2) 0xABCD;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 2 + 4) 0xFFFF;
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:300_000;
  Array.iteri
    (fun i hb ->
      Format.printf "  process %d: %d heartbeats (still advancing)@." i
        (Ssx_devices.Heartbeat.count hb))
    sched.Ssos.Sched.heartbeats

let demo_primitive () =
  Format.printf "== Section 5.1: the primitive scheduler ==@.";
  let sched = Ssos.Primitive_sched.build () in
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:20_000;
  Array.iteri
    (fun i hb ->
      Format.printf "  process %d: %d executions@." i
        (Ssx_devices.Heartbeat.count hb))
    sched.Ssos.Primitive_sched.heartbeats;
  Format.printf "throwing the instruction pointer into the fill area...@.";
  (Ssx.Machine.cpu sched.Ssos.Primitive_sched.machine).Ssx.Cpu.regs.Ssx.Registers.ip <-
    Ssos.Primitive_sched.region_offset + 0xF00;
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:20_000;
  Array.iteri
    (fun i hb ->
      Format.printf "  process %d: %d executions (round resumed)@." i
        (Ssx_devices.Heartbeat.count hb))
    sched.Ssos.Primitive_sched.heartbeats

(* The design argument is an [Arg.enum]: an unknown name is rejected by
   cmdliner itself, with usage on stderr and a non-zero exit. *)
let demo design =
  (match design with
  | `Reinstall -> demo_reinstall ()
  | `Monitor -> demo_monitor ()
  | `Sched -> demo_sched ()
  | `Primitive -> demo_primitive ());
  ok

(* ---------------------------------------------------------- experiment *)

let print_table format table =
  match format with
  | "json" -> print_endline (Ssos_experiments.Table.to_json table)
  | _ -> Format.printf "%a@." Ssos_experiments.Table.pp table

let experiment id format jobs shards =
  if String.lowercase_ascii id = "all" then begin
    List.iter
      (fun (_, run) -> print_table format (run ?jobs ?shards ()))
      Ssos_experiments.Experiments.all;
    ok
  end
  else
    match Ssos_experiments.Experiments.find id with
    | Some run ->
      print_table format (run ?jobs ?shards ());
      ok
    | None ->
      Format.eprintf "ssos: unknown experiment %s (expected T1..T20 or all)@."
        id;
      Cmdliner.Cmd.Exit.cli_error

(* ------------------------------------------------------------- figures *)

let figures () =
  Format.printf
    "; ================= Figure 1 =================@.%s@.\
     ; ============== Figures 2-5 =================@.%s@."
    Ssos.Reinstall.figure1_source Ssos.Sched.figures_2_to_5_source;
  ok

let listing source =
    let symbols =
      Ssos.Rom_builder.layout_symbols
      @ [ ("RESTART_ENTRY", Ssos.Layout.recovery_offset);
          ("EXCEPTION_ENTRY", 0x600); ("SCRATCH_SEGMENT", 0x0800);
          ("LIVENESS_OFF", Ssos.Layout.os_data_offset + 4) ]
    in
    let image = Ssx_asm.Assemble.assemble ~symbols source in
    Format.printf "%s@."
      (Ssx_asm.Disasm.listing ~symbols:image.Ssx_asm.Assemble.symbols
         image.Ssx_asm.Assemble.bytes);
    ok

(* --------------------------------------------------------------- trace *)

let design_name = function
  | `Reinstall -> "reinstall"
  | `Monitor -> "monitor"
  | `Sched -> "sched"
  | `Primitive -> "primitive"

let trace design ticks entries format =
  let machine =
    match design with
    | `Monitor -> (Ssos.Monitor.build ()).Ssos.Monitor.system.Ssos.System.machine
    | `Sched -> (Ssos.Sched.build ()).Ssos.Sched.machine
    | `Primitive ->
      (Ssos.Primitive_sched.build ()).Ssos.Primitive_sched.machine
    | `Reinstall -> (Ssos.Reinstall.build ()).Ssos.System.machine
  in
  let trace = Ssx.Trace.attach ~capacity:entries machine in
  Ssx.Machine.run machine ~ticks;
  (match format with
  | "json" -> print_endline (Ssx.Trace.to_json trace)
  | _ ->
    Format.printf "last %d events of %s after %d ticks:@.%a@." entries
      (design_name design) ticks Ssx.Trace.dump trace);
  ok

(* ------------------------------------------------------------ campaign *)

let campaign design burst trials seed jobs =
  let spec = Ssos.Reinstall.weak_spec () in
  let build, space =
    match design with
    | `None ->
      ((fun () -> Ssos.Baselines.none ()), Ssos.System.default_fault_space)
    | `Reset_only ->
      ((fun () -> Ssos.Baselines.reset_only ()), Ssos.System.default_fault_space)
    | `Checkpoint ->
      ((fun () -> Ssos.Baselines.checkpoint ()), Ssos.Baselines.checkpoint_fault_space)
    | `Monitor ->
      ( (fun () -> (Ssos.Monitor.build ()).Ssos.Monitor.system),
        Ssos.System.default_fault_space )
    | `Reinstall ->
      ((fun () -> Ssos.Reinstall.build ()), Ssos.System.default_fault_space)
  in
  let summary =
    Ssos_experiments.Runner.heartbeat_campaign ~build ~space ~spec ~burst ?jobs
      ~trials ~seed:(Int64.of_int seed) ()
  in
  let design =
    match design with
    | `None -> "none"
    | `Reset_only -> "reset-only"
    | `Checkpoint -> "checkpoint"
    | `Monitor -> "monitor"
    | `Reinstall -> "reinstall"
  in
  Format.printf "design=%s burst=%d trials=%d seed=%d@." design burst trials seed;
  Format.printf "recovered: %d/%d@." summary.Ssos_experiments.Runner.recoveries
    summary.Ssos_experiments.Runner.trials;
  (match summary.Ssos_experiments.Runner.mean_recovery with
  | Some mean -> Format.printf "mean recovery: %.0f ticks@." mean
  | None -> ());
  ok

(* ------------------------------------------------------------- cluster *)

let pp_states ring =
  String.concat " "
    (Array.to_list
       (Array.map string_of_int (Ssos_net.Net_ring.states ring)))

let cluster nodes drop corrupt delay limit seed shards latency =
  let benign = drop = 0. && corrupt = 0. && delay = 0 in
  let faults ~src:_ ~dst:_ =
    if benign then Ssos_net.Link.benign ()
    else Ssos_net.Link.lossy ~drop ~corrupt ~max_delay:delay ()
  in
  let seed64 = Int64.of_int seed in
  let ring =
    Ssos_net.Net_ring.build ~n:nodes ~latency ~faults ~seed:seed64 ()
  in
  (* With --shards the warmup and tail runs go through the sharded
     stepper and convergence is detected from the sharded per-slot log;
     every printed line is bit-identical for any shard count. *)
  let run cluster ~steps =
    match shards with
    | None -> Ssos_net.Cluster.run cluster ~steps
    | Some shards -> Ssos_net.Cluster.run_sharded ~shards cluster ~steps
  in
  Format.printf "== %d-machine token ring (K=%d) ==@." nodes
    Ssos_net.Net_ring.k;
  if not benign then
    Format.printf "links: drop=%.2f corrupt=%.2f max_delay=%d@." drop corrupt
      delay;
  (match shards with
  | Some s -> Format.printf "stepper: %d shard(s), link latency %d@." s latency
  | None -> if latency > 1 then Format.printf "link latency %d@." latency);
  run ring.Ssos_net.Net_ring.cluster ~steps:400;
  Format.printf "after 400 warmup steps: states [%s], %d privilege(s)@."
    (pp_states ring)
    (Ssos_net.Net_ring.token_count ring);
  Format.printf "corrupting every counter and every view with random words...@.";
  let rng = Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed64 1) in
  for i = 0 to nodes - 1 do
    Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
    Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
  done;
  Format.printf "corrupted: states [%s], %d privilege(s)@." (pp_states ring)
    (Ssos_net.Net_ring.token_count ring);
  (match Ssos_net.Net_ring.run_until_legitimate ?shards ring ~limit with
  | Some steps ->
    Format.printf "single privilege restored after %d cluster steps@." steps;
    run ring.Ssos_net.Net_ring.cluster ~steps:200;
    Format.printf "200 steps later: states [%s], %d privilege(s), %s@."
      (pp_states ring)
      (Ssos_net.Net_ring.token_count ring)
      (if Ssos_net.Net_ring.legitimate ring then "still legitimate"
       else "ILLEGITIMATE");
    ok
  | None ->
    Format.printf "no convergence within %d cluster steps@." limit;
    Cmdliner.Cmd.Exit.cli_error)

(* ----------------------------------------------------------------- rsm *)

let rsm nodes drop rate faults steps limit seed shards latency =
  let seed64 = Int64.of_int seed in
  let link_faults ~src:_ ~dst:_ =
    if drop = 0. then Ssos_net.Link.benign ()
    else Ssos_net.Link.lossy ~drop ~max_delay:1 ()
  in
  let service =
    Ssos_rsm.Service.build ~n:nodes ~latency ~faults:link_faults ~seed:seed64 ()
  in
  let cluster = service.Ssos_rsm.Service.cluster in
  let run ~steps =
    match shards with
    | None -> Ssos_net.Cluster.run cluster ~steps
    | Some shards -> Ssos_net.Cluster.run_sharded ~shards cluster ~steps
  in
  let pp_states () =
    String.concat " "
      (Array.to_list
         (Array.map string_of_int (Ssos_rsm.Service.states service)))
  in
  Format.printf "== %d-replica key-value state machine (K=%d, %d keys) ==@."
    nodes Ssos_rsm.Wire.k Ssos_rsm.Wire.keys;
  if drop > 0. then Format.printf "links: drop=%.2f max_delay=1@." drop;
  (match shards with
  | Some s -> Format.printf "stepper: %d shard(s), link latency %d@." s latency
  | None -> if latency > 1 then Format.printf "link latency %d@." latency);
  run ~steps:400;
  Format.printf "after 400 warmup steps: tokens [%s]@." (pp_states ());
  let rng = Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed64 1) in
  if faults > 0 then begin
    Format.printf "injecting %d machine faults across random replicas...@."
      faults;
    for _ = 1 to faults do
      let i = Ssx_faults.Rng.int rng nodes in
      let sched = service.Ssos_rsm.Service.systems.(i) in
      ignore
        (Ssx_faults.Fault.apply
           (Ssos.Sched.fault_system sched)
           (Ssx_faults.Fault.random rng (Ssos.Sched.fault_space sched)))
    done
  end;
  Format.printf
    "corrupting every replica's counter, view, store and tag row...@.";
  for i = 0 to nodes - 1 do
    Ssos_rsm.Service.corrupt_state service i (Ssx_faults.Rng.int rng 0x10000);
    Ssos_rsm.Service.corrupt_view service i (Ssx_faults.Rng.int rng 0x10000);
    for k = 0 to Ssos_rsm.Wire.keys - 1 do
      Ssos_rsm.Service.corrupt_kv service i k (Ssx_faults.Rng.int rng 0x10000);
      Ssos_rsm.Service.corrupt_tag service i k (Ssx_faults.Rng.int rng 0x10000)
    done
  done;
  let faults_end = Ssos_net.Cluster.steps cluster in
  let samples = Ssos_rsm.Service.observe ?shards service ~steps:limit in
  let verdict =
    Ssx_stab.Distributed.rsm_judge ~window:400 ~samples
      ~end_step:(Ssos_net.Cluster.steps cluster)
  in
  let converged = Ssx_stab.Convergence.converged verdict in
  (match Ssx_stab.Convergence.recovery_time ~faults_end verdict with
  | Some t when converged ->
    Format.printf
      "converged after %d cluster steps: tokens [%s], stores coherent@." t
      (pp_states ())
  | _ -> Format.printf "NO CONVERGENCE within %d cluster steps@." limit);
  let wl =
    Ssos_rsm.Workload.create service
      (Ssos_rsm.Workload.schedule ~rate ~n:nodes
         ~slots:(((steps + nodes - 1) / nodes) + 1)
         ~seed:(Ssx_faults.Rng.derive seed64 2) ())
  in
  Ssos_rsm.Workload.discard wl;
  let init = Ssos_rsm.Service.kv service 0 in
  Ssos_rsm.Workload.run ?shards wl ~steps;
  let committed = Ssos_rsm.Workload.matched wl in
  let linearized =
    Ssx_stab.Distributed.linearizable ~init ~ops:(Ssos_rsm.Workload.ops wl)
    = None
  in
  Format.printf
    "served %d steps of client traffic at rate %.2f: %d injected, %d \
     committed, %d lost, %s@."
    steps rate
    (Ssos_rsm.Workload.injected wl)
    committed (Ssos_rsm.Workload.lost wl)
    (if linearized then "responses linearizable"
     else "RESPONSES NOT LINEARIZABLE");
  if converged && committed > 0 && linearized then ok
  else Cmdliner.Cmd.Exit.cli_error

(* --------------------------------------------------------------- serve *)

let serve nodes rate fault_rate duration epoch slo_avail slo_p99 seed shards
    jobs latency quiet require_incident =
  let open Ssos_serve.Engine in
  let slo = { default_slo with availability = slo_avail; max_p99 = slo_p99 } in
  let pp_lat ppf v =
    if v < 0 then Format.fprintf ppf "   -" else Format.fprintf ppf "%4d" v
  in
  let report =
    if quiet then None
    else
      Some
        (fun w ->
          Format.printf
            "epoch %4d | step %8d | inj %5d com %5d | avail %.3f p50 %a p99 \
             %a |%s%s%s@."
            w.epoch w.step w.w_injected w.w_committed w.w_availability pp_lat
            w.w_p50 pp_lat w.w_p99
            (if w.ring_legal then " ring-legal" else " RING-ILLEGAL")
            (if w.healthy then "" else " UNHEALTHY")
            (if w.faults_landed > 0 then
               Printf.sprintf " +%d fault(s)" w.faults_landed
             else ""))
  in
  let s =
    serve ~nodes ~rate ~fault_rate ~epoch ~latency ~slo ?shards ?jobs ?report
      ~duration ~seed:(Int64.of_int seed) ()
  in
  Format.printf
    "== served %d steps (%d epochs) on %d replicas, fault rate %.4f ==@."
    s.duration s.epochs s.nodes fault_rate;
  Format.printf
    "requests: %d injected, %d committed, %d dropped | availability %.4f \
     (worst window %.4f)@."
    s.injected s.committed s.dropped s.availability s.min_window_availability;
  Format.printf "latency: p50 %a, p99 %a cluster steps@." pp_lat s.p50 pp_lat
    s.p99;
  (match s.fault_arrivals with
  | [] -> Format.printf "faults: none landed@."
  | arrivals ->
    Format.printf "faults:%s@."
      (String.concat ","
         (List.map (fun (k, n) -> Printf.sprintf " %s x%d" k n) arrivals)));
  Format.printf "incidents: %d detected, %d repaired, %d engine reset(s)@."
    s.detected s.repaired s.repairs;
  List.iter
    (fun i ->
      Format.printf "  %-18s opened@%d %s%s@." i.cause i.opened_at
        (match i.closed_at with
        | Some t -> Printf.sprintf "closed@%d (mttr %d steps)" t (t - i.opened_at)
        | None -> "STILL OPEN")
        (if i.repair_fired then " [engine reset]" else ""))
    s.incidents;
  List.iter
    (fun m ->
      Format.printf "  mttr %-13s %d incident(s), mean %.0f, max %d steps@."
        m.kind m.incidents m.mean_steps m.max_steps)
    s.mttr;
  Format.printf "final ring legality: %s@." (if s.final_legal then "yes" else "NO");
  Format.printf "SLO (availability >= %.2f): %s@." slo.availability
    (if s.slo_met then "MET" else "BREACHED");
  if require_incident && s.repaired = 0 then begin
    Format.printf "required a detected+repaired incident: none closed@.";
    Cmdliner.Cmd.Exit.cli_error
  end
  else if s.slo_met then ok
  else Cmdliner.Cmd.Exit.cli_error

(* ----------------------------------------------------------- adversary *)

let make_daemon daemon victim down_from down_for period =
  match daemon with
  | `Round_robin -> ("round-robin", Ssos_net.Cluster.Round_robin)
  | `Fair_random -> ("fair-random", Ssos_net.Cluster.Fair_random)
  | `Starve ->
    let d = Ssx_stab.Adversary.starve ~victim () in
    (d.Ssx_stab.Adversary.name, Ssos_net.Cluster.Daemon d)
  | `Crash ->
    let d = Ssx_stab.Adversary.crash ?period ~down_from ~down_for ~victim () in
    (d.Ssx_stab.Adversary.name, Ssos_net.Cluster.Daemon d)
  | `Adaptive ->
    let d = Ssx_stab.Adversary.adaptive ~k:Ssos_net.Net_ring.k () in
    (d.Ssx_stab.Adversary.name, Ssos_net.Cluster.Daemon d)

(* Exhaustively analyze the abstract ring when the state space fits,
   then drive concrete adversarial trials and check the checker's
   worst-case bound dominates the observed post-burn-in move count.
   A domination violation is a real soundness bug: non-zero exit. *)
let adversary_ring nodes daemon victim down_from down_for period drop trials
    seed limit =
  let k = Ssos_net.Net_ring.k in
  let table =
    match Ssx_stab.Model.create ~n:nodes ~k with
    | exception Invalid_argument _ -> None
    | _ -> Some (Ssx_stab.Model.analyze ~n:nodes ~k)
  in
  (match table with
  | Some tb ->
    let m = tb.Ssx_stab.Model.model in
    Format.printf
      "== exhaustive checker: n=%d K=%d (%d configurations) ==@."
      nodes k m.Ssx_stab.Model.size;
    Format.printf
      "legitimate: %d  divergent: %d  best-case bound: %d  worst-case \
       bound: %d@."
      (Ssx_stab.Model.legitimate_count tb)
      (Ssx_stab.Model.divergent tb)
      (Ssx_stab.Model.best_bound tb)
      (Ssx_stab.Model.worst_bound tb)
  | None ->
    Format.printf
      "== checker skipped: K^n exceeds the state-space cap ==@.");
  let name, policy = make_daemon daemon victim down_from down_for period in
  Format.printf "== %d-node ring under daemon %s, drop=%.2f ==@." nodes name
    drop;
  let seed64 = Int64.of_int seed in
  let violations = ref 0 in
  let recovered = ref 0 in
  for trial = 0 to trials - 1 do
    let faults ~src:_ ~dst:_ =
      if drop = 0. then Ssos_net.Link.benign ()
      else Ssos_net.Link.lossy ~drop ~max_delay:2 ()
    in
    let ring =
      Ssos_net.Net_ring.build ~n:nodes ~policy ~faults
        ~seed:(Ssx_faults.Rng.derive seed64 trial) ()
    in
    Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:200;
    let rng =
      Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed64 (1000 + trial))
    in
    for i = 0 to nodes - 1 do
      Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
      Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
    done;
    let mt = Ssos_net.Net_ring.converge_moves ~limit ring in
    let domination =
      match (table, mt.Ssos_net.Net_ring.converged) with
      | Some tb, Some _ ->
        let bound = Ssx_stab.Model.worst_bound tb in
        if mt.Ssos_net.Net_ring.tail_moves <= bound then "  (<= bound)"
        else begin
          incr violations;
          Printf.sprintf "  VIOLATION: tail %d > bound %d"
            mt.Ssos_net.Net_ring.tail_moves bound
        end
      | _ -> ""
    in
    (match mt.Ssos_net.Net_ring.converged with
    | Some steps ->
      incr recovered;
      Format.printf
        "trial %d: converged in %d steps, %d moves (%d off-model, tail \
         %d)%s@."
        trial steps mt.Ssos_net.Net_ring.total_moves
        mt.Ssos_net.Net_ring.off_model_moves mt.Ssos_net.Net_ring.tail_moves
        domination
    | None ->
      Format.printf
        "trial %d: NO CONVERGENCE in %d steps, %d moves (%d off-model)@."
        trial limit mt.Ssos_net.Net_ring.total_moves
        mt.Ssos_net.Net_ring.off_model_moves)
  done;
  Format.printf "recovered %d/%d, domination violations: %d@." !recovered
    trials !violations;
  if !violations = 0 then ok else Cmdliner.Cmd.Exit.cli_error

let adversary_rsm nodes daemon victim down_from down_for period drop trials
    seed limit =
  let name, policy = make_daemon daemon victim down_from down_for period in
  Format.printf "== %d-replica rsm under daemon %s, drop=%.2f ==@." nodes
    name drop;
  let seed64 = Int64.of_int seed in
  let recovered = ref 0 in
  for trial = 0 to trials - 1 do
    let link_faults ~src:_ ~dst:_ =
      if drop = 0. then Ssos_net.Link.benign ()
      else Ssos_net.Link.lossy ~drop ~max_delay:1 ()
    in
    let service =
      Ssos_rsm.Service.build ~n:nodes ~policy ~faults:link_faults
        ~seed:(Ssx_faults.Rng.derive seed64 trial) ()
    in
    let cluster = service.Ssos_rsm.Service.cluster in
    Ssos_net.Cluster.run cluster ~steps:400;
    let rng =
      Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed64 (1000 + trial))
    in
    for i = 0 to nodes - 1 do
      Ssos_rsm.Service.corrupt_state service i (Ssx_faults.Rng.int rng 0x10000);
      Ssos_rsm.Service.corrupt_view service i (Ssx_faults.Rng.int rng 0x10000);
      for key = 0 to Ssos_rsm.Wire.keys - 1 do
        Ssos_rsm.Service.corrupt_kv service i key
          (Ssx_faults.Rng.int rng 0x10000);
        Ssos_rsm.Service.corrupt_tag service i key
          (Ssx_faults.Rng.int rng 0x10000)
      done
    done;
    let faults_end = Ssos_net.Cluster.steps cluster in
    let samples = Ssos_rsm.Service.observe service ~steps:limit in
    let verdict =
      Ssx_stab.Distributed.rsm_judge ~window:400 ~samples
        ~end_step:(Ssos_net.Cluster.steps cluster)
    in
    match
      ( Ssx_stab.Convergence.converged verdict,
        Ssx_stab.Convergence.recovery_time ~faults_end verdict )
    with
    | true, Some t ->
      incr recovered;
      Format.printf "trial %d: converged in %d steps@." trial t
    | _ -> Format.printf "trial %d: NO CONVERGENCE in %d steps@." trial limit
  done;
  Format.printf "recovered %d/%d@." !recovered trials;
  ok

let adversary rsm nodes daemon victim down_from down_for period drop trials
    seed limit =
  if rsm then
    adversary_rsm nodes daemon victim down_from down_for period drop trials
      seed limit
  else
    adversary_ring nodes daemon victim down_from down_for period drop trials
      seed limit

(* ---------------------------------------------------------------- fuzz *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fuzz seed iters jobs out replay_path =
  match replay_path with
  | Some path -> (
    match Ssx_fuzz.Fuzz_loop.replay (read_file path) with
    | None ->
      Format.printf "%s: no divergence@." path;
      ok
    | Some (tick, detail) ->
      Format.printf "%s: DIVERGES at tick %d: %s@." path tick detail;
      Cmdliner.Cmd.Exit.cli_error)
  | None ->
    let t0 = Unix.gettimeofday () in
    let summary =
      Ssx_fuzz.Fuzz_loop.run ?jobs ~seed:(Int64.of_int seed) ~iters ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." Ssx_fuzz.Fuzz_loop.pp_summary summary;
    Format.printf "%.1fs, %.0f ticks/sec@." dt
      (float_of_int summary.Ssx_fuzz.Fuzz_loop.total_ticks /. dt);
    List.iter
      (fun d ->
        Format.printf "%a@." Ssx_fuzz.Fuzz_loop.pp_divergence d;
        let name =
          Printf.sprintf "fuzz-%d-%d-%d.ssx" seed
            d.Ssx_fuzz.Fuzz_loop.shard d.Ssx_fuzz.Fuzz_loop.iter
        in
        let path = Filename.concat out name in
        let oc = open_out_bin path in
        output_string oc (Ssx_fuzz.Fuzz_loop.reproducer_text d);
        close_out oc;
        Format.printf "reproducer written to %s@." path)
      summary.Ssx_fuzz.Fuzz_loop.divergences;
    if summary.Ssx_fuzz.Fuzz_loop.divergences = [] then ok
    else Cmdliner.Cmd.Exit.cli_error

(* ----------------------------------------------------------------- cli *)

let () =
  let open Cmdliner in
  (* Wrap a deferred command body with the global [--metrics] flag: the
     flag parses for every subcommand, and the body only runs under
     [run_with_metrics]. *)
  let with_metrics thunk_term =
    Term.(const run_with_metrics $ metrics_arg $ no_jit_arg $ thunk_term)
  in
  let design_conv =
    Arg.enum
      [ ("reinstall", `Reinstall); ("monitor", `Monitor); ("sched", `Sched);
        ("primitive", `Primitive) ]
  in
  let design_arg =
    Arg.(value & pos 0 design_conv `Reinstall & info [] ~docv:"DESIGN")
  in
  let demo_cmd =
    Cmd.v (Cmd.info "demo" ~doc:"Run one of the paper's designs and narrate")
      (with_metrics Term.(const (fun d () -> demo d) $ design_arg))
  in
  let id_arg = Arg.(value & pos 0 string "all" & info [] ~docv:"ID") in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for campaign trials (default: the SSOS_JOBS \
             environment variable, else the recommended domain count).")
  in
  let format_arg =
    Arg.(
      value
      & opt string "text"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,text) (aligned columns) or $(b,json).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the cluster stepper across N domains (within each \
             trial).  Results are bit-identical for any shard count; \
             clusters with link latency 1 fall back to sequential \
             stepping.")
  in
  let experiment_cmd =
    Cmd.v (Cmd.info "experiment" ~doc:"Regenerate an evaluation table (T1..T20)")
      (with_metrics
         Term.(
           const (fun id format jobs shards () -> experiment id format jobs shards)
           $ id_arg $ format_arg $ jobs_arg $ shards_arg))
  in
  let figures_cmd =
    Cmd.v (Cmd.info "figures" ~doc:"Print the paper's figures as source")
      (with_metrics Term.(const (fun () () -> figures ()) $ const ()))
  in
  let which_conv =
    Arg.enum
      [ ("1", Ssos.Reinstall.figure1_source);
        ("figure1", Ssos.Reinstall.figure1_source);
        ("2-5", Ssos.Sched.figures_2_to_5_source);
        ("scheduler", Ssos.Sched.figures_2_to_5_source);
        ("monitor", Ssos.Monitor.monitor_source);
        ("checkpoint", Ssos.Baselines.checkpoint_source) ]
  in
  let which_arg =
    Arg.(
      value
      & pos 0 which_conv Ssos.Reinstall.figure1_source
      & info [] ~docv:"FIGURE")
  in
  let listing_cmd =
    Cmd.v (Cmd.info "listing" ~doc:"Disassemble an assembled figure")
      (with_metrics Term.(const (fun w () -> listing w) $ which_arg))
  in
  let ticks_arg = Arg.(value & opt int 30_000 & info [ "ticks" ] ~docv:"N") in
  let entries_arg = Arg.(value & opt int 40 & info [ "entries" ] ~docv:"N") in
  let trace_cmd =
    Cmd.v (Cmd.info "trace" ~doc:"Run a design and dump its last events")
      (with_metrics
         Term.(
           const (fun d ticks entries format () -> trace d ticks entries format)
           $ design_arg $ ticks_arg $ entries_arg $ format_arg))
  in
  let burst_arg = Arg.(value & opt int 40 & info [ "burst" ] ~docv:"N") in
  let trials_arg = Arg.(value & opt int 20 & info [ "trials" ] ~docv:"N") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let campaign_design_conv =
    Arg.enum
      [ ("reinstall", `Reinstall); ("monitor", `Monitor); ("none", `None);
        ("reset-only", `Reset_only); ("checkpoint", `Checkpoint) ]
  in
  let campaign_design_arg =
    Arg.(value & pos 0 campaign_design_conv `Reinstall & info [] ~docv:"DESIGN")
  in
  let campaign_cmd =
    Cmd.v (Cmd.info "campaign" ~doc:"Custom fault-injection campaign")
      (with_metrics
         Term.(
           const (fun d burst trials seed jobs () ->
               campaign d burst trials seed jobs)
           $ campaign_design_arg $ burst_arg $ trials_arg $ seed_arg
           $ jobs_arg))
  in
  let nodes_arg =
    Arg.(
      value & opt int 4
      & info [ "nodes" ] ~docv:"N" ~doc:"Ring size (at least 2).")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P" ~doc:"Per-message link drop probability.")
  in
  let corrupt_arg =
    Arg.(
      value & opt float 0.0
      & info [ "corrupt" ] ~docv:"P"
          ~doc:"Per-message link byte-corruption probability.")
  in
  let delay_arg =
    Arg.(
      value & opt int 0
      & info [ "delay" ] ~docv:"N"
          ~doc:"Maximum extra delivery delay in cluster steps.")
  in
  let limit_arg =
    Arg.(
      value & opt int 5_000
      & info [ "limit" ] ~docv:"N"
          ~doc:"Give up after this many cluster steps.")
  in
  let latency_arg =
    Arg.(
      value & opt int 1
      & info [ "latency" ] ~docv:"N"
          ~doc:
            "Minimum link latency in cluster steps (at least 1).  Values \
             above 1 give $(b,--shards) its synchronization horizon.")
  in
  let cluster_cmd =
    Cmd.v
      (Cmd.info "cluster"
         ~doc:
           "Run Dijkstra's token ring across NIC-connected machines, corrupt \
            every node, and watch the ring reconverge")
      (with_metrics
         Term.(
           const (fun nodes drop corrupt delay limit seed shards latency () ->
               cluster nodes drop corrupt delay limit seed shards latency)
           $ nodes_arg $ drop_arg $ corrupt_arg $ delay_arg $ limit_arg
           $ seed_arg $ shards_arg $ latency_arg))
  in
  let rsm_nodes_arg =
    Arg.(
      value & opt int 5
      & info [ "nodes" ] ~docv:"N" ~doc:"Replica count (at least 2).")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-replica-slot client request probability.")
  in
  let faults_arg =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"N"
          ~doc:
            "Machine faults injected across random replicas before the \
             state corruption.")
  in
  let steps_arg =
    Arg.(
      value & opt int 1_200
      & info [ "steps" ] ~docv:"N" ~doc:"Serve-phase length in cluster steps.")
  in
  let rsm_cmd =
    Cmd.v
      (Cmd.info "rsm"
         ~doc:
           "Run the replicated key-value state machine, corrupt every \
            replica, watch it reconverge, then serve client traffic and \
            check the responses linearize")
      (with_metrics
         Term.(
           const (fun nodes drop rate faults steps limit seed shards latency () ->
               rsm nodes drop rate faults steps limit seed shards latency)
           $ rsm_nodes_arg $ drop_arg $ rate_arg $ faults_arg $ steps_arg
           $ limit_arg $ seed_arg $ shards_arg $ latency_arg))
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Per-step probability of a background fault landing on a \
             uniformly chosen replica (full machine fault space).")
  in
  let duration_arg =
    Arg.(
      value & opt int 3_000
      & info [ "duration" ] ~docv:"N"
          ~doc:"Cluster steps to serve after warmup.")
  in
  let epoch_arg =
    Arg.(
      value & opt int 150
      & info [ "epoch" ] ~docv:"N"
          ~doc:
            "Observation window in cluster steps: metrics, detection and \
             repair all happen at epoch boundaries.")
  in
  let slo_arg =
    Arg.(
      value & opt float 0.85
      & info [ "slo" ] ~docv:"A"
          ~doc:
            "Availability floor in [0,1]: a trailing window below it is an \
             SLO breach, and the exit status reports whether the whole run \
             met it.")
  in
  let slo_p99_arg =
    Arg.(
      value & opt int 0
      & info [ "slo-p99" ] ~docv:"N"
          ~doc:
            "Optional p99 latency ceiling in cluster steps (0 disables the \
             latency detector).")
  in
  let serve_latency_arg =
    Arg.(
      value & opt int 2
      & info [ "latency" ] ~docv:"N"
          ~doc:
            "Link latency in cluster steps (at least 1).  Values above 1 \
             give $(b,--shards) its synchronization horizon.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the per-epoch dashboard lines.")
  in
  let require_incident_arg =
    Arg.(
      value & flag
      & info [ "require-incident" ]
          ~doc:
            "Exit non-zero unless at least one incident was detected and \
             closed by a verified-healthy window (for smoke tests of the \
             full detect/repair cycle).")
  in
  let serve_cmd =
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the replicated service as a closed loop — continuous client \
            traffic, background faults, SLO detection, reset-pulse repair — \
            and report windowed availability, latency percentiles and MTTR")
      (with_metrics
         Term.(
           const (fun nodes rate fault_rate duration epoch slo slo_p99 seed
                      shards jobs latency quiet require_incident () ->
               serve nodes rate fault_rate duration epoch slo slo_p99 seed
                 shards jobs latency quiet require_incident)
           $ rsm_nodes_arg $ rate_arg $ fault_rate_arg $ duration_arg
           $ epoch_arg $ slo_arg $ slo_p99_arg $ seed_arg $ shards_arg
           $ jobs_arg $ serve_latency_arg $ quiet_arg $ require_incident_arg))
  in
  let daemon_conv =
    Arg.enum
      [ ("round-robin", `Round_robin); ("fair-random", `Fair_random);
        ("starve", `Starve); ("crash", `Crash); ("adaptive", `Adaptive) ]
  in
  let daemon_arg =
    Arg.(
      value & opt daemon_conv `Adaptive
      & info [ "daemon" ] ~docv:"DAEMON"
          ~doc:
            "Scheduling daemon: $(b,round-robin), $(b,fair-random), \
             $(b,starve), $(b,crash) or $(b,adaptive) (default).")
  in
  let victim_arg =
    Arg.(
      value & opt int 1
      & info [ "victim" ] ~docv:"I"
          ~doc:"Victim node for the starve and crash daemons.")
  in
  let down_from_arg =
    Arg.(
      value & opt int 200
      & info [ "down-from" ] ~docv:"N"
          ~doc:"First step of the crash daemon's outage window.")
  in
  let down_for_arg =
    Arg.(
      value & opt int 400
      & info [ "down-for" ] ~docv:"N"
          ~doc:"Length of the crash daemon's outage window.")
  in
  let period_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "period" ] ~docv:"N"
          ~doc:"Make the crash daemon's outages recur with this period.")
  in
  let rsm_flag =
    Arg.(
      value & flag
      & info [ "rsm" ]
          ~doc:
            "Drive the replicated state machine instead of the bare token \
             ring (no exhaustive checker or domination check; the rsm \
             protocol state is larger than the K-state abstraction).")
  in
  let adv_trials_arg =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"N" ~doc:"Adversarial trials to run.")
  in
  let adversary_cmd =
    Cmd.v
      (Cmd.info "adversary"
         ~doc:
           "Exhaustively check the abstract K-state ring, then stress the \
            concrete cluster under an adversarial scheduling daemon and \
            verify the worst-case bound dominates the observed moves")
      (with_metrics
         Term.(
           const (fun rsm nodes daemon victim down_from down_for period drop
                      trials seed limit () ->
               adversary rsm nodes daemon victim down_from down_for period
                 drop trials seed limit)
           $ rsm_flag $ nodes_arg $ daemon_arg $ victim_arg $ down_from_arg
           $ down_for_arg $ period_arg $ drop_arg $ adv_trials_arg $ seed_arg
           $ limit_arg))
  in
  let iters_arg =
    Arg.(
      value & opt int 2_000
      & info [ "iters" ] ~docv:"N" ~doc:"Differential programs to run.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for reproducer files.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a checked-in reproducer instead of fuzzing.")
  in
  let fuzz_cmd =
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differentially fuzz the machine against the independent reference \
            interpreter")
      (with_metrics
         Term.(
           const (fun seed iters jobs out replay () ->
               fuzz seed iters jobs out replay)
           $ seed_arg $ iters_arg $ jobs_arg $ out_arg $ replay_arg))
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "ssos" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Toward Self-Stabilizing Operating Systems' (Dolev & \
         Yagel)"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ demo_cmd; experiment_cmd; figures_cmd; listing_cmd; trace_cmd;
            campaign_cmd; cluster_cmd; rsm_cmd; serve_cmd; adversary_cmd;
            fuzz_cmd ]))
