(* The paper's motivating scenario (section 6): "entire years of work
   may be lost when the operating system of an expensive complicated
   device (e.g., spaceship) may reach an arbitrary state (e.g., due to
   soft errors) and be lost forever (e.g., on Mars)."

   A lander's control computer runs for a long mission under a constant
   soft-error rate.  We compare an unprotected computer with one
   protected by the section 3 watchdog/reinstall layer, measuring
   mission availability (fraction of expected control-loop iterations
   actually performed).

   Run with: dune exec examples/mars_lander.exe *)

let mission_ticks = 2_000_000
let soft_error_rate = 0.00002 (* per tick: harsh radiation environment *)

let fly name build space =
  let system = build () in
  let rng = Ssx_faults.Rng.create 7L in
  let schedule =
    Ssx_faults.Injector.Poisson
      { rate = soft_error_rate; start_tick = 0; stop_tick = mission_ticks }
  in
  let injector =
    Ssx_faults.Injector.attach
      (Ssos.System.fault_system system)
      ~rng ~space ~schedule
  in
  Ssos.System.run system ~ticks:mission_ticks;
  let beats = Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat in
  let alive =
    match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
    | Some s -> mission_ticks - s.Ssx_devices.Heartbeat.tick < 100_000
    | None -> false
  in
  Format.printf "%-28s %6d control iterations, %3d faults absorbed, %s@." name
    beats
    (Ssx_faults.Injector.injected_count injector)
    (if alive then "still flying" else "LOST")
  ;
  beats

let () =
  Format.printf
    "Mars lander mission: %d ticks, soft-error rate %.5f/tick@.@."
    mission_ticks soft_error_rate;
  let unprotected =
    fly "unprotected computer"
      (fun () -> Ssos.Baselines.none ~guest:(Ssos.Guest.heartbeat_kernel ()) ())
      Ssos.System.default_fault_space
  in
  let protected_beats =
    fly "with watchdog/reinstall"
      (fun () -> Ssos.Reinstall.build ())
      Ssos.System.default_fault_space
  in
  Format.printf "@.Protected/unprotected useful work: %.1fx@."
    (float_of_int protected_beats /. float_of_int (max 1 unprotected));
  Format.printf
    "(The exact factor varies with the seed; the unprotected computer is\n\
     typically lost within the first handful of control-state faults.)@."
