(* The paper's second motivating scenario (section 6): "the controllers
   of critical facility (e.g., nuclear reactor) may experience
   unexpected fault (e.g., electrical spike) that will cause it to
   reach unexpected state, which may lead to harmful results."

   The section 4 design fits controllers: the operating system's data
   structures (here the task kernel's scheduling table) are guarded by
   consistency predicates evaluated on every watchdog pulse and on every
   exception, with graduated repair — and the executable is refreshed
   from ROM, so even code corruption cannot take the controller down.

   Run with: dune exec examples/reactor_monitor.exe *)

let spike monitor description faults =
  let system = monitor.Ssos.Monitor.system in
  Format.printf "@.-- electrical spike: %s --@." description;
  List.iter
    (fun fault ->
      ignore (Ssx_faults.Fault.apply (Ssos.System.fault_system system) fault))
    faults;
  let before = List.length (Ssos.Monitor.detections monitor) in
  Ssos.System.run system ~ticks:120_000;
  let detections = Ssos.Monitor.detections monitor in
  let fresh = List.filteri (fun i _ -> i >= before) detections in
  if fresh = [] then
    Format.printf "   repaired silently (code refresh / frame validation)@."
  else
    List.iter
      (fun d ->
        Format.printf "   tick %d: predicates repaired [%s]@." d.Ssos.Monitor.tick
          (String.concat "; " d.Ssos.Monitor.violated))
      fresh;
  match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
  | Some s ->
    Format.printf "   control loop alive, last heartbeat %d at tick %d@."
      s.Ssx_devices.Heartbeat.value s.Ssx_devices.Heartbeat.tick
  | None -> Format.printf "   CONTROL LOST@."

let () =
  let monitor = Ssos.Monitor.build () in
  Format.printf "Reactor controller: task kernel + section 4 monitor.@.";
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:60_000;
  Format.printf "Steady state reached (%d heartbeats).@."
    (Ssx_devices.Heartbeat.count monitor.Ssos.Monitor.system.Ssos.System.heartbeat);

  spike monitor "scheduling index driven out of range"
    [ Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_index_addr; value = 0xEE } ];

  spike monitor "rod-control table entry corrupted"
    [ Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_table_addr; value = 0x66 } ];

  spike monitor "divisor zeroed (divide fault on the next dispatch)"
    [ Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_table_addr + 2; value = 0 };
      Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_table_addr + 3; value = 0 } ];

  spike monitor "controller code overwritten"
    (List.init 64 (fun i ->
         Ssx_faults.Fault.Ram_byte
           { addr = (Ssos.Layout.os_segment lsl 4) + i; value = 0xAA }));

  spike monitor "program counter thrown into the weeds"
    [ Ssx_faults.Fault.Sreg (Ssx.Registers.CS, 0x0666);
      Ssx_faults.Fault.Ip 0x1234 ];

  Format.printf "@.%d consistency checks ran; the controller never left its\n\
                 specification for more than one watchdog period.@."
    monitor.Ssos.Monitor.checks
