(* Quickstart: build the paper's simplest design (section 3), watch it
   boot through the Figure 1 watchdog/reinstall procedure, corrupt it,
   and watch it stabilize.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the system: an SSX16 machine whose ROM holds the IDT, the
     Figure 1 procedure and a golden image of the heartbeat kernel; a
     self-stabilizing watchdog pulses the NMI every 50000 ticks. *)
  let system = Ssos.Reinstall.build () in
  Format.printf "Machine built. Nothing is installed in RAM yet:@.";
  Format.printf "  cs:ip = %04X:%04X (the reset vector)@.@."
    (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs.Ssx.Registers.cs
    (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs.Ssx.Registers.ip;

  (* 2. Run: the reset stub leads into the reinstall procedure, which
     copies the OS from ROM and starts it.  The guest reports progress
     on the heartbeat port. *)
  Ssos.System.run system ~ticks:20_000;
  let beats () = Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat in
  (match beats () with
  | first :: _ ->
    Format.printf "First heartbeat %d at tick %d (boot = one Figure-1 pass).@."
      first.Ssx_devices.Heartbeat.value first.Ssx_devices.Heartbeat.tick
  | [] -> assert false);
  Format.printf "Heartbeats so far: %d@.@." (List.length (beats ()));

  (* 3. Transient faults: flip bits anywhere in the soft state. *)
  let rng = Ssx_faults.Rng.create 2026L in
  let faults =
    Ssx_faults.Injector.inject_now
      (Ssos.System.fault_system system)
      ~rng ~space:Ssos.System.default_fault_space 30
  in
  Format.printf "Injected %d random faults, e.g.:@." (List.length faults);
  List.iteri
    (fun i fault ->
      if i < 5 then Format.printf "  %s@." (Ssx_faults.Fault.to_string fault))
    faults;

  (* 4. Keep running; the watchdog/reinstall procedure recovers. *)
  Ssos.System.run system ~ticks:150_000;
  let verdict =
    Ssx_stab.Convergence.judge
      ~spec:(Ssos.Reinstall.weak_spec ())
      ~samples:(beats ())
      ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
  in
  Format.printf "@.Verdict: %a@." Ssx_stab.Convergence.pp_verdict verdict;
  match verdict with
  | Ssx_stab.Convergence.Converged _ ->
    Format.printf "The system stabilized, as Theorem 3.4 promises.@."
  | Ssx_stab.Convergence.Not_converged _ ->
    Format.printf "No convergence - try a longer run.@."
