(* The paper's closing claim, end to end: a self-stabilizing OS is the
   platform distributed self-stabilizing algorithms assume.  Four
   complete SSX16 machines — each booting the section 5.2 scheduler and
   one guest — run Dijkstra's K-state token ring over port-mapped NICs
   and lossy links.  Corrupt every layer on every node, and the cluster
   still reconverges to a single circulating privilege.

   Run with: dune exec examples/cluster_ring.exe *)

let show_states ring =
  let states = Ssos_net.Net_ring.states ring in
  let marks =
    String.concat " "
      (Array.to_list
         (Array.mapi
            (fun i s ->
              if Ssx_stab.Distributed.privileged ~states i then
                Printf.sprintf "[%d]*" s
              else Printf.sprintf " %d  " s)
            states))
  in
  Format.printf "  counters: %s   (%d privilege%s)@." marks
    (Ssos_net.Net_ring.token_count ring)
    (if Ssos_net.Net_ring.token_count ring = 1 then "" else "s")

let () =
  let n = 4 in
  Format.printf
    "A %d-machine cluster running Dijkstra's ring over lossy links (K = %d).@.@."
    n Ssos_net.Net_ring.k;
  let ring =
    Ssos_net.Net_ring.build ~n ~seed:11L
      ~faults:(fun ~src:_ ~dst:_ ->
        Ssos_net.Link.lossy ~drop:0.15 ~max_delay:2 ())
      ()
  in
  Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:400;
  Format.printf "After 400 cluster steps (each node booted its own OS):@.";
  show_states ring;

  Format.printf
    "@.Corrupting every machine: scheduler faults on each node, random@.\
     words in every counter and every predecessor view...@.";
  let rng = Ssx_faults.Rng.create 99L in
  Array.iter
    (fun sched ->
      ignore
        (Ssx_faults.Injector.inject_now
           (Ssos.Sched.fault_system sched)
           ~rng
           ~space:(Ssos.Sched.fault_space sched)
           4))
    ring.Ssos_net.Net_ring.systems;
  for i = 0 to n - 1 do
    Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
    Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
  done;
  show_states ring;

  (match Ssos_net.Net_ring.run_until_legitimate ring ~limit:10_000 with
  | Some steps ->
    Format.printf "@.Single privilege restored after %d cluster steps:@." steps
  | None -> Format.printf "@.Did not reconverge (unexpected):@.");
  show_states ring;

  Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:500;
  Format.printf "@.500 steps later (the token keeps circulating):@.";
  show_states ring;
  Format.printf "@.Still legitimate: %b@." (Ssos_net.Net_ring.legitimate ring)
