(* The full three-layer composition of section 1, at machine level:
   a (simulated, self-stabilizing) processor runs the section 5.2
   self-stabilizing scheduler, which schedules Dijkstra's K-state token
   ring as guest processes communicating through shared RAM.  Corrupt
   all three layers at once and watch them stabilize in order.

   Run with: dune exec examples/token_ring_os.exe *)

let show_states sched =
  let states = Ssos.Token_os.states sched in
  let marks =
    String.concat " "
      (Array.to_list
         (Array.mapi
            (fun i s ->
              if Ssos.Token_os.privileged ~states i then
                Printf.sprintf "[%d]*" s
              else Printf.sprintf " %d  " s)
            states))
  in
  Format.printf "  counters: %s   (%d privilege%s)@." marks
    (Ssos.Token_os.token_count ~states)
    (if Ssos.Token_os.token_count ~states = 1 then "" else "s")

let () =
  let n = 4 in
  Format.printf "Tiny OS scheduling a %d-machine Dijkstra ring (K = %d).@.@." n
    Ssos.Token_os.k;
  let sched = Ssos.Token_os.build ~n () in
  Format.printf "After boot (all counters zero - already legitimate):@.";
  show_states sched;

  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  Format.printf "@.After 400k ticks (the token circulated):@.";
  show_states sched;
  Array.iteri
    (fun i hb ->
      Format.printf "  machine %d took %d moves@." i (Ssx_devices.Heartbeat.count hb))
    sched.Ssos.Sched.heartbeats;

  Format.printf "@.Corrupting every layer at once:@.";
  Format.printf "  - ring counters scrambled,@.";
  Format.printf "  - scheduler process table and index corrupted,@.";
  Format.printf "  - processor registers scrambled.@.";
  let rng = Ssx_faults.Rng.create 2027L in
  for i = 0 to n - 1 do
    Ssos.Token_os.corrupt_state sched i (Ssx_faults.Rng.int rng Ssos.Token_os.k)
  done;
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Memory.write_word mem Ssos.Sched.process_index_addr 0xABCD;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 2 + 2) 0x7777;
  let regs = (Ssx.Machine.cpu sched.Ssos.Sched.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.ip <- Ssx_faults.Rng.int rng 0x10000;
  regs.Ssx.Registers.cs <- Ssx_faults.Rng.int rng 0x10000;
  show_states sched;

  (match Ssos.Token_os.run_until_legitimate sched ~limit:3_000_000 with
  | Some ticks -> Format.printf "@.Re-stabilized after %d ticks:@." ticks
  | None -> Format.printf "@.Did not stabilize (unexpected!)@.");
  show_states sched;

  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  Format.printf "@.400k ticks later (closure - still exactly one token):@.";
  show_states sched;
  Format.printf
    "@.Layer by layer: the processor's fetch-execute stabilized first (the\n\
     scheduler's NMI entry is hardwired), the scheduler masked and\n\
     validated its own state back to legality, and the ring — designed\n\
     for arbitrary initial states — converged on top. Dijkstra [9] meets\n\
     the tiny OS of section 5.@."
