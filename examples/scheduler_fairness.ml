(* Section 5: the tailored tiny operating system.

   Shows both schedulers side by side: the primitive scheduler's exact
   syntactic fairness, and the self-stabilizing scheduler's preemptive
   round-robin surviving corruption of its own process table — the
   fairness and stabilization-preservation requirements of section 5.

   Run with: dune exec examples/scheduler_fairness.exe *)

let bars counts =
  let m = Array.fold_left max 1 counts in
  Array.iteri
    (fun i c ->
      let width = c * 40 / m in
      Format.printf "  process %d %-42s %d@." i (String.make width '#') c)
    counts

let () =
  Format.printf "== Primitive scheduler (section 5.1) ==@.";
  let prim = Ssos.Primitive_sched.build ~n:4 () in
  Ssx.Machine.run prim.Ssos.Primitive_sched.machine ~ticks:100_000;
  bars
    (Array.map Ssx_devices.Heartbeat.count prim.Ssos.Primitive_sched.heartbeats);
  Format.printf "Exact fairness: one execution per process per round.@.@.";

  Format.printf "== Self-stabilizing scheduler (section 5.2) ==@.";
  let sched = Ssos.Sched.build ~n:4 () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  bars (Array.map Ssx_devices.Heartbeat.count sched.Ssos.Sched.heartbeats);
  Format.printf "Preemptive round-robin via the watchdog NMI.@.@.";

  Format.printf "Corrupting the scheduler's own soft state:@.";
  Format.printf "  processIndex <- 0xFFFF, record[1].cs <- garbage,@.";
  Format.printf "  record[2].ip <- garbage, process 3's code zeroed.@.";
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Memory.write_word mem Ssos.Sched.process_index_addr 0xFFFF;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 1 + 2) 0x1357;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 2 + 4) 0xEEEE;
  for i = 0 to Ssos.Layout.proc_image_size - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.proc_segment 3 lsl 4) + i) 0
  done;
  let before =
    Array.map Ssx_devices.Heartbeat.count sched.Ssos.Sched.heartbeats
  in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  let after = Array.map Ssx_devices.Heartbeat.count sched.Ssos.Sched.heartbeats in
  bars (Array.mapi (fun i c -> c - before.(i)) after);
  Format.printf
    "All four processes kept running: the index is masked, the cs is\n\
     validated against processLimits, the ip is masked, and the code is\n\
     refreshed from ROM before each dispatch (Figures 2-5).@.@.";

  Format.printf "== Stabilization preservation (lemma 5.4) ==@.";
  (* A self-stabilizing application: Dijkstra's token ring, stepped by
     process progress, corrupted together with the OS. *)
  let ring = Ssos_algorithms.Token_ring.create ~n:5 ~k:6 in
  Ssos_algorithms.Token_ring.set_state ring 1 4;
  Ssos_algorithms.Token_ring.set_state ring 3 2;
  Format.printf "token ring corrupted: %d privileges@."
    (Ssos_algorithms.Token_ring.token_count ring);
  (match Ssos_algorithms.Token_ring.rounds_to_stabilize ring ~max_rounds:100 with
  | Some rounds ->
    Format.printf "ring re-stabilized in %d fair rounds: %d privilege@." rounds
      (Ssos_algorithms.Token_ring.token_count ring)
  | None -> Format.printf "ring did not stabilize?!@.");
  Format.printf
    "The scheduler gives every process infinitely many fair steps, so\n\
     self-stabilizing applications stabilize on top of it.@."
