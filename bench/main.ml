(* Benchmark harness: regenerates every evaluation table (T1-T10, see
   DESIGN.md and EXPERIMENTS.md), reports deterministic guest-cycle
   costs, and runs host-side micro-benchmarks of the simulator and
   tooling with Bechamel.

   Usage:
     main.exe            full run; writes BENCH_machine.json to the
                         current directory
     main.exe --smoke    quick harness exercise: tables + one short
                         quota-limited Bechamel pass, no JSON written
                         (wired to the [@bench-smoke] dune alias) *)

let smoke = Array.exists (( = ) "--smoke") Sys.argv

let run_tables () =
  List.iter
    (fun (_, run) ->
      Format.printf "%a@." Ssos_experiments.Table.pp (run ()))
    Ssos_experiments.Experiments.all

(* Guest-cycle costs are deterministic properties of the designs, not
   host-time measurements: report them by direct simulation. *)
let guest_cycle_costs () =
  let reinstall_cost = 8 + Ssos.Layout.os_image_size + 7 in
  let switch_cost ~refresh =
    let sched = Ssos.Sched.build ~refresh () in
    let machine = sched.Ssos.Sched.machine in
    let cpu = Ssx.Machine.cpu machine in
    let entry = ref None and costs = ref [] in
    Ssx.Machine.on_event machine (fun m event ->
        match event with
        | Ssx.Cpu.Took_interrupt { nmi = true; _ } ->
          entry := Some (Ssx.Machine.ticks m)
        | Ssx.Cpu.Executed _ -> (
          let cs = cpu.Ssx.Cpu.regs.Ssx.Registers.cs in
          match !entry with
          | Some t0
            when cs >= Ssos.Layout.proc_segment 0
                 && cs <= Ssos.Layout.proc_segment sched.Ssos.Sched.n ->
            costs := (Ssx.Machine.ticks m - t0) :: !costs;
            entry := None
          | Some _ | None -> ())
        | _ -> ());
    Ssx.Machine.run machine ~ticks:300_000;
    match !costs with
    | [] -> 0.
    | costs ->
      float_of_int (List.fold_left ( + ) 0 costs) /. float_of_int (List.length costs)
  in
  [ ("figure1-reinstall-ticks", float_of_int reinstall_cost);
    ("sched-context-switch-refresh-ticks", switch_cost ~refresh:true);
    ("sched-context-switch-norefresh-ticks", switch_cost ~refresh:false) ]

let print_guest_cycle_costs costs =
  Format.printf "== Guest-cycle costs (simulated ticks, deterministic) ==@.";
  List.iter
    (fun (name, v) -> Format.printf "  %-38s %8.0f@." name v)
    costs;
  Format.printf "@."

let micro_tests () =
  let open Bechamel in
  (* The decode-cache pair: the same reinstall system warmed into its
     steady state, once with the write-invalidated decode cache (the
     default) and once re-decoding from raw bytes every tick.  Warming
     matters — it fills the cache and gets the OS past its boot path so
     both benchmarks measure the steady-state watchdog/reinstall loop. *)
  let warmed ~decode_cache =
    let system = Ssos.Reinstall.build ~decode_cache () in
    Ssos.System.run system ~ticks:30_000;
    system
  in
  let tick_cached = warmed ~decode_cache:true in
  let tick_uncached = warmed ~decode_cache:false in
  let machine_tick =
    Test.make ~name:"machine-tick-x100"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_cached.Ssos.System.machine ~ticks:100))
  in
  let machine_tick_uncached =
    Test.make ~name:"machine-tick-x100-uncached"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_uncached.Ssos.System.machine ~ticks:100))
  in
  let assemble_figure1 =
    Test.make ~name:"assemble-figure1"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Reinstall.figure1_source)))
  in
  let assemble_scheduler =
    Test.make ~name:"assemble-scheduler"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Sched.figures_2_to_5_source)))
  in
  let guest = Ssos.Guest.heartbeat_kernel () in
  let guest_image = Ssos.Guest.image_bytes guest in
  let disassemble =
    Test.make ~name:"disassemble-4KiB-image"
      (Staged.stage (fun () -> ignore (Ssx_asm.Disasm.disassemble guest_image)))
  in
  let ring = Ssos_algorithms.Token_ring.create ~n:64 ~k:64 in
  let token_round =
    Test.make ~name:"token-ring-round-n64"
      (Staged.stage (fun () -> ignore (Ssos_algorithms.Token_ring.step_round ring)))
  in
  let build_system =
    Test.make ~name:"build-reinstall-system"
      (Staged.stage (fun () -> ignore (Ssos.Reinstall.build ())))
  in
  Test.make_grouped ~name:"micro"
    [ machine_tick; machine_tick_uncached; assemble_figure1;
      assemble_scheduler; disassemble; token_round; build_system ]

(* Returns [(name, ns_per_run)] rows, sorted by name. *)
let run_micro () =
  let open Bechamel in
  Format.printf "== Micro-benchmarks (host time, Bechamel OLS%s) ==@."
    (if smoke then ", smoke quota" else "");
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:200 ~stabilize:false ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ estimate ] -> (name, estimate) :: acc
        | Some _ | None -> acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Format.printf "  %-28s %12.1f ns/run@." name ns)
    rows;
  (match
     ( List.assoc_opt "micro/machine-tick-x100" rows,
       List.assoc_opt "micro/machine-tick-x100-uncached" rows )
   with
  | Some cached, Some uncached when cached > 0. ->
    Format.printf "  decode-cache speedup:        %11.2fx@." (uncached /. cached)
  | _ -> ());
  Format.printf "@.";
  rows

(* BENCH_machine.json: flat object of benchmark name -> number, so the
   driver (and future sessions) can diff runs mechanically.  Written by
   hand to keep the harness dependency-free. *)
let write_json ~path micro costs =
  let oc = open_out path in
  let json_name name =
    (* Strip Bechamel's group prefix; names contain no characters that
       need escaping. *)
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let rows =
    List.map (fun (n, v) -> (json_name n ^ "-ns-per-run", v)) micro @ costs
  in
  let rows =
    match
      ( List.assoc_opt "micro/machine-tick-x100" micro,
        List.assoc_opt "micro/machine-tick-x100-uncached" micro )
    with
    | Some cached, Some uncached when cached > 0. ->
      rows @ [ ("decode-cache-speedup", uncached /. cached) ]
    | _ -> rows
  in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.2f%s\n" name v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  Format.printf
    "ssos benchmark harness - reproduction of 'Toward Self-Stabilizing \
     Operating Systems' (Dolev & Yagel)@.@.";
  run_tables ();
  let costs = guest_cycle_costs () in
  print_guest_cycle_costs costs;
  let micro = run_micro () in
  if not smoke then write_json ~path:"BENCH_machine.json" micro costs
