(* Benchmark harness: regenerates every evaluation table (T1-T10, see
   DESIGN.md and EXPERIMENTS.md) and then runs host-side
   micro-benchmarks of the simulator and tooling with Bechamel. *)

let run_tables () =
  List.iter
    (fun (_, run) ->
      Format.printf "%a@." Ssos_experiments.Table.pp (run ()))
    Ssos_experiments.Experiments.all

(* Guest-cycle costs are deterministic properties of the designs, not
   host-time measurements: report them by direct simulation. *)
let guest_cycle_costs () =
  Format.printf "== Guest-cycle costs (simulated ticks, deterministic) ==@.";
  let reinstall_cost = 8 + Ssos.Layout.os_image_size + 7 in
  Format.printf "  figure-1 reinstall procedure:        %6d ticks@." reinstall_cost;
  let switch_cost ~refresh =
    let sched = Ssos.Sched.build ~refresh () in
    let machine = sched.Ssos.Sched.machine in
    let cpu = Ssx.Machine.cpu machine in
    let entry = ref None and costs = ref [] in
    Ssx.Machine.on_event machine (fun m event ->
        match event with
        | Ssx.Cpu.Took_interrupt { nmi = true; _ } ->
          entry := Some (Ssx.Machine.ticks m)
        | Ssx.Cpu.Executed _ -> (
          let cs = cpu.Ssx.Cpu.regs.Ssx.Registers.cs in
          match !entry with
          | Some t0
            when cs >= Ssos.Layout.proc_segment 0
                 && cs <= Ssos.Layout.proc_segment sched.Ssos.Sched.n ->
            costs := (Ssx.Machine.ticks m - t0) :: !costs;
            entry := None
          | Some _ | None -> ())
        | _ -> ());
    Ssx.Machine.run machine ~ticks:300_000;
    match !costs with
    | [] -> 0.
    | costs ->
      float_of_int (List.fold_left ( + ) 0 costs) /. float_of_int (List.length costs)
  in
  Format.printf "  scheduler context switch (refresh):  %6.0f ticks@."
    (switch_cost ~refresh:true);
  Format.printf "  scheduler context switch (no refr.): %6.0f ticks@."
    (switch_cost ~refresh:false);
  Format.printf "@."

let micro_tests () =
  let open Bechamel in
  let tick_system = Ssos.Reinstall.build () in
  Ssos.System.run tick_system ~ticks:30_000;
  let machine_tick =
    Test.make ~name:"machine-tick-x100"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_system.Ssos.System.machine ~ticks:100))
  in
  let assemble_figure1 =
    Test.make ~name:"assemble-figure1"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Reinstall.figure1_source)))
  in
  let assemble_scheduler =
    Test.make ~name:"assemble-scheduler"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Sched.figures_2_to_5_source)))
  in
  let guest = Ssos.Guest.heartbeat_kernel () in
  let guest_image = Ssos.Guest.image_bytes guest in
  let disassemble =
    Test.make ~name:"disassemble-4KiB-image"
      (Staged.stage (fun () -> ignore (Ssx_asm.Disasm.disassemble guest_image)))
  in
  let ring = Ssos_algorithms.Token_ring.create ~n:64 ~k:64 in
  let token_round =
    Test.make ~name:"token-ring-round-n64"
      (Staged.stage (fun () -> ignore (Ssos_algorithms.Token_ring.step_round ring)))
  in
  let build_system =
    Test.make ~name:"build-reinstall-system"
      (Staged.stage (fun () -> ignore (Ssos.Reinstall.build ())))
  in
  Test.make_grouped ~name:"micro"
    [ machine_tick; assemble_figure1; assemble_scheduler; disassemble;
      token_round; build_system ]

let run_micro () =
  let open Bechamel in
  Format.printf "== Micro-benchmarks (host time, Bechamel OLS) ==@.";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ estimate ] ->
        Format.printf "  %-28s %12.1f ns/run@." name estimate
      | Some _ | None -> Format.printf "  %-28s (no estimate)@." name)
    (List.sort compare rows);
  Format.printf "@."

let () =
  Format.printf
    "ssos benchmark harness - reproduction of 'Toward Self-Stabilizing \
     Operating Systems' (Dolev & Yagel)@.@.";
  run_tables ();
  guest_cycle_costs ();
  run_micro ()
