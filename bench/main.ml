(* Benchmark harness: regenerates every evaluation table (T1-T10, see
   DESIGN.md and EXPERIMENTS.md), reports deterministic guest-cycle
   costs, runs host-side micro-benchmarks of the simulator and tooling
   with Bechamel, and times the parallel snapshot-reset campaign engine
   against the sequential rebuild path.

   Usage:
     main.exe            full run; writes BENCH_machine.json,
                         BENCH_experiments.json, BENCH_net.json,
                         BENCH_rsm.json, BENCH_fuzz.json,
                         BENCH_adversary.json, BENCH_serve.json and
                         BENCH_obs.json to the current directory
     main.exe --smoke    quick harness exercise: tables + short machine
                         and cluster campaign pairs + one short
                         quota-limited Bechamel pass, no JSON written
                         (wired to the [@bench-smoke] dune alias) *)

let smoke = Array.exists (( = ) "--smoke") Sys.argv

let run_tables () =
  List.iter
    (fun ((_, run) :
           string * (?jobs:int -> ?shards:int -> unit -> Ssos_experiments.Table.t)) ->
      Format.printf "%a@." Ssos_experiments.Table.pp (run ()))
    Ssos_experiments.Experiments.all

(* ------------------------------------------------- campaign engine *)

(* Host-side timing goes through the obs span path: [timed name f]
   returns [f ()]'s result and the elapsed nanoseconds, and — when
   metrics are enabled — records a [span.<name>-ns] histogram in the
   shared registry.  Same timing code as the CLI's [--metrics] runs. *)
let timed = Ssos_obs.Obs.timed

(* The T1-style benchmark campaign: the section-3 reinstall design under
   the default fault space.  [seq] is the old engine (fresh build and
   warmup per trial, one domain); [par] is the new default (snapshot
   reset, four worker domains).  Both must produce the same summary —
   the speedup is pure overhead removal. *)
let campaign_pair () =
  let trials = if smoke then 4 else 16 in
  let horizon = if smoke then 20_000 else 40_000 in
  let warmup = 10_000 in
  let build () = Ssos.Reinstall.build () in
  let run_campaign ~strategy ~jobs () =
    Ssos_experiments.Runner.heartbeat_campaign ~build
      ~space:Ssos.System.default_fault_space
      ~spec:(Ssos.Reinstall.weak_spec ())
      ~burst:10 ~warmup ~horizon ~strategy ~jobs ~trials ~seed:1L ()
  in
  Format.printf "== Campaign engine (T1-style, %d trials) ==@." trials;
  let seq_summary, seq_ns =
    timed "campaign-t1-seq"
      (run_campaign ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:1)
  in
  let par_summary, par_ns =
    timed "campaign-t1-par"
      (run_campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4)
  in
  Format.printf "  sequential rebuild (jobs:1)    %12.0f ns@." seq_ns;
  Format.printf "  snapshot-reset pool (jobs:4)   %12.0f ns@." par_ns;
  Format.printf "  campaign speedup:              %11.2fx@." (seq_ns /. par_ns);
  Format.printf "  summaries bit-identical:       %11s@."
    (if seq_summary = par_summary then "yes" else "NO (BUG)");
  (* Per-trial prefix costs: what one trial pays before its horizon run
     under each strategy — a fresh build plus warmup vs one snapshot
     restore. *)
  let rounds = if smoke then 3 else 10 in
  let _, rebuild_total =
    timed "trial-rebuild-warmup" (fun () ->
        for _ = 1 to rounds do
          let system = build () in
          Ssos.System.run system ~ticks:warmup
        done)
  in
  let rebuild_ns = rebuild_total /. float_of_int rounds in
  let system = build () in
  Ssos.System.run system ~ticks:warmup;
  let snapshot = Ssx.Snapshot.capture system.Ssos.System.machine in
  let _, reset_total =
    timed "trial-reset" (fun () ->
        for _ = 1 to rounds do
          Ssx.Snapshot.restore snapshot system.Ssos.System.machine
        done)
  in
  let reset_ns = reset_total /. float_of_int rounds in
  Format.printf "  trial prefix, rebuild+warmup:  %12.0f ns@." rebuild_ns;
  Format.printf "  trial prefix, snapshot reset:  %12.0f ns@." reset_ns;
  Format.printf "  reset-vs-rebuild speedup:      %11.2fx@.@."
    (rebuild_ns /. reset_ns);
  [ ("campaign-t1-seq-ns", seq_ns);
    ("campaign-t1-par-ns", par_ns);
    ("campaign-speedup", seq_ns /. par_ns);
    ("campaign-trials", float_of_int trials);
    ("campaign-summaries-identical",
     if seq_summary = par_summary then 1.0 else 0.0);
    ("trial-rebuild-warmup-ns", rebuild_ns);
    ("trial-reset-ns", reset_ns);
    (* Nanoseconds a snapshot reset saves over rebuild+warmup, per
       trial. *)
    ("trial-reset-vs-rebuild-ns", rebuild_ns -. reset_ns);
    ("trial-reset-speedup", rebuild_ns /. reset_ns) ]

(* --------------------------------------------------- network cluster *)

(* Cluster throughput and the distributed campaign engine.  Same shape
   as the machine benchmarks: raw steps/sec for a benign and a lossy
   ring, plus a short jobs:1-rebuild vs jobs:4-snapshot-reset campaign
   pair whose summaries must be bit-identical. *)
let net_bench () =
  let steps = if smoke then 600 else 6_000 in
  let throughput ~faults ~span label =
    let ring = Ssos_net.Net_ring.build ~n:4 ?faults ~seed:7L () in
    Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:200;
    let _, ns =
      timed span (fun () ->
          Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps)
    in
    let per_sec = float_of_int steps /. (ns /. 1e9) in
    Format.printf "  %-30s %12.0f cluster-steps/sec@." label per_sec;
    per_sec
  in
  Format.printf "== Network cluster (4-node token ring, %d steps) ==@." steps;
  let benign = throughput ~faults:None ~span:"cluster-benign" "benign links" in
  let lossy =
    throughput
      ~faults:
        (Some
           (fun ~src:_ ~dst:_ ->
             Ssos_net.Link.lossy ~drop:0.2 ~max_delay:2 ()))
      ~span:"cluster-lossy" "lossy links (drop 0.2)"
  in
  let trials = if smoke then 4 else 12 in
  let corrupt_all rng ring =
    for i = 0 to ring.Ssos_net.Net_ring.n - 1 do
      Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
      Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
    done
  in
  let run_campaign ~strategy ~jobs () =
    Ssos_experiments.Runner.ring_campaign
      ~build:(fun () -> Ssos_net.Net_ring.build ~n:4 ~seed:7L ())
      ~perturb:corrupt_all ~horizon:1_500 ~strategy ~jobs ~trials ~seed:2L ()
  in
  let seq_summary, seq_ns =
    timed "ring-campaign-seq"
      (run_campaign ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:1)
  in
  let par_summary, par_ns =
    timed "ring-campaign-par"
      (run_campaign ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4)
  in
  Format.printf "  ring campaign rebuild (jobs:1) %12.0f ns@." seq_ns;
  Format.printf "  ring campaign reset (jobs:4)   %12.0f ns@." par_ns;
  Format.printf "  summaries bit-identical:       %11s@.@."
    (if seq_summary = par_summary then "yes" else "NO (BUG)");
  [ ("cluster-steps-per-sec", benign);
    ("cluster-steps-per-sec-lossy", lossy);
    ("ring-campaign-seq-ns", seq_ns);
    ("ring-campaign-par-ns", par_ns);
    ("ring-campaign-speedup", seq_ns /. par_ns);
    ("ring-campaign-trials", float_of_int trials);
    ("ring-campaign-summaries-identical",
     if seq_summary = par_summary then 1.0 else 0.0) ]

(* Cluster scale: big rings under the sharded stepper vs the sequential
   one.  Latency 32 gives the conservative stepper a 31-step horizon,
   so barrier costs amortize; light slots (8 guest ticks) and machines
   without the decode cache or block compiler keep the *stepper* the
   bottleneck — this section measures stepper scaling, not interpreter
   speed, and at a thousand nodes per-machine jit tables would dominate
   memory.  The two steppers are bit-identical (test/test_net.ml), so
   the speedup is pure wall-clock: the sharded stepper's per-shard
   delivery calendars turn the sequential O(links)-per-step scan into
   O(due links), and on multi-core hosts the shards additionally run in
   parallel (this is the single-core-honest number; see DESIGN.md
   §4h). *)
let net_scale_bench () =
  let shards = 4 in
  let sizes = if smoke then [ 64 ] else [ 64; 256; 1024 ] in
  let steps = if smoke then 200 else 2_000 in
  let reps = if smoke then 1 else 3 in
  Format.printf
    "== Cluster scale (ring, latency 32, %d steps, seq vs shards:%d) ==@."
    steps shards;
  let rows =
    List.concat_map
      (fun n ->
        let throughput span runner =
          let best = ref infinity in
          for _ = 1 to reps do
            let ring =
              Ssos_net.Net_ring.build ~n ~ticks_per_slot:8 ~latency:32
                ~decode_cache:false ~jit:false ~seed:11L ()
            in
            let cluster = ring.Ssos_net.Net_ring.cluster in
            runner cluster ~steps:64;
            let (), ns = timed span (fun () -> runner cluster ~steps) in
            if ns < !best then best := ns
          done;
          float_of_int steps /. (!best /. 1e9)
        in
        let seq =
          throughput
            (Printf.sprintf "cluster-scale-seq-n%d" n)
            Ssos_net.Cluster.run
        in
        let par =
          throughput
            (Printf.sprintf "cluster-scale-shards-n%d" n)
            (fun cluster ~steps ->
              Ssos_net.Cluster.run_sharded ~shards cluster ~steps)
        in
        Format.printf
          "  n=%-5d seq %10.0f steps/sec   shards:%d %10.0f steps/sec   \
           %5.2fx@."
          n seq shards par (par /. seq);
        [ (Printf.sprintf "cluster-steps-per-sec-n%d" n, seq);
          (Printf.sprintf "cluster-steps-per-sec-n%d-shards%d" n shards, par) ]
        @ if n = 1024 then [ ("shard-speedup", par /. seq) ] else [])
      sizes
  in
  Format.printf "@.";
  rows

(* ------------------------------------------------- replicated service *)

(* Client-request throughput of the lib/rsm replicated key-value
   service: requests committed per second and cluster steps per second
   while a seeded open-loop workload runs against a converged cluster.
   n=5 stays within the K=8 single-token guarantee; 16 and 64 measure
   how serving scales when the cluster is larger than the tag space
   (throughput only — see Service's docs).  The shards pair reruns the
   same workload through the sharded stepper and checks the responses
   and the cluster digest are bit-identical. *)
let rsm_bench () =
  let sizes = if smoke then [ 5 ] else [ 5; 16; 64 ] in
  let steps = if smoke then 400 else 2_000 in
  Format.printf "== Replicated state machine (lib/rsm, %d serve steps) ==@."
    steps;
  let size_rows =
    List.concat_map
      (fun n ->
        let service = Ssos_rsm.Service.build ~n ~obs:false ~seed:21L () in
        Ssos_net.Cluster.run service.Ssos_rsm.Service.cluster ~steps:400;
        let wl =
          Ssos_rsm.Workload.create service
            (Ssos_rsm.Workload.schedule ~rate:0.05 ~n
               ~slots:((steps / n) + 1)
               ~seed:22L ())
        in
        Ssos_rsm.Workload.discard wl;
        let (), ns =
          timed
            (Printf.sprintf "rsm-serve-n%d" n)
            (fun () -> Ssos_rsm.Workload.run wl ~steps)
        in
        let steps_per_sec = float_of_int steps /. (ns /. 1e9) in
        let committed = Ssos_rsm.Workload.matched wl in
        let requests_per_sec = float_of_int committed /. (ns /. 1e9) in
        Format.printf
          "  n=%-4d %10.0f cluster-steps/sec %8.0f committed-requests/sec \
           (%d/%d answered)@."
          n steps_per_sec requests_per_sec committed
          (Ssos_rsm.Workload.injected wl);
        [ (Printf.sprintf "rsm-steps-per-sec-n%d" n, steps_per_sec);
          (Printf.sprintf "rsm-requests-per-sec-n%d" n, requests_per_sec) ])
      sizes
  in
  let serve shards =
    let service =
      Ssos_rsm.Service.build ~n:5 ~obs:false ~latency:3 ~seed:23L ()
    in
    Ssos_net.Cluster.run service.Ssos_rsm.Service.cluster ~steps:400;
    let wl =
      Ssos_rsm.Workload.create service
        (Ssos_rsm.Workload.schedule ~rate:0.05 ~n:5 ~slots:((steps / 5) + 1)
           ~seed:23L ())
    in
    Ssos_rsm.Workload.discard wl;
    let (), ns =
      timed
        (Printf.sprintf "rsm-serve-shards%d" shards)
        (fun () -> Ssos_rsm.Workload.run ~shards wl ~steps)
    in
    ( Ssos_rsm.Workload.responses wl,
      Ssos_net.Cluster.digest service.Ssos_rsm.Service.cluster,
      ns )
  in
  let seq_resp, seq_digest, seq_ns = serve 1 in
  let par_resp, par_digest, par_ns = serve 4 in
  let identical = seq_resp = par_resp && seq_digest = par_digest in
  Format.printf "  serve seq (shards:1)  %12.0f ns@." seq_ns;
  Format.printf "  serve par (shards:4)  %12.0f ns@." par_ns;
  Format.printf "  responses+digest bit-identical: %s@.@."
    (if identical then "yes" else "NO (BUG)");
  size_rows
  @ [ ("rsm-serve-seq-ns", seq_ns);
      ("rsm-serve-par-ns", par_ns);
      ("rsm-serve-shard-speedup", seq_ns /. par_ns);
      ("rsm-serve-shards-identical", if identical then 1.0 else 0.0) ]

(* Differential-fuzzer throughput: a fixed-seed campaign against the
   lib/fuzz reference-interpreter oracle — jobs:1 vs jobs:4 (with the
   block compiler, the default) plus a jobs:1 pass through the plain
   interpreter.  All summaries must be bit-identical (shard seeds
   depend only on the campaign seed, results merge in shard order, and
   the compiler never changes observable execution); the interesting
   numbers are trial programs/sec and lock-step ticks/sec. *)
let fuzz_bench () =
  let iters = if smoke then 300 else 2_000 in
  Format.printf "== Differential fuzzer (%d programs, seed 9) ==@." iters;
  let run ~jit ~span jobs =
    timed span (fun () -> Ssx_fuzz.Fuzz_loop.run ~jobs ~jit ~seed:9L ~iters ())
  in
  let seq_summary, seq_ns = run ~jit:true ~span:"fuzz-jobs1" 1 in
  let par_summary, par_ns = run ~jit:true ~span:"fuzz-jobs4" 4 in
  let nojit_summary, nojit_ns = run ~jit:false ~span:"fuzz-nojit" 1 in
  let rate ns = float_of_int iters /. (ns /. 1e9) in
  let tick_rate summary ns =
    float_of_int summary.Ssx_fuzz.Fuzz_loop.total_ticks /. (ns /. 1e9)
  in
  let identical = seq_summary = par_summary && seq_summary = nojit_summary in
  Format.printf "  jobs:1 %12.0f programs/sec %12.0f ticks/sec@."
    (rate seq_ns) (tick_rate seq_summary seq_ns);
  Format.printf "  jobs:4 %12.0f programs/sec %12.0f ticks/sec@."
    (rate par_ns) (tick_rate par_summary par_ns);
  Format.printf "  no-jit %12.0f programs/sec %12.0f ticks/sec@."
    (rate nojit_ns) (tick_rate nojit_summary nojit_ns);
  Format.printf "  jit ticks/sec speedup:         %11.2fx@."
    (nojit_ns /. seq_ns);
  Format.printf "  summaries bit-identical:       %11s@.@."
    (if identical then "yes" else "NO (BUG)");
  [ ("fuzz-programs-per-sec-jobs1", rate seq_ns);
    ("fuzz-programs-per-sec-jobs4", rate par_ns);
    ("fuzz-programs-per-sec-nojit", rate nojit_ns);
    ("fuzz-ticks-per-sec-jobs1", tick_rate seq_summary seq_ns);
    ("fuzz-ticks-per-sec-jobs4", tick_rate par_summary par_ns);
    ("fuzz-ticks-per-sec-nojit", tick_rate nojit_summary nojit_ns);
    ("fuzz-jit-speedup", nojit_ns /. seq_ns);
    ("fuzz-speedup", seq_ns /. par_ns);
    ("fuzz-programs", float_of_int iters);
    ("fuzz-coverage-points",
     float_of_int seq_summary.Ssx_fuzz.Fuzz_loop.coverage_points);
    ("fuzz-divergences",
     float_of_int (List.length seq_summary.Ssx_fuzz.Fuzz_loop.divergences));
    ("fuzz-summaries-identical", if identical then 1.0 else 0.0) ]

(* ----------------------------------------------------------- adversary *)

(* The exhaustive abstract checker and the adversarial scheduling
   daemons (DESIGN.md §4j): configurations analyzed per second by
   Model.analyze — one BFS plus one backward-induction pass over all
   K^n ring configurations — and cluster throughput under the
   state-inspecting adaptive daemon, whose per-step guard inspection
   and scoring is the interesting overhead against the round-robin
   baseline. *)
let adversary_bench () =
  let n, k = if smoke then (4, 5) else (6, 7) in
  let table = ref None in
  let (), analyze_ns =
    timed "model-analyze" (fun () ->
        table := Some (Ssx_stab.Model.analyze ~n ~k))
  in
  let tb = Option.get !table in
  let size = tb.Ssx_stab.Model.model.Ssx_stab.Model.size in
  let configs_per_sec = float_of_int size /. (analyze_ns /. 1e9) in
  Format.printf "== Adversary (checker + adaptive daemon) ==@.";
  Format.printf
    "  checker n=%d K=%d: %d configs  %12.0f configs/sec  (worst-case \
     bound %d, divergent %d)@."
    n k size configs_per_sec
    (Ssx_stab.Model.worst_bound tb)
    (Ssx_stab.Model.divergent tb);
  let steps = if smoke then 600 else 6_000 in
  let throughput label policy span =
    let ring = Ssos_net.Net_ring.build ~n:4 ~policy ~seed:31L () in
    Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:200;
    let (), ns =
      timed span (fun () ->
          Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps)
    in
    let per_sec = float_of_int steps /. (ns /. 1e9) in
    Format.printf "  %-30s %12.0f cluster-steps/sec@." label per_sec;
    per_sec
  in
  let rr =
    throughput "round-robin baseline" Ssos_net.Cluster.Round_robin
      "adversary-ring-rr"
  in
  let adaptive =
    throughput "adaptive daemon"
      (Ssos_net.Cluster.Daemon
         (Ssx_stab.Adversary.adaptive ~k:Ssos_net.Net_ring.k ()))
      "adversary-ring-adaptive"
  in
  Format.printf "  adaptive daemon overhead:      %11.2fx@.@."
    (rr /. adaptive);
  [ ("model-analyze-configs", float_of_int size);
    ("model-analyze-ns", analyze_ns);
    ("model-analyze-configs-per-sec", configs_per_sec);
    ("model-worst-bound", float_of_int (Ssx_stab.Model.worst_bound tb));
    ("adversary-ring-steps-per-sec-round-robin", rr);
    ("adversary-ring-steps-per-sec-adaptive", adaptive);
    ("adaptive-daemon-overhead", rr /. adaptive) ]

(* Continuous-operation engine: one fixed-seed closed-loop serve run
   under a background fault process.  Availability, the worst judged
   window, per-cause MTTR and the incident counters are deterministic
   outputs of the engine; requests/sec and cluster-steps/sec are the
   host-time rows.  The smoke pair asserts the §4k determinism claim
   end to end: the same run on 2 shards must produce the identical
   summary. *)
let serve_bench () =
  let open Ssos_serve.Engine in
  let duration = if smoke then 1_800 else 6_000 in
  let run ~shards = serve ~fault_rate:0.004 ~shards ~duration ~seed:5L () in
  let s, ns = timed "serve-closed-loop" (fun () -> run ~shards:1) in
  let sharded, _ = timed "serve-closed-loop-sharded" (fun () -> run ~shards:2) in
  if sharded <> s then
    failwith "serve summary diverged between 1 and 2 shards";
  let seconds = ns /. 1e9 in
  let requests_per_sec = float_of_int s.injected /. seconds in
  let steps_per_sec = float_of_int s.duration /. seconds in
  let mean_mttr =
    match s.mttr with
    | [] -> 0.
    | rows ->
      List.fold_left (fun acc m -> acc +. m.mean_steps) 0. rows
      /. float_of_int (List.length rows)
  in
  Format.printf "== Continuous operation (ssos serve, closed loop) ==@.";
  Format.printf
    "  %d nodes, %d steps: %12.0f requests/sec  %12.0f cluster-steps/sec@."
    s.nodes s.duration requests_per_sec steps_per_sec;
  Format.printf
    "  availability %.4f (worst window %.4f)  p50 %d p99 %d steps@."
    s.availability s.min_window_availability s.p50 s.p99;
  Format.printf
    "  incidents: %d detected, %d repaired; mean mttr %.0f steps; sharded \
     run bit-identical@.@."
    s.detected s.repaired mean_mttr;
  [ ("serve-requests-per-sec", requests_per_sec);
    ("serve-cluster-steps-per-sec", steps_per_sec);
    ("serve-availability", s.availability);
    ("serve-min-window-availability", s.min_window_availability);
    ("serve-p50-steps", float_of_int s.p50);
    ("serve-p99-steps", float_of_int s.p99);
    ("serve-incidents-detected", float_of_int s.detected);
    ("serve-incidents-repaired", float_of_int s.repaired);
    ("serve-mean-mttr-steps", mean_mttr);
    ("serve-slo-met", if s.slo_met then 1.0 else 0.0) ]

(* Guest-cycle costs are deterministic properties of the designs, not
   host-time measurements: report them by direct simulation. *)
let guest_cycle_costs () =
  let reinstall_cost = 8 + Ssos.Layout.os_image_size + 7 in
  let switch_cost ~refresh =
    let sched = Ssos.Sched.build ~refresh () in
    let machine = sched.Ssos.Sched.machine in
    let cpu = Ssx.Machine.cpu machine in
    let entry = ref None and costs = ref [] in
    Ssx.Machine.on_event machine (fun m event ->
        match event with
        | Ssx.Cpu.Took_interrupt { nmi = true; _ } ->
          entry := Some (Ssx.Machine.ticks m)
        | Ssx.Cpu.Executed _ -> (
          let cs = cpu.Ssx.Cpu.regs.Ssx.Registers.cs in
          match !entry with
          | Some t0
            when cs >= Ssos.Layout.proc_segment 0
                 && cs <= Ssos.Layout.proc_segment sched.Ssos.Sched.n ->
            costs := (Ssx.Machine.ticks m - t0) :: !costs;
            entry := None
          | Some _ | None -> ())
        | _ -> ());
    Ssx.Machine.run machine ~ticks:300_000;
    match !costs with
    | [] -> 0.
    | costs ->
      float_of_int (List.fold_left ( + ) 0 costs) /. float_of_int (List.length costs)
  in
  (* Block-chaining coverage on the steady-state scheduler workload:
     how many block-to-block transfers the compiler served through a
     chain pointer (skipping the table probe) rather than a lookup.
     A deterministic property of the guest code, not a timing. *)
  let jit_chained =
    let sched = Ssos.Sched.build () in
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:300_000;
    match Ssx.Machine.jit sched.Ssos.Sched.machine with
    | Some jit -> float_of_int (Ssx.Block_compiler.chained jit)
    | None -> 0.
  in
  [ ("figure1-reinstall-ticks", float_of_int reinstall_cost);
    ("sched-context-switch-refresh-ticks", switch_cost ~refresh:true);
    ("sched-context-switch-norefresh-ticks", switch_cost ~refresh:false);
    ("jit-chained-entries-sched-300k", jit_chained) ]

let print_guest_cycle_costs costs =
  Format.printf "== Guest-cycle costs (simulated ticks, deterministic) ==@.";
  List.iter
    (fun (name, v) -> Format.printf "  %-38s %8.0f@." name v)
    costs;
  Format.printf "@."

let micro_tests () =
  let open Bechamel in
  (* The execution-engine triple: the same reinstall system warmed into
     its steady state, run through the basic-block compiler (the
     default), through the write-invalidated decode cache alone, and
     re-decoding from raw bytes every tick.  Warming matters — it fills
     the cache / block table and gets the OS past its boot path so all
     three benchmarks measure the steady-state watchdog/reinstall
     loop. *)
  let warmed ~decode_cache ~jit =
    let system = Ssos.Reinstall.build ~decode_cache ~jit () in
    Ssos.System.run system ~ticks:30_000;
    system
  in
  let tick_jit = warmed ~decode_cache:true ~jit:true in
  let tick_cached = warmed ~decode_cache:true ~jit:false in
  let tick_uncached = warmed ~decode_cache:false ~jit:false in
  let machine_tick_jit =
    Test.make ~name:"machine-tick-x100-jit"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_jit.Ssos.System.machine ~ticks:100))
  in
  let machine_tick =
    Test.make ~name:"machine-tick-x100"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_cached.Ssos.System.machine ~ticks:100))
  in
  let machine_tick_uncached =
    Test.make ~name:"machine-tick-x100-uncached"
      (Staged.stage (fun () ->
           Ssx.Machine.run tick_uncached.Ssos.System.machine ~ticks:100))
  in
  let assemble_figure1 =
    Test.make ~name:"assemble-figure1"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Reinstall.figure1_source)))
  in
  let assemble_scheduler =
    Test.make ~name:"assemble-scheduler"
      (Staged.stage (fun () ->
           ignore
             (Ssx_asm.Assemble.assemble
                ~symbols:Ssos.Rom_builder.layout_symbols
                Ssos.Sched.figures_2_to_5_source)))
  in
  let guest = Ssos.Guest.heartbeat_kernel () in
  let guest_image = Ssos.Guest.image_bytes guest in
  let disassemble =
    Test.make ~name:"disassemble-4KiB-image"
      (Staged.stage (fun () -> ignore (Ssx_asm.Disasm.disassemble guest_image)))
  in
  let ring = Ssos_algorithms.Token_ring.create ~n:64 ~k:64 in
  let token_round =
    Test.make ~name:"token-ring-round-n64"
      (Staged.stage (fun () -> ignore (Ssos_algorithms.Token_ring.step_round ring)))
  in
  let build_system =
    Test.make ~name:"build-reinstall-system"
      (Staged.stage (fun () -> ignore (Ssos.Reinstall.build ())))
  in
  Test.make_grouped ~name:"micro"
    [ machine_tick_jit; machine_tick; machine_tick_uncached;
      assemble_figure1; assemble_scheduler; disassemble; token_round;
      build_system ]

(* Runs a Bechamel test group and returns [(name, ns_per_run)] rows,
   sorted by name.  The campaign sections above leave a large major
   heap behind; compact it first so the OLS slopes measure the timed
   loop rather than straggler GC work. *)
let bechamel_rows tests =
  Gc.compact ();
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:200 ~stabilize:false ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ estimate ] -> (name, estimate) :: acc
      | Some _ | None -> acc)
    results []
  |> List.sort compare

let run_micro () =
  Format.printf "== Micro-benchmarks (host time, Bechamel OLS%s) ==@."
    (if smoke then ", smoke quota" else "");
  let rows = bechamel_rows (micro_tests ()) in
  List.iter
    (fun (name, ns) -> Format.printf "  %-28s %12.1f ns/run@." name ns)
    rows;
  (match
     ( List.assoc_opt "micro/machine-tick-x100" rows,
       List.assoc_opt "micro/machine-tick-x100-uncached" rows )
   with
  | Some cached, Some uncached when cached > 0. ->
    Format.printf "  decode-cache speedup:        %11.2fx@." (uncached /. cached)
  | _ -> ());
  (match
     ( List.assoc_opt "micro/machine-tick-x100-jit" rows,
       List.assoc_opt "micro/machine-tick-x100-uncached" rows )
   with
  | Some jit, Some uncached when jit > 0. ->
    Format.printf "  block-compiler speedup:      %11.2fx@." (uncached /. jit)
  | _ -> ());
  Format.printf "@.";
  rows

(* ----------------------------------------------------- observability *)

(* The cost pair behind DESIGN.md §4f: the same warmed reinstall system
   ticked with instrumentation hooks attached ([~obs:true]) and without
   ([~obs:false]), plus a baseline built through the plain pre-obs call
   shape ([build ()] with metrics disabled, which attaches nothing).
   Disabled-mode overhead is baseline-vs-off — the two run identical
   code, so anything above noise would mean the [?obs] plumbing leaks
   cost into the uninstrumented path.  The target is under 2%. *)
let obs_machine_pair () =
  Format.printf "== Observability cost (machine-tick pair, hooks on/off) ==@.";
  let block = if smoke then 100_000 else 400_000 in
  let reps = if smoke then 7 else 11 in
  let warmed build =
    let system = build () in
    Ssos.System.run system ~ticks:30_000;
    system
  in
  (* Min-of-N over interleaved repetitions, each on a freshly built and
     warmed system: baseline and obs-off run identical machine code, so
     an OLS fit on separate quotas would drown the comparison in
     scheduler noise, and a single long-lived instance pins whatever
     heap placement it happened to get.  Rebuilding per repetition
     samples placements; the per-variant minimum converges to the
     machine's best case and is stable to well under a percent. *)
  let variants =
    [| ("obs-tick-baseline", fun () -> Ssos.Reinstall.build ());
       ("obs-tick-off", fun () -> Ssos.Reinstall.build ~obs:false ());
       ("obs-tick-on", fun () -> Ssos.Reinstall.build ~obs:true ()) |]
  in
  let best = Array.make 3 infinity in
  for rep = 0 to reps - 1 do
    (* Rotate the measurement order each repetition so no variant
       always runs first (or last) within a triple. *)
    for k = 0 to 2 do
      let slot = (rep + k) mod 3 in
      let span, build = variants.(slot) in
      let system = warmed build in
      let (), ns =
        timed span (fun () ->
            Ssx.Machine.run system.Ssos.System.machine ~ticks:block)
      in
      if ns < best.(slot) then best.(slot) <- ns
    done
  done;
  let per100 slot = best.(slot) /. float_of_int block *. 100. in
  let base = per100 0 and off_ns = per100 1 and on_ns = per100 2 in
  Format.printf "  machine-tick-x100 baseline     %12.1f ns@." base;
  Format.printf "  machine-tick-x100 obs-off      %12.1f ns@." off_ns;
  Format.printf "  machine-tick-x100 obs-on       %12.1f ns@." on_ns;
  let disabled_pct = (off_ns -. base) /. base *. 100. in
  let enabled_pct = (on_ns -. off_ns) /. off_ns *. 100. in
  Format.printf "  disabled-mode overhead:        %11.2f%%@." disabled_pct;
  Format.printf "  enabled-mode overhead:         %11.2f%%@." enabled_pct;
  Format.printf "  disabled overhead under 2%%:    %11s@.@."
    (if disabled_pct < 2.0 then "yes" else "NO (BUG)");
  [ ("obs-machine-tick-baseline-ns", base);
    ("obs-machine-tick-off-ns", off_ns);
    ("obs-machine-tick-on-ns", on_ns);
    ("obs-disabled-overhead-pct", disabled_pct);
    ("obs-enabled-overhead-pct", enabled_pct);
    ("obs-disabled-under-2pct", if disabled_pct < 2.0 then 1.0 else 0.0) ]

(* Metrics-dump smoke: with metrics enabled, one instrumented system
   run plus a one-trial campaign must leave the registry covering every
   layer the CLI's [--metrics] dump promises — machine, device, fault,
   campaign and pool families all present.  Resets the registry and
   switch afterwards so the rest of the harness stays uninstrumented. *)
let obs_dump_smoke () =
  let open Ssos_obs in
  Obs.reset ();
  Obs.set_enabled true;
  let system = Ssos.Reinstall.build ~obs:true () in
  Ssos.System.run system ~ticks:20_000;
  let (_ : Ssos_experiments.Runner.summary) =
    Ssos_experiments.Runner.heartbeat_campaign
      ~build:(fun () -> Ssos.Reinstall.build ())
      ~space:Ssos.System.default_fault_space
      ~spec:(Ssos.Reinstall.weak_spec ())
      ~burst:4 ~warmup:5_000 ~horizon:10_000
      ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1 ~trials:1
      ~seed:3L ()
  in
  let snap = Obs.snapshot () in
  let covers prefix =
    List.exists
      (fun (row : Obs.row) -> String.starts_with ~prefix row.Obs.name)
      snap.Obs.rows
  in
  let families = [ "machine."; "device."; "fault."; "campaign"; "pool." ] in
  let missing = List.filter (fun family -> not (covers family)) families in
  let events = List.length snap.Obs.recent_events in
  Obs.set_enabled false;
  Obs.reset ();
  Format.printf "== Metrics-dump smoke (registry coverage) ==@.";
  Format.printf "  registry rows:                 %11d@."
    (List.length snap.Obs.rows);
  Format.printf "  recent events:                 %11d@." events;
  (match missing with
  | [] ->
    Format.printf "  families covered:              %11s@.@." "yes"
  | missing ->
    Format.printf "  MISSING families:              %s@.@."
      (String.concat " " missing));
  [ ("obs-smoke-rows", float_of_int (List.length snap.Obs.rows));
    ("obs-smoke-events", float_of_int events);
    ("obs-smoke-families-covered", if missing = [] then 1.0 else 0.0) ]

(* Flat JSON object of benchmark name -> number, so the driver (and
   future sessions) can diff runs mechanically.  Written by hand to
   keep the harness dependency-free. *)
let write_flat_json ~path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.2f%s\n" name v
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

let write_json ~path micro costs =
  let json_name name =
    (* Strip Bechamel's group prefix; names contain no characters that
       need escaping. *)
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let rows =
    List.map (fun (n, v) -> (json_name n ^ "-ns-per-run", v)) micro @ costs
  in
  let rows =
    match
      ( List.assoc_opt "micro/machine-tick-x100" micro,
        List.assoc_opt "micro/machine-tick-x100-uncached" micro )
    with
    | Some cached, Some uncached when cached > 0. ->
      rows @ [ ("decode-cache-speedup", uncached /. cached) ]
    | _ -> rows
  in
  let rows =
    match
      ( List.assoc_opt "micro/machine-tick-x100-jit" micro,
        List.assoc_opt "micro/machine-tick-x100-uncached" micro )
    with
    | Some jit, Some uncached when jit > 0. ->
      rows @ [ ("jit-speedup", uncached /. jit) ]
    | _ -> rows
  in
  write_flat_json ~path rows

let () =
  Format.printf
    "ssos benchmark harness - reproduction of 'Toward Self-Stabilizing \
     Operating Systems' (Dolev & Yagel)@.@.";
  run_tables ();
  let campaign_rows = campaign_pair () in
  let net_rows = net_bench () @ net_scale_bench () in
  let rsm_rows = rsm_bench () in
  let fuzz_rows = fuzz_bench () in
  let adversary_rows = adversary_bench () in
  let serve_rows = serve_bench () in
  let costs = guest_cycle_costs () in
  print_guest_cycle_costs costs;
  let micro = run_micro () in
  let obs_rows = obs_machine_pair () @ obs_dump_smoke () in
  if not smoke then begin
    write_json ~path:"BENCH_machine.json" micro costs;
    write_flat_json ~path:"BENCH_experiments.json" campaign_rows;
    write_flat_json ~path:"BENCH_net.json" net_rows;
    write_flat_json ~path:"BENCH_rsm.json" rsm_rows;
    write_flat_json ~path:"BENCH_fuzz.json" fuzz_rows;
    write_flat_json ~path:"BENCH_adversary.json" adversary_rows;
    write_flat_json ~path:"BENCH_serve.json" serve_rows;
    write_flat_json ~path:"BENCH_obs.json" obs_rows
  end
