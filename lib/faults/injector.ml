type schedule =
  | At of int list
  | Burst of { at : int; count : int }
  | Every of { period : int; start_tick : int; stop_tick : int }
  | Poisson of { rate : float; start_tick : int; stop_tick : int }
  | Nothing

type t = {
  system : Fault.system;
  rng : Rng.t;
  space : Fault.space;
  schedule : schedule;
  mutable log : (int * Fault.t) list;  (* newest first *)
  mutable armed : bool;
}

(* Observability is published only after a fault has actually landed,
   and never consumes randomness, so campaigns with metrics on replay
   the exact fault streams of campaigns with metrics off. *)
let publish tick fault =
  if Ssos_obs.Obs.enabled () then begin
    Ssos_obs.Obs.incr (Ssos_obs.Obs.counter "fault.injected");
    Ssos_obs.Obs.incr
      (Ssos_obs.Obs.counter
         (Printf.sprintf "fault.injected{kind=%s}" (Fault.kind_name fault)));
    Ssos_obs.Obs.event "fault.injected"
      ~fields:
        [ ("tick", string_of_int tick); ("fault", Fault.to_string fault) ]
  end

let apply_random injector tick =
  let fault = Fault.random injector.rng injector.space in
  if Fault.apply injector.system fault then begin
    injector.log <- (tick, fault) :: injector.log;
    publish tick fault
  end

let faults_due injector tick =
  match injector.schedule with
  | Nothing -> 0
  | At ticks -> List.length (List.filter (Int.equal tick) ticks)
  | Burst { at; count } -> if tick = at then count else 0
  | Every { period; start_tick; stop_tick } ->
    if tick >= start_tick && tick <= stop_tick && (tick - start_tick) mod period = 0
    then 1
    else 0
  | Poisson { rate; start_tick; stop_tick } ->
    if tick >= start_tick && tick <= stop_tick && Rng.float injector.rng < rate
    then 1
    else 0

let attach system ~rng ~space ~schedule =
  let injector = { system; rng; space; schedule; log = []; armed = true } in
  Ssx.Machine.on_event system.Fault.machine (fun machine _event ->
      if injector.armed then begin
        let tick = Ssx.Machine.ticks machine in
        let due = faults_due injector tick in
        for _ = 1 to due do
          apply_random injector tick
        done
      end);
  injector

let injected injector = List.rev injector.log
let injected_count injector = List.length injector.log
let disarm injector = injector.armed <- false

let inject_now system ~rng ~space n =
  let rec loop k acc =
    if k = 0 then List.rev acc
    else
      let fault = Fault.random rng space in
      if Fault.apply system fault then begin
        publish (Ssx.Machine.ticks system.Fault.machine) fault;
        loop (k - 1) (fault :: acc)
      end
      else loop k acc
  in
  loop n []
