type schedule =
  | At of int list
  | Burst of { at : int; count : int }
  | Every of { period : int; start_tick : int; stop_tick : int }
  | Poisson of { rate : float; start_tick : int; stop_tick : int }
  | Nothing

type t = {
  system : Fault.system;
  rng : Rng.t;
  space : Fault.space;
  schedule : schedule;
  mutable log : (int * Fault.t) list;  (* newest first *)
  mutable armed : bool;
}

(* Observability is published only after a fault has actually landed,
   and never consumes randomness, so campaigns with metrics on replay
   the exact fault streams of campaigns with metrics off. *)
let publish tick fault =
  if Ssos_obs.Obs.enabled () then begin
    Ssos_obs.Obs.incr (Ssos_obs.Obs.counter "fault.injected");
    Ssos_obs.Obs.incr
      (Ssos_obs.Obs.counter
         (Printf.sprintf "fault.injected{kind=%s}" (Fault.kind_name fault)));
    Ssos_obs.Obs.event "fault.injected"
      ~fields:
        [ ("tick", string_of_int tick); ("fault", Fault.to_string fault) ]
  end

let apply_random injector tick =
  let fault = Fault.random injector.rng injector.space in
  if Fault.apply injector.system fault then begin
    injector.log <- (tick, fault) :: injector.log;
    publish tick fault
  end

let faults_due injector tick =
  match injector.schedule with
  | Nothing -> 0
  | At ticks -> List.length (List.filter (Int.equal tick) ticks)
  | Burst { at; count } -> if tick = at then count else 0
  | Every { period; start_tick; stop_tick } ->
    if tick >= start_tick && tick <= stop_tick && (tick - start_tick) mod period = 0
    then 1
    else 0
  | Poisson { rate; start_tick; stop_tick } ->
    if tick >= start_tick && tick <= stop_tick && Rng.float injector.rng < rate
    then 1
    else 0

let attach system ~rng ~space ~schedule =
  let injector = { system; rng; space; schedule; log = []; armed = true } in
  Ssx.Machine.on_event system.Fault.machine (fun machine _event ->
      if injector.armed then begin
        let tick = Ssx.Machine.ticks machine in
        let due = faults_due injector tick in
        for _ = 1 to due do
          apply_random injector tick
        done
      end);
  injector

let injected injector = List.rev injector.log
let injected_count injector = List.length injector.log
let disarm injector = injector.armed <- false

(* A continuous host-level fault process over many systems.  Unlike
   [attach] — a per-machine tick hook that lives inside the machine's
   execution — a process is advanced explicitly by its caller, at
   whatever host-side boundary (e.g. a serve-engine epoch) keeps the
   surrounding execution deterministic.  All randomness comes from the
   process's own rng, so the arrival stream is independent of how the
   covered steps were executed. *)
type process = {
  p_rate : float;
  p_rng : Rng.t;
  p_targets : (Fault.system * Fault.space) array;
  mutable p_elapsed : int;
  mutable p_log : (int * int * Fault.t) list;  (* newest first *)
  mutable p_count : int;
}

let process ~rate ~rng targets =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Injector.process: rate";
  if Array.length targets = 0 then invalid_arg "Injector.process: targets";
  { p_rate = rate;
    p_rng = rng;
    p_targets = targets;
    p_elapsed = 0;
    p_log = [];
    p_count = 0 }

let advance p ~steps =
  if steps < 0 then invalid_arg "Injector.advance: steps";
  let landed = ref [] in
  for s = 1 to steps do
    if Rng.float p.p_rng < p.p_rate then begin
      let target = Rng.int p.p_rng (Array.length p.p_targets) in
      let system, space = p.p_targets.(target) in
      let fault = Fault.random p.p_rng space in
      if Fault.apply system fault then begin
        let at = p.p_elapsed + s in
        p.p_log <- (at, target, fault) :: p.p_log;
        p.p_count <- p.p_count + 1;
        publish at fault;
        landed := (at, target, fault) :: !landed
      end
    end
  done;
  p.p_elapsed <- p.p_elapsed + steps;
  List.rev !landed

let process_log p = List.rev p.p_log
let process_count p = p.p_count
let process_elapsed p = p.p_elapsed

let inject_now system ~rng ~space n =
  let rec loop k acc =
    if k = 0 then List.rev acc
    else
      let fault = Fault.random rng space in
      if Fault.apply system fault then begin
        publish (Ssx.Machine.ticks system.Fault.machine) fault;
        loop (k - 1) (fault :: acc)
      end
      else loop k acc
  in
  loop n []
