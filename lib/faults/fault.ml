type t =
  | Ram_bit_flip of { addr : int; bit : int }
  | Ram_byte of { addr : int; value : int }
  | Reg16 of Ssx.Registers.reg16 * int
  | Sreg of Ssx.Registers.sreg * int
  | Ip of int
  | Psw of int
  | Nmi_counter of int
  | Nmi_latch of bool
  | Idtr of int
  | Spurious_halt
  | Watchdog_counter of int

type system = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t option;
}

let apply { machine; watchdog } fault =
  let cpu = Ssx.Machine.cpu machine in
  let mem = Ssx.Machine.memory machine in
  let regs = cpu.Ssx.Cpu.regs in
  match fault with
  | Ram_bit_flip { addr; bit } ->
    if Ssx.Memory.is_protected mem addr then false
    else begin
      let old = Ssx.Memory.read_byte mem addr in
      Ssx.Memory.write_byte mem addr (old lxor (1 lsl (bit land 7)));
      true
    end
  | Ram_byte { addr; value } ->
    if Ssx.Memory.is_protected mem addr then false
    else begin
      Ssx.Memory.write_byte mem addr value;
      true
    end
  | Reg16 (reg, v) ->
    Ssx.Registers.set16 regs reg v;
    true
  | Sreg (reg, v) ->
    Ssx.Registers.set_sreg regs reg v;
    true
  | Ip v ->
    regs.Ssx.Registers.ip <- Ssx.Word.mask v;
    true
  | Psw v ->
    regs.Ssx.Registers.psw <- Ssx.Word.mask v;
    true
  | Nmi_counter v ->
    regs.Ssx.Registers.nmi_counter <- max 0 v;
    true
  | Nmi_latch v ->
    cpu.Ssx.Cpu.in_nmi <- v;
    true
  | Idtr v ->
    cpu.Ssx.Cpu.idtr <- Ssx.Addr.mask v;
    true
  | Spurious_halt ->
    cpu.Ssx.Cpu.halted <- true;
    true
  | Watchdog_counter v -> (
    match watchdog with
    | None -> false
    | Some wd ->
      Ssx_devices.Watchdog.corrupt wd v;
      true)

type space = {
  ram_regions : (int * int) list;
  registers : bool;
  control_state : bool;
  halt_faults : bool;
  idtr_faults : bool;
  watchdog_state : bool;
}

let default_space =
  { ram_regions = [ (0, 0xF0000) ];
    registers = true;
    control_state = true;
    halt_faults = true;
    idtr_faults = true;
    watchdog_state = true }

let random_ram_fault rng space =
  let regions = match space.ram_regions with
    | [] -> [ (0, 0xF0000) ]
    | regions -> regions
  in
  let base, size = List.nth regions (Rng.int rng (List.length regions)) in
  let addr = base + Rng.int rng (max 1 size) in
  if Rng.bool rng then Ram_bit_flip { addr; bit = Rng.int rng 8 }
  else Ram_byte { addr; value = Rng.int rng 256 }

let random rng space =
  let word () = Rng.int rng 0x10000 in
  let classes =
    (if space.registers then [ `Registers ] else [])
    @ (if space.control_state then [ `Control ] else [])
    @ (if space.watchdog_state then [ `Watchdog ] else [])
  in
  if classes = [] || Rng.float rng < 0.6 then random_ram_fault rng space
  else
    match List.nth classes (Rng.int rng (List.length classes)) with
    | `Registers ->
      let reg =
        List.nth Ssx.Registers.all_reg16
          (Rng.int rng (List.length Ssx.Registers.all_reg16))
      in
      Reg16 (reg, word ())
    | `Control -> (
      match Rng.int rng 6 with
      | 0 -> Ip (word ())
      | 1 -> Psw (word ())
      | 2 ->
        let sreg =
          List.nth Ssx.Registers.all_sreg
            (Rng.int rng (List.length Ssx.Registers.all_sreg))
        in
        Sreg (sreg, word ())
      | 3 ->
        if space.idtr_faults then Idtr (Rng.int rng Ssx.Addr.memory_size)
        else Psw (word ())
      | 4 -> if Rng.bool rng then Nmi_latch true else Nmi_counter (Rng.int rng 1_000_000)
      | _ -> if space.halt_faults then Spurious_halt else Ip (word ()))
    | `Watchdog -> Watchdog_counter (Rng.int rng 0x1000000)

let kind_name = function
  | Ram_bit_flip _ -> "ram-bit-flip"
  | Ram_byte _ -> "ram-byte"
  | Reg16 _ -> "reg16"
  | Sreg _ -> "sreg"
  | Ip _ -> "ip"
  | Psw _ -> "psw"
  | Nmi_counter _ -> "nmi-counter"
  | Nmi_latch _ -> "nmi-latch"
  | Idtr _ -> "idtr"
  | Spurious_halt -> "spurious-halt"
  | Watchdog_counter _ -> "watchdog-counter"

let pp ppf = function
  | Ram_bit_flip { addr; bit } ->
    Format.fprintf ppf "ram-bit-flip %a bit %d" Ssx.Addr.pp addr bit
  | Ram_byte { addr; value } ->
    Format.fprintf ppf "ram-byte %a <- 0x%02X" Ssx.Addr.pp addr value
  | Reg16 (reg, v) ->
    Format.fprintf ppf "reg %s <- 0x%04X" (Ssx.Registers.reg16_name reg) v
  | Sreg (reg, v) ->
    Format.fprintf ppf "sreg %s <- 0x%04X" (Ssx.Registers.sreg_name reg) v
  | Ip v -> Format.fprintf ppf "ip <- 0x%04X" v
  | Psw v -> Format.fprintf ppf "psw <- 0x%04X" v
  | Nmi_counter v -> Format.fprintf ppf "nmi-counter <- %d" v
  | Nmi_latch v -> Format.fprintf ppf "nmi-latch <- %b" v
  | Idtr v -> Format.fprintf ppf "idtr <- %a" Ssx.Addr.pp v
  | Spurious_halt -> Format.fprintf ppf "spurious halt"
  | Watchdog_counter v -> Format.fprintf ppf "watchdog-counter <- %d" v

let to_string fault = Format.asprintf "%a" pp fault
