(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository draws its randomness from a
    seeded generator so that each table is exactly reproducible from its
    seed, with no dependence on the OCaml stdlib generator's version. *)

type t

val create : int64 -> t
(** Seeded generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] uniform in [\[0, bound)]; [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** Independent child generator (for parallel sub-experiments). *)
