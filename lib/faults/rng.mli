(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository draws its randomness from a
    seeded generator so that each table is exactly reproducible from its
    seed, with no dependence on the OCaml stdlib generator's version. *)

type t

val create : int64 -> t
(** Seeded generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] uniform in [\[0, bound)]; [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** Independent child generator (for parallel sub-experiments). *)

val derive : int64 -> int -> int64
(** [derive master i] — the seed of independent stream [i] under
    [master], via a splitmix64 finalizer over the pair.  For a fixed
    master the results are pairwise distinct in [i] (the finalizer is a
    bijection applied to distinct inputs), and nearby masters yield
    unrelated sequences.  This is how campaigns key each trial off the
    table seed, independent of trial execution order. *)
