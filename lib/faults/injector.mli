(** Fault-injection schedules.

    An injector is attached to a machine as an event hook; it consults
    its schedule on every tick and applies random faults drawn from a
    {!Fault.space}.  All decisions come from the supplied {!Rng}, so a
    campaign is a pure function of its seed. *)

type schedule =
  | At of int list
      (** One random fault at each listed tick. *)
  | Burst of { at : int; count : int }
      (** [count] random faults at one tick — the paper's "any
          combination of transient faults". *)
  | Every of { period : int; start_tick : int; stop_tick : int }
  | Poisson of { rate : float; start_tick : int; stop_tick : int }
      (** Each tick in the window faults with probability [rate]. *)
  | Nothing

type t

val attach :
  Fault.system -> rng:Rng.t -> space:Fault.space -> schedule:schedule -> t
(** Install the injector on the system's machine. *)

val injected : t -> (int * Fault.t) list
(** Faults applied so far, as [(tick, fault)], oldest first. *)

val injected_count : t -> int

val disarm : t -> unit
(** Stop injecting (the hook stays registered but does nothing). *)

val inject_now : Fault.system -> rng:Rng.t -> space:Fault.space -> int -> Fault.t list
(** Immediately apply [n] random faults; returns those actually applied. *)

(** {1 Continuous fault processes}

    The host-level generalization of the one-shot schedules above: a
    rate-parameterized Bernoulli arrival process over a {e set} of
    target systems, advanced explicitly by its caller instead of
    hooking any machine's tick stream.  Each covered step faults with
    probability [rate]; an arrival picks a uniform target and applies
    one random fault from that target's space.  Because the caller
    chooses when to [advance] — the serve engine does it at epoch
    boundaries, while the cluster is quiescent — the arrival stream is
    a pure function of the process rng, independent of shard or job
    counts. *)

type process

val process :
  rate:float -> rng:Rng.t -> (Fault.system * Fault.space) array -> process
(** [rate] in [0, 1]; at least one target. *)

val advance : process -> steps:int -> (int * int * Fault.t) list
(** Cover [steps] more process steps, applying the faults that arrive;
    returns the landed arrivals as [(step, target, fault)], oldest
    first (steps count from the process's creation).  Telemetry is
    published per landed fault, exactly like {!attach}, and never
    consumes randomness. *)

val process_log : process -> (int * int * Fault.t) list
(** All landed arrivals so far, oldest first. *)

val process_count : process -> int
val process_elapsed : process -> int
