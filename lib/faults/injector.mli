(** Fault-injection schedules.

    An injector is attached to a machine as an event hook; it consults
    its schedule on every tick and applies random faults drawn from a
    {!Fault.space}.  All decisions come from the supplied {!Rng}, so a
    campaign is a pure function of its seed. *)

type schedule =
  | At of int list
      (** One random fault at each listed tick. *)
  | Burst of { at : int; count : int }
      (** [count] random faults at one tick — the paper's "any
          combination of transient faults". *)
  | Every of { period : int; start_tick : int; stop_tick : int }
  | Poisson of { rate : float; start_tick : int; stop_tick : int }
      (** Each tick in the window faults with probability [rate]. *)
  | Nothing

type t

val attach :
  Fault.system -> rng:Rng.t -> space:Fault.space -> schedule:schedule -> t
(** Install the injector on the system's machine. *)

val injected : t -> (int * Fault.t) list
(** Faults applied so far, as [(tick, fault)], oldest first. *)

val injected_count : t -> int

val disarm : t -> unit
(** Stop injecting (the hook stays registered but does nothing). *)

val inject_now : Fault.system -> rng:Rng.t -> space:Fault.space -> int -> Fault.t list
(** Immediately apply [n] random faults; returns those actually applied. *)
