type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let bits53 = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits53 /. 9007199254740992.0

let split t = create (next_int64 t)

(* Trial-seed derivation.  The master seed is itself finalized before
   the stream index is folded in, so the derived sequences of two nearby
   masters start from unrelated 64-bit points: with the earlier additive
   scheme (master + i*constant fed into one generator step), masters m
   and m+constant produced trial-seed sequences that were shifts of one
   another.  For a fixed master the outputs are pairwise distinct: [mix]
   is a bijection and the pre-mix values differ by distinct multiples of
   the (odd) golden gamma. *)
let derive master i =
  mix
    (Int64.add
       (mix (Int64.add master golden_gamma))
       (Int64.mul golden_gamma (Int64.of_int (i + 1))))
