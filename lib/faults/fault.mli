(** Transient-fault taxonomy.

    The paper's fault model is the self-stabilization model: a transient
    fault may assign {e arbitrary values to any soft state} — RAM
    contents, registers, the flag word, the instruction pointer, the
    IDTR, the NMI machinery, even the watchdog's countdown register —
    while ROM content is assumed incorruptible (§2).  Each constructor
    below is one such corruption. *)

type t =
  | Ram_bit_flip of { addr : int; bit : int }
      (** A soft error: flip one bit of RAM ([bit] in 0–7). *)
  | Ram_byte of { addr : int; value : int }
  | Reg16 of Ssx.Registers.reg16 * int
  | Sreg of Ssx.Registers.sreg * int
  | Ip of int
  | Psw of int
  | Nmi_counter of int
      (** Corrupt the paper's NMI countdown register. *)
  | Nmi_latch of bool
      (** Corrupt the conventional in-NMI latch (the "masked NMI" hazard
          of §1 — only meaningful when the NMI counter is disabled). *)
  | Idtr of int
  | Spurious_halt
  | Watchdog_counter of int

type system = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t option;
}

val apply : system -> t -> bool
(** Apply a fault.  Returns [false] when the fault was physically
    impossible (a write to ROM, or no watchdog present) and left the
    system untouched. *)

(** Where random faults may land. *)
type space = {
  ram_regions : (int * int) list;
      (** [(base, size)] physical ranges for memory faults. *)
  registers : bool;     (** general-purpose register corruption *)
  control_state : bool; (** ip, psw, segment registers, idtr, nmi state *)
  halt_faults : bool;   (** spurious transitions into the halted state *)
  idtr_faults : bool;   (** IDTR corruption (§2 assumes a fixed IDTR; off honours that) *)
  watchdog_state : bool;
}

val default_space : space
(** Memory faults over all of RAM below the ROM (0xF0000), with
    register, control and watchdog faults enabled. *)

val random : Rng.t -> space -> t
(** Draw a random fault: 60% memory, and the rest spread over the
    enabled register/control/watchdog classes. *)

val kind_name : t -> string
(** The constructor as a stable kebab-case tag ([ram-bit-flip], [ip],
    [watchdog-counter], …) — the label the injector's per-kind
    observability counters are keyed by. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
