let privileged ~states i =
  let n = Array.length states in
  if i = 0 then states.(0) = states.(n - 1) else states.(i) <> states.(i - 1)

let token_count ~states =
  let n = Array.length states in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if privileged ~states i then incr count
  done;
  !count

let legitimate ~states = token_count ~states = 1

type sample = { step : int; states : int array }

let last_violation ~samples ~end_step =
  match samples with
  | [] -> Some end_step
  | _ ->
    List.fold_left
      (fun acc { step; states } ->
        if legitimate ~states then acc else Some step)
      None samples

let judge ~window ~samples ~end_step =
  match last_violation ~samples ~end_step with
  | None ->
    if end_step >= window then
      Convergence.Converged { at_tick = 0; legal_for = end_step }
    else Convergence.Not_converged { last_violation = None }
  | Some step ->
    let legal_for = end_step - step in
    if legal_for >= window then Convergence.Converged { at_tick = step; legal_for }
    else Convergence.Not_converged { last_violation = Some step }

let violation_count ~samples =
  List.fold_left
    (fun count { states; _ } -> if legitimate ~states then count else count + 1)
    0 samples

(* ------------------- replicated state machines (lib/rsm) ----------- *)

type rsm_sample = { step : int; states : int array; kvs : int array array }

let coherent ~kvs =
  Array.length kvs = 0
  ||
  let first = kvs.(0) in
  Array.for_all (fun row -> row = first) kvs

let rsm_legitimate ~states ~kvs = legitimate ~states && coherent ~kvs

let rsm_last_violation ~samples ~end_step =
  match samples with
  | [] -> Some end_step
  | _ ->
    List.fold_left
      (fun acc (s : rsm_sample) ->
        if rsm_legitimate ~states:s.states ~kvs:s.kvs then acc else Some s.step)
      None samples

let rsm_judge ~window ~samples ~end_step =
  match rsm_last_violation ~samples ~end_step with
  | None ->
    if end_step >= window then
      Convergence.Converged { at_tick = 0; legal_for = end_step }
    else Convergence.Not_converged { last_violation = None }
  | Some step ->
    let legal_for = end_step - step in
    if legal_for >= window then Convergence.Converged { at_tick = step; legal_for }
    else Convergence.Not_converged { last_violation = Some step }

let rsm_violation_count ~samples =
  List.fold_left
    (fun count (s : rsm_sample) ->
      if rsm_legitimate ~states:s.states ~kvs:s.kvs then count else count + 1)
    0 samples

type kv_op = { is_put : bool; key : int; value : int }

let linearizable ~init ~ops =
  let reference = Array.copy init in
  let rec go i = function
    | [] -> None
    | { is_put; key; value } :: rest ->
      if key < 0 || key >= Array.length reference then Some i
      else if is_put then begin
        reference.(key) <- value;
        go (i + 1) rest
      end
      else if value <> reference.(key) then Some i
      else go (i + 1) rest
  in
  go 0 ops
