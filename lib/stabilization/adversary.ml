type view = {
  now : int;
  size : int;
  rng : Ssx_faults.Rng.t;
  state : (int -> int) option;
}

type t = {
  name : string;
  stateful : bool;
  choose : view -> int option;
}

let choose t view = t.choose view

let custom ~name ?(stateful = false) choose = { name; stateful; choose }

let starve ?(release = max_int) ~victim () =
  if victim < 0 then invalid_arg "Adversary.starve: victim";
  let choose v =
    if victim >= v.size then invalid_arg "Adversary.starve: victim";
    if v.now >= release then Some (v.now mod v.size)
    else begin
      (* Round-robin over the other size-1 nodes, skipping the victim
         by shifting the indices at or above it up by one. *)
      let r = v.now mod (v.size - 1) in
      Some (if r >= victim then r + 1 else r)
    end
  in
  { name = Printf.sprintf "starve{%d}" victim; stateful = false; choose }

let crash ?period ~down_from ~down_for ~victim () =
  if victim < 0 then invalid_arg "Adversary.crash: victim";
  if down_from < 0 || down_for < 0 then invalid_arg "Adversary.crash: window";
  (match period with
  | Some p when p < down_for -> invalid_arg "Adversary.crash: period"
  | _ -> ());
  let down now =
    now >= down_from
    &&
    match period with
    | None -> now < down_from + down_for
    | Some p -> (now - down_from) mod p < down_for
  in
  let choose v =
    if victim >= v.size then invalid_arg "Adversary.crash: victim";
    let who = v.now mod v.size in
    if who = victim && down v.now then None else Some who
  in
  { name = Printf.sprintf "crash{%d}" victim; stateful = false; choose }

(* Dijkstra's guards on a clamped configuration copy; kept local so the
   daemon works at any cluster size without a [Model.create] size cap. *)
let ring_enabled config i =
  let n = Array.length config in
  if i = 0 then config.(0) = config.(n - 1) else config.(i) <> config.(i - 1)

let ring_token_count config =
  let count = ref 0 in
  for i = 0 to Array.length config - 1 do
    if ring_enabled config i then incr count
  done;
  !count

let distinct_values config =
  let seen = Hashtbl.create 8 in
  Array.iter (fun v -> Hashtbl.replace seen v ()) config;
  Hashtbl.length seen

let adaptive ?table ~k () =
  if k < 2 then invalid_arg "Adversary.adaptive: k";
  (match table with
  | Some tb when tb.Model.model.Model.k <> k ->
    invalid_arg "Adversary.adaptive: table k mismatch"
  | _ -> ());
  let choose v =
    let read =
      match v.state with
      | Some f -> f
      | None -> invalid_arg "Adversary.adaptive: no abstract state reader"
    in
    let n = v.size in
    let config = Array.init n (fun i -> ((read i mod k) + k) mod k) in
    let score_after i =
      let next = Array.copy config in
      if i = 0 then next.(0) <- (next.(0) + 1) mod k
      else next.(i) <- next.(i - 1);
      match table with
      | Some tb ->
        if tb.Model.model.Model.n <> n then
          invalid_arg "Adversary.adaptive: table n mismatch"
        else begin
          match Model.worst_of tb next with
          | -1 -> max_int  (* divergent: the adversary's jackpot *)
          | w -> w
        end
      | None -> (ring_token_count next * (n + 1)) + distinct_values next
    in
    let best = ref None in
    for i = 0 to n - 1 do
      if ring_enabled config i then begin
        let s = score_after i in
        match !best with
        | Some (_, sbest) when s <= sbest -> ()
        | _ -> best := Some (i, s)
      end
    done;
    (* Some node is always enabled (uniform values enable node 0). *)
    match !best with
    | None -> None
    | Some (t, _) ->
      (* Realizing the abstract move on a message-passing ring takes
         two kinds of slots: the target only fires once it has {e seen}
         its predecessor's current value, and its view only refreshes
         when the predecessor is scheduled (every node retransmits on
         every pass).  Scheduling the target alone would deadlock on a
         stale view — the daemon would starve the ring by accident
         instead of steering it.  So alternate by step parity: even
         slots run the target's predecessor (announce), odd slots run
         the target (read and move).  Both halves are pure in
         (now, config), so snapshot-restore and trial partitioning
         replay identically. *)
      Some (if v.now land 1 = 0 then (t + n - 1) mod n else t)
  in
  { name = "adaptive"; stateful = true; choose }
