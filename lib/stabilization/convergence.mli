(** Convergence measurement.

    The paper defines a self-stabilizing OS by: every infinite execution
    has a suffix in the legal-execution set.  Experimentally we bound
    executions, so stabilization is judged post-hoc from an observation
    trace: find the last point where the guest's observable behaviour
    violated its specification; the suffix after it is the legal suffix,
    and it must be long enough (the [window]) to count as converged. *)

type verdict =
  | Converged of { at_tick : int; legal_for : int }
      (** Behaviour is legal from [at_tick] to the end of the run. *)
  | Not_converged of { last_violation : int option }

(** Specification of a legal heartbeat trace. *)
type heartbeat_spec = {
  legal_step : int -> int -> bool;
      (** [legal_step prev next] — is [next] a legal successor value? *)
  max_gap : int;
      (** Maximum ticks between consecutive heartbeats. *)
  window : int;
      (** Minimum length of the legal suffix to claim convergence. *)
}

val counter_spec : ?max_gap:int -> ?window:int -> unit -> heartbeat_spec
(** Heartbeats must increment by exactly one modulo 2{^16} (the
    heartbeat-kernel specification); defaults: gap 2000, window 5000. *)

val judge :
  spec:heartbeat_spec ->
  samples:Ssx_devices.Heartbeat.sample list ->
  end_tick:int ->
  verdict
(** Analyse a completed run.  A violation is a bad successor pair, a
    too-large gap between samples, or a too-large gap between the final
    sample and [end_tick] (the guest died). *)

val converged : verdict -> bool

val violation_count :
  spec:heartbeat_spec ->
  samples:Ssx_devices.Heartbeat.sample list ->
  end_tick:int ->
  int
(** Total specification violations over the whole trace (bad successor
    pairs and over-large gaps) — distinguishes a strongly legal run
    (zero) from a weakly legal one with periodic restarts (one per
    restart). *)

val recovery_time : faults_end:int -> verdict -> int option
(** Ticks from the end of fault injection to convergence; [Some 0] when
    behaviour never became illegal after the faults. *)

val pp_verdict : Format.formatter -> verdict -> unit
