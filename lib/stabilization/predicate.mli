(** Consistency predicates over machine configurations.

    §4 of the paper monitors the operating system's state with "various
    consistency checks" and repairs on violation.  A predicate is a
    named boolean observation of the machine; a repair is an action
    restoring the invariant it guards. *)

type t = {
  name : string;
  holds : Ssx.Machine.t -> bool;
  repair : (Ssx.Machine.t -> unit) option;
      (** Targeted repair; [None] means only full reinstall helps. *)
}

val make :
  name:string -> ?repair:(Ssx.Machine.t -> unit) -> (Ssx.Machine.t -> bool) -> t

val word_in_range : name:string -> addr:int -> lo:int -> hi:int -> reset:int -> t
(** The RAM word at physical [addr] lies in [\[lo, hi\]]; repair writes
    [reset]. *)

val checksum : name:string -> base:int -> len:int -> sum_addr:int -> t
(** A 16-bit additive checksum over [\[base, base+len)] stored at
    [sum_addr] is correct; repair recomputes and stores it. *)

val compute_checksum : Ssx.Memory.t -> base:int -> len:int -> int
(** The additive checksum used by {!checksum}. *)

val conj : name:string -> t list -> t
(** All predicates hold; repair runs every component repair. *)

val violations : t list -> Ssx.Machine.t -> t list
(** The subset of predicates that currently fail. *)

val check_and_repair : t list -> Ssx.Machine.t -> t list
(** Evaluate all; run repairs of the violated ones; return them. *)
