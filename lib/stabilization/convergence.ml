type verdict =
  | Converged of { at_tick : int; legal_for : int }
  | Not_converged of { last_violation : int option }

type heartbeat_spec = {
  legal_step : int -> int -> bool;
  max_gap : int;
  window : int;
}

let counter_spec ?(max_gap = 2000) ?(window = 5000) () =
  { legal_step = (fun prev next -> next = Ssx.Word.mask (prev + 1));
    max_gap;
    window }

let judge ~spec ~samples ~end_tick =
  (* Walk the trace accumulating the tick of the last violation.  The
     legal suffix starts right after it. *)
  let module H = Ssx_devices.Heartbeat in
  let last_violation = ref None in
  let violate tick = last_violation := Some tick in
  let rec walk = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if b.H.tick - a.H.tick > spec.max_gap then violate b.H.tick;
      if not (spec.legal_step a.H.value b.H.value) then violate b.H.tick;
      walk rest
  in
  (match samples with
  | [] -> violate end_tick
  | first :: _ ->
    if first.H.tick > spec.max_gap then violate first.H.tick;
    walk samples;
    let last = List.nth samples (List.length samples - 1) in
    if end_tick - last.H.tick > spec.max_gap then violate end_tick);
  match !last_violation with
  | None ->
    (* Fully legal run. *)
    if end_tick >= spec.window then Converged { at_tick = 0; legal_for = end_tick }
    else Not_converged { last_violation = None }
  | Some tick ->
    let legal_for = end_tick - tick in
    if legal_for >= spec.window then Converged { at_tick = tick; legal_for }
    else Not_converged { last_violation = Some tick }

let converged = function Converged _ -> true | Not_converged _ -> false

let violation_count ~spec ~samples ~end_tick =
  let module H = Ssx_devices.Heartbeat in
  let count = ref 0 in
  let rec walk = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if b.H.tick - a.H.tick > spec.max_gap then incr count;
      if not (spec.legal_step a.H.value b.H.value) then incr count;
      walk rest
  in
  (match samples with
  | [] -> incr count
  | first :: _ ->
    if first.H.tick > spec.max_gap then incr count;
    walk samples;
    let last = List.nth samples (List.length samples - 1) in
    if end_tick - last.H.tick > spec.max_gap then incr count);
  !count

let recovery_time ~faults_end = function
  | Not_converged _ -> None
  | Converged { at_tick; _ } -> Some (max 0 (at_tick - faults_end))

let pp_verdict ppf = function
  | Converged { at_tick; legal_for } ->
    Format.fprintf ppf "converged at tick %d (legal for %d ticks)" at_tick legal_for
  | Not_converged { last_violation = None } ->
    Format.fprintf ppf "not converged (run too short)"
  | Not_converged { last_violation = Some tick } ->
    Format.fprintf ppf "not converged (last violation at tick %d)" tick
