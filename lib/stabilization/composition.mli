(** Layered (fair) composition of self-stabilizing components.

    The paper composes stabilization in layers (after Dolev–Israeli–
    Moran): once the microprocessor stabilizes, the operating system
    stabilizes, and then the application programs stabilize.  This
    module measures such layered convergence: run a machine while
    sampling one predicate per layer and report when each layer entered
    its final all-true suffix. *)

type layer = {
  name : string;
  safe : Ssx.Machine.t -> bool;
      (** Holds when the layer is in its safe region. *)
}

type observation = {
  layer_name : string;
  stabilized_at : int option;
      (** First tick of the closing all-safe suffix; [None] if the layer
          was unsafe at the end of the run. *)
}

val observe :
  Ssx.Machine.t -> layers:layer list -> ticks:int -> observation list
(** Run [ticks] clock ticks, sampling every layer after each tick. *)

val respects_layering : observation list -> bool
(** Whether each layer stabilized no later than the layers above it
    (observations are ordered bottom-up, as passed to {!observe}).
    Layers that never stabilized only violate layering if a layer above
    them stabilized. *)
