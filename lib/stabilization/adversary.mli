(** Adversarial and unfair scheduling daemons for the cluster stepper.

    The cluster's built-in policies (round-robin, fair-random) are
    {e friendly}: every node runs infinitely often, with bounded or
    probabilistically bounded gaps.  The paper's claims quantify over
    all fair executions — and the classical counter-examples (Dolev/
    Herman's unsupportive environments, Devismes et al.'s daemon
    hierarchy) live exactly in the gap between "the schedules we
    sampled" and "any schedule".  A {!t} is a pluggable daemon for
    {!Ssos_net.Cluster}'s policy type that closes part of that gap:

    - {!starve} — an unfair daemon that never schedules one node;
    - {!crash} — crash-and-resurrect: the victim's slots are {e idle}
      for a window (the node is silent; its state is preserved, and
      message delivery continues around it);
    - {!adaptive} — a state-inspecting central daemon that looks at
      the enabled guards of the abstract ring configuration each step
      and schedules the worst enabled node, either by a
      max-distance-to-legitimate heuristic or by exact lookup in a
      {!Model.table}.

    Determinism contract: a daemon is a pure function of its {!view}
    — the step number, the cluster size, the cluster's interleaving
    RNG stream, and (for [stateful] daemons) the abstract node states.
    Pure ([stateful = false]) daemons replay identically on every
    shard of the sharded stepper, exactly like the built-in policies;
    [stateful] daemons force the stepper sequential (shards = 1), so
    digest, snapshot and jobs/shards invariance hold for every daemon
    (DESIGN.md §4j). *)

type view = {
  now : int;  (** the cluster step being scheduled *)
  size : int;  (** number of nodes *)
  rng : Ssx_faults.Rng.t;  (** the cluster interleaving RNG (shard-replayed) *)
  state : (int -> int) option;
      (** abstract per-node state (e.g. the ring counter word), when
          the owning system registered a reader
          ({!Ssos_net.Cluster.set_abstract}) *)
}

type t = {
  name : string;
  stateful : bool;
      (** true iff {!choose} reads [view.state]; stateful daemons run
          the sharded stepper at shards = 1 *)
  choose : view -> int option;
      (** [None] idles the slot: no node runs, deliveries and the step
          counter still advance *)
}

val choose : t -> view -> int option

val starve : ?release:int -> victim:int -> unit -> t
(** Round-robin over every node except [victim], which is never
    scheduled before step [release] (default: never).  From [release]
    on, plain round-robin over all nodes — the "unsupportive
    environment turns supportive" experiment. *)

val crash : ?period:int -> down_from:int -> down_for:int -> victim:int ->
  unit -> t
(** Round-robin over all nodes, but the victim's slots are idle
    ([None]) while it is down: during [[down_from, down_from +
    down_for)], and with [?period] during the first [down_for] steps
    of every [period]-step cycle from [down_from] on.  State is
    preserved across the outage (crash-and-resurrect, not reset). *)

val adaptive : ?table:Model.table -> k:int -> unit -> t
(** The state-inspecting adversary ([stateful = true]; requires an
    abstract reader, else {!choose} raises [Invalid_argument]).  Each
    step it clamps the abstract states into [0, k), enumerates the
    enabled nodes under Dijkstra's guards, and picks the {e target}
    whose move leaves the configuration farthest from legitimacy:
    exact worst-case distance when [table] is given (divergent
    successors score infinite), else the heuristic [token_count *
    (n + 1) + distinct values].  Ties break to the lowest node index.

    Because the concrete ring is message-passing, the target only
    fires after seeing its predecessor's current value, so the daemon
    alternates by step parity: even slots schedule the target's
    predecessor (whose pass retransmits its counter), odd slots the
    target itself.  The choice is a pure function of (step, abstract
    config) — no RNG draws, no hidden daemon state — so campaigns
    under snapshot-restore and any jobs partitioning replay
    bit-identically. *)

val custom : name:string -> ?stateful:bool -> (view -> int option) -> t
(** Escape hatch for tests and experiments.  [stateful] defaults to
    false — set it if the function reads [view.state]. *)
