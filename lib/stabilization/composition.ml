type layer = {
  name : string;
  safe : Ssx.Machine.t -> bool;
}

type observation = {
  layer_name : string;
  stabilized_at : int option;
}

let observe machine ~layers ~ticks =
  let last_unsafe = Array.make (List.length layers) None in
  for _ = 1 to ticks do
    ignore (Ssx.Machine.tick machine);
    let now = Ssx.Machine.ticks machine in
    List.iteri
      (fun i layer -> if not (layer.safe machine) then last_unsafe.(i) <- Some now)
      layers
  done;
  List.mapi
    (fun i layer ->
      let stabilized_at =
        match last_unsafe.(i) with
        | None -> Some 0
        | Some tick ->
          (* Unsafe at the very end means never stabilized. *)
          if layer.safe machine then Some (tick + 1) else None
      in
      { layer_name = layer.name; stabilized_at })
    layers

let respects_layering observations =
  let rec check lower_bound = function
    | [] -> true
    | { stabilized_at = None; _ } :: rest ->
      (* This layer never stabilized: fine only if nothing above did. *)
      List.for_all (fun o -> o.stabilized_at = None) rest && check lower_bound []
    | { stabilized_at = Some t; _ } :: rest ->
      t >= lower_bound && check t rest
  in
  check 0 observations
