type t = {
  name : string;
  holds : Ssx.Machine.t -> bool;
  repair : (Ssx.Machine.t -> unit) option;
}

let make ~name ?repair holds = { name; holds; repair }

let word_in_range ~name ~addr ~lo ~hi ~reset =
  let holds machine =
    let v = Ssx.Memory.read_word (Ssx.Machine.memory machine) addr in
    v >= lo && v <= hi
  in
  let repair machine =
    Ssx.Memory.write_word (Ssx.Machine.memory machine) addr reset
  in
  { name; holds; repair = Some repair }

let compute_checksum mem ~base ~len =
  let rec sum i acc =
    if i >= len then acc
    else sum (i + 1) (Ssx.Word.mask (acc + Ssx.Memory.read_byte mem (base + i)))
  in
  sum 0 0

let checksum ~name ~base ~len ~sum_addr =
  let holds machine =
    let mem = Ssx.Machine.memory machine in
    Ssx.Memory.read_word mem sum_addr = compute_checksum mem ~base ~len
  in
  let repair machine =
    let mem = Ssx.Machine.memory machine in
    Ssx.Memory.write_word mem sum_addr (compute_checksum mem ~base ~len)
  in
  { name; holds; repair = Some repair }

let conj ~name predicates =
  let holds machine = List.for_all (fun p -> p.holds machine) predicates in
  let repair machine =
    List.iter
      (fun p ->
        if not (p.holds machine) then
          match p.repair with Some fix -> fix machine | None -> ())
      predicates
  in
  { name; holds; repair = Some repair }

let violations predicates machine =
  List.filter (fun p -> not (p.holds machine)) predicates

let check_and_repair predicates machine =
  let violated = violations predicates machine in
  List.iter
    (fun p -> match p.repair with Some fix -> fix machine | None -> ())
    violated;
  violated
