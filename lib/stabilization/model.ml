type t = { n : int; k : int; size : int }

let max_size = 1 lsl 24

let create ~n ~k =
  if n < 2 then invalid_arg "Model.create: need at least two nodes";
  if k < 2 then invalid_arg "Model.create: need at least two states";
  let size = ref 1 in
  for _ = 1 to n do
    if !size > max_size / k then invalid_arg "Model.create: k^n too large";
    size := !size * k
  done;
  { n; k; size = !size }

let encode t config =
  if Array.length config <> t.n then invalid_arg "Model.encode: length";
  Array.fold_right
    (fun x acc ->
      if x < 0 || x >= t.k then invalid_arg "Model.encode: out of range";
      (acc * t.k) + x)
    config 0

let decode t index =
  if index < 0 || index >= t.size then invalid_arg "Model.decode: index";
  let config = Array.make t.n 0 in
  let rest = ref index in
  for i = 0 to t.n - 1 do
    config.(i) <- !rest mod t.k;
    rest := !rest / t.k
  done;
  config

let clamp t v = ((v mod t.k) + t.k) mod t.k

let enabled t config i =
  if i = 0 then config.(0) = config.(t.n - 1) else config.(i) <> config.(i - 1)

let fire t config i =
  if i = 0 then config.(0) <- (config.(0) + 1) mod t.k
  else config.(i) <- config.(i - 1)

let enabled_nodes t config =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if enabled t config i then acc := i :: !acc
  done;
  !acc

let token_count t config =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    if enabled t config i then incr count
  done;
  !count

let legitimate t config = token_count t config = 1

type table = {
  model : t;
  best : int array;
  worst : int array;
}

(* Both solves need the transition graph {config -> successor under
   one enabled node's move}.  Firing node i changes digit i alone, so
   a successor index is [idx + (new - old) * k^i] — no re-encode.  The
   graph is walked twice: a counting pass sizes a reverse-adjacency
   CSR (BFS and backward induction both traverse predecessors), then a
   fill pass writes it.  Every configuration has at least one enabled
   node (if nodes 1..n-1 are all disabled the values are uniform and
   node 0 is enabled), so there are no deadlocks to special-case. *)
let analyze ~n ~k =
  let m = create ~n ~k in
  let size = m.size in
  let pow = Array.make n 1 in
  for i = 1 to n - 1 do
    pow.(i) <- pow.(i - 1) * k
  done;
  let digits = Array.make n 0 in
  let decode_into index =
    let rest = ref index in
    for i = 0 to n - 1 do
      digits.(i) <- !rest mod k;
      rest := !rest / k
    done
  in
  let successor index i =
    if i = 0 then index + ((((digits.(0) + 1) mod k) - digits.(0)) * pow.(0))
    else index + ((digits.(i - 1) - digits.(i)) * pow.(i))
  in
  (* [each_successor idx f] calls [f] once per enabled node's move;
     [decode_into idx] must have run. *)
  let each_successor index f =
    if digits.(0) = digits.(n - 1) then f (successor index 0);
    for i = 1 to n - 1 do
      if digits.(i) <> digits.(i - 1) then f (successor index i)
    done
  in
  let legit = Array.make size false in
  let outdeg = Array.make size 0 in
  let indeg = Array.make size 0 in
  for index = 0 to size - 1 do
    decode_into index;
    legit.(index) <- legitimate m digits;
    each_successor index (fun succ ->
        outdeg.(index) <- outdeg.(index) + 1;
        indeg.(succ) <- indeg.(succ) + 1)
  done;
  let rev_off = Array.make (size + 1) 0 in
  for index = 0 to size - 1 do
    rev_off.(index + 1) <- rev_off.(index) + indeg.(index)
  done;
  let rev = Array.make rev_off.(size) 0 in
  let cursor = Array.copy rev_off in
  for index = 0 to size - 1 do
    decode_into index;
    each_successor index (fun succ ->
        rev.(cursor.(succ)) <- index;
        cursor.(succ) <- cursor.(succ) + 1)
  done;
  let each_predecessor index f =
    for p = rev_off.(index) to rev_off.(index + 1) - 1 do
      f rev.(p)
    done
  in
  (* Best case: multi-source BFS from the legitimate set over reverse
     edges — best.(c) is the exact min moves to legitimacy. *)
  let best = Array.make size (-1) in
  let queue = Queue.create () in
  for index = 0 to size - 1 do
    if legit.(index) then begin
      best.(index) <- 0;
      Queue.push index queue
    end
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    each_predecessor s (fun p ->
        if best.(p) < 0 then begin
          best.(p) <- best.(s) + 1;
          Queue.push p queue
        end)
  done;
  (* Worst case: backward induction.  A non-legitimate configuration
     resolves once all its successors have, to 1 + max over them; the
     out-degree countdown schedules that exactly.  Whatever never
     resolves lies on (or inescapably reaches) a cycle avoiding the
     legitimate set — the adversary's win — and keeps worst = -1. *)
  let worst = Array.make size (-1) in
  let pending = Array.copy outdeg in
  let best_succ = Array.make size 0 in
  for index = 0 to size - 1 do
    if legit.(index) then begin
      worst.(index) <- 0;
      Queue.push index queue
    end
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    each_predecessor s (fun p ->
        if not legit.(p) && worst.(p) < 0 then begin
          if worst.(s) > best_succ.(p) then best_succ.(p) <- worst.(s);
          pending.(p) <- pending.(p) - 1;
          if pending.(p) = 0 then begin
            worst.(p) <- best_succ.(p) + 1;
            Queue.push p queue
          end
        end)
  done;
  { model = m; best; worst }

let lookup values table config =
  let m = table.model in
  if Array.length config <> m.n then invalid_arg "Model: config length";
  values.(encode m (Array.map (clamp m) config))

let best_of table config = lookup table.best table config
let worst_of table config = lookup table.worst table config

let best_bound table = Array.fold_left max 0 table.best
let worst_bound table = Array.fold_left max 0 table.worst

let divergent table =
  Array.fold_left (fun acc w -> if w < 0 then acc + 1 else acc) 0 table.worst

let legitimate_count table =
  Array.fold_left (fun acc w -> if w = 0 then acc + 1 else acc) 0 table.worst
