(** Legal executions of a distributed token ring.

    Dijkstra's K-state algorithm run across {e machines} (one counter
    per node, exchanged over a network) has the same legality notion as
    the shared-memory version: a configuration is legitimate when
    exactly one node holds a privilege, judged on the nodes' true
    counter states.  Messages in flight only delay moves; they never
    create a second privilege in the state view, so the predicate below
    is an invariant of the stabilized system even under lossy, slow
    links.

    Convergence is judged post-hoc from a sampled trace of joint
    states, exactly like {!Convergence.judge} does for heartbeat
    traces: find the last illegitimate sample; the suffix after it must
    be at least [window] steps long. *)

val privileged : states:int array -> int -> bool
(** [privileged ~states i] — node 0 is privileged when its counter
    equals its predecessor's (the ring's last node); every other node
    when its counter differs from node [i-1]'s. *)

val token_count : states:int array -> int
val legitimate : states:int array -> bool
(** Exactly one privilege. *)

type sample = { step : int; states : int array }
(** Joint counter state observed at one cluster step. *)

val judge :
  window:int -> samples:sample list -> end_step:int -> Convergence.verdict
(** [samples] in increasing [step] order.  A violation is an
    illegitimate sample; an empty trace is one violation at
    [end_step]. *)

val violation_count : samples:sample list -> int
