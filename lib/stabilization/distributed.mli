(** Legal executions of a distributed token ring.

    Dijkstra's K-state algorithm run across {e machines} (one counter
    per node, exchanged over a network) has the same legality notion as
    the shared-memory version: a configuration is legitimate when
    exactly one node holds a privilege, judged on the nodes' true
    counter states.  Messages in flight only delay moves; they never
    create a second privilege in the state view, so the predicate below
    is an invariant of the stabilized system even under lossy, slow
    links.

    Convergence is judged post-hoc from a sampled trace of joint
    states, exactly like {!Convergence.judge} does for heartbeat
    traces: find the last illegitimate sample; the suffix after it must
    be at least [window] steps long. *)

val privileged : states:int array -> int -> bool
(** [privileged ~states i] — node 0 is privileged when its counter
    equals its predecessor's (the ring's last node); every other node
    when its counter differs from node [i-1]'s. *)

val token_count : states:int array -> int
val legitimate : states:int array -> bool
(** Exactly one privilege. *)

type sample = { step : int; states : int array }
(** Joint counter state observed at one cluster step. *)

val judge :
  window:int -> samples:sample list -> end_step:int -> Convergence.verdict
(** [samples] in increasing [step] order.  A violation is an
    illegitimate sample; an empty trace is one violation at
    [end_step]. *)

val violation_count : samples:sample list -> int

(** {1 Replicated state machines}

    The two-part legality notion of a token-sequenced replicated
    key-value machine (lib/rsm): (a) the ring's counter states are
    legitimate in Dijkstra's sense {e and} every replica holds the same
    store — the logs have converged to a common prefix, witnessed by
    the stores they fold to — and (b) the client responses served after
    convergence replay linearizably against a single reference map.
    Both judges stay generic over plain integer matrices and operation
    lists, so this module needs no knowledge of the RSM wire format. *)

type rsm_sample = { step : int; states : int array; kvs : int array array }
(** Joint counter states plus every replica's store (one row per node,
    node order), observed at one cluster step. *)

val coherent : kvs:int array array -> bool
(** All store rows equal. *)

val rsm_legitimate : states:int array -> kvs:int array array -> bool
(** {!legitimate} on the counters and {!coherent} on the stores. *)

val rsm_judge :
  window:int -> samples:rsm_sample list -> end_step:int ->
  Convergence.verdict
(** Windowed verdict over a trace of {!rsm_sample}s, exactly like
    {!judge}: the suffix after the last violation must be at least
    [window] steps long.  Replica coherence flickers while a frame is
    in flight mid-move, which is why a windowed last-violation judge is
    required rather than a first-hit search. *)

val rsm_violation_count : samples:rsm_sample list -> int

type kv_op = { is_put : bool; key : int; value : int }
(** One client response, decoded: for a put, [value] is what the
    replica wrote; for a get, what it read. *)

val linearizable : init:int array -> ops:kv_op list -> int option
(** Replay [ops] — client responses in serve order — against a
    reference map starting at [init].  Puts update the reference; a get
    must return exactly the reference's current value.  [None] when the
    whole trace is consistent, [Some i] for the index of the first
    violating (stale or phantom) response.  Sound as a linearizability
    check because the RSM serves requests only at token moves: the
    token's total order is the linearization order, and responses are
    collected in exactly that order (one node slot per cluster step,
    FIFO queues per node). *)
