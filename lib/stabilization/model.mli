(** Exhaustive explicit-state checker for Dijkstra's K-state ring on
    {e abstracted} configurations.

    The concrete ring ({!Ssos_net.Net_ring}) is a message-passing
    system: whole SSX16 machines exchanging counters over NICs.  Its
    stabilization argument, though, lives one level up, on the
    abstract protocol state — the vector of n counters in [0, K).
    This module enumerates {e all} K{^ n} abstract configurations and
    computes, for every one of them, the exact number of protocol
    moves to the legitimate set

    - under a {e best-case} (cooperative) central daemon — multi-source
      BFS from the legitimate configurations over reversed transition
      edges; and
    - under a {e worst-case} (adversarial) central daemon — backward
      induction: a configuration resolves once every successor has,
      to [1 + max] over them.  Configurations that never resolve are
      exactly those from which the adversary can postpone legitimacy
      forever (they sit on or reach a cycle avoiding the legitimate
      set), so non-stabilization — e.g. K < n — is {e detected}, not
      asserted away.

    Campaigns use the resulting tables two ways: the adaptive
    adversary ({!Adversary.adaptive}) can steer concrete executions
    with exact worst-case values, and the differential tests assert
    that no concrete adversarial run ever needs more abstract moves
    than [worst_bound] — turning the suite's sampled convergence
    claims into verified bounds for small n (DESIGN.md §4j). *)

type t = private { n : int; k : int; size : int }
(** A ring shape: [n] nodes with counters in [0, k); [size = k]{^ n}. *)

val create : n:int -> k:int -> t
(** Requires [n >= 2], [k >= 2] and [k]{^ n}[ <= 2]{^ 24} (the
    enumeration cap — about 16.7M configurations). *)

val encode : t -> int array -> int
(** Configuration (length [n], entries in [0, k)) to index in
    [0, size). *)

val decode : t -> int -> int array
(** Inverse of {!encode}. *)

val clamp : t -> int -> int
(** Project an arbitrary (possibly corrupted) counter word into
    [0, k) — the abstraction the checker works in. *)

(** Protocol semantics on raw configuration arrays (Dijkstra's K-state
    ring, the exact moves the {!Ssos_net.Net_ring} guest makes):
    node 0 is privileged iff [x0 = x(n-1)] and fires by incrementing
    modulo K; node [i > 0] is privileged iff [xi <> x(i-1)] and fires
    by copying. *)

val enabled : t -> int array -> int -> bool
val fire : t -> int array -> int -> unit
(** In place; only meaningful when {!enabled}. *)

val enabled_nodes : t -> int array -> int list
val token_count : t -> int array -> int
val legitimate : t -> int array -> bool
(** Exactly one privilege. *)

type table = {
  model : t;
  best : int array;   (** exact min moves to legitimacy, per config *)
  worst : int array;  (** exact max moves under the adversarial daemon;
                          [-1] marks a divergent configuration *)
}

val analyze : n:int -> k:int -> table
(** Enumerate all [k]{^ n} configurations and solve both daemons
    exactly.  Cost is O(size · n) time and memory. *)

val best_of : table -> int array -> int
val worst_of : table -> int array -> int
(** Per-configuration lookups; the array is clamped entrywise first,
    so raw (corrupted) concrete states can be passed directly. *)

val best_bound : table -> int
(** [max] over all configurations of [best] — what even a cooperative
    daemon needs from the worst initial configuration.  Always
    [<= n - 1] for this protocol. *)

val worst_bound : table -> int
(** [max] over all {e resolved} configurations of [worst].  When
    {!divergent} is zero this is the exact global worst-case
    convergence bound. *)

val divergent : table -> int
(** Number of configurations from which the adversary wins outright
    (never reaches legitimacy).  Zero exactly when the protocol
    self-stabilizes under the unfair central daemon at this (n, k);
    Dijkstra's theorem gives zero for [k >= n]. *)

val legitimate_count : table -> int
