let summary_cells (s : Runner.summary) =
  [ Table.cell_rate s.Runner.recoveries s.Runner.trials;
    Table.cell_opt_float ~decimals:0 s.Runner.mean_recovery;
    (match s.Runner.max_recovery with None -> "-" | Some v -> Table.cell_int v) ]

(* ----------------------------------------------------------------- T1 *)

let t1_reinstall_recovery ?(seed = 1L) ?(trials = 30) ?jobs () =
  let build () = Ssos.Reinstall.build () in
  let spec = Ssos.Reinstall.weak_spec () in
  let row label space burst =
    let s =
      Runner.heartbeat_campaign ~build ~space ~spec ~burst ?jobs ~trials ~seed ()
    in
    (label :: Table.cell_int burst :: summary_cells s)
  in
  let bursts = [ 5; 20; 50; 100; 200 ] in
  let rows =
    List.map
      (fun burst -> row "ram+reg+control" Ssos.System.default_fault_space burst)
      bursts
    @ [ row "ram-only (Bochs-style)" Ssos.System.ram_only_fault_space 50 ]
  in
  { Table.id = "T1";
    title = "Reinstall-and-restart recovery vs fault burst";
    note =
      "Reproduces the section 3 experiment (RAM corrupted during execution; \
       stabilization observed) and Theorem 3.4, quantitatively.";
    header = [ "fault space"; "burst"; "recovered"; "mean rec (ticks)"; "max rec" ];
    rows }

(* ----------------------------------------------------------------- T2 *)

let t2_lemma_bounds ?(seed = 2L) ?(trials = 300) ?jobs () =
  let period = Ssos.Layout.default_watchdog_period in
  let nmi_max = Ssos.Layout.default_nmi_counter_max in
  (* Figure 1: 8 set-up instructions, IMAGE_SIZE rep steps, 7 tear-down
     instructions, then the first guest instruction. *)
  let handler_bound = 8 + Ssos.Layout.os_image_size + 7 + 1 in
  let entry_bound = period + nmi_max + 2 in
  let measurements =
    Pool.run ?jobs trials (fun i ->
        let system = Ssos.Reinstall.build () in
        let machine = system.Ssos.System.machine in
        let rng = Ssx_faults.Rng.create (Runner.trial_seed seed i) in
        Ssos.System.run system ~ticks:(Ssx_faults.Rng.int rng period);
        Runner.scramble_processor rng system;
        let entered = ref false in
        Ssx.Machine.on_event machine (fun _ event ->
            match event with
            | Ssx.Cpu.Took_interrupt { nmi = true; _ } -> entered := true
            | _ -> ());
        let nmi_time =
          match
            Ssx.Machine.run_until machine ~limit:(2 * entry_bound) (fun _ ->
                !entered)
          with
          | Some ticks -> ticks
          | None -> 3 * entry_bound
        in
        let at_entry = Ssx.Machine.ticks machine in
        let cpu = Ssx.Machine.cpu machine in
        let restart_time =
          match
            Ssx.Machine.run_until machine ~limit:(2 * handler_bound) (fun _ ->
                cpu.Ssx.Cpu.regs.Ssx.Registers.cs = Ssos.Layout.os_segment
                && cpu.Ssx.Cpu.regs.Ssx.Registers.ip <= 8)
          with
          | Some _ -> Ssx.Machine.ticks machine - at_entry
          | None -> 3 * handler_bound
        in
        (nmi_time, restart_time))
  in
  let nmi_times = Array.to_list (Array.map fst measurements) in
  let restart_times = Array.to_list (Array.map snd measurements) in
  let stats times =
    let n = List.length times in
    let sum = List.fold_left ( + ) 0 times in
    let maximum = List.fold_left max 0 times in
    (float_of_int sum /. float_of_int n, maximum)
  in
  let mean_a, max_a = stats nmi_times in
  let mean_b, max_b = stats restart_times in
  let violations bound times = List.length (List.filter (fun t -> t > bound) times) in
  { Table.id = "T2";
    title = "Lemma bounds from arbitrary configurations";
    note =
      "Lemma 3.1 (the handler is reached) and Lemmas 3.2/3.3 (it completes \
       and restarts the OS): observed worst cases vs the theoretical bounds.";
    header = [ "phase"; "bound (ticks)"; "mean"; "max"; "violations" ];
    rows =
      [ [ "scrambled state -> NMI handler entry";
          Table.cell_int entry_bound;
          Table.cell_float ~decimals:0 mean_a;
          Table.cell_int max_a;
          Printf.sprintf "%d/%d" (violations entry_bound nmi_times) trials ];
        [ "handler entry -> OS first instruction";
          Table.cell_int handler_bound;
          Table.cell_float ~decimals:0 mean_b;
          Table.cell_int max_b;
          Printf.sprintf "%d/%d" (violations handler_bound restart_times) trials ] ] }

(* ----------------------------------------------------------------- T3 *)

let t3_approach_comparison ?(seed = 3L) ?(trials = 25) ?jobs () =
  let guest () = Ssos.Guest.task_kernel () in
  let weak = Ssos.Reinstall.weak_spec () in
  let burst = 40 in
  let hb_row label build space =
    let s =
      Runner.heartbeat_campaign ~build ~space ~spec:weak ~burst ?jobs ~trials
        ~seed ()
    in
    (label :: summary_cells s)
  in
  let rows =
    [ hb_row "no recovery"
        (fun () -> Ssos.Baselines.none ~guest:(guest ()) ())
        Ssos.System.default_fault_space;
      hb_row "reset-only reboot"
        (fun () -> Ssos.Baselines.reset_only ~guest:(guest ()) ())
        Ssos.System.default_fault_space;
      hb_row "checkpoint/rollback"
        (fun () -> Ssos.Baselines.checkpoint ~guest:(guest ()) ())
        Ssos.Baselines.checkpoint_fault_space;
      hb_row "s3 reinstall+restart"
        (fun () -> Ssos.Reinstall.build ~guest:(guest ()) ())
        Ssos.System.default_fault_space;
      hb_row "s3 reinstall+continue"
        (fun () ->
          Ssos.Reinstall.build ~variant:Ssos.Reinstall.Continue ~guest:(guest ()) ())
        Ssos.System.default_fault_space;
      hb_row "s4 monitor+repair"
        (fun () -> (Ssos.Monitor.build ()).Ssos.Monitor.system)
        Ssos.System.default_fault_space;
      (let s =
         Runner.sched_campaign
           ~build:(fun () -> Ssos.Sched.build ())
           ~burst ?jobs ~trials ~seed ()
       in
       "s5 tailored tiny OS" :: summary_cells s) ]
  in
  { Table.id = "T3";
    title = "Recovery across designs, identical fault campaigns";
    note =
      "Baselines the paper contrasts with (no recovery; reboot without \
       reinstall; checkpointing as in Windows XP/EROS) vs sections 3-5. \
       Burst = 40 random faults; weak legality.";
    header = [ "design"; "recovered"; "mean rec (ticks)"; "max rec" ];
    rows }

(* ----------------------------------------------------------------- T4 *)

let t4_period_sweep ?(seed = 4L) ?(trials = 12) ?jobs () =
  let horizon = 1_000_000 in
  let beats_with_period period =
    let system = Ssos.Reinstall.build ~watchdog_period:period () in
    Ssos.System.run system ~ticks:horizon;
    Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat
  in
  let baseline =
    let system = Ssos.Baselines.none ~guest:(Ssos.Guest.heartbeat_kernel ()) () in
    Ssos.System.run system ~ticks:horizon;
    Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat
  in
  let spec = Ssos.Reinstall.weak_spec () in
  let rows =
    List.map
      (fun period ->
        let beats = beats_with_period period in
        let s =
          Runner.heartbeat_campaign
            ~build:(fun () -> Ssos.Reinstall.build ~watchdog_period:period ())
            ~space:Ssos.System.default_fault_space ~spec ~burst:40 ?jobs ~trials
            ~seed ()
        in
        [ Table.cell_int period;
          Table.cell_int beats;
          Table.cell_float ~decimals:1
            (100.0 *. float_of_int beats /. float_of_int baseline)
          ^ "%";
          Table.cell_rate s.Runner.recoveries s.Runner.trials;
          Table.cell_opt_float ~decimals:0 s.Runner.mean_recovery ])
      [ 10_000; 25_000; 50_000; 100_000; 200_000 ]
  in
  { Table.id = "T4";
    title = "Watchdog period: availability vs recovery latency";
    note =
      "Section 3's 'period long enough for the system to operate': useful \
       work (heartbeats per 1M ticks, vs an unprotected baseline) against \
       recovery under a 40-fault burst.";
    header =
      [ "period"; "beats/1M"; "availability"; "recovered"; "mean rec (ticks)" ];
    rows }

(* ----------------------------------------------------------------- T5 *)

let t5_primitive_fairness ?(seed = 5L) ?(trials = 100) ?jobs () =
  (* Clean-run fairness. *)
  let sched = Ssos.Primitive_sched.build () in
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:200_000;
  let beats =
    Array.to_list
      (Array.map Ssx_devices.Heartbeat.count sched.Ssos.Primitive_sched.heartbeats)
  in
  let min_beats = List.fold_left min max_int beats
  and max_beats = List.fold_left max 0 beats in
  (* Convergence from arbitrary processor states. *)
  let round_bound = 4 * Ssos.Primitive_sched.region_size in
  let convergences =
    Pool.run ?jobs trials (fun i ->
        let sched = Ssos.Primitive_sched.build () in
        let machine = sched.Ssos.Primitive_sched.machine in
        let rng = Ssx_faults.Rng.create (Runner.trial_seed seed i) in
        let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
        let word () = Ssx_faults.Rng.int rng 0x10000 in
        List.iter
          (fun r -> Ssx.Registers.set16 regs r (word ()))
          Ssx.Registers.all_reg16;
        List.iter
          (fun r -> Ssx.Registers.set_sreg regs r (word ()))
          Ssx.Registers.all_sreg;
        regs.Ssx.Registers.ip <- word ();
        regs.Ssx.Registers.psw <- word ();
        let all_beat () =
          Array.for_all
            (fun hb -> Ssx_devices.Heartbeat.count hb > 0)
            sched.Ssos.Primitive_sched.heartbeats
        in
        Ssx.Machine.run_until machine ~limit:round_bound (fun _ -> all_beat ()))
  in
  let converged =
    Array.fold_left
      (fun acc t -> if t <> None then acc + 1 else acc)
      0 convergences
  in
  let worst =
    Array.fold_left
      (fun acc t -> match t with Some t -> max acc t | None -> acc)
      0 convergences
  in
  (* Fault-burst recovery. *)
  let burst_trials = 30 in
  let alive_flags =
    Pool.run ?jobs burst_trials (fun i ->
        let sched = Ssos.Primitive_sched.build () in
        let rng =
          Ssx_faults.Rng.create (Runner.trial_seed (Int64.add seed 77L) i)
        in
        Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:10_000;
        ignore
          (Ssx_faults.Injector.inject_now
             (Ssos.Primitive_sched.fault_system sched)
             ~rng
             ~space:(Ssos.Primitive_sched.fault_space sched)
             30);
        Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:50_000;
        let end_tick = Ssx.Machine.ticks sched.Ssos.Primitive_sched.machine in
        Array.for_all
          (fun hb ->
            match Ssx_devices.Heartbeat.last hb with
            | Some s -> end_tick - s.Ssx_devices.Heartbeat.tick < 1_000
            | None -> false)
          sched.Ssos.Primitive_sched.heartbeats)
  in
  let alive =
    Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 alive_flags
  in
  { Table.id = "T5";
    title = "Primitive scheduler (section 5.1): fairness and convergence";
    note =
      "Theorem 5.1: every process executes infinitely often and each \
       self-stabilizing process stabilizes, from any initial state.";
    header = [ "measure"; "value" ];
    rows =
      [ [ "beats per process, clean 200k-tick run";
          Printf.sprintf "min %d / max %d" min_beats max_beats ];
        [ "fairness spread (max-min)"; Table.cell_int (max_beats - min_beats) ];
        [ Printf.sprintf "arbitrary-start convergence (%d trials)" trials;
          Table.cell_rate converged trials ];
        [ "worst ticks until every process ran"; Table.cell_int worst ];
        [ "alive after 30-fault burst"; Table.cell_rate alive burst_trials ] ] }

(* ----------------------------------------------------------------- T6 *)

let t6_sched_stabilization ?(seed = 6L) ?(trials = 25) ?jobs () =
  let row label burst =
    let s =
      Runner.sched_campaign
        ~build:(fun () -> Ssos.Sched.build ())
        ~burst ?jobs ~trials ~seed ()
    in
    (label :: Table.cell_int burst :: summary_cells s)
  in
  { Table.id = "T6";
    title = "Self-stabilizing scheduler (section 5.2) under fault bursts";
    note =
      "Lemmas 5.2-5.4 / Theorem 5.5: fairness and stabilization preservation. \
       Recovery = every process's counter stream strictly increments again.";
    header = [ "configuration"; "burst"; "recovered"; "mean rec (ticks)"; "max rec" ];
    rows = [ row "default (strict cs, windowed ip)" 10;
             row "default (strict cs, windowed ip)" 40;
             row "default (strict cs, windowed ip)" 100 ] }

(* ----------------------------------------------------------------- T7 *)

let t7_ablations ?(seed = 7L) ?(trials = 25) ?jobs () =
  let count_recovered flags =
    Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 flags
  in
  let sched_row label build =
    let s = Runner.sched_campaign ~build ~burst:40 ?jobs ~trials ~seed () in
    (label :: summary_cells s)
  in
  (* NMI-counter and hardwired-vector ablations use the reinstall design
     with targeted control faults. *)
  let reinstall_row label ~nmi_counter_enabled ~hardwired_nmi ~extra_faults =
    let spec = Ssos.Reinstall.weak_spec () in
    let recovered =
      count_recovered
        (Pool.run ?jobs trials (fun i ->
             let system =
               Ssos.Reinstall.build ~nmi_counter_enabled ~hardwired_nmi ()
             in
             let rng = Ssx_faults.Rng.create (Runner.trial_seed seed i) in
             Ssos.System.run system ~ticks:30_000;
             List.iter
               (fun fault ->
                 ignore
                   (Ssx_faults.Fault.apply
                      (Ssos.System.fault_system system)
                      fault))
               (extra_faults rng);
             ignore
               (Ssx_faults.Injector.inject_now
                  (Ssos.System.fault_system system)
                  ~rng ~space:Ssos.System.ram_only_fault_space 30);
             Ssos.System.run system ~ticks:400_000;
             let verdict =
               Ssx_stab.Convergence.judge ~spec
                 ~samples:
                   (Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
                 ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
             in
             Ssx_stab.Convergence.converged verdict))
    in
    [ label; Table.cell_rate recovered trials; "-"; "-" ]
  in
  (* The silent wedge: nop out the guest's heartbeat port write.  The
     guest keeps looping (and kicking a petted watchdog) while doing
     nothing useful — the failure mode an unconditionally periodic
     watchdog is immune to. *)
  let silent_wedge system =
    let mem = Ssx.Machine.memory system.Ssos.System.machine in
    let base = Ssos.Layout.os_segment lsl 4 in
    let nop = 0x70 in
    let rec hunt i =
      if i >= Ssos.Layout.os_data_offset then ()
      else if
        Ssx.Memory.read_byte mem (base + i) = 0x6A
        && Ssx.Memory.read_byte mem (base + i + 1) = Ssos.Layout.heartbeat_port
      then begin
        Ssx.Memory.write_byte mem (base + i) nop;
        Ssx.Memory.write_byte mem (base + i + 1) nop
      end
      else hunt (i + 1)
    in
    hunt 0
  in
  let wedge_row label build =
    let spec = Ssos.Reinstall.weak_spec () in
    let recovered =
      count_recovered
        (Pool.run ?jobs trials (fun _ ->
             let system = build () in
             Ssos.System.run system ~ticks:30_000;
             silent_wedge system;
             Ssos.System.run system ~ticks:300_000;
             let verdict =
               Ssx_stab.Convergence.judge ~spec
                 ~samples:
                   (Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
                 ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
             in
             Ssx_stab.Convergence.converged verdict))
    in
    [ label; Table.cell_rate recovered trials; "-"; "-" ]
  in
  let rows =
    [ wedge_row "petted watchdog + silent wedge" (fun () ->
          Ssos.Baselines.petted_watchdog ());
      wedge_row "unconditional watchdog + silent wedge" (fun () ->
          Ssos.Reinstall.build ~guest:(Ssos.Baselines.petting_guest ()) ());
      sched_row "sched: cs check = strict equality" (fun () ->
          Ssos.Sched.build ~cs_check:Ssos.Sched.Strict_eq ());
      sched_row "sched: cs check = paper's jb" (fun () ->
          Ssos.Sched.build ~cs_check:Ssos.Sched.Paper_jb ());
      sched_row "sched: cs check = none" (fun () ->
          Ssos.Sched.build ~cs_check:Ssos.Sched.No_check ());
      sched_row "sched: ip mask = windowed" (fun () ->
          Ssos.Sched.build ~ip_mask:Ssos.Sched.Windowed ());
      sched_row "sched: ip mask = paper's 0xFFF0" (fun () ->
          Ssos.Sched.build ~ip_mask:Ssos.Sched.Paper_mask ());
      sched_row "sched: ip mask = none" (fun () ->
          Ssos.Sched.build ~ip_mask:Ssos.Sched.No_mask ());
      sched_row "sched: code refresh off" (fun () ->
          Ssos.Sched.build ~refresh:false ());
      (* Random faults rarely hit the ~35 live code bytes inside each
         4 KiB window, so the refresh's value only shows under targeted
         corruption of the instruction bytes themselves. *)
      (let code_space n =
         { Ssx_faults.Fault.ram_regions =
             List.init n (fun i -> (Ssos.Layout.proc_segment i lsl 4, 48));
           registers = false;
           control_state = false;
           halt_faults = false;
           idtr_faults = false;
           watchdog_state = false }
       in
       let s =
         Runner.sched_campaign
           ~build:(fun () -> Ssos.Sched.build ~refresh:true ())
           ~space:(code_space 4) ~burst:8 ?jobs ~trials ~seed ()
       in
       ("sched: refresh on, targeted code faults" :: summary_cells s));
      (let code_space n =
         { Ssx_faults.Fault.ram_regions =
             List.init n (fun i -> (Ssos.Layout.proc_segment i lsl 4, 48));
           registers = false;
           control_state = false;
           halt_faults = false;
           idtr_faults = false;
           watchdog_state = false }
       in
       let s =
         Runner.sched_campaign
           ~build:(fun () -> Ssos.Sched.build ~refresh:false ())
           ~space:(code_space 4) ~burst:8 ?jobs ~trials ~seed ()
       in
       ("sched: refresh off, targeted code faults" :: summary_cells s));
      reinstall_row "reinstall: nmi counter ON + latch fault + halt"
        ~nmi_counter_enabled:true ~hardwired_nmi:true
        ~extra_faults:(fun _ ->
          [ Ssx_faults.Fault.Nmi_latch true; Ssx_faults.Fault.Spurious_halt ]);
      reinstall_row "reinstall: nmi counter OFF + latch fault + halt"
        ~nmi_counter_enabled:false ~hardwired_nmi:true
        ~extra_faults:(fun _ ->
          [ Ssx_faults.Fault.Nmi_latch true; Ssx_faults.Fault.Spurious_halt ]);
      reinstall_row "reinstall: hardwired NMI + idtr fault"
        ~nmi_counter_enabled:true ~hardwired_nmi:true ~extra_faults:(fun rng ->
          [ Ssx_faults.Fault.Idtr (Ssx_faults.Rng.int rng Ssx.Addr.memory_size) ]);
      reinstall_row "reinstall: idtr-routed NMI + idtr fault"
        ~nmi_counter_enabled:true ~hardwired_nmi:false ~extra_faults:(fun rng ->
          [ Ssx_faults.Fault.Idtr (Ssx_faults.Rng.int rng Ssx.Addr.memory_size) ]) ]
  in
  { Table.id = "T7";
    title = "Ablations of the paper's design choices";
    note =
      "Each hardware/software safeguard removed in isolation: the cs \
       validation and ip mask of Figure 5, the scheduler's code refresh, \
       the NMI-counter augmentation, and the hardwired NMI vector (section 2).";
    header = [ "configuration"; "recovered"; "mean rec (ticks)"; "max rec" ];
    rows }

(* ----------------------------------------------------------------- T8 *)

let t8_monitor_coverage ?(seed = 8L) ?(trials = 25) ?jobs () =
  let spec = Ssos.Monitor.spec () in
  let classes =
    [ ("task index out of range",
       fun _rng ->
         [ Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_index_addr; value = 0xEE } ]);
      ("task table entry corrupted",
       fun rng ->
         [ Ssx_faults.Fault.Ram_byte
             { addr = Ssos.Guest.task_table_addr + Ssx_faults.Rng.int rng 16;
               value = Ssx_faults.Rng.int rng 256 } ]);
      ("task divisor zeroed",
       fun _rng ->
         [ Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_table_addr + 2; value = 0 };
           Ssx_faults.Fault.Ram_byte { addr = Ssos.Guest.task_table_addr + 3; value = 0 } ]);
      ("stack pointer wild",
       fun rng -> [ Ssx_faults.Fault.Reg16 (Ssx.Registers.SP, Ssx_faults.Rng.int rng 0x10000) ]);
      ("code byte corrupted",
       fun rng ->
         [ Ssx_faults.Fault.Ram_byte
             { addr =
                 (Ssos.Layout.os_segment lsl 4) + Ssx_faults.Rng.int rng Ssos.Layout.os_data_offset;
               value = Ssx_faults.Rng.int rng 256 } ]);
      ("instruction pointer wild",
       fun rng -> [ Ssx_faults.Fault.Ip (Ssx_faults.Rng.int rng 0x10000) ]) ]
  in
  let rows =
    List.map
      (fun (label, make_faults) ->
        let outcomes =
          Pool.run ?jobs trials (fun i ->
              let monitor = Ssos.Monitor.build () in
              let system = monitor.Ssos.Monitor.system in
              let rng = Ssx_faults.Rng.create (Runner.trial_seed seed i) in
              Ssos.System.run system ~ticks:30_000;
              List.iter
                (fun fault ->
                  ignore
                    (Ssx_faults.Fault.apply
                       (Ssos.System.fault_system system)
                       fault))
                (make_faults rng);
              Ssos.System.run system ~ticks:300_000;
              let verdict =
                Ssx_stab.Convergence.judge ~spec
                  ~samples:
                    (Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
                  ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
              in
              let converged = Ssx_stab.Convergence.converged verdict in
              let time =
                if converged then
                  Ssx_stab.Convergence.recovery_time ~faults_end:30_000 verdict
                else None
              in
              (converged, time, Ssos.Monitor.detections monitor <> []))
        in
        let recovered, detected, time_sum, time_count =
          Array.fold_left
            (fun (recovered, detected, time_sum, time_count)
                 (converged, time, was_detected) ->
              ( (if converged then recovered + 1 else recovered),
                (if was_detected then detected + 1 else detected),
                (match time with Some t -> time_sum + t | None -> time_sum),
                match time with Some _ -> time_count + 1 | None -> time_count ))
            (0, 0, 0, 0) outcomes
        in
        let mean =
          if time_count = 0 then None
          else Some (float_of_int time_sum /. float_of_int time_count)
        in
        [ label;
          Table.cell_rate detected trials;
          Table.cell_rate recovered trials;
          Table.cell_opt_float ~decimals:0 mean ])
      classes
  in
  { Table.id = "T8";
    title = "Monitor (section 4): detection and repair by fault class";
    note =
      "Targeted single-fault injections against the task kernel. Detection = \
       a consistency predicate fired; recovery = strict heartbeat legality \
       returned. Code corruption is detected by the integrity predicate and \
       repaired by the ROM refresh; control-flow faults are repaired by the \
       frame validation without needing a predicate.";
    header = [ "fault class"; "predicate detected"; "recovered"; "mean rec (ticks)" ];
    rows }

(* ----------------------------------------------------------------- T9 *)

let t9_weak_vs_strict ?(seed = 9L) () =
  ignore seed;
  let horizon = 400_000 in
  let row label build =
    let system = build () in
    Ssos.System.run system ~ticks:horizon;
    let samples = Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat in
    let end_tick = Ssx.Machine.ticks system.Ssos.System.machine in
    let count spec =
      Ssx_stab.Convergence.violation_count ~spec ~samples ~end_tick
    in
    let strict = count (Ssos.Reinstall.strict_spec ()) in
    let weak = count (Ssos.Reinstall.weak_spec ()) in
    [ label;
      Table.cell_int strict;
      Table.cell_int weak;
      (if strict = 0 then "strong" else if weak = 0 then "weak only" else "neither") ]
  in
  { Table.id = "T9";
    title = "Weak vs strong legality on fault-free runs";
    note =
      "Section 2 defines weak legal executions as concatenations of prefixes \
       of legal executions. Violations of the strict counter specification \
       over a fault-free 400k-tick run: section 3's periodic restart breaks \
       it once per watchdog period (weakly legal restarts), section 4's \
       monitor never does. (Theorem 3.4 claims exactly weak stabilization.)";
    header = [ "design"; "strict violations"; "weak violations"; "legality" ];
    rows =
      [ row "s3 reinstall+restart" (fun () -> Ssos.Reinstall.build ());
        row "s3 reinstall+continue" (fun () ->
            Ssos.Reinstall.build ~variant:Ssos.Reinstall.Continue ());
        row "s4 monitor+repair (task kernel)" (fun () ->
            (Ssos.Monitor.build ()).Ssos.Monitor.system);
        (* The tiny OS: judge every process's private stream.  With
           replay-safe processes, context switching is exact, so clean
           runs are strongly legal per process. *)
        (let sched = Ssos.Sched.build () in
         Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:horizon;
         let end_tick = Ssx.Machine.ticks sched.Ssos.Sched.machine in
         let spec =
           Ssx_stab.Convergence.counter_spec ~max_gap:200_000 ~window:1 ()
         in
         let strict =
           Array.fold_left
             (fun acc hb ->
               acc
               + Ssx_stab.Convergence.violation_count ~spec
                   ~samples:(Ssx_devices.Heartbeat.samples hb)
                   ~end_tick)
             0 sched.Ssos.Sched.heartbeats
         in
         [ "s5 tiny OS (all processes)"; Table.cell_int strict;
           Table.cell_int strict;
           (if strict = 0 then "strong" else "neither") ]) ] }

(* ---------------------------------------------------------------- T10 *)

let t10_composition ?(seed = 10L) () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  let machine = system.Ssos.System.machine in
  let rng = Ssx_faults.Rng.create seed in
  (* The application layer: a token ring stepped once per OS heartbeat,
     modelling application progress driven by OS progress. *)
  let ring = Ssos_algorithms.Token_ring.create ~n:8 ~k:8 in
  let last_count = ref 0 in
  Ssx.Machine.on_event machine (fun _ _ ->
      let count = Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat in
      if count > !last_count then begin
        last_count := count;
        ignore (Ssos_algorithms.Token_ring.step_round ring)
      end);
  (* Warm up, then corrupt every layer at once. *)
  Ssos.System.run system ~ticks:60_000;
  ignore
    (Ssx_faults.Injector.inject_now (Ssos.System.fault_system system) ~rng
       ~space:Ssos.System.default_fault_space 40);
  for i = 0 to Ssos_algorithms.Token_ring.n ring - 1 do
    Ssos_algorithms.Token_ring.set_state ring i (Ssx_faults.Rng.int rng 8)
  done;
  let heartbeat_fresh machine =
    let now = Ssx.Machine.ticks machine in
    match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
    | Some s -> now - s.Ssx_devices.Heartbeat.tick < 8000
    | None -> false
  in
  let layers =
    [ { Ssx_stab.Composition.name = "processor executing";
        safe = (fun m -> not (Ssx.Machine.cpu m).Ssx.Cpu.halted) };
      { Ssx_stab.Composition.name = "operating system legal (heartbeat fresh)";
        safe = heartbeat_fresh };
      { Ssx_stab.Composition.name = "application legitimate (one token)";
        safe = (fun _ -> Ssos_algorithms.Token_ring.legitimate ring) } ]
  in
  let observations =
    Ssx_stab.Composition.observe machine ~layers ~ticks:600_000
  in
  let rows =
    List.map
      (fun o ->
        [ o.Ssx_stab.Composition.layer_name;
          (match o.Ssx_stab.Composition.stabilized_at with
          | Some t -> Table.cell_int t
          | None -> "never") ])
      observations
    @ [ [ "layering respected (lower before upper)";
          (if Ssx_stab.Composition.respects_layering observations then "yes"
           else "no") ] ]
  in
  { Table.id = "T10";
    title = "Layered stabilization: processor -> OS -> application";
    note =
      "The composition argument of section 1: once the processor executes, \
       the OS stabilizes, and then the (self-stabilizing) application - \
       Dijkstra's token ring driven by OS progress - stabilizes.";
    header = [ "layer"; "stabilized at tick" ];
    rows }

(* ---------------------------------------------------------------- T11 *)

let t11_token_ring_os ?(seed = 11L) ?(trials = 15) ?jobs () =
  let row n =
    let results =
      Pool.run ?jobs trials (fun i ->
          let sched = Ssos.Token_os.build ~n () in
          let machine = sched.Ssos.Sched.machine in
          let rng =
            Ssx_faults.Rng.create (Runner.trial_seed seed (i + (n * 1000)))
          in
          Ssx.Machine.run machine ~ticks:150_000;
          (* Joint corruption of every layer: processor registers,
             scheduler soft state, process code/data, and the ring's
             shared counters. *)
          ignore
            (Ssx_faults.Injector.inject_now (Ssos.Sched.fault_system sched)
               ~rng ~space:(Ssos.Sched.fault_space sched) 20);
          for m = 0 to n - 1 do
            Ssos.Token_os.corrupt_state sched m
              (Ssx_faults.Rng.int rng Ssos.Token_os.k)
          done;
          let start = Ssx.Machine.ticks machine in
          (* Converged = the ring is legitimate and stays so for a full
             scheduler rotation. *)
          let rotations_ticks = 4 * n * Ssos.Sched.default_watchdog_period in
          let rec settle deadline =
            match Ssos.Token_os.run_until_legitimate sched ~limit:deadline with
            | None -> None
            | Some _ ->
              let at = Ssx.Machine.ticks machine in
              let stayed = ref true in
              for _ = 1 to rotations_ticks do
                ignore (Ssx.Machine.tick machine);
                if not (Ssos.Token_os.legitimate sched) then stayed := false
              done;
              if !stayed then Some (at - start)
              else if Ssx.Machine.ticks machine - start > 2_000_000 then None
              else settle deadline
          in
          settle 2_000_000)
    in
    let recovered, time_sum, time_count =
      Array.fold_left
        (fun (recovered, time_sum, time_count) result ->
          match result with
          | Some t -> (recovered + 1, time_sum + t, time_count + 1)
          | None -> (recovered, time_sum, time_count))
        (0, 0, 0) results
    in
    let mean =
      if time_count = 0 then None
      else Some (float_of_int time_sum /. float_of_int time_count)
    in
    [ Printf.sprintf "%d ring machines on the tiny OS" n;
      Table.cell_rate recovered trials;
      Table.cell_opt_float ~decimals:0 mean ]
  in
  { Table.id = "T11";
    title = "Dijkstra's token ring as guest processes (three-layer composition)";
    note =
      "Machine-level stabilization preservation: processor, scheduler state \
       and the ring's shared counters are corrupted together; recovery = \
       exactly one privilege again, stable for a full scheduler rotation.";
    header = [ "configuration"; "recovered"; "mean rec (ticks)" ];
    rows = [ row 2; row 4; row 8 ] }

(* ---------------------------------------------------------------- T12 *)

let t12_soft_error_rates ?(seed = 12L) ?(trials = 3) ?jobs () =
  let horizon = 1_000_000 in
  let clean_beats build =
    let system = build () in
    Ssos.System.run system ~ticks:horizon;
    max 1 (Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat)
  in
  let designs =
    [ ("no recovery", (fun () -> Ssos.Baselines.none ~guest:(Ssos.Guest.heartbeat_kernel ()) ()));
      ("s3 reinstall+restart", fun () -> Ssos.Reinstall.build ());
      ("s4 monitor+repair", fun () -> (Ssos.Monitor.build ()).Ssos.Monitor.system) ]
  in
  let baselines = List.map (fun (name, build) -> (name, clean_beats build)) designs in
  (* [Injector.attach] leaves an armed, stateful hook on the machine, so
     these trials must rebuild: they are exactly the case the
     snapshot-reset engine excludes (see DESIGN.md section 4c). *)
  let availability build baseline rate trial =
    let system = build () in
    let rng = Ssx_faults.Rng.create (Runner.trial_seed seed trial) in
    ignore
      (Ssx_faults.Injector.attach
         (Ssos.System.fault_system system)
         ~rng ~space:Ssos.System.default_fault_space
         ~schedule:
           (Ssx_faults.Injector.Poisson { rate; start_tick = 0; stop_tick = horizon }));
    Ssos.System.run system ~ticks:horizon;
    float_of_int (Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat)
    /. float_of_int baseline
  in
  let rows =
    List.concat_map
      (fun rate ->
        List.map
          (fun (name, build) ->
            let baseline = List.assoc name baselines in
            let samples =
              Pool.run ?jobs trials (availability build baseline rate)
            in
            (* Summed in index order: the mean is bit-identical for any
               worker count. *)
            let mean =
              Array.fold_left ( +. ) 0.0 samples /. float_of_int trials
            in
            [ Printf.sprintf "%.0e" rate; name;
              Printf.sprintf "%.1f%%" (100.0 *. mean) ])
          designs)
      [ 1e-6; 5e-6; 2e-5; 1e-4 ]
  in
  { Table.id = "T12";
    title = "Availability under continuous soft-error rates";
    note =
      "The soft-error motivation of section 1 [32]: Poisson faults over the \
       full soft state for 1M ticks; availability = useful work relative to \
       a fault-free run of the same design.";
    header = [ "rate/tick"; "design"; "availability" ];
    rows }

(* ---------------------------------------------------------------- T13 *)

let t13_exhaustive_sweeps ?(seed = 13L) () =
  ignore seed;
  (* Sweep 1: the primitive scheduler from EVERY instruction-pointer
     value (cs fixed at the ROM segment).  Self-stabilization quantifies
     over all states; here we enumerate one whole dimension instead of
     sampling it. *)
  let prim_total = 0x10000 and prim_stride = 1 in
  let prim_failures = ref 0 in
  let round_bound = 4 * Ssos.Primitive_sched.region_size in
  (* One machine serves the whole sweep: only the control state is the
     experiment's variable, and process data carries over harmlessly
     (their counters simply keep growing). *)
  let sched = Ssos.Primitive_sched.build () in
  let machine = sched.Ssos.Primitive_sched.machine in
  let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
  let ip = ref 0 in
  while !ip < prim_total do
    regs.Ssx.Registers.cs <- Ssos.Layout.rom_segment;
    regs.Ssx.Registers.ip <- !ip;
    let before =
      Array.map Ssx_devices.Heartbeat.count sched.Ssos.Primitive_sched.heartbeats
    in
    let all_beat () =
      Array.for_all2
        (fun hb b -> Ssx_devices.Heartbeat.count hb > b)
        sched.Ssos.Primitive_sched.heartbeats before
    in
    (match Ssx.Machine.run_until machine ~limit:round_bound (fun _ -> all_beat ()) with
    | Some _ -> ()
    | None -> incr prim_failures);
    Array.iter Ssx_devices.Heartbeat.clear sched.Ssos.Primitive_sched.heartbeats;
    ip := !ip + prim_stride
  done;
  (* Sweep 2: every word of the section 5.2 scheduler's soft state
     (process table, index, stack frame area), each set to each of a set
     of adversarial values. *)
  let sched_values = [ 0x0000; 0x0001; 0x00FF; 0x2100; 0x8000; 0xFFFF ] in
  let sched_runs = ref 0 and sched_failures = ref 0 in
  let n = 4 in
  let word_addrs =
    List.init (n * 13) (fun i -> Ssos.Sched.process_record_addr 0 + (2 * i))
    @ [ Ssos.Sched.process_index_addr ]
    @ List.init 6 (fun i ->
          Ssx.Addr.physical ~seg:Ssos.Layout.sched_stack_segment
            ~off:(Ssos.Layout.sched_stack_top - 6 + (2 * i)))
  in
  List.iter
    (fun addr ->
      List.iter
        (fun value ->
          incr sched_runs;
          let sched = Ssos.Sched.build ~n () in
          let machine = sched.Ssos.Sched.machine in
          Ssx.Machine.run machine ~ticks:100_000;
          Ssx.Memory.write_word (Ssx.Machine.memory machine) addr value;
          let before =
            Array.map Ssx_devices.Heartbeat.count sched.Ssos.Sched.heartbeats
          in
          let recovered () =
            Array.for_all2
              (fun hb b -> Ssx_devices.Heartbeat.count hb > b + 1)
              sched.Ssos.Sched.heartbeats before
          in
          match
            Ssx.Machine.run_until machine
              ~limit:(3 * n * Ssos.Sched.default_watchdog_period)
              (fun _ -> recovered ())
          with
          | Some _ -> ()
          | None -> incr sched_failures)
        sched_values)
    word_addrs;
  (* Sweep 3: dense single-byte corruption of the running OS image under
     the Figure 1 design (every 4th offset, forced to 0xFF). *)
  let reinstall_runs = ref 0 and reinstall_failures = ref 0 in
  let spec = Ssos.Reinstall.weak_spec ~window:10_000 () in
  let offset = ref 0 in
  while !offset < Ssos.Layout.os_image_size do
    incr reinstall_runs;
    let system = Ssos.Reinstall.build () in
    Ssos.System.run system ~ticks:10_000;
    Ssx.Memory.write_byte
      (Ssx.Machine.memory system.Ssos.System.machine)
      ((Ssos.Layout.os_segment lsl 4) + !offset)
      0xFF;
    Ssos.System.run system ~ticks:120_000;
    let verdict =
      Ssx_stab.Convergence.judge ~spec
        ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
        ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)
    in
    if not (Ssx_stab.Convergence.converged verdict) then incr reinstall_failures;
    offset := !offset + 4
  done;
  { Table.id = "T13";
    title = "Exhaustive state-space sweeps (no sampling)";
    note =
      "Self-stabilization quantifies over ALL states. Where a dimension is \
       small enough we enumerate it outright: every instruction-pointer \
       value for the 5.1 scheduler, every soft-state word of the 5.2 \
       scheduler against six adversarial values, and a dense (stride 4) \
       single-byte corruption sweep of the running OS image under Figure 1.";
    header = [ "sweep"; "cases"; "failures" ];
    rows =
      [ [ "primitive scheduler: all 65536 ip values";
          Table.cell_int (prim_total / prim_stride);
          Table.cell_int !prim_failures ];
        [ "5.2 scheduler: every soft-state word x 6 values";
          Table.cell_int !sched_runs;
          Table.cell_int !sched_failures ];
        [ "figure 1: OS image byte -> 0xFF, stride 4";
          Table.cell_int !reinstall_runs;
          Table.cell_int !reinstall_failures ] ] }

(* ---------------------------------------------------------------- T14 *)

(* Arbitrary joint corruption of a distributed ring: every node's
   counter and every node's view of its predecessor. *)
let corrupt_ring rng ring =
  for i = 0 to ring.Ssos_net.Net_ring.n - 1 do
    Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
    Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
  done

let t14_ring_link_faults ?(seed = 14L) ?(trials = 12) ?jobs ?shards () =
  let n = 4 in
  let rates = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  let rows =
    List.map
      (fun drop ->
        let build () =
          Ssos_net.Net_ring.build ~n
            ~faults:(fun ~src:_ ~dst:_ ->
              Ssos_net.Link.lossy ~drop ~max_delay:2 ())
            ~seed:(Ssx_faults.Rng.derive seed 100) ()
        in
        (* The same master seed across rates pairs the trials: row r and
           row r' corrupt trial i identically, so differences are the
           link fault rate's alone. *)
        let summary =
          Runner.ring_campaign ~build ~perturb:corrupt_ring ~horizon:4_000
            ~window:600 ?jobs ?shards ~trials ~seed ()
        in
        [ Printf.sprintf "%.0f%%" (100. *. drop);
          Table.cell_rate summary.Runner.recoveries summary.Runner.trials;
          Table.cell_opt_float ~decimals:0 summary.Runner.mean_recovery;
          (match summary.Runner.max_recovery with
          | None -> "-"
          | Some m -> Table.cell_int m) ])
      rates
  in
  { Table.id = "T14";
    title = "Distributed token ring: convergence vs link-fault rate";
    note =
      "Dijkstra's K-state ring run across 4 machines (one guest per 5.2 \
       scheduler, counters exchanged over NICs). Each trial corrupts every \
       counter and every predecessor view with arbitrary words, then the \
       ring must reconverge to a single privilege over links that drop \
       each message with the given probability (plus 0-2 steps of delay \
       jitter). Recovery in cluster steps.";
    header = [ "drop rate"; "recovered"; "mean steps"; "max steps" ];
    rows }

(* ---------------------------------------------------------------- T15 *)

let t15_ring_combined_faults ?(seed = 15L) ?(trials = 10) ?jobs ?shards () =
  let n = 4 in
  let build () =
    Ssos_net.Net_ring.build ~n ~seed:(Ssx_faults.Rng.derive seed 200) ()
  in
  let set_links ring ~drop ~corrupt =
    Array.iter
      (fun link ->
        let f = Ssos_net.Link.faults link in
        f.Ssos_net.Link.drop <- drop;
        f.Ssos_net.Link.corrupt <- corrupt)
      (Ssos_net.Cluster.links ring.Ssos_net.Net_ring.cluster)
  in
  let perturb ~burst rng ring =
    (* Machine faults: [burst] random corruptions from each node's full
       5.2 fault space (RAM, registers, control state, watchdog),
       spread over random nodes — a node may lose its scheduler state
       entirely and must recover through its own watchdog NMI, during
       which it neither clamps nor forwards counters. *)
    for _ = 1 to burst do
      let i = Ssx_faults.Rng.int rng n in
      let sched = ring.Ssos_net.Net_ring.systems.(i) in
      ignore
        (Ssx_faults.Fault.apply
           (Ssos.Sched.fault_system sched)
           (Ssx_faults.Fault.random rng (Ssos.Sched.fault_space sched)))
    done;
    (* Joint state corruption: arbitrary words in every counter and
       every view, so the configuration is arbitrary in the paper's
       sense when the message phase starts. *)
    corrupt_ring rng ring;
    (* Message faults: a 150-step phase in which every link drops 30%
       of messages and corrupts a byte of half the rest.  Healthy nodes
       partially reconverge during the phase; crashed nodes hold their
       corrupt counters until their watchdog fires. *)
    set_links ring ~drop:0.3 ~corrupt:0.5;
    Ssos_net.Cluster.run ring.Ssos_net.Net_ring.cluster ~steps:150;
    set_links ring ~drop:0.0 ~corrupt:0.0
  in
  let rows =
    List.map
      (fun burst ->
        let summary =
          Runner.ring_campaign ~build ~perturb:(perturb ~burst) ~horizon:6_000
            ~window:800 ?jobs ?shards ~trials ~seed ()
        in
        [ Table.cell_int burst;
          Table.cell_rate summary.Runner.recoveries summary.Runner.trials;
          Table.cell_opt_float ~decimals:0 summary.Runner.mean_recovery;
          (match summary.Runner.max_recovery with
          | None -> "-"
          | Some m -> Table.cell_int m) ])
      [ 2; 4; 8; 16 ]
  in
  { Table.id = "T15";
    title = "Distributed ring under combined memory and message faults";
    note =
      "Per-node machine faults (the full 5.2 soft-state fault space), \
       arbitrary words in every counter and view, and a 150-step \
       lossy/corrupting phase on every link. Stabilization must compose: \
       each node's OS recovers via its watchdog NMI, then the ring \
       reconverges to a single privilege. Recovery in cluster steps from \
       the end of the message-fault phase.";
    header = [ "machine faults"; "recovered"; "mean steps"; "max steps" ];
    rows }

(* ---------------------------------------------------------------- T16 *)

(* Arbitrary joint corruption of a replicated service: every replica's
   token counter, view, and the whole store with its tag row. *)
let corrupt_rsm rng (service : Ssos_rsm.Service.t) =
  for i = 0 to service.Ssos_rsm.Service.n - 1 do
    Ssos_rsm.Service.corrupt_state service i (Ssx_faults.Rng.int rng 0x10000);
    Ssos_rsm.Service.corrupt_view service i (Ssx_faults.Rng.int rng 0x10000);
    for k = 0 to Ssos_rsm.Wire.keys - 1 do
      Ssos_rsm.Service.corrupt_kv service i k (Ssx_faults.Rng.int rng 0x10000);
      Ssos_rsm.Service.corrupt_tag service i k (Ssx_faults.Rng.int rng 0x10000)
    done
  done

let rsm_summary_cells (s : Runner.rsm_summary) =
  [ Table.cell_rate s.Runner.core.Runner.recoveries s.Runner.core.Runner.trials;
    Table.cell_opt_float ~decimals:0 s.Runner.core.Runner.mean_recovery;
    Table.cell_float ~decimals:1 s.Runner.mean_committed;
    Table.cell_float ~decimals:1 s.Runner.mean_lost;
    Table.cell_rate s.Runner.linearized s.Runner.core.Runner.trials ]

let t16_rsm_link_faults ?(seed = 16L) ?(trials = 8) ?jobs ?shards () =
  let n = 5 in
  let rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ] in
  let rows =
    List.map
      (fun drop ->
        let build () =
          Ssos_rsm.Service.build ~n ~obs:false
            ~faults:(fun ~src:_ ~dst:_ ->
              Ssos_net.Link.lossy ~drop ~max_delay:1 ())
            ~seed:(Ssx_faults.Rng.derive seed 100) ()
        in
        (* Same master seed across rates: row r and row r' corrupt and
           serve trial i identically, so differences are the drop
           rate's alone. *)
        let summary =
          Runner.rsm_campaign ~build ~perturb:corrupt_rsm ?jobs ?shards
            ~trials ~seed ()
        in
        Printf.sprintf "%.0f%%" (100. *. drop) :: rsm_summary_cells summary)
      rates
  in
  { Table.id = "T16";
    title = "Replicated state machine: commit throughput vs link-fault rate";
    note =
      "A 5-replica key-value log (lib/rsm) riding the token ring: replicas \
       serve client get/put traffic only while holding the token, and \
       replicate by retransmitting their tagged store every pass. Each \
       trial corrupts every replica's counter, view, store and tag row \
       with arbitrary words; the service must reconverge (common store \
       prefix) and then serve a seeded client workload linearizably while \
       the links keep dropping messages at the given rate. Recovery in \
       cluster steps; committed/lost are per-trial means over the \
       1200-step serve phase.";
    header =
      [ "drop rate"; "recovered"; "mean steps"; "committed"; "lost";
        "linearized" ];
    rows }

(* ---------------------------------------------------------------- T17 *)

let t17_rsm_combined_faults ?(seed = 17L) ?(trials = 8) ?jobs ?shards () =
  let n = 5 in
  let build () =
    Ssos_rsm.Service.build ~n ~obs:false
      ~seed:(Ssx_faults.Rng.derive seed 200) ()
  in
  let set_links (service : Ssos_rsm.Service.t) ~drop ~corrupt =
    Array.iter
      (fun link ->
        let f = Ssos_net.Link.faults link in
        f.Ssos_net.Link.drop <- drop;
        f.Ssos_net.Link.corrupt <- corrupt)
      (Ssos_net.Cluster.links service.Ssos_rsm.Service.cluster)
  in
  let perturb ~burst rng (service : Ssos_rsm.Service.t) =
    (* Machine faults: [burst] random corruptions from each node's full
       5.2 fault space, spread over random nodes — a replica may lose
       its scheduler state entirely and recover through its own
       watchdog NMI, during which it neither relays frames nor serves. *)
    for _ = 1 to burst do
      let i = Ssx_faults.Rng.int rng n in
      let sched = service.Ssos_rsm.Service.systems.(i) in
      ignore
        (Ssx_faults.Fault.apply
           (Ssos.Sched.fault_system sched)
           (Ssx_faults.Fault.random rng (Ssos.Sched.fault_space sched)))
    done;
    corrupt_rsm rng service;
    (* Message faults: a 150-step phase in which every link drops 30%
       of frames and corrupts a byte of half the rest, then clean
       links for the judged recovery and the serve phase (corrupting
       links during serving would forge store writes, which no
       replication protocol can linearize through). *)
    set_links service ~drop:0.3 ~corrupt:0.5;
    Ssos_net.Cluster.run service.Ssos_rsm.Service.cluster ~steps:150;
    set_links service ~drop:0.0 ~corrupt:0.0
  in
  let rows =
    List.map
      (fun burst ->
        let summary =
          Runner.rsm_campaign ~build ~perturb:(perturb ~burst)
            ~horizon:3_500 ~window:500 ?jobs ?shards ~trials ~seed ()
        in
        Table.cell_int burst :: rsm_summary_cells summary)
      [ 2; 4; 8 ]
  in
  { Table.id = "T17";
    title = "Replicated state machine under combined machine and message faults";
    note =
      "Per-replica machine faults (the full 5.2 soft-state fault space), \
       arbitrary words in every counter, view, store and tag row, and a \
       150-step lossy/corrupting phase on every link. Stabilization must \
       compose end to end: each node's OS recovers via its watchdog NMI, \
       the ring reconverges, the stores rejoin a common prefix, and the \
       service then serves fresh client traffic linearizably. Mean steps \
       is the MTTR from the end of the message phase; lost counts \
       accepted-but-unanswered requests (the lost window).";
    header =
      [ "machine faults"; "recovered"; "mean steps"; "committed"; "lost";
        "linearized" ];
    rows }

(* ---------------------------------------------------------------- T18 *)

let dist_cells = function
  | None -> [ "-"; "-"; "-"; "-" ]
  | Some (d : Runner.distribution) ->
    [ Table.cell_int d.Runner.p50;
      Table.cell_int d.Runner.p90;
      Table.cell_int d.Runner.p99;
      Table.cell_int d.Runner.max ]

(* The daemon matrix shared by T18/T19: the two friendly built-ins,
   the unfair starver, crash-and-resurrect, and the state-inspecting
   adaptive adversary (heuristic scoring — the exact-table variant is
   exercised by the differential tests, where the table is cheap).
   Victim 1/2 rather than 0: starving the bottom node only stops the
   increment, while starving a copier freezes a whole ring segment. *)
let t18_daemons ~warmup =
  [ ("round-robin", Ssos_net.Cluster.Round_robin);
    ("fair-random", Ssos_net.Cluster.Fair_random);
    ( "starve{1}",
      Ssos_net.Cluster.Daemon (Ssx_stab.Adversary.starve ~victim:1 ()) );
    ( "crash{1}",
      (* Down for the first 400 recovery steps, state preserved. *)
      Ssos_net.Cluster.Daemon
        (Ssx_stab.Adversary.crash ~victim:1 ~down_from:warmup ~down_for:400 ())
    );
    ( "adaptive",
      Ssos_net.Cluster.Daemon
        (Ssx_stab.Adversary.adaptive ~k:Ssos_net.Net_ring.k ()) ) ]

let t18_ring_daemon_matrix ?(seed = 18L) ?(trials = 10) ?jobs ?shards () =
  let n = 4 in
  let warmup = 200 in
  let drops = [ 0.0; 0.2 ] in
  let rows =
    List.concat_map
      (fun (label, policy) ->
        List.map
          (fun drop ->
            let build () =
              Ssos_net.Net_ring.build ~n ~policy
                ~faults:(fun ~src:_ ~dst:_ ->
                  Ssos_net.Link.lossy ~drop ~max_delay:2 ())
                ~seed:(Ssx_faults.Rng.derive seed 100) ()
            in
            (* Same master seed everywhere: every cell corrupts trial i
               identically, so differences are the daemon's and the
               drop rate's alone. *)
            let outcomes =
              Runner.ring_campaign_outcomes ~build ~perturb:corrupt_ring
                ~warmup ~horizon:3_000 ~window:500 ?jobs ?shards ~trials
                ~seed ()
            in
            let summary = Runner.summarize outcomes in
            label
            :: Printf.sprintf "%.0f%%" (100. *. drop)
            :: Table.cell_rate summary.Runner.recoveries summary.Runner.trials
            :: dist_cells (Runner.distribution outcomes))
          drops)
      (t18_daemons ~warmup)
  in
  { Table.id = "T18";
    title = "Token ring: convergence distributions per scheduling daemon";
    note =
      "The T14 scenario (4-node ring, every counter and view corrupted \
       with arbitrary words) re-run under the full daemon matrix, \
       reporting the exact convergence distribution in cluster steps \
       (nearest-rank percentiles over recovered trials) instead of the \
       mean alone. Round-robin and fair-random are the paper's friendly \
       schedules; starve{1} never schedules node 1 (Dolev/Herman's \
       unsupportive environment — the ring cannot reconverge and the \
       claim's fairness hypothesis is shown necessary, not decorative); \
       crash{1} silences node 1 for the first 400 recovery steps with \
       state preserved (convergence waits for the resurrection); the \
       adaptive daemon inspects the enabled guards each step and \
       schedules the node whose move maximizes distance to legitimacy.";
    header = [ "daemon"; "drop"; "recovered"; "p50"; "p90"; "p99"; "max" ];
    rows }

(* ---------------------------------------------------------------- T19 *)

let t19_rsm_daemon_matrix ?(seed = 19L) ?(trials = 6) ?jobs ?shards () =
  let n = 5 in
  let warmup = 400 in
  let daemons =
    [ ("round-robin", Ssos_net.Cluster.Round_robin);
      ("fair-random", Ssos_net.Cluster.Fair_random);
      ( "starve{2}",
        Ssos_net.Cluster.Daemon (Ssx_stab.Adversary.starve ~victim:2 ()) );
      ( "crash{2}",
        (* Recurring outages: 100 steps down out of every 500, through
           both the recovery horizon and the serve phase. *)
        Ssos_net.Cluster.Daemon
          (Ssx_stab.Adversary.crash ~victim:2 ~down_from:warmup ~down_for:100
             ~period:500 ()) );
      ( "adaptive",
        Ssos_net.Cluster.Daemon
          (Ssx_stab.Adversary.adaptive ~k:Ssos_rsm.Wire.k ()) ) ]
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let build () =
          Ssos_rsm.Service.build ~n ~policy ~obs:false
            ~faults:(fun ~src:_ ~dst:_ ->
              Ssos_net.Link.lossy ~drop:0.1 ~max_delay:1 ())
            ~seed:(Ssx_faults.Rng.derive seed 100) ()
        in
        let outcomes =
          Runner.rsm_campaign_outcomes ~build ~perturb:corrupt_rsm ~warmup
            ?jobs ?shards ~trials ~seed ()
        in
        let summary = Runner.rsm_summarize outcomes in
        let base = List.map (fun o -> o.Runner.base) outcomes in
        (label
         :: Table.cell_rate summary.Runner.core.Runner.recoveries
              summary.Runner.core.Runner.trials
         :: dist_cells (Runner.distribution base))
        @ [ Table.cell_float ~decimals:1 summary.Runner.mean_committed;
            Table.cell_float ~decimals:1 summary.Runner.mean_lost;
            Table.cell_rate summary.Runner.linearized
              summary.Runner.core.Runner.trials ])
      daemons
  in
  { Table.id = "T19";
    title = "Replicated state machine under adversarial daemons";
    note =
      "The T16 scenario (5 replicas, 10% link drop, every counter, view, \
       store and tag row corrupted) under the daemon matrix. A starved \
       replica freezes its whole ring segment: the service never \
       reconverges and the token parks once it reaches the victim, so \
       commits collapse and the lost window grows — safety (linearized \
       commits) survives while liveness dies. Crash-and-resurrect \
       outages recur through the serve phase and show up as committed \
       throughput lost to each 100-step silence. The adaptive adversary \
       can stall recovery but not a stabilized ring: in a legitimate \
       configuration exactly one replica is enabled, so the \
       worst-enabled-node daemon has no choice left but the token \
       holder.";
    header =
      [ "daemon"; "recovered"; "p50"; "p90"; "p99"; "max"; "committed";
        "lost"; "linearized" ];
    rows }

(* ---------------------------------------------------------------- T20 *)

let t20_serve_fault_rates ?(seed = 20L) ?(duration = 3_000) ?jobs ?shards () =
  let rates = [ 0.0; 0.001; 0.004; 0.016 ] in
  let rows =
    List.mapi
      (fun i fault_rate ->
        let s =
          Ssos_serve.Engine.serve ~nodes:5 ~rate:0.08 ~fault_rate ?jobs
            ?shards:(Option.map (max 1) shards) ~duration
            ~seed:(Ssx_faults.Rng.derive seed (i + 1)) ()
        in
        let mean_mttr =
          match s.Ssos_serve.Engine.mttr with
          | [] -> None
          | mttr ->
            let count, sum =
              List.fold_left
                (fun (c, sum) (m : Ssos_serve.Engine.mttr) ->
                  ( c + m.Ssos_serve.Engine.incidents,
                    sum
                    +. (m.Ssos_serve.Engine.mean_steps
                       *. float_of_int m.Ssos_serve.Engine.incidents) ))
                (0, 0.) mttr
            in
            Some (sum /. float_of_int count)
        in
        [ Table.cell_float ~decimals:3 fault_rate;
          Table.cell_int
            (List.fold_left (fun a (_, c) -> a + c) 0
               s.Ssos_serve.Engine.fault_arrivals);
          Table.cell_float ~decimals:3 s.Ssos_serve.Engine.availability;
          Table.cell_float ~decimals:3
            s.Ssos_serve.Engine.min_window_availability;
          Table.cell_int s.Ssos_serve.Engine.p50;
          Table.cell_int s.Ssos_serve.Engine.p99;
          Table.cell_int s.Ssos_serve.Engine.detected;
          Table.cell_int s.Ssos_serve.Engine.repaired;
          Table.cell_opt_float ~decimals:1 mean_mttr;
          (if s.Ssos_serve.Engine.final_legal then "yes" else "no") ])
      rates
  in
  { Table.id = "T20";
    title = "Continuous operation: availability and MTTR vs fault rate";
    note =
      "The serve engine's closed execute/observe/detect/repair loop \
       (lib/serve) over a 5-replica service for 3,000 cluster steps at \
       8% request rate, under increasing background fault rates \
       (Bernoulli per-step arrivals, each one random fault from a \
       uniformly chosen node's full \xc2\xa75.2 space). Availability is \
       committed/injected; incidents open when a 150-step window loses \
       ring legality or its availability floor (85%) and close at the \
       next fully healthy window; MTTR is the mean open time in cluster \
       steps. Availability-under-continuous-faults is the claim the \
       paper motivates in \xc2\xa71 and Ideal Stabilization formalizes; \
       the loop itself is SNIPPETS.md #3's ouroboros pattern.";
    header =
      [ "fault-rate"; "arrivals"; "avail"; "min-window"; "p50"; "p99";
        "detected"; "repaired"; "mttr"; "final-legal" ];
    rows }

let all =
  [ ("T1", fun ?jobs ?shards () -> ignore shards; t1_reinstall_recovery ?jobs ());
    ("T2", fun ?jobs ?shards () -> ignore shards; t2_lemma_bounds ?jobs ());
    ("T3", fun ?jobs ?shards () -> ignore shards; t3_approach_comparison ?jobs ());
    ("T4", fun ?jobs ?shards () -> ignore shards; t4_period_sweep ?jobs ());
    ("T5", fun ?jobs ?shards () -> ignore shards; t5_primitive_fairness ?jobs ());
    ("T6", fun ?jobs ?shards () -> ignore shards; t6_sched_stabilization ?jobs ());
    ("T7", fun ?jobs ?shards () -> ignore shards; t7_ablations ?jobs ());
    ("T8", fun ?jobs ?shards () -> ignore shards; t8_monitor_coverage ?jobs ());
    ("T9", fun ?jobs ?shards () -> ignore jobs; ignore shards; t9_weak_vs_strict ());
    ("T10", fun ?jobs ?shards () -> ignore jobs; ignore shards; t10_composition ());
    ("T11", fun ?jobs ?shards () -> ignore shards; t11_token_ring_os ?jobs ());
    ("T12", fun ?jobs ?shards () -> ignore shards; t12_soft_error_rates ?jobs ());
    ("T13", fun ?jobs ?shards () -> ignore jobs; ignore shards; t13_exhaustive_sweeps ());
    ("T14", fun ?jobs ?shards () -> t14_ring_link_faults ?jobs ?shards ());
    ("T15", fun ?jobs ?shards () -> t15_ring_combined_faults ?jobs ?shards ());
    ("T16", fun ?jobs ?shards () -> t16_rsm_link_faults ?jobs ?shards ());
    ("T17", fun ?jobs ?shards () -> t17_rsm_combined_faults ?jobs ?shards ());
    ("T18", fun ?jobs ?shards () -> t18_ring_daemon_matrix ?jobs ?shards ());
    ("T19", fun ?jobs ?shards () -> t19_rsm_daemon_matrix ?jobs ?shards ());
    ("T20", fun ?jobs ?shards () -> t20_serve_fault_rates ?jobs ?shards ()) ]

let find id =
  let id = String.uppercase_ascii id in
  List.assoc_opt id all
