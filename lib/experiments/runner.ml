type outcome = {
  recovered : bool;
  recovery_ticks : int option;
}

type summary = {
  trials : int;
  recoveries : int;
  mean_recovery : float option;
  max_recovery : int option;
}

let summarize outcomes =
  let trials = List.length outcomes in
  let recovered = List.filter (fun o -> o.recovered) outcomes in
  let times = List.filter_map (fun o -> o.recovery_ticks) recovered in
  let mean_recovery =
    match times with
    | [] -> None
    | times ->
      Some
        (float_of_int (List.fold_left ( + ) 0 times)
        /. float_of_int (List.length times))
  in
  let max_recovery =
    match times with [] -> None | t :: rest -> Some (List.fold_left max t rest)
  in
  { trials; recoveries = List.length recovered; mean_recovery; max_recovery }

let trial_seed master i =
  (* splitmix-style derivation keeps trials independent. *)
  let rng = Ssx_faults.Rng.create (Int64.add master (Int64.of_int (i * 1337))) in
  Ssx_faults.Rng.next_int64 rng

let heartbeat_trial ~build ~space ~spec ~burst ~warmup ~horizon ~seed =
  let system = build () in
  let rng = Ssx_faults.Rng.create seed in
  Ssos.System.run system ~ticks:warmup;
  ignore
    (Ssx_faults.Injector.inject_now (Ssos.System.fault_system system) ~rng ~space
       burst);
  Ssos.System.run system ~ticks:horizon;
  let end_tick = Ssx.Machine.ticks system.Ssos.System.machine in
  let verdict =
    Ssx_stab.Convergence.judge ~spec
      ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
      ~end_tick
  in
  { recovered = Ssx_stab.Convergence.converged verdict;
    recovery_ticks = Ssx_stab.Convergence.recovery_time ~faults_end:warmup verdict }

let heartbeat_campaign ~build ~space ~spec ~burst ?(warmup = 30_000)
    ?(horizon = 400_000) ~trials ~seed () =
  summarize
    (List.init trials (fun i ->
         heartbeat_trial ~build ~space ~spec ~burst ~warmup ~horizon
           ~seed:(trial_seed seed i)))

let sched_trial ~build ?space ~burst ~warmup ~horizon ~max_gap ~window ~seed () =
  let sched = build () in
  let space =
    match space with Some s -> s | None -> Ssos.Sched.fault_space sched
  in
  let rng = Ssx_faults.Rng.create seed in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:warmup;
  ignore
    (Ssx_faults.Injector.inject_now (Ssos.Sched.fault_system sched) ~rng ~space
       burst);
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:horizon;
  let end_tick = Ssx.Machine.ticks sched.Ssos.Sched.machine in
  let spec = { (Ssx_stab.Convergence.counter_spec ()) with max_gap; window } in
  let verdicts =
    Array.to_list
      (Array.map
         (fun hb ->
           Ssx_stab.Convergence.judge ~spec
             ~samples:(Ssx_devices.Heartbeat.samples hb)
             ~end_tick)
         sched.Ssos.Sched.heartbeats)
  in
  let recovered = List.for_all Ssx_stab.Convergence.converged verdicts in
  let recovery_ticks =
    if not recovered then None
    else
      (* The system has recovered once its slowest process has. *)
      List.fold_left
        (fun acc verdict ->
          match
            (acc, Ssx_stab.Convergence.recovery_time ~faults_end:warmup verdict)
          with
          | Some a, Some b -> Some (max a b)
          | None, some | some, None -> some)
        None verdicts
  in
  { recovered; recovery_ticks }

let sched_campaign ~build ?space ~burst ?(warmup = 100_000)
    ?(horizon = 600_000) ?(max_gap = 100_000) ?(window = 150_000) ~trials ~seed
    () =
  summarize
    (List.init trials (fun i ->
         sched_trial ~build ?space ~burst ~warmup ~horizon ~max_gap ~window
           ~seed:(trial_seed seed i) ()))

let scramble_processor rng system =
  let machine = system.Ssos.System.machine in
  let cpu = Ssx.Machine.cpu machine in
  let regs = cpu.Ssx.Cpu.regs in
  let word () = Ssx_faults.Rng.int rng 0x10000 in
  List.iter (fun r -> Ssx.Registers.set16 regs r (word ())) Ssx.Registers.all_reg16;
  List.iter (fun r -> Ssx.Registers.set_sreg regs r (word ())) Ssx.Registers.all_sreg;
  regs.Ssx.Registers.ip <- word ();
  regs.Ssx.Registers.psw <- word ();
  regs.Ssx.Registers.nmi_counter <-
    Ssx_faults.Rng.int rng (cpu.Ssx.Cpu.config.Ssx.Cpu.nmi_counter_max + 1);
  cpu.Ssx.Cpu.in_nmi <- Ssx_faults.Rng.bool rng;
  cpu.Ssx.Cpu.halted <- Ssx_faults.Rng.bool rng;
  (match system.Ssos.System.watchdog with
  | Some wd ->
    Ssx_devices.Watchdog.corrupt wd (Ssx_faults.Rng.int rng 0x1000000)
  | None -> ());
  (* Arbitrary guest RAM. *)
  let mem = Ssx.Machine.memory machine in
  let base = Ssos.Layout.os_segment lsl 4 in
  for i = 0 to Ssos.Layout.os_image_size - 1 do
    Ssx.Memory.write_byte mem (base + i) (Ssx_faults.Rng.int rng 256)
  done
