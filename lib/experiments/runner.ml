type outcome = {
  recovered : bool;
  recovery_ticks : int option;
}

type summary = {
  trials : int;
  recoveries : int;
  mean_recovery : float option;
  max_recovery : int option;
}

let summarize outcomes =
  (* One pass: trial count, recovery count, and the recovery-time
     sum/count/max all accumulate in a single fold. *)
  let trials, recoveries, time_sum, time_count, max_recovery =
    List.fold_left
      (fun (trials, recoveries, time_sum, time_count, max_recovery) o ->
        let trials = trials + 1 in
        if not o.recovered then
          (trials, recoveries, time_sum, time_count, max_recovery)
        else
          match o.recovery_ticks with
          | None -> (trials, recoveries + 1, time_sum, time_count, max_recovery)
          | Some t ->
            let max_recovery =
              Some (match max_recovery with None -> t | Some m -> max m t)
            in
            (trials, recoveries + 1, time_sum + t, time_count + 1, max_recovery))
      (0, 0, 0, 0, None) outcomes
  in
  let mean_recovery =
    if time_count = 0 then None
    else Some (float_of_int time_sum /. float_of_int time_count)
  in
  { trials; recoveries; mean_recovery; max_recovery }

type distribution = {
  samples : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

(* Exact nearest-rank percentile over the sorted recovery times: the
   q-percentile is the ceil(q * samples)-th smallest. *)
let nearest_rank sorted q =
  let count = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int count)) in
  sorted.(max 0 (min (count - 1) (rank - 1)))

let distribution outcomes =
  let times =
    List.filter_map
      (fun o -> if o.recovered then o.recovery_ticks else None)
      outcomes
  in
  match times with
  | [] -> None
  | times ->
    let sorted = Array.of_list times in
    Array.sort compare sorted;
    Some
      { samples = Array.length sorted;
        p50 = nearest_rank sorted 0.5;
        p90 = nearest_rank sorted 0.9;
        p99 = nearest_rank sorted 0.99;
        max = sorted.(Array.length sorted - 1) }

(* Campaign telemetry.  [summarize] stays a pure fold over outcomes —
   the summary a caller sees is computed the same way with metrics on
   or off — and the observability layer is fed afterwards, from the
   same outcomes: per-campaign trial/recovery counters, a
   recovery-time histogram (whose exact count/sum/max side-cars carry
   everything the summary holds), and last-campaign gauges. *)
let publish ~campaign outcomes summary =
  if Ssos_obs.Obs.enabled () then begin
    let name stat = Printf.sprintf "campaign{id=%s}.%s" campaign stat in
    Ssos_obs.Obs.incr ~by:summary.trials
      (Ssos_obs.Obs.counter (name "trials"));
    Ssos_obs.Obs.incr ~by:summary.recoveries
      (Ssos_obs.Obs.counter (name "recoveries"));
    let hist = Ssos_obs.Obs.histogram (name "recovery-ticks") in
    List.iter
      (fun o ->
        match o.recovery_ticks with
        | Some t when o.recovered -> Ssos_obs.Obs.observe hist (float_of_int t)
        | Some _ | None -> ())
      outcomes;
    Option.iter
      (Ssos_obs.Obs.set (Ssos_obs.Obs.gauge (name "mean-recovery-ticks")))
      summary.mean_recovery;
    Option.iter
      (Ssos_obs.Obs.set_int (Ssos_obs.Obs.gauge (name "max-recovery-ticks")))
      summary.max_recovery;
    Ssos_obs.Obs.event "campaign.summary"
      ~fields:
        [ ("campaign", campaign);
          ("trials", string_of_int summary.trials);
          ("recoveries", string_of_int summary.recoveries) ]
  end;
  summary

let trial_seed = Ssx_faults.Rng.derive

(* The trial plumbing — per-trial seed derivation, Rebuild vs
   Snapshot_reset, the worker pool — lives in Ssos_serve.Cycle now;
   the campaigns below are thin wrappers.  The re-expression is
   call-for-call identical to the old inline loops, so every summary
   is bit-identical (pinned by test_campaigns.ml). *)
type strategy = Ssos_serve.Cycle.strategy = Rebuild | Snapshot_reset

let heartbeat_outcome ~spec ~warmup system =
  let end_tick = Ssx.Machine.ticks system.Ssos.System.machine in
  let verdict =
    Ssx_stab.Convergence.judge ~spec
      ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
      ~end_tick
  in
  { recovered = Ssx_stab.Convergence.converged verdict;
    recovery_ticks = Ssx_stab.Convergence.recovery_time ~faults_end:warmup verdict }

let heartbeat_trial ~build ~space ~spec ~burst ~warmup ~horizon ~seed =
  let system = build () in
  let rng = Ssx_faults.Rng.create seed in
  Ssos.System.run system ~ticks:warmup;
  ignore
    (Ssx_faults.Injector.inject_now (Ssos.System.fault_system system) ~rng ~space
       burst);
  Ssos.System.run system ~ticks:horizon;
  heartbeat_outcome ~spec ~warmup system

let heartbeat_campaign ~build ~space ~spec ~burst ?(warmup = 30_000)
    ?(horizon = 400_000) ?strategy ?oversubscribe ?jobs ~trials ~seed () =
  let outcomes =
    Ssos_serve.Cycle.trials ?strategy ?oversubscribe ?jobs ~trials ~seed
      ~rebuild:(fun ~seed ->
        heartbeat_trial ~build ~space ~spec ~burst ~warmup ~horizon ~seed)
      ~warm:(fun () ->
        let system = build () in
        Ssos.System.run system ~ticks:warmup;
        (system, Ssx.Snapshot.capture system.Ssos.System.machine))
      ~reset:(fun (system, snapshot) ~seed ->
        Ssx.Snapshot.restore snapshot system.Ssos.System.machine;
        let rng = Ssx_faults.Rng.create seed in
        ignore
          (Ssx_faults.Injector.inject_now
             (Ssos.System.fault_system system)
             ~rng ~space burst);
        Ssos.System.run system ~ticks:horizon;
        heartbeat_outcome ~spec ~warmup system)
      ()
  in
  publish ~campaign:"heartbeat" outcomes (summarize outcomes)

let sched_outcome ~warmup ~max_gap ~window sched =
  let end_tick = Ssx.Machine.ticks sched.Ssos.Sched.machine in
  let spec = { (Ssx_stab.Convergence.counter_spec ()) with max_gap; window } in
  let verdicts =
    Array.map
      (fun hb ->
        Ssx_stab.Convergence.judge ~spec
          ~samples:(Ssx_devices.Heartbeat.samples hb)
          ~end_tick)
      sched.Ssos.Sched.heartbeats
  in
  let recovered = Array.for_all Ssx_stab.Convergence.converged verdicts in
  let recovery_ticks =
    if not recovered then None
    else
      (* The system has recovered once its slowest process has. *)
      Array.fold_left
        (fun acc verdict ->
          match
            (acc, Ssx_stab.Convergence.recovery_time ~faults_end:warmup verdict)
          with
          | Some a, Some b -> Some (max a b)
          | None, some | some, None -> some)
        None verdicts
  in
  { recovered; recovery_ticks }

let sched_trial ~build ?space ~burst ~warmup ~horizon ~max_gap ~window ~seed () =
  let sched = build () in
  let space =
    match space with Some s -> s | None -> Ssos.Sched.fault_space sched
  in
  let rng = Ssx_faults.Rng.create seed in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:warmup;
  ignore
    (Ssx_faults.Injector.inject_now (Ssos.Sched.fault_system sched) ~rng ~space
       burst);
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:horizon;
  sched_outcome ~warmup ~max_gap ~window sched

let sched_campaign ~build ?space ~burst ?(warmup = 100_000)
    ?(horizon = 600_000) ?(max_gap = 100_000) ?(window = 150_000) ?strategy
    ?oversubscribe ?jobs ~trials ~seed () =
  let outcomes =
    Ssos_serve.Cycle.trials ?strategy ?oversubscribe ?jobs ~trials ~seed
      ~rebuild:(fun ~seed ->
        sched_trial ~build ?space ~burst ~warmup ~horizon ~max_gap ~window
          ~seed ())
      ~warm:(fun () ->
        let sched = build () in
        let space =
          match space with
          | Some s -> s
          | None -> Ssos.Sched.fault_space sched
        in
        Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:warmup;
        (sched, space, Ssx.Snapshot.capture sched.Ssos.Sched.machine))
      ~reset:(fun (sched, space, snapshot) ~seed ->
        Ssx.Snapshot.restore snapshot sched.Ssos.Sched.machine;
        let rng = Ssx_faults.Rng.create seed in
        ignore
          (Ssx_faults.Injector.inject_now (Ssos.Sched.fault_system sched) ~rng
             ~space burst);
        Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:horizon;
        sched_outcome ~warmup ~max_gap ~window sched)
      ()
  in
  publish ~campaign:"sched" outcomes (summarize outcomes)

let ring_outcome ?shards ~window ~horizon ring =
  (* The perturbation may itself have stepped the cluster (e.g. a
     message-fault phase); recovery counts from wherever it ended. *)
  let faults_end = Ssos_net.Cluster.steps ring.Ssos_net.Net_ring.cluster in
  let samples = Ssos_net.Net_ring.observe ?shards ring ~steps:horizon in
  let verdict =
    Ssx_stab.Distributed.judge ~window ~samples
      ~end_step:(Ssos_net.Cluster.steps ring.Ssos_net.Net_ring.cluster)
  in
  { recovered = Ssx_stab.Convergence.converged verdict;
    recovery_ticks = Ssx_stab.Convergence.recovery_time ~faults_end verdict }

let warmup_cluster ?shards cluster ~steps =
  match shards with
  | None -> Ssos_net.Cluster.run cluster ~steps
  | Some shards -> Ssos_net.Cluster.run_sharded ~shards cluster ~steps

let ring_trial ?shards ~build ~perturb ~warmup ~horizon ~window ~seed () =
  let ring = build () in
  let rng = Ssx_faults.Rng.create seed in
  warmup_cluster ?shards ring.Ssos_net.Net_ring.cluster ~steps:warmup;
  perturb rng ring;
  ring_outcome ?shards ~window ~horizon ring

(* [shards] parallelizes *within* each trial via the sharded cluster
   stepper — orthogonal to [jobs], which parallelizes across trials.
   The two compose (each worker domain's trials shard further), but the
   useful configurations are jobs-only for many small clusters and
   shards-only for a few big ones.  Summaries are bit-identical for any
   [shards], because the sharded stepper and the reconstructed sample
   streams are (Cluster.run_sharded / Net_ring.observe). *)
let ring_campaign_outcomes ~build ~perturb ?(warmup = 200) ?(horizon = 2_500)
    ?(window = 600) ?strategy ?oversubscribe ?jobs ?shards ~trials ~seed () =
  let outcomes =
    Ssos_serve.Cycle.trials ?strategy ?oversubscribe ?jobs ~trials ~seed
      ~rebuild:(fun ~seed ->
        ring_trial ?shards ~build ~perturb ~warmup ~horizon ~window ~seed ())
      ~warm:(fun () ->
        (* One cluster and one post-warmup snapshot per worker domain.
           Cluster snapshots cover every node (NIC queues ride along
           as machine resettables), every link — including the mutable
           fault-model phase — the interleaving RNG and the step
           counter, so restoring is observationally identical to
           rebuilding and re-warming. *)
        let ring = build () in
        warmup_cluster ?shards ring.Ssos_net.Net_ring.cluster ~steps:warmup;
        (ring, Ssos_net.Cluster.capture ring.Ssos_net.Net_ring.cluster))
      ~reset:(fun (ring, snapshot) ~seed ->
        Ssos_net.Cluster.restore ring.Ssos_net.Net_ring.cluster snapshot;
        let rng = Ssx_faults.Rng.create seed in
        perturb rng ring;
        ring_outcome ?shards ~window ~horizon ring)
      ()
  in
  ignore (publish ~campaign:"ring" outcomes (summarize outcomes));
  outcomes

let ring_campaign ~build ~perturb ?warmup ?horizon ?window ?strategy
    ?oversubscribe ?jobs ?shards ~trials ~seed () =
  summarize
    (ring_campaign_outcomes ~build ~perturb ?warmup ?horizon ?window ?strategy
       ?oversubscribe ?jobs ?shards ~trials ~seed ())

type rsm_outcome = {
  base : outcome;
  committed : int;
  lost : int;
  linearizable : bool;
}

type rsm_summary = {
  core : summary;
  mean_committed : float;
  mean_lost : float;
  linearized : int;
}

let rsm_summarize outcomes =
  let core = summarize (List.map (fun o -> o.base) outcomes) in
  let committed, lost, linearized =
    List.fold_left
      (fun (c, l, n) o ->
        (c + o.committed, l + o.lost, if o.linearizable then n + 1 else n))
      (0, 0, 0) outcomes
  in
  let per x =
    if core.trials = 0 then 0. else float_of_int x /. float_of_int core.trials
  in
  { core;
    mean_committed = per committed;
    mean_lost = per lost;
    linearized }

let rsm_publish ~campaign outcomes summary =
  ignore (publish ~campaign (List.map (fun o -> o.base) outcomes) summary.core);
  if Ssos_obs.Obs.enabled () then begin
    let name stat = Printf.sprintf "campaign{id=%s}.%s" campaign stat in
    List.iter
      (fun o ->
        Ssos_obs.Obs.incr ~by:o.committed
          (Ssos_obs.Obs.counter (name "committed"));
        Ssos_obs.Obs.incr ~by:o.lost (Ssos_obs.Obs.counter (name "lost")))
      outcomes;
    Ssos_obs.Obs.incr ~by:summary.linearized
      (Ssos_obs.Obs.counter (name "linearized"))
  end;
  summary

(* The serve-phase schedule is derived from the trial seed on a fixed
   side stream, so it is independent of the perturbation's rng draws
   and identical for any jobs/shards split. *)
let rsm_schedule ~rate ~serve_steps ~tseed (service : Ssos_rsm.Service.t) =
  let n = service.Ssos_rsm.Service.n in
  Ssos_rsm.Workload.schedule ~rate ~n
    ~slots:(((serve_steps + n - 1) / n) + 1)
    ~seed:(Ssx_faults.Rng.derive tseed 0x5e12e) ()

let rsm_trial_body ?shards ~perturb ~horizon ~window ~rate ~serve_steps ~tseed
    (service : Ssos_rsm.Service.t) =
  let rng = Ssx_faults.Rng.create tseed in
  perturb rng service;
  (* The perturbation may itself step the cluster (a message-fault
     phase); recovery counts from wherever it ended. *)
  let faults_end = Ssos_net.Cluster.steps service.Ssos_rsm.Service.cluster in
  let samples = Ssos_rsm.Service.observe ?shards service ~steps:horizon in
  let verdict =
    Ssx_stab.Distributed.rsm_judge ~window ~samples
      ~end_step:(Ssos_net.Cluster.steps service.Ssos_rsm.Service.cluster)
  in
  let base =
    { recovered = Ssx_stab.Convergence.converged verdict;
      recovery_ticks = Ssx_stab.Convergence.recovery_time ~faults_end verdict }
  in
  (* Serve phase: fresh client traffic against the recovered service.
     The linearizability reference starts from replica 0's store as of
     serve start — exactly the judge's common store when converged. *)
  let wl =
    Ssos_rsm.Workload.create service
      (rsm_schedule ~rate ~serve_steps ~tseed service)
  in
  Ssos_rsm.Workload.discard wl;
  let init = Ssos_rsm.Service.kv service 0 in
  Ssos_rsm.Workload.run ?shards wl ~steps:serve_steps;
  { base;
    committed = Ssos_rsm.Workload.matched wl;
    lost = Ssos_rsm.Workload.lost wl;
    linearizable =
      Ssx_stab.Distributed.linearizable ~init ~ops:(Ssos_rsm.Workload.ops wl)
      = None }

let rsm_trial ?shards ~build ~perturb ~warmup ~horizon ~window ~rate
    ~serve_steps ~seed () =
  let service = build () in
  warmup_cluster ?shards service.Ssos_rsm.Service.cluster ~steps:warmup;
  rsm_trial_body ?shards ~perturb ~horizon ~window ~rate ~serve_steps
    ~tseed:seed service

let rsm_campaign_outcomes ~build ~perturb ?(warmup = 400) ?(horizon = 2_500)
    ?(window = 400) ?(rate = 0.05) ?(serve_steps = 1_200) ?strategy
    ?oversubscribe ?jobs ?shards ~trials ~seed () =
  let outcomes =
    Ssos_serve.Cycle.trials ?strategy ?oversubscribe ?jobs ~trials ~seed
      ~rebuild:(fun ~seed ->
        rsm_trial ?shards ~build ~perturb ~warmup ~horizon ~window ~rate
          ~serve_steps ~seed ())
      ~warm:(fun () ->
        let service = build () in
        warmup_cluster ?shards service.Ssos_rsm.Service.cluster ~steps:warmup;
        (service, Ssos_net.Cluster.capture service.Ssos_rsm.Service.cluster))
      ~reset:(fun (service, snapshot) ~seed ->
        Ssos_net.Cluster.restore service.Ssos_rsm.Service.cluster snapshot;
        rsm_trial_body ?shards ~perturb ~horizon ~window ~rate ~serve_steps
          ~tseed:seed service)
      ()
  in
  ignore (rsm_publish ~campaign:"rsm" outcomes (rsm_summarize outcomes));
  outcomes

let rsm_campaign ~build ~perturb ?warmup ?horizon ?window ?rate ?serve_steps
    ?strategy ?oversubscribe ?jobs ?shards ~trials ~seed () =
  rsm_summarize
    (rsm_campaign_outcomes ~build ~perturb ?warmup ?horizon ?window ?rate
       ?serve_steps ?strategy ?oversubscribe ?jobs ?shards ~trials ~seed ())

let scramble_processor rng system =
  let machine = system.Ssos.System.machine in
  let cpu = Ssx.Machine.cpu machine in
  let regs = cpu.Ssx.Cpu.regs in
  let word () = Ssx_faults.Rng.int rng 0x10000 in
  List.iter (fun r -> Ssx.Registers.set16 regs r (word ())) Ssx.Registers.all_reg16;
  List.iter (fun r -> Ssx.Registers.set_sreg regs r (word ())) Ssx.Registers.all_sreg;
  regs.Ssx.Registers.ip <- word ();
  regs.Ssx.Registers.psw <- word ();
  regs.Ssx.Registers.nmi_counter <-
    Ssx_faults.Rng.int rng (cpu.Ssx.Cpu.config.Ssx.Cpu.nmi_counter_max + 1);
  cpu.Ssx.Cpu.in_nmi <- Ssx_faults.Rng.bool rng;
  cpu.Ssx.Cpu.halted <- Ssx_faults.Rng.bool rng;
  (match system.Ssos.System.watchdog with
  | Some wd ->
    Ssx_devices.Watchdog.corrupt wd (Ssx_faults.Rng.int rng 0x1000000)
  | None -> ());
  (* Arbitrary guest RAM. *)
  let mem = Ssx.Machine.memory machine in
  let base = Ssos.Layout.os_segment lsl 4 in
  for i = 0 to Ssos.Layout.os_image_size - 1 do
    Ssx.Memory.write_byte mem (base + i) (Ssx_faults.Rng.int rng 256)
  done
