(** Shared campaign machinery for the experiments.

    A campaign runs many independent trials of the same scenario, each
    derived deterministically from the master seed: warm the system up,
    inject a burst of random faults, run a recovery horizon, and judge
    the observation trace against a legality specification.

    Campaigns are parallel and snapshot-reset by default: trials shard
    across a {!Pool} of domains, and each worker captures the machine
    once after the deterministic fault-free warmup, then restores that
    snapshot per trial instead of rebuilding.  Both knobs are
    observationally pure — the summary is bit-identical for any [jobs]
    and either {!strategy} (see the differential tests in
    [test/test_campaigns.ml]). *)

type outcome = {
  recovered : bool;
  recovery_ticks : int option;
      (** Ticks from the end of injection to the start of the final
          legal suffix ([Some 0] when behaviour never broke). *)
}

type summary = {
  trials : int;
  recoveries : int;
  mean_recovery : float option;  (** over recovered trials *)
  max_recovery : int option;
}

val summarize : outcome list -> summary
(** Single pass over the outcomes, in list order. *)

type distribution = {
  samples : int;  (** recovered trials contributing a recovery time *)
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}
(** Convergence-time distribution over the recovered trials' recovery
    times, by exact nearest-rank percentile (sort the samples; the
    [q]-percentile is the [ceil (q * samples)]-th).  Campaign tables
    T18/T19 report these per scheduling daemon; the same data reaches
    the lib/obs [campaign{…}.recovery-ticks] histogram, whose bucketed
    {!Ssos_obs.Obs.quantile} estimates agree to bucket resolution. *)

val distribution : outcome list -> distribution option
(** [None] when no trial recovered with a recovery time. *)

type strategy = Ssos_serve.Cycle.strategy =
  | Rebuild
      (** Build and warm a fresh system for every trial.  Slow, but
          makes no assumption beyond [build] being deterministic. *)
  | Snapshot_reset
      (** Build and warm once per worker domain, snapshot, and restore
          the snapshot before each trial.  Requires the warmup prefix
          to be deterministic and fault-free, and every piece of
          host-side device state to be registered resettable (see
          {!Ssx.Machine.add_resettable}); all in-tree system builders
          satisfy both.  The default. *)

(** One trial over a heartbeat-observed system. *)
val heartbeat_trial :
  build:(unit -> Ssos.System.t) ->
  space:Ssx_faults.Fault.space ->
  spec:Ssx_stab.Convergence.heartbeat_spec ->
  burst:int ->
  warmup:int ->
  horizon:int ->
  seed:int64 ->
  outcome

val heartbeat_campaign :
  build:(unit -> Ssos.System.t) ->
  space:Ssx_faults.Fault.space ->
  spec:Ssx_stab.Convergence.heartbeat_spec ->
  burst:int ->
  ?warmup:int ->
  ?horizon:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  summary
(** [jobs] defaults to {!Pool.default_jobs} (the [SSOS_JOBS]
    environment variable, else the recommended domain count); the
    effective domain count is clamped to the core count unless
    [oversubscribe] (see {!Pool.run}). *)

(** One trial over a §5.2 tiny-OS system: every process's private
    heartbeat stream must converge to its strict counter spec. *)
val sched_trial :
  build:(unit -> Ssos.Sched.t) ->
  ?space:Ssx_faults.Fault.space ->
  burst:int ->
  warmup:int ->
  horizon:int ->
  max_gap:int ->
  window:int ->
  seed:int64 ->
  unit ->
  outcome

val sched_campaign :
  build:(unit -> Ssos.Sched.t) ->
  ?space:Ssx_faults.Fault.space ->
  burst:int ->
  ?warmup:int ->
  ?horizon:int ->
  ?max_gap:int ->
  ?window:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  summary

(** One trial over a distributed token ring ({!Ssos_net.Net_ring}):
    legality is judged on the joint counter states sampled each cluster
    step, with {!Ssx_stab.Distributed.judge}.  [perturb] is the trial's
    fault injection — it may corrupt states and views, apply machine
    faults to individual nodes, or drive a whole message-fault phase
    (stepping the cluster itself); recovery is measured in {e cluster
    steps} from wherever the perturbation left the cluster. *)
val ring_trial :
  ?shards:int ->
  build:(unit -> Ssos_net.Net_ring.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_net.Net_ring.t -> unit) ->
  warmup:int ->
  horizon:int ->
  window:int ->
  seed:int64 ->
  unit ->
  outcome

val ring_campaign_outcomes :
  build:(unit -> Ssos_net.Net_ring.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_net.Net_ring.t -> unit) ->
  ?warmup:int ->
  ?horizon:int ->
  ?window:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?shards:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  outcome list
(** The full per-trial outcome list, in trial order — for callers that
    need more than {!summarize}'s moments (e.g. an exact
    {!distribution}).  Publishes campaign telemetry as a side effect,
    exactly like {!ring_campaign} (which is [summarize] of this). *)

val ring_campaign :
  build:(unit -> Ssos_net.Net_ring.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_net.Net_ring.t -> unit) ->
  ?warmup:int ->
  ?horizon:int ->
  ?window:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?shards:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  summary
(** Snapshot-reset uses {!Ssos_net.Cluster.capture}/[restore], which
    covers node machines (with their NIC queues), link state including
    the mutable fault-model phase, the interleaving RNG and the step
    counter — so both strategies and any [jobs] count produce
    bit-identical summaries, like the machine campaigns above.

    [shards] parallelizes {e within} each trial via the sharded cluster
    stepper ({!Ssos_net.Cluster.run_sharded}) — orthogonal to [jobs],
    which parallelizes across trials.  Use jobs for many small
    clusters, shards for a few big ones.  Summaries stay bit-identical
    for any [shards] value. *)

(** {1 Replicated state machine campaigns}

    Trials over an {!Ssos_rsm.Service}: warm the cluster up, perturb it
    (state corruption, per-node machine faults, and/or a message-fault
    phase), judge recovery with the two-part replicated-state-machine
    legality ({!Ssx_stab.Distributed.rsm_judge}), then drive a fresh
    client workload at the recovered service and check the committed
    responses for linearizability against replica 0's store. *)

type rsm_outcome = {
  base : outcome;  (** convergence, judged over the recovery horizon *)
  committed : int;  (** client requests answered during the serve phase *)
  lost : int;  (** requests accepted but never answered *)
  linearizable : bool;
      (** serve-phase responses replay cleanly against the reference
          map ({!Ssx_stab.Distributed.linearizable}) *)
}

type rsm_summary = {
  core : summary;
  mean_committed : float;  (** per trial *)
  mean_lost : float;  (** per trial *)
  linearized : int;  (** trials whose serve phase linearized *)
}

val rsm_summarize : rsm_outcome list -> rsm_summary

val rsm_trial :
  ?shards:int ->
  build:(unit -> Ssos_rsm.Service.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_rsm.Service.t -> unit) ->
  warmup:int ->
  horizon:int ->
  window:int ->
  rate:float ->
  serve_steps:int ->
  seed:int64 ->
  unit ->
  rsm_outcome

val rsm_campaign_outcomes :
  build:(unit -> Ssos_rsm.Service.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_rsm.Service.t -> unit) ->
  ?warmup:int ->
  ?horizon:int ->
  ?window:int ->
  ?rate:float ->
  ?serve_steps:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?shards:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  rsm_outcome list
(** Per-trial outcomes in trial order, telemetry published;
    {!rsm_campaign} is [rsm_summarize] of this. *)

val rsm_campaign :
  build:(unit -> Ssos_rsm.Service.t) ->
  perturb:(Ssx_faults.Rng.t -> Ssos_rsm.Service.t -> unit) ->
  ?warmup:int ->
  ?horizon:int ->
  ?window:int ->
  ?rate:float ->
  ?serve_steps:int ->
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  ?shards:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  rsm_summary
(** Like {!ring_campaign}, with a serve phase appended to each trial:
    after the recovery horizon is judged, a seeded open-loop workload
    (probability [rate] of one request per node slot, default 0.05)
    runs for [serve_steps] cluster steps and its responses are checked
    for linearizability.  The serve schedule is derived from the trial
    seed on a fixed side stream, so summaries are bit-identical for any
    [jobs], [shards] and either {!strategy} — the same guarantees as
    the other campaigns, extended to the traffic counts. *)

val trial_seed : int64 -> int -> int64
(** Derive the seed of trial [i] from the master seed — a splitmix64
    finalizer over the pair ({!Ssx_faults.Rng.derive}), so seeds are
    pairwise distinct per master and independent of execution order. *)

val scramble_processor : Ssx_faults.Rng.t -> Ssos.System.t -> unit
(** Assign arbitrary values to every soft CPU register, the halt flag,
    the NMI machinery, the watchdog and the guest RAM — an arbitrary
    initial configuration in the paper's sense. *)
