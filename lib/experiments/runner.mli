(** Shared campaign machinery for the experiments.

    A campaign runs many independent trials of the same scenario, each
    derived deterministically from the master seed: warm the system up,
    inject a burst of random faults, run a recovery horizon, and judge
    the observation trace against a legality specification. *)

type outcome = {
  recovered : bool;
  recovery_ticks : int option;
      (** Ticks from the end of injection to the start of the final
          legal suffix ([Some 0] when behaviour never broke). *)
}

type summary = {
  trials : int;
  recoveries : int;
  mean_recovery : float option;  (** over recovered trials *)
  max_recovery : int option;
}

val summarize : outcome list -> summary

(** One trial over a heartbeat-observed system. *)
val heartbeat_trial :
  build:(unit -> Ssos.System.t) ->
  space:Ssx_faults.Fault.space ->
  spec:Ssx_stab.Convergence.heartbeat_spec ->
  burst:int ->
  warmup:int ->
  horizon:int ->
  seed:int64 ->
  outcome

val heartbeat_campaign :
  build:(unit -> Ssos.System.t) ->
  space:Ssx_faults.Fault.space ->
  spec:Ssx_stab.Convergence.heartbeat_spec ->
  burst:int ->
  ?warmup:int ->
  ?horizon:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  summary

(** One trial over a §5.2 tiny-OS system: every process's private
    heartbeat stream must converge to its strict counter spec. *)
val sched_trial :
  build:(unit -> Ssos.Sched.t) ->
  ?space:Ssx_faults.Fault.space ->
  burst:int ->
  warmup:int ->
  horizon:int ->
  max_gap:int ->
  window:int ->
  seed:int64 ->
  unit ->
  outcome

val sched_campaign :
  build:(unit -> Ssos.Sched.t) ->
  ?space:Ssx_faults.Fault.space ->
  burst:int ->
  ?warmup:int ->
  ?horizon:int ->
  ?max_gap:int ->
  ?window:int ->
  trials:int ->
  seed:int64 ->
  unit ->
  summary

val trial_seed : int64 -> int -> int64
(** Derive the seed of trial [i] from the master seed. *)

val scramble_processor : Ssx_faults.Rng.t -> Ssos.System.t -> unit
(** Assign arbitrary values to every soft CPU register, the halt flag,
    the NMI machinery, the watchdog and the guest RAM — an arbitrary
    initial configuration in the paper's sense. *)
