type t = {
  id : string;
  title : string;
  note : string;
  header : string list;
  rows : string list list;
}

let pp ppf table =
  let all = table.header :: table.rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width col =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row col with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun col cell ->
           let w = List.nth widths col in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         (row @ List.init (max 0 (columns - List.length row)) (fun _ -> "")))
  in
  Format.fprintf ppf "@[<v>== %s: %s ==@,%s@," table.id table.title table.note;
  Format.fprintf ppf "%s@," (render table.header);
  Format.fprintf ppf "%s@,"
    (String.concat "  "
       (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@," (render row)) table.rows;
  Format.fprintf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json table =
  let buf = Buffer.create 1024 in
  let string s = Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s)) in
  let list ~indent render items =
    Buffer.add_string buf "[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",";
        Buffer.add_string buf indent;
        render item)
      items;
    Buffer.add_string buf "]"
  in
  Buffer.add_string buf "{\n  \"id\": ";
  string table.id;
  Buffer.add_string buf ",\n  \"title\": ";
  string table.title;
  Buffer.add_string buf ",\n  \"note\": ";
  string table.note;
  Buffer.add_string buf ",\n  \"header\": ";
  list ~indent:"" string table.header;
  Buffer.add_string buf ",\n  \"rows\": ";
  list ~indent:"\n    " (list ~indent:"" string) table.rows;
  Buffer.add_string buf "\n}";
  Buffer.contents buf

let cell_int v = string_of_int v
let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_rate num den =
  if den = 0 then "-"
  else Printf.sprintf "%d/%d (%d%%)" num den (100 * num / den)

let cell_opt_float ?(decimals = 1) = function
  | None -> "-"
  | Some v -> Printf.sprintf "%.*f" decimals v
