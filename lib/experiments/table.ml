type t = {
  id : string;
  title : string;
  note : string;
  header : string list;
  rows : string list list;
}

let pp ppf table =
  let all = table.header :: table.rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width col =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row col with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun col cell ->
           let w = List.nth widths col in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         (row @ List.init (max 0 (columns - List.length row)) (fun _ -> "")))
  in
  Format.fprintf ppf "@[<v>== %s: %s ==@,%s@," table.id table.title table.note;
  Format.fprintf ppf "%s@," (render table.header);
  Format.fprintf ppf "%s@,"
    (String.concat "  "
       (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@," (render row)) table.rows;
  Format.fprintf ppf "@]"

let cell_int v = string_of_int v
let cell_float ?(decimals = 1) v = Printf.sprintf "%.*f" decimals v

let cell_rate num den =
  if den = 0 then "-"
  else Printf.sprintf "%d/%d (%d%%)" num den (100 * num / den)

let cell_opt_float ?(decimals = 1) = function
  | None -> "-"
  | Some v -> Printf.sprintf "%.*f" decimals v
