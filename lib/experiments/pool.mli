(** Work-sharing domain pool.

    Campaigns run many independent, index-keyed trials; this pool
    shards them across [min (ncores, jobs, n)] domains via an atomic
    task counter (ncores = [Domain.recommended_domain_count ()]).
    Results are returned in task order regardless of which domain ran
    which task or in what interleaving, so campaign output is
    reproducible: identical for [jobs:1] and [jobs:k].

    If any task raises, the remaining tasks are abandoned, all domains
    are joined, and the first recorded exception is re-raised with its
    backtrace. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], overridden by the
    [SSOS_JOBS] environment variable when set and non-empty.  Raises
    [Invalid_argument] if [SSOS_JOBS] is set but not a positive
    integer. *)

val run : ?oversubscribe:bool -> ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ?jobs n f] computes [[| f 0; …; f (n-1) |]], evaluating the
    calls on up to [jobs] domains.  [f] must be safe to call from
    multiple domains concurrently (distinct indices only — each index
    is evaluated exactly once).

    Requests beyond the machine's core count are clamped: extra
    domains cannot add parallelism but do stall every stop-the-world
    minor collection behind descheduled domains.
    [~oversubscribe:true] disables the clamp; the differential tests
    use it to force genuinely concurrent domains even on small
    machines. *)

val run_with :
  ?oversubscribe:bool ->
  ?jobs:int -> init:(unit -> 's) -> int -> ('s -> int -> 'a) -> 'a array
(** [run_with ?jobs ~init n f] is {!run} with per-worker state: each
    worker domain calls [init] at most once — lazily, on winning its
    first task — and passes the result to every [f] call it executes.
    Used for the snapshot-reset trial engine, where the state is a
    built machine plus its warmed-up snapshot.  Tasks run on the same
    worker share state, so [f] must leave the state reusable (e.g. by
    restoring the snapshot first). *)
