(** The evaluation suite.

    The paper's own evaluation is qualitative (§3: RAM corrupted under
    an emulator, stabilization observed) and its figures are code
    listings.  Each table here quantifies one of the paper's claims;
    EXPERIMENTS.md records the mapping and the measured outcomes.

    All tables are deterministic functions of their [seed]. *)

val t1_reinstall_recovery : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E1 — §3 Bochs experiment / Theorem 3.4: recovery rate and time of
    reinstall-and-restart vs fault-burst size. *)

val t2_lemma_bounds : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E2 — Lemmas 3.1–3.3: from arbitrary configurations, ticks until the
    NMI handler entry and until the OS restarts, against the theoretical
    bounds. *)

val t3_approach_comparison : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E3 — baselines vs the paper's three designs on identical fault
    campaigns. *)

val t4_period_sweep : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E4 — availability / recovery-latency trade-off vs watchdog period. *)

val t5_primitive_fairness : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E5 — Theorem 5.1: fairness and convergence of the primitive
    scheduler. *)

val t6_sched_stabilization : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E6 — Lemmas 5.2–5.4 / Theorem 5.5: the self-stabilizing scheduler
    under increasing fault bursts. *)

val t7_ablations : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E7 — design-choice ablations: cs validation, ip masking, the NMI
    counter, the hardwired NMI vector. *)

val t8_monitor_coverage : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E8 — §4 predicate monitoring: detection and repair by fault class. *)

val t9_weak_vs_strict : ?seed:int64 -> unit -> Table.t
(** E9 — the weak/strong stabilization distinction of §2: which designs
    satisfy which legality notion on fault-free runs. *)

val t10_composition : ?seed:int64 -> unit -> Table.t
(** E10 — layered stabilization (processor -> OS -> application) after
    the fair-composition argument in §1. *)

val t11_token_ring_os : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E11 — Dijkstra's token ring as guest processes on the §5.2
    scheduler: machine-level stabilization preservation and the full
    three-layer composition. *)

val t12_soft_error_rates : ?seed:int64 -> ?trials:int -> ?jobs:int -> unit -> Table.t
(** E12 — availability under continuous Poisson soft-error rates, the
    fault model of §1's motivation. *)

val t13_exhaustive_sweeps : ?seed:int64 -> unit -> Table.t
(** E13 — exhaustive (not sampled) sweeps: every instruction-pointer
    value under the §5.1 scheduler, every soft-state word of the §5.2
    scheduler against adversarial values, and a dense byte-corruption
    sweep of the running image under Figure 1. *)

val t14_ring_link_faults :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E14 — multi-machine clusters (lib/net): Dijkstra's K-state token
    ring across 4 SSX16 machines exchanging counters over NICs,
    reconverging from joint state corruption while the links drop each
    message with increasing probability.  [shards] parallelizes within
    each trial ({!Runner.ring_campaign}); the table is bit-identical
    for any value. *)

val t15_ring_combined_faults :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E15 — composed stabilization across the network: per-node machine
    faults from the full §5.2 fault space plus a lossy/corrupting
    message phase on every link; each node's OS must self-recover and
    the distributed layer must then reconverge.  [shards] as in T14. *)

val t16_rsm_link_faults :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E16 — the replicated key-value state machine (lib/rsm): commit
    throughput, convergence steps and serve-phase linearizability vs
    link drop rate, after arbitrary joint corruption of every replica's
    protocol state and store.  [shards] as in T14. *)

val t17_rsm_combined_faults :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E17 — the replicated service under combined faults: per-replica
    machine faults, arbitrary state corruption and a lossy/corrupting
    message phase; measures the MTTR from the end of the message phase
    and the lost-request window, then checks that fresh client traffic
    linearizes.  [shards] as in T14. *)

val t18_ring_daemon_matrix :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E18 — the T14 scenario re-run under the full scheduling-daemon
    matrix (round-robin, fair-random, starving, crash-and-resurrect,
    adaptive adversary; {!Ssx_stab.Adversary}) at two link drop rates,
    reporting the exact convergence distribution (nearest-rank
    p50/p90/p99/max, {!Runner.distribution}) instead of the mean.
    [shards] as in T14; stateful daemons make the sharded stepper fall
    back to its sequential path, so the table stays bit-identical. *)

val t19_rsm_daemon_matrix :
  ?seed:int64 -> ?trials:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E19 — the replicated state machine under the daemon matrix at a
    fixed 10% link drop rate: convergence distribution plus serve-phase
    commit/lost counts and linearizability.  Starvation kills liveness
    but never safety; recurring crash outages show up as lost
    throughput.  [shards] as in T14. *)

val t20_serve_fault_rates :
  ?seed:int64 -> ?duration:int -> ?jobs:int -> ?shards:int -> unit -> Table.t
(** E20 — continuous operation ({!Ssos_serve.Engine}): overall and
    worst-window availability, latency p50/p99, detected/repaired
    incident counts and mean MTTR of the closed serve loop vs the
    background fault rate — the production scenario of §1's
    motivation, run as a deterministic simulation. *)

val all : (string * (?jobs:int -> ?shards:int -> unit -> Table.t)) list
(** [(id, runner)] for every table, in order.  [jobs] caps the campaign
    worker-domain count ({!Pool.default_jobs} when omitted); tables
    whose work is a single run (T9, T10, T13) ignore it.  [shards]
    shards the cluster stepper within trials — only the distributed
    tables (T14–T19) use it; all tables are bit-identical for any
    value of either knob. *)

val find : string -> (?jobs:int -> ?shards:int -> unit -> Table.t) option
(** Case-insensitive lookup by id ("t1" … "t20"). *)
