(** Result tables printed by the benchmark harness. *)

type t = {
  id : string;       (** e.g. "T3" *)
  title : string;
  note : string;     (** what the paper anchors this table to *)
  header : string list;
  rows : string list list;
}

val pp : Format.formatter -> t -> unit
(** Render with aligned columns. *)

val to_json : t -> string
(** The table as a JSON object — [id], [title], [note], [header] and
    [rows] (an array of string arrays), with all strings escaped.  For
    `ssos experiment --format json` and mechanical diffing. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_rate : int -> int -> string
(** ["13/15 (87%)"]. *)

val cell_opt_float : ?decimals:int -> float option -> string
(** ["-"] for [None]. *)
