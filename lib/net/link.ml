module Rng = Ssx_faults.Rng

type fault_model = {
  mutable drop : float;
  mutable duplicate : float;
  mutable max_delay : int;
  mutable corrupt : float;
}

let benign () = { drop = 0.; duplicate = 0.; max_delay = 0; corrupt = 0. }

let lossy ?(drop = 0.) ?(duplicate = 0.) ?(max_delay = 0) ?(corrupt = 0.) () =
  if drop < 0. || drop > 1. then invalid_arg "Link.lossy: drop";
  if duplicate < 0. || duplicate > 1. then invalid_arg "Link.lossy: duplicate";
  if max_delay < 0 then invalid_arg "Link.lossy: max_delay";
  if corrupt < 0. || corrupt > 1. then invalid_arg "Link.lossy: corrupt";
  { drop; duplicate; max_delay; corrupt }

type t = {
  src : int;
  dst : int;
  latency : int;  (* minimum steps in flight; immutable, >= 1 *)
  faults : fault_model;
  mutable rng : Rng.t;
  queue : (int * int) Queue.t;  (* (deliver_at, word), deliver_at ascending *)
  mutable last_deliver_at : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable corrupted : int;
}

let create ?(latency = 1) ?faults ~rng ~src ~dst () =
  if latency < 1 then invalid_arg "Link.create: latency";
  let faults = match faults with Some f -> f | None -> benign () in
  { src; dst; latency; faults; rng; queue = Queue.create ();
    last_deliver_at = 0; sent = 0; dropped = 0; delivered = 0; corrupted = 0 }

let src t = t.src
let dst t = t.dst
let latency t = t.latency
let faults t = t.faults
let in_flight t = Queue.length t.queue
let sent t = t.sent
let dropped t = t.dropped
let delivered t = t.delivered
let corrupted t = t.corrupted

(* Probability draws are skipped entirely at probability zero, so a
   benign link consumes no randomness and its behaviour is independent
   of the RNG stream. *)
let chance t p = p > 0. && Rng.float t.rng < p

let enqueue t ~now word =
  let jitter =
    if t.faults.max_delay <= 0 then 0
    else Rng.int t.rng (t.faults.max_delay + 1)
  in
  (* FIFO under jitter: never deliver before an earlier message. *)
  let deliver_at = max (now + t.latency + jitter) t.last_deliver_at in
  t.last_deliver_at <- deliver_at;
  let word =
    if chance t t.faults.corrupt then begin
      t.corrupted <- t.corrupted + 1;
      let garbage = Rng.int t.rng 256 in
      if Rng.bool t.rng then (word land 0xFF00) lor garbage
      else (word land 0x00FF) lor (garbage lsl 8)
    end
    else word
  in
  Queue.push (deliver_at, word) t.queue

let send t ~now word =
  let word = Ssx.Word.mask word in
  t.sent <- t.sent + 1;
  if chance t t.faults.drop then t.dropped <- t.dropped + 1
  else begin
    enqueue t ~now word;
    if chance t t.faults.duplicate then enqueue t ~now word
  end

let next_deliver_at t =
  match Queue.peek_opt t.queue with
  | Some (deliver_at, _) -> Some deliver_at
  | None -> None

let due t ~now =
  if Queue.is_empty t.queue then []
  else
  let rec pop acc =
    match Queue.peek t.queue with
    | deliver_at, word when deliver_at <= now ->
      ignore (Queue.pop t.queue);
      t.delivered <- t.delivered + 1;
      pop (word :: acc)
    | _ -> List.rev acc
    | exception Queue.Empty -> List.rev acc
  in
  pop []

let capture t =
  let queue = Queue.copy t.queue in
  let last_deliver_at = t.last_deliver_at in
  let sent = t.sent and dropped = t.dropped in
  let delivered = t.delivered and corrupted = t.corrupted in
  let rng = Rng.copy t.rng in
  let { drop; duplicate; max_delay; corrupt } = t.faults in
  fun () ->
    Queue.clear t.queue;
    Queue.iter (fun m -> Queue.push m t.queue) queue;
    t.last_deliver_at <- last_deliver_at;
    t.sent <- sent;
    t.dropped <- dropped;
    t.delivered <- delivered;
    t.corrupted <- corrupted;
    t.rng <- Rng.copy rng;
    t.faults.drop <- drop;
    t.faults.duplicate <- duplicate;
    t.faults.max_delay <- max_delay;
    t.faults.corrupt <- corrupt
