(** A deterministic multi-machine stepper.

    A cluster owns N machines (each with an attached {!Nic}) and a set
    of directed {!Link}s between them.  One cluster {e step}:

    + picks a node under the seeded interleaving policy,
    + runs it for [ticks_per_slot] machine ticks,
    + broadcasts everything that node transmitted onto each of its
      outgoing links, then
    + delivers every due message (on all links) into the destination
      NICs, links in creation order.

    A cluster execution is a pure function of ([seed], construction
    order, corruption calls).  The reference stepper ({!step}/{!run})
    is strictly sequential; {!run_sharded} executes the {e same}
    schedule on several domains using the links' minimum latency as a
    conservative-DES lookahead, and is bit-identical to the sequential
    stepper — same digests, same per-NIC delivery streams — for any
    shard count (DESIGN.md §4h).

    {!capture} / {!restore} snapshot the whole system — every node (NIC
    queues ride along via the machine's resettables), every link, the
    interleaving RNG and the step counter — for snapshot-reset trial
    engines. *)

type policy =
  | Round_robin    (** node [steps mod n] runs at each step *)
  | Fair_random    (** uniformly random node, from the cluster seed *)
  | Daemon of Ssx_stab.Adversary.t
      (** an unfair/adversarial scheduling daemon (starvation,
          crash-and-resurrect, adaptive); may return no node at all —
          an {e idle slot}, in which deliveries and the step counter
          still advance.  Same determinism/digest/snapshot contracts
          as the built-ins; a [stateful] daemon forces {!run_sharded}
          sequential (see there). *)

type node = { machine : Ssx.Machine.t; nic : Nic.t }

type t

val create :
  ?policy:policy -> ?ticks_per_slot:int -> ?latency:int -> seed:int64 ->
  node array -> t
(** At least one node; [ticks_per_slot] defaults to 50.  [latency]
    (default 1, at least 1) is the minimum in-flight time, in cluster
    steps, of every link subsequently created by {!connect}; it is
    fixed at creation because it bounds the sharded stepper's
    synchronization horizon ([latency - 1] steps).  The NICs must
    already be attached to their machines. *)

val size : t -> int
val steps : t -> int
val latency : t -> int
val policy : t -> policy

val skipped_slots : t -> int
(** Slots a daemon idled so far (zero under the built-in policies);
    snapshot-restored along with the step counter. *)

val set_abstract : t -> (int -> int) -> unit
(** Register the per-node abstract state reader handed to {!Daemon}
    policies ([state] in {!Ssx_stab.Adversary.view}) — e.g.
    {!Net_ring} registers each node's raw counter word.  Stateful
    daemons raise if no reader was registered. *)

val machine : t -> int -> Ssx.Machine.t
val nic : t -> int -> Nic.t
val links : t -> Link.t array

val connect : ?faults:Link.fault_model -> t -> src:int -> dst:int -> Link.t
(** Add a directed link.  Its RNG is derived from the cluster seed and
    the link's creation index, so fault streams are per-link
    independent and reproducible. *)

(** Topologies, as directed edge lists for {!connect}. *)

val ring_edges : n:int -> (int * int) list
(** [0->1->…->n-1->0]. *)

val star_edges : n:int -> (int * int) list
(** Hub 0 linked both ways with every spoke. *)

val mesh_edges : n:int -> (int * int) list
(** Every ordered pair — O(n²) links; prefer {!torus_edges} or
    {!random_edges} beyond a few dozen nodes. *)

val torus_edges : rows:int -> cols:int -> (int * int) list
(** 2-D torus on [rows * cols] nodes (node [r*cols + c]): each node
    links to its four wraparound neighbours, deduplicated on 2-wide
    dimensions.  O(n) links, diameter [(rows + cols) / 2]. *)

val random_edges : n:int -> degree:int -> seed:int64 -> (int * int) list
(** Seeded random digraph, out-degree [degree] (in [1, n-1]) distinct
    targets per node, {e guaranteed strongly connected}: disconnected
    draws — which would make convergence experiments silently
    meaningless — are rejected and retried under seeds derived from
    [seed], up to 64 attempts.  For [degree >= 2] a retry is almost
    never needed (the failure probability per draw is well under 3/4
    even at the small-n worst case, so 64 draws are astronomically
    safe); if every attempt is disconnected (typical only for
    [degree = 1], a random functional graph) the last draw is
    {e repaired} by adding the missing ring-successor edges, raising
    some out-degrees by one.  Deterministic in the arguments either
    way. *)

val connect_many :
  ?faults:(src:int -> dst:int -> Link.fault_model) ->
  t -> (int * int) list -> unit

val step : t -> unit
val run : t -> steps:int -> unit

val run_until : t -> limit:int -> (t -> bool) -> int option
(** Step until the predicate holds (checked after each step); the
    number of steps consumed, or [None] at [limit]. *)

val run_sharded :
  ?shards:int -> ?jobs:int -> ?horizon:int -> t -> steps:int -> unit
(** [run_sharded ~shards t ~steps] advances the cluster [steps] steps
    on up to [shards] domains (default {!Pool.default_jobs}), with
    results — node states, link queues and counters, NIC streams,
    {!digest} — bit-identical to [run t ~steps] for any shard count.

    [?jobs] caps the {e physical} worker-domain count below
    {!Pool.default_jobs}: the logical shard partition — and with it
    every observable — is fixed by [shards] alone, while the shard
    bodies are multiplexed onto at most [jobs] domains.  So [jobs] is a
    pure resource knob, like the campaign runner's.

    Nodes are partitioned into contiguous blocks, one domain each; a
    link belongs to its destination's shard.  Shards advance freely
    through windows of [latency - 1] steps (the conservative-DES
    lookahead: nothing sent inside a window can come due before the
    next one) and exchange cross-shard traffic at a barrier between
    windows.  [?horizon] caps the window length below the lookahead —
    useful only for stress-testing the exchange; the default is the
    full lookahead.

    When [latency] is 1 there is no lookahead and the call silently
    falls back to one shard (sequential), so callers can thread a
    [--shards] knob without caring about the topology.  A [stateful]
    {!Daemon} forces the same fallback: it inspects other nodes' live
    state each step, which only the sequential schedule makes
    well-defined — so its digests are trivially shard-count invariant
    too.  Pure daemons replay on every shard exactly like the built-in
    policies.  If a node raises mid-run the first exception is
    re-raised here after all shards have stopped; the cluster is left
    partially stepped. *)

val run_sharded_log :
  ?shards:int -> ?jobs:int -> ?horizon:int -> record:(t -> int -> 'a) ->
  t -> steps:int -> (int * int * 'a) list
(** {!run_sharded}, additionally calling [record t who] on the owning
    shard immediately after node [who]'s slot ran at each step, and
    returning the [(step, node, value)] entries merged in step order
    (one per step, except idle daemon slots, which — running no node —
    log nothing).  Because a node's machine state only
    changes while it runs, this is enough to reconstruct the full
    per-step state matrix a sequential observer would have seen —
    {!Net_ring.observe} does exactly that.  [record] runs on worker
    domains: it must only touch the given node and allocate its own
    result. *)

val run_sharded_epochs :
  ?shards:int -> ?jobs:int -> ?horizon:int -> epoch:int ->
  record:(t -> int -> 'a) -> on_epoch:(int -> (int * int * 'a) list -> unit) ->
  t -> steps:int -> unit
(** {!run_sharded_log} in [epoch]-step chunks, calling
    [on_epoch index chunk_log] on the stepping domain after each chunk
    (the last may be shorter).  At every hook point all shards have
    joined, so the cluster is exactly the state the same sequential
    prefix produces: the hook may mutate node machines — inject
    faults, pulse reset pins — or read joint state, and the run stays
    bit-identical for any [shards]/[jobs] provided the hook is
    deterministic.  This is the serve engine's
    execute→observe→detect→repair loop point (DESIGN.md §4k). *)

type snapshot

val capture : t -> snapshot
val restore : t -> snapshot -> unit
(** Restore into the cluster the snapshot was captured from (node
    snapshots follow {!Ssx.Snapshot.restore} semantics; link state
    restores into the captured link instances).  Snapshots taken at any
    step — including mid-horizon, between two sharded windows — restore
    exactly: all in-flight cross-shard traffic lives in link queues by
    the time {!run_sharded} returns. *)

val capture_node : t -> int -> Ssx.Snapshot.t
val restore_node : t -> int -> Ssx.Snapshot.t -> unit

val observe : ?prefix:string -> ?per_link:bool -> t -> unit
(** Register sampled observability gauges for the whole cluster under
    [<prefix>.…] (default ["net"]): step/node counts, plus either

    - {e per-link mode} ([?per_link:true], the default up to 64 nodes):
      [link{src->dst}.sent/delivered/dropped/corrupted/in-flight] and
      [nic{id=i}.tx-words/rx-delivered/rx-dropped/rx-read] per node; or
    - {e aggregate mode} (the default above 64 nodes): topology totals
      [links.{count,sent,delivered,dropped,corrupted,in-flight}], the
      drop distribution across links [links.drops.{p50,p90,p99,max}],
      and NIC totals [nics.*] — O(1) registry entries at any scale.

    Sampling closures are read only at {!Ssos_obs.Obs.snapshot} time,
    so observing a cluster costs nothing while it runs and never
    perturbs its deterministic execution. *)

val digest : t -> string
(** Hash of every node's {!Ssx.Snapshot.digest} plus link occupancy and
    the step count — for cross-run determinism checks. *)
