(** A deterministic multi-machine stepper.

    A cluster owns N machines (each with an attached {!Nic}) and a set
    of directed {!Link}s between them.  One cluster {e step}:

    + picks a node under the seeded interleaving policy,
    + runs it for [ticks_per_slot] machine ticks,
    + broadcasts everything that node transmitted onto each of its
      outgoing links, then
    + delivers every due message (on all links) into the destination
      NICs, links in creation order.

    The stepper is strictly sequential, so a cluster execution is a
    pure function of ([seed], construction order, corruption calls) —
    campaigns parallelize across {e trials} (each worker owns whole
    clusters), never within one, and summaries are bit-identical for
    any worker count.

    {!capture} / {!restore} snapshot the whole system — every node (NIC
    queues ride along via the machine's resettables), every link, the
    interleaving RNG and the step counter — for snapshot-reset trial
    engines. *)

type policy =
  | Round_robin    (** node [steps mod n] runs at each step *)
  | Fair_random    (** uniformly random node, from the cluster seed *)

type node = { machine : Ssx.Machine.t; nic : Nic.t }

type t

val create :
  ?policy:policy -> ?ticks_per_slot:int -> seed:int64 -> node array -> t
(** At least one node; [ticks_per_slot] defaults to 50.  The NICs must
    already be attached to their machines. *)

val size : t -> int
val steps : t -> int
val machine : t -> int -> Ssx.Machine.t
val nic : t -> int -> Nic.t
val links : t -> Link.t array

val connect : ?faults:Link.fault_model -> t -> src:int -> dst:int -> Link.t
(** Add a directed link.  Its RNG is derived from the cluster seed and
    the link's creation index, so fault streams are per-link
    independent and reproducible. *)

(** Topologies, as directed edge lists for {!connect}. *)

val ring_edges : n:int -> (int * int) list
(** [0->1->…->n-1->0]. *)

val star_edges : n:int -> (int * int) list
(** Hub 0 linked both ways with every spoke. *)

val mesh_edges : n:int -> (int * int) list
(** Every ordered pair. *)

val connect_many :
  ?faults:(src:int -> dst:int -> Link.fault_model) ->
  t -> (int * int) list -> unit

val step : t -> unit
val run : t -> steps:int -> unit

val run_until : t -> limit:int -> (t -> bool) -> int option
(** Step until the predicate holds (checked after each step); the
    number of steps consumed, or [None] at [limit]. *)

type snapshot

val capture : t -> snapshot
val restore : t -> snapshot -> unit
(** Restore into the cluster the snapshot was captured from (node
    snapshots follow {!Ssx.Snapshot.restore} semantics; link state
    restores into the captured link instances). *)

val capture_node : t -> int -> Ssx.Snapshot.t
val restore_node : t -> int -> Ssx.Snapshot.t -> unit

val observe : ?prefix:string -> t -> unit
(** Register sampled observability gauges for the whole cluster under
    [<prefix>.…] (default ["net"]): step/node counts, per-link
    [link{src->dst}.sent/delivered/dropped/corrupted/in-flight], and
    per-node [nic{id=i}.tx-words/rx-delivered/rx-dropped/rx-read].
    Sampling closures are read only at {!Ssos_obs.Obs.snapshot} time,
    so observing a cluster costs nothing while it runs and never
    perturbs its deterministic execution. *)

val digest : t -> string
(** Hash of every node's {!Ssx.Snapshot.digest} plus link occupancy and
    the step count — for cross-run determinism checks. *)
