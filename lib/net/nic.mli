(** A port-mapped network interface.

    The NIC occupies a block of three consecutive I/O ports:

    - [base]     — TX data: [out] enqueues one word for transmission;
                   [in] reads the number of words awaiting pickup.
    - [base + 1] — RX data: [in] pops the oldest received word
                   (0 when the queue is empty).
    - [base + 2] — RX status: [in] reads the number of queued words.

    The host side of the device is symmetric: {!drain_tx} collects what
    the guest transmitted (a {!Cluster} broadcasts it onto the node's
    outgoing links) and {!deliver} pushes an arriving word into the
    bounded RX queue, dropping — and counting — overflow.

    {!attach} wires the ports, registers a standard {!Ssx.Device.t}
    (which raises the optional RX interrupt while data is pending) and
    registers the queues with the snapshot machinery
    ({!Ssx.Machine.add_resettable}), so {!Ssx.Snapshot.capture} /
    [restore] cover the NIC like any other device. *)

type t

type stats = {
  tx_words : int;     (** words the guest transmitted *)
  rx_delivered : int; (** words accepted into the RX queue *)
  rx_dropped : int;   (** words lost to RX-queue overflow *)
  rx_read : int;      (** words the guest consumed *)
  rx_hwm : int;       (** deepest RX-queue occupancy ever reached *)
}

val default_base_port : int
(** 0x30. *)

val default_capacity : int
(** 16 words of RX buffering. *)

val create : ?base_port:int -> ?capacity:int -> ?rx_irq:int -> unit -> t
(** [rx_irq] — maskable-interrupt vector asserted while the RX queue is
    non-empty; omit it for polled operation. *)

val attach : t -> Ssx.Machine.t -> unit

val base_port : t -> int
val tx_port : t -> int
val rx_port : t -> int
val status_port : t -> int

val deliver : t -> int -> bool
(** Host-side arrival of one word; [false] when the bounded RX queue
    was full and the word was dropped. *)

val drain_tx : t -> int list
(** Pop everything the guest has transmitted, oldest first. *)

val pending_rx : t -> int
val pending_tx : t -> int
val stats : t -> stats

val observe : ?label:string -> t -> unit
(** Register this instance's RX high-water mark and drop counter as
    sampled gauges via {!Ssos_obs.Device_obs.nic}
    ([device.nic{id=<label>}.rx-hwm] / [.rx-dropped]) — the
    backpressure view of a NIC that {!Cluster.observe} does not cover
    (e.g. the client-facing NICs of an RSM service).  Snapshot
    restores roll the high-water mark back with the queues. *)
