type t = {
  base_port : int;
  capacity : int;
  rx_irq : int option;
  tx : int Queue.t;
  rx : int Queue.t;
  mutable tx_words : int;
  mutable rx_delivered : int;
  mutable rx_dropped : int;
  mutable rx_read : int;
  mutable rx_hwm : int;
}

type stats = {
  tx_words : int;
  rx_delivered : int;
  rx_dropped : int;
  rx_read : int;
  rx_hwm : int;
}

let default_base_port = 0x30
let default_capacity = 16

let create ?(base_port = default_base_port) ?(capacity = default_capacity)
    ?rx_irq () =
  if capacity <= 0 then invalid_arg "Nic.create: capacity must be positive";
  { base_port; capacity; rx_irq;
    tx = Queue.create (); rx = Queue.create ();
    tx_words = 0; rx_delivered = 0; rx_dropped = 0; rx_read = 0; rx_hwm = 0 }

let base_port t = t.base_port
let tx_port t = t.base_port
let rx_port t = t.base_port + 1
let status_port t = t.base_port + 2
let pending_rx t = Queue.length t.rx
let pending_tx t = Queue.length t.tx

let stats (t : t) : stats =
  { tx_words = t.tx_words; rx_delivered = t.rx_delivered;
    rx_dropped = t.rx_dropped; rx_read = t.rx_read; rx_hwm = t.rx_hwm }

let deliver t word =
  if Queue.length t.rx >= t.capacity then begin
    t.rx_dropped <- t.rx_dropped + 1;
    false
  end
  else begin
    Queue.push (Ssx.Word.mask word) t.rx;
    t.rx_delivered <- t.rx_delivered + 1;
    let depth = Queue.length t.rx in
    if depth > t.rx_hwm then t.rx_hwm <- depth;
    true
  end

let observe ?label (t : t) =
  Ssos_obs.Device_obs.nic ?label
    ~rx_hwm:(fun () -> t.rx_hwm)
    ~rx_dropped:(fun () -> t.rx_dropped)
    ()

let drain_tx t =
  let rec pop acc =
    if Queue.is_empty t.tx then List.rev acc else pop (Queue.pop t.tx :: acc)
  in
  pop []

let refill dst saved =
  Queue.clear dst;
  Queue.iter (fun w -> Queue.push w dst) saved

let attach t machine =
  Ssx.Machine.register_port machine ~port:(tx_port t)
    ~read:(fun _ -> Queue.length t.tx)
    ~write:(fun _ v ->
      Queue.push (Ssx.Word.mask v) t.tx;
      t.tx_words <- t.tx_words + 1);
  Ssx.Machine.register_port machine ~port:(rx_port t)
    ~read:(fun _ ->
      match Queue.pop t.rx with
      | w ->
        t.rx_read <- t.rx_read + 1;
        w
      | exception Queue.Empty -> 0)
    ~write:(fun _ _ -> ());
  Ssx.Machine.register_port machine ~port:(status_port t)
    ~read:(fun _ -> Queue.length t.rx)
    ~write:(fun _ _ -> ());
  Ssx.Machine.add_device machine
    (Ssx.Device.make ~name:"nic"
       ~tick:(fun cpu ->
         match t.rx_irq with
         | Some vector
           when (not (Queue.is_empty t.rx)) && cpu.Ssx.Cpu.intr = None ->
           Ssx.Cpu.raise_intr cpu vector
         | _ -> ())
       ());
  Ssx.Machine.add_resettable machine (fun () ->
      let tx = Queue.copy t.tx and rx = Queue.copy t.rx in
      let tx_words = t.tx_words and rx_delivered = t.rx_delivered
      and rx_dropped = t.rx_dropped and rx_read = t.rx_read
      and rx_hwm = t.rx_hwm in
      fun () ->
        refill t.tx tx;
        refill t.rx rx;
        t.tx_words <- tx_words;
        t.rx_delivered <- rx_delivered;
        t.rx_dropped <- rx_dropped;
        t.rx_read <- rx_read;
        t.rx_hwm <- rx_hwm)
