module Rng = Ssx_faults.Rng

type policy = Round_robin | Fair_random | Daemon of Ssx_stab.Adversary.t

type node = { machine : Ssx.Machine.t; nic : Nic.t }

type t = {
  nodes : node array;
  policy : policy;
  ticks_per_slot : int;
  latency : int;  (* minimum link latency, and thus the shard lookahead *)
  seed : int64;
  mutable rng : Rng.t;
  mutable links : Link.t array;
  mutable out_links : int list array;  (* node -> link indices, creation order *)
  mutable step_count : int;
  mutable abstract : (int -> int) option;  (* per-node state for daemons *)
  mutable skipped_slots : int;  (* slots a daemon idled (crashed node) *)
}

let create ?(policy = Round_robin) ?(ticks_per_slot = 50) ?(latency = 1) ~seed
    nodes =
  if Array.length nodes = 0 then invalid_arg "Cluster.create: no nodes";
  if ticks_per_slot <= 0 then invalid_arg "Cluster.create: ticks_per_slot";
  if latency < 1 then invalid_arg "Cluster.create: latency";
  { nodes; policy; ticks_per_slot; latency; seed;
    rng = Rng.create (Rng.derive seed 0);
    links = [||];
    out_links = Array.make (Array.length nodes) [];
    step_count = 0;
    abstract = None;
    skipped_slots = 0 }

let size t = Array.length t.nodes
let steps t = t.step_count
let latency t = t.latency
let policy t = t.policy
let skipped_slots t = t.skipped_slots
let set_abstract t read = t.abstract <- Some read

(* Which node runs step [now]?  [None] is an idle slot: no node runs,
   but deliveries and the step counter still advance.  The RNG passed
   in is the sequential stepper's own or a shard's replayed copy —
   either way the policy consumes the identical stream. *)
let choose_slot t ~now rng =
  let n = size t in
  match t.policy with
  | Round_robin -> Some (now mod n)
  | Fair_random -> Some (Rng.int rng n)
  | Daemon d ->
    Ssx_stab.Adversary.choose d
      { Ssx_stab.Adversary.now; size = n; rng; state = t.abstract }

let stateful_policy t =
  match t.policy with
  | Daemon d -> d.Ssx_stab.Adversary.stateful
  | Round_robin | Fair_random -> false
let machine t i = t.nodes.(i).machine
let nic t i = t.nodes.(i).nic
let links t = t.links

let connect ?faults t ~src ~dst =
  let n = size t in
  if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
    invalid_arg "Cluster.connect: bad endpoints";
  let index = Array.length t.links in
  let rng = Rng.create (Rng.derive t.seed (index + 1)) in
  let link = Link.create ~latency:t.latency ?faults ~rng ~src ~dst () in
  t.links <- Array.append t.links [| link |];
  t.out_links.(src) <- t.out_links.(src) @ [ index ];
  link

let ring_edges ~n =
  if n < 2 then invalid_arg "Cluster.ring_edges: need at least two nodes";
  List.init n (fun i -> (i, (i + 1) mod n))

let star_edges ~n =
  if n < 2 then invalid_arg "Cluster.star_edges: need at least two nodes";
  List.concat (List.init (n - 1) (fun i -> [ (0, i + 1); (i + 1, 0) ]))

let mesh_edges ~n =
  List.concat
    (List.init n (fun src ->
         List.filter_map
           (fun dst -> if src = dst then None else Some (src, dst))
           (List.init n Fun.id)))

let torus_edges ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Cluster.torus_edges: need 2x2";
  let id r c = (((r + rows) mod rows) * cols) + ((c + cols) mod cols) in
  List.concat
    (List.init rows (fun r ->
         List.concat
           (List.init cols (fun c ->
                let src = id r c in
                (* On a 2-wide dimension both wraparound neighbours are
                   the same node; sort_uniq keeps the edge list simple. *)
                let neighbours =
                  List.sort_uniq compare
                    [ id (r - 1) c; id (r + 1) c; id r (c - 1); id r (c + 1) ]
                in
                List.map (fun dst -> (src, dst)) neighbours))))

(* Strong connectivity of a directed edge list: BFS over the forward
   edges and over the reversed edges both reach every node from 0. *)
let strongly_connected ~n edges =
  let reaches_all adj =
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.push 0 queue;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.push w queue
          end)
        adj.(v)
    done;
    !count = n
  in
  let fwd = Array.make n [] and rev = Array.make n [] in
  List.iter
    (fun (src, dst) ->
      fwd.(src) <- dst :: fwd.(src);
      rev.(dst) <- src :: rev.(dst))
    edges;
  reaches_all fwd && reaches_all rev

let random_edges ~n ~degree ~seed =
  if n < 2 then invalid_arg "Cluster.random_edges: need at least two nodes";
  if degree < 1 || degree > n - 1 then
    invalid_arg "Cluster.random_edges: degree";
  (* Each node picks [degree] distinct random out-neighbours — a
     genuinely random sample, which can come out disconnected (a
     partitioned graph would make convergence experiments silently
     meaningless).  Rejection-sample: disconnected draws are retried
     under seeds derived from [seed] (so the result is still a pure
     function of the arguments).  A uniform random out-degree-d
     digraph is strongly connected with probability approaching 1 as
     n grows for d >= 2, and well above 1/4 in the small-n worst cases
     here, so 64 attempts fail with probability below 2^-64·ish for
     d >= 2; sparse d = 1 draws (random functional graphs, almost
     always disconnected) fall through to the repair below.  The last
     attempt is repaired by adding the ring-successor backbone edges
     not already present, which forces strong connectivity at the
     cost of raising some out-degrees by one. *)
  let attempts = 64 in
  let sample rng =
    List.concat
      (List.init n (fun src ->
           let chosen = ref [] in
           let count = ref 0 in
           while !count < degree do
             let dst = Rng.int rng n in
             if dst <> src && not (List.mem dst !chosen) then begin
               chosen := dst :: !chosen;
               incr count
             end
           done;
           List.rev_map (fun dst -> (src, dst)) !chosen))
  in
  let rec go attempt =
    let edges = sample (Rng.create (Rng.derive seed attempt)) in
    if strongly_connected ~n edges then edges
    else if attempt + 1 < attempts then go (attempt + 1)
    else
      edges
      @ List.filter
          (fun edge -> not (List.mem edge edges))
          (ring_edges ~n)
  in
  go 0

let connect_many ?faults t edges =
  List.iter
    (fun (src, dst) ->
      let faults = Option.map (fun f -> f ~src ~dst) faults in
      ignore (connect ?faults t ~src ~dst))
    edges

(* Run one node's slot and return what it transmitted.  Shared between
   the sequential and sharded steppers so the machine-facing half of a
   step is a single code path. *)
let run_node_collect t who =
  let node = t.nodes.(who) in
  Ssx.Machine.run node.machine ~ticks:t.ticks_per_slot;
  Nic.drain_tx node.nic

let deliver_due t link ~now =
  match Link.due link ~now with
  | [] -> ()
  | words ->
    let nic = t.nodes.(Link.dst link).nic in
    List.iter (fun word -> ignore (Nic.deliver nic word)) words

let step t =
  (match choose_slot t ~now:t.step_count t.rng with
  | None -> t.skipped_slots <- t.skipped_slots + 1
  | Some who -> (
    match run_node_collect t who with
    | [] -> ()
    | words ->
      List.iter
        (fun index ->
          let link = t.links.(index) in
          List.iter (fun w -> Link.send link ~now:t.step_count w) words)
        t.out_links.(who)));
  t.step_count <- t.step_count + 1;
  Array.iter (fun link -> deliver_due t link ~now:t.step_count) t.links

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

let run_until t ~limit predicate =
  let rec go consumed =
    if consumed >= limit then None
    else begin
      step t;
      if predicate t then Some (consumed + 1) else go (consumed + 1)
    end
  in
  go 0

(* --- sharded stepping (conservative DES) ----------------------------- *)

(* Contiguous block partition: shard k owns nodes [k*n/shards,
   (k+1)*n/shards).  A link belongs to the shard of its *destination*,
   so all links feeding one NIC live in one shard and their relative
   creation order — which fixes the per-NIC delivery interleaving — is
   preserved. *)
let shard_of ~shards ~n i = i * shards / n

(* The conservative-DES window.  A word sent at step [s] becomes
   deliverable no earlier than step [s + latency] (Link.enqueue), and
   delivery scans run with [now = s' + 1], so the earliest scan that can
   pop it is the one after step [s + latency - 1].  A shard advancing
   [h <= latency - 1] steps blind therefore cannot miss a delivery it
   has not yet been told about: everything sent inside a window first
   comes due in the *next* window, after the barrier has exchanged it.
   See DESIGN.md §4h for the full argument.

   Every shard replays the complete global schedule (its own copy of
   the cluster RNG included), runs only the slots of nodes it owns, and
   scans only the links it owns.  Cross-shard sends go into
   double-buffered per-(source shard, owner shard) outboxes indexed by
   window parity — written by the source's shard during window [w],
   drained by the owner at the start of window [w + 1] via ordinary
   [Link.send ~now:s] calls in step order, so the link's own RNG
   stream (drop/jitter/corruption draws) is consumed exactly as in the
   sequential run.  The barrier publishes the plain outbox writes
   (Pool.Barrier).

   Workers must not leak exceptions (a dead worker hangs its peers at
   the barrier), so window bodies are guarded: the first exception is
   parked in [poison], every shard checks it before starting a window,
   and all shards still perform the same number of barrier waits. *)
let run_sharded_gen ~shards ?jobs ?horizon ~record t ~steps =
  if steps < 0 then invalid_arg "Cluster.run_sharded: steps";
  let n = size t in
  let shards =
    (* latency 1 means zero lookahead: nothing to overlap, stay
       sequential.  A stateful daemon (the adaptive adversary) reads
       other nodes' live state each step, which only a sequential
       schedule makes well-defined, so it forces one shard too.
       Callers get the documented fallback silently so shard count can
       be varied without caring about the topology or policy. *)
    if t.latency < 2 || stateful_policy t then 1 else max 1 (min shards n)
  in
  let h =
    let cap = max 1 (t.latency - 1) in
    match horizon with
    | None -> cap
    | Some k when k >= 1 -> min k cap
    | Some _ -> invalid_arg "Cluster.run_sharded: horizon"
  in
  if steps = 0 then []
  else begin
    let base = t.step_count in
    let nlinks = Array.length t.links in
    let owner =
      Array.map (fun link -> shard_of ~shards ~n (Link.dst link)) t.links
    in
    let owned =
      Array.init shards (fun k ->
          let acc = ref [] in
          for li = nlinks - 1 downto 0 do
            if owner.(li) = k then acc := li :: !acc
          done;
          !acc)
    in
    (* Cross-shard mail, double-buffered by window parity.  One cell
       per (source shard, owner shard) pair — a single writer during a
       window, a single reader at the next window's start — holding
       [(link, step, words)] sends in reverse step order.  A link has
       one source node, hence one writing shard, so its sends all land
       in one cell and replay in step order after the [List.rev]. *)
    let outboxes = Array.init 2 (fun _ -> Array.make_matrix shards shards []) in
    let nwindows = (steps + h - 1) / h in
    (* Logical shards vs physical domains, the classic conservative-DES
       split: the partition (and with it every observable) is fixed by
       [shards] alone, while the shard bodies are multiplexed onto at
       most {!Pool.default_jobs} domains — one domain just runs its
       shards' window bodies back to back before the barrier.  A shard
       only touches its own nodes, its own links and its own nodes'
       outbox slots during a window, so bodies commute within a window
       and the multiplexing is invisible.  Spawning more domains than
       cores would actively hurt: every minor GC is a stop-the-world
       rendezvous across domains the scheduler then has to rotate
       through. *)
    let cap =
      match jobs with None -> Pool.default_jobs () | Some j -> max 1 j
    in
    let domains = max 1 (min shards cap) in
    let barrier = Pool.Barrier.create domains in
    let poison = Atomic.make None in
    let rngs = Array.init shards (fun _ -> Rng.copy t.rng) in
    let logs = Array.make shards [] in
    (* Per-shard delivery calendar: [deliver_at -> links whose head
       message lands then], owned links only.  Per-link delivery steps
       are non-decreasing (the FIFO clamp), so a queue's head — the
       only message [due] can return next — changes only when [due]
       pops it; a send behind a non-empty queue never does.  The
       calendar therefore stays exact under two maintenance events:
       re-schedule after a pop, and schedule when a send lands on an
       empty queue.  That makes the per-step delivery work O(due links)
       — one hash probe and the pops — instead of the sequential
       stepper's O(links) scan; at a thousand nodes the scan *is* the
       stepper's cost, so this is where the sharded stepper wins even
       before any parallelism.  At each step the due links are
       processed in creation order (the sort below), the order the
       sequential scan uses, so shared-destination NICs see the same
       RX interleaving. *)
    let calendars = Array.init shards (fun _ -> Hashtbl.create 64) in
    let worker d =
      let members =
        let acc = ref [] in
        for me = shards - 1 downto 0 do
          if me * domains / shards = d then acc := me :: !acc
        done;
        !acc
      in
      let schedule me li =
        match Link.next_deliver_at t.links.(li) with
        | Some at ->
          let cal = calendars.(me) in
          Hashtbl.replace cal at
            (li :: Option.value (Hashtbl.find_opt cal at) ~default:[])
        | None -> ()
      in
      let send_all me li ~now words =
        let link = t.links.(li) in
        let was_empty = Link.in_flight link = 0 in
        List.iter (fun w -> Link.send link ~now w) words;
        if was_empty then schedule me li
      in
      let apply_inbox me parity =
        for src = 0 to shards - 1 do
          match outboxes.(parity).(src).(me) with
          | [] -> ()
          | pending ->
            outboxes.(parity).(src).(me) <- [];
            List.iter
              (fun (li, s, words) -> send_all me li ~now:s words)
              (List.rev pending)
        done
      in
      let window me w =
        if w > 0 then apply_inbox me ((w - 1) land 1);
        let wstart = base + (w * h) in
        let wlen = min h (steps - (w * h)) in
        let cal = calendars.(me) in
        for s = wstart to wstart + wlen - 1 do
          (* Every shard replays the full schedule (same RNG copy, same
             daemon), so idle slots are agreed on by all shards; shard 0
             alone accounts for them. *)
          (match choose_slot t ~now:s rngs.(me) with
          | None -> if me = 0 then t.skipped_slots <- t.skipped_slots + 1
          | Some who ->
            if shard_of ~shards ~n who = me then begin
              (match run_node_collect t who with
              | [] -> ()
              | words ->
                List.iter
                  (fun li ->
                    let dst = owner.(li) in
                    if dst = me then send_all me li ~now:s words
                    else
                      outboxes.(w land 1).(me).(dst) <-
                        (li, s, words) :: outboxes.(w land 1).(me).(dst))
                  t.out_links.(who));
              match record with
              | None -> ()
              | Some f -> logs.(me) <- (s, who, f t who) :: logs.(me)
            end);
          let now = s + 1 in
          match Hashtbl.find_opt cal now with
          | None -> ()
          | Some due ->
            Hashtbl.remove cal now;
            List.iter
              (fun li ->
                deliver_due t t.links.(li) ~now;
                schedule me li)
              (List.sort compare due)
        done
      in
      let guarded body =
        if Atomic.get poison = None then
          try body ()
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set poison None (Some (exn, bt)))
      in
      (* Seed each calendar from the links' current in-flight heads —
         the only full scan of the run. *)
      List.iter (fun me -> List.iter (schedule me) owned.(me)) members;
      for w = 0 to nwindows - 1 do
        List.iter (fun me -> guarded (fun () -> window me w)) members;
        Pool.Barrier.await barrier
      done;
      (* The final window's cross-shard traffic was never drained; flush
         it so link occupancy (part of the digest) matches the
         sequential run exactly. *)
      List.iter
        (fun me -> guarded (fun () -> apply_inbox me ((nwindows - 1) land 1)))
        members
    in
    let (_ : unit array) = Pool.run_shards ~shards:domains worker in
    (match Atomic.get poison with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    t.rng <- rngs.(0);
    t.step_count <- base + steps;
    Array.to_list logs
    |> List.concat_map List.rev
    |> List.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2)
  end

let run_sharded ?(shards = Pool.default_jobs ()) ?jobs ?horizon t ~steps =
  let (_ : (int * int * unit) list) =
    run_sharded_gen ~shards ?jobs ?horizon ~record:None t ~steps
  in
  ()

let run_sharded_log ?(shards = Pool.default_jobs ()) ?jobs ?horizon ~record t
    ~steps =
  run_sharded_gen ~shards ?jobs ?horizon ~record:(Some record) t ~steps

(* Epoch hooks: chunk the run and call back on the stepping domain
   between chunks.  Each chunk is a complete [run_sharded_gen] call, so
   at every hook point all shards have joined and the cluster is
   exactly the state a sequential run of the same prefix would have —
   the hook may mutate node machines (inject faults, pulse reset pins)
   or read joint state without breaking shard-count invariance.  The
   whole run stays bit-identical for any [shards]/[jobs] as long as the
   hook itself is deterministic. *)
let run_sharded_epochs ?(shards = Pool.default_jobs ()) ?jobs ?horizon ~epoch
    ~record ~on_epoch t ~steps =
  if epoch < 1 then invalid_arg "Cluster.run_sharded_epochs: epoch";
  if steps < 0 then invalid_arg "Cluster.run_sharded_epochs: steps";
  let rec go consumed index =
    if consumed < steps then begin
      let chunk = min epoch (steps - consumed) in
      let log =
        run_sharded_gen ~shards ?jobs ?horizon ~record:(Some record) t
          ~steps:chunk
      in
      on_epoch index log;
      go (consumed + chunk) (index + 1)
    end
  in
  go 0 0

type snapshot = {
  node_snaps : Ssx.Snapshot.t array;
  link_restores : (unit -> unit) array;
  rng : Rng.t;
  step_count : int;
  skipped_slots : int;
}

let capture t =
  { node_snaps = Array.map (fun n -> Ssx.Snapshot.capture n.machine) t.nodes;
    link_restores = Array.map Link.capture t.links;
    rng = Rng.copy t.rng;
    step_count = t.step_count;
    skipped_slots = t.skipped_slots }

let restore t snapshot =
  if Array.length snapshot.node_snaps <> size t then
    invalid_arg "Cluster.restore: node count mismatch";
  if Array.length snapshot.link_restores <> Array.length t.links then
    invalid_arg "Cluster.restore: link count mismatch";
  Array.iteri
    (fun i snap -> Ssx.Snapshot.restore snap t.nodes.(i).machine)
    snapshot.node_snaps;
  Array.iter (fun thunk -> thunk ()) snapshot.link_restores;
  t.rng <- Rng.copy snapshot.rng;
  t.step_count <- snapshot.step_count;
  t.skipped_slots <- snapshot.skipped_slots

let capture_node t i = Ssx.Snapshot.capture t.nodes.(i).machine
let restore_node t i snap = Ssx.Snapshot.restore snap t.nodes.(i).machine

let observe ?(prefix = "net") ?per_link (t : t) =
  let open Ssos_obs in
  (* Per-link/per-NIC gauges are invaluable on a handful of nodes and a
     registry bomb at n=1024 (five gauges per link, four per NIC —
     thousands of entries for one cluster), so above 64 nodes the
     default flips to topology aggregates. *)
  let per_link = match per_link with Some b -> b | None -> size t <= 64 in
  Obs.sample (prefix ^ ".cluster.steps") (fun () -> float_of_int t.step_count);
  Obs.sample (prefix ^ ".cluster.nodes") (fun () -> float_of_int (size t));
  (* Daemon telemetry is O(1) entries and registered in both modes, so
     adversarial campaigns stay observable at any cluster size. *)
  (match t.policy with
  | Daemon d ->
    let dname = d.Ssx_stab.Adversary.name in
    Obs.sample
      (Printf.sprintf "%s.daemon{%s}.skipped-slots" prefix dname)
      (fun () -> float_of_int t.skipped_slots);
    Obs.sample
      (Printf.sprintf "%s.daemon{%s}.stateful" prefix dname)
      (fun () -> if d.Ssx_stab.Adversary.stateful then 1. else 0.)
  | Round_robin | Fair_random -> ());
  if per_link then begin
    Array.iter
      (fun link ->
        let name stat =
          Printf.sprintf "%s.link{%d->%d}.%s" prefix (Link.src link)
            (Link.dst link) stat
        in
        let stat n read =
          Obs.sample (name n) (fun () -> float_of_int (read link))
        in
        stat "sent" Link.sent;
        stat "delivered" Link.delivered;
        stat "dropped" Link.dropped;
        stat "corrupted" Link.corrupted;
        stat "in-flight" Link.in_flight)
      t.links;
    Array.iteri
      (fun i node ->
        let name stat = Printf.sprintf "%s.nic{id=%d}.%s" prefix i stat in
        let stat n read =
          Obs.sample (name n) (fun () ->
              float_of_int (read (Nic.stats node.nic)))
        in
        stat "tx-words" (fun s -> s.Nic.tx_words);
        stat "rx-delivered" (fun s -> s.Nic.rx_delivered);
        stat "rx-dropped" (fun s -> s.Nic.rx_dropped);
        stat "rx-read" (fun s -> s.Nic.rx_read))
      t.nodes
  end
  else begin
    (* Aggregates stay O(1) registry entries no matter the topology;
       the closures walk the link array only at snapshot time, so the
       running cluster never pays for them. *)
    Obs.sample (prefix ^ ".links.count") (fun () ->
        float_of_int (Array.length t.links));
    let total name read =
      Obs.sample (prefix ^ ".links." ^ name) (fun () ->
          float_of_int (Array.fold_left (fun acc l -> acc + read l) 0 t.links))
    in
    total "sent" Link.sent;
    total "delivered" Link.delivered;
    total "dropped" Link.dropped;
    total "corrupted" Link.corrupted;
    total "in-flight" Link.in_flight;
    (* The shape of loss across links, without naming the links: a
       distribution snapshot (quantiles of per-link drop counts).  One
       hot link in a healthy mesh shows up as max >> p99. *)
    let drops_at q () =
      let nlinks = Array.length t.links in
      if nlinks = 0 then 0.
      else begin
        let drops = Array.map Link.dropped t.links in
        Array.sort compare drops;
        let idx =
          min (nlinks - 1)
            (int_of_float ((q *. float_of_int (nlinks - 1)) +. 0.5))
        in
        float_of_int drops.(idx)
      end
    in
    Obs.sample (prefix ^ ".links.drops.p50") (drops_at 0.5);
    Obs.sample (prefix ^ ".links.drops.p90") (drops_at 0.9);
    Obs.sample (prefix ^ ".links.drops.p99") (drops_at 0.99);
    Obs.sample (prefix ^ ".links.drops.max") (drops_at 1.0);
    let nic_total name read =
      Obs.sample (prefix ^ ".nics." ^ name) (fun () ->
          float_of_int
            (Array.fold_left
               (fun acc node -> acc + read (Nic.stats node.nic))
               0 t.nodes))
    in
    nic_total "tx-words" (fun s -> s.Nic.tx_words);
    nic_total "rx-delivered" (fun s -> s.Nic.rx_delivered);
    nic_total "rx-dropped" (fun s -> s.Nic.rx_dropped);
    nic_total "rx-read" (fun s -> s.Nic.rx_read)
  end

let digest t =
  let buffer = Buffer.create 256 in
  Array.iter
    (fun n ->
      Buffer.add_string buffer (Ssx.Snapshot.digest (Ssx.Snapshot.capture n.machine));
      Buffer.add_char buffer ';')
    t.nodes;
  Array.iter
    (fun link -> Buffer.add_string buffer (string_of_int (Link.in_flight link)))
    t.links;
  Buffer.add_string buffer (string_of_int t.step_count);
  Ssx.Digest.string (Buffer.contents buffer)
