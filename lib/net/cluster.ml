module Rng = Ssx_faults.Rng

type policy = Round_robin | Fair_random

type node = { machine : Ssx.Machine.t; nic : Nic.t }

type t = {
  nodes : node array;
  policy : policy;
  ticks_per_slot : int;
  seed : int64;
  mutable rng : Rng.t;
  mutable links : Link.t array;
  mutable out_links : int list array;  (* node -> link indices, creation order *)
  mutable step_count : int;
}

let create ?(policy = Round_robin) ?(ticks_per_slot = 50) ~seed nodes =
  if Array.length nodes = 0 then invalid_arg "Cluster.create: no nodes";
  if ticks_per_slot <= 0 then invalid_arg "Cluster.create: ticks_per_slot";
  { nodes; policy; ticks_per_slot; seed;
    rng = Rng.create (Rng.derive seed 0);
    links = [||];
    out_links = Array.make (Array.length nodes) [];
    step_count = 0 }

let size t = Array.length t.nodes
let steps t = t.step_count
let machine t i = t.nodes.(i).machine
let nic t i = t.nodes.(i).nic
let links t = t.links

let connect ?faults t ~src ~dst =
  let n = size t in
  if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
    invalid_arg "Cluster.connect: bad endpoints";
  let index = Array.length t.links in
  let rng = Rng.create (Rng.derive t.seed (index + 1)) in
  let link = Link.create ?faults ~rng ~src ~dst () in
  t.links <- Array.append t.links [| link |];
  t.out_links.(src) <- t.out_links.(src) @ [ index ];
  link

let ring_edges ~n =
  if n < 2 then invalid_arg "Cluster.ring_edges: need at least two nodes";
  List.init n (fun i -> (i, (i + 1) mod n))

let star_edges ~n =
  if n < 2 then invalid_arg "Cluster.star_edges: need at least two nodes";
  List.concat (List.init (n - 1) (fun i -> [ (0, i + 1); (i + 1, 0) ]))

let mesh_edges ~n =
  List.concat
    (List.init n (fun src ->
         List.filter_map
           (fun dst -> if src = dst then None else Some (src, dst))
           (List.init n Fun.id)))

let connect_many ?faults t edges =
  List.iter
    (fun (src, dst) ->
      let faults = Option.map (fun f -> f ~src ~dst) faults in
      ignore (connect ?faults t ~src ~dst))
    edges

let step t =
  let n = size t in
  let who =
    match t.policy with
    | Round_robin -> t.step_count mod n
    | Fair_random -> Rng.int t.rng n
  in
  let node = t.nodes.(who) in
  Ssx.Machine.run node.machine ~ticks:t.ticks_per_slot;
  (match Nic.drain_tx node.nic with
  | [] -> ()
  | words ->
    List.iter
      (fun index ->
        let link = t.links.(index) in
        List.iter (fun w -> Link.send link ~now:t.step_count w) words)
      t.out_links.(who));
  t.step_count <- t.step_count + 1;
  Array.iter
    (fun link ->
      List.iter
        (fun word -> ignore (Nic.deliver t.nodes.(Link.dst link).nic word))
        (Link.due link ~now:t.step_count))
    t.links

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

let run_until t ~limit predicate =
  let rec go consumed =
    if consumed >= limit then None
    else begin
      step t;
      if predicate t then Some (consumed + 1) else go (consumed + 1)
    end
  in
  go 0

type snapshot = {
  node_snaps : Ssx.Snapshot.t array;
  link_restores : (unit -> unit) array;
  rng : Rng.t;
  step_count : int;
}

let capture t =
  { node_snaps = Array.map (fun n -> Ssx.Snapshot.capture n.machine) t.nodes;
    link_restores = Array.map Link.capture t.links;
    rng = Rng.copy t.rng;
    step_count = t.step_count }

let restore t snapshot =
  if Array.length snapshot.node_snaps <> size t then
    invalid_arg "Cluster.restore: node count mismatch";
  if Array.length snapshot.link_restores <> Array.length t.links then
    invalid_arg "Cluster.restore: link count mismatch";
  Array.iteri
    (fun i snap -> Ssx.Snapshot.restore snap t.nodes.(i).machine)
    snapshot.node_snaps;
  Array.iter (fun thunk -> thunk ()) snapshot.link_restores;
  t.rng <- Rng.copy snapshot.rng;
  t.step_count <- snapshot.step_count

let capture_node t i = Ssx.Snapshot.capture t.nodes.(i).machine
let restore_node t i snap = Ssx.Snapshot.restore snap t.nodes.(i).machine

let observe ?(prefix = "net") (t : t) =
  let open Ssos_obs in
  Obs.sample (prefix ^ ".cluster.steps") (fun () -> float_of_int t.step_count);
  Obs.sample (prefix ^ ".cluster.nodes") (fun () -> float_of_int (size t));
  Array.iter
    (fun link ->
      let name stat =
        Printf.sprintf "%s.link{%d->%d}.%s" prefix (Link.src link)
          (Link.dst link) stat
      in
      let stat n read = Obs.sample (name n) (fun () -> float_of_int (read link)) in
      stat "sent" Link.sent;
      stat "delivered" Link.delivered;
      stat "dropped" Link.dropped;
      stat "corrupted" Link.corrupted;
      stat "in-flight" Link.in_flight)
    t.links;
  Array.iteri
    (fun i node ->
      let name stat = Printf.sprintf "%s.nic{id=%d}.%s" prefix i stat in
      let stat n read =
        Obs.sample (name n) (fun () -> float_of_int (read (Nic.stats node.nic)))
      in
      stat "tx-words" (fun s -> s.Nic.tx_words);
      stat "rx-delivered" (fun s -> s.Nic.rx_delivered);
      stat "rx-dropped" (fun s -> s.Nic.rx_dropped);
      stat "rx-read" (fun s -> s.Nic.rx_read))
    t.nodes

let digest t =
  let buffer = Buffer.create 256 in
  Array.iter
    (fun n ->
      Buffer.add_string buffer (Ssx.Snapshot.digest (Ssx.Snapshot.capture n.machine));
      Buffer.add_char buffer ';')
    t.nodes;
  Array.iter
    (fun link -> Buffer.add_string buffer (string_of_int (Link.in_flight link)))
    t.links;
  Buffer.add_string buffer (string_of_int t.step_count);
  Ssx.Digest.string (Buffer.contents buffer)
