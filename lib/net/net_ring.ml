let k = 8

(* One process per machine, so its data segment and heartbeat port are
   those of process 0. *)
let data_segment = Ssos.Process.data_segment 0
let self_off = 0
let view_off = 2
let self_addr = (data_segment lsl 4) + self_off
let view_addr = (data_segment lsl 4) + view_off

let ring_process ~bottom ~index =
  let nic = Nic.default_base_port in
  let symbols =
    [ ("DATA_SEG", data_segment);
      ("SELF_OFF", self_off);
      ("PRED_OFF", view_off);
      ("K_MASK", k - 1);
      ("NIC_TX", nic);
      ("NIC_RX", nic + 1);
      ("NIC_STATUS", nic + 2);
      ("MY_PORT", Ssos.Layout.process_heartbeat_port 0) ]
  in
  (* Every labelled block below starts 16-aligned and fits in one
     16-byte window, so a preemption's ip masking re-enters at the
     block's own start; see the replay notes on each block. *)
  let decide =
    if bottom then
      "; block: decide and derive (bottom: move when equal, by\n\
       ; incrementing modulo K); re-entry is guarded by the comparison\n\
       derive:\n\
      \    cmp ax, bx\n\
      \    jne announce\n\
      \    inc ax\n\
      \    and ax, K_MASK\n"
    else
      "; block: decide (other: move when different, by copying);\n\
       ; re-entry re-checks the comparison\n\
       derive:\n\
      \    cmp ax, bx\n\
      \    je announce\n"
  in
  let source =
    "org 0\n\
     start:\n\
     ; block: establish the data segment (idempotent)\n\
    \    mov ax, DATA_SEG\n\
    \    mov ds, ax\n\
     align 16\n\
     ; block: poll for arrivals (pure reads)\n\
     poll:\n\
    \    mov dx, NIC_STATUS\n\
    \    in ax, dx\n\
    \    cmp ax, 0\n\
    \    je load\n\
     align 16\n\
     ; block: consume one word into the predecessor view; a replayed\n\
     ; destructive read can only lose a word, and the sender\n\
     ; retransmits every pass (a corrupted word lands raw and is healed\n\
     ; when the move commits and the clamp below runs)\n\
     take:\n\
    \    mov dx, NIC_RX\n\
    \    in ax, dx\n\
    \    mov [PRED_OFF], ax\n\
    \    jmp poll\n\
     align 16\n\
     ; block: load both counters (idempotent)\n\
     load:\n\
    \    mov ax, [PRED_OFF]\n\
    \    mov bx, [SELF_OFF]\n\
     align 16\n"
    ^ decide
    ^ "align 16\n\
       ; block: commit the move (re-storing the same ax is idempotent)\n\
       commit:\n\
      \    mov [SELF_OFF], ax\n\
       align 16\n\
       ; block: clamp the counter into 0..K-1 (heals memory corruption)\n\
       announce:\n\
      \    mov ax, [SELF_OFF]\n\
      \    and ax, K_MASK\n\
      \    mov [SELF_OFF], ax\n\
       align 16\n\
       ; block: retransmit unconditionally and report the heartbeat\n\
       emit:\n\
      \    mov dx, NIC_TX\n\
      \    out dx, ax\n\
      \    out MY_PORT, ax\n\
      \    jmp start\n"
  in
  { Ssos.Process.name = Printf.sprintf "net-ring-%d" index; source; symbols }

type t = {
  cluster : Cluster.t;
  systems : Ssos.Sched.t array;
  n : int;
}

let build ?(n = 4) ?policy ?ticks_per_slot ?latency ?edges ?watchdog_period
    ?capacity ?faults ?decode_cache ?jit ?obs ~seed () =
  if n < 2 then invalid_arg "Net_ring.build: need at least two nodes";
  let obs =
    match obs with Some v -> v | None -> Ssos_obs.Obs.enabled ()
  in
  let systems =
    Array.init n (fun index ->
        Ssos.Sched.build ~n:1 ?watchdog_period ?decode_cache ?jit ~obs
          ~obs_label:(Printf.sprintf "node%d" index)
          ~processes:[| ring_process ~bottom:(index = 0) ~index |] ())
  in
  let nodes =
    Array.map
      (fun sched ->
        let nic = Nic.create ?capacity () in
        Nic.attach nic sched.Ssos.Sched.machine;
        { Cluster.machine = sched.Ssos.Sched.machine; nic })
      systems
  in
  let cluster = Cluster.create ?policy ?ticks_per_slot ?latency ~seed nodes in
  (* Adversarial daemons get the abstract ring state: each node's raw
     counter word (the adaptive adversary clamps it into [0, K)). *)
  Cluster.set_abstract cluster (fun i ->
      Ssx.Memory.read_word (Ssx.Machine.memory (Cluster.machine cluster i))
        self_addr);
  let edges =
    match edges with Some e -> e | None -> Cluster.ring_edges ~n
  in
  Cluster.connect_many ?faults cluster edges;
  if obs then Cluster.observe cluster;
  { cluster; systems; n }

let node_memory t i = Ssx.Machine.memory (Cluster.machine t.cluster i)
let states t = Array.init t.n (fun i -> Ssx.Memory.read_word (node_memory t i) self_addr)
let views t = Array.init t.n (fun i -> Ssx.Memory.read_word (node_memory t i) view_addr)

let sample t =
  { Ssx_stab.Distributed.step = Cluster.steps t.cluster; states = states t }

let corrupt_state t i v =
  Ssx.Memory.write_word (node_memory t i) self_addr (Ssx.Word.mask v)

let corrupt_view t i v =
  Ssx.Memory.write_word (node_memory t i) view_addr (Ssx.Word.mask v)

let token_count t = Ssx_stab.Distributed.token_count ~states:(states t)
let legitimate t = Ssx_stab.Distributed.legitimate ~states:(states t)

(* [record] for the sharded runs below: a node's counter word, read on
   the owning shard right after the node's slot.  A node's memory only
   changes while the node itself runs (delivery just queues words in the
   destination NIC), so the per-step log is enough to replay the exact
   state matrix a sequential observer would have sampled. *)
let record_state cluster who =
  Ssx.Memory.read_word (Ssx.Machine.memory (Cluster.machine cluster who))
    self_addr

let observe ?shards t ~steps =
  match shards with
  | None ->
    let acc = ref [] in
    for _ = 1 to steps do
      Cluster.step t.cluster;
      acc := sample t :: !acc
    done;
    List.rev !acc
  | Some shards ->
    let base = Cluster.steps t.cluster in
    let current = states t in
    let log =
      Cluster.run_sharded_log ~shards ~record:record_state t.cluster ~steps
    in
    let rec go s log acc =
      if s >= base + steps then List.rev acc
      else begin
        let log =
          match log with
          | (ls, who, v) :: rest when ls = s ->
            current.(who) <- v;
            rest
          | _ -> log
        in
        go (s + 1) log
          ({ Ssx_stab.Distributed.step = s + 1; states = Array.copy current }
          :: acc)
      end
    in
    go base log []

type move_trace = {
  converged : int option;
  total_moves : int;
  off_model_moves : int;
  tail_moves : int;
}

(* Sequential on purpose: the walk projects the joint configuration
   after every single cluster step, which is exactly what the sharded
   stepper amortizes away. *)
let converge_moves ?(limit = 5_000) t =
  let proj () = Array.map (fun w -> w mod k) (states t) in
  let prev = ref (proj ()) in
  let total = ref 0 and off = ref 0 and tail = ref 0 in
  let converged = ref None in
  let step = ref 0 in
  while !converged = None && !step < limit do
    Cluster.step t.cluster;
    incr step;
    let next = proj () in
    let p = !prev in
    for i = 0 to t.n - 1 do
      if next.(i) <> p.(i) then begin
        incr total;
        (* Dijkstra's move from the {e true} previous configuration:
           anything else means the node fired on a stale view (or a
           clamp healed a corrupted word into a new residue). *)
        let fired =
          if i = 0 then p.(0) = p.(t.n - 1) && next.(0) = (p.(0) + 1) mod k
          else p.(i) <> p.(i - 1) && next.(i) = p.(i - 1)
        in
        if fired then incr tail
        else begin
          incr off;
          tail := 0
        end
      end
    done;
    prev := next;
    if legitimate t then converged := Some !step
  done;
  { converged = !converged;
    total_moves = !total;
    off_model_moves = !off;
    tail_moves = !tail }

let run_until_legitimate ?shards t ~limit =
  match shards with
  | None -> Cluster.run_until t.cluster ~limit (fun _ -> legitimate t)
  | Some shards ->
    (* Chunked: each chunk is one sharded run whose per-step log is
       replayed to find the exact first legitimate step.  The chunk
       length depends only on the cluster (not on [shards]), so both
       the returned step and the final cluster state are shard-count
       invariant; the cluster does overshoot to the chunk boundary. *)
    let chunk = 16 * max 1 (Cluster.latency t.cluster - 1) in
    let base = Cluster.steps t.cluster in
    let current = states t in
    let rec go consumed =
      if consumed >= limit then None
      else begin
        let steps = min chunk (limit - consumed) in
        let log =
          Cluster.run_sharded_log ~shards ~record:record_state t.cluster
            ~steps
        in
        let found =
          List.fold_left
            (fun found (s, who, v) ->
              current.(who) <- v;
              match found with
              | Some _ -> found
              | None ->
                if Ssx_stab.Distributed.legitimate ~states:current then
                  Some (s + 1 - base)
                else None)
            None log
        in
        match found with
        | Some consumed -> Some consumed
        | None -> go (consumed + steps)
      end
    in
    go 0
