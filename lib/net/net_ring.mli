(** Dijkstra's K-state token ring across machines.

    Each node of the ring is a whole SSX16 machine running the §5.2
    self-stabilizing scheduler with a single guest process; the guests
    exchange counters over {!Nic}s and {!Link}s instead of shared
    memory (contrast {!Ssos.Token_os}, the single-machine version).
    Every loop pass a guest drains its RX queue into its {e view} of
    the predecessor's counter, makes Dijkstra's move — the bottom node
    increments modulo K when equal, the others copy when different —
    and unconditionally retransmits its own counter, so dropped or
    corrupted messages are repaired by the very next pass.

    The guest images follow the repository's replay-idempotence
    discipline: 16-byte-aligned blocks whose re-entry (after a watchdog
    preemption masks the instruction pointer back to a block start) is
    harmless, with the derivation block guarded by its own comparison
    and the commit block a bare idempotent store.

    Legality is judged on the nodes' true counter states with
    {!Ssx_stab.Distributed}. *)

val k : int
(** 8 counter states. *)

val self_addr : int
(** Physical address of a node's own counter (same on every node). *)

val view_addr : int
(** Physical address of a node's view of its predecessor's counter. *)

type t = {
  cluster : Cluster.t;
  systems : Ssos.Sched.t array;  (** node [i]'s scheduler system *)
  n : int;
}

val ring_process : bottom:bool -> index:int -> Ssos.Process.t
(** The guest source for one node ([index] only names it). *)

val build :
  ?n:int ->
  ?policy:Cluster.policy ->
  ?ticks_per_slot:int ->
  ?latency:int ->
  ?edges:(int * int) list ->
  ?watchdog_period:int ->
  ?capacity:int ->
  ?faults:(src:int -> dst:int -> Link.fault_model) ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  seed:int64 ->
  unit ->
  t
(** An [n]-node ring (default 4, at least 2), nodes linked
    [i -> i+1 mod n] with per-link fault models from [faults] (benign
    when omitted).  All counters start at zero — a legitimate
    configuration with the single privilege at the bottom.

    [latency] is the cluster link latency ({!Cluster.create}); values
    above 1 give the sharded stepper its lookahead.  [edges] replaces
    the ring topology with an arbitrary edge list (the guests still run
    the ring protocol — useful for differential and scale tests where
    only deterministic traffic matters, not convergence).

    [obs] (default {!Ssos_obs.Obs.enabled}) instruments every node's
    machine (labelled [node<i>]) and registers the cluster's link/NIC
    gauges via {!Cluster.observe}. *)

val states : t -> int array
(** True counters, node order. *)

val views : t -> int array
(** Predecessor views, node order. *)

val sample : t -> Ssx_stab.Distributed.sample

val corrupt_state : t -> int -> int -> unit
(** [corrupt_state t i v] — overwrite node [i]'s counter with the raw
    16-bit [v] (the guest clamps it into range on its next pass). *)

val corrupt_view : t -> int -> int -> unit

val token_count : t -> int
val legitimate : t -> bool

val observe : ?shards:int -> t -> steps:int -> Ssx_stab.Distributed.sample list
(** Run [steps] cluster steps, sampling the joint state after each.
    With [?shards] the run uses {!Cluster.run_sharded_log} and the
    sample list is reconstructed from the per-slot log — bit-identical
    to the sequential sampling for any shard count, because a node's
    state only changes during its own slot. *)

type move_trace = {
  converged : int option;  (** steps to the first legitimate joint state *)
  total_moves : int;  (** projected counter changes (abstract moves) *)
  off_model_moves : int;
      (** moves that are not Dijkstra's rule applied to the true
          previous configuration — a node firing on a stale view of its
          predecessor, or a clamp healing a corrupted word *)
  tail_moves : int;
      (** model moves after the last off-model move — the quantity the
          exhaustive checker's worst-case bound dominates
          ({!Ssx_stab.Model.worst_bound}; DESIGN.md §4j) *)
}

val converge_moves : ?limit:int -> t -> move_trace
(** Step the cluster sequentially (one step at a time, up to [limit]),
    projecting the joint configuration (counters mod K) after every
    step and classifying each projected change against Dijkstra's
    abstract transition relation.  The concrete ring is message-passing
    — a node may fire on a {e stale} view, which is a move the shared-
    memory model has no counterpart for — so the checker's worst-case
    bound applies to the move sequence {e after} the last off-model
    move ([tail_moves]), not to [total_moves]. *)

val run_until_legitimate : ?shards:int -> t -> limit:int -> int option
(** First step at which the joint state is legitimate (which may
    flicker while messages are in flight — use {!observe} plus
    {!Ssx_stab.Distributed.judge} for a windowed verdict).  With
    [?shards] the search runs in sharded chunks: the returned step is
    still exact and shard-count invariant, but the cluster itself may
    have advanced past it, up to the end of the chunk (a fixed multiple
    of the latency horizon) containing it. *)
