(** A point-to-point message channel with a seeded fault model.

    Words sent on a link arrive after at least one cluster step, subject
    to the link's {!fault_model}: independent per-message drop and
    duplication probabilities, a bounded uniform extra delay, and a
    per-message probability of one corrupted byte.  Delivery is FIFO
    even under random delays — a message's delivery step is clamped to
    be no earlier than its predecessor's — so a stabilized ring sees a
    (possibly thinned and corrupted) {e ordered} stream, never a
    reordered one.

    All randomness comes from the link's own {!Ssx_faults.Rng.t}, seeded
    by the owning {!Cluster}, so campaigns are exactly reproducible.
    The fault-model fields are mutable on purpose: experiments flip a
    link between benign and faulty phases mid-run; {!capture} includes
    them, so snapshot-reset trials restore the phase too. *)

type fault_model = {
  mutable drop : float;       (** per-message loss probability *)
  mutable duplicate : float;  (** per-message duplication probability *)
  mutable max_delay : int;    (** uniform extra delay in [0, max_delay] steps *)
  mutable corrupt : float;    (** per-message byte-corruption probability *)
}

val benign : unit -> fault_model
(** No loss, no duplication, no extra delay, no corruption. *)

val lossy : ?drop:float -> ?duplicate:float -> ?max_delay:int ->
  ?corrupt:float -> unit -> fault_model

type t

val create :
  ?latency:int ->
  ?faults:fault_model -> rng:Ssx_faults.Rng.t -> src:int -> dst:int -> unit -> t
(** [latency] (default 1, at least 1) is the {e minimum} number of
    cluster steps a word spends in flight; random jitter from the fault
    model adds on top.  It is immutable: the sharded stepper's
    synchronization horizon is derived from it at {!Cluster.create}
    time, so letting experiments shrink it mid-run would silently break
    the conservative-DES exchange (DESIGN.md §4h). *)

val src : t -> int
val dst : t -> int
val latency : t -> int
val faults : t -> fault_model

val send : t -> now:int -> int -> unit
(** Submit one word at cluster step [now]; it becomes deliverable at
    step [now + latency] or later, per the fault model. *)

val due : t -> now:int -> int list
(** Pop every message whose delivery step has arrived, in order. *)

val next_deliver_at : t -> int option
(** Delivery step of the earliest in-flight message, if any — a peek,
    nothing is popped.  Per-link delivery steps are non-decreasing (the
    FIFO clamp), so this is the step at which {!due} next returns
    something.  The sharded stepper uses it to bucket each link's next
    delivery once per horizon window instead of scanning every link
    every step (DESIGN.md §4h). *)

val in_flight : t -> int

val sent : t -> int
(** Words submitted (before drop/duplication). *)

val dropped : t -> int

val delivered : t -> int
(** Words actually handed to the receiver by {!due}. *)

val corrupted : t -> int
(** Words that had a byte garbled in flight (they still count as
    delivered when they arrive). *)

val capture : t -> unit -> unit
(** Record the link's full state — queue, FIFO clamp, fault-model
    fields, RNG — and return a thunk restoring exactly that state
    (callable any number of times), in the style of
    {!Ssx.Machine.add_resettable}. *)
