(** Self-stabilizing BFS spanning tree (Dolev–Israeli–Moran style).

    A fixed root claims distance 0; every other node repeatedly sets its
    distance to one more than the smallest neighbour distance and adopts
    that neighbour as its parent.  From any initial distances the system
    converges, under fair scheduling, to the true BFS distances in at
    most [diameter] rounds — the archetypal composed layer above a
    self-stabilizing operating system: the paper's application level. *)

type graph = int list array
(** Adjacency lists; [graph.(v)] are the neighbours of [v]. *)

type t

val create : graph:graph -> root:int -> t
(** @raise Invalid_argument if the root is out of range or the graph is
    empty.  Distances start at 0 everywhere (an illegitimate state for
    every non-root node with the root not adjacent). *)

val distances : t -> int array
val parents : t -> int array
(** [parents.(root) = root]; for unreachable or unconverged nodes the
    parent is the node itself. *)

val set_distance : t -> int -> int -> unit
(** Corrupt one node's distance estimate. *)

val step : t -> int -> bool
(** Activate node [v]: recompute its distance/parent from its
    neighbours; returns whether anything changed.  The root resets
    itself to distance 0. *)

val step_round : t -> int
(** One fair round over all nodes; returns the number of changes. *)

val true_distances : graph -> root:int -> int array
(** Reference BFS ([max_int] for unreachable nodes). *)

val legitimate : t -> bool
(** Every reachable node's distance equals its true BFS distance and
    every reachable non-root node's parent is a neighbour one step
    closer to the root (unreachable nodes are unconstrained: their
    estimates churn upward forever, which is the algorithm's correct
    behaviour). *)

val rounds_to_stabilize : t -> max_rounds:int -> int option
