type t = { k : int; states : int array }

let create ~n ~k =
  if n < 2 then invalid_arg "Token_ring.create: need at least two machines";
  if k < 1 then invalid_arg "Token_ring.create: k must be positive";
  { k; states = Array.make n 0 }

let n ring = Array.length ring.states
let k ring = ring.k
let states ring = Array.copy ring.states

let set_state ring i v =
  ring.states.(i) <- ((v mod ring.k) + ring.k) mod ring.k

let privileged ring i =
  let last = Array.length ring.states - 1 in
  if i = 0 then ring.states.(0) = ring.states.(last)
  else ring.states.(i) <> ring.states.(i - 1)

let privileged_machines ring =
  List.filter (privileged ring) (List.init (n ring) Fun.id)

let token_count ring = List.length (privileged_machines ring)
let legitimate ring = token_count ring = 1

let step ring i =
  if not (privileged ring i) then false
  else begin
    if i = 0 then ring.states.(0) <- (ring.states.(0) + 1) mod ring.k
    else ring.states.(i) <- ring.states.(i - 1);
    true
  end

let step_round ring =
  let moves = ref 0 in
  for i = 0 to n ring - 1 do
    if step ring i then incr moves
  done;
  !moves

let rounds_to_stabilize ring ~max_rounds =
  let rec loop round =
    if legitimate ring then Some round
    else if round >= max_rounds then None
    else begin
      ignore (step_round ring);
      loop (round + 1)
    end
  in
  loop 0
