(** Dijkstra's K-state self-stabilizing token ring (the founding
    algorithm of the field, cited as [9] in the paper).

    N machines on a ring hold counters in [0, K).  Machine 0 is
    privileged when its value equals its predecessor's (machine N-1)
    and moves by incrementing modulo K; machine i > 0 is privileged
    when its value differs from machine i-1's and moves by copying it.
    From any configuration, if K >= N the system converges to exactly
    one privilege circulating forever — the token.

    Used here as the canonical self-stabilizing {e application} layer:
    §5's schedulers must preserve the stabilization of programs like
    this one (the "stabilization preserving" requirement). *)

type t

val create : n:int -> k:int -> t
(** All counters zero (a legitimate configuration).
    @raise Invalid_argument unless [n >= 2] and [k >= 1]. *)

val n : t -> int
val k : t -> int
val states : t -> int array
(** A copy of the counters. *)

val set_state : t -> int -> int -> unit
(** Corrupt one machine's counter (value is reduced modulo K). *)

val privileged : t -> int -> bool
val privileged_machines : t -> int list
val token_count : t -> int
(** Number of privileged machines; legitimate iff 1. *)

val legitimate : t -> bool

val step : t -> int -> bool
(** Let machine [i] take its move if privileged; returns whether it
    moved. *)

val step_round : t -> int
(** One fair round (machines 0..N-1 in order); returns moves taken. *)

val rounds_to_stabilize : t -> max_rounds:int -> int option
(** Run fair rounds until legitimate; [None] if the bound is hit.
    (Counts rounds; a legitimate start answers [Some 0].) *)
