type t = { inputs : int array; mutable estimates : int array; max_input : int }

let create ~inputs =
  if Array.length inputs = 0 then invalid_arg "Max_finder.create: empty inputs";
  { inputs;
    estimates = Array.copy inputs;
    max_input = Array.fold_left max inputs.(0) inputs }

let estimates t = Array.copy t.estimates
let set_estimate t i v = t.estimates.(i) <- v
let global_max t = t.max_input
let legitimate t = Array.for_all (fun e -> e = t.max_input) t.estimates

let step_round t =
  let n = Array.length t.inputs in
  let next =
    Array.init n (fun i ->
        let left = t.estimates.((i + n - 1) mod n)
        and right = t.estimates.((i + 1) mod n) in
        let candidate = max t.inputs.(i) (max left right) in
        (* Estimates above every input are corruption artefacts. *)
        if candidate > t.max_input then t.inputs.(i) else candidate)
  in
  let changed = ref 0 in
  Array.iteri (fun i v -> if v <> t.estimates.(i) then incr changed) next;
  t.estimates <- next;
  !changed

let rounds_to_stabilize t ~max_rounds =
  let rec loop round =
    if legitimate t then Some round
    else if round >= max_rounds then None
    else begin
      ignore (step_round t);
      loop (round + 1)
    end
  in
  loop 0
