(** Self-stabilizing greedy vertex colouring.

    Under a central daemon a node in conflict with a neighbour recolours
    itself with the smallest colour unused by its neighbours.  Each move
    eliminates every conflict at the moving node and creates none, so
    the number of conflicting edges strictly decreases: from any initial
    colouring the system reaches a proper (Δ+1)-colouring within at most
    |E| moves. *)

type graph = int list array

type t

val create : graph:graph -> t
(** All nodes start with colour 0 (maximally conflicting on any graph
    with edges). *)

val colors : t -> int array
val set_color : t -> int -> int -> unit
(** Corrupt a node's colour. *)

val in_conflict : t -> int -> bool
(** Whether the node shares its colour with some neighbour. *)

val conflict_edges : t -> int
(** Number of monochromatic edges. *)

val legitimate : t -> bool
(** Proper colouring: no monochromatic edge. *)

val step : t -> int -> bool
(** Activate one node (recolour if in conflict); true if it moved. *)

val step_round : t -> int
(** One serial round over all nodes; returns moves taken. *)

val moves_to_stabilize : t -> max_moves:int -> int option
(** Run a central daemon (first conflicting node moves) until proper;
    returns the number of moves. *)

val max_degree : graph -> int
