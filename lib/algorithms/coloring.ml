type graph = int list array

type t = { graph : graph; colors : int array }

let create ~graph = { graph; colors = Array.make (Array.length graph) 0 }
let colors t = Array.copy t.colors
let set_color t v c = t.colors.(v) <- max 0 c

let in_conflict t v =
  List.exists (fun w -> t.colors.(w) = t.colors.(v)) t.graph.(v)

let conflict_edges t =
  let count = ref 0 in
  Array.iteri
    (fun v neighbours ->
      List.iter (fun w -> if w > v && t.colors.(w) = t.colors.(v) then incr count) neighbours)
    t.graph;
  !count

let legitimate t = conflict_edges t = 0

let smallest_free t v =
  let used = List.map (fun w -> t.colors.(w)) t.graph.(v) in
  let rec search c = if List.mem c used then search (c + 1) else c in
  search 0

let step t v =
  if in_conflict t v then begin
    t.colors.(v) <- smallest_free t v;
    true
  end
  else false

let step_round t =
  let moves = ref 0 in
  for v = 0 to Array.length t.graph - 1 do
    if step t v then incr moves
  done;
  !moves

let moves_to_stabilize t ~max_moves =
  let n = Array.length t.graph in
  let rec loop moves =
    if moves > max_moves then None
    else begin
      (* Central daemon: pick the first conflicting node. *)
      let rec find v = if v >= n then None else if in_conflict t v then Some v else find (v + 1) in
      match find 0 with
      | None -> Some moves
      | Some v ->
        ignore (step t v);
        loop (moves + 1)
    end
  in
  loop 0

let max_degree graph =
  Array.fold_left (fun acc neighbours -> max acc (List.length neighbours)) 0 graph
