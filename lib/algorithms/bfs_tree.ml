type graph = int list array

type t = {
  graph : graph;
  root : int;
  distances : int array;
  parents : int array;
  reference : int array;
}

(* Distances are capped so corrupted values cannot overflow arithmetic. *)
let infinity_cap = 1_000_000

let true_distances graph ~root =
  let n = Array.length graph in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      graph.(v)
  done;
  dist

let create ~graph ~root =
  let n = Array.length graph in
  if n = 0 then invalid_arg "Bfs_tree.create: empty graph";
  if root < 0 || root >= n then invalid_arg "Bfs_tree.create: root out of range";
  { graph;
    root;
    distances = Array.make n 0;
    parents = Array.init n Fun.id;
    reference = true_distances graph ~root }

let distances t = Array.copy t.distances
let parents t = Array.copy t.parents

let set_distance t v d =
  t.distances.(v) <- max 0 (min d infinity_cap)

let step t v =
  if v = t.root then begin
    let changed = t.distances.(v) <> 0 || t.parents.(v) <> v in
    t.distances.(v) <- 0;
    t.parents.(v) <- v;
    changed
  end
  else begin
    let best =
      List.fold_left
        (fun acc w ->
          match acc with
          | Some (_, d) when d <= t.distances.(w) -> acc
          | _ -> Some (w, t.distances.(w)))
        None t.graph.(v)
    in
    match best with
    | None -> false (* isolated node: nothing to adopt *)
    | Some (parent, d) ->
      let next = min (d + 1) infinity_cap in
      let changed = t.distances.(v) <> next || t.parents.(v) <> parent in
      t.distances.(v) <- next;
      t.parents.(v) <- parent;
      changed
  end

let step_round t =
  let changes = ref 0 in
  for v = 0 to Array.length t.graph - 1 do
    if step t v then incr changes
  done;
  !changes

let legitimate t =
  let n = Array.length t.graph in
  let ok = ref true in
  for v = 0 to n - 1 do
    if t.reference.(v) = max_int then
      (* Unreachable nodes churn upward forever; the specification only
         constrains the reachable component. *)
      ()
    else if t.distances.(v) <> t.reference.(v) then ok := false
    else if v <> t.root then begin
      let p = t.parents.(v) in
      if not (List.mem p t.graph.(v)) || t.distances.(p) + 1 <> t.distances.(v)
      then ok := false
    end
  done;
  !ok

let rounds_to_stabilize t ~max_rounds =
  let rec loop round =
    if legitimate t then Some round
    else if round >= max_rounds then None
    else begin
      ignore (step_round t);
      loop (round + 1)
    end
  in
  loop 0
