(** Self-stabilizing maximum propagation.

    Each node repeatedly sets its estimate to the maximum of its own
    {e fixed input} and its neighbours' estimates, except that an
    estimate exceeding every input is discarded (reset to the node's own
    input) — the standard guard that makes max-propagation
    self-stabilizing against over-estimates from corruption. *)

type t

val create : inputs:int array -> t
(** Ring of [Array.length inputs] nodes; estimates start at the inputs.
    @raise Invalid_argument on an empty array. *)

val estimates : t -> int array
val set_estimate : t -> int -> int -> unit
(** Corrupt a node's estimate arbitrarily. *)

val global_max : t -> int
val legitimate : t -> bool
(** All estimates equal the maximum input. *)

val step_round : t -> int
(** One synchronous round; returns the number of changed estimates. *)

val rounds_to_stabilize : t -> max_rounds:int -> int option
