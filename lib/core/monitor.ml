type detection = {
  tick : int;
  violated : string list;
}

type t = {
  system : System.t;
  predicates : Ssx_stab.Predicate.t list;
  mutable detections : detection list;
  mutable checks : int;
}

let monitor_offset = 0x0400

(* The monitor handler serves both the watchdog NMI and exceptions.

   NMI path (entry [monitor_handler]): clear the repeat-exception latch,
   refresh the executable portion from ROM, validate the interrupted
   cs:ip and resume; a bad frame falls through to the full
   reinstall-and-restart procedure (§4 modification (3)).

   Exception path (entry [exception_handler], offset +0x100): the
   graduated repair of §4 — "correcting actions that are less severe
   than reinstall".  Refresh the code and retry the faulting
   instruction; if the {e same} address faults twice in a row (recorded
   in a scratch word), the local repair evidently failed, so escalate to
   the full reinstall.  The scratch word lives in corruptible RAM: a
   corrupted latch costs at most one spurious escalation (safe) or one
   extra retry (the next exception escalates), preserving
   self-stabilization. *)
let monitor_source =
  "; Section 4 monitor handler: refresh code, validate return frame,\n\
   ; retry-once exceptions.\n\
   CODE_SIZE equ OS_DATA_OFFSET\n\
   LATCH_NONE equ 0xFFFF\n\
   monitor_handler:\n\
  \    push ds\n\
  \    push ax\n\
  \    push bx\n\
   ; a healthy watchdog pulse clears the repeat-exception latch\n\
  \    mov ax, SCRATCH_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov word [0], LATCH_NONE\n\
   common:\n\
  \    push cx\n\
  \    push si\n\
  \    push di\n\
  \    push es\n\
   ; refresh only the executable portion (modification (1))\n\
  \    mov ax, OS_ROM_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov si, 0x00\n\
  \    mov ax, OS_SEGMENT\n\
  \    mov es, ax\n\
  \    mov di, 0x00\n\
  \    mov cx, CODE_SIZE\n\
  \    cld\n\
  \    rep movsb\n\
  \    pop es\n\
  \    pop di\n\
  \    pop si\n\
  \    pop cx\n\
   ; validate the return frame (modification (3))\n\
  \    mov bx, sp\n\
  \    mov ax, [ss:bx+8]        ; interrupted cs\n\
  \    cmp ax, OS_SEGMENT\n\
  \    jne bad_frame\n\
  \    mov ax, [ss:bx+6]        ; interrupted ip\n\
  \    cmp ax, CODE_SIZE\n\
  \    jb frame_ok\n\
   bad_frame:\n\
  \    jmp RESTART_ENTRY        ; reinstall and start from the first command\n\
   frame_ok:\n\
  \    pop bx\n\
  \    pop ax\n\
  \    pop ds\n\
  \    iret\n\
   org EXCEPTION_ENTRY\n\
   exception_handler:\n\
  \    push ds\n\
  \    push ax\n\
  \    push bx\n\
  \    mov ax, SCRATCH_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov bx, sp\n\
  \    mov ax, [ss:bx+6]        ; faulting ip\n\
  \    cmp ax, [0]              ; faulted here last time too?\n\
  \    je bad_frame             ; local repair failed - escalate\n\
  \    mov [0], ax              ; remember and attempt local repair\n\
  \    jmp common\n"

let guest_predicates ~tasks =
  let index_predicate =
    Ssx_stab.Predicate.word_in_range ~name:"task-index-in-range"
      ~addr:Guest.task_index_addr ~lo:0 ~hi:(tasks - 1) ~reset:0
  in
  let table_predicate =
    let golden i = if i mod 2 = 0 then 1 else Guest.task_divisor in
    let entry_addr i = Guest.task_table_addr + (2 * i) in
    let holds machine =
      let mem = Ssx.Machine.memory machine in
      let rec ok i =
        i >= 2 * tasks
        || (Ssx.Memory.read_word mem (entry_addr i) = golden i && ok (i + 1))
      in
      ok 0
    in
    let repair machine =
      let mem = Ssx.Machine.memory machine in
      for i = 0 to (2 * tasks) - 1 do
        Ssx.Memory.write_word mem (entry_addr i) (golden i)
      done
    in
    Ssx_stab.Predicate.make ~name:"task-table-golden" ~repair holds
  in
  let stack_predicate =
    let holds machine =
      let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
      regs.Ssx.Registers.ss = Layout.os_segment
      && regs.Ssx.Registers.sp >= 0xFF00
      && regs.Ssx.Registers.sp <= Layout.guest_stack_top
    in
    let repair machine =
      let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
      regs.Ssx.Registers.ss <- Layout.os_segment;
      regs.Ssx.Registers.sp <- Layout.guest_stack_top
    in
    Ssx_stab.Predicate.make ~name:"stack-registers-sane" ~repair holds
  in
  [ index_predicate; table_predicate; stack_predicate ]

let exception_entry = monitor_offset + 0x200

let build_rom ~guest =
  let rom = Rom_builder.create () in
  let reset_stub =
    Printf.sprintf "    jmp 0x%04X\n" Layout.recovery_offset
  in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset reset_stub);
  ignore
    (Rom_builder.add_asm rom ~offset:Layout.recovery_offset
       Reinstall.figure1_source);
  ignore
    (Rom_builder.add_asm rom ~offset:monitor_offset
       ~symbols:
         [ ("RESTART_ENTRY", Layout.recovery_offset);
           ("EXCEPTION_ENTRY", exception_entry);
           ("SCRATCH_SEGMENT", Layout.sched_stack_segment) ]
       monitor_source);
  Rom_builder.add_blob rom ~offset:Layout.os_image_offset (Guest.image_bytes guest);
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment ~off:exception_entry;
  Rom_builder.set_vector rom Ssx.Cpu.vec_nmi ~seg:Layout.rom_segment
    ~off:monitor_offset;
  rom

let journal_predicates () =
  let write_ptr =
    Ssx_stab.Predicate.word_in_range ~name:"journal-write-ptr-in-range"
      ~addr:Guest.write_ptr_addr ~lo:0 ~hi:(Guest.journal_slots - 1) ~reset:0
  in
  let slot_addr i = Guest.journal_addr + (4 * i) in
  let slot_valid mem i =
    let seq = Ssx.Memory.read_word mem (slot_addr i) in
    let mac = Ssx.Memory.read_word mem (slot_addr i + 2) in
    (seq = 0 && mac = 0) || mac = seq lxor Guest.journal_mac
  in
  let macs =
    let holds machine =
      let mem = Ssx.Machine.memory machine in
      let rec ok i = i >= Guest.journal_slots || (slot_valid mem i && ok (i + 1)) in
      ok 0
    in
    let repair machine =
      let mem = Ssx.Machine.memory machine in
      for i = 0 to Guest.journal_slots - 1 do
        if not (slot_valid mem i) then begin
          let seq = Ssx.Memory.read_word mem (slot_addr i) in
          Ssx.Memory.write_word mem (slot_addr i + 2) (seq lxor Guest.journal_mac)
        end
      done
    in
    Ssx_stab.Predicate.make ~name:"journal-entry-macs" ~repair holds
  in
  [ write_ptr; macs ]

(* Detection-only predicate: the executable portion matches the golden
   image.  No repair is attached — the ROM handler's refresh is the
   repair; the predicate exists so code corruption is *reported* like
   any other inconsistency. *)
let code_integrity_predicate ~guest =
  let golden =
    String.sub (Guest.image_bytes guest) 0 Layout.os_data_offset
  in
  let holds machine =
    Ssx.Memory.dump
      (Ssx.Machine.memory machine)
      ~base:(Layout.os_segment lsl 4)
      ~len:Layout.os_data_offset
    = golden
  in
  Ssx_stab.Predicate.make ~name:"code-matches-golden" holds

let build_custom ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?obs_label ?(watchdog_period = Layout.default_watchdog_period)
    ?(code_integrity = true) ~guest ~predicates () =
  let rom = build_rom ~guest in
  let system =
    System.build ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
      ?obs_label ~watchdog:(`Nmi watchdog_period) ~rom ~guest ()
  in
  let predicates =
    if code_integrity then predicates @ [ code_integrity_predicate ~guest ]
    else predicates
  in
  let monitor = { system; predicates; detections = []; checks = 0 } in
  let check machine =
    monitor.checks <- monitor.checks + 1;
    let violated =
      Ssx_stab.Predicate.check_and_repair monitor.predicates machine
    in
    if violated <> [] then
      monitor.detections <-
        { tick = Ssx.Machine.ticks machine;
          violated = List.map (fun p -> p.Ssx_stab.Predicate.name) violated }
        :: monitor.detections
  in
  (* Consistency checks run at every entry to the ROM monitor: the
     periodic watchdog NMI and the graduated-repair exception path. *)
  Ssx.Machine.on_event system.System.machine (fun machine event ->
      match event with
      | Ssx.Cpu.Took_interrupt { nmi = true; _ } | Ssx.Cpu.Took_exception _ ->
        check machine
      | Ssx.Cpu.Executed _ | Ssx.Cpu.Took_interrupt _ | Ssx.Cpu.Halted_idle
      | Ssx.Cpu.Did_reset -> ());
  (* The detection log is observational host state; rewind it with the
     machine on snapshot restore so snapshot-reset trials report exactly
     what a rebuilt system would. *)
  Ssx.Machine.add_resettable system.System.machine (fun () ->
      let detections = monitor.detections and checks = monitor.checks in
      fun () ->
        monitor.detections <- detections;
        monitor.checks <- checks);
  monitor

let build ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?obs_label ?watchdog_period ?(tasks = 4) ?(predicates_enabled = true) () =
  let guest = Guest.task_kernel ~tasks () in
  let predicates = if predicates_enabled then guest_predicates ~tasks else [] in
  build_custom ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?obs_label ?watchdog_period ~code_integrity:predicates_enabled ~guest
    ~predicates ()

let detections monitor = List.rev monitor.detections

let spec ?(max_gap = 8000) ?(window = 20_000) () =
  { (Ssx_stab.Convergence.counter_spec ()) with
    Ssx_stab.Convergence.max_gap;
    window }
