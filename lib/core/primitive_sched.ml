type t = {
  machine : Ssx.Machine.t;
  heartbeats : Ssx_devices.Heartbeat.t array;
  entry : int;
  code_len : int;
  n : int;
}

let region_offset = 0xD000
let region_size = 0x1000

let bundle_source ~n =
  if n <= 0 || n > 8 then
    invalid_arg "Primitive_sched.bundle_source: n must be in 1..8";
  let body index =
    Printf.sprintf
      "; process %d body (do-forever loop with the loop removed)\n\
      \    mov ax, 0x%04X\n\
      \    mov ds, ax\n\
      \    mov ax, [0]\n\
      \    inc ax\n\
      \    mov [0], ax\n\
      \    out 0x%02X, ax\n"
      index
      (Process.data_segment index)
      (Layout.process_heartbeat_port index)
  in
  String.concat ""
    ([ Printf.sprintf "org 0x%04X\n" region_offset; "round:\n" ]
    @ List.map body (List.init n Fun.id)
    @ [ "    jmp round\n" ])

let bundle ~n =
  let image =
    Ssx_asm.Assemble.assemble ~origin:region_offset (bundle_source ~n)
  in
  let code = image.Ssx_asm.Assemble.bytes in
  if String.length code > region_size then
    invalid_arg "Primitive_sched.bundle: bodies exceed the region";
  (* Fill unused locations with jumps to the first instruction, the
     paper's "add a jmp command ... in every unused rom location". *)
  let jmp = Ssx.Codec.encode (Ssx.Instruction.Jmp region_offset) in
  let jmp_len = List.length jmp in
  let buffer = Buffer.create region_size in
  Buffer.add_string buffer code;
  while Buffer.length buffer + jmp_len <= region_size do
    List.iter (fun b -> Buffer.add_char buffer (Char.chr b)) jmp
  done;
  while Buffer.length buffer < region_size do
    Buffer.add_char buffer (Char.chr (List.hd (Ssx.Codec.encode Ssx.Instruction.Nop)))
  done;
  Buffer.contents buffer

let build ?(n = 4) () =
  let code =
    Ssx_asm.Assemble.assemble ~origin:region_offset (bundle_source ~n)
  in
  let code_len = String.length code.Ssx_asm.Assemble.bytes in
  let rom = Rom_builder.create () in
  let reset_stub = Printf.sprintf "    jmp 0x%04X\n" region_offset in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset reset_stub);
  (* Exceptions (a mis-decoded corrupted ip) re-enter the round. *)
  let exception_stub = Printf.sprintf "    jmp 0x%04X\n" region_offset in
  ignore (Rom_builder.add_asm rom ~offset:Layout.exception_offset exception_stub);
  Rom_builder.add_blob rom ~offset:region_offset (bundle ~n);
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment
    ~off:Layout.exception_offset;
  let config = Layout.machine_config () in
  let machine = Ssx.Machine.create ~config () in
  Rom_builder.install rom (Ssx.Machine.memory machine);
  (Ssx.Machine.cpu machine).Ssx.Cpu.idtr <- Layout.rom_base + Layout.idt_offset;
  let heartbeats =
    Array.init n (fun i ->
        let hb = Ssx_devices.Heartbeat.create () in
        Ssx_devices.Heartbeat.attach hb ~port:(Layout.process_heartbeat_port i)
          machine;
        hb)
  in
  Ssx.Cpu.reset (Ssx.Machine.cpu machine);
  { machine; heartbeats; entry = region_offset; code_len; n }

let fault_system sched =
  { Ssx_faults.Fault.machine = sched.machine; watchdog = None }

let fault_space sched =
  let data_regions =
    List.init sched.n (fun i -> (Process.data_segment i lsl 4, 0x100))
  in
  { Ssx_faults.Fault.ram_regions = data_regions;
    registers = true;
    control_state = true;
    halt_faults = false;
    idtr_faults = false;
    watchdog_state = false }
