let rom_segment = 0xF000
let rom_base = 0xF0000
let rom_size = 0x10000
let idt_offset = 0x0000
let idt_entries = 64
let reset_offset = 0x0100
let recovery_offset = 0x0200
let exception_offset = 0x0800
let os_image_offset = 0x1000
let os_rom_segment = rom_segment + (os_image_offset lsr 4)
let sched_offset = 0x4000
let proc_images_offset = 0x5000
let proc_image_size = 0x1000
let proc_limits_offset = 0xF000
let os_segment = 0x1000
let os_image_size = 0x1000
let os_data_offset = 0x0800
let guest_stack_top = 0xFFFE
let checkpoint_segment = 0x3000
let sched_stack_segment = 0x0800
let sched_stack_top = 0x0100
let sched_data_segment = 0x0900
let process_index_offset = 0x0000
let process_table_offset = 0x0002
let process_entry_size = 26
let proc_segment i = 0x2000 + (i * 0x100)
let ip_mask = 0x0FF0
let instr_align = 16
let console_port = 0x10
let heartbeat_port = 0x12
let process_heartbeat_port i = 0x20 + i
let timer_vector = 0x20
let default_nmi_counter_max = 20_000
let default_watchdog_period = 50_000

let machine_config ?(nmi_counter_enabled = true) ?(hardwired_nmi = true) () =
  { Ssx.Cpu.nmi_counter_enabled;
    nmi_counter_max = default_nmi_counter_max;
    nmi_dispatch =
      (if hardwired_nmi then Ssx.Cpu.Hardwired_idt rom_base else Ssx.Cpu.Via_idtr);
    reset_vector = (rom_segment, reset_offset) }
