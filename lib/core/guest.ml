type t = {
  name : string;
  source : string;
  symbols : (string * int) list;
}

let work_total = 400
let task_divisor = 4

let heartbeat_kernel ?(work_units = 100) () =
  let source =
    "; Heartbeat kernel: the minimal guest operating system.\n\
     ; Increments a counter in its data area and reports it on the\n\
     ; heartbeat port; the legal executions are exactly the runs whose\n\
     ; heartbeat values increase by one.\n\
     TICK_COUNTER equ OS_DATA_OFFSET\n\
     org 0\n\
     start:\n\
    \    mov ax, OS_SEGMENT\n\
    \    mov ds, ax\n\
    \    mov ss, ax\n\
    \    mov sp, GUEST_STACK_TOP\n\
     main_loop:\n\
    \    mov ax, [TICK_COUNTER]\n\
    \    inc ax\n\
    \    mov [TICK_COUNTER], ax\n\
    \    out HEARTBEAT_PORT, ax\n\
    \    mov cx, WORK_UNITS\n\
     work:\n\
    \    loop work\n\
    \    jmp main_loop\n\
     org OS_DATA_OFFSET\n\
    \    dw 0\n"
  in
  { name = "heartbeat-kernel"; source; symbols = [ ("WORK_UNITS", work_units) ] }

let task_kernel ?(tasks = 4) () =
  if tasks <= 0 then invalid_arg "Guest.task_kernel: tasks must be positive";
  let table_words =
    String.concat ", "
      (List.concat_map (fun _ -> [ "1"; "DIVISOR" ]) (List.init tasks Fun.id))
  in
  let source =
    Printf.sprintf
      "; Task kernel: a guest with monitorable data structures (§4).\n\
       ; Data area: tick counter, round-robin task index, liveness word\n\
       ; and a task table of (increment, divisor) pairs.  The kernel is\n\
       ; deliberately naive: it only handles the exact wrap boundary, it\n\
       ; trusts the table, and it divides by a table field — so state\n\
       ; corruption produces wrong heartbeats, runaway indices or divide\n\
       ; faults unless a monitor repairs the state.\n\
       TICK_COUNTER equ OS_DATA_OFFSET\n\
       TASK_INDEX   equ OS_DATA_OFFSET+2\n\
       LIVENESS     equ OS_DATA_OFFSET+4\n\
       TASK_TABLE   equ OS_DATA_OFFSET+6\n\
       org 0\n\
       start:\n\
      \    mov ax, OS_SEGMENT\n\
      \    mov ds, ax\n\
      \    mov ss, ax\n\
      \    mov sp, GUEST_STACK_TOP\n\
       main_loop:\n\
      \    mov ax, [TASK_INDEX]\n\
      \    mov bx, ax\n\
      \    shl bx, 2\n\
      \    add bx, TASK_TABLE\n\
      \    mov cx, [bx]            ; task increment (golden value 1)\n\
      \    mov si, [bx+2]          ; task divisor (golden value DIVISOR)\n\
      \    inc ax\n\
      \    cmp ax, N_TASKS\n\
      \    jne no_wrap\n\
      \    mov ax, 0\n\
       no_wrap:\n\
      \    mov [TASK_INDEX], ax\n\
      \    mov ax, WORK_TOTAL\n\
      \    mov dx, 0\n\
      \    div si                  ; divide fault if the divisor is corrupted\n\
      \    mov di, ax\n\
       work:\n\
      \    dec di\n\
      \    jnz work\n\
      \    mov ax, [TICK_COUNTER]\n\
      \    add ax, cx\n\
      \    mov [TICK_COUNTER], ax\n\
      \    out HEARTBEAT_PORT, ax\n\
      \    mov [LIVENESS], ax\n\
      \    jmp main_loop\n\
       org OS_DATA_OFFSET\n\
      \    dw 0                    ; tick counter\n\
      \    dw 0                    ; task index\n\
      \    dw 0                    ; liveness\n\
      \    dw %s\n"
      table_words
  in
  { name = "task-kernel";
    source;
    symbols =
      [ ("N_TASKS", tasks); ("WORK_TOTAL", work_total); ("DIVISOR", task_divisor) ] }

let journal_slots = 16
let journal_mac = 0xA5A5

let journal_kernel ?(work_units = 60) () =
  let source =
    Printf.sprintf
      "; Journal kernel: a guest with a checksummed append-only journal.\n\
       ; Each iteration advances a sequence number, writes the entry\n\
       ; (seq, seq xor MAC) into a ring of %d slots and reports seq.\n\
       ; Like the task kernel it is deliberately naive: the write pointer\n\
       ; is only wrapped at the exact boundary, and entries are trusted.\n\
       SEQ       equ OS_DATA_OFFSET\n\
       WRITE_PTR equ OS_DATA_OFFSET+2\n\
       JOURNAL   equ OS_DATA_OFFSET+4\n\
       org 0\n\
       start:\n\
      \    mov ax, OS_SEGMENT\n\
      \    mov ds, ax\n\
      \    mov ss, ax\n\
      \    mov sp, GUEST_STACK_TOP\n\
       main_loop:\n\
      \    mov ax, [SEQ]\n\
      \    inc ax\n\
      \    mov [SEQ], ax\n\
       ; append (seq, seq xor MAC) at the write pointer\n\
      \    mov bx, [WRITE_PTR]\n\
      \    shl bx, 2\n\
      \    add bx, JOURNAL\n\
      \    mov [bx], ax\n\
      \    mov cx, ax\n\
      \    xor cx, JOURNAL_MAC\n\
      \    mov [bx+2], cx\n\
       ; naive ring advance (exact-boundary wrap only)\n\
      \    mov bx, [WRITE_PTR]\n\
      \    inc bx\n\
      \    cmp bx, JOURNAL_SLOTS\n\
      \    jne no_wrap\n\
      \    mov bx, 0\n\
       no_wrap:\n\
      \    mov [WRITE_PTR], bx\n\
      \    out HEARTBEAT_PORT, ax\n\
      \    mov cx, WORK_UNITS\n\
       work:\n\
      \    loop work\n\
      \    jmp main_loop\n\
       org OS_DATA_OFFSET\n\
      \    dw 0                    ; seq\n\
      \    dw 0                    ; write pointer\n"
      journal_slots
  in
  { name = "journal-kernel";
    source;
    symbols =
      [ ("WORK_UNITS", work_units); ("JOURNAL_SLOTS", journal_slots);
        ("JOURNAL_MAC", journal_mac) ] }

let timer_handler_offset = 0x400

let preemptive_kernel ?(work_units = 100) () =
  let source =
    "; Preemptive kernel: the heartbeat kernel plus a timer interrupt\n\
     ; handler.  The handler counts preemptions; the main loop runs with\n\
     ; interrupts enabled, so the timer slices it.\n\
     TICK_COUNTER  equ OS_DATA_OFFSET\n\
     PREEMPT_COUNT equ OS_DATA_OFFSET+2\n\
     org 0\n\
     start:\n\
    \    mov ax, OS_SEGMENT\n\
    \    mov ds, ax\n\
    \    mov ss, ax\n\
    \    mov sp, GUEST_STACK_TOP\n\
    \    sti\n\
     main_loop:\n\
    \    mov ax, [TICK_COUNTER]\n\
    \    inc ax\n\
    \    mov [TICK_COUNTER], ax\n\
    \    out HEARTBEAT_PORT, ax\n\
    \    mov cx, WORK_UNITS\n\
     work:\n\
    \    loop work\n\
    \    jmp main_loop\n\
     org TIMER_HANDLER\n\
     timer_handler:\n\
    \    push ax\n\
    \    push ds\n\
    \    mov ax, OS_SEGMENT\n\
    \    mov ds, ax\n\
    \    mov ax, [PREEMPT_COUNT]\n\
    \    inc ax\n\
    \    mov [PREEMPT_COUNT], ax\n\
    \    pop ds\n\
    \    pop ax\n\
    \    iret\n\
     org OS_DATA_OFFSET\n\
    \    dw 0                    ; tick counter\n\
    \    dw 0                    ; preemption counter\n"
  in
  { name = "preemptive-kernel";
    source;
    symbols =
      [ ("WORK_UNITS", work_units); ("TIMER_HANDLER", timer_handler_offset) ] }

let assemble guest =
  Ssx_asm.Assemble.assemble ~origin:0
    ~symbols:(Rom_builder.layout_symbols @ guest.symbols)
    guest.source

let image_bytes guest =
  let image = assemble guest in
  let bytes = image.Ssx_asm.Assemble.bytes in
  let len = String.length bytes in
  if len > Layout.os_image_size then
    invalid_arg
      (Printf.sprintf "Guest.image_bytes: %s is %d bytes, limit %d" guest.name
         len Layout.os_image_size);
  bytes ^ String.make (Layout.os_image_size - len) '\000'

let symbol guest name =
  Ssx_asm.Assemble.symbol (assemble guest) (String.lowercase_ascii name)

let data_addr offset = (Layout.os_segment lsl 4) + Layout.os_data_offset + offset
let counter_addr = data_addr 0
let preempt_count_addr = data_addr 2
let seq_addr = data_addr 0
let write_ptr_addr = data_addr 2
let journal_addr = data_addr 4
let task_index_addr = data_addr 2
let liveness_addr = data_addr 4
let task_table_addr = data_addr 6
