(** Common plumbing for assembled systems.

    Every design in the repository produces the same bundle: a machine,
    a watchdog, observation devices, the non-volatile store and the
    guest it runs.  The per-approach modules ({!Reinstall}, {!Monitor},
    {!Baselines}, …) build the ROM and choose the wiring; this module
    holds the shared construction and the observation helpers the
    experiments use. *)

type t = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t option;
  heartbeat : Ssx_devices.Heartbeat.t;
  console : Ssx_devices.Console.t;
  nvstore : Ssx_devices.Nvstore.t;
  guest : Guest.t;
}

val build :
  ?nmi_counter_enabled:bool ->
  ?hardwired_nmi:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  ?watchdog:[ `Nmi of int | `Reset of int | `None ] ->
  rom:Rom_builder.t ->
  guest:Guest.t ->
  unit ->
  t
(** Create the machine, install the ROM, wire watchdog/console/heartbeat
    and set the IDTR to the ROM IDT.  [`Nmi period] (the default wiring
    in the paper's designs) or [`Reset period] choose the watchdog pin.
    The CPU starts at the reset vector; nothing is pre-installed in RAM
    unless the caller does so.

    [obs] (default {!Ssos_obs.Obs.enabled}) attaches the observability
    layer — machine event counters plus watchdog/heartbeat/nvstore
    gauges, under names suffixed [{id=obs_label}] when a label is
    given.  When it resolves false nothing attaches and the machine
    runs the exact uninstrumented path. *)

val fault_system : t -> Ssx_faults.Fault.system

val default_fault_space : Ssx_faults.Fault.space
(** Faults over the guest RAM segment plus registers, control state and
    the watchdog — the space used by the comparison experiments. *)

val ram_only_fault_space : Ssx_faults.Fault.space
(** Only RAM bit flips/bytes in the guest segment — the soft-error model
    of the paper's Bochs experiment. *)

val install_guest : t -> unit
(** Copy the guest image directly into RAM at {!Layout.os_segment} (used
    by baselines whose ROM does not reinstall at boot). *)

val boot_guest_now : t -> unit
(** Point [cs:ip] at the installed guest's first instruction with a
    fresh stack — a host-forced warm start. *)

val run : t -> ticks:int -> unit
