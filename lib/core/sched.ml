type cs_check = Strict_eq | Paper_jb | No_check
type ip_mask = Windowed | Paper_mask | No_mask

let default_watchdog_period = 20_000

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* The [cs:si] segment overrides on the processLimits reads are a
   deviation from the printed figures: the paper keeps the limits table
   "in rom" but reads it with a plain [si], which on a real processor
   would read the data segment.  Executing from ROM, [cs] addresses the
   table correctly and is itself trustworthy at that point. *)
let cs_check_text = function
  | No_check -> "; cs validity check disabled (ablation)\n"
  | Paper_jb ->
    "; check cs validity (figure 5, lines 45-50, as printed: jb)\n\
    \    lea si, [PROCESS_LIMITS]         ; 45\n\
    \    add si, word [PROCESS_INDEX]     ; 46\n\
    \    add si, word [PROCESS_INDEX]     ; 47\n\
    \    cmp ax, [cs:si]                  ; 48\n\
    \    jb cs_ok                         ; 49\n\
    \    mov ax, [cs:si]                  ; 50 init cs\n\
     cs_ok:\n"
  | Strict_eq ->
    "; check cs validity (strict equality variant)\n\
    \    lea si, [PROCESS_LIMITS]         ; 45\n\
    \    add si, word [PROCESS_INDEX]     ; 46\n\
    \    add si, word [PROCESS_INDEX]     ; 47\n\
    \    cmp ax, [cs:si]                  ; 48\n\
    \    je cs_ok                         ; 49\n\
    \    mov ax, [cs:si]                  ; 50 init cs\n\
     cs_ok:\n"

let ip_mask_text = function
  | No_mask -> "; ip masking disabled (ablation)\n"
  | Paper_mask -> "    and ax, 0xFFF0               ; 53 validate ip (as printed)\n"
  | Windowed -> "    and ax, IP_MASK_VALUE        ; 53 validate ip (windowed)\n"

let refresh_text refresh =
  if not refresh then "; code refresh disabled\n"
  else
    "; refresh the next process's code image from rom (section 5.2 text:\n\
     ; the scheduler repeatedly reads the code of each process from a\n\
     ; secondary memory device)\n\
    \    mov dx, ax                       ; keep the next index\n\
    \    mov si, ax\n\
    \    shl si, 12                       ; index * PROC_IMAGE_SIZE\n\
    \    add si, PROC_IMAGES_OFFSET\n\
    \    lea bx, [PROCESS_LIMITS]\n\
    \    add bx, dx\n\
    \    add bx, dx\n\
    \    mov es, [cs:bx]                  ; destination segment from rom\n\
    \    mov ax, ROM_SEGMENT\n\
    \    mov ds, ax\n\
    \    mov di, 0\n\
    \    mov cx, PROC_IMAGE_SIZE\n\
    \    cld\n\
    \    rep movsb\n\
    \    mov ax, DATA_SEGMENT             ; restore ds and the index\n\
    \    mov ds, ax\n\
    \    mov ax, dx\n"

let source ~n ~cs_check ~ip_mask ~refresh =
  if not (is_power_of_two n) || n > 8 then
    invalid_arg "Sched.source: n must be a power of two between 1 and 8";
  String.concat ""
    [ "; Figures 2-5: the self-stabilizing scheduler\n";
      Printf.sprintf "N_MASK equ %d\n" (n - 1);
      Printf.sprintf "IP_MASK_VALUE equ 0x%04X\n" Layout.ip_mask;
      "scheduler:\n";
      "; figure 2: verify segment and stack registers; store ax, ds, bx\n";
      "    mov word [ss:STACK_TOP-2], ax    ; 1\n\
      \    mov ax, STACK_SEGMENT            ; 2\n\
      \    mov ss, ax                       ; 3\n\
      \    mov sp, STACK_TOP                ; 4\n\
      \    mov word [ss:STACK_TOP-4], ds    ; 5\n\
      \    mov word [ss:STACK_TOP-6], bx    ; 6\n\
      \    mov ax, DATA_SEGMENT             ; 7\n\
      \    mov ds, ax                       ; 8\n";
      "; figure 3: save the interrupted process's state\n";
      "    mov word ax, [PROCESS_INDEX]     ; 9\n\
      \    and ax, N_MASK                   ; 10\n\
      \    lea bx, [PROCESS_TABLE]          ; 11\n\
      \    mov ah, PROCESS_ENTRY_SIZE       ; 12\n\
      \    mul ah                           ; 13\n\
      \    add bx, ax                       ; 14 bx points to current state\n\
      \    mov ax, [ss:STACK_TOP+4]         ; 15 save flag\n\
      \    mov word [bx], ax                ; 16\n\
      \    mov ax, [ss:STACK_TOP+2]         ; 17 save cs\n\
      \    mov word [bx+2], ax              ; 18\n\
      \    mov ax, [ss:STACK_TOP]           ; 19 save ip\n\
      \    mov word [bx+4], ax              ; 20\n\
      \    mov ax, [ss:STACK_TOP-2]         ; 21 save ax\n\
      \    mov word [bx+6], ax              ; 22\n\
      \    mov ax, [ss:STACK_TOP-4]         ; 23 save ds\n\
      \    mov word [bx+8], ax              ; 24\n\
      \    mov ax, [ss:STACK_TOP-6]         ; 25 save bx\n\
      \    mov word [bx+10], ax             ; 26\n\
      \    mov word [bx+12], cx             ; 27 save cx\n\
      \    mov word [bx+14], dx             ; 28 save dx\n\
      \    mov word [bx+16], si             ; 29 save si\n\
      \    mov word [bx+18], di             ; 30 save di\n\
      \    mov word [bx+20], es             ; 31 save es\n\
      \    mov word [bx+22], fs             ; 32 save fs\n\
      \    mov word [bx+24], gs             ; 33 save gs\n";
      "; figure 4: increment process index\n";
      "    mov word ax, [PROCESS_INDEX]     ; 34\n\
      \    inc ax                           ; 35\n\
      \    and ax, N_MASK                   ; 36\n\
      \    mov word [PROCESS_INDEX], ax     ; 37\n";
      refresh_text refresh;
      "; figure 5: load the next process's state\n";
      "    lea bx, [PROCESS_TABLE]          ; 38\n\
      \    mov ah, PROCESS_ENTRY_SIZE       ; 39\n\
      \    mul ah                           ; 40\n\
      \    add bx, ax                       ; 41 bx points to next state\n\
      \    mov ax, [bx]                     ; 42 restore flag\n\
      \    mov word [ss:STACK_TOP+4], ax    ; 43\n\
      \    mov ax, [bx+2]                   ; 44 restore cs\n";
      cs_check_text cs_check;
      "    mov word [ss:STACK_TOP+2], ax    ; 51\n\
      \    mov ax, [bx+4]                   ; 52 restore ip\n";
      ip_mask_text ip_mask;
      "    mov word [ss:STACK_TOP], ax      ; 54\n\
      \    mov cx, word [bx+12]             ; 55 restore cx\n\
      \    mov dx, word [bx+14]             ; 56 restore dx\n\
      \    mov si, word [bx+16]             ; 57 restore si\n\
      \    mov di, word [bx+18]             ; 58 restore di\n\
      \    mov es, word [bx+20]             ; 59 restore es\n\
      \    mov fs, word [bx+22]             ; 60 restore fs\n\
      \    mov gs, word [bx+24]             ; 61 restore gs\n\
      \    mov ax, word [bx+8]              ; 62 restore ds (above stack)\n\
      \    mov word [ss:STACK_TOP-2], ax    ; 63\n\
      \    mov ax, word [bx+6]              ; 64 restore ax\n\
      \    mov bx, word [bx+10]             ; 65 restore bx\n\
      \    mov ds, word [ss:STACK_TOP-2]    ; 66 finally ds\n\
       ; jump to next process\n\
      \    iret                             ; 67\n" ]

let figures_2_to_5_source =
  source ~n:4 ~cs_check:Paper_jb ~ip_mask:Paper_mask ~refresh:false

type t = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t;
  heartbeats : Ssx_devices.Heartbeat.t array;
  processes : Process.t array;
  n : int;
}

let process_index_addr =
  (Layout.sched_data_segment lsl 4) + Layout.process_index_offset

let process_record_addr i =
  (Layout.sched_data_segment lsl 4)
  + Layout.process_table_offset
  + (i * Layout.process_entry_size)

let build_rom ~n ~cs_check ~ip_mask ~refresh ~images =
  let rom = Rom_builder.create () in
  let reset_stub = Printf.sprintf "    jmp 0x%04X\n" Layout.sched_offset in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset reset_stub);
  (* Exceptions re-enter the scheduler, which saves the garbage frame
     into the current record and moves on. *)
  let exception_stub = Printf.sprintf "    jmp 0x%04X\n" Layout.sched_offset in
  ignore (Rom_builder.add_asm rom ~offset:Layout.exception_offset exception_stub);
  ignore
    (Rom_builder.add_asm rom ~offset:Layout.sched_offset
       (source ~n ~cs_check ~ip_mask ~refresh));
  Array.iteri
    (fun i image ->
      Rom_builder.add_blob rom
        ~offset:(Layout.proc_images_offset + (i * Layout.proc_image_size))
        image)
    images;
  (* processLimits: the fixed cs of each process (figure 5, lines 45-50). *)
  let limits =
    String.init (2 * n) (fun byte ->
        let seg = Layout.proc_segment (byte / 2) in
        Char.chr
          (if byte mod 2 = 0 then Ssx.Word.low_byte seg else Ssx.Word.high_byte seg))
  in
  Rom_builder.add_blob rom ~offset:Layout.proc_limits_offset limits;
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment
    ~off:Layout.exception_offset;
  Rom_builder.set_vector rom Ssx.Cpu.vec_nmi ~seg:Layout.rom_segment
    ~off:Layout.sched_offset;
  rom

let build ?(n = 4) ?(cs_check = Strict_eq) ?(ip_mask = Windowed)
    ?(refresh = true) ?(watchdog_period = default_watchdog_period)
    ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?(obs_label = "")
    ?processes () =
  let obs =
    match obs with Some v -> v | None -> Ssos_obs.Obs.enabled ()
  in
  let processes =
    match processes with
    | Some processes ->
      if Array.length processes <> n then
        invalid_arg "Sched.build: processes array must have length n";
      processes
    | None -> Array.init n (fun index -> Process.counter_process ~index)
  in
  let images = Array.map Process.assemble_image processes in
  let rom = build_rom ~n ~cs_check ~ip_mask ~refresh ~images in
  let config = Layout.machine_config ?nmi_counter_enabled ?hardwired_nmi () in
  let machine = Ssx.Machine.create ~config ?decode_cache ?jit () in
  Rom_builder.install rom (Ssx.Machine.memory machine);
  (Ssx.Machine.cpu machine).Ssx.Cpu.idtr <- Layout.rom_base + Layout.idt_offset;
  (* BIOS-style initial installation of the process code (the refresh
     path keeps it alive thereafter). *)
  Array.iteri
    (fun i image ->
      Ssx.Memory.load_image (Ssx.Machine.memory machine)
        ~base:(Layout.proc_segment i lsl 4)
        image)
    images;
  let watchdog =
    Ssx_devices.Watchdog.create ~period:watchdog_period
      ~target:Ssx_devices.Watchdog.Nmi_pin
  in
  Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device watchdog);
  Ssx.Machine.add_resettable machine (Ssx_devices.Watchdog.resettable watchdog);
  let heartbeats =
    Array.init n (fun i ->
        let hb = Ssx_devices.Heartbeat.create () in
        Ssx_devices.Heartbeat.attach hb ~port:(Layout.process_heartbeat_port i)
          machine;
        hb)
  in
  if obs then begin
    ignore (Ssos_obs.Machine_obs.attach ~label:obs_label machine);
    Ssos_obs.Device_obs.watchdog ~label:obs_label watchdog;
    Array.iteri
      (fun i hb ->
        let label =
          if obs_label = "" then string_of_int i
          else Printf.sprintf "%s/%d" obs_label i
        in
        Ssos_obs.Device_obs.heartbeat ~label hb)
      heartbeats
  end;
  Ssx.Cpu.reset (Ssx.Machine.cpu machine);
  { machine; watchdog; heartbeats; processes; n }

let initialize_records sched =
  let mem = Ssx.Machine.memory sched.machine in
  for i = 0 to sched.n - 1 do
    let record = process_record_addr i in
    Ssx.Memory.write_word mem (record + 2) (Layout.proc_segment i);
    Ssx.Memory.write_word mem (record + 4) 0
  done;
  (* Also stage a valid interrupt frame at the scheduler stack top: the
     boot path enters the scheduler without an NMI push, and what it
     finds there is saved into process 0's record. *)
  let frame = Ssx.Addr.physical ~seg:Layout.sched_stack_segment ~off:Layout.sched_stack_top in
  Ssx.Memory.write_word mem frame 0;
  Ssx.Memory.write_word mem (Ssx.Addr.mask (frame + 2)) (Layout.proc_segment 0);
  Ssx.Memory.write_word mem (Ssx.Addr.mask (frame + 4)) 0

let fault_system sched =
  { Ssx_faults.Fault.machine = sched.machine; watchdog = Some sched.watchdog }

let fault_space sched =
  let code_regions =
    List.init sched.n (fun i -> (Layout.proc_segment i lsl 4, Layout.proc_image_size))
  in
  let data_regions =
    List.init sched.n (fun i -> (Process.data_segment i lsl 4, 0x100))
  in
  let sched_regions =
    [ ((Layout.sched_stack_segment lsl 4), 0x200);
      ((Layout.sched_data_segment lsl 4),
       Layout.process_table_offset + (sched.n * Layout.process_entry_size)) ]
  in
  { Ssx_faults.Fault.ram_regions = code_regions @ data_regions @ sched_regions;
    registers = true;
    control_state = true;
    halt_faults = true;
    idtr_faults = true;
    watchdog_state = true }
