(** Guest operating systems.

    The recovery layers of §3 and §4 treat the operating system as a
    black box; these are the black boxes — small kernels written in
    SSX16 assembly whose observable behaviour (a heartbeat stream) has a
    precise legal-execution specification, so that stabilization can be
    judged from outside, exactly as the paper defines it.

    The {e heartbeat kernel} is the minimal guest: it increments a
    counter in its data area and reports it.  The {e task kernel} is a
    richer guest with the data structures §4's monitor guards: a task
    table, a round-robin index, a divisor (so corruption can raise
    divide faults) and a liveness word (used by the checkpoint
    baseline's progress check). *)

type t = {
  name : string;
  source : string;  (** assembly, origin 0, for {!Layout.os_segment} *)
  symbols : (string * int) list;  (** extra constants the source needs *)
}

val heartbeat_kernel : ?work_units:int -> unit -> t
(** Beats every [work_units]+constant ticks (default 100). *)

val task_kernel : ?tasks:int -> unit -> t
(** Round-robin task-table kernel (default 4 tasks). *)

val journal_kernel : ?work_units:int -> unit -> t
(** A guest with a checksummed append-only journal ring: each iteration
    writes [(seq, seq xor journal_mac)] into one of {!journal_slots}
    slots, advances a naive (exact-boundary) write pointer and reports
    the sequence number — a second, structurally different guest for
    the §4 monitor (see {!Monitor.build_custom} and
    {!journal_predicates}). *)

val journal_slots : int
val journal_mac : int
val seq_addr : int
val write_ptr_addr : int
val journal_addr : int
(** Physical addresses of the journal kernel's data structures. *)

val preemptive_kernel : ?work_units:int -> unit -> t
(** A guest that uses the maskable timer interrupt: the main loop beats
    like {!heartbeat_kernel} with interrupts enabled, and a handler at
    {!timer_handler_offset} counts preemptions in the data area.  Wire a
    {!Ssx_devices.Timer} and point IDT vector {!Layout.timer_vector} at
    the handler (see {!Reinstall.build} with [with_timer]). *)

val timer_handler_offset : int
(** Offset of the preemptive kernel's timer handler within the image. *)

val preempt_count_addr : int
(** Physical address of the preemptive kernel's preemption counter. *)

val work_total : int
(** Dividend of the task kernel's work computation. *)

val task_divisor : int
(** Golden divisor value in every task-table entry. *)

val assemble : t -> Ssx_asm.Assemble.image

val image_bytes : t -> string
(** Assembled image zero-padded to {!Layout.os_image_size}. *)

val symbol : t -> string -> int
(** Value of a label/constant in the assembled guest. *)

(** Guest data-structure addresses (physical), derived from the image. *)

val counter_addr : int
val task_index_addr : int
val liveness_addr : int
val task_table_addr : int
