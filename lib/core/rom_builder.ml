type t = {
  bytes : Bytes.t;
  mutable used : (int * int) list;  (* (offset, length) of placed blobs *)
}

let create () = { bytes = Bytes.make Layout.rom_size '\000'; used = [] }

let overlaps (a, alen) (b, blen) = a < b + blen && b < a + alen

let add_blob rom ~offset blob =
  let len = String.length blob in
  if offset < 0 || offset + len > Layout.rom_size then
    invalid_arg
      (Printf.sprintf "Rom_builder.add_blob: [0x%X, 0x%X) outside ROM" offset
         (offset + len));
  List.iter
    (fun placed ->
      if overlaps (offset, len) placed then
        invalid_arg
          (Printf.sprintf "Rom_builder.add_blob: blob at 0x%X overlaps 0x%X"
             offset (fst placed)))
    rom.used;
  Bytes.blit_string blob 0 rom.bytes offset len;
  rom.used <- (offset, len) :: rom.used

let layout_symbols =
  [ ("OS_ROM_SEGMENT", Layout.os_rom_segment);
    ("OS_SEGMENT", Layout.os_segment);
    ("IMAGE_SIZE", Layout.os_image_size);
    ("OS_DATA_OFFSET", Layout.os_data_offset);
    ("GUEST_STACK_TOP", Layout.guest_stack_top);
    ("ROM_SEGMENT", Layout.rom_segment);
    ("OS_IMAGE_OFFSET", Layout.os_image_offset);
    ("CHECKPOINT_SEGMENT", Layout.checkpoint_segment);
    ("STACK_SEGMENT", Layout.sched_stack_segment);
    ("STACK_TOP", Layout.sched_stack_top);
    ("DATA_SEGMENT", Layout.sched_data_segment);
    ("PROCESS_INDEX", Layout.process_index_offset);
    ("PROCESS_TABLE", Layout.process_table_offset);
    ("PROCESS_ENTRY_SIZE", Layout.process_entry_size);
    ("PROC_IMAGES_OFFSET", Layout.proc_images_offset);
    ("PROC_IMAGE_SIZE", Layout.proc_image_size);
    ("PROCESS_LIMITS", Layout.proc_limits_offset);
    ("IP_MASK", Layout.ip_mask);
    ("CONSOLE_PORT", Layout.console_port);
    ("HEARTBEAT_PORT", Layout.heartbeat_port) ]

let add_asm rom ~offset ?(symbols = []) source =
  let image =
    Ssx_asm.Assemble.assemble ~origin:offset
      ~symbols:(layout_symbols @ symbols) source
  in
  add_blob rom ~offset image.Ssx_asm.Assemble.bytes;
  image

let set_vector rom vector ~seg ~off =
  if vector < 0 || vector >= Layout.idt_entries then
    invalid_arg "Rom_builder.set_vector: vector out of range";
  let entry = Layout.idt_offset + (4 * vector) in
  Bytes.set rom.bytes entry (Char.chr (Ssx.Word.low_byte off));
  Bytes.set rom.bytes (entry + 1) (Char.chr (Ssx.Word.high_byte off));
  Bytes.set rom.bytes (entry + 2) (Char.chr (Ssx.Word.low_byte seg));
  Bytes.set rom.bytes (entry + 3) (Char.chr (Ssx.Word.high_byte seg))

let set_all_vectors rom ~seg ~off =
  for vector = 0 to Layout.idt_entries - 1 do
    set_vector rom vector ~seg ~off
  done

let image rom = Bytes.to_string rom.bytes

let install rom mem =
  Ssx.Memory.load_image mem ~base:Layout.rom_base (image rom);
  Ssx.Memory.protect mem { Ssx.Memory.base = Layout.rom_base; size = Layout.rom_size }
