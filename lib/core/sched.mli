(** §5.2 — The self-stabilizing scheduler (Figures 2–5).

    The scheduler is the NMI handler: on every watchdog pulse it
    (Figure 2) re-establishes the fixed stack and data segments while
    parking ax/bx/ds near the stack top, (Figure 3) saves the
    interrupted process's registers into its record in the process
    table, (Figure 4) advances the process index round-robin modulo N,
    optionally refreshes the next process's code image from ROM (the
    paper's "the code of each process will be repeatedly read by the
    scheduler from a secondary memory device"), and (Figure 5) loads the
    next process's record, {e validating} the loaded [cs] against the
    ROM [processLimits] table and masking the loaded [ip] so that it is
    an instruction-start inside the process's window, before switching
    with [iret].

    Knobs reproduce the paper's design choices and expose ablations:

    - [cs_check]: [Strict_eq] (reset [cs] unless it equals the table
      entry), [Paper_jb] (Figure 5's published [jb] comparison, which
      accepts any [cs] {e below} the entry — measurably weaker, see
      EXPERIMENTS.md), or [No_check].
    - [ip_mask]: [Windowed] (confine to the 4 KiB window, 16-aligned),
      [Paper_mask] (the published 0xFFF0: 16-aligned only), or
      [No_mask]. *)

type cs_check = Strict_eq | Paper_jb | No_check
type ip_mask = Windowed | Paper_mask | No_mask

val source :
  n:int -> cs_check:cs_check -> ip_mask:ip_mask -> refresh:bool -> string
(** The scheduler's assembly, annotated with the paper's line numbers.
    [n] must be a power of two between 1 and 8. *)

val figures_2_to_5_source : string
(** The published variant for N = 4: [Paper_jb], [Paper_mask], no
    refresh — Figures 2–5 as printed. *)

type t = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t;
  heartbeats : Ssx_devices.Heartbeat.t array;  (** one per process *)
  processes : Process.t array;
  n : int;
}

val build :
  ?n:int ->
  ?cs_check:cs_check ->
  ?ip_mask:ip_mask ->
  ?refresh:bool ->
  ?watchdog_period:int ->
  ?nmi_counter_enabled:bool ->
  ?hardwired_nmi:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  ?processes:Process.t array ->
  unit ->
  t
(** Assemble the tiny OS: scheduler in ROM, N golden process images in
    ROM, their working copies pre-installed in RAM, the processLimits
    table, watchdog on the NMI pin.  Defaults: n = 4, [Strict_eq],
    [Windowed], refresh on, period 20000, counter processes (override
    with [processes], which must have length [n]).  All soft state
    (process table, index) starts zeroed and the scheduler bootstraps
    from it — no initialisation step exists, as self-stabilization
    demands.

    [obs] (default {!Ssos_obs.Obs.enabled}) attaches machine event
    counters, the watchdog gauges and one heartbeat gauge per process
    (labelled by process index, prefixed with [obs_label] when
    given). *)

val initialize_records : t -> unit
(** Write each process's fixed [cs] and a zero [ip] into its record.
    The default (strict) scheduler bootstraps from all-zero records on
    its own; the published [Paper_jb] comparison accepts any [cs] below
    the table entry — including the zeroed record's 0 — and therefore
    cannot bootstrap without this initialisation (one of the findings
    recorded in EXPERIMENTS.md). *)

val fault_system : t -> Ssx_faults.Fault.system

val fault_space : t -> Ssx_faults.Fault.space
(** Process code and data segments, scheduler stack and data, registers
    and control state. *)

val process_record_addr : int -> int
(** Physical address of process [i]'s record in the process table. *)

val process_index_addr : int
(** Physical address of the scheduler's [processIndex] variable. *)

val default_watchdog_period : int
