(** §4 — Reinstall executable and monitor state.

    The fully-self-stabilizing refinement of §3: the NMI handler
    (1) refreshes only the {e code} portion of the operating system from
    ROM, leaving the data structures alive; (2) validates that the
    interrupted address lies within the operating-system code and
    otherwise restarts from the first command (through the Figure 1
    procedure); and (3) runs consistency checks over the operating
    system's state, taking repair actions graduated to the violation.

    The code refresh and return-address validation are ROM-resident
    assembly (see {!monitor_source}); the data-consistency checks are
    host-level predicates evaluated at each NMI, modelling the
    "monitor/restarter … various consistency checks" the paper
    describes in prose. *)

type detection = {
  tick : int;
  violated : string list;  (** names of predicates that failed *)
}

type t = {
  system : System.t;
  predicates : Ssx_stab.Predicate.t list;
  mutable detections : detection list;  (** newest first *)
  mutable checks : int;  (** NMI-time predicate evaluations so far *)
}

val monitor_source : string
(** The NMI handler: code-only refresh + return-frame validation. *)

val guest_predicates : tasks:int -> Ssx_stab.Predicate.t list
(** Consistency predicates for the {!Guest.task_kernel} state: the task
    index is in range, the task table holds its golden entries, and the
    stack registers are sane. *)

val journal_predicates : unit -> Ssx_stab.Predicate.t list
(** Consistency predicates for the {!Guest.journal_kernel} state: the
    write pointer is in range and every written journal entry carries a
    valid MAC (repair recomputes it). *)

val build :
  ?nmi_counter_enabled:bool ->
  ?hardwired_nmi:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  ?watchdog_period:int ->
  ?tasks:int ->
  ?predicates_enabled:bool ->
  unit ->
  t
(** Full §4 system over the task kernel.  [predicates_enabled:false]
    keeps only the assembly-level refresh/validation (an ablation). *)

val build_custom :
  ?nmi_counter_enabled:bool ->
  ?hardwired_nmi:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  ?watchdog_period:int ->
  ?code_integrity:bool ->
  guest:Guest.t ->
  predicates:Ssx_stab.Predicate.t list ->
  unit ->
  t
(** The §4 recovery layer around {e any} guest: ROM refresh + frame
    validation + your consistency predicates (checked at every NMI and
    exception entry).  [code_integrity] (default true) adds the
    detection-only golden-image predicate. *)

val detections : t -> detection list
(** Oldest first. *)

val spec :
  ?max_gap:int -> ?window:int -> unit -> Ssx_stab.Convergence.heartbeat_spec
(** Strict heartbeat legality (increments of one). *)
