type t = {
  machine : Ssx.Machine.t;
  watchdog : Ssx_devices.Watchdog.t option;
  heartbeat : Ssx_devices.Heartbeat.t;
  console : Ssx_devices.Console.t;
  nvstore : Ssx_devices.Nvstore.t;
  guest : Guest.t;
}

let build ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?(obs_label = "") ?(watchdog = `Nmi Layout.default_watchdog_period) ~rom
    ~guest () =
  let obs =
    match obs with Some v -> v | None -> Ssos_obs.Obs.enabled ()
  in
  let config = Layout.machine_config ?nmi_counter_enabled ?hardwired_nmi () in
  let machine = Ssx.Machine.create ~config ?decode_cache ?jit () in
  Rom_builder.install rom (Ssx.Machine.memory machine);
  (Ssx.Machine.cpu machine).Ssx.Cpu.idtr <- Layout.rom_base + Layout.idt_offset;
  let watchdog =
    match watchdog with
    | `None -> None
    | `Nmi period ->
      let wd = Ssx_devices.Watchdog.create ~period ~target:Ssx_devices.Watchdog.Nmi_pin in
      Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
      Ssx.Machine.add_resettable machine (Ssx_devices.Watchdog.resettable wd);
      Some wd
    | `Reset period ->
      let wd = Ssx_devices.Watchdog.create ~period ~target:Ssx_devices.Watchdog.Reset_pin in
      Ssx.Machine.add_device machine (Ssx_devices.Watchdog.device wd);
      Ssx.Machine.add_resettable machine (Ssx_devices.Watchdog.resettable wd);
      Some wd
  in
  let heartbeat = Ssx_devices.Heartbeat.create () in
  Ssx_devices.Heartbeat.attach heartbeat ~port:Layout.heartbeat_port machine;
  let console = Ssx_devices.Console.create () in
  Ssx_devices.Console.attach console ~port:Layout.console_port machine;
  let nvstore = Ssx_devices.Nvstore.create () in
  Ssx_devices.Nvstore.add nvstore ~name:"os"
    ~base:((Layout.os_segment lsl 4))
    (Guest.image_bytes guest);
  (* Instrumentation attaches only when observability resolves on, so a
     plain build keeps the exact uninstrumented execution path. *)
  if obs then begin
    ignore (Ssos_obs.Machine_obs.attach ~label:obs_label machine);
    Option.iter (Ssos_obs.Device_obs.watchdog ~label:obs_label) watchdog;
    Ssos_obs.Device_obs.heartbeat ~label:obs_label heartbeat;
    Ssos_obs.Device_obs.nvstore ~label:obs_label nvstore
  end;
  Ssx.Cpu.reset (Ssx.Machine.cpu machine);
  { machine; watchdog; heartbeat; console; nvstore; guest }

let fault_system system =
  { Ssx_faults.Fault.machine = system.machine; watchdog = system.watchdog }

let guest_ram_region = ((Layout.os_segment lsl 4), Layout.os_image_size)

let default_fault_space =
  { Ssx_faults.Fault.ram_regions = [ guest_ram_region ];
    registers = true;
    control_state = true;
    halt_faults = true;
    idtr_faults = true;
    watchdog_state = true }

let ram_only_fault_space =
  { Ssx_faults.Fault.ram_regions = [ guest_ram_region ];
    registers = false;
    control_state = false;
    halt_faults = false;
    idtr_faults = false;
    watchdog_state = false }

let install_guest system =
  Ssx_devices.Nvstore.install system.nvstore (Ssx.Machine.memory system.machine) "os"

let boot_guest_now system =
  let regs = (Ssx.Machine.cpu system.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- Layout.os_segment;
  regs.Ssx.Registers.ip <- 0;
  regs.Ssx.Registers.ss <- Layout.os_segment;
  regs.Ssx.Registers.sp <- Layout.guest_stack_top;
  regs.Ssx.Registers.psw <- Ssx.Flags.initial;
  (Ssx.Machine.cpu system.machine).Ssx.Cpu.halted <- false

let run system ~ticks = Ssx.Machine.run system.machine ~ticks
