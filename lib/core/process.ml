type t = {
  name : string;
  source : string;
  symbols : (string * int) list;
}

let data_segment i = 0x4000 + (i * 0x100)

let body_text =
  "    mov ax, DATA_SEG\n\
  \    mov ds, ax\n\
  \    mov ax, [0]\n\
  \    inc ax\n\
  \    mov [0], ax\n\
  \    out MY_PORT, ax\n"

let counter_symbols index =
  [ ("DATA_SEG", data_segment index);
    ("MY_PORT", Layout.process_heartbeat_port index) ]

(* Replay-safe layout for the §5.2 scheduler.

   Figure 5 masks the restored ip to a 16-byte boundary, so a resumed
   process restarts from the beginning of the block it was interrupted
   in, replaying up to a block of instructions.  A process is exact
   under this scheme iff every block is replay-idempotent: blocks either
   only derive state from memory and constants, or their externally
   visible effect (the store + port write) is the final bytes of the
   block, so the post-effect ip is already aligned and never rolls back
   over it.  The nop padding below enforces exactly that. *)
let counter_process ~index =
  { name = Printf.sprintf "counter-%d" index;
    source =
      "; Self-stabilizing counter process: every loop pass rebuilds its\n\
       ; whole working state from constants, so any corrupted register\n\
       ; or data value is legal-after-one-pass.  Block layout is\n\
       ; replay-safe under the scheduler's ip mask (see Process notes).\n\
       org 0\n\
       start:\n\
       ; block 0: pure derivation - replaying it is idempotent\n\
      \    mov ax, DATA_SEG\n\
      \    mov ds, ax\n\
      \    mov ax, [0]\n\
      \    inc ax\n\
      \    times 3 nop\n\
       ; block 1: effects; the port write ends the block exactly\n\
      \    mov [0], ax\n\
      \    times 9 nop\n\
      \    out MY_PORT, ax\n\
       ; block 2: loop closure\n\
      \    jmp start\n";
    symbols = counter_symbols index }

let counter_body ~index =
  { name = Printf.sprintf "counter-body-%d" index;
    source = body_text;
    symbols = counter_symbols index }

let assemble_plain process =
  Ssx_asm.Assemble.assemble ~origin:0
    ~symbols:(Rom_builder.layout_symbols @ process.symbols)
    process.source

(* 16-byte filler block: a jump to the entry followed by nops, so that
   every aligned offset in the tail leads straight back to the start. *)
let filler_block =
  let jmp = Ssx.Codec.encode (Ssx.Instruction.Jmp 0) in
  let nop = List.hd (Ssx.Codec.encode Ssx.Instruction.Nop) in
  assert (List.length jmp <= Layout.instr_align);
  String.init Layout.instr_align (fun i ->
      Char.chr (match List.nth_opt jmp i with Some b -> b | None -> nop))

let assemble_image process =
  let image =
    Ssx_asm.Assemble.assemble ~origin:0 ~instr_align:Layout.instr_align
      ~symbols:(Rom_builder.layout_symbols @ process.symbols)
      process.source
  in
  let code = image.Ssx_asm.Assemble.bytes in
  let len = String.length code in
  if len > Layout.proc_image_size then
    invalid_arg
      (Printf.sprintf "Process.assemble_image: %s is %d bytes, limit %d"
         process.name len Layout.proc_image_size);
  (* Pad the code to an alignment boundary with nops, then fill the rest
     of the window with jump-to-entry blocks. *)
  let buffer = Buffer.create Layout.proc_image_size in
  Buffer.add_string buffer code;
  let nop = Char.chr (List.hd (Ssx.Codec.encode Ssx.Instruction.Nop)) in
  while Buffer.length buffer mod Layout.instr_align <> 0 do
    Buffer.add_char buffer nop
  done;
  while Buffer.length buffer < Layout.proc_image_size do
    Buffer.add_string buffer filler_block
  done;
  Buffer.contents buffer

type model = Primitive | Scheduled

let forbidden_name instr =
  match instr with
  | Ssx.Instruction.Push_r16 _ | Ssx.Instruction.Push_imm _
  | Ssx.Instruction.Push_sreg _ | Ssx.Instruction.Pop_r16 _
  | Ssx.Instruction.Pop_sreg _ | Ssx.Instruction.Pushf | Ssx.Instruction.Popf ->
    Some "stack operation"
  | Ssx.Instruction.Call _ | Ssx.Instruction.Ret -> Some "call/ret"
  | Ssx.Instruction.Iret -> Some "iret"
  | Ssx.Instruction.Int _ -> Some "software interrupt"
  | Ssx.Instruction.Hlt -> Some "halt"
  | Ssx.Instruction.Sti | Ssx.Instruction.Cli -> Some "interrupt-flag change"
  | Ssx.Instruction.Jmp_far _ -> Some "far jump"
  | Ssx.Instruction.Div_r8 _ | Ssx.Instruction.Div_r16 _ ->
    Some "division (may raise an exception)"
  | Ssx.Instruction.Invalid _ -> Some "invalid encoding"
  | _ -> None

let validate ~model ~code_len image =
  let code = String.sub image 0 (min code_len (String.length image)) in
  let entries = Ssx_asm.Disasm.disassemble code in
  let problems = ref [] in
  let problem offset fmt =
    Format.kasprintf
      (fun msg -> problems := Printf.sprintf "0x%04X: %s" offset msg :: !problems)
      fmt
  in
  List.iter
    (fun entry ->
      let offset = entry.Ssx_asm.Disasm.offset in
      let instr = entry.Ssx_asm.Disasm.instruction in
      (match forbidden_name instr with
      | Some what -> problem offset "%s (%a)" what Ssx.Instruction.pp instr
      | None -> ());
      let check_target target =
        if target >= Layout.proc_image_size then
          problem offset "branch target 0x%04X outside the process window" target;
        match model with
        | Primitive ->
          if target <= offset then
            problem offset "backward branch to 0x%04X (loops are not allowed)"
              target
        | Scheduled -> ()
      in
      match instr with
      | Ssx.Instruction.Jmp target | Ssx.Instruction.Jcc (_, target)
      | Ssx.Instruction.Loop target ->
        check_target target
      | _ -> ())
    entries;
  match List.rev !problems with [] -> Ok () | problems -> Error problems
