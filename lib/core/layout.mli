(** The system memory map shared by every design in the repository.

    Mirrors a PC-style map: RAM from address 0, a 64 KiB ROM at the top
    of the 1 MiB space holding the IDT, the recovery procedures and the
    golden images (§2's "read only memory for the code of the program
    and the interrupt table"). *)

(** {1 ROM} *)

val rom_segment : int
(** 0xF000 — the ROM occupies physical 0xF0000–0xFFFFF. *)

val rom_base : int
(** Physical base of the ROM (0xF0000). *)

val rom_size : int
(** 64 KiB. *)

val idt_offset : int
(** ROM offset of the interrupt descriptor table (entry = 4 bytes:
    offset, segment; 32 entries). *)

val idt_entries : int
val reset_offset : int
(** ROM offset of the reset stub — the paper's BIOS-like procedure. *)

val recovery_offset : int
(** ROM offset of the NMI recovery handler (per-approach). *)

val exception_offset : int
(** ROM offset of the default exception handler. *)

val os_image_offset : int
(** ROM offset of the golden operating-system image. *)

val os_rom_segment : int
(** Segment addressing the golden OS image ([OS_ROM_SEGMENT] in
    Figure 1). *)

val sched_offset : int
(** ROM offset of the §5.2 scheduler code. *)

val proc_images_offset : int
(** ROM offset of the first golden process image (§5). *)

val proc_image_size : int
(** Bytes reserved per process image (4 KiB). *)

val proc_limits_offset : int
(** ROM offset of the [processLimits] table (Figure 5). *)

(** {1 RAM} *)

val os_segment : int
(** 0x1000 — where the OS is (re)installed ([OS_SEGMENT] in Figure 1). *)

val os_image_size : int
(** Bytes copied by the reinstall procedure ([IMAGE_SIZE], 4 KiB). *)

val os_data_offset : int
(** Offset of the data portion within the OS image (code below). *)

val guest_stack_top : int
(** Initial [sp] for guests (top of the OS segment). *)

val checkpoint_segment : int
(** RAM segment used by the checkpoint/rollback baseline. *)

val sched_stack_segment : int
(** [STACK_SEGMENT] of Figures 2–5. *)

val sched_stack_top : int
(** [STACK_TOP] of Figures 2–5. *)

val sched_data_segment : int
(** [DATA_SEGMENT] of Figures 2–5 ([processIndex], [processTable]). *)

val process_index_offset : int
val process_table_offset : int
val process_entry_size : int
(** 26 bytes: flag cs ip ax ds bx cx dx si di es fs gs. *)

val proc_segment : int -> int
(** RAM code segment of process [i] (4 KiB apart). *)

val ip_mask : int
(** [IP_MASK] of Figure 5: confines [ip] to the 4 KiB process window and
    aligns it to 16 bytes. *)

val instr_align : int
(** Instruction alignment unit for process code (16). *)

(** {1 Ports and interrupt vectors} *)

val console_port : int
val heartbeat_port : int
val process_heartbeat_port : int -> int
(** Per-process heartbeat ports (§5 experiments). *)

val timer_vector : int

(** {1 Machine construction} *)

val default_nmi_counter_max : int
val default_watchdog_period : int

val machine_config : ?nmi_counter_enabled:bool -> ?hardwired_nmi:bool -> unit ->
  Ssx.Cpu.config
(** CPU configuration for this layout; flags default to the paper's
    augmented processor and can be switched off for ablations. *)
