(** §5 — The process model of the tailored tiny operating system.

    A process is a do-forever program under the paper's static
    restrictions: no stack operations, no interrupts or exceptions
    generated, no [hlt], branches only within the process's own code,
    and data confined to the process's own data area.  The restrictions
    are {e checked}, not assumed: {!validate} disassembles an assembled
    process and reports every violation.

    For the §5.2 scheduler, a process image must additionally guarantee
    that every [IP_MASK]-aligned offset is an instruction start; images
    are therefore assembled with 16-byte instruction alignment and the
    4 KiB window's tail is filled with 16-byte blocks that jump back to
    the entry (§5.1's "a jmp command … in every unused rom location"). *)

type t = {
  name : string;
  source : string;
  symbols : (string * int) list;
}

val counter_process : index:int -> t
(** The canonical self-stabilizing process: sets up its own data
    segment, increments a counter there and reports it on its private
    heartbeat port.  From any state it converges within one loop pass. *)

val counter_body : index:int -> t
(** The loop body alone (no backward jump) — the §5.1 form, where the
    scheduler supplies the do-forever loop. *)

val data_segment : int -> int
(** RAM data segment of process [i]. *)

val assemble_image : t -> string
(** Assemble with 16-byte instruction alignment and pad to
    {!Layout.proc_image_size} with jump-to-entry filler blocks. *)

val assemble_plain : t -> Ssx_asm.Assemble.image
(** Assemble without padding (for §5.1 concatenation and for tests). *)

(** Restriction checking. *)

type model = Primitive | Scheduled
(** [Primitive] (§5.1) additionally forbids backward branches. *)

val validate : model:model -> code_len:int -> string -> (unit, string list) result
(** Disassemble [code_len] bytes of an image and check the paper's
    restrictions; returns the list of violations. *)
