let checkpoint_offset = 0x0400

(* Progress-checked checkpoint/rollback, the Windows-XP/EROS-style
   mechanism the paper contrasts with (§1).  CKPT_META is the saved
   liveness value, stored just past the image copy in the (corruptible)
   checkpoint RAM segment.  Exceptions enter at [exception_rollback] and
   roll back unconditionally: checkpointing on the exception path would
   capture the already-broken state. *)
let checkpoint_source =
  "; Checkpoint/rollback NMI handler (baseline)\n\
   CKPT_META equ IMAGE_SIZE\n\
   checkpoint_handler:\n\
  \    push ds\n\
  \    push ax\n\
  \    push bx\n\
  \    push cx\n\
  \    push si\n\
  \    push di\n\
  \    push es\n\
  \    mov ax, OS_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov bx, [LIVENESS_OFF]\n\
  \    mov ax, CHECKPOINT_SEGMENT\n\
  \    mov es, ax\n\
  \    cmp bx, [es:CKPT_META]\n\
  \    je rollback                 ; no progress since the last pulse\n\
   ; progress: take a checkpoint of the whole image\n\
  \    mov si, 0x00\n\
  \    mov di, 0x00\n\
  \    mov cx, IMAGE_SIZE\n\
  \    cld\n\
  \    rep movsb\n\
  \    mov word [es:CKPT_META], bx\n\
  \    pop es\n\
  \    pop di\n\
  \    pop si\n\
  \    pop cx\n\
  \    pop bx\n\
  \    pop ax\n\
  \    pop ds\n\
  \    iret\n\
   rollback:\n\
  \    mov ax, CHECKPOINT_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov ax, OS_SEGMENT\n\
  \    mov es, ax\n\
  \    mov si, 0x00\n\
  \    mov di, 0x00\n\
  \    mov cx, IMAGE_SIZE\n\
  \    cld\n\
  \    rep movsb\n\
   ; restart the guest from its entry with a fresh stack\n\
  \    mov ax, OS_SEGMENT\n\
  \    mov ss, ax\n\
  \    mov sp, 0xFFFF\n\
  \    push word 0x02\n\
  \    push word OS_SEGMENT\n\
  \    push word 0x0\n\
  \    iret\n\
   org EXCEPTION_ENTRY\n\
   exception_rollback:\n\
  \    jmp rollback\n"

let warm_boot_stub = "    jmp OS_SEGMENT:0x0000\n"

let halt_stub = "    hlt\n"

let default_guest () = Guest.task_kernel ()

let none ?guest () =
  let guest = match guest with Some g -> g | None -> default_guest () in
  let rom = Rom_builder.create () in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset warm_boot_stub);
  ignore (Rom_builder.add_asm rom ~offset:Layout.exception_offset halt_stub);
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment
    ~off:Layout.exception_offset;
  let system = System.build ~watchdog:`None ~rom ~guest () in
  System.install_guest system;
  system

let reset_only ?(watchdog_period = Layout.default_watchdog_period) ?guest () =
  let guest = match guest with Some g -> g | None -> default_guest () in
  let rom = Rom_builder.create () in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset warm_boot_stub);
  (* Exceptions also reboot, but nothing refreshes the code. *)
  ignore (Rom_builder.add_asm rom ~offset:Layout.exception_offset warm_boot_stub);
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment
    ~off:Layout.exception_offset;
  let system = System.build ~watchdog:(`Reset watchdog_period) ~rom ~guest () in
  System.install_guest system;
  system

let checkpoint ?(watchdog_period = Layout.default_watchdog_period) ?guest () =
  let guest = match guest with Some g -> g | None -> default_guest () in
  let rom = Rom_builder.create () in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset warm_boot_stub);
  let exception_entry = checkpoint_offset + 0x180 in
  ignore
    (Rom_builder.add_asm rom ~offset:checkpoint_offset
       ~symbols:
         [ ("LIVENESS_OFF", Layout.os_data_offset + 4);
           ("EXCEPTION_ENTRY", exception_entry) ]
       checkpoint_source);
  (* Exceptions roll back unconditionally (no checkpoint of a broken
     state); the periodic NMI decides between checkpoint and rollback. *)
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment ~off:exception_entry;
  Rom_builder.set_vector rom Ssx.Cpu.vec_nmi ~seg:Layout.rom_segment
    ~off:checkpoint_offset;
  let system = System.build ~watchdog:(`Nmi watchdog_period) ~rom ~guest () in
  System.install_guest system;
  system

let pet_port = 0x18

let petting_guest ?(work_units = 100) () =
  let base = Guest.heartbeat_kernel ~work_units () in
  (* Insert a watchdog kick right after the heartbeat. *)
  let source =
    Str_replace.replace_first base.Guest.source
      ~pattern:"    out HEARTBEAT_PORT, ax\n"
      ~replacement:"    out HEARTBEAT_PORT, ax\n    out PET_PORT, ax\n"
  in
  { Guest.name = "petting-kernel";
    source;
    symbols = ("PET_PORT", pet_port) :: base.Guest.symbols }

let petted_watchdog ?(watchdog_period = Layout.default_watchdog_period) ?guest () =
  let guest = match guest with Some g -> g | None -> petting_guest () in
  (* Best case for the baseline: a firing reboots through the full
     reinstall procedure, exactly like the section 3 design — the only
     difference is the petting discipline. *)
  let rom = Rom_builder.create () in
  let reset_stub = Printf.sprintf "    jmp 0x%04X\n" Layout.recovery_offset in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset reset_stub);
  ignore
    (Rom_builder.add_asm rom ~offset:Layout.recovery_offset
       Reinstall.figure1_source);
  Rom_builder.add_blob rom ~offset:Layout.os_image_offset (Guest.image_bytes guest);
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment
    ~off:Layout.recovery_offset;
  let system = System.build ~watchdog:(`Nmi watchdog_period) ~rom ~guest () in
  (match system.System.watchdog with
  | Some wd ->
    Ssx.Machine.register_port system.System.machine ~port:pet_port
      ~read:(fun _ -> 0)
      ~write:(fun _ _ -> Ssx_devices.Watchdog.pet wd)
  | None -> assert false);
  system

let checkpoint_fault_space =
  { System.default_fault_space with
    Ssx_faults.Fault.ram_regions =
      ((Layout.os_segment lsl 4), Layout.os_image_size)
      :: [ ((Layout.checkpoint_segment lsl 4), Layout.os_image_size + 2) ] }
