(* Tiny first-occurrence string substitution (avoids a str dependency). *)

let replace_first haystack ~pattern ~replacement =
  let n = String.length pattern and h = String.length haystack in
  let rec find i =
    if i + n > h then None
    else if String.sub haystack i n = pattern then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> haystack
  | Some i ->
    String.sub haystack 0 i ^ replacement
    ^ String.sub haystack (i + n) (h - i - n)
