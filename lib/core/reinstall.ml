type variant = Restart | Continue

(* Figure 1 of the paper, kept line-for-line (comments cite the paper's
   line numbers).  The iret both jumps to the operating system's first
   command and re-enables NMIs. *)
let figure1_source =
  "; Figure 1 - Operating System Watchdog/Reinstall Procedure\n\
   watchdog_reinstall:\n\
   ; copy OS image\n\
  \    mov ax, OS_ROM_SEGMENT   ; 1\n\
  \    mov ds, ax               ; 2\n\
  \    mov si, 0x00             ; 3\n\
  \    mov ax, OS_SEGMENT       ; 4\n\
  \    mov es, ax               ; 5\n\
  \    mov di, 0x00             ; 6\n\
  \    mov cx, IMAGE_SIZE       ; 7\n\
  \    cld                      ; 8\n\
  \    rep movsb                ; 9\n\
   ; prepare for journey\n\
  \    mov ax, OS_SEGMENT       ; 10\n\
  \    mov ss, ax               ; 11\n\
  \    mov sp, 0xFFFF           ; 12\n\
  \    push word 0x02           ; 13 flag\n\
  \    push word OS_SEGMENT     ; 14 cs\n\
  \    push word 0x0            ; 15 ip\n\
  \    iret                     ; 16\n"

(* The second §3 design: reinstall the image but resume the interrupted
   execution.  Registers are preserved through the guest's own stack —
   the stack may be arbitrary after a fault, which is exactly why this
   variant is only weakly self-stabilizing. *)
let continue_source =
  "; Reinstall-and-continue NMI handler (section 3, second design)\n\
   continue_reinstall:\n\
  \    push ds\n\
  \    push ax\n\
  \    push bx\n\
  \    push cx\n\
  \    push si\n\
  \    push di\n\
  \    push es\n\
  \    mov ax, OS_ROM_SEGMENT\n\
  \    mov ds, ax\n\
  \    mov si, 0x00\n\
  \    mov ax, OS_SEGMENT\n\
  \    mov es, ax\n\
  \    mov di, 0x00\n\
  \    mov cx, IMAGE_SIZE\n\
  \    cld\n\
  \    rep movsb\n\
  \    pop es\n\
  \    pop di\n\
  \    pop si\n\
  \    pop cx\n\
  \    pop bx\n\
  \    pop ax\n\
  \    pop ds\n\
  \    iret\n"

let reset_stub_source =
  Printf.sprintf
    "; Reset stub: boot through the reinstall procedure.\n\
    \    jmp 0x%04X\n"
    Layout.recovery_offset

let build_rom ~variant ~guest ~with_timer =
  let rom = Rom_builder.create () in
  ignore (Rom_builder.add_asm rom ~offset:Layout.reset_offset reset_stub_source);
  ignore (Rom_builder.add_asm rom ~offset:Layout.recovery_offset figure1_source);
  let nmi_target =
    match variant with
    | Restart -> Layout.recovery_offset
    | Continue ->
      let image =
        Rom_builder.add_asm rom ~offset:Layout.exception_offset continue_source
      in
      ignore image;
      Layout.exception_offset
  in
  Rom_builder.add_blob rom ~offset:Layout.os_image_offset (Guest.image_bytes guest);
  (* Exceptions and stray interrupts all reinstall-and-restart. *)
  Rom_builder.set_all_vectors rom ~seg:Layout.rom_segment ~off:Layout.recovery_offset;
  Rom_builder.set_vector rom Ssx.Cpu.vec_nmi ~seg:Layout.rom_segment ~off:nmi_target;
  if with_timer then
    (* The timer vector points into the (reinstalled) guest image. *)
    Rom_builder.set_vector rom Layout.timer_vector ~seg:Layout.os_segment
      ~off:Guest.timer_handler_offset;
  rom

type wiring = Nmi_wired | Reset_wired

let build ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
    ?obs_label
    ?(watchdog_period = Layout.default_watchdog_period) ?(variant = Restart)
    ?(wiring = Nmi_wired) ?timer_period ?guest () =
  let guest = match guest with Some g -> g | None -> Guest.heartbeat_kernel () in
  let rom = build_rom ~variant ~guest ~with_timer:(timer_period <> None) in
  let watchdog =
    match wiring with
    | Nmi_wired -> `Nmi watchdog_period
    | Reset_wired -> `Reset watchdog_period
  in
  let system =
    System.build ?nmi_counter_enabled ?hardwired_nmi ?decode_cache ?jit ?obs
      ?obs_label ~watchdog ~rom ~guest ()
  in
  (match timer_period with
  | Some period ->
    let timer = Ssx_devices.Timer.create ~period ~vector:Layout.timer_vector in
    Ssx.Machine.add_device system.System.machine (Ssx_devices.Timer.device timer);
    Ssx.Machine.add_resettable system.System.machine
      (Ssx_devices.Timer.resettable timer)
  | None -> ());
  system

let strict_spec ?(max_gap = 8000) ?(window = 20_000) () =
  { (Ssx_stab.Convergence.counter_spec ()) with
    Ssx_stab.Convergence.max_gap;
    window }

let weak_spec ?(max_gap = 8000) ?(window = 20_000) () =
  { Ssx_stab.Convergence.legal_step =
      (fun prev next -> next = Ssx.Word.mask (prev + 1) || next = 1);
    max_gap;
    window }
