(** Comparison baselines.

    The paper positions self-stabilizing reinstall against existing
    practice: plain systems with no automatic recovery, watchdog reboots
    that do not refresh the code, and checkpointing systems (Windows XP,
    EROS/KeyKOS are cited).  Each baseline here runs the same guest on
    the same machine so the approach-comparison experiment (E3) is
    apples-to-apples.

    - {!none}: the guest alone; exceptions halt the processor.
    - {!reset_only}: a watchdog wired to the RESET pin reboots the
      machine, jumping to the OS entry point {e without} reinstalling —
      corrupted code or data stays corrupted.
    - {!checkpoint}: the watchdog NMI handler checks a guest liveness
      word; on progress it copies the whole OS image to a checkpoint
      area in RAM and records the liveness value; on stall it rolls the
      image back from the checkpoint and restarts the guest.  The
      checkpoint itself lives in corruptible RAM — the design's
      characteristic weakness. *)

val checkpoint_source : string
(** The NMI checkpoint/rollback handler. *)

val none : ?guest:Guest.t -> unit -> System.t
val reset_only : ?watchdog_period:int -> ?guest:Guest.t -> unit -> System.t
val checkpoint : ?watchdog_period:int -> ?guest:Guest.t -> unit -> System.t

val pet_port : int
(** I/O port the petting guest kicks its watchdog through. *)

val petting_guest : ?work_units:int -> unit -> Guest.t
(** The heartbeat kernel extended with a watchdog kick each iteration. *)

val petted_watchdog : ?watchdog_period:int -> ?guest:Guest.t -> unit -> System.t
(** The conventional embedded-systems design: the watchdog only fires
    when the guest stops kicking it, and a firing reboots {e and
    reinstalls} (best case for the baseline).  Its characteristic
    failure: corruption that leaves the kick inside a wedged loop — or
    wild execution that happens to hit the kick port — suppresses
    recovery forever.  Contrast with the paper's unconditionally
    periodic watchdog. *)

val checkpoint_fault_space : Ssx_faults.Fault.space
(** {!System.default_fault_space} extended with the checkpoint area, so
    faults can hit the saved state. *)
