(** §5.1 — The primitive scheduler.

    The Harvard-model design: the do-forever loops are stripped from N
    straight-line, loop-free process bodies, the bodies are written one
    after another in ROM, a jump back to the first instruction closes
    the round, and {e every unused ROM location leads back to the first
    instruction} — here with jump-to-entry filler blocks, plus a default
    exception handler that re-enters the round when a corrupted
    instruction pointer mis-decodes (our machine, like the Pentium, has
    exceptions even when the model assumes no interrupts; the handler
    preserves the §5.1 argument).

    There is no context switch and no process table: fairness is purely
    syntactic (one pass per round), and each process re-derives its
    working state from constants at the start of its body, so the
    composition is self-stabilizing by Theorem 5.1. *)

type t = {
  machine : Ssx.Machine.t;
  heartbeats : Ssx_devices.Heartbeat.t array;
  entry : int;       (** ROM offset of the round's first instruction *)
  code_len : int;    (** bytes of concatenated bodies + closing jump *)
  n : int;
}

val region_offset : int
(** ROM offset of the §5.1 program region (0xD000). *)

val region_size : int
(** Bytes reserved for the region (4 KiB). *)

val bundle : n:int -> string
(** The assembled round: N counter bodies, the closing jump, and the
    jump-to-entry fill, padded to [region_size]. *)

val bundle_source : n:int -> string
(** The generated assembly source of the round (before filling). *)

val build : ?n:int -> unit -> t
(** Machine running the primitive schedule from reset.  No watchdog is
    needed: control flow cannot leave the ROM round except through
    exceptions, which re-enter it. *)

val fault_system : t -> Ssx_faults.Fault.system

val fault_space : t -> Ssx_faults.Fault.space
(** Process data segments, registers and control state (no watchdog,
    and no halt faults — the §5.1 model forbids [hlt], and without an
    NMI source a halted processor cannot be an initial state that the
    design claims to recover from). *)
