(** ROM image composer.

    Builds the 64 KiB ROM: interrupt descriptor table, recovery code,
    golden images and tables, then installs it write-protected into a
    machine's memory. *)

type t

val create : unit -> t
(** Empty ROM (all zero). *)

val add_blob : t -> offset:int -> string -> unit
(** Place raw bytes at a ROM offset.
    @raise Invalid_argument on overflow or overlap with a previous blob. *)

val add_asm : t -> offset:int -> ?symbols:(string * int) list -> string -> Ssx_asm.Assemble.image
(** Assemble source with the standard layout symbols predefined and
    place the result at [offset].  Returns the image (for its labels). *)

val set_vector : t -> int -> seg:int -> off:int -> unit
(** Point one IDT entry at a handler. *)

val set_all_vectors : t -> seg:int -> off:int -> unit
(** Point every IDT entry at one default handler. *)

val image : t -> string
(** The current 64 KiB ROM contents. *)

val install : t -> Ssx.Memory.t -> unit
(** Copy the ROM to {!Layout.rom_base}, write-protect it, and point the
    CPU-visible IDTR default region at it (callers still set
    [cpu.idtr]). *)

val layout_symbols : (string * int) list
(** The [equ]-style constants every recovery source may reference:
    OS_ROM_SEGMENT, OS_SEGMENT, IMAGE_SIZE, STACK_SEGMENT, STACK_TOP,
    DATA_SEGMENT, PROCESS_ENTRY_SIZE, IP_MASK, ports, etc. *)
