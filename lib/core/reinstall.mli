(** §3 — Periodical reinstall and restart.

    The simplest recovery design: a watchdog periodically triggers the
    NMI, whose handler — the watchdog/reinstall procedure of Figure 1,
    resident in ROM — copies the whole operating-system image (code and
    data) from ROM into RAM, rebuilds the stack and transfers control to
    the operating system's first instruction with an [iret].

    Two variants, as in the paper:
    - {!Restart}: Figure 1 verbatim — reinstall, then start from the OS
      entry point.  Weakly self-stabilizing: executions are infinite
      concatenations of prefixes of legal executions.
    - {!Continue}: reinstall the image, then [iret] back to the
      interrupted instruction, preserving registers saved on the
      (possibly corrupt) guest stack.

    The reset vector and every exception vector also lead to the
    reinstall procedure, so the system boots through it and recovers
    from stray exceptions the same way. *)

type variant = Restart | Continue

val figure1_source : string
(** The watchdog/reinstall procedure, line-for-line after Figure 1 of
    the paper. *)

val continue_source : string
(** The reinstall-and-continue NMI handler (§3, second design). *)

type wiring = Nmi_wired | Reset_wired
(** §2 allows the watchdog to "trigger the reset pin instead" for the
    first two schemes: [Reset_wired] reboots through the reset vector,
    which leads to the same reinstall procedure. *)

val build :
  ?nmi_counter_enabled:bool ->
  ?hardwired_nmi:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  ?watchdog_period:int ->
  ?variant:variant ->
  ?wiring:wiring ->
  ?timer_period:int ->
  ?guest:Guest.t ->
  unit ->
  System.t
(** Assemble the complete system.  Defaults: NMI counter on, hardwired
    NMI vector, watchdog period {!Layout.default_watchdog_period},
    [Restart] variant, NMI wiring, no timer, heartbeat-kernel guest.
    [timer_period] adds a periodic maskable timer whose IDT vector
    points at the guest's handler (use {!Guest.preemptive_kernel}).
    The machine starts at the reset vector; run it and the reinstall
    procedure boots the guest. *)

val weak_spec :
  ?max_gap:int -> ?window:int -> unit -> Ssx_stab.Convergence.heartbeat_spec
(** Weak legality for the heartbeat kernel under periodic restart:
    heartbeats increment by one, or restart from 1 (a new prefix of a
    legal execution). *)

val strict_spec :
  ?max_gap:int -> ?window:int -> unit -> Ssx_stab.Convergence.heartbeat_spec
(** Strict legality: heartbeats increment by one (no restarts). *)
