let k = 8
let shared_segment = 0x4800
let shared_addr i = (shared_segment lsl 4) + (2 * i)

(* Block layout mirrors Process.counter_process: derivation blocks are
   replay-idempotent (the conditional jump home guards re-entry after a
   partial move), and the store block ends exactly at the port write. *)
let ring_process ~n ~index =
  if n < 2 then invalid_arg "Token_os.ring_process: need at least two machines";
  let pred = (index + n - 1) mod n in
  let symbols =
    [ ("SHARED_SEG", shared_segment);
      ("SELF_OFF", 2 * index);
      ("PRED_OFF", 2 * pred);
      ("K_MASK", k - 1);
      ("MY_PORT", Layout.process_heartbeat_port index) ]
  in
  let source =
    if index = 0 then
      "; Dijkstra's bottom machine: privileged when equal to its\n\
       ; predecessor; moves by incrementing modulo K.\n\
       org 0\n\
       start:\n\
       ; block 0: load both counters (idempotent)\n\
      \    mov ax, SHARED_SEG\n\
      \    mov ds, ax\n\
      \    mov ax, [PRED_OFF]\n\
      \    mov bx, [SELF_OFF]\n\
       ; block 1: decide and derive; re-entry is guarded by the jump\n\
      \    cmp ax, bx\n\
      \    jne start\n\
      \    inc ax\n\
      \    and ax, K_MASK\n\
      \    times 3 nop\n\
       ; block 2: the move; the port write ends the block exactly\n\
      \    mov [SELF_OFF], ax\n\
      \    times 9 nop\n\
      \    out MY_PORT, ax\n\
       ; block 3: loop closure\n\
      \    jmp start\n"
    else
      "; Dijkstra's other machines: privileged when different from the\n\
       ; predecessor; move by copying it.\n\
       org 0\n\
       start:\n\
       ; block 0: load both counters (idempotent)\n\
      \    mov ax, SHARED_SEG\n\
      \    mov ds, ax\n\
      \    mov ax, [PRED_OFF]\n\
      \    mov bx, [SELF_OFF]\n\
       ; block 1: decide; re-entry is guarded by the jump\n\
      \    cmp ax, bx\n\
      \    je start\n\
      \    times 10 nop\n\
       ; block 2: the move; the port write ends the block exactly\n\
      \    mov [SELF_OFF], ax\n\
      \    times 9 nop\n\
      \    out MY_PORT, ax\n\
       ; block 3: loop closure\n\
      \    jmp start\n"
  in
  { Process.name = Printf.sprintf "ring-%d" index; source; symbols }

let build ?(n = 4) ?watchdog_period ?cs_check ?refresh ?decode_cache ?jit
    ?obs ?obs_label () =
  let processes = Array.init n (fun index -> ring_process ~n ~index) in
  Sched.build ~n ?watchdog_period ?cs_check ?refresh ?decode_cache ?jit ?obs
    ?obs_label ~processes ()

let states sched =
  let mem = Ssx.Machine.memory sched.Sched.machine in
  Array.init sched.Sched.n (fun i -> Ssx.Memory.read_word mem (shared_addr i))

let corrupt_state sched i v =
  Ssx.Memory.write_word (Ssx.Machine.memory sched.Sched.machine) (shared_addr i)
    (v land (k - 1))

let privileged ~states i =
  let n = Array.length states in
  if i = 0 then states.(0) = states.(n - 1) else states.(i) <> states.(i - 1)

let token_count ~states =
  let n = Array.length states in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if privileged ~states i then incr count
  done;
  !count

let legitimate sched = token_count ~states:(states sched) = 1

let run_until_legitimate sched ~limit =
  Ssx.Machine.run_until sched.Sched.machine ~limit (fun _ -> legitimate sched)
