(** Dijkstra's K-state token ring running {e as guest processes} on the
    §5.2 self-stabilizing scheduler.

    Each ring machine is a scheduler process that reads its
    predecessor's counter from a shared RAM segment, takes Dijkstra's
    move when privileged, and reports each move on its private port.
    §5.2 warns that "when there is a mixture of data space it is
    possible that stabilization of each process when executed
    separately may not imply stabilization when scheduled" — Dijkstra's
    ring is exactly an algorithm {e designed} for shared read/write
    variables, so the composed system (stabilizing processor →
    stabilizing scheduler → stabilizing distributed algorithm) converges
    from any joint state: the full three-layer composition of §1.

    The counter modulus is fixed at K = 8 (a power of two, so the move
    is a mask), satisfying Dijkstra's K >= N requirement for every
    supported ring size. *)

val k : int
(** 8. *)

val shared_segment : int
(** RAM segment holding the ring counters (one word per machine). *)

val shared_addr : int -> int
(** Physical address of machine [i]'s counter. *)

val ring_process : n:int -> index:int -> Process.t
(** The SSX16 program of ring machine [index] (machine 0 is Dijkstra's
    bottom machine).  Replay-safe under the scheduler's ip mask. *)

val build :
  ?n:int ->
  ?watchdog_period:int ->
  ?cs_check:Sched.cs_check ->
  ?refresh:bool ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  ?obs_label:string ->
  unit ->
  Sched.t
(** The tiny OS scheduling an [n]-machine ring (default 4). *)

val states : Sched.t -> int array
(** Current ring counters read from shared memory. *)

val corrupt_state : Sched.t -> int -> int -> unit
(** Overwrite machine [i]'s shared counter. *)

val privileged : states:int array -> int -> bool
val token_count : states:int array -> int
val legitimate : Sched.t -> bool
(** Exactly one machine is privileged. *)

val run_until_legitimate : Sched.t -> limit:int -> int option
(** Tick until the ring is legitimate; ticks consumed, or [None]. *)
