type slo = {
  availability : float;
  max_p99 : int;
  window : int;
  patience : int;
  grace : int;
}

let default_slo =
  { availability = 0.85; max_p99 = 0; window = 3; patience = 2; grace = 8 }

type incident = {
  cause : string;
  opened_at : int;
  closed_at : int option;
  repair_fired : bool;
}

type mttr = {
  kind : string;
  incidents : int;
  mean_steps : float;
  max_steps : int;
}

type window = {
  epoch : int;
  step : int;
  w_injected : int;
  w_committed : int;
  w_availability : float;
  w_p50 : int;
  w_p99 : int;
  ring_legal : bool;
  healthy : bool;
  faults_landed : int;
}

type summary = {
  nodes : int;
  duration : int;
  epochs : int;
  injected : int;
  committed : int;
  dropped : int;
  fault_arrivals : (string * int) list;
  incidents : incident list;
  detected : int;
  repaired : int;
  repairs : int;
  availability : float;
  min_window_availability : float;
  p50 : int;
  p99 : int;
  mttr : mttr list;
  final_legal : bool;
  slo_met : bool;
}

(* Exact nearest-rank percentile, as in Runner.distribution: the
   q-percentile is the ceil(q * count)-th smallest. *)
let nearest_rank sorted q =
  let count = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int count)) in
  sorted.(max 0 (min (count - 1) (rank - 1)))

let percentile latencies q =
  match latencies with
  | [] -> -1
  | l ->
    let sorted = Array.of_list l in
    Array.sort compare sorted;
    nearest_rank sorted q

(* Request latencies are cluster steps, small integers: fine buckets
   below the typical ring round-trip, coarse above. *)
let latency_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. |]

let mttr_of_incidents incidents =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun inc ->
      match inc.closed_at with
      | None -> ()
      | Some closed ->
        let steps = closed - inc.opened_at in
        let count, sum, mx =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl inc.cause)
        in
        Hashtbl.replace tbl inc.cause (count + 1, sum + steps, max mx steps))
    incidents;
  Hashtbl.fold
    (fun kind (incidents, sum, max_steps) acc ->
      { kind;
        incidents;
        mean_steps = float_of_int sum /. float_of_int incidents;
        max_steps }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.kind b.kind)

let serve ?(nodes = 5) ?(rate = 0.05) ?(fault_rate = 0.0) ?(epoch = 150)
    ?(warmup = 600) ?(latency = 2) ?(slo = default_slo) ?(shards = 1) ?jobs
    ?report ~duration ~seed () =
  if duration < 0 then invalid_arg "Engine.serve: duration";
  if epoch < 1 then invalid_arg "Engine.serve: epoch";
  if slo.patience < 1 then invalid_arg "Engine.serve: patience";
  if slo.window < 1 then invalid_arg "Engine.serve: window";
  if not (slo.availability >= 0.0 && slo.availability <= 1.0) then
    invalid_arg "Engine.serve: availability";
  let service =
    Ssos_rsm.Service.build ~n:nodes ~latency
      ~seed:(Ssx_faults.Rng.derive seed 1) ()
  in
  let cluster = service.Ssos_rsm.Service.cluster in
  (* Fault-free warmup to the serving steady state: the detectors
     below assume the loop starts from a legitimate configuration, the
     same assumption every campaign's warmup phase makes. *)
  Ssos_net.Cluster.run_sharded ~shards ?jobs cluster ~steps:warmup;
  let wl =
    Ssos_rsm.Workload.open_loop ~rate ~seed:(Ssx_faults.Rng.derive seed 2)
      service
  in
  Ssos_rsm.Workload.discard wl;
  let faults =
    Ssx_faults.Injector.process ~rate:fault_rate
      ~rng:(Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed 3))
      (Array.map
         (fun sys -> (Ssos.Sched.fault_system sys, Ssos.Sched.fault_space sys))
         service.Ssos_rsm.Service.systems)
  in
  let obs = Ssos_obs.Obs.enabled () in
  let lat_hist =
    if obs then
      Some
        (Ssos_obs.Obs.sliding ~windows:8 ~buckets:latency_buckets
           "serve.latency-steps")
    else None
  in
  (* Loop state.  Everything below is derived from the workload's
     merged log, the cluster step counter and the fault process — all
     bit-identical across shards/jobs — so the summary is too. *)
  let epochs = (duration + epoch - 1) / epoch in
  let injected_mark = ref 0 in
  let committed_mark = ref 0 in
  (* The SLO window trails [slo.window] epochs: a single epoch's
     commit/inject ratio jitters around 1 even in a fault-free run
     (requests in flight at the window edge commit in the next one),
     so breaches are judged over the trailing window, which smooths
     the pipeline-fill noise but still collapses within an epoch or
     two of a real outage. *)
  let trail_injected = Array.make slo.window 0 in
  let trail_committed = Array.make slo.window 0 in
  let trail_latencies = Array.make slo.window [] in
  let all_latencies = ref [] in
  let min_window_availability = ref 1.0 in
  let unhealthy_run = ref 0 in
  (* (epoch, kind) per arrival, newest first.  An incident is
     attributed to the most recent arrival within the trailing SLO
     window plus patience — faults can sit dormant for an epoch or two
     (e.g. a corrupted watchdog counter) before they break a window. *)
  let arrival_log = ref [] in
  let attribution_horizon = slo.window + slo.patience in
  let fault_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let open_incident = ref None in
  let incidents = ref [] in  (* closed or abandoned, newest first *)
  let detected = ref 0 in
  let repaired = ref 0 in
  let repairs = ref 0 in
  let last_repair_epoch = ref (-max_int / 2) in
  let inject ahead_of steps =
    if fault_rate > 0.0 && steps > 0 then begin
      let landed = Ssx_faults.Injector.advance faults ~steps in
      List.iter
        (fun (_, _, fault) ->
          let kind = Ssx_faults.Fault.kind_name fault in
          arrival_log := (ahead_of, kind) :: !arrival_log;
          Hashtbl.replace fault_counts kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt fault_counts kind)))
        landed;
      List.length landed
    end
    else 0
  in
  (* Arrivals for epoch [k] land while the cluster is quiescent, before
     epoch [k] runs: epoch 0's here, each later epoch's at the end of
     the preceding hook. *)
  let landed_this_epoch = ref (inject 0 (min epoch duration)) in
  let on_epoch index =
    let step = Ssos_net.Cluster.steps cluster in
    let injected = Ssos_rsm.Workload.injected wl in
    let committed = Ssos_rsm.Workload.committed wl in
    let w_injected = injected - !injected_mark in
    let w_committed = committed - !committed_mark in
    injected_mark := injected;
    committed_mark := committed;
    let latencies = Ssos_rsm.Workload.take_latencies wl in
    Option.iter
      (fun h ->
        List.iter
          (fun l -> Ssos_obs.Obs.observe_sliding h (float_of_int l))
          latencies;
        Ssos_obs.Obs.rotate h)
      lat_hist;
    all_latencies := List.rev_append latencies !all_latencies;
    let slot = index mod slo.window in
    trail_injected.(slot) <- w_injected;
    trail_committed.(slot) <- w_committed;
    trail_latencies.(slot) <- latencies;
    let t_injected = Array.fold_left ( + ) 0 trail_injected in
    let t_committed = Array.fold_left ( + ) 0 trail_committed in
    let t_lats = List.concat (Array.to_list trail_latencies) in
    let w_availability =
      if t_injected = 0 then 1.0
      else
        Float.min 1.0 (float_of_int t_committed /. float_of_int t_injected)
    in
    (* The SLO detectors need a full trailing window before they can
       judge: the first epochs after warmup systematically under-count
       commits while the request pipeline fills (a fresh stream's first
       responses take a ring circulation to land), which is a startup
       transient, not an outage.  Until [slo.window] epochs exist the
       availability/latency detectors abstain — ring legality, which
       has no such transient, stays active from epoch 0. *)
    let warming = index + 1 < slo.window in
    if (not warming) && w_availability < !min_window_availability then
      min_window_availability := w_availability;
    let w_p50 = percentile t_lats 0.5 in
    let w_p99 = percentile t_lats 0.99 in
    (* Detection: ring legality on the true counters — an invariant of
       the stabilized system, it does not flicker under traffic the way
       store coherence does — plus the windowed SLO breach detectors. *)
    let ring_legal =
      Ssx_stab.Distributed.legitimate
        ~states:(Ssos_rsm.Service.states service)
    in
    let healthy =
      ring_legal
      && (warming
         || w_availability >= slo.availability
            && (slo.max_p99 <= 0 || w_p99 < 0 || w_p99 <= slo.max_p99))
    in
    if healthy then begin
      (match !open_incident with
      | Some inc ->
        (* Recovery verified: a full healthy window closes the loop. *)
        incidents := { inc with closed_at = Some step } :: !incidents;
        repaired := !repaired + 1;
        open_incident := None;
        if obs then
          Ssos_obs.Obs.event "serve.incident.closed"
            ~fields:
              [ ("cause", inc.cause);
                ("mttr-steps", string_of_int (step - inc.opened_at)) ]
      | None -> ());
      unhealthy_run := 0
    end
    else begin
      incr unhealthy_run;
      (match !open_incident with
      | None ->
        let cause =
          match
            List.find_opt
              (fun (at, _) -> at >= index - attribution_horizon)
              !arrival_log
          with
          | Some (_, kind) -> kind
          | None -> "background"
        in
        detected := !detected + 1;
        open_incident :=
          Some { cause; opened_at = step; closed_at = None; repair_fired = false };
        if obs then begin
          Ssos_obs.Obs.incr (Ssos_obs.Obs.counter "serve.incidents");
          Ssos_obs.Obs.event "serve.incident.opened"
            ~fields:[ ("cause", cause); ("step", string_of_int step) ]
        end
      | Some _ -> ());
      (* Repair once detection has out-waited [patience] windows (the
         service self-repairs most faults via its own watchdogs; the
         engine only escalates), then hold off [grace] epochs for the
         reinstall to take. *)
      if !unhealthy_run >= slo.patience && index - !last_repair_epoch > slo.grace
      then begin
        Array.iter
          (fun sys ->
            (Ssx.Machine.cpu sys.Ssos.Sched.machine).Ssx.Cpu.reset_pin <- true)
          service.Ssos_rsm.Service.systems;
        repairs := !repairs + 1;
        last_repair_epoch := index;
        open_incident :=
          Option.map (fun inc -> { inc with repair_fired = true }) !open_incident;
        if obs then begin
          Ssos_obs.Obs.incr (Ssos_obs.Obs.counter "serve.repairs");
          Ssos_obs.Obs.event "serve.repair"
            ~fields:[ ("step", string_of_int step) ]
        end
      end
    end;
    if obs then begin
      Ssos_obs.Obs.set (Ssos_obs.Obs.gauge "serve.window-availability")
        w_availability;
      Ssos_obs.Obs.set_int (Ssos_obs.Obs.gauge "serve.step") step;
      Ssos_obs.Obs.incr ~by:w_injected (Ssos_obs.Obs.counter "serve.injected");
      Ssos_obs.Obs.incr ~by:w_committed (Ssos_obs.Obs.counter "serve.committed")
    end;
    (match report with
    | None -> ()
    | Some f ->
      f
        { epoch = index;
          step;
          w_injected;
          w_committed;
          w_availability;
          w_p50;
          w_p99;
          ring_legal;
          healthy;
          faults_landed = !landed_this_epoch });
    landed_this_epoch :=
      inject (index + 1) (min epoch (duration - ((index + 1) * epoch)))
  in
  Ssos_rsm.Workload.run_epochs ~shards ?jobs wl ~epoch ~steps:duration
    ~on_epoch;
  (* Wind-down: verify the service re-reaches full two-part legality
     (ring and stores) with traffic off — the recovered-state check
     every campaign ends with, bounded by a generous drain. *)
  let final_legal =
    Ssos_rsm.Service.run_until_stable ~shards service
      ~limit:(max (8 * epoch) 2_000)
    <> None
  in
  let injected = Ssos_rsm.Workload.injected wl in
  let committed = Ssos_rsm.Workload.committed wl in
  let availability =
    if injected = 0 then 1.0
    else float_of_int committed /. float_of_int injected
  in
  (* An incident still open at wind-down stays unrepaired in the
     record (closed_at = None) and fails the SLO. *)
  let incidents =
    List.rev
      (match !open_incident with
      | None -> !incidents
      | Some inc -> inc :: !incidents)
  in
  let fault_arrivals =
    Hashtbl.fold (fun kind count acc -> (kind, count) :: acc) fault_counts []
    |> List.sort compare
  in
  let summary =
    { nodes;
      duration;
      epochs;
      injected;
      committed;
      dropped = Ssos_rsm.Workload.dropped wl;
      fault_arrivals;
      incidents;
      detected = !detected;
      repaired = !repaired;
      repairs = !repairs;
      availability;
      min_window_availability = !min_window_availability;
      p50 = percentile !all_latencies 0.5;
      p99 = percentile !all_latencies 0.99;
      mttr = mttr_of_incidents incidents;
      final_legal;
      slo_met =
        availability >= slo.availability
        && !open_incident = None
        && final_legal }
  in
  if obs then
    Ssos_obs.Obs.event "serve.summary"
      ~fields:
        [ ("injected", string_of_int summary.injected);
          ("committed", string_of_int summary.committed);
          ("availability", Printf.sprintf "%.4f" summary.availability);
          ("incidents", string_of_int summary.detected);
          ("repaired", string_of_int summary.repaired) ];
  summary
