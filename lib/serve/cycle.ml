type strategy = Rebuild | Snapshot_reset

let trial_seed = Ssx_faults.Rng.derive

let trials ?(strategy = Snapshot_reset) ?oversubscribe ?jobs ~trials ~seed
    ~rebuild ~warm ~reset () =
  let outcomes =
    match strategy with
    | Rebuild ->
      Pool.run ?oversubscribe ?jobs trials (fun i ->
          rebuild ~seed:(trial_seed seed i))
    | Snapshot_reset ->
      (* One warmed state per worker domain.  The warm prefix must be
         deterministic and fault-free, so resetting from it before
         each trial is observationally identical to rebuilding and
         re-warming — at a fraction of the cost. *)
      Pool.run_with ?oversubscribe ?jobs ~init:warm trials
        (fun state i -> reset state ~seed:(trial_seed seed i))
  in
  Array.to_list outcomes
