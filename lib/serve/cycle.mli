(** The shared execute→observe cycle plumbing of every trial campaign.

    All of lib/experiments' campaigns run the same loop: derive a
    per-trial seed from the master seed, obtain a warmed system (fresh
    per trial, or snapshot-reset from a per-worker warmed state), run
    the trial body, collect outcomes in trial order across a {!Pool}
    of worker domains.  This module is that loop, factored out once;
    {!Runner}'s campaigns are thin wrappers over it (pinned
    bit-identical by the campaign differential tests), and the serve
    engine's epoch loop ({!Engine}) is its open-ended sibling. *)

type strategy =
  | Rebuild
      (** Build and warm a fresh system for every trial.  Slow, but
          makes no assumption beyond [rebuild] being deterministic. *)
  | Snapshot_reset
      (** Warm once per worker domain ([warm]), then [reset] from that
          state before each trial.  Requires the warm prefix to be
          deterministic and fault-free, and every piece of host-side
          device state to be restorable from the captured snapshot;
          all in-tree system builders satisfy both.  The default. *)

val trial_seed : int64 -> int -> int64
(** Derive the seed of trial [i] from the master seed — a splitmix64
    finalizer over the pair ({!Ssx_faults.Rng.derive}), so seeds are
    pairwise distinct per master and independent of execution order. *)

val trials :
  ?strategy:strategy ->
  ?oversubscribe:bool ->
  ?jobs:int ->
  trials:int ->
  seed:int64 ->
  rebuild:(seed:int64 -> 'o) ->
  warm:(unit -> 'w) ->
  reset:('w -> seed:int64 -> 'o) ->
  unit ->
  'o list
(** Run [trials] independent trials and return their outcomes in trial
    order.  Under [Rebuild] each trial is [rebuild ~seed:(trial_seed
    seed i)]; under [Snapshot_reset] each worker evaluates [warm] once
    and each of its trials is [reset state ~seed:…].  [jobs] defaults
    to {!Pool.default_jobs}; the outcome list is bit-identical for any
    [jobs] and either strategy provided the callbacks are
    deterministic functions of their seed (see {!Pool.run}). *)
