(** The continuous-operation engine: a closed execute→observe→detect→
    repair loop over the replicated service — the "production"
    scenario the paper's self-stabilizing kernel exists for, run as a
    deterministic simulation.

    The loop advances the cluster in fixed {e epochs} on the sharded
    stepper's hook points ({!Ssos_net.Cluster.run_sharded_epochs}):
    each epoch {e executes} open-ended client traffic
    ({!Ssos_rsm.Workload.open_loop}), then — with every shard joined
    and the cluster quiescent — {e observes} windowed availability and
    request-latency percentiles, {e detects} divergence (ring legality
    on the true counters plus SLO breach), {e repairs} by pulsing
    every node's reset pin (the paper's reinstall-and-restart path,
    exactly what the per-node watchdogs do) once detection outlasts
    the SLO patience, and verifies recovery — an incident only closes
    after a full healthy window.  Background faults arrive from a
    rate-parameterized {!Ssx_faults.Injector.process}, applied at the
    same quiescent points.

    Because every ingredient is seeded and every host-side action sits
    at an epoch boundary, a fixed [duration] run is bit-identical
    across shard and job counts (DESIGN.md §4k; pinned by
    test_serve.ml). *)

type slo = {
  availability : float;
      (** windowed availability floor in [0, 1] (a window with no
          injected requests counts as fully available) *)
  max_p99 : int;
      (** windowed p99 latency ceiling in cluster steps; [<= 0]
          disables the latency detector *)
  window : int;
      (** SLO window length in epochs: breaches are judged over the
          trailing [window] epochs, because a single epoch's
          commit/inject ratio jitters around 1 even fault-free
          (requests in flight at the epoch edge commit in the next
          one).  The availability/latency detectors abstain until a
          full window of epochs exists — the first epochs after warmup
          under-count commits while the request pipeline fills, a
          startup transient rather than an outage; ring legality is
          judged from epoch 0 *)
  patience : int;
      (** consecutive unhealthy windows tolerated before the engine
          fires a repair (the service self-repairs most faults via its
          own watchdogs; the engine only escalates) *)
  grace : int;
      (** epochs after a fired repair before another may fire *)
}

val default_slo : slo
(** 85% availability floor, no latency ceiling, 3-epoch SLO window,
    patience 2, grace 8. *)

type incident = {
  cause : string;
      (** kind of the most recent background arrival within the
          trailing SLO window plus patience epochs — faults can sit
          dormant for an epoch or two before breaking a window — or
          ["background"] if none landed *)
  opened_at : int;  (** cluster step at detection *)
  closed_at : int option;
      (** cluster step of the verified-healthy window that closed it;
          [None] if still open at wind-down (an SLO failure) *)
  repair_fired : bool;  (** the engine escalated to a reset pulse *)
}

type mttr = {
  kind : string;
  incidents : int;
  mean_steps : float;
  max_steps : int;
}

(** Per-epoch dashboard sample, passed to [?report]. *)
type window = {
  epoch : int;
  step : int;
  w_injected : int;  (** this epoch's injections *)
  w_committed : int;  (** this epoch's commits *)
  w_availability : float;
      (** over the trailing SLO window, clamped to 1 *)
  w_p50 : int;
      (** nearest-rank over the trailing window's commits; -1 if none *)
  w_p99 : int;
  ring_legal : bool;
  healthy : bool;
  faults_landed : int;  (** background arrivals ahead of this epoch *)
}

type summary = {
  nodes : int;
  duration : int;  (** cluster steps served *)
  epochs : int;
  injected : int;
  committed : int;
  dropped : int;
  fault_arrivals : (string * int) list;  (** per kind, sorted *)
  incidents : incident list;  (** in detection order *)
  detected : int;
  repaired : int;  (** incidents closed by a verified-healthy window *)
  repairs : int;  (** engine reset pulses fired *)
  availability : float;  (** committed / injected over the whole run *)
  min_window_availability : float;
      (** worst trailing-window availability among the judged (post
          warm-in) windows; [1.0] if the run was too short to judge *)
  p50 : int;  (** exact nearest-rank over all commits; -1 if none *)
  p99 : int;
  mttr : mttr list;  (** per closed-incident cause *)
  final_legal : bool;
      (** the service re-reached full two-part legality
          ({!Ssos_rsm.Service.run_until_stable}) at wind-down *)
  slo_met : bool;
      (** overall availability at floor, no incident left open, and
          [final_legal] — the CLI's exit status *)
}

val serve :
  ?nodes:int ->
  ?rate:float ->
  ?fault_rate:float ->
  ?epoch:int ->
  ?warmup:int ->
  ?latency:int ->
  ?slo:slo ->
  ?shards:int ->
  ?jobs:int ->
  ?report:(window -> unit) ->
  duration:int ->
  seed:int64 ->
  unit ->
  summary
(** Build an [nodes]-replica service (default 5, link latency
    [latency], default 2), warm it fault-free for [warmup] cluster
    steps (default 600), then serve for [duration] steps in
    [epoch]-step windows (default 150) under request probability
    [rate] per node slot (default 0.05) and background fault
    probability [fault_rate] per step (default 0 — each arrival
    applies one random fault from a uniformly chosen node's full §5.2
    space).  [?report] is called once per window with the dashboard
    sample.  [shards]/[jobs] parallelize the stepper within epochs;
    the summary is bit-identical for any value of either.  When
    {!Ssos_obs.Obs.enabled} the engine additionally feeds the
    [serve.*] metrics, including the sliding [serve.latency-steps]
    histogram (rotated per window) whose {!Ssos_obs.Obs.quantile} is
    the live SLO percentile. *)
