(** Device instrumentation: sampled gauges over the devices' existing
    public counters.  Nothing is added to the device hot paths — each
    registration is a closure the registry reads only at
    {!Obs.snapshot} time.

    Metric names are [device.<device>.<stat>], or
    [device.<device>{id=<label>}.<stat>] when a label distinguishes
    instances (e.g. the per-process heartbeat ports of the
    scheduler). *)

val watchdog : ?label:string -> Ssx_devices.Watchdog.t -> unit
(** Registers [bites] (times the watchdog fired) and [counter] (current
    countdown value). *)

val heartbeat : ?label:string -> Ssx_devices.Heartbeat.t -> unit
(** Registers [count] (samples recorded so far). *)

val nvstore : ?label:string -> Ssx_devices.Nvstore.t -> unit
(** Registers [images] (stored golden images). *)

val nic :
  ?label:string -> rx_hwm:(unit -> int) -> rx_dropped:(unit -> int) -> unit ->
  unit
(** Registers [rx-hwm] (deepest RX-queue occupancy) and [rx-dropped]
    (words lost to overflow) for one NIC instance.  Takes thunks
    rather than the NIC itself because the NIC type lives above this
    library; use [Ssos_net.Nic.observe] to register an instance. *)
