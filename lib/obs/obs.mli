(** Unified observability: one flat metric registry for the whole
    reproduction.

    Every subsystem — machine, devices, fault injector, campaign
    runner, cluster, fuzzer, CLI, bench — emits through this module
    instead of hand-rolling private counters.  Three metric kinds live
    in a single process-wide registry:

    - {e counters}: monotonically increasing integers ([Atomic]-backed,
      so worker domains of a campaign pool may share one);
    - {e gauges}: last-value floats, either pushed ({!set}) or
      {e sampled} — registered once with a closure that is only read at
      snapshot time, which makes instrumenting a hot structure free;
    - {e histograms}: fixed upper-bound buckets with exact
      count/sum/min/max side-cars (so a summary rebuilt from a
      histogram loses nothing).

    On top of the registry sit {e span timers} ({!timed}/{!span}) and a
    bounded ring buffer of structured {e events}.  One {!snapshot}
    format feeds both sinks: an aligned pretty table ({!pp_table}) and
    JSON lines ({!to_json_lines}).

    Instrumentation is run-time toggleable: the global {!enabled}
    switch defaults from the [SSOS_OBS] environment variable and is
    raised by the CLI's [--metrics] flag.  Builders take an [?obs]
    parameter defaulting to {!enabled}; when it resolves false they
    attach no hooks at all, so the disabled-mode execution path is the
    uninstrumented one (see DESIGN.md §4f for the cost argument). *)

val enabled : unit -> bool
(** The global switch.  Initially true iff [SSOS_OBS] is set to
    anything other than ["0"], ["false"] or the empty string. *)

val set_enabled : bool -> unit

(** {1 Counters} *)

type counter

val counter : ?help:string -> string -> counter
(** [counter name] registers (or retrieves — the registry is flat and
    name-keyed, so the same name always yields the same instance) a
    monotonic counter. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val set_int : gauge -> int -> unit

val sample : ?help:string -> string -> (unit -> float) -> unit
(** [sample name read] registers a sampled gauge: [read] is invoked at
    {!snapshot} time only.  Re-registering a name replaces the closure,
    so the gauge follows the most recently instrumented instance. *)

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Decades from 1e2 to 1e9 with 1-2-5 steps — wide enough for tick
    counts and span nanoseconds alike. *)

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** Fixed upper-bound buckets (ascending; an implicit +inf bucket is
    always appended). *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_max : histogram -> float option

(** {1 Sliding-window histograms}

    A bounded ring of per-window bucket snapshots with exact
    count/sum/min/max side-cars per window.  Observations land in the
    live window; {!rotate} closes it and opens a fresh one, discarding
    the oldest once [windows] are retained.  The snapshot value (and
    {!sliding_value}) is the aggregate over the retained windows,
    rendered as an ordinary {!Histogram} — so {!quantile} reports
    {e live} percentiles over the last [windows] windows where a
    cumulative {!histogram} would average the whole run.  The serve
    engine rotates once per epoch to track request-latency SLOs. *)

type sliding

val sliding :
  ?help:string -> ?buckets:float array -> windows:int -> string -> sliding
(** [sliding ~windows name] registers (or retrieves) a sliding
    histogram retaining the live window plus the [windows - 1] most
    recently closed ones.  [windows] must be at least 1. *)

val observe_sliding : sliding -> float -> unit
val rotate : sliding -> unit
val sliding_count : sliding -> int
(** Observations in the retained windows. *)

(** {1 Spans} *)

val timed : string -> (unit -> 'a) -> 'a * float
(** [timed name f] runs [f], returns its result and the elapsed
    nanoseconds, and — when {!enabled} — observes the duration into
    histogram [span.<name>-ns], sets gauge [span.<name>.last-ns] and
    emits a [span] event.  The single timing path shared by the bench
    harness and the CLI. *)

val span : string -> (unit -> 'a) -> 'a
(** {!timed} without the elapsed-time return. *)

(** {1 Events} *)

type event = {
  seq : int;  (** global emission order, monotonically increasing *)
  name : string;
  fields : (string * string) list;
}

val event : ?fields:(string * string) list -> string -> unit
(** Append to the bounded event ring (a no-op when disabled).  The ring
    keeps the most recent {!event_capacity} events. *)

val event_capacity : int
val events : unit -> event list
(** Oldest first. *)

(** {1 Snapshot and sinks} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;  (** upper bounds, ascending *)
      counts : int array;     (** one longer than [buckets]: +inf last *)
      count : int;
      sum : float;
      min : float;  (** meaningless when [count = 0] *)
      max : float;
    }

type row = { name : string; help : string; value : value }

type snapshot = { rows : row list; recent_events : event list }
(** Rows are sorted by name; sampled gauges are read at snapshot
    time. *)

val snapshot : unit -> snapshot

val sliding_value : sliding -> value
(** The current aggregate of a sliding histogram as a snapshot
    {!Histogram} value — feed it to {!quantile} for live SLO
    percentiles without taking a full registry snapshot. *)

val quantile : value -> float -> float option
(** [quantile value q] (with [q] in [0, 1]) estimates the [q]-quantile
    of a snapshot {!Histogram} from its bucket counts: the bucket
    holding the nearest-rank sample is found exactly, then the value
    is linearly interpolated inside it, clamped to the exact [min]/
    [max] side-cars (so the under- and overflow buckets stay finite).
    The estimate therefore always lands in the same bucket as the true
    sample quantile.  [None] for empty histograms and for
    {!Counter}/{!Gauge} values. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Aligned two-column table, histograms summarised inline. *)

val to_json_lines : snapshot -> string
(** One JSON object per line: metrics first
    ([{"name":…,"kind":…,"value":…}], histograms with bucket arrays),
    then events ([{"kind":"event",…}]). *)

val reset : unit -> unit
(** Drop every metric and event.  Test isolation only. *)
