let metric ~label device stat =
  match label with
  | "" -> Printf.sprintf "device.%s.%s" device stat
  | label -> Printf.sprintf "device.%s{id=%s}.%s" device label stat

let watchdog ?(label = "") wd =
  Obs.sample
    (metric ~label "watchdog" "bites")
    (fun () -> float_of_int (Ssx_devices.Watchdog.fired_count wd));
  Obs.sample
    (metric ~label "watchdog" "counter")
    (fun () -> float_of_int (Ssx_devices.Watchdog.counter wd))

let heartbeat ?(label = "") hb =
  Obs.sample
    (metric ~label "heartbeat" "count")
    (fun () -> float_of_int (Ssx_devices.Heartbeat.count hb))

let nvstore ?(label = "") nv =
  Obs.sample
    (metric ~label "nvstore" "images")
    (fun () -> float_of_int (List.length (Ssx_devices.Nvstore.names nv)))

(* The NIC lives above this library (lib/net depends on lib/obs), so
   its gauges are registered through plain thunks; [Ssos_net.Nic.observe]
   is the caller that closes them over an instance. *)
let nic ?(label = "") ~rx_hwm ~rx_dropped () =
  Obs.sample
    (metric ~label "nic" "rx-hwm")
    (fun () -> float_of_int (rx_hwm ()));
  Obs.sample
    (metric ~label "nic" "rx-dropped")
    (fun () -> float_of_int (rx_dropped ()))
