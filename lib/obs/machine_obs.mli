(** Machine-level instrumentation — the simulator itself knows nothing
    about telemetry, and an uninstrumented machine runs the exact
    pre-observability fast path.

    {!attach} registers, under [machine.<base>] (or
    [machine.<base>{id=<label>}] when a label is given):

    - event counters fed by the machine's batched
      {!Ssx.Tick_counters}: [ticks], [executed], [interrupts], [nmis],
      [exceptions], [idle], [resets].  The run loops count events in
      plain mutable fields and flush the deltas here once per
      [Machine.run]/[Machine.tick] — not per event, so enabling
      observability no longer forces a per-tick hook walk;
    - sampled gauges read only at snapshot time: [steps] (the CPU step
      counter), [mem.writes] and [mem.rom-refusals] (from
      {!Ssx.Memory}'s write accounting), [decode-cache.hits]/
      [.misses]/[.invalidations] when the decode cache is on, and
      [jit.blocks-built]/[.retranslations]/[.block-ticks] when the
      block compiler is on.

    Counters are shared across machines instrumented under the same
    name (campaign trials aggregate); sampled gauges follow the most
    recently attached instance. *)

type t

val attach : ?label:string -> Ssx.Machine.t -> t
(** Instrument [machine].  Installs the machine's batched tick
    counters and registers their flush sink; the machine's behaviour
    is unchanged. *)

val ticks : t -> int
(** Total ticks counted (all instrumented machines sharing this
    name; includes only flushed batches). *)
