(** Machine-level instrumentation, attached through the machine's
    existing hook arrays — the simulator itself knows nothing about
    telemetry, and an uninstrumented machine runs the exact
    pre-observability fast path.

    {!attach} registers, under [machine.<base>] (or
    [machine.<base>{id=<label>}] when a label is given):

    - event counters fed by an [on_event] hook: [ticks], [executed],
      [interrupts], [nmis], [exceptions], [idle], [resets];
    - sampled gauges read only at snapshot time: [steps] (the CPU step
      counter), [mem.writes] and [mem.rom-refusals] (from
      {!Ssx.Memory}'s write accounting), and — when the decode cache is
      on — [decode-cache.hits], [decode-cache.misses] and
      [decode-cache.invalidations].

    Counters are shared across machines instrumented under the same
    name (campaign trials aggregate); sampled gauges follow the most
    recently attached instance. *)

type t

val attach : ?label:string -> Ssx.Machine.t -> t
(** Instrument [machine].  Adds one event hook; the machine's behaviour
    is unchanged. *)

val ticks : t -> int
(** Total events counted through the hook (all instrumented machines
    sharing this name). *)
