(* The registry is a single process-wide table guarded by a mutex:
   registration and snapshotting are rare, so the lock never sits on a
   hot path.  Counter increments go through [Atomic] because campaign
   pool workers in separate domains legitimately share one counter
   (e.g. the per-kind fault counters); gauges and histograms are
   single-writer by construction and stay plain mutable. *)

let env_enabled () =
  match Sys.getenv_opt "SSOS_OBS" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let enabled_flag = Atomic.make (env_enabled ())
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

type counter = { c_name : string; value : int Atomic.t }

type gauge = { g_name : string; mutable g : float }

type histogram = {
  h_name : string;
  buckets : float array;          (* ascending upper bounds *)
  counts : int array;             (* length buckets + 1; +inf last *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* A bounded ring of per-window bucket snapshots: slot [s_cur] is the
   live window, the rest are the most recent closed ones.  [rotate]
   advances the ring and zeroes the new live slot, so the aggregate
   over the filled slots is always "the last [windows] windows" — a
   live view for SLO percentiles, where the cumulative histogram above
   would average the whole run. *)
type sliding = {
  s_name : string;
  s_buckets : float array;
  s_counts : int array array;     (* windows x (buckets + 1) *)
  s_count : int array;
  s_sum : float array;
  s_min : float array;
  s_max : float array;
  mutable s_cur : int;
  mutable s_filled : int;         (* live slots, including s_cur *)
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_sampled of (unit -> float)
  | M_histogram of histogram
  | M_sliding of sliding

type registered = { help : string; metric : metric }

let lock = Mutex.create ()
let table : (string, registered) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some { metric = M_counter c; _ } -> c
      | Some _ | None ->
        let c = { c_name = name; value = Atomic.make 0 } in
        Hashtbl.replace table name { help; metric = M_counter c };
        c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let gauge ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some { metric = M_gauge g; _ } -> g
      | Some _ | None ->
        let g = { g_name = name; g = 0. } in
        Hashtbl.replace table name { help; metric = M_gauge g };
        g)

let set g v = g.g <- v
let set_int g v = g.g <- float_of_int v

let sample ?(help = "") name read =
  with_lock (fun () ->
      Hashtbl.replace table name { help; metric = M_sampled read })

let default_buckets =
  (* 1-2-5 decades, 1e2 .. 1e9. *)
  Array.concat
    (List.map
       (fun d -> [| 1. *. d; 2. *. d; 5. *. d |])
       [ 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 ])

let histogram ?(help = "") ?(buckets = default_buckets) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some { metric = M_histogram h; _ } -> h
      | Some _ | None ->
        let h =
          { h_name = name;
            buckets = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.;
            h_min = infinity;
            h_max = neg_infinity }
        in
        Hashtbl.replace table name { help; metric = M_histogram h };
        h)

let observe h v =
  let n = Array.length h.buckets in
  let rec slot i = if i >= n || v <= h.buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_max h = if h.h_count = 0 then None else Some h.h_max

(* ----------------------------------------- sliding-window histograms *)

let sliding ?(help = "") ?(buckets = default_buckets) ~windows name =
  if windows < 1 then invalid_arg "Obs.sliding: windows";
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some { metric = M_sliding s; _ } -> s
      | Some _ | None ->
        let s =
          { s_name = name;
            s_buckets = Array.copy buckets;
            s_counts =
              Array.init windows (fun _ ->
                  Array.make (Array.length buckets + 1) 0);
            s_count = Array.make windows 0;
            s_sum = Array.make windows 0.;
            s_min = Array.make windows infinity;
            s_max = Array.make windows neg_infinity;
            s_cur = 0;
            s_filled = 1 }
        in
        Hashtbl.replace table name { help; metric = M_sliding s };
        s)

let observe_sliding s v =
  let n = Array.length s.s_buckets in
  let rec slot i = if i >= n || v <= s.s_buckets.(i) then i else slot (i + 1) in
  let i = slot 0 in
  let c = s.s_cur in
  s.s_counts.(c).(i) <- s.s_counts.(c).(i) + 1;
  s.s_count.(c) <- s.s_count.(c) + 1;
  s.s_sum.(c) <- s.s_sum.(c) +. v;
  if v < s.s_min.(c) then s.s_min.(c) <- v;
  if v > s.s_max.(c) then s.s_max.(c) <- v

let rotate s =
  let windows = Array.length s.s_count in
  let c = (s.s_cur + 1) mod windows in
  s.s_cur <- c;
  s.s_filled <- Stdlib.min (s.s_filled + 1) windows;
  Array.fill s.s_counts.(c) 0 (Array.length s.s_counts.(c)) 0;
  s.s_count.(c) <- 0;
  s.s_sum.(c) <- 0.;
  s.s_min.(c) <- infinity;
  s.s_max.(c) <- neg_infinity

(* The aggregate over the retained windows, rendered as an ordinary
   snapshot histogram so {!quantile} and both sinks work unchanged. *)
let sliding_aggregate s =
  let windows = Array.length s.s_count in
  let nb = Array.length s.s_buckets in
  let counts = Array.make (nb + 1) 0 in
  let count = ref 0 in
  let sum = ref 0. in
  let mn = ref infinity in
  let mx = ref neg_infinity in
  for w = 0 to s.s_filled - 1 do
    let slot = (s.s_cur - w + windows) mod windows in
    for i = 0 to nb do
      counts.(i) <- counts.(i) + s.s_counts.(slot).(i)
    done;
    count := !count + s.s_count.(slot);
    sum := !sum +. s.s_sum.(slot);
    if s.s_count.(slot) > 0 then begin
      if s.s_min.(slot) < !mn then mn := s.s_min.(slot);
      if s.s_max.(slot) > !mx then mx := s.s_max.(slot)
    end
  done;
  (Array.copy s.s_buckets, counts, !count, !sum, !mn, !mx)

let sliding_count s =
  let _, _, count, _, _, _ = sliding_aggregate s in
  count

(* ----------------------------------------------------------- events *)

type event = { seq : int; name : string; fields : (string * string) list }

let event_capacity = 256
let event_ring : event option array = Array.make event_capacity None
let event_next = ref 0      (* next write slot *)
let event_seq = ref 0

let event ?(fields = []) name =
  if enabled () then
    with_lock (fun () ->
        let seq = !event_seq in
        event_seq := seq + 1;
        event_ring.(!event_next) <- Some { seq; name; fields };
        event_next := (!event_next + 1) mod event_capacity)

let events () =
  with_lock (fun () ->
      let slots =
        List.init event_capacity (fun i ->
            event_ring.((!event_next + i) mod event_capacity))
      in
      List.filter_map Fun.id slots)

(* ------------------------------------------------------------ spans *)

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  if enabled () then begin
    observe (histogram ("span." ^ name ^ "-ns")) ns;
    set (gauge ("span." ^ name ^ ".last-ns")) ns;
    event ~fields:[ ("ns", Printf.sprintf "%.0f" ns) ] ("span:" ^ name)
  end;
  (result, ns)

let span name f = fst (timed name f)

(* --------------------------------------------------------- snapshot *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : float array;
      counts : int array;
      count : int;
      sum : float;
      min : float;
      max : float;
    }

type row = { name : string; help : string; value : value }
type snapshot = { rows : row list; recent_events : event list }

let sliding_value s =
  let buckets, counts, count, sum, min, max = sliding_aggregate s in
  Histogram { buckets; counts; count; sum; min; max }

let snapshot () =
  let rows =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name { help; metric } acc ->
            let value =
              match metric with
              | M_counter c -> Counter (Atomic.get c.value)
              | M_gauge g -> Gauge g.g
              | M_sampled read -> Gauge (read ())
              | M_histogram h ->
                Histogram
                  { buckets = Array.copy h.buckets;
                    counts = Array.copy h.counts;
                    count = h.h_count;
                    sum = h.h_sum;
                    min = h.h_min;
                    max = h.h_max }
              | M_sliding s ->
                let buckets, counts, count, sum, min, max =
                  sliding_aggregate s
                in
                Histogram { buckets; counts; count; sum; min; max }
            in
            { name; help; value } :: acc)
          table [])
  in
  { rows = List.sort (fun a b -> compare a.name b.name) rows;
    recent_events = events () }

(* Bucketed quantile estimation.  The nearest-rank sample's bucket is
   exact (cumulative counts); within the bucket we interpolate
   linearly, with the exact min/max side-cars bounding the first and
   the +inf bucket.  Resolution is thus the bucket width — the exact
   quantile is guaranteed to lie in the same bucket. *)
let quantile value q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Obs.quantile";
  match value with
  | Counter _ | Gauge _ -> None
  | Histogram { buckets; counts; count; min; max; _ } ->
    if count = 0 then None
    else begin
      let rank =
        Stdlib.max 1
          (Stdlib.min count (int_of_float (ceil (q *. float_of_int count))))
      in
      let nb = Array.length buckets in
      let rec go i cum =
        if i > nb then Some max
        else begin
          let here = counts.(i) in
          if cum + here >= rank then begin
            let lower = if i = 0 then min else Stdlib.max min buckets.(i - 1) in
            let upper = if i = nb then max else Stdlib.min max buckets.(i) in
            let upper = Stdlib.max lower upper in
            let frac = float_of_int (rank - cum) /. float_of_int here in
            Some (lower +. (frac *. (upper -. lower)))
          end
          else go (i + 1) (cum + here)
        end
      in
      go 0 0
    end

(* ------------------------------------------------------------ sinks *)

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf ppf "%.0f" v
    else Format.fprintf ppf "%g" v
  | Histogram { count; sum; min; max; _ } ->
    if count = 0 then Format.fprintf ppf "count=0"
    else
      Format.fprintf ppf "count=%d sum=%g mean=%g min=%g max=%g" count sum
        (sum /. float_of_int count)
        min max

let pp_table ppf { rows; recent_events } =
  let width =
    List.fold_left (fun w r -> Stdlib.max w (String.length r.name)) 0 rows
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-*s  %a@," width r.name pp_value r.value)
    rows;
  (match recent_events with
  | [] -> ()
  | evs ->
    Format.fprintf ppf "-- events (%d most recent) --@," (List.length evs);
    List.iter
      (fun e ->
        Format.fprintf ppf "%6d  %s%s@," e.seq e.name
          (match e.fields with
          | [] -> ""
          | fs ->
            " "
            ^ String.concat " "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) fs)))
      evs);
  Format.fprintf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"inf\""
  else if v = neg_infinity then "\"-inf\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_json_lines { rows; recent_events } =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun r ->
      match r.value with
      | Counter n ->
        line "{\"name\": \"%s\", \"kind\": \"counter\", \"value\": %d}"
          (json_escape r.name) n
      | Gauge v ->
        line "{\"name\": \"%s\", \"kind\": \"gauge\", \"value\": %s}"
          (json_escape r.name) (json_float v)
      | Histogram { buckets; counts; count; sum; min; max } ->
        let pairs =
          String.concat ", "
            (List.init (Array.length counts) (fun i ->
                 let le =
                   if i < Array.length buckets then json_float buckets.(i)
                   else "\"inf\""
                 in
                 Printf.sprintf "{\"le\": %s, \"count\": %d}" le counts.(i)))
        in
        line
          "{\"name\": \"%s\", \"kind\": \"histogram\", \"count\": %d, \
           \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": [%s]}"
          (json_escape r.name) count (json_float sum)
          (json_float (if count = 0 then 0. else min))
          (json_float (if count = 0 then 0. else max))
          pairs)
    rows;
  List.iter
    (fun e ->
      let fields =
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             e.fields)
      in
      line
        "{\"kind\": \"event\", \"seq\": %d, \"name\": \"%s\", \"fields\": {%s}}"
        e.seq (json_escape e.name) fields)
    recent_events;
  Buffer.contents buf

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Array.fill event_ring 0 event_capacity None;
      event_next := 0;
      event_seq := 0)
