type t = {
  tick_count : Obs.counter;
  executed : Obs.counter;
  interrupts : Obs.counter;
  nmis : Obs.counter;
  exceptions : Obs.counter;
  idle : Obs.counter;
  resets : Obs.counter;
}

let metric_name ~label base =
  match label with
  | "" -> "machine." ^ base
  | label -> Printf.sprintf "machine.%s{id=%s}" base label

let attach ?(label = "") machine =
  let name base = metric_name ~label base in
  let t =
    { tick_count = Obs.counter (name "ticks");
      executed = Obs.counter (name "executed");
      interrupts = Obs.counter (name "interrupts");
      nmis = Obs.counter (name "nmis");
      exceptions = Obs.counter (name "exceptions");
      idle = Obs.counter (name "idle");
      resets = Obs.counter (name "resets") }
  in
  Ssx.Machine.on_event machine (fun _machine event ->
      Obs.incr t.tick_count;
      match event with
      | Ssx.Cpu.Executed _ -> Obs.incr t.executed
      | Ssx.Cpu.Took_interrupt { nmi = true; _ } -> Obs.incr t.nmis
      | Ssx.Cpu.Took_interrupt _ -> Obs.incr t.interrupts
      | Ssx.Cpu.Took_exception _ -> Obs.incr t.exceptions
      | Ssx.Cpu.Halted_idle -> Obs.incr t.idle
      | Ssx.Cpu.Did_reset -> Obs.incr t.resets);
  Obs.sample (name "steps") (fun () ->
      float_of_int (Ssx.Machine.ticks machine));
  let mem = Ssx.Machine.memory machine in
  Obs.sample (name "mem.writes") (fun () ->
      float_of_int (Ssx.Memory.write_count mem));
  Obs.sample (name "mem.rom-refusals") (fun () ->
      float_of_int (Ssx.Memory.rom_refusal_count mem));
  (* Re-read the cache on every sample: [set_decode_cache] may swap it
     out (or in) after attachment. *)
  let cache_stat read =
    fun () ->
      match Ssx.Machine.decode_cache machine with
      | None -> 0.
      | Some cache -> float_of_int (read cache)
  in
  Obs.sample (name "decode-cache.hits") (cache_stat Ssx.Decode_cache.hits);
  Obs.sample (name "decode-cache.misses") (cache_stat Ssx.Decode_cache.misses);
  Obs.sample
    (name "decode-cache.invalidations")
    (cache_stat Ssx.Decode_cache.invalidations);
  t

let ticks t = Obs.counter_value t.tick_count
