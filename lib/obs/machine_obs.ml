type t = {
  tick_count : Obs.counter;
  executed : Obs.counter;
  interrupts : Obs.counter;
  nmis : Obs.counter;
  exceptions : Obs.counter;
  idle : Obs.counter;
  resets : Obs.counter;
}

let metric_name ~label base =
  match label with
  | "" -> "machine." ^ base
  | label -> Printf.sprintf "machine.%s{id=%s}" base label

(* Publish the accumulated plain-int deltas into the shared atomic
   registry and zero them.  This runs once per [Machine.run] /
   [Machine.tick], not per event — the batching that takes obs-enabled
   overhead from seven atomic increments per tick to (amortised)
   nothing. *)
let publish t (c : Ssx.Tick_counters.t) =
  if c.Ssx.Tick_counters.ticks > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.ticks t.tick_count;
    c.Ssx.Tick_counters.ticks <- 0
  end;
  if c.Ssx.Tick_counters.executed > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.executed t.executed;
    c.Ssx.Tick_counters.executed <- 0
  end;
  if c.Ssx.Tick_counters.interrupts > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.interrupts t.interrupts;
    c.Ssx.Tick_counters.interrupts <- 0
  end;
  if c.Ssx.Tick_counters.nmis > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.nmis t.nmis;
    c.Ssx.Tick_counters.nmis <- 0
  end;
  if c.Ssx.Tick_counters.exceptions > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.exceptions t.exceptions;
    c.Ssx.Tick_counters.exceptions <- 0
  end;
  if c.Ssx.Tick_counters.idle > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.idle t.idle;
    c.Ssx.Tick_counters.idle <- 0
  end;
  if c.Ssx.Tick_counters.resets > 0 then begin
    Obs.incr ~by:c.Ssx.Tick_counters.resets t.resets;
    c.Ssx.Tick_counters.resets <- 0
  end

let attach ?(label = "") machine =
  let name base = metric_name ~label base in
  let t =
    { tick_count = Obs.counter (name "ticks");
      executed = Obs.counter (name "executed");
      interrupts = Obs.counter (name "interrupts");
      nmis = Obs.counter (name "nmis");
      exceptions = Obs.counter (name "exceptions");
      idle = Obs.counter (name "idle");
      resets = Obs.counter (name "resets") }
  in
  let counters = Ssx.Machine.attach_tick_counters machine in
  Ssx.Tick_counters.set_flush counters (publish t);
  Obs.sample (name "steps") (fun () ->
      float_of_int (Ssx.Machine.ticks machine));
  let mem = Ssx.Machine.memory machine in
  Obs.sample (name "mem.writes") (fun () ->
      float_of_int (Ssx.Memory.write_count mem));
  Obs.sample (name "mem.rom-refusals") (fun () ->
      float_of_int (Ssx.Memory.rom_refusal_count mem));
  (* Re-read the cache (and block table) on every sample:
     [set_decode_cache] / [set_jit] may swap them out or in after
     attachment. *)
  let cache_stat read =
    fun () ->
      match Ssx.Machine.decode_cache machine with
      | None -> 0.
      | Some cache -> float_of_int (read cache)
  in
  Obs.sample (name "decode-cache.hits") (cache_stat Ssx.Decode_cache.hits);
  Obs.sample (name "decode-cache.misses") (cache_stat Ssx.Decode_cache.misses);
  Obs.sample
    (name "decode-cache.invalidations")
    (cache_stat Ssx.Decode_cache.invalidations);
  let jit_stat read =
    fun () ->
      match Ssx.Machine.jit machine with
      | None -> 0.
      | Some jit -> float_of_int (read jit)
  in
  Obs.sample (name "jit.blocks-built") (jit_stat Ssx.Block_compiler.built);
  Obs.sample
    (name "jit.retranslations")
    (jit_stat Ssx.Block_compiler.retranslations);
  Obs.sample (name "jit.block-ticks") (jit_stat Ssx.Block_compiler.block_ticks);
  t

let ticks t = Obs.counter_value t.tick_count
