(** Heartbeat capture device.

    Guests report liveness and progress by writing 16-bit values to a
    heartbeat port; the device timestamps each write with the machine
    tick.  Convergence analysis (see {!Ssx_stab.Convergence}) judges
    stabilization from this trace. *)

type sample = { tick : int; value : int }

type t

val default_port : int
(** Port 0x12. *)

val create : unit -> t

val attach : t -> ?port:int -> Ssx.Machine.t -> unit
(** Register the heartbeat's port handler on a machine, and its sample
    buffer with the machine's snapshot machinery
    ({!Ssx.Machine.add_resettable}) so snapshot restore rewinds it. *)

val samples : t -> sample list
(** All samples, oldest first. *)

val last : t -> sample option
val count : t -> int
val clear : t -> unit
