type t = { images : (string, int * string) Hashtbl.t }

let create () = { images = Hashtbl.create 8 }
let add store ~name ~base bytes = Hashtbl.replace store.images name (base, bytes)
let find store name = Hashtbl.find_opt store.images name

let install_at store mem ~base name =
  match Hashtbl.find_opt store.images name with
  | None -> raise Not_found
  | Some (_, bytes) -> Ssx.Memory.load_image mem ~base bytes

let install store mem name =
  match Hashtbl.find_opt store.images name with
  | None -> raise Not_found
  | Some (base, bytes) -> Ssx.Memory.load_image mem ~base bytes

let verify store mem name =
  match Hashtbl.find_opt store.images name with
  | None -> raise Not_found
  | Some (base, bytes) ->
    Ssx.Memory.dump mem ~base ~len:(String.length bytes) = bytes

let names store = Hashtbl.fold (fun name _ acc -> name :: acc) store.images []
