(** Periodic maskable-interrupt source (the timer/clock interrupt whose
    IDT entry §1 discusses).  Like the watchdog it is self-stabilizing:
    its countdown is clamped on every tick. *)

type t

val create : period:int -> vector:int -> t
val device : t -> Ssx.Device.t

val resettable : t -> unit -> unit -> unit
(** Snapshot hook covering the countdown and fired count (register with
    {!Ssx.Machine.add_resettable} alongside {!device}). *)

val corrupt : t -> int -> unit
val fired_count : t -> int
