(** Periodic maskable-interrupt source (the timer/clock interrupt whose
    IDT entry §1 discusses).  Like the watchdog it is self-stabilizing:
    its countdown is clamped on every tick. *)

type t

val create : period:int -> vector:int -> t
val device : t -> Ssx.Device.t
val corrupt : t -> int -> unit
val fired_count : t -> int
