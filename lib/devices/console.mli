(** Console output device.

    Captures bytes written by guest code to a designated port so that
    host-side monitors (and tests) can observe guest behaviour — the
    observable half of the paper's "legal execution" definition. *)

type t

val default_port : int
(** Port 0x10. *)

val create : unit -> t

val attach : t -> ?port:int -> Ssx.Machine.t -> unit
(** Register the console's port handler on a machine, and its buffer
    with the machine's snapshot machinery
    ({!Ssx.Machine.add_resettable}). *)

val contents : t -> string
(** Everything written so far, as text. *)

val clear : t -> unit
