type sample = { tick : int; value : int }

type t = {
  mutable samples : sample list; (* newest first *)
  mutable n : int;
}

let default_port = 0x12
let create () = { samples = []; n = 0 }

let attach hb ?(port = default_port) machine =
  let write _width value =
    hb.samples <-
      { tick = Ssx.Machine.ticks machine; value = Ssx.Word.mask value }
      :: hb.samples;
    hb.n <- hb.n + 1
  in
  Ssx.Machine.register_port machine ~port ~read:(fun _ -> 0) ~write;
  (* The sample buffer is part of a trial's observable state: snapshot
     restore must rewind it along with RAM (the list is immutable, so
     capturing the head suffices). *)
  Ssx.Machine.add_resettable machine (fun () ->
      let samples = hb.samples and n = hb.n in
      fun () ->
        hb.samples <- samples;
        hb.n <- n)

let samples hb = List.rev hb.samples
let last hb = match hb.samples with [] -> None | s :: _ -> Some s
let count hb = hb.n

let clear hb =
  hb.samples <- [];
  hb.n <- 0
