type t = {
  period : int;
  vector : int;
  mutable counter : int;
  mutable fired : int;
}

let create ~period ~vector =
  if period <= 0 then invalid_arg "Timer.create: period must be positive";
  { period; vector; counter = period; fired = 0 }

let tick timer cpu =
  if timer.counter > timer.period || timer.counter < 0 then
    timer.counter <- timer.period;
  if timer.counter <= 1 then begin
    timer.fired <- timer.fired + 1;
    Ssx.Cpu.raise_intr cpu timer.vector;
    timer.counter <- timer.period
  end
  else timer.counter <- timer.counter - 1

(* Same countdown shape as the watchdog: after the clamp, the next
   [counter - 1] ticks only decrement, so they form a quiescence window
   the quiet runner may batch (see {!Ssx.Device}). *)
let quiescent timer () =
  let c =
    if timer.counter > timer.period || timer.counter < 0 then timer.period
    else timer.counter
  in
  if c <= 1 then 0 else c - 1

let advance timer n =
  if timer.counter > timer.period || timer.counter < 0 then
    timer.counter <- timer.period;
  timer.counter <- timer.counter - n

let device timer =
  Ssx.Device.make ~name:"timer" ~quiescent:(quiescent timer)
    ~advance:(advance timer) ~tick:(tick timer) ()

let resettable timer () =
  let counter = timer.counter and fired = timer.fired in
  fun () ->
    timer.counter <- counter;
    timer.fired <- fired
let corrupt timer v = timer.counter <- v
let fired_count timer = timer.fired
