type target = Nmi_pin | Reset_pin

type t = {
  period : int;
  target : target;
  mutable counter : int;
  mutable fired : int;
}

let create ~period ~target =
  if period <= 0 then invalid_arg "Watchdog.create: period must be positive";
  { period; target; counter = period; fired = 0 }

let fire wd cpu =
  wd.fired <- wd.fired + 1;
  match wd.target with
  | Nmi_pin -> Ssx.Cpu.raise_nmi cpu
  | Reset_pin -> cpu.Ssx.Cpu.reset_pin <- true

let tick wd cpu =
  (* Clamp first: an arbitrarily corrupted register still yields a
     signal within one period. *)
  if wd.counter > wd.period || wd.counter < 0 then wd.counter <- wd.period;
  if wd.counter <= 1 then begin
    fire wd cpu;
    wd.counter <- wd.period
  end
  else wd.counter <- wd.counter - 1

let pet wd = wd.counter <- wd.period

(* Quiescence window for the block compiler's quiet runner: with the
   counter clamped into range, the next [counter - 1] ticks are pure
   decrements — no pin can be raised before the tick that reaches 1.
   Nothing can pet the watchdog mid-window ([pet] is wired to port I/O,
   which ends basic blocks), so [advance n] — clamp once, subtract [n]
   — lands on exactly the state [n] individual ticks would. *)
let quiescent wd () =
  let c = if wd.counter > wd.period || wd.counter < 0 then wd.period else wd.counter in
  if c <= 1 then 0 else c - 1

let advance wd n =
  if wd.counter > wd.period || wd.counter < 0 then wd.counter <- wd.period;
  wd.counter <- wd.counter - n

let device wd =
  Ssx.Device.make ~name:"watchdog" ~quiescent:(quiescent wd)
    ~advance:(advance wd) ~tick:(tick wd) ()

let resettable wd () =
  let counter = wd.counter and fired = wd.fired in
  fun () ->
    wd.counter <- counter;
    wd.fired <- fired
let counter wd = wd.counter
let corrupt wd v = wd.counter <- v
let period wd = wd.period
let fired_count wd = wd.fired
