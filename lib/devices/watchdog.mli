(** The self-stabilizing watchdog (§2).

    A countdown device wired to the processor's NMI pin (or, for the
    reinstall-and-restart scheme, the RESET pin).  Its only state is the
    countdown register, clamped to the period on every tick, so that
    {e starting from any state a signal is triggered within the desired
    interval time and no premature signal is triggered thereafter} —
    the paper's self-stabilization requirement for the watchdog itself. *)

type target = Nmi_pin | Reset_pin

type t

val create : period:int -> target:target -> t
(** A watchdog firing every [period] ticks.  [period] must be positive. *)

val pet : t -> unit
(** Reload the countdown (the conventional software-kicked watchdog
    discipline).  The paper's designs never pet: their watchdog fires
    unconditionally, because software healthy enough to pet reliably is
    exactly what cannot be assumed after a transient fault.  Exposed for
    the petted-watchdog baseline. *)

val device : t -> Ssx.Device.t
(** The pluggable device (register with {!Ssx.Machine.add_device}). *)

val resettable : t -> unit -> unit -> unit
(** Snapshot hook covering the countdown and fired count (register with
    {!Ssx.Machine.add_resettable} alongside {!device}). *)

val counter : t -> int
(** Current countdown value (observable state). *)

val corrupt : t -> int -> unit
(** Overwrite the countdown register — transient-fault injection.  The
    clamping on the next tick bounds the damage to one early signal. *)

val period : t -> int
val fired_count : t -> int
(** Number of signals raised since creation (for tests/experiments). *)
