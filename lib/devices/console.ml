type t = { buffer : Buffer.t }

let default_port = 0x10
let create () = { buffer = Buffer.create 256 }

let attach console ?(port = default_port) machine =
  let write _width value =
    Buffer.add_char console.buffer (Char.chr (value land 0xff))
  in
  Ssx.Machine.register_port machine ~port ~read:(fun _ -> 0) ~write;
  Ssx.Machine.add_resettable machine (fun () ->
      let contents = Buffer.contents console.buffer in
      fun () ->
        Buffer.clear console.buffer;
        Buffer.add_string console.buffer contents)

let contents console = Buffer.contents console.buffer
let clear console = Buffer.clear console.buffer
