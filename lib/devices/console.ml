type t = { buffer : Buffer.t }

let default_port = 0x10
let create () = { buffer = Buffer.create 256 }

let attach console ?(port = default_port) machine =
  let write _width value =
    Buffer.add_char console.buffer (Char.chr (value land 0xff))
  in
  Ssx.Machine.register_port machine ~port ~read:(fun _ -> 0) ~write

let contents console = Buffer.contents console.buffer
let clear console = Buffer.clear console.buffer
