(** Non-volatile image store.

    Models the paper's incorruptible code sources: the (EP)ROM holding
    the recovery procedures and the CD-ROM image the operating system is
    reinstalled from.  Images are named golden byte strings; [install]
    copies one into machine memory like a DMA transfer (host-level),
    while guest-level reinstalls copy from a ROM-mapped copy with
    [rep movsb] as in Figure 1. *)

type t

val create : unit -> t

val add : t -> name:string -> base:int -> string -> unit
(** Register a golden image with its home physical address. *)

val find : t -> string -> (int * string) option
(** [(base, bytes)] of an image. *)

val install : t -> Ssx.Memory.t -> string -> unit
(** Copy an image to its home address (bypasses ROM protection, so it
    can also initialise ROM at boot).
    @raise Not_found for unknown image names. *)

val install_at : t -> Ssx.Memory.t -> base:int -> string -> unit
(** Copy an image to an arbitrary address. *)

val verify : t -> Ssx.Memory.t -> string -> bool
(** Whether memory currently matches the golden image byte-for-byte. *)

val names : t -> string list
