(** Work-sharing domain pool.

    Campaigns run many independent, index-keyed trials; this pool
    shards them across [min (ncores, jobs, n)] domains via an atomic
    task counter (ncores = [Domain.recommended_domain_count ()]).
    Results are returned in task order regardless of which domain ran
    which task or in what interleaving, so campaign output is
    reproducible: identical for [jobs:1] and [jobs:k].

    If any task raises, the remaining tasks are abandoned, all domains
    are joined, and the first recorded exception is re-raised with its
    backtrace. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], overridden by the
    [SSOS_JOBS] environment variable when set and non-empty.  Raises
    [Invalid_argument] if [SSOS_JOBS] is set but not a positive
    integer. *)

val run : ?oversubscribe:bool -> ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ?jobs n f] computes [[| f 0; …; f (n-1) |]], evaluating the
    calls on up to [jobs] domains.  [f] must be safe to call from
    multiple domains concurrently (distinct indices only — each index
    is evaluated exactly once).

    Requests beyond the machine's core count are clamped: extra
    domains cannot add parallelism but do stall every stop-the-world
    minor collection behind descheduled domains.
    [~oversubscribe:true] disables the clamp; the differential tests
    use it to force genuinely concurrent domains even on small
    machines. *)

val run_with :
  ?oversubscribe:bool ->
  ?jobs:int -> init:(unit -> 's) -> int -> ('s -> int -> 'a) -> 'a array
(** [run_with ?jobs ~init n f] is {!run} with per-worker state: each
    worker domain calls [init] at most once — lazily, on winning its
    first task — and passes the result to every [f] call it executes.
    Used for the snapshot-reset trial engine, where the state is a
    built machine plus its warmed-up snapshot.  Tasks run on the same
    worker share state, so [f] must leave the state reusable (e.g. by
    restoring the snapshot first). *)

(** {1 Phase-synchronized workers}

    The task pool above runs {e independent} trials; sharded cluster
    stepping instead needs a fixed worker set advancing through the
    same phases in lockstep.  {!Barrier.await} is the rendezvous:
    crossing it is a happens-before edge between all parties, so plain
    (non-atomic) writes made before the barrier are visible to every
    party after it — the property the conservative-DES cluster stepper
    relies on to exchange in-flight messages (DESIGN.md §4h). *)

module Barrier : sig
  type t

  val create : int -> t
  (** A reusable sense-reversing barrier for the given number of
      parties (at least 1; a 1-party barrier is free and never
      blocks). *)

  val parties : t -> int

  val await : t -> unit
  (** Block until all parties have called {!await}, then release them
      together.  Reusable immediately: the implementation is
      sense-reversing, so a fast party may re-enter the next round
      while slow parties are still leaving the previous one. *)
end

val run_shards : shards:int -> (int -> 'a) -> 'a array
(** [run_shards ~shards f] runs [f 0 … f (shards-1)] on exactly
    [shards] concurrent domains (the calling domain is the last) and
    returns the results in shard order.  No work stealing and no
    core-count clamping — the workers are expected to rendezvous on a
    {!Barrier}, which requires precisely the parties asked for.

    [f] must not raise: a worker that dies can never reach the barrier
    again and would hang its peers.  Callers catch exceptions inside
    their phase bodies and turn them into a poison flag checked at
    phase boundaries. *)
