(* Work-sharing domain pool for fault-injection campaigns.

   Trials are numbered tasks; idle domains steal the next index from a
   shared atomic counter, so a domain that draws short trials simply
   takes more of them.  Results land in a pre-sized array cell owned by
   exactly one writer, and [Domain.join] orders every write before the
   final read, so the caller always sees results in task order — the
   outcome of a campaign is a function of the seeds alone, never of the
   interleaving. *)

let default_jobs () =
  match Sys.getenv_opt "SSOS_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "SSOS_JOBS must be a positive integer (got %S)" s))

(* Domains beyond the core count are pure loss: OCaml's minor
   collections are stop-the-world across domains, and when domains
   outnumber cores every collection waits for descheduled domains to
   reach a safepoint (measured ~2.7x per-trial slowdown at 4 domains
   on 1 core).  So the effective worker count is min(ncores, jobs, n)
   unless the caller explicitly opts into oversubscription — the
   differential tests do, to exercise real cross-domain execution on
   any machine. *)
let resolve_jobs ~oversubscribe jobs n =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs =
    if oversubscribe then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  min jobs n

(* Each worker materialises its state with [init] at most once, and
   only when it actually wins a task: spawning is cheap, but campaign
   state (a built machine plus its warmed-up snapshot) is not, so a
   domain that arrives after the queue has drained must not pay for
   one. *)
let run_with ?(oversubscribe = false) ?jobs ~init n f =
  if n <= 0 then [||]
  else begin
    let jobs = resolve_jobs ~oversubscribe jobs n in
    (* Per-worker throughput counters ([pool.worker{id=k}.tasks]) are
       registered only when observability is on; they count completed
       tasks per domain, which is the one campaign quantity that *does*
       legitimately vary with the interleaving. *)
    let task_counters =
      if Ssos_obs.Obs.enabled () then begin
        Ssos_obs.Obs.set_int (Ssos_obs.Obs.gauge "pool.jobs") jobs;
        Some
          (Array.init jobs (fun w ->
               Ssos_obs.Obs.counter
                 (Printf.sprintf "pool.worker{id=%d}.tasks" w)))
      end
      else None
    in
    let count_task wid =
      match task_counters with
      | Some counters -> Ssos_obs.Obs.incr counters.(wid)
      | None -> ()
    in
    let results = Array.make n None in
    let fill_sequentially () =
      let state = init () in
      for i = 0 to n - 1 do
        results.(i) <- Some (f state i);
        count_task 0
      done
    in
    if jobs = 1 then fill_sequentially ()
    else begin
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker wid =
        let state = ref None in
        let force_state () =
          match !state with
          | Some s -> s
          | None ->
            let s = init () in
            state := Some s;
            s
        in
        let rec loop () =
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f (force_state ()) i with
              | v ->
                results.(i) <- Some v;
                count_task wid
              | exception exn ->
                let bt = Printexc.get_raw_backtrace () in
                (* Keep the first failure; losing CAS races just means
                   someone else's exception is reported instead. *)
                ignore (Atomic.compare_and_set failure None (Some (exn, bt))));
              loop ()
            end
          end
        in
        loop ()
      in
      let spawned =
        Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker w))
      in
      (* The calling domain is worker number [jobs]. *)
      worker (jobs - 1);
      Array.iter Domain.join spawned;
      match Atomic.get failure with
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end;
    Array.map
      (function Some v -> v | None -> assert false (* all tasks ran *))
      results
  end

let run ?oversubscribe ?jobs n f =
  run_with ?oversubscribe ?jobs ~init:(fun () -> ()) n (fun () i -> f i)

(* --- phase-synchronized workers -------------------------------------- *)

(* The work-sharing pool above is for *independent* tasks: any domain
   may take any index, and nobody waits for anybody.  Sharded cluster
   stepping needs the opposite shape — a fixed set of workers that
   advance through the same sequence of phases in lockstep, with all
   of phase [p]'s writes visible to every worker before any of them
   starts phase [p+1].  That is a classic sense-reversing barrier. *)

module Barrier = struct
  type t = {
    parties : int;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable count : int;
    mutable sense : bool;
  }

  let create parties =
    if parties < 1 then invalid_arg "Pool.Barrier.create: parties";
    { parties; mutex = Mutex.create (); cond = Condition.create ();
      count = 0; sense = false }

  let parties t = t.parties

  (* Sense-reversing, blocking.  A blocking barrier instead of a spin:
     with more parties than cores (always, on a single-core host) a
     spinner burns the rest of its timeslice waiting for a party the
     scheduler has not run yet, turning each rendezvous into
     milliseconds; [Condition.wait] hands the core over immediately.
     The mutex also makes crossing the barrier a happens-before edge
     between all parties — plain writes made before [await] (the
     outbox exchange in [Ssos_net.Cluster]) are visible after it,
     exactly like [Domain.join] is for the task pool. *)
  let await t =
    if t.parties > 1 then begin
      Mutex.lock t.mutex;
      let target = not t.sense in
      t.count <- t.count + 1;
      if t.count = t.parties then begin
        t.count <- 0;
        t.sense <- target;
        Condition.broadcast t.cond
      end
      else
        while t.sense <> target do
          Condition.wait t.cond t.mutex
        done;
      Mutex.unlock t.mutex
    end
end

(* Spawn exactly [shards] workers — one per shard index, the calling
   domain included as the last — and return their results in shard
   order.  Unlike {!run} there is no work stealing and no clamping:
   the workers are expected to rendezvous on a {!Barrier}, so the
   caller gets precisely the parties it asked for or the whole scheme
   deadlocks.  [f] must not raise: a worker that dies mid-phase can
   never reach the barrier again and would hang its peers, so callers
   wrap their phase bodies and turn exceptions into a poison flag
   checked at phase boundaries (see {!Ssos_net.Cluster.run_sharded}). *)
let run_shards ~shards f =
  if shards < 1 then invalid_arg "Pool.run_shards: shards";
  if shards = 1 then [| f 0 |]
  else begin
    let results = Array.make shards None in
    let spawned =
      Array.init (shards - 1) (fun k ->
          Domain.spawn (fun () -> results.(k) <- Some (f k)))
    in
    results.(shards - 1) <- Some (f (shards - 1));
    Array.iter Domain.join spawned;
    Array.map
      (function Some v -> v | None -> assert false (* joined *))
      results
  end
