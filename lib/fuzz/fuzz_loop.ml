module I = Ssx.Instruction
module Rng = Ssx_faults.Rng

type divergence = {
  program : Gen.program;
  original : Gen.program;
  seed : int64;
  shard : int;
  iter : int;
  tick : int;
  detail : string;
}

type summary = {
  programs : int;
  total_ticks : int;
  corpus_size : int;
  coverage_points : int;
  divergences : divergence list;
}

(* --- the trial image -------------------------------------------------
   Every IDT vector (and the hardwired NMI entry) points at a handler
   segment whose first instruction is [iret], so interrupts, [int n]
   and faults all service and return instead of wandering into zeroed
   memory.  Code loads at 64 KiB (segment 0x1000); the stack starts
   below it at 0000:F000. *)

let trial_code_base = 0x10000
let code_seg = 0x1000
let handler_seg = 0x0600
let handler_phys = handler_seg * 16
let nmi_idt_base = 0xF0000

let base_image =
  lazy
    (let b = Bytes.make Ssx.Memory.size '\000' in
     let set_entry base vector =
       let e = base + (4 * vector) in
       (* offset 0, segment [handler_seg], little-endian words *)
       Bytes.set b e '\x00';
       Bytes.set b (e + 1) '\x00';
       Bytes.set b (e + 2) (Char.chr (handler_seg land 0xff));
       Bytes.set b (e + 3) (Char.chr ((handler_seg lsr 8) land 0xff))
     in
     for v = 0 to 255 do
       set_entry 0 v
     done;
     set_entry nmi_idt_base 2;
     Bytes.set b handler_phys '\x44' (* iret *);
     Bytes.unsafe_to_string b)

(* --- trial state reset ------------------------------------------------ *)

let reset_machine m (p : Gen.program) =
  let mem = Ssx.Machine.memory m in
  Ssx.Memory.restore_image mem (Lazy.force base_image);
  Ssx.Memory.load_image mem ~base:trial_code_base p.Gen.code;
  let cpu = Ssx.Machine.cpu m in
  let r = cpu.Ssx.Cpu.regs in
  r.Ssx.Registers.ax <- 0;
  r.Ssx.Registers.bx <- 0;
  r.Ssx.Registers.cx <- 0;
  r.Ssx.Registers.dx <- 0;
  r.Ssx.Registers.si <- 0;
  r.Ssx.Registers.di <- 0;
  r.Ssx.Registers.sp <- 0xF000;
  r.Ssx.Registers.bp <- 0;
  r.Ssx.Registers.cs <- code_seg;
  r.Ssx.Registers.ds <- code_seg;
  r.Ssx.Registers.es <- code_seg;
  r.Ssx.Registers.ss <- 0;
  r.Ssx.Registers.fs <- 0;
  r.Ssx.Registers.gs <- 0;
  r.Ssx.Registers.ip <- 0;
  r.Ssx.Registers.psw <- 0;
  r.Ssx.Registers.nmi_counter <- 0;
  cpu.Ssx.Cpu.idtr <- 0;
  cpu.Ssx.Cpu.nmi_pin <- false;
  cpu.Ssx.Cpu.in_nmi <- false;
  cpu.Ssx.Cpu.intr <- None;
  cpu.Ssx.Cpu.reset_pin <- false;
  cpu.Ssx.Cpu.halted <- false;
  cpu.Ssx.Cpu.steps <- 0

let reset_ref (o : Ref_interp.t) (p : Gen.program) =
  Bytes.blit_string (Lazy.force base_image) 0 o.Ref_interp.mem 0
    Ssx.Memory.size;
  Bytes.blit_string p.Gen.code 0 o.Ref_interp.mem trial_code_base
    (String.length p.Gen.code);
  o.Ref_interp.ax <- 0;
  o.Ref_interp.bx <- 0;
  o.Ref_interp.cx <- 0;
  o.Ref_interp.dx <- 0;
  o.Ref_interp.si <- 0;
  o.Ref_interp.di <- 0;
  o.Ref_interp.sp <- 0xF000;
  o.Ref_interp.bp <- 0;
  o.Ref_interp.cs <- code_seg;
  o.Ref_interp.ds <- code_seg;
  o.Ref_interp.es <- code_seg;
  o.Ref_interp.ss <- 0;
  o.Ref_interp.fs <- 0;
  o.Ref_interp.gs <- 0;
  o.Ref_interp.ip <- 0;
  o.Ref_interp.psw <- 0;
  o.Ref_interp.nmi_counter <- 0;
  o.Ref_interp.idtr <- 0;
  o.Ref_interp.nmi_pin <- false;
  o.Ref_interp.in_nmi <- false;
  o.Ref_interp.intr <- None;
  o.Ref_interp.reset_pin <- false;
  o.Ref_interp.halted <- false;
  o.Ref_interp.steps <- 0

let prepare_machine ?(decode_cache = true) ?jit p =
  let m = Ssx.Machine.create ~decode_cache ?jit () in
  reset_machine m p;
  m

(* --- lock-step comparison --------------------------------------------- *)

let event_matches (m_ev : Ssx.Cpu.event) (r_ev : Ref_interp.event) =
  match (m_ev, r_ev) with
  | Ssx.Cpu.Executed a, Ref_interp.Exec b -> I.equal a b
  | Ssx.Cpu.Took_interrupt a, Ref_interp.Interrupt b ->
    a.vector = b.vector && a.nmi = b.nmi
  | Ssx.Cpu.Took_exception a, Ref_interp.Exception b -> a = b
  | Ssx.Cpu.Halted_idle, Ref_interp.Idle -> true
  | Ssx.Cpu.Did_reset, Ref_interp.Reset -> true
  | _ -> false

let pp_cpu_event ppf = function
  | Ssx.Cpu.Executed i -> Format.fprintf ppf "exec %a" I.pp i
  | Ssx.Cpu.Took_interrupt { vector; nmi } ->
    Format.fprintf ppf "interrupt %d%s" vector (if nmi then " (nmi)" else "")
  | Ssx.Cpu.Took_exception v -> Format.fprintf ppf "exception %d" v
  | Ssx.Cpu.Halted_idle -> Format.fprintf ppf "idle"
  | Ssx.Cpu.Did_reset -> Format.fprintf ppf "reset"

(* First mismatching register/control field, if any.  Runs every tick
   of every trial: the matching case must not allocate, so this is an
   open-coded compare chain rather than a field list. *)
let state_mismatch m (o : Ref_interp.t) =
  let cpu = Ssx.Machine.cpu m in
  let r = cpu.Ssx.Cpu.regs in
  if r.Ssx.Registers.ax <> o.Ref_interp.ax then
    Some ("ax", r.Ssx.Registers.ax, o.Ref_interp.ax)
  else if r.Ssx.Registers.bx <> o.Ref_interp.bx then
    Some ("bx", r.Ssx.Registers.bx, o.Ref_interp.bx)
  else if r.Ssx.Registers.cx <> o.Ref_interp.cx then
    Some ("cx", r.Ssx.Registers.cx, o.Ref_interp.cx)
  else if r.Ssx.Registers.dx <> o.Ref_interp.dx then
    Some ("dx", r.Ssx.Registers.dx, o.Ref_interp.dx)
  else if r.Ssx.Registers.si <> o.Ref_interp.si then
    Some ("si", r.Ssx.Registers.si, o.Ref_interp.si)
  else if r.Ssx.Registers.di <> o.Ref_interp.di then
    Some ("di", r.Ssx.Registers.di, o.Ref_interp.di)
  else if r.Ssx.Registers.sp <> o.Ref_interp.sp then
    Some ("sp", r.Ssx.Registers.sp, o.Ref_interp.sp)
  else if r.Ssx.Registers.bp <> o.Ref_interp.bp then
    Some ("bp", r.Ssx.Registers.bp, o.Ref_interp.bp)
  else if r.Ssx.Registers.cs <> o.Ref_interp.cs then
    Some ("cs", r.Ssx.Registers.cs, o.Ref_interp.cs)
  else if r.Ssx.Registers.ds <> o.Ref_interp.ds then
    Some ("ds", r.Ssx.Registers.ds, o.Ref_interp.ds)
  else if r.Ssx.Registers.es <> o.Ref_interp.es then
    Some ("es", r.Ssx.Registers.es, o.Ref_interp.es)
  else if r.Ssx.Registers.ss <> o.Ref_interp.ss then
    Some ("ss", r.Ssx.Registers.ss, o.Ref_interp.ss)
  else if r.Ssx.Registers.fs <> o.Ref_interp.fs then
    Some ("fs", r.Ssx.Registers.fs, o.Ref_interp.fs)
  else if r.Ssx.Registers.gs <> o.Ref_interp.gs then
    Some ("gs", r.Ssx.Registers.gs, o.Ref_interp.gs)
  else if r.Ssx.Registers.ip <> o.Ref_interp.ip then
    Some ("ip", r.Ssx.Registers.ip, o.Ref_interp.ip)
  else if r.Ssx.Registers.psw <> o.Ref_interp.psw then
    Some ("psw", r.Ssx.Registers.psw, o.Ref_interp.psw)
  else if r.Ssx.Registers.nmi_counter <> o.Ref_interp.nmi_counter then
    Some
      ("nmi_counter", r.Ssx.Registers.nmi_counter, o.Ref_interp.nmi_counter)
  else if cpu.Ssx.Cpu.halted <> o.Ref_interp.halted then
    Some
      ( "halted",
        Bool.to_int cpu.Ssx.Cpu.halted,
        Bool.to_int o.Ref_interp.halted )
  else if cpu.Ssx.Cpu.in_nmi <> o.Ref_interp.in_nmi then
    Some
      ( "in_nmi",
        Bool.to_int cpu.Ssx.Cpu.in_nmi,
        Bool.to_int o.Ref_interp.in_nmi )
  else if cpu.Ssx.Cpu.nmi_pin <> o.Ref_interp.nmi_pin then
    Some
      ( "nmi_pin",
        Bool.to_int cpu.Ssx.Cpu.nmi_pin,
        Bool.to_int o.Ref_interp.nmi_pin )
  else None

let memory_mismatch m (o : Ref_interp.t) =
  (* Zero-copy: one memcmp of the live backing store against the
     oracle's image, instead of dumping a 1 MiB copy per trial. *)
  let image = Ssx.Memory.unsafe_contents (Ssx.Machine.memory m) in
  let oracle = o.Ref_interp.mem in
  if Bytes.equal image oracle then None
  else begin
    let addr = ref 0 in
    while Bytes.unsafe_get image !addr = Bytes.unsafe_get oracle !addr do
      incr addr
    done;
    Some
      (Printf.sprintf "memory at 0x%05X: machine 0x%02X, oracle 0x%02X"
         !addr
         (Char.code (Bytes.get image !addr))
         (Char.code (Bytes.get oracle !addr)))
  end

(* --- coverage signature ----------------------------------------------
   An execution signature cheap enough to compute every tick: the
   opcode byte of the executed instruction (interrupt/exception/idle/
   reset get ids above the byte range) paired with its predecessor,
   plus the transition of the 7 architectural flag bits. *)

let id_interrupt_nmi = 256
let id_interrupt = 257
let id_exception = 258
let id_idle = 259
let id_reset = 260
let id_start = 261
let id_count = 262
let bigram_bits = id_count * id_count
let flag_bits = 1 lsl 14
let signature_bits = bigram_bits + flag_bits

(* [fetch_byte] is the opcode byte the oracle is about to fetch
   (pre-tick cs:ip), which for an [Executed] event is exactly the first
   byte {!Ssx.Codec.encode} would emit — read from memory instead of
   re-encoding the instruction every tick. *)
let event_id ~fetch_byte = function
  | Ssx.Cpu.Executed _ -> fetch_byte
  | Ssx.Cpu.Took_interrupt { nmi = true; _ } -> id_interrupt_nmi
  | Ssx.Cpu.Took_interrupt _ -> id_interrupt
  | Ssx.Cpu.Took_exception _ -> id_exception
  | Ssx.Cpu.Halted_idle -> id_idle
  | Ssx.Cpu.Did_reset -> id_reset

(* The 7 flag bits the ISA defines, squeezed together. *)
let compress_psw psw =
  (psw land 1)
  lor ((psw lsr 2) land 1 lsl 1)
  lor ((psw lsr 6) land 1 lsl 2)
  lor ((psw lsr 7) land 1 lsl 3)
  lor ((psw lsr 9) land 1 lsl 4)
  lor ((psw lsr 10) land 1 lsl 5)
  lor ((psw lsr 11) land 1 lsl 6)

type coverage = { bits : Bytes.t; mutable points : int }

let coverage_create () =
  { bits = Bytes.make ((signature_bits + 7) / 8) '\000'; points = 0 }

(* Returns how many of [indices.(0 .. n-1)] were new, setting them. *)
let coverage_merge cov indices n =
  let fresh = ref 0 in
  for k = 0 to n - 1 do
    let i = Array.unsafe_get indices k in
    let cell = i lsr 3 and bit = 1 lsl (i land 7) in
    let old = Char.code (Bytes.get cov.bits cell) in
    if old land bit = 0 then begin
      Bytes.set cov.bits cell (Char.chr (old lor bit));
      incr fresh
    end
  done;
  cov.points <- cov.points + !fresh;
  !fresh

(* --- one differential trial ------------------------------------------- *)

type trial = {
  failure : (int * string) option;
  indices : int array;  (* signature indices, 2 per clean tick *)
  n_indices : int;
}

let run_trial m o (p : Gen.program) =
  reset_machine m p;
  reset_ref o p;
  let cpu = Ssx.Machine.cpu m in
  let schedule = ref p.Gen.schedule in
  (* One flat signature buffer per trial (2 slots per clean tick)
     instead of two cons cells per tick. *)
  let indices = Array.make (2 * p.Gen.steps) 0 in
  let n_indices = ref 0 in
  let prev_id = ref id_start in
  let prev_flags = ref 0 in
  let failure = ref None in
  let tick = ref 0 in
  while !failure = None && !tick < p.Gen.steps do
    (match !schedule with
    | next :: rest when next = !tick ->
      Ssx.Cpu.raise_nmi cpu;
      Ref_interp.raise_nmi o;
      schedule := rest
    | _ -> ());
    let fetch_byte =
      Char.code
        (Bytes.unsafe_get o.Ref_interp.mem
           (Ssx.Addr.physical ~seg:o.Ref_interp.cs ~off:o.Ref_interp.ip))
    in
    let m_ev = Ssx.Machine.tick m in
    let r_ev = Ref_interp.step o in
    if not (event_matches m_ev r_ev) then
      failure :=
        Some
          ( !tick,
            Format.asprintf "event: machine %a, oracle %a" pp_cpu_event m_ev
              Ref_interp.pp_event r_ev )
    else begin
      (match state_mismatch m o with
      | Some (name, mv, ov) ->
        failure :=
          Some
            ( !tick,
              Format.asprintf "%s after %a: machine 0x%04X, oracle 0x%04X"
                name pp_cpu_event m_ev mv ov )
      | None -> ());
      let id = event_id ~fetch_byte m_ev in
      indices.(!n_indices) <- (!prev_id * id_count) + id;
      let flags = compress_psw cpu.Ssx.Cpu.regs.Ssx.Registers.psw in
      indices.(!n_indices + 1) <-
        bigram_bits + ((!prev_flags lsl 7) lor flags);
      n_indices := !n_indices + 2;
      prev_id := id;
      prev_flags := flags
    end;
    incr tick
  done;
  (match !failure with
  | None -> (
    match memory_mismatch m o with
    | Some detail -> failure := Some (p.Gen.steps, detail)
    | None -> ())
  | Some _ -> ());
  { failure = !failure; indices; n_indices = !n_indices }

let run_program ?(decode_cache = true) ?jit p =
  let m = Ssx.Machine.create ~decode_cache ?jit () in
  let o = Ref_interp.create () in
  (run_trial m o p).failure

(* --- shrinking -------------------------------------------------------- *)

let shrink_budget = 800

let drop_block code i n =
  String.sub code 0 i ^ String.sub code (i + n) (String.length code - i - n)

let shrink ~reproduces p =
  let evals = ref 0 in
  let try_p candidate =
    if !evals >= shrink_budget then false
    else begin
      incr evals;
      reproduces candidate
    end
  in
  (* Remove blocks at halving granularity while the divergence holds. *)
  let best = ref p in
  let block = ref (max 1 (String.length p.Gen.code / 2)) in
  while !block >= 1 do
    let i = ref 0 in
    while !i + !block <= String.length !best.Gen.code do
      let code = drop_block !best.Gen.code !i !block in
      if String.length code > 0 then begin
        let candidate = { !best with Gen.code } in
        if try_p candidate then best := candidate else i := !i + !block
      end
      else i := !i + !block
    done;
    block := if !block = 1 then 0 else !block / 2
  done;
  (* Normalise surviving bytes toward nop then zero. *)
  let code = Bytes.of_string !best.Gen.code in
  for i = 0 to Bytes.length code - 1 do
    let original = Bytes.get code i in
    List.iter
      (fun replacement ->
        if Bytes.get code i = original && original <> replacement then begin
          Bytes.set code i replacement;
          let candidate =
            { !best with Gen.code = Bytes.to_string code }
          in
          if try_p candidate then best := candidate
          else Bytes.set code i original
        end)
      [ '\x70'; '\x00' ]
  done;
  (* Thin the NMI schedule. *)
  let rec thin_schedule () =
    let sched = !best.Gen.schedule in
    let dropped =
      List.find_opt
        (fun t ->
          let candidate =
            { !best with
              Gen.schedule = List.filter (fun t' -> t' <> t) sched }
          in
          if try_p candidate then begin
            best := candidate;
            true
          end
          else false)
        sched
    in
    if dropped <> None then thin_schedule ()
  in
  thin_schedule ();
  !best

(* --- reproducers ------------------------------------------------------ *)

let reproducer_text d =
  let buf = Buffer.create 1024 in
  let p = d.program in
  Buffer.add_string buf "; ssx16 differential fuzzer reproducer\n";
  Buffer.add_string buf
    (Printf.sprintf "; seed: 0x%016Lx  shard: %d  iter: %d\n" d.seed d.shard
       d.iter);
  Buffer.add_string buf
    (Printf.sprintf "; divergence at tick %d: %s\n" d.tick d.detail);
  Buffer.add_string buf (Printf.sprintf "; steps: %d\n" p.Gen.steps);
  Buffer.add_string buf
    (Printf.sprintf "; schedule:%s\n"
       (String.concat ""
          (List.map (fun t -> Printf.sprintf " %d" t) p.Gen.schedule)));
  Buffer.add_string buf "code:\n";
  (* One db line per eight bytes, each line's disassembly-at-offset-0
     view appended as a comment for the human reader. *)
  let len = String.length p.Gen.code in
  let i = ref 0 in
  while !i < len do
    let n = min 8 (len - !i) in
    let bytes =
      String.concat ", "
        (List.init n (fun k ->
             Printf.sprintf "0x%02X" (Char.code p.Gen.code.[!i + k])))
    in
    Buffer.add_string buf (Printf.sprintf "  db %s\n" bytes);
    i := !i + n
  done;
  Buffer.add_string buf ";\n; linear disassembly from offset 0:\n";
  List.iter
    (fun entry ->
      Buffer.add_string buf
        (Format.asprintf "; %a\n" Ssx_asm.Disasm.pp_entry entry))
    (Ssx_asm.Disasm.disassemble p.Gen.code);
  Buffer.contents buf

let header_int text key =
  let prefix = "; " ^ key ^ ":" in
  let lines = String.split_on_char '\n' text in
  match
    List.find_opt (fun l -> String.length l >= String.length prefix
                            && String.sub l 0 (String.length prefix) = prefix)
      lines
  with
  | None -> None
  | Some line ->
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))

let program_of_reproducer text =
  let steps =
    match header_int text "steps" with
    | Some s -> int_of_string (List.hd (String.split_on_char ' ' s))
    | None -> failwith "reproducer: missing '; steps:' header"
  in
  let schedule =
    match header_int text "schedule" with
    | None -> []
    | Some s ->
      String.split_on_char ' ' s
      |> List.filter (fun tok -> tok <> "")
      |> List.map int_of_string
  in
  let image = Ssx_asm.Assemble.assemble text in
  { Gen.code = image.Ssx_asm.Assemble.bytes; schedule; steps }

let replay ?jit text = run_program ?jit (program_of_reproducer text)

(* --- the campaign ------------------------------------------------------ *)

(* Shard count is a function of the iteration budget alone, so the
   division of work — and therefore every per-shard random stream — is
   independent of the jobs setting. *)
let shard_count iters = max 1 (min 32 ((iters + 249) / 250))

let max_corpus = 512
let max_divergences_per_shard = 5

(* Corpus entries are keyed by a digest of the whole program — code,
   NMI schedule, step budget — so a mutation that reproduces an
   existing member byte-for-byte can never occupy a second slot of the
   bounded corpus. *)
let corpus_key (p : Gen.program) =
  let d = Ssx.Digest.create () in
  Ssx.Digest.add_string d p.Gen.code;
  List.iter (Ssx.Digest.add_int24 d) p.Gen.schedule;
  Ssx.Digest.add_int24 d p.Gen.steps;
  Ssx.Digest.to_hex d

type shard_result = {
  sh_programs : int;
  sh_ticks : int;
  sh_corpus : Gen.program list;
  sh_indices : int array;
  sh_divergences : divergence list;
}

let run_shard ?jit ~seed ~shard ~iters () =
  let rng = Rng.create (Rng.derive seed shard) in
  let m = Ssx.Machine.create ~decode_cache:true ?jit () in
  let o = Ref_interp.create () in
  let cov = coverage_create () in
  let corpus = ref [||] in
  let corpus_seen = Hashtbl.create 64 in
  let divergences = ref [] in
  let ticks = ref 0 in
  for iter = 0 to iters - 1 do
    let p =
      if Array.length !corpus > 0 && Rng.int rng 3 < 2 then
        Gen.mutate rng !corpus.(Rng.int rng (Array.length !corpus))
      else Gen.generate rng
    in
    let trial = run_trial m o p in
    ticks := !ticks + p.Gen.steps;
    (match trial.failure with
    | Some (tick, detail)
      when List.length !divergences < max_divergences_per_shard ->
      let reproduces candidate = (run_trial m o candidate).failure <> None in
      let shrunk = shrink ~reproduces p in
      let tick, detail =
        match (run_trial m o shrunk).failure with
        | Some (t, d) -> (t, d)
        | None -> (tick, detail)
      in
      divergences :=
        { program = shrunk; original = p; seed; shard; iter; tick; detail }
        :: !divergences
    | Some _ | None -> ());
    if trial.failure = None && coverage_merge cov trial.indices trial.n_indices > 0
    then
      if Array.length !corpus < max_corpus then begin
        let key = corpus_key p in
        if not (Hashtbl.mem corpus_seen key) then begin
          Hashtbl.add corpus_seen key ();
          corpus := Array.append !corpus [| p |]
        end
      end
  done;
  (* Report the lit coverage bits as indices for the cross-shard merge. *)
  let indices = ref [] in
  Bytes.iteri
    (fun cell c ->
      let c = Char.code c in
      if c <> 0 then
        for bit = 0 to 7 do
          if c land (1 lsl bit) <> 0 then indices := ((cell lsl 3) + bit) :: !indices
        done)
    cov.bits;
  (* Per-shard throughput accounting (observability only; the summary
     is assembled from the returned record, so campaign results stay
     bit-identical with metrics on or off).  Together with the pool's
     [pool.jobs] gauge and [pool.worker{id=k}.tasks] counters this
     shows where campaign time went when jobs scaling looks flat. *)
  if Ssos_obs.Obs.enabled () then begin
    Ssos_obs.Obs.incr ~by:iters
      (Ssos_obs.Obs.counter
         (Printf.sprintf "fuzz.shard{id=%d}.programs" shard));
    Ssos_obs.Obs.incr ~by:!ticks
      (Ssos_obs.Obs.counter (Printf.sprintf "fuzz.shard{id=%d}.ticks" shard))
  end;
  { sh_programs = iters;
    sh_ticks = !ticks;
    sh_corpus = Array.to_list !corpus;
    sh_indices = Array.of_list !indices;
    sh_divergences = List.rev !divergences }

let run ?jobs ?jit ~seed ~iters () =
  let shards = shard_count iters in
  let per_shard = iters / shards and extra = iters mod shards in
  let results =
    Pool.run ?jobs shards (fun shard ->
        let iters = per_shard + if shard < extra then 1 else 0 in
        run_shard ?jit ~seed ~shard ~iters ())
  in
  let cov = coverage_create () in
  let programs = ref 0 and ticks = ref 0 and corpus = ref 0 in
  let divergences = ref [] in
  Array.iter
    (fun r ->
      programs := !programs + r.sh_programs;
      ticks := !ticks + r.sh_ticks;
      corpus := !corpus + List.length r.sh_corpus;
      ignore (coverage_merge cov r.sh_indices (Array.length r.sh_indices));
      divergences := !divergences @ r.sh_divergences)
    results;
  let summary =
    { programs = !programs;
      total_ticks = !ticks;
      corpus_size = !corpus;
      coverage_points = cov.points;
      divergences = !divergences }
  in
  (* Published after the summary is assembled, so the result is
     bit-identical with metrics on or off. *)
  if Ssos_obs.Obs.enabled () then begin
    Ssos_obs.Obs.incr ~by:summary.programs
      (Ssos_obs.Obs.counter "fuzz.programs");
    Ssos_obs.Obs.incr ~by:summary.total_ticks
      (Ssos_obs.Obs.counter "fuzz.ticks");
    Ssos_obs.Obs.incr
      ~by:(List.length summary.divergences)
      (Ssos_obs.Obs.counter "fuzz.divergences");
    Ssos_obs.Obs.set_int
      (Ssos_obs.Obs.gauge "fuzz.corpus-size")
      summary.corpus_size;
    Ssos_obs.Obs.set_int
      (Ssos_obs.Obs.gauge "fuzz.coverage-points")
      summary.coverage_points;
    Ssos_obs.Obs.event "fuzz.summary"
      ~fields:
        [ ("programs", string_of_int summary.programs);
          ("coverage", string_of_int summary.coverage_points);
          ("divergences", string_of_int (List.length summary.divergences)) ]
  end;
  summary

let pp_divergence ppf d =
  Format.fprintf ppf
    "@[<v>divergence (seed 0x%016Lx, shard %d, iter %d) at tick %d:@,\
     %s@,shrunk to %d bytes (from %d)@]"
    d.seed d.shard d.iter d.tick d.detail
    (String.length d.program.Gen.code)
    (String.length d.original.Gen.code)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d programs, %d ticks, corpus %d, %d coverage points, %d divergence%s@]"
    s.programs s.total_ticks s.corpus_size s.coverage_points
    (List.length s.divergences)
    (if List.length s.divergences = 1 then "" else "s")
