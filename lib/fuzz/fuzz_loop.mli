(** Coverage-guided differential fuzzing of [Machine] against
    {!Ref_interp}.

    Each trial loads one {!Gen.program} into a production machine
    (decode cache on) and into the oracle, gives both the same initial
    register file and interrupt-vector image, and steps them in
    lock-step: events first, then the whole register/control state
    every tick, then all of RAM at the end of the trial.  The first
    mismatch is a divergence; the offending program is shrunk
    (block-and-byte minimisation plus schedule thinning, while the
    divergence still reproduces) and reported with an [.ssx]-format
    reproducer.

    The corpus is coverage-guided on a cheap execution signature:
    opcode-pair bigrams plus the set of flags transitions observed
    (the 7 architectural flag bits before and after each tick).  A
    trial that lights up a new signature point enters the corpus;
    later iterations mutate corpus members about twice as often as
    they generate fresh programs.

    Campaigns shard across {!Ssos_experiments.Pool} with a shard count
    that depends only on [iters], each shard seeded by
    [Rng.derive seed shard], so results are identical for any [jobs]
    value. *)

type divergence = {
  program : Gen.program;  (** shrunk reproducer *)
  original : Gen.program;  (** as first found *)
  seed : int64;
  shard : int;
  iter : int;  (** shard-local iteration *)
  tick : int;
  detail : string;
}

type summary = {
  programs : int;  (** trials executed (excluding shrink re-runs) *)
  total_ticks : int;
  corpus_size : int;
  coverage_points : int;  (** distinct signature bits lit *)
  divergences : divergence list;
}

val run : ?jobs:int -> ?jit:bool -> seed:int64 -> iters:int -> unit -> summary
(** Run a campaign of [iters] differential trials.  [jit] selects the
    machine-side block compiler (default: the process-wide
    {!Ssx.Machine} default); summaries are bit-identical either way,
    and for any [jobs]. *)

val run_program :
  ?decode_cache:bool -> ?jit:bool -> Gen.program -> (int * string) option
(** One differential trial; [Some (tick, detail)] on divergence.
    [decode_cache] selects the machine-side configuration (the oracle
    has no cache); default [true]. *)

val prepare_machine :
  ?decode_cache:bool -> ?jit:bool -> Gen.program -> Ssx.Machine.t
(** A fresh machine in the fuzzer's initial trial state (vector image,
    program code, trial register file) without stepping it — for tests
    that want fuzz-shaped machines to snapshot or trace. *)

val trial_code_base : int
(** Physical load address of [Gen.program.code] in a trial. *)

val shrink :
  reproduces:(Gen.program -> bool) -> Gen.program -> Gen.program
(** Minimise a program under [reproduces] (which must hold for the
    input): repeated block removal at halving granularity, nop/zero
    byte normalisation, schedule thinning.  Bounded number of
    predicate evaluations. *)

val reproducer_text : divergence -> string
(** The checked-in reproducer format: a commented [.ssx] file whose
    [db] lines reassemble to the program bytes, with steps, schedule,
    seed and divergence detail in comment headers. *)

val program_of_reproducer : string -> Gen.program
(** Parse a reproducer produced by {!reproducer_text} (runs the real
    assembler over the text, so hand-edited reproducers also work).
    @raise Failure on a text without the fuzzer's headers. *)

val replay : ?jit:bool -> string -> (int * string) option
(** [replay text] re-runs a reproducer differentially (cache on). *)

val pp_divergence : Format.formatter -> divergence -> unit
val pp_summary : Format.formatter -> summary -> unit
