(** Seeded program generator and byte-level mutator for the fuzzer.

    A generated {!program} is a code image plus an NMI tick schedule
    and a tick budget — everything a differential trial needs besides
    the fixed initial register file.  Generation is biased toward the
    corners the ROADMAP cares about: boundary operand values,
    segment-wrapping displacements, stores that hit the code segment
    (self-modification), [iret]/NMI interleavings, and — via
    {!mutate} — byte-level corruption that produces illegal encodings
    and mis-aligned decode streams (the §5.2 hazard). *)

type program = {
  code : string;  (** raw bytes, loaded at the trial's code base *)
  schedule : int list;  (** strictly increasing 0-based ticks that raise an NMI *)
  steps : int;  (** lock-step tick budget *)
}

val max_code_bytes : int
(** Upper bound on [code] length for generated and mutated programs. *)

val generate : Ssx_faults.Rng.t -> program
(** A fresh well-formed-ish program: valid encodings from the full
    instruction set (about half the time roughed up with a few byte
    corruptions), a small sorted NMI schedule, and a tick budget. *)

val mutate : Ssx_faults.Rng.t -> program -> program
(** Corpus-style mutation: byte overwrites, bit flips, swaps, inserts,
    deletes, and occasional schedule jitter. *)
