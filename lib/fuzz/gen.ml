module I = Ssx.Instruction
module R = Ssx.Registers
module Rng = Ssx_faults.Rng

type program = { code : string; schedule : int list; steps : int }

let max_code_bytes = 512
let min_steps = 120
let max_steps = 500

let pick rng l = List.nth l (Rng.int rng (List.length l))

(* Operand values lean hard on boundaries: arithmetic edge cases live
   at 0/1/0x7fff/0x8000/0xffff, and decode/address hazards live at the
   segment-wrap end of the offset space. *)
let word16 rng =
  if Rng.int rng 2 = 0 then
    pick rng [ 0; 1; 2; 0x7fff; 0x8000; 0xfffe; 0xffff ]
  else Rng.int rng 0x10000

let byte8 rng =
  if Rng.int rng 2 = 0 then pick rng [ 0; 1; 0x7f; 0x80; 0xfe; 0xff ]
  else Rng.int rng 0x100

let reg16 rng = pick rng R.all_reg16
let reg8 rng = pick rng R.all_reg8
let sreg rng = pick rng R.all_sreg

let base rng =
  pick rng
    [ I.No_base; I.Base_bx; I.Base_si; I.Base_di; I.Base_bp;
      I.Base_bx_si; I.Base_bx_di ]

let mem rng =
  let seg_override = if Rng.int rng 4 = 0 then Some (sreg rng) else None in
  let disp =
    match Rng.int rng 4 with
    | 0 -> 0xfffd + Rng.int rng 3 (* wraps the 16-bit offset space *)
    | 1 -> Rng.int rng 64 (* lands in or near the code image *)
    | _ -> Rng.int rng 0x10000
  in
  { I.seg_override; base = base rng; disp }

let alu_op rng =
  pick rng [ I.Add; I.Adc; I.Sub; I.Sbb; I.And; I.Or; I.Xor; I.Cmp; I.Test ]

let cond rng = pick rng I.all_conds
let width rng = if Rng.bool rng then I.Byte else I.Word_

(* Jump targets stay near the code image often enough that control
   actually revisits generated instructions. *)
let target rng = if Rng.int rng 2 = 0 then Rng.int rng 256 else word16 rng

let instruction rng =
  match Rng.int rng 40 with
  | 0 -> I.Mov_r16_imm (reg16 rng, word16 rng)
  | 1 -> I.Mov_r8_imm (reg8 rng, byte8 rng)
  | 2 -> I.Mov_r16_r16 (reg16 rng, reg16 rng)
  | 3 ->
    (* Writing cs or ss retargets fetch or the stack mid-program —
       exactly the corruption-like state the oracle must agree on. *)
    I.Mov_sreg_r16 (sreg rng, reg16 rng)
  | 4 -> I.Mov_r16_sreg (reg16 rng, sreg rng)
  | 5 -> I.Mov_r16_mem (reg16 rng, mem rng)
  | 6 -> I.Mov_mem_r16 (mem rng, reg16 rng)
  | 7 -> I.Mov_mem_imm (mem rng, word16 rng)
  | 8 -> I.Mov_r8_mem (reg8 rng, mem rng)
  | 9 -> I.Mov_mem_r8 (mem rng, reg8 rng)
  | 10 -> I.Mov_sreg_mem (sreg rng, mem rng)
  | 11 -> I.Mov_mem_sreg (mem rng, sreg rng)
  | 12 -> I.Lea (reg16 rng, mem rng)
  | 13 -> I.Xchg (reg16 rng, reg16 rng)
  | 14 -> I.Alu_r16_r16 (alu_op rng, reg16 rng, reg16 rng)
  | 15 -> I.Alu_r16_imm (alu_op rng, reg16 rng, word16 rng)
  | 16 -> I.Alu_r16_mem (alu_op rng, reg16 rng, mem rng)
  | 17 -> I.Alu_mem_r16 (alu_op rng, mem rng, reg16 rng)
  | 18 -> I.Alu_r8_r8 (alu_op rng, reg8 rng, reg8 rng)
  | 19 -> I.Alu_r8_imm (alu_op rng, reg8 rng, byte8 rng)
  | 20 -> pick rng [ I.Inc_r16 (reg16 rng); I.Dec_r16 (reg16 rng) ]
  | 21 -> pick rng [ I.Neg_r16 (reg16 rng); I.Not_r16 (reg16 rng) ]
  | 22 -> I.Shl_r16 (reg16 rng, Rng.int rng 16)
  | 23 -> I.Shr_r16 (reg16 rng, Rng.int rng 16)
  | 24 -> pick rng [ I.Mul_r8 (reg8 rng); I.Div_r8 (reg8 rng) ]
  | 25 -> pick rng [ I.Mul_r16 (reg16 rng); I.Div_r16 (reg16 rng) ]
  | 26 -> pick rng [ I.Push_r16 (reg16 rng); I.Pop_r16 (reg16 rng) ]
  | 27 -> pick rng [ I.Push_sreg (sreg rng); I.Pop_sreg (sreg rng) ]
  | 28 -> pick rng [ I.Push_imm (word16 rng); I.Pushf; I.Popf ]
  | 29 -> I.Jmp (target rng)
  | 30 -> I.Jcc (cond rng, target rng)
  | 31 -> pick rng [ I.Call (target rng); I.Ret ]
  | 32 -> I.Loop (target rng)
  | 33 ->
    (* Small vectors: the trial image points every IDT entry at a
       real iret handler, so these exercise service/iret round trips
       and the NMI re-arm rule. *)
    I.Int (Rng.int rng 16)
  | 34 -> I.Iret
  | 35 ->
    pick rng
      [ I.Movs (width rng); I.Stos (width rng); I.Lods (width rng);
        I.Rep (I.Movs (width rng)); I.Rep (I.Stos (width rng));
        I.Rep (I.Lods (width rng)) ]
  | 36 ->
    pick rng
      [ I.In_ (width rng, byte8 rng); I.Out (byte8 rng, width rng);
        I.In_dx (width rng); I.Out_dx (width rng) ]
  | 37 -> pick rng [ I.Cli; I.Sti; I.Cld; I.Std; I.Clc; I.Stc ]
  | 38 -> pick rng [ I.Nop; I.Hlt ]
  | _ ->
    (* Direct arithmetic on cx/sp: loop counters and stack pointers
       with boundary values drive the nastiest wrap behaviour. *)
    pick rng
      [ I.Mov_r16_imm (R.CX, Rng.int rng 8);
        I.Mov_r16_imm (R.SP, word16 rng);
        I.Alu_r16_imm (I.Add, R.SP, word16 rng) ]

let encode_program rng =
  let n = 4 + Rng.int rng 36 in
  let buf = Buffer.create 64 in
  for _ = 1 to n do
    if Buffer.length buf < max_code_bytes - Ssx.Codec.max_length then
      List.iter
        (fun b -> Buffer.add_char buf (Char.chr (b land 0xff)))
        (Ssx.Codec.encode (instruction rng))
  done;
  Buffer.contents buf

let corrupt_bytes rng code =
  let b = Bytes.of_string code in
  let n = 1 + Rng.int rng 4 in
  for _ = 1 to n do
    if Bytes.length b > 0 then begin
      let i = Rng.int rng (Bytes.length b) in
      let v =
        if Rng.bool rng then Rng.int rng 0x100
        else Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)
      in
      Bytes.set b i (Char.chr (v land 0xff))
    end
  done;
  Bytes.to_string b

let schedule_of rng steps =
  let n = Rng.int rng 5 in
  let ticks = List.init n (fun _ -> Rng.int rng steps) in
  List.sort_uniq compare ticks

let generate rng =
  let code = encode_program rng in
  let code = if Rng.int rng 2 = 0 then corrupt_bytes rng code else code in
  let steps = min_steps + Rng.int rng (max_steps - min_steps) in
  { code; schedule = schedule_of rng steps; steps }

let clamp_code code =
  if String.length code > max_code_bytes then String.sub code 0 max_code_bytes
  else code

let mutate rng p =
  let b = Bytes.of_string p.code in
  let code =
    match Rng.int rng 6 with
    | 0 | 1 ->
      (* overwrite *)
      if Bytes.length b > 0 then
        Bytes.set b (Rng.int rng (Bytes.length b))
          (Char.chr (Rng.int rng 0x100));
      Bytes.to_string b
    | 2 ->
      (* bit flip *)
      if Bytes.length b > 0 then begin
        let i = Rng.int rng (Bytes.length b) in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)))
      end;
      Bytes.to_string b
    | 3 ->
      (* swap two bytes *)
      if Bytes.length b > 1 then begin
        let i = Rng.int rng (Bytes.length b)
        and j = Rng.int rng (Bytes.length b) in
        let ci = Bytes.get b i in
        Bytes.set b i (Bytes.get b j);
        Bytes.set b j ci
      end;
      Bytes.to_string b
    | 4 ->
      (* insert an instruction's bytes or a random byte *)
      let insertion =
        if Rng.bool rng then
          String.concat ""
            (List.map
               (fun v -> String.make 1 (Char.chr (v land 0xff)))
               (Ssx.Codec.encode (instruction rng)))
        else String.make 1 (Char.chr (Rng.int rng 0x100))
      in
      let i = Rng.int rng (Bytes.length b + 1) in
      clamp_code
        (String.sub p.code 0 i ^ insertion
        ^ String.sub p.code i (String.length p.code - i))
    | _ ->
      (* delete a short run *)
      if Bytes.length b > 1 then begin
        let i = Rng.int rng (Bytes.length b) in
        let n = min (1 + Rng.int rng 4) (Bytes.length b - i) in
        String.sub p.code 0 i
        ^ String.sub p.code (i + n) (String.length p.code - i - n)
      end
      else p.code
  in
  let code = if String.length code = 0 then String.make 1 '\x70' else code in
  let schedule =
    if Rng.int rng 4 = 0 then schedule_of rng p.steps else p.schedule
  in
  let steps =
    if Rng.int rng 8 = 0 then min_steps + Rng.int rng (max_steps - min_steps)
    else p.steps
  in
  let schedule = List.filter (fun tick -> tick < steps) schedule in
  { code; schedule; steps }
