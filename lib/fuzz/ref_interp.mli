(** An independent reference interpreter for SSX16.

    This is the differential fuzzer's oracle: a second, deliberately
    naive implementation of the machine semantics written directly from
    DESIGN.md and [codec.mli], sharing {e no} decoder, ALU or flags
    code with [lib/machine].  The only things it reuses from [ssx] are
    the instruction AST constructors (so divergence reports can print
    both sides with the same pretty-printer) and the register {e name}
    types those constructors mention.  Everything observable — opcode
    tables, operand decoding, effective addresses, every flag bit — is
    re-derived here, so a lock-step divergence between [Machine] and
    [Ref_interp] is a real bug in one of the two implementations, not a
    shared mistake.

    The implementation favours obviousness over speed: decoding
    materialises the whole 8-byte window as a list, the ALU is a
    bit-by-bit ripple-carry adder, and parity walks a list of bits.
    It models the machine under {!Cpu.default_config} only (NMI
    countdown register enabled, hardwired NMI IDT at 0xF0000, reset
    vector F000:0000) and a machine with no ROM regions — exactly the
    configuration the fuzzer drives. *)

type event =
  | Exec of Ssx.Instruction.t
  | Interrupt of { vector : int; nmi : bool }
  | Exception of int
  | Idle
  | Reset

type t = {
  mem : Bytes.t;  (** 1 MiB, physical *)
  mutable ax : int;
  mutable bx : int;
  mutable cx : int;
  mutable dx : int;
  mutable si : int;
  mutable di : int;
  mutable sp : int;
  mutable bp : int;
  mutable cs : int;
  mutable ds : int;
  mutable es : int;
  mutable ss : int;
  mutable fs : int;
  mutable gs : int;
  mutable ip : int;
  mutable psw : int;
  mutable nmi_counter : int;
  mutable idtr : int;
  mutable nmi_pin : bool;
  mutable in_nmi : bool;
  mutable intr : int option;
  mutable reset_pin : bool;
  mutable halted : bool;
  mutable steps : int;
  mutable io_in : int -> Ssx.Instruction.width -> int;
  mutable io_out : int -> Ssx.Instruction.width -> int -> unit;
}

val create : unit -> t
(** Fresh machine: all registers and memory zero, null I/O (port reads
    return 0, writes are ignored — the same as a bare {!Machine.t} with
    no devices). *)

val load : t -> base:int -> string -> unit
(** Copy an image into physical memory at [base] (wrapping at 1 MiB). *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val raise_nmi : t -> unit
val raise_intr : t -> int -> unit

val step : t -> event
(** One clock tick, mirroring the documented [Cpu.step] order: reset
    pin, NMI countdown clamp + decrement, NMI delivery, maskable
    interrupt delivery, halt idle, else fetch-decode-execute (faults
    vector through the IDT and report [Exception]). *)

val decode : t -> pos:int -> Ssx.Instruction.t * int
(** Decode at code-segment offset [pos] using this interpreter's own
    opcode tables (never raises; undecodable bytes yield
    [Ssx.Instruction.Invalid] with length 1). *)

val decode_bytes : string -> pos:int -> Ssx.Instruction.t * int
(** Decode straight out of a string (bytes beyond the end read as 0),
    for cross-checking against [Codec.decode_bytes]. *)

val pp_event : Format.formatter -> event -> unit
