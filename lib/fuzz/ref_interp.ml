(* The oracle: SSX16 re-implemented from the written spec (DESIGN.md
   §2, codec.mli's opcode map) with no code shared with lib/machine.
   Where lib/machine is engineered for speed — packed ALU results,
   decode cache, open-coded loops — this interpreter is written for
   obviousness: lists of bytes, a ripple-carry adder, one small
   function per concern.  Divergence between the two under lock-step
   execution is a genuine bug in one of them. *)

module I = Ssx.Instruction
module R = Ssx.Registers

type event =
  | Exec of I.t
  | Interrupt of { vector : int; nmi : bool }
  | Exception of int
  | Idle
  | Reset

(* Machine parameters, restated from DESIGN.md / Cpu.default_config. *)
let memory_bytes = 0x100000
let nmi_counter_max = 200_000
let nmi_idt_base = 0xF0000
let reset_cs = 0xF000
let reset_ip = 0x0000
let vec_divide_error = 0
let vec_nmi = 2
let vec_invalid_opcode = 6

type t = {
  mem : Bytes.t;
  mutable ax : int;
  mutable bx : int;
  mutable cx : int;
  mutable dx : int;
  mutable si : int;
  mutable di : int;
  mutable sp : int;
  mutable bp : int;
  mutable cs : int;
  mutable ds : int;
  mutable es : int;
  mutable ss : int;
  mutable fs : int;
  mutable gs : int;
  mutable ip : int;
  mutable psw : int;
  mutable nmi_counter : int;
  mutable idtr : int;
  mutable nmi_pin : bool;
  mutable in_nmi : bool;
  mutable intr : int option;
  mutable reset_pin : bool;
  mutable halted : bool;
  mutable steps : int;
  mutable io_in : int -> I.width -> int;
  mutable io_out : int -> I.width -> int -> unit;
}

let create () =
  { mem = Bytes.make memory_bytes '\000';
    ax = 0; bx = 0; cx = 0; dx = 0; si = 0; di = 0; sp = 0; bp = 0;
    cs = 0; ds = 0; es = 0; ss = 0; fs = 0; gs = 0; ip = 0; psw = 0;
    nmi_counter = 0; idtr = 0; nmi_pin = false; in_nmi = false;
    intr = None; reset_pin = false; halted = false; steps = 0;
    io_in = (fun _ _ -> 0); io_out = (fun _ _ _ -> ()) }

(* --- words and memory, spelled out ---------------------------------- *)

let word v = v land 0xffff
let byte v = v land 0xff
let phys ~seg ~off = ((seg * 16) + off) land 0xfffff

let read_byte t addr = Char.code (Bytes.get t.mem (addr land 0xfffff))

let write_byte t addr v =
  Bytes.set t.mem (addr land 0xfffff) (Char.chr (byte v))

let read_word t addr =
  read_byte t addr lor (read_byte t (addr + 1) lsl 8)

let write_word t addr v =
  write_byte t addr (v land 0xff);
  write_byte t (addr + 1) ((v lsr 8) land 0xff)

let load t ~base image =
  String.iteri (fun i c -> write_byte t (base + i) (Char.code c)) image

let raise_nmi t = t.nmi_pin <- true
let raise_intr t v = t.intr <- Some v

(* --- flags: one bit position per name, per DESIGN.md §2 ------------- *)

let cf_bit = 0
let pf_bit = 2
let zf_bit = 6
let sf_bit = 7
let if_bit = 9
let df_bit = 10
let of_bit = 11

let flag t bit = (t.psw lsr bit) land 1 = 1

let set_flag t bit v =
  if v then t.psw <- t.psw lor (1 lsl bit)
  else t.psw <- t.psw land lnot (1 lsl bit) land 0xffff

(* Even parity of the low eight bits, counted one bit at a time. *)
let parity_even v =
  let bits = List.init 8 (fun i -> (v lsr i) land 1) in
  List.fold_left ( + ) 0 bits mod 2 = 0

let set_zsp t ~width result =
  let sign_bit = if width = 16 then 0x8000 else 0x80 in
  set_flag t zf_bit (result = 0);
  set_flag t sf_bit (result land sign_bit <> 0);
  set_flag t pf_bit (parity_even result)

(* --- the ALU: a ripple-carry adder, one bit at a time ---------------
   CF is the adder's carry out; OF is carry-into-the-sign-bit XOR
   carry-out-of-it, the textbook signed-overflow rule.  Subtraction is
   a + (lnot b) + (1 - borrow), whose carry out is the complement of
   the borrow out. *)

let ripple_add ~width a b ~carry_in =
  let result = ref 0 in
  let carry = ref (if carry_in then 1 else 0) in
  let carry_into_msb = ref 0 in
  for i = 0 to width - 1 do
    if i = width - 1 then carry_into_msb := !carry;
    let s = ((a lsr i) land 1) + ((b lsr i) land 1) + !carry in
    result := !result lor ((s land 1) lsl i);
    carry := s lsr 1
  done;
  (!result, !carry = 1, !carry_into_msb <> !carry)

let add_bits ~width a b ~carry_in =
  let result, carry_out, overflow = ripple_add ~width a b ~carry_in in
  (result, carry_out, overflow)

let sub_bits ~width a b ~borrow_in =
  let mask = (1 lsl width) - 1 in
  let result, carry_out, overflow =
    ripple_add ~width a (lnot b land mask) ~carry_in:(not borrow_in)
  in
  (result, not carry_out, overflow)

(* 16-bit ALU: returns [Some result] to store back, [None] for the
   compare/test forms.  Flag behaviour per DESIGN.md: arithmetic forms
   set ZF SF PF CF OF; logic forms set ZF SF PF and clear CF and OF. *)
let alu16 t op a b =
  let arith (result, carry, overflow) store =
    set_zsp t ~width:16 result;
    set_flag t cf_bit carry;
    set_flag t of_bit overflow;
    if store then Some result else None
  in
  let logic result store =
    set_zsp t ~width:16 result;
    set_flag t cf_bit false;
    set_flag t of_bit false;
    if store then Some result else None
  in
  match op with
  | I.Add -> arith (add_bits ~width:16 a b ~carry_in:false) true
  | I.Adc -> arith (add_bits ~width:16 a b ~carry_in:(flag t cf_bit)) true
  | I.Sub -> arith (sub_bits ~width:16 a b ~borrow_in:false) true
  | I.Sbb -> arith (sub_bits ~width:16 a b ~borrow_in:(flag t cf_bit)) true
  | I.Cmp -> arith (sub_bits ~width:16 a b ~borrow_in:false) false
  | I.And -> logic (a land b) true
  | I.Or -> logic (a lor b) true
  | I.Xor -> logic (a lxor b) true
  | I.Test -> logic (a land b) false

(* 8-bit ALU.  The spec quirk worth stating: the 8-bit arithmetic
   forms update ZF SF PF CF but leave OF alone; the logic forms clear
   both CF and OF as in the 16-bit case. *)
let alu8 t op a b =
  let arith (result, carry, _overflow) store =
    set_zsp t ~width:8 result;
    set_flag t cf_bit carry;
    if store then Some result else None
  in
  let logic result store =
    set_zsp t ~width:8 result;
    set_flag t cf_bit false;
    set_flag t of_bit false;
    if store then Some result else None
  in
  match op with
  | I.Add -> arith (add_bits ~width:8 a b ~carry_in:false) true
  | I.Adc -> arith (add_bits ~width:8 a b ~carry_in:(flag t cf_bit)) true
  | I.Sub -> arith (sub_bits ~width:8 a b ~borrow_in:false) true
  | I.Sbb -> arith (sub_bits ~width:8 a b ~borrow_in:(flag t cf_bit)) true
  | I.Cmp -> arith (sub_bits ~width:8 a b ~borrow_in:false) false
  | I.And -> logic (a land b) true
  | I.Or -> logic (a lor b) true
  | I.Xor -> logic (a lxor b) true
  | I.Test -> logic (a land b) false

(* --- registers -------------------------------------------------------- *)

let get16 t = function
  | R.AX -> t.ax | R.BX -> t.bx | R.CX -> t.cx | R.DX -> t.dx
  | R.SI -> t.si | R.DI -> t.di | R.SP -> t.sp | R.BP -> t.bp

let set16 t r v =
  let v = word v in
  match r with
  | R.AX -> t.ax <- v | R.BX -> t.bx <- v | R.CX -> t.cx <- v
  | R.DX -> t.dx <- v | R.SI -> t.si <- v | R.DI -> t.di <- v
  | R.SP -> t.sp <- v | R.BP -> t.bp <- v

let get8 t = function
  | R.AL -> t.ax land 0xff | R.AH -> (t.ax lsr 8) land 0xff
  | R.BL -> t.bx land 0xff | R.BH -> (t.bx lsr 8) land 0xff
  | R.CL -> t.cx land 0xff | R.CH -> (t.cx lsr 8) land 0xff
  | R.DL -> t.dx land 0xff | R.DH -> (t.dx lsr 8) land 0xff

let set8 t r v =
  let v = byte v in
  let low w = (w land 0xff00) lor v in
  let high w = (w land 0x00ff) lor (v lsl 8) in
  match r with
  | R.AL -> t.ax <- low t.ax | R.AH -> t.ax <- high t.ax
  | R.BL -> t.bx <- low t.bx | R.BH -> t.bx <- high t.bx
  | R.CL -> t.cx <- low t.cx | R.CH -> t.cx <- high t.cx
  | R.DL -> t.dx <- low t.dx | R.DH -> t.dx <- high t.dx

let get_sreg t = function
  | R.CS -> t.cs | R.DS -> t.ds | R.ES -> t.es
  | R.SS -> t.ss | R.FS -> t.fs | R.GS -> t.gs

let set_sreg t s v =
  let v = word v in
  match s with
  | R.CS -> t.cs <- v | R.DS -> t.ds <- v | R.ES -> t.es <- v
  | R.SS -> t.ss <- v | R.FS -> t.fs <- v | R.GS -> t.gs <- v

(* --- the decoder, re-derived from codec.mli's opcode map -------------
   Own index tables (x86 ModRM order, as the map documents); operand
   bytes are pulled from an eagerly materialised window so every decode
   reads the full maximum instruction length. *)

let reg16_table = [ R.AX; R.CX; R.DX; R.BX; R.SP; R.BP; R.SI; R.DI ]
let reg8_table = [ R.AL; R.CL; R.DL; R.BL; R.AH; R.CH; R.DH; R.BH ]
let sreg_table = [ R.ES; R.CS; R.SS; R.DS; R.FS; R.GS ]

let base_table =
  [ I.No_base; I.Base_bx; I.Base_si; I.Base_di; I.Base_bp;
    I.Base_bx_si; I.Base_bx_di ]

let alu_table = [ I.Add; I.Adc; I.Sub; I.Sbb; I.And; I.Or; I.Xor; I.Cmp; I.Test ]

let cond_table =
  [ I.B; I.NB; I.BE; I.A; I.E; I.NE; I.L; I.GE; I.LE; I.G; I.S; I.NS; I.O; I.NO ]

let reg16_of_index i = List.nth_opt reg16_table i
let reg8_of_index i = List.nth_opt reg8_table i
let sreg_of_index i = List.nth_opt sreg_table i

(* The memory-operand mode byte: bits 0-2 pick the base-register
   combination, bits 3-5 a segment override (0 = default segment,
   1 + sreg index otherwise). *)
let mem_of_mode mode disp =
  match List.nth_opt base_table (mode land 7) with
  | None -> None
  | Some base -> (
    match (mode lsr 3) land 7 with
    | 0 -> Some { I.seg_override = None; base; disp }
    | n -> (
      match sreg_of_index (n - 1) with
      | None -> None
      | Some s -> Some { I.seg_override = Some s; base; disp }))

let string_op_of_byte = function
  | 0x60 -> Some (I.Movs I.Byte)
  | 0x61 -> Some (I.Movs I.Word_)
  | 0x62 -> Some (I.Stos I.Byte)
  | 0x63 -> Some (I.Stos I.Word_)
  | 0x64 -> Some (I.Lods I.Byte)
  | 0x65 -> Some (I.Lods I.Word_)
  | _ -> None

let decode_window fetch pos =
  (* Maximum instruction length is 7; read one byte past it so the
     window functions below never index out of the list. *)
  List.init 8 (fun k -> fetch (pos + k) land 0xff)

let decode_with ~fetch ~pos =
  let window = decode_window fetch pos in
  let b off = List.nth window off in
  let w off = b off lor (b (off + 1) lsl 8) in
  let invalid () = (I.Invalid (b 0), 1) in
  let reg16 off k =
    match reg16_of_index (b off land 7) with
    | Some r -> k r
    | None -> invalid ()
  in
  let reg8 off k =
    match reg8_of_index (b off land 7) with
    | Some r -> k r
    | None -> invalid ()
  in
  let sreg off k =
    match sreg_of_index (b off land 7) with
    | Some s -> k s
    | None -> invalid ()
  in
  let mem off k =
    match mem_of_mode (b off) (w (off + 1)) with
    | Some m -> k m
    | None -> invalid ()
  in
  match b 0 with
  | 0x01 -> reg16 1 (fun r -> (I.Mov_r16_imm (r, w 2), 4))
  | 0x02 -> reg8 1 (fun r -> (I.Mov_r8_imm (r, b 2), 3))
  | 0x03 -> (
    match (reg16_of_index ((b 1 lsr 4) land 7), reg16_of_index (b 1 land 7)) with
    | Some d, Some s -> (I.Mov_r16_r16 (d, s), 2)
    | _ -> invalid ())
  | 0x04 -> (
    match (sreg_of_index ((b 1 lsr 4) land 7), reg16_of_index (b 1 land 7)) with
    | Some d, Some s -> (I.Mov_sreg_r16 (d, s), 2)
    | _ -> invalid ())
  | 0x05 -> (
    match (reg16_of_index ((b 1 lsr 4) land 7), sreg_of_index (b 1 land 7)) with
    | Some d, Some s -> (I.Mov_r16_sreg (d, s), 2)
    | _ -> invalid ())
  | 0x06 -> reg16 1 (fun r -> mem 2 (fun m -> (I.Mov_r16_mem (r, m), 5)))
  | 0x07 -> reg16 1 (fun r -> mem 2 (fun m -> (I.Mov_mem_r16 (m, r), 5)))
  | 0x08 -> mem 1 (fun m -> (I.Mov_mem_imm (m, w 4), 6))
  | 0x09 -> reg8 1 (fun r -> mem 2 (fun m -> (I.Mov_r8_mem (r, m), 5)))
  | 0x0A -> reg8 1 (fun r -> mem 2 (fun m -> (I.Mov_mem_r8 (m, r), 5)))
  | 0x0B -> sreg 1 (fun s -> mem 2 (fun m -> (I.Mov_sreg_mem (s, m), 5)))
  | 0x0C -> sreg 1 (fun s -> mem 2 (fun m -> (I.Mov_mem_sreg (m, s), 5)))
  | 0x0D -> reg16 1 (fun r -> mem 2 (fun m -> (I.Lea (r, m), 5)))
  | 0x0E -> (
    match (reg16_of_index ((b 1 lsr 4) land 7), reg16_of_index (b 1 land 7)) with
    | Some a, Some c -> (I.Xchg (a, c), 2)
    | _ -> invalid ())
  | op when op >= 0x10 && op <= 0x18 -> (
    match List.nth_opt alu_table (op - 0x10) with
    | None -> invalid ()
    | Some alu -> (
      match b 1 with
      | 0 -> (
        match
          (reg16_of_index ((b 2 lsr 4) land 7), reg16_of_index (b 2 land 7))
        with
        | Some d, Some s -> (I.Alu_r16_r16 (alu, d, s), 3)
        | _ -> invalid ())
      | 1 -> reg16 2 (fun d -> (I.Alu_r16_imm (alu, d, w 3), 5))
      | 2 -> reg16 2 (fun d -> mem 3 (fun m -> (I.Alu_r16_mem (alu, d, m), 6)))
      | 3 -> reg16 2 (fun s -> mem 3 (fun m -> (I.Alu_mem_r16 (alu, m, s), 6)))
      | 4 -> (
        match
          (reg8_of_index ((b 2 lsr 4) land 7), reg8_of_index (b 2 land 7))
        with
        | Some d, Some s -> (I.Alu_r8_r8 (alu, d, s), 3)
        | _ -> invalid ())
      | 5 -> reg8 2 (fun d -> (I.Alu_r8_imm (alu, d, b 3), 4))
      | _ -> invalid ()))
  | 0x20 -> reg16 1 (fun r -> (I.Inc_r16 r, 2))
  | 0x21 -> reg16 1 (fun r -> (I.Dec_r16 r, 2))
  | 0x22 -> reg16 1 (fun r -> (I.Neg_r16 r, 2))
  | 0x23 -> reg16 1 (fun r -> (I.Not_r16 r, 2))
  | 0x24 -> reg16 1 (fun r -> (I.Shl_r16 (r, b 2 land 0xf), 3))
  | 0x25 -> reg16 1 (fun r -> (I.Shr_r16 (r, b 2 land 0xf), 3))
  | 0x26 -> reg8 1 (fun r -> (I.Mul_r8 r, 2))
  | 0x27 -> reg16 1 (fun r -> (I.Mul_r16 r, 2))
  | 0x28 -> reg8 1 (fun r -> (I.Div_r8 r, 2))
  | 0x29 -> reg16 1 (fun r -> (I.Div_r16 r, 2))
  | 0x30 -> reg16 1 (fun r -> (I.Push_r16 r, 2))
  | 0x31 -> (I.Push_imm (w 1), 3)
  | 0x32 -> sreg 1 (fun s -> (I.Push_sreg s, 2))
  | 0x33 -> reg16 1 (fun r -> (I.Pop_r16 r, 2))
  | 0x34 -> sreg 1 (fun s -> (I.Pop_sreg s, 2))
  | 0x35 -> (I.Pushf, 1)
  | 0x36 -> (I.Popf, 1)
  | 0x40 -> (I.Jmp (w 1), 3)
  | 0x41 -> (I.Jmp_far (w 3, w 1), 5)
  | 0x42 -> (I.Call (w 1), 3)
  | 0x43 -> (I.Ret, 1)
  | 0x44 -> (I.Iret, 1)
  | 0x45 -> (I.Int (b 1), 2)
  | 0x46 -> (I.Loop (w 1), 3)
  | op when op >= 0x48 && op <= 0x55 -> (
    match List.nth_opt cond_table (op - 0x48) with
    | Some c -> (I.Jcc (c, w 1), 3)
    | None -> invalid ())
  | (0x60 | 0x61 | 0x62 | 0x63 | 0x64 | 0x65) as op -> (
    match string_op_of_byte op with
    | Some s -> (s, 1)
    | None -> invalid ())
  | 0x66 -> (
    (* rep only prefixes the six one-byte string ops; anything else
       after 0x66 makes the prefix itself the invalid byte. *)
    match string_op_of_byte (b 1) with
    | Some body -> (I.Rep body, 2)
    | None -> invalid ())
  | 0x67 -> (I.In_ (I.Byte, b 1), 2)
  | 0x68 -> (I.In_ (I.Word_, b 1), 2)
  | 0x69 -> (I.Out (b 1, I.Byte), 2)
  | 0x6A -> (I.Out (b 1, I.Word_), 2)
  | 0x6B -> (I.In_dx I.Byte, 1)
  | 0x6C -> (I.In_dx I.Word_, 1)
  | 0x6D -> (I.Out_dx I.Byte, 1)
  | 0x6E -> (I.Out_dx I.Word_, 1)
  | 0x70 | 0x90 -> (I.Nop, 1)
  | 0x71 -> (I.Hlt, 1)
  | 0x72 -> (I.Cli, 1)
  | 0x73 -> (I.Sti, 1)
  | 0x74 -> (I.Cld, 1)
  | 0x75 -> (I.Std, 1)
  | 0x76 -> (I.Clc, 1)
  | 0x77 -> (I.Stc, 1)
  | _ -> invalid ()

let decode t ~pos =
  let fetch p = read_byte t (phys ~seg:t.cs ~off:(word p)) in
  decode_with ~fetch ~pos

let decode_bytes s ~pos =
  let fetch i = if i >= 0 && i < String.length s then Char.code s.[i] else 0 in
  decode_with ~fetch ~pos

(* --- interrupts ------------------------------------------------------- *)

let push t v =
  t.sp <- word (t.sp - 2);
  write_word t (phys ~seg:t.ss ~off:t.sp) v

let pop t =
  let v = read_word t (phys ~seg:t.ss ~off:t.sp) in
  t.sp <- word (t.sp + 2);
  v

let service t vector ~nmi ~return_ip =
  push t t.psw;
  push t t.cs;
  push t return_ip;
  set_flag t if_bit false;
  if nmi then t.nmi_counter <- nmi_counter_max;
  let base = if nmi then nmi_idt_base else t.idtr in
  let entry = (base + (4 * vector)) land 0xfffff in
  let off = read_word t entry in
  let seg = read_word t (entry + 2) in
  t.cs <- seg;
  t.ip <- off;
  t.halted <- false

exception Fault of int

(* --- execution -------------------------------------------------------- *)

let effective_address t (m : I.mem) =
  let base_value =
    match m.I.base with
    | I.No_base -> 0
    | I.Base_bx -> t.bx
    | I.Base_si -> t.si
    | I.Base_di -> t.di
    | I.Base_bp -> t.bp
    | I.Base_bx_si -> word (t.bx + t.si)
    | I.Base_bx_di -> word (t.bx + t.di)
  in
  let seg =
    match m.I.seg_override with
    | Some s -> get_sreg t s
    | None -> (
      (* bp-based addressing defaults to the stack segment. *)
      match m.I.base with
      | I.Base_bp -> t.ss
      | _ -> t.ds)
  in
  phys ~seg ~off:(word (base_value + m.I.disp))

let read_mem16 t m = read_word t (effective_address t m)
let write_mem16 t m v = write_word t (effective_address t m) v
let read_mem8 t m = read_byte t (effective_address t m)
let write_mem8 t m v = write_byte t (effective_address t m) v

let cond_holds t cond =
  let cf = flag t cf_bit
  and zf = flag t zf_bit
  and sf = flag t sf_bit
  and ov = flag t of_bit in
  match cond with
  | I.B -> cf
  | I.NB -> not cf
  | I.BE -> cf || zf
  | I.A -> not (cf || zf)
  | I.E -> zf
  | I.NE -> not zf
  | I.L -> sf <> ov
  | I.GE -> sf = ov
  | I.LE -> zf || sf <> ov
  | I.G -> (not zf) && sf = ov
  | I.S -> sf
  | I.NS -> not sf
  | I.O -> ov
  | I.NO -> not ov

let string_delta t = function
  | I.Byte -> if flag t df_bit then -1 else 1
  | I.Word_ -> if flag t df_bit then -2 else 2

let exec_string_unit t op width =
  let delta = string_delta t width in
  (match (op, width) with
  | `Movs, I.Byte ->
    let v = read_byte t (phys ~seg:t.ds ~off:t.si) in
    write_byte t (phys ~seg:t.es ~off:t.di) v;
    t.si <- word (t.si + delta);
    t.di <- word (t.di + delta)
  | `Movs, I.Word_ ->
    let v = read_word t (phys ~seg:t.ds ~off:t.si) in
    write_word t (phys ~seg:t.es ~off:t.di) v;
    t.si <- word (t.si + delta);
    t.di <- word (t.di + delta)
  | `Stos, I.Byte ->
    write_byte t (phys ~seg:t.es ~off:t.di) (t.ax land 0xff);
    t.di <- word (t.di + delta)
  | `Stos, I.Word_ ->
    write_word t (phys ~seg:t.es ~off:t.di) t.ax;
    t.di <- word (t.di + delta)
  | `Lods, I.Byte ->
    set8 t R.AL (read_byte t (phys ~seg:t.ds ~off:t.si));
    t.si <- word (t.si + delta)
  | `Lods, I.Word_ ->
    t.ax <- read_word t (phys ~seg:t.ds ~off:t.si);
    t.si <- word (t.si + delta))

let string_op_kind = function
  | I.Movs w -> (`Movs, w)
  | I.Stos w -> (`Stos, w)
  | I.Lods w -> (`Lods, w)
  | _ -> assert false

(* [ip] has already been advanced past the instruction; [ip0] is the
   instruction's own offset (where rep resumes and faults return). *)
let execute t instr ~ip0 =
  match instr with
  | I.Mov_r16_imm (r, v) -> set16 t r v
  | I.Mov_r8_imm (r, v) -> set8 t r v
  | I.Mov_r16_r16 (d, s) -> set16 t d (get16 t s)
  | I.Mov_sreg_r16 (d, s) -> set_sreg t d (get16 t s)
  | I.Mov_r16_sreg (d, s) -> set16 t d (get_sreg t s)
  | I.Mov_r16_mem (d, m) -> set16 t d (read_mem16 t m)
  | I.Mov_mem_r16 (m, s) -> write_mem16 t m (get16 t s)
  | I.Mov_mem_imm (m, v) -> write_mem16 t m v
  | I.Mov_r8_mem (d, m) -> set8 t d (read_mem8 t m)
  | I.Mov_mem_r8 (m, s) -> write_mem8 t m (get8 t s)
  | I.Mov_sreg_mem (d, m) -> set_sreg t d (read_mem16 t m)
  | I.Mov_mem_sreg (m, s) -> write_mem16 t m (get_sreg t s)
  | I.Lea (d, m) ->
    let base_value =
      match m.I.base with
      | I.No_base -> 0
      | I.Base_bx -> t.bx
      | I.Base_si -> t.si
      | I.Base_di -> t.di
      | I.Base_bp -> t.bp
      | I.Base_bx_si -> word (t.bx + t.si)
      | I.Base_bx_di -> word (t.bx + t.di)
    in
    set16 t d (word (base_value + m.I.disp))
  | I.Xchg (a, b) ->
    let va = get16 t a and vb = get16 t b in
    set16 t a vb;
    set16 t b va
  | I.Alu_r16_r16 (op, d, s) -> (
    match alu16 t op (get16 t d) (get16 t s) with
    | Some r -> set16 t d r
    | None -> ())
  | I.Alu_r16_imm (op, d, v) -> (
    match alu16 t op (get16 t d) v with
    | Some r -> set16 t d r
    | None -> ())
  | I.Alu_r16_mem (op, d, m) -> (
    match alu16 t op (get16 t d) (read_mem16 t m) with
    | Some r -> set16 t d r
    | None -> ())
  | I.Alu_mem_r16 (op, m, s) -> (
    match alu16 t op (read_mem16 t m) (get16 t s) with
    | Some r -> write_mem16 t m r
    | None -> ())
  | I.Alu_r8_r8 (op, d, s) -> (
    match alu8 t op (get8 t d) (get8 t s) with
    | Some r -> set8 t d r
    | None -> ())
  | I.Alu_r8_imm (op, d, v) -> (
    match alu8 t op (get8 t d) v with
    | Some r -> set8 t d r
    | None -> ())
  | I.Inc_r16 r ->
    (* inc and dec update ZF SF PF OF but preserve CF. *)
    let result, _carry, overflow = add_bits ~width:16 (get16 t r) 1 ~carry_in:false in
    set16 t r result;
    set_zsp t ~width:16 result;
    set_flag t of_bit overflow
  | I.Dec_r16 r ->
    let result, _borrow, overflow = sub_bits ~width:16 (get16 t r) 1 ~borrow_in:false in
    set16 t r result;
    set_zsp t ~width:16 result;
    set_flag t of_bit overflow
  | I.Neg_r16 r ->
    let v = get16 t r in
    let result, _borrow, overflow = sub_bits ~width:16 0 v ~borrow_in:false in
    set16 t r result;
    set_zsp t ~width:16 result;
    set_flag t cf_bit (v <> 0);
    set_flag t of_bit overflow
  | I.Not_r16 r -> set16 t r (lnot (get16 t r))
  | I.Shl_r16 (r, n) ->
    if n > 0 then begin
      let v = get16 t r in
      let shifted = v lsl n in
      let result = word shifted in
      set16 t r result;
      set_zsp t ~width:16 result;
      set_flag t cf_bit (shifted land 0x10000 <> 0);
      set_flag t of_bit false
    end
  | I.Shr_r16 (r, n) ->
    if n > 0 then begin
      let v = get16 t r in
      let result = v lsr n in
      set16 t r result;
      set_zsp t ~width:16 result;
      set_flag t cf_bit ((v lsr (n - 1)) land 1 <> 0);
      set_flag t of_bit false
    end
  | I.Mul_r8 src ->
    let product = get8 t R.AL * get8 t src in
    t.ax <- word product;
    let upper = (t.ax lsr 8) land 0xff <> 0 in
    set_flag t cf_bit upper;
    set_flag t of_bit upper
  | I.Mul_r16 src ->
    let product = t.ax * get16 t src in
    t.ax <- word product;
    t.dx <- word (product lsr 16);
    let upper = t.dx <> 0 in
    set_flag t cf_bit upper;
    set_flag t of_bit upper
  | I.Div_r8 src ->
    let divisor = get8 t src in
    if divisor = 0 then raise (Fault vec_divide_error);
    let quotient = t.ax / divisor and remainder = t.ax mod divisor in
    if quotient > 0xff then raise (Fault vec_divide_error);
    t.ax <- (remainder lsl 8) lor quotient
  | I.Div_r16 src ->
    let divisor = get16 t src in
    if divisor = 0 then raise (Fault vec_divide_error);
    let dividend = (t.dx lsl 16) lor t.ax in
    let quotient = dividend / divisor and remainder = dividend mod divisor in
    if quotient > 0xffff then raise (Fault vec_divide_error);
    t.ax <- quotient;
    t.dx <- remainder
  | I.Push_r16 r -> push t (get16 t r)
  | I.Push_imm v -> push t v
  | I.Push_sreg s -> push t (get_sreg t s)
  | I.Pop_r16 r -> set16 t r (pop t)
  | I.Pop_sreg s -> set_sreg t s (pop t)
  | I.Pushf -> push t t.psw
  | I.Popf -> t.psw <- pop t
  | I.Jmp target -> t.ip <- target
  | I.Jmp_far (seg, off) ->
    t.cs <- seg;
    t.ip <- off
  | I.Jcc (cond, target) -> if cond_holds t cond then t.ip <- target
  | I.Call target ->
    push t t.ip;
    t.ip <- target
  | I.Ret -> t.ip <- pop t
  | I.Iret ->
    t.ip <- pop t;
    t.cs <- pop t;
    t.psw <- pop t;
    (* iret re-arms NMI acceptance (the paper's augmentation). *)
    t.nmi_counter <- 0;
    t.in_nmi <- false
  | I.Int vector -> service t vector ~nmi:false ~return_ip:t.ip
  | I.Loop target ->
    t.cx <- word (t.cx - 1);
    if t.cx <> 0 then t.ip <- target
  | I.Movs _ | I.Stos _ | I.Lods _ ->
    let kind, width = string_op_kind instr in
    exec_string_unit t kind width
  | I.Rep body ->
    (* One string unit per tick; ip re-points at the rep until cx
       drains so interrupts can preempt and resume it. *)
    if t.cx = 0 then ()
    else begin
      let kind, width = string_op_kind body in
      exec_string_unit t kind width;
      t.cx <- word (t.cx - 1);
      if t.cx <> 0 then t.ip <- ip0
    end
  | I.In_ (width, port) -> (
    let v = t.io_in port width in
    match width with
    | I.Byte -> set8 t R.AL v
    | I.Word_ -> t.ax <- word v)
  | I.Out (port, width) ->
    let v = match width with I.Byte -> get8 t R.AL | I.Word_ -> t.ax in
    t.io_out port width v
  | I.In_dx width -> (
    let v = t.io_in t.dx width in
    match width with
    | I.Byte -> set8 t R.AL v
    | I.Word_ -> t.ax <- word v)
  | I.Out_dx width ->
    let v = match width with I.Byte -> get8 t R.AL | I.Word_ -> t.ax in
    t.io_out t.dx width v
  | I.Hlt -> t.halted <- true
  | I.Nop -> ()
  | I.Cli -> set_flag t if_bit false
  | I.Sti -> set_flag t if_bit true
  | I.Cld -> set_flag t df_bit false
  | I.Std -> set_flag t df_bit true
  | I.Clc -> set_flag t cf_bit false
  | I.Stc -> set_flag t cf_bit true
  | I.Invalid _ -> raise (Fault vec_invalid_opcode)

let reset t =
  t.ax <- 0; t.bx <- 0; t.cx <- 0; t.dx <- 0;
  t.si <- 0; t.di <- 0; t.sp <- 0; t.bp <- 0;
  t.ds <- 0; t.es <- 0; t.ss <- 0; t.fs <- 0; t.gs <- 0;
  t.cs <- reset_cs;
  t.ip <- reset_ip;
  t.psw <- 0;
  t.nmi_counter <- 0;
  t.in_nmi <- false;
  t.halted <- false;
  t.reset_pin <- false

let step t =
  t.steps <- t.steps + 1;
  if t.reset_pin then begin
    reset t;
    Reset
  end
  else begin
    (* The NMI countdown register decrements every tick and physically
       cannot exceed its maximum, so corrupted values are clamped. *)
    if t.nmi_counter > nmi_counter_max then t.nmi_counter <- nmi_counter_max;
    if t.nmi_counter > 0 then t.nmi_counter <- t.nmi_counter - 1;
    if t.nmi_pin && t.nmi_counter = 0 then begin
      t.nmi_pin <- false;
      service t vec_nmi ~nmi:true ~return_ip:t.ip;
      Interrupt { vector = vec_nmi; nmi = true }
    end
    else
      match t.intr with
      | Some vector when flag t if_bit ->
        t.intr <- None;
        service t vector ~nmi:false ~return_ip:t.ip;
        Interrupt { vector; nmi = false }
      | Some _ | None ->
        if t.halted then Idle
        else begin
          let ip0 = t.ip in
          let instr, len = decode t ~pos:ip0 in
          t.ip <- word (ip0 + len);
          match execute t instr ~ip0 with
          | () -> Exec instr
          | exception Fault vector ->
            service t vector ~nmi:false ~return_ip:ip0;
            Exception vector
        end
  end

let pp_event ppf = function
  | Exec i -> Format.fprintf ppf "exec %a" I.pp i
  | Interrupt { vector; nmi } ->
    Format.fprintf ppf "interrupt %d%s" vector (if nmi then " (nmi)" else "")
  | Exception v -> Format.fprintf ppf "exception %d" v
  | Idle -> Format.fprintf ppf "idle"
  | Reset -> Format.fprintf ppf "reset"
