(* One process per machine, so its data segment and heartbeat port are
   those of process 0 (same convention as Net_ring). *)
let data_segment = Ssos.Process.data_segment 0
let base = data_segment lsl 4
let self_off = 0x00
let view_off = 0x02
let next_off = 0x04
let req_off = 0x06
let tagf_off = 0x08
let seent_off = 0x10
let kv_off = 0x20
let self_addr = base + self_off
let view_addr = base + view_off
let seent_addr key = base + seent_off + (2 * key)
let kv_addr key = base + kv_off + (2 * key)
let client_base_port = 0x40

let process ~bottom ~index =
  let nic = Ssos_net.Nic.default_base_port in
  let symbols =
    [ ("DATA_SEG", data_segment);
      ("SELF_OFF", self_off);
      ("VIEW_OFF", view_off);
      ("NEXT_OFF", next_off);
      ("REQ_OFF", req_off);
      ("TAGF_OFF", tagf_off);
      ("SEENT_OFF", seent_off);
      ("KV_OFF", kv_off);
      ("K_MASK", Wire.k - 1);
      ("NIC_TX", nic);
      ("NIC_RX", nic + 1);
      ("NIC_STATUS", nic + 2);
      ("CL_TX", client_base_port);
      ("CL_RX", client_base_port + 1);
      ("CL_STATUS", client_base_port + 2);
      ("MY_PORT", Ssos.Layout.process_heartbeat_port 0) ]
    @ List.concat
        (List.init Wire.keys (fun k ->
             [ (Printf.sprintf "SEENT%d" k, seent_off + (2 * k));
               (Printf.sprintf "KVW%d" k, kv_off + (2 * k));
               (Printf.sprintf "KEYB%d" k, k lsl 8) ]))
  in
  (* Every labelled block starts 16-aligned and fits one 16-byte
     window, so a preemption's ip masking re-enters at the block's own
     start with the registers the scheduler restored.  Each block
     either derives everything it needs from memory (pure replay), or
     performs only idempotent stores, or — where a destructive read or
     a port write cannot be made idempotent — is annotated with why
     the replay effect is benign. *)
  let decide2 =
    if bottom then
      "; block: decide (bottom: move when the token came back equal);\n\
       ; re-entry re-checks the comparison\n\
       decide2:\n\
      \    and bx, K_MASK\n\
      \    cmp ax, bx\n\
      \    jne emitgate\n"
    else
      "; block: decide (other: move when different); re-entry re-checks\n\
       decide2:\n\
      \    and bx, K_MASK\n\
      \    cmp ax, bx\n\
      \    je emitgate\n"
  in
  let syncgate2 =
    if bottom then
      "; block: stale-frame guard (pure comparison).  The predecessor\n\
       ; retransmits its whole frame every pass, so after this node has\n\
       ; moved and served client puts, stale words from the frame it\n\
       ; moved on would clobber the freshly served values.  Links are\n\
       ; FIFO, so the only frames arriving after a move carry the tag\n\
       ; the node moved on — until the predecessor itself moves again.\n\
       ; Bottom moves on tag == SELF (Dijkstra's move-when-equal), so\n\
       ; it accepts exactly those and ignores the rest (its own stale\n\
       ; frame is tagged SELF - 1 after the increment).\n\
       syncgate2:\n\
      \    cmp bx, [SELF_OFF]\n\
      \    jne poll\n"
    else
      "; block: stale-frame guard (pure comparison; see the bottom\n\
       ; variant's note).  A non-bottom node moves on tag != SELF\n\
       ; (move-when-different), and its stale frame is tagged SELF, so\n\
       ; it ignores exactly tag == SELF.\n\
       syncgate2:\n\
      \    cmp bx, [SELF_OFF]\n\
      \    je poll\n"
  in
  let move =
    if bottom then
      "; block: derive the move (bottom increments modulo K); the\n\
       ; derivation reloads the view from memory, so a replay is exact\n\
       move:\n\
      \    mov ax, [VIEW_OFF]\n\
      \    inc ax\n\
      \    and ax, K_MASK\n\
       align 16\n\
       ; block: stage the move (idempotent store)\n\
       move2:\n\
      \    mov [NEXT_OFF], ax\n\
      \    jmp serve\n"
    else
      "; block: stage the move (other copies the view; idempotent)\n\
       move:\n\
      \    mov [NEXT_OFF], ax\n\
      \    jmp serve\n"
  in
  (* The completeness check and the frame transmit are unrolled — one
     block pair per key with the key's displacement baked in — instead
     of looping on a register cursor.  A loop counter in a register
     cannot survive the replay discipline: a preemption between the
     cursor increment and the loop test replays the increment, and a
     cursor knocked off the 0,2,..,2K sequence turns an equality-
     terminated loop into a runaway (observed as a node emitting
     nonstop garbage until si wrapped 64K, starving its successor).
     Unrolled, every block is a pure comparison or an idempotent
     rebuild-and-emit, and replay is harmless by construction. *)
  let chk_blocks =
    String.concat ""
      (List.init Wire.keys (fun k ->
           Printf.sprintf
             "align 16\n\
              ; block: completeness check, key %d (pure; ax = view)\n\
              chk%d:\n\
             \    cmp ax, [SEENT%d]\n\
             \    jne emitgate\n"
             k k k))
  in
  let emit_blocks =
    String.concat ""
      (List.init Wire.keys (fun k ->
           Printf.sprintf
             "align 16\n\
              ; block: build the key-%d sync word (pure derivation)\n\
              emitw%d:\n\
             \    mov ax, [KVW%d]\n\
             \    and ax, 0x00FF\n\
             \    or ax, KEYB%d\n\
              align 16\n\
              ; block: tag and transmit it; a replay duplicates the\n\
              ; word, which the receiver applies idempotently\n\
              emitx%d:\n\
             \    or ax, [TAGF_OFF]\n\
             \    mov dx, NIC_TX\n\
             \    out dx, ax\n"
             k k k k k))
  in
  let source =
    "org 0\n\
     start:\n\
     ; block: establish the data segment (idempotent; re-run each pass\n\
     ; so a corrupted ds heals within one pass)\n\
    \    mov ax, DATA_SEG\n\
    \    mov ds, ax\n\
     align 16\n\
     ; block: poll the cluster NIC (pure reads)\n\
     poll:\n\
    \    mov dx, NIC_STATUS\n\
    \    in ax, dx\n\
    \    cmp ax, 0\n\
    \    je decide\n\
     align 16\n\
     ; block: pop one word and classify it; a replayed destructive\n\
     ; read can only lose a word, and the sender retransmits its\n\
     ; whole frame every pass\n\
     take:\n\
    \    mov dx, NIC_RX\n\
    \    in ax, dx\n\
    \    mov bx, ax\n\
    \    and bx, 0x8000\n\
    \    jne sync\n\
     align 16\n\
     ; block: token word -> view (idempotent clamp and store)\n\
     token:\n\
    \    and ax, K_MASK\n\
    \    mov [VIEW_OFF], ax\n\
    \    jmp poll\n\
     align 16\n\
     ; block: sync word -> key index in si (pure derivation from ax,\n\
     ; which the scheduler restores across preemptions)\n\
     sync:\n\
    \    mov bx, ax\n\
    \    shr bx, 7\n\
    \    and bx, 0x000E\n\
    \    mov si, bx\n\
     align 16\n\
     ; block: derive the frame tag (pure derivation from ax)\n\
     syncgate:\n\
    \    mov bx, ax\n\
    \    shr bx, 11\n\
    \    and bx, K_MASK\n\
     align 16\n"
    ^ syncgate2
    ^ "align 16\n\
       ; block: record the frame tag for this key (idempotent store;\n\
       ; bx still holds the tag across a replay — registers are\n\
       ; restored — and the value store below reruns with it)\n\
       synctag:\n\
      \    mov [si+SEENT_OFF], bx\n\
       align 16\n\
       ; block: store the value, clamped to a byte (idempotent; also\n\
       ; heals kv memory corruption as frames re-arrive)\n\
       syncval:\n\
      \    and ax, 0x00FF\n\
      \    mov [si+KV_OFF], ax\n\
      \    jmp poll\n\
       align 16\n\
       ; block: load view and self, clamped (pure)\n\
       decide:\n\
    \    mov ax, [VIEW_OFF]\n\
    \    and ax, K_MASK\n\
    \    mov bx, [SELF_OFF]\n\
     align 16\n"
    ^ decide2
    (* frame-completeness gate — every key must carry the view's tag
       before the move is enabled; see [chk_blocks] above *)
    ^ chk_blocks ^ "align 16\n" ^ move
    ^ "align 16\n\
       ; block: client-serve gate (pure reads); requests are only\n\
       ; served here, between enabling and committing a move, so the\n\
       ; token's total order serializes every operation in the ring\n\
       serve:\n\
      \    mov dx, CL_STATUS\n\
      \    in ax, dx\n\
      \    cmp ax, 0\n\
      \    je commit\n\
       align 16\n\
       ; block: pop one request into the staging slot; a replay can\n\
       ; only lose the popped request (a dropped request, never a\n\
       ; half-applied one — nothing below runs without the slot)\n\
       spop:\n\
      \    mov dx, CL_RX\n\
      \    in ax, dx\n\
      \    mov [REQ_OFF], ax\n\
      \    jmp skey\n\
       align 16\n\
       ; block: reject the empty word (a pop that raced an empty\n\
       ; queue, or a cleared slot on replay)\n\
       skey:\n\
      \    mov ax, [REQ_OFF]\n\
      \    cmp ax, 0\n\
      \    je serve\n\
       align 16\n\
       ; block: derive the key index from the staged request (pure)\n\
       skey2:\n\
      \    mov bx, ax\n\
      \    shr bx, 7\n\
      \    and bx, 0x000E\n\
      \    mov si, bx\n\
       align 16\n\
       ; block: dispatch on the op bit (pure reload from the slot)\n\
       sput:\n\
      \    mov ax, [REQ_OFF]\n\
      \    and ax, 0x8000\n\
      \    je sresp\n\
       align 16\n\
       ; block: apply the put (idempotent — rederived from the slot)\n\
       sput2:\n\
      \    mov ax, [REQ_OFF]\n\
      \    and ax, 0x00FF\n\
      \    mov [si+KV_OFF], ax\n\
       align 16\n\
       ; block: build the response — echo the request with the value\n\
       ; byte replaced by the store's (pure reload)\n\
       sresp:\n\
      \    mov ax, [REQ_OFF]\n\
      \    and ax, 0xFF00\n\
      \    or ax, [si+KV_OFF]\n\
       align 16\n\
       ; block: transmit the response; a replay that re-enters here\n\
       ; duplicates it — consecutive duplicates carry the same rolling\n\
       ; request id, so the workload drops them (see Workload)\n\
       sresp2:\n\
      \    mov dx, CL_TX\n\
      \    out dx, ax\n\
      \    jmp sclear\n\
       align 16\n\
       ; block: retire the staged request (idempotent)\n\
       sclear:\n\
      \    mov word [REQ_OFF], 0\n\
      \    jmp serve\n\
       align 16\n\
       ; block: commit the staged move (idempotent clamp and store)\n\
       commit:\n\
      \    mov ax, [NEXT_OFF]\n\
      \    and ax, K_MASK\n\
      \    mov [SELF_OFF], ax\n\
       align 16\n\
       ; block: transmit pacing (pure reads).  The cluster picks up TX\n\
       ; only at the end of the node's slot, so a nonzero TX count\n\
       ; means this slot's frame is already queued: emitting again\n\
       ; would flood the successor faster than it can drain (it must\n\
       ; spend ~20 ticks per word) and starve its decide step.  One\n\
       ; frame per slot keeps every queue bounded without flow-control\n\
       ; state that faults could corrupt.\n\
       emitgate:\n\
      \    mov dx, NIC_TX\n\
      \    in ax, dx\n\
      \    cmp ax, 0\n\
      \    jne finish\n\
       align 16\n\
       ; block: clamp the counter in place (idempotent; heals a\n\
       ; corrupted counter every pass, like Net_ring's announce)\n\
       emitprep:\n\
      \    mov ax, [SELF_OFF]\n\
      \    and ax, K_MASK\n\
      \    mov [SELF_OFF], ax\n\
       align 16\n\
       ; block: derive the frame-tag bits 0x8000 | self << 11 (pure\n\
       ; reload from the clamped counter, so a replay is exact)\n\
       emitprep2:\n\
      \    mov ax, [SELF_OFF]\n\
      \    shl ax, 11\n\
      \    or ax, 0x8000\n\
       align 16\n\
       ; block: store the tag bits (idempotent store)\n\
       emitgo:\n\
      \    mov [TAGF_OFF], ax\n"
    ^ emit_blocks
    ^ "align 16\n\
       ; block: transmit the token (a duplicated token is idempotent)\n\
       emittok:\n\
      \    mov dx, NIC_TX\n\
      \    mov ax, [SELF_OFF]\n\
      \    and ax, K_MASK\n\
      \    out dx, ax\n\
       align 16\n\
       ; block: report the heartbeat and restart the pass\n\
       finish:\n\
      \    out MY_PORT, ax\n\
      \    jmp start\n"
  in
  { Ssos.Process.name = Printf.sprintf "rsm-replica-%d" index;
    source;
    symbols }
