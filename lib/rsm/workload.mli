(** The client driver: seeded open-loop get/put traffic against a
    {!Service}, injected through the per-node client NICs while the
    cluster runs, with responses collected in exact serve order.

    The whole driver is built on
    {!Ssos_net.Cluster.run_sharded_log}'s record hook — requests are
    delivered (and responses drained) on the owning shard right after
    the node's slot, keyed off a per-node slot counter rather than
    wall-clock steps — so injection times, drops, responses, and every
    derived count are bit-identical for any shard count.

    Response order {e is} serve order: a node serves only during its
    own slot, exactly one node slot runs per cluster step, the client
    TX queue is FIFO, and the merged log is sorted by step.  Since
    replicas serve only at token moves, that order is also the token's
    total order over operations — which is what makes
    {!Ssx_stab.Distributed.linearizable} on {!ops} a sound check. *)

type t

val schedule :
  ?rate:float -> n:int -> slots:int -> seed:int64 -> unit ->
  (int * int) array array
(** Per-node request schedules: at each of [slots] per-node slots, with
    probability [rate] (default 0.05) one request — a put of a random
    value or a get, uniform over the {!Wire.keys} keys, request ids
    rolling 1..15 — derived from [seed] (stream [node + 1]), ordered by
    slot. *)

val create : Service.t -> (int * int) array array -> t
(** A fresh driver over [service] with one [(slot, request)] array per
    node (from {!schedule}, or hand-built).  Injection state, counters,
    and collected responses all start empty. *)

val open_loop : ?rate:float -> seed:int64 -> Service.t -> t
(** A fresh {e open-ended} driver: instead of a precomputed schedule,
    each node draws its traffic one slot at a time from an rng stream
    (seed stream [node + 1], probability [rate] per slot, default
    0.05), so no horizon is decided up front — the continuous-serving
    source.  The draw sequence is exactly {!schedule}'s: a
    fixed-duration open run injects the same words a sufficiently long
    schedule would. *)

val discard : t -> unit
(** Drain and discard whatever is sitting in the client TX queues —
    stale responses from an earlier phase (e.g. junk served from a
    corrupted staging slot during fault recovery).  Call before the
    first {!run} when the service has a past. *)

val run : ?shards:int -> ?jobs:int -> t -> steps:int -> unit
(** Advance the cluster [steps] steps (default one shard, i.e.
    sequential), injecting scheduled requests and accumulating
    responses.  May be called repeatedly; per-node slot counters carry
    across calls.  Consecutive duplicate response words from one node —
    the transmit block's replay artifact — are dropped exactly, since
    genuine consecutive responses differ in the rolling request id.
    [jobs] caps the stepper's worker domains
    ({!Ssos_net.Cluster.run_sharded}); both knobs are observationally
    pure. *)

val run_epochs :
  ?shards:int -> ?jobs:int -> t -> epoch:int -> steps:int ->
  on_epoch:(int -> unit) -> unit
(** {!run} in [epoch]-step chunks: after each chunk the chunk's log is
    merged and [on_epoch index] runs on the stepping domain, with all
    shards joined and the cluster quiescent
    ({!Ssos_net.Cluster.run_sharded_epochs}) — the serve engine's
    observe/detect/repair point.  Counters, {!committed} and
    {!take_latencies} are current as of the chunk edge. *)

val responses : t -> (int * int * int) list
(** [(step, node, word)] in serve order. *)

val ops : t -> Ssx_stab.Distributed.kv_op list
(** The responses decoded for the linearizability judge. *)

val injected : t -> int
(** Requests accepted into client RX queues so far. *)

val dropped : t -> int
(** Requests lost to client RX overflow (back-pressure, visible as the
    NIC drop counters under [--metrics]). *)

val committed : t -> int
(** Responses paired FIFO with the oldest unanswered injected request
    carrying the same echoed (op, id, key) byte, maintained
    incrementally as logs merge — the windowed commit count, current
    as of the last {!run} / epoch edge. *)

val take_latencies : t -> int list
(** Drain the per-request latencies (cluster steps from injection to
    the paired response) accumulated since the previous call, in
    commit order — the serve engine's window feed. *)

val matched : t -> int
(** Responses paired 1:1 with injected requests per node by the echoed
    (op, id, key) byte — the committed-request count.  Unlike
    {!committed} this is a batch multiset pairing over the whole run
    (blind to arrival order), kept for the trial campaigns. *)

val lost : t -> int
(** [injected - matched]: requests accepted but never answered (e.g.
    still queued when the run ended, or popped by a replayed read). *)
