(** Word formats of the replicated key-value state machine.

    Two wire vocabularies share the 16-bit word:

    {e Replication} (cluster NIC, node [i] -> node [i+1]):

    - [SYNC]  word: bit 15 set; bits 13-11 the frame {e tag} (the
      sender's bounded Dijkstra counter, 0..K-1); bits 10-8 the key;
      bits 7-0 the value byte.  Eight of these — one per key — carry
      the sender's whole store.
    - [TOKEN] word: bit 15 clear; bits 2-0 the sender's counter.

    {e Client traffic} (client NIC):

    - request: bit 15 the op (1 = put, 0 = get); bits 14-11 a rolling
      request id in 1..15 (never 0, so the all-zero word is not a
      valid request and a replayed pop that reads an empty queue
      self-identifies as junk); bits 10-8 the key; bits 7-0 the value
      (puts) or 0 (gets).
    - response: the request word with the value byte replaced by the
      store's value at serve time — a put echoes what it wrote, a get
      carries what it read.  Bits 15-8 (op, id, key) are echoed
      verbatim, which is what lets the workload match responses to
      requests. *)

val keys : int
(** 8 keys, 3 bits. *)

val k : int
(** 8 counter states — the bounded tag space. *)

val sync : tag:int -> key:int -> value:int -> int
val token : int -> int
val is_sync : int -> bool

val request : put:bool -> rid:int -> key:int -> value:int -> int
(** [rid] must be in 1..15. *)

type op = {
  put : bool;
  rid : int;
  key : int;
  value : int;  (** request: argument; response: value at serve time *)
}

val decode : int -> op
(** Decode a request or response word (same layout). *)

val match_byte : int -> int
(** Bits 15-8 of a request/response word — the (op, id, key) triple a
    response echoes, used to pair it with its request. *)
