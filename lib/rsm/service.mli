(** A self-stabilizing replicated key-value service on a {!Ssos_net}
    cluster.

    Each node is a whole SSX16 machine running the §5.2 scheduler with
    one {!Replica} guest.  The replicas run a token-sequenced
    replication protocol (see {!Replica} and DESIGN.md §4i) over the
    cluster NICs; every node additionally carries a {e client} NIC
    (ports from {!Replica.client_base_port}) through which a
    {!Workload} injects get/put requests and collects responses.

    Legality is two-part ({!Ssx_stab.Distributed.rsm_legitimate}): the
    token ring is legitimate on the true counters {e and} every
    replica's store is identical.  Both hold from the all-zero start
    and re-emerge after arbitrary transient faults. *)

type t = {
  cluster : Ssos_net.Cluster.t;
  systems : Ssos.Sched.t array;  (** node [i]'s scheduler system *)
  clients : Ssos_net.Nic.t array;  (** node [i]'s client-facing NIC *)
  n : int;
}

val build :
  ?n:int ->
  ?policy:Ssos_net.Cluster.policy ->
  ?ticks_per_slot:int ->
  ?latency:int ->
  ?edges:(int * int) list ->
  ?watchdog_period:int ->
  ?capacity:int ->
  ?client_capacity:int ->
  ?faults:(src:int -> dst:int -> Ssos_net.Link.fault_model) ->
  ?decode_cache:bool ->
  ?jit:bool ->
  ?obs:bool ->
  seed:int64 ->
  unit ->
  t
(** An [n]-node service (default 5, at least 2), ring-linked
    [i -> i+1 mod n] unless [edges] overrides the topology (the
    protocol still assumes the ring order for its guarantees).
    [ticks_per_slot] defaults to 200 — a replica pass is longer than a
    {!Ssos_net.Net_ring} pass, since it serves clients and retransmits
    a whole frame.  [capacity] (default 64) bounds the cluster NIC RX
    queue; [client_capacity] (default 8) the client NIC RX queue —
    requests arriving into a full queue are dropped and counted
    ({!Ssos_net.Nic.stats}).

    The bounded-tag protocol stabilizes for [n <= Wire.k] (= 8); larger
    clusters still run deterministically for throughput measurement,
    but the Dijkstra argument needs more counter states than nodes.

    [obs] (default {!Ssos_obs.Obs.enabled}) instruments every node
    (labelled [rsm<i>]), the cluster links, and each client NIC's
    high-water mark and drop counter (labelled [client<i>]). *)

val states : t -> int array
(** True replica counters, node order. *)

val views : t -> int array

val kv : t -> int -> int array
(** Node [i]'s store, one word (value byte) per key. *)

val kvs : t -> int array array

val sample : t -> Ssx_stab.Distributed.rsm_sample

val corrupt_state : t -> int -> int -> unit
val corrupt_view : t -> int -> int -> unit

val corrupt_kv : t -> int -> int -> int -> unit
(** [corrupt_kv t i key v] — overwrite one store word with a raw 16-bit
    value (replicas clamp values to a byte as frames re-arrive). *)

val corrupt_tag : t -> int -> int -> int -> unit
(** Overwrite node [i]'s received-frame tag for [key] — fakes a
    complete frame and can trigger a transiently incoherent move. *)

val legitimate : t -> bool
(** {!Ssx_stab.Distributed.rsm_legitimate} on the current state. *)

val observe :
  ?shards:int -> t -> steps:int -> Ssx_stab.Distributed.rsm_sample list
(** Run [steps] cluster steps, sampling counters and stores after each.
    With [?shards] the run uses {!Ssos_net.Cluster.run_sharded_log} and
    reconstructs the sample list from the per-slot log — bit-identical
    to sequential sampling for any shard count. *)

val run_until_stable : ?shards:int -> t -> limit:int -> int option
(** First step at which the joint state is {!legitimate} (which may
    flicker while a frame is in flight — use {!observe} plus
    {!Ssx_stab.Distributed.rsm_judge} for a windowed verdict).  Sharded
    semantics as {!Ssos_net.Net_ring.run_until_legitimate}. *)
