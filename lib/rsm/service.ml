type t = {
  cluster : Ssos_net.Cluster.t;
  systems : Ssos.Sched.t array;
  clients : Ssos_net.Nic.t array;
  n : int;
}

(* One replica pass — drain a 9-word frame, run the completeness check,
   serve clients, retransmit 9 words — costs roughly 300-350 ticks.  The
   slot must fit at least one full pass, or nodes structurally fall
   behind the predecessor's one-frame-per-slot output and the RX queue
   backlogs into drops; 600 leaves room for a backlog-draining pass. *)
let default_ticks_per_slot = 600

let build ?(n = 5) ?policy ?(ticks_per_slot = default_ticks_per_slot) ?latency
    ?edges
    ?watchdog_period ?(capacity = 64) ?(client_capacity = 8) ?faults
    ?decode_cache ?jit ?obs ~seed () =
  if n < 2 then invalid_arg "Service.build: need at least two nodes";
  let obs = match obs with Some v -> v | None -> Ssos_obs.Obs.enabled () in
  let systems =
    Array.init n (fun index ->
        Ssos.Sched.build ~n:1 ?watchdog_period ?decode_cache ?jit ~obs
          ~obs_label:(Printf.sprintf "rsm%d" index)
          ~processes:[| Replica.process ~bottom:(index = 0) ~index |] ())
  in
  (* The client NIC attaches first so each machine's port map and
     resettable order are fixed by construction, independent of later
     cluster wiring. *)
  let clients =
    Array.map
      (fun sched ->
        let client =
          Ssos_net.Nic.create ~base_port:Replica.client_base_port
            ~capacity:client_capacity ()
        in
        Ssos_net.Nic.attach client sched.Ssos.Sched.machine;
        client)
      systems
  in
  let nodes =
    Array.map
      (fun sched ->
        let nic = Ssos_net.Nic.create ~capacity () in
        Ssos_net.Nic.attach nic sched.Ssos.Sched.machine;
        { Ssos_net.Cluster.machine = sched.Ssos.Sched.machine; nic })
      systems
  in
  let cluster =
    Ssos_net.Cluster.create ?policy ~ticks_per_slot ?latency ~seed nodes
  in
  (* Adversarial daemons see the abstract ring state — each replica's
     raw token counter word. *)
  Ssos_net.Cluster.set_abstract cluster (fun i ->
      Ssx.Memory.read_word
        (Ssx.Machine.memory (Ssos_net.Cluster.machine cluster i))
        Replica.self_addr);
  let edges =
    match edges with Some e -> e | None -> Ssos_net.Cluster.ring_edges ~n
  in
  Ssos_net.Cluster.connect_many ?faults cluster edges;
  if obs then begin
    Ssos_net.Cluster.observe cluster;
    Array.iteri
      (fun i client ->
        Ssos_net.Nic.observe ~label:(Printf.sprintf "client%d" i) client)
      clients
  end;
  { cluster; systems; clients; n }

let node_memory t i = Ssx.Machine.memory (Ssos_net.Cluster.machine t.cluster i)

let states t =
  Array.init t.n (fun i -> Ssx.Memory.read_word (node_memory t i) Replica.self_addr)

let views t =
  Array.init t.n (fun i -> Ssx.Memory.read_word (node_memory t i) Replica.view_addr)

let kv t i =
  let mem = node_memory t i in
  Array.init Wire.keys (fun key -> Ssx.Memory.read_word mem (Replica.kv_addr key))

let kvs t = Array.init t.n (kv t)

let sample t =
  { Ssx_stab.Distributed.step = Ssos_net.Cluster.steps t.cluster;
    states = states t;
    kvs = kvs t }

let corrupt_state t i v =
  Ssx.Memory.write_word (node_memory t i) Replica.self_addr (Ssx.Word.mask v)

let corrupt_view t i v =
  Ssx.Memory.write_word (node_memory t i) Replica.view_addr (Ssx.Word.mask v)

let corrupt_kv t i key v =
  Ssx.Memory.write_word (node_memory t i) (Replica.kv_addr key) (Ssx.Word.mask v)

let corrupt_tag t i key v =
  Ssx.Memory.write_word (node_memory t i) (Replica.seent_addr key) (Ssx.Word.mask v)

let legitimate t =
  Ssx_stab.Distributed.rsm_legitimate ~states:(states t) ~kvs:(kvs t)

(* [record] for the sharded runs below: the node's counter plus a copy
   of its store, read on the owning shard right after the node's slot.
   A node's memory only changes while it runs (delivery just queues
   words in the destination NIC), so the per-step log reconstructs the
   exact (states, kvs) matrices a sequential observer would sample. *)
let record_node cluster who =
  let mem = Ssx.Machine.memory (Ssos_net.Cluster.machine cluster who) in
  ( Ssx.Memory.read_word mem Replica.self_addr,
    Array.init Wire.keys (fun key ->
        Ssx.Memory.read_word mem (Replica.kv_addr key)) )

let observe ?shards t ~steps =
  match shards with
  | None ->
    let acc = ref [] in
    for _ = 1 to steps do
      Ssos_net.Cluster.step t.cluster;
      acc := sample t :: !acc
    done;
    List.rev !acc
  | Some shards ->
    let base = Ssos_net.Cluster.steps t.cluster in
    let current_states = states t in
    let current_kvs = kvs t in
    let log =
      Ssos_net.Cluster.run_sharded_log ~shards ~record:record_node t.cluster
        ~steps
    in
    let rec go s log acc =
      if s >= base + steps then List.rev acc
      else begin
        let log =
          match log with
          | (ls, who, (state, kv)) :: rest when ls = s ->
            current_states.(who) <- state;
            current_kvs.(who) <- kv;
            rest
          | _ -> log
        in
        go (s + 1) log
          ({ Ssx_stab.Distributed.step = s + 1;
             states = Array.copy current_states;
             kvs = Array.map Array.copy current_kvs }
          :: acc)
      end
    in
    go base log []

let run_until_stable ?shards t ~limit =
  match shards with
  | None -> Ssos_net.Cluster.run_until t.cluster ~limit (fun _ -> legitimate t)
  | Some shards ->
    (* Chunked like {!Net_ring.run_until_legitimate}: each chunk is one
       sharded run whose log is replayed to find the exact first stable
       step; the chunk length depends only on the cluster, so the
       result is shard-count invariant (the cluster overshoots to the
       chunk boundary). *)
    let chunk = 16 * max 1 (Ssos_net.Cluster.latency t.cluster - 1) in
    let base = Ssos_net.Cluster.steps t.cluster in
    let current_states = states t in
    let current_kvs = kvs t in
    let rec go consumed =
      if consumed >= limit then None
      else begin
        let steps = min chunk (limit - consumed) in
        let log =
          Ssos_net.Cluster.run_sharded_log ~shards ~record:record_node
            t.cluster ~steps
        in
        let found =
          List.fold_left
            (fun found (s, who, (state, kv)) ->
              current_states.(who) <- state;
              current_kvs.(who) <- kv;
              match found with
              | Some _ -> found
              | None ->
                if
                  Ssx_stab.Distributed.rsm_legitimate ~states:current_states
                    ~kvs:current_kvs
                then Some (s + 1 - base)
                else None)
            None log
        in
        match found with
        | Some consumed -> Some consumed
        | None -> go (consumed + steps)
      end
    in
    go 0
