(* Requests come from one of two sources.  [Fixed] is the original
   trial-shaped driver: precomputed per-node (slot, word) arrays, used
   by the campaigns (T16–T19), whose draw sequence is pinned by the
   bit-identity differentials.  [Open] is the continuous-operation
   source: per-node rng streams drawn one slot at a time, so a serve
   run needs no horizon decided up front.  [Open] performs exactly the
   draw sequence of [schedule] — same streams, same per-slot draws —
   so a fixed-duration open run injects the very words a sufficiently
   long schedule would (pinned in test_serve.ml). *)
type source =
  | Fixed of { schedule : (int * int) array array; cursor : int array }
  | Open of { rate : float; rngs : Ssx_faults.Rng.t array; rid : int array }

type t = {
  service : Service.t;
  source : source;
  slot : int array;
  injected : int list array;  (* per node, newest first *)
  dropped : int array;
  last_word : int array;  (* per node, for consecutive-duplicate dedup *)
  mutable responses : (int * int * int) list;  (* newest first *)
  (* Windowed accounting, maintained incrementally at log-merge time on
     the stepping domain: per node, the injection steps of not-yet-
     answered requests keyed by the echoed (op, id, key) byte. *)
  pending : (int, int Queue.t) Hashtbl.t array;
  mutable committed : int;
  mutable latencies : int list;  (* newest first, drained by callers *)
}

let schedule ?(rate = 0.05) ~n ~slots ~seed () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Workload.schedule: rate";
  Array.init n (fun node ->
      let rng = Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed (node + 1)) in
      let rid = ref 0 in
      let acc = ref [] in
      for slot = 1 to slots do
        if Ssx_faults.Rng.float rng < rate then begin
          let put = Ssx_faults.Rng.bool rng in
          let key = Ssx_faults.Rng.int rng Wire.keys in
          let value = if put then Ssx_faults.Rng.int rng 256 else 0 in
          rid := (!rid mod 15) + 1;
          acc := (slot, Wire.request ~put ~rid:!rid ~key ~value) :: !acc
        end
      done;
      Array.of_list (List.rev !acc))

let make service source =
  let n = service.Service.n in
  { service;
    source;
    slot = Array.make n 0;
    injected = Array.make n [];
    dropped = Array.make n 0;
    last_word = Array.make n 0;
    responses = [];
    pending = Array.init n (fun _ -> Hashtbl.create 16);
    committed = 0;
    latencies = [] }

let create service schedule =
  if Array.length schedule <> service.Service.n then
    invalid_arg "Workload.create: schedule size does not match node count";
  make service
    (Fixed { schedule; cursor = Array.make (Array.length schedule) 0 })

let open_loop ?(rate = 0.05) ~seed service =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Workload.open_loop: rate";
  let n = service.Service.n in
  make service
    (Open
       { rate;
         rngs =
           Array.init n (fun node ->
               Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed (node + 1)));
         rid = Array.make n 0 })

let discard t =
  Array.iter
    (fun client -> ignore (Ssos_net.Nic.drain_tx client))
    t.service.Service.clients

(* Runs on the owning worker domain right after node [who]'s slot: it
   touches only [who]'s cells of the per-node arrays and allocates its
   own result, as {!Ssos_net.Cluster.run_sharded_log} requires — which
   is what makes the whole workload shard-count invariant.  The entry
   carries both directions of that slot's client traffic: responses
   drained, then requests injected (drained words were transmitted
   before this slot's deliveries, so within an entry that order is the
   causal one). *)
let record t _cluster who =
  t.slot.(who) <- t.slot.(who) + 1;
  let slot = t.slot.(who) in
  let injected_now = ref [] in
  let deliver word =
    if Ssos_net.Nic.deliver t.service.Service.clients.(who) word then begin
      t.injected.(who) <- word :: t.injected.(who);
      injected_now := word :: !injected_now
    end
    else t.dropped.(who) <- t.dropped.(who) + 1
  in
  (match t.source with
  | Fixed { schedule; cursor } ->
    let sched = schedule.(who) in
    let len = Array.length sched in
    while cursor.(who) < len && fst sched.(cursor.(who)) <= slot do
      let _, word = sched.(cursor.(who)) in
      cursor.(who) <- cursor.(who) + 1;
      deliver word
    done
  | Open { rate; rngs; rid } ->
    let rng = rngs.(who) in
    if Ssx_faults.Rng.float rng < rate then begin
      let put = Ssx_faults.Rng.bool rng in
      let key = Ssx_faults.Rng.int rng Wire.keys in
      let value = if put then Ssx_faults.Rng.int rng 256 else 0 in
      rid.(who) <- (rid.(who) mod 15) + 1;
      deliver (Wire.request ~put ~rid:rid.(who) ~key ~value)
    end);
  (Ssos_net.Nic.drain_tx t.service.Service.clients.(who), List.rev !injected_now)

(* Merge a chunk of the step-ordered log.  A replica's transmit block
   may replay after a watchdog preemption and emit the same response
   word twice in a row; genuine consecutive responses always differ in
   the rolling request id, so dropping per-node consecutive duplicates
   is exact.  Each surviving response is paired FIFO with the oldest
   unanswered request carrying the same echoed (op, id, key) byte —
   the streaming form of [matched]'s multiset pairing — which yields
   the incremental commit count and a per-request latency in cluster
   steps. *)
let merge t log =
  List.iter
    (fun (step, who, (drained, injected_now)) ->
      List.iter
        (fun word ->
          if word <> t.last_word.(who) then begin
            t.last_word.(who) <- word;
            t.responses <- (step, who, word) :: t.responses;
            match Hashtbl.find_opt t.pending.(who) (Wire.match_byte word) with
            | Some q when not (Queue.is_empty q) ->
              let injected_at = Queue.pop q in
              t.committed <- t.committed + 1;
              t.latencies <- (step - injected_at) :: t.latencies
            | Some _ | None -> ()
          end)
        drained;
      List.iter
        (fun word ->
          let byte = Wire.match_byte word in
          let q =
            match Hashtbl.find_opt t.pending.(who) byte with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.replace t.pending.(who) byte q;
              q
          in
          Queue.push step q)
        injected_now)
    log

let run ?(shards = 1) ?jobs t ~steps =
  merge t
    (Ssos_net.Cluster.run_sharded_log ~shards ?jobs ~record:(record t)
       t.service.Service.cluster ~steps)

let run_epochs ?(shards = 1) ?jobs t ~epoch ~steps ~on_epoch =
  Ssos_net.Cluster.run_sharded_epochs ~shards ?jobs ~epoch ~record:(record t)
    ~on_epoch:(fun index log ->
      merge t log;
      on_epoch index)
    t.service.Service.cluster ~steps

let responses t = List.rev t.responses

let ops t =
  List.rev_map
    (fun (_, _, word) ->
      let op = Wire.decode word in
      { Ssx_stab.Distributed.is_put = op.Wire.put;
        key = op.Wire.key;
        value = op.Wire.value })
    t.responses

let injected t =
  Array.fold_left (fun acc words -> acc + List.length words) 0 t.injected

let dropped t = Array.fold_left ( + ) 0 t.dropped

let committed t = t.committed

let take_latencies t =
  let l = List.rev t.latencies in
  t.latencies <- [];
  l

let matched t =
  (* Pair responses with injected requests per node, as multisets of
     the echoed (op, id, key) byte: a response commits a request when
     one injected request with that byte is still unmatched. *)
  let tables =
    Array.map
      (fun words ->
        let table = Hashtbl.create 16 in
        List.iter
          (fun word ->
            let byte = Wire.match_byte word in
            Hashtbl.replace table byte
              (1 + Option.value ~default:0 (Hashtbl.find_opt table byte)))
          words;
        table)
      t.injected
  in
  List.fold_left
    (fun acc (_, who, word) ->
      let table = tables.(who) in
      let byte = Wire.match_byte word in
      match Hashtbl.find_opt table byte with
      | Some count when count > 0 ->
        Hashtbl.replace table byte (count - 1);
        acc + 1
      | Some _ | None -> acc)
    0 t.responses

let lost t = injected t - matched t
