type t = {
  service : Service.t;
  schedule : (int * int) array array;
  cursor : int array;
  slot : int array;
  injected : int list array;  (* per node, newest first *)
  dropped : int array;
  last_word : int array;  (* per node, for consecutive-duplicate dedup *)
  mutable responses : (int * int * int) list;  (* newest first *)
}

let schedule ?(rate = 0.05) ~n ~slots ~seed () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Workload.schedule: rate";
  Array.init n (fun node ->
      let rng = Ssx_faults.Rng.create (Ssx_faults.Rng.derive seed (node + 1)) in
      let rid = ref 0 in
      let acc = ref [] in
      for slot = 1 to slots do
        if Ssx_faults.Rng.float rng < rate then begin
          let put = Ssx_faults.Rng.bool rng in
          let key = Ssx_faults.Rng.int rng Wire.keys in
          let value = if put then Ssx_faults.Rng.int rng 256 else 0 in
          rid := (!rid mod 15) + 1;
          acc := (slot, Wire.request ~put ~rid:!rid ~key ~value) :: !acc
        end
      done;
      Array.of_list (List.rev !acc))

let create service schedule =
  let n = service.Service.n in
  if Array.length schedule <> n then
    invalid_arg "Workload.create: schedule size does not match node count";
  { service;
    schedule;
    cursor = Array.make n 0;
    slot = Array.make n 0;
    injected = Array.make n [];
    dropped = Array.make n 0;
    last_word = Array.make n 0;
    responses = [] }

let discard t =
  Array.iter
    (fun client -> ignore (Ssos_net.Nic.drain_tx client))
    t.service.Service.clients

(* Runs on the owning worker domain right after node [who]'s slot: it
   touches only [who]'s cells of the per-node arrays and allocates its
   own result, as {!Ssos_net.Cluster.run_sharded_log} requires — which
   is what makes the whole workload shard-count invariant. *)
let record t _cluster who =
  t.slot.(who) <- t.slot.(who) + 1;
  let slot = t.slot.(who) in
  let sched = t.schedule.(who) in
  let len = Array.length sched in
  while
    t.cursor.(who) < len
    && fst sched.(t.cursor.(who)) <= slot
  do
    let _, word = sched.(t.cursor.(who)) in
    t.cursor.(who) <- t.cursor.(who) + 1;
    if Ssos_net.Nic.deliver t.service.Service.clients.(who) word then
      t.injected.(who) <- word :: t.injected.(who)
    else t.dropped.(who) <- t.dropped.(who) + 1
  done;
  Ssos_net.Nic.drain_tx t.service.Service.clients.(who)

let run ?(shards = 1) t ~steps =
  let log =
    Ssos_net.Cluster.run_sharded_log ~shards ~record:(record t)
      t.service.Service.cluster ~steps
  in
  (* Merge in step order (the log carries exactly one entry per step).
     A replica's transmit block may replay after a watchdog preemption
     and emit the same response word twice in a row; genuine
     consecutive responses always differ in the rolling request id, so
     dropping per-node consecutive duplicates is exact. *)
  List.iter
    (fun (step, who, words) ->
      List.iter
        (fun word ->
          if word <> t.last_word.(who) then begin
            t.last_word.(who) <- word;
            t.responses <- (step, who, word) :: t.responses
          end)
        words)
    log

let responses t = List.rev t.responses

let ops t =
  List.rev_map
    (fun (_, _, word) ->
      let op = Wire.decode word in
      { Ssx_stab.Distributed.is_put = op.Wire.put;
        key = op.Wire.key;
        value = op.Wire.value })
    t.responses

let injected t =
  Array.fold_left (fun acc words -> acc + List.length words) 0 t.injected

let dropped t = Array.fold_left ( + ) 0 t.dropped

let matched t =
  (* Pair responses with injected requests per node, as multisets of
     the echoed (op, id, key) byte: a response commits a request when
     one injected request with that byte is still unmatched. *)
  let tables =
    Array.map
      (fun words ->
        let table = Hashtbl.create 16 in
        List.iter
          (fun word ->
            let byte = Wire.match_byte word in
            Hashtbl.replace table byte
              (1 + Option.value ~default:0 (Hashtbl.find_opt table byte)))
          words;
        table)
      t.injected
  in
  List.fold_left
    (fun acc (_, who, word) ->
      let table = tables.(who) in
      let byte = Wire.match_byte word in
      match Hashtbl.find_opt table byte with
      | Some count when count > 0 ->
        Hashtbl.replace table byte (count - 1);
        acc + 1
      | Some _ | None -> acc)
    0 t.responses

let lost t = injected t - matched t
