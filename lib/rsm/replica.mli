(** The replica guest: one self-stabilizing key-value state machine
    node as a single §5.2 process.

    Protocol (token-sequenced replication with frame-completeness
    gating; see DESIGN.md §4i).  Each node runs Dijkstra's K-state
    token ring over the cluster NIC, and every pass retransmits its
    {e whole} store as a frame of eight [SYNC] words tagged with its
    counter, followed by a [TOKEN] word.  A receiver records, per key,
    the tag of the last [SYNC] that wrote it; the node {e moves} (in
    Dijkstra's sense) only when its view of the predecessor's counter
    enables a move {e and} every key carries that very tag — i.e. it
    holds a complete copy of the predecessor's store as of the
    predecessor's last move.  At the move — and only then — the node
    drains its client NIC, applying puts to the store and answering
    each request, then commits the new counter.  Since moves are
    totally ordered by the token, so are all client operations.

    Layout: replay-idempotent 16-byte blocks per the §5.2 scheduler
    discipline (see the per-block comments in the source).  All state
    lives in the process-0 data segment:

    - [0x00] SELF — own counter (the bounded tag, 0..K-1)
    - [0x02] VIEW — view of the predecessor's counter
    - [0x04] NEXT — staged move, committed after serving
    - [0x06] REQ  — client-request staging slot
    - [0x08] TAGF — precomputed frame-tag bits for emission
    - [0x10] SEENT\[8\] — per-key tag of the last SYNC that wrote it
    - [0x20] KV\[8\]    — the store *)

val data_segment : int
val self_addr : int
val view_addr : int
val seent_addr : int -> int
(** Physical address of SEENT[key]. *)

val kv_addr : int -> int
(** Physical address of KV[key]. *)

val client_base_port : int
(** 0x40 — the client NIC's port block (the cluster NIC keeps 0x30). *)

val process : bottom:bool -> index:int -> Ssos.Process.t
(** The guest source for one node; [bottom] selects Dijkstra's
    increment-when-equal move, everyone else copies-when-different. *)
