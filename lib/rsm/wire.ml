let keys = 8
let k = 8

let sync ~tag ~key ~value =
  0x8000 lor ((tag land (k - 1)) lsl 11) lor ((key land (keys - 1)) lsl 8)
  lor (value land 0xFF)

let token counter = counter land (k - 1)
let is_sync word = word land 0x8000 <> 0

let request ~put ~rid ~key ~value =
  if rid < 1 || rid > 15 then invalid_arg "Wire.request: rid must be in 1..15";
  (if put then 0x8000 else 0)
  lor (rid lsl 11)
  lor ((key land (keys - 1)) lsl 8)
  lor (value land 0xFF)

type op = {
  put : bool;
  rid : int;
  key : int;
  value : int;
}

let decode word =
  { put = word land 0x8000 <> 0;
    rid = (word lsr 11) land 0xF;
    key = (word lsr 8) land (keys - 1);
    value = word land 0xFF }

let match_byte word = (word lsr 8) land 0xFF
