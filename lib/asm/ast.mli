(** Abstract syntax of SSX16 assembly source.

    The surface syntax is a NASM-like subset sufficient to express the
    paper's Figures 1–5 verbatim (modulo our ISA's byte encodings):
    labels, [equ]/[org]/[db]/[dw]/[times]/[align] directives, segment
    override memory operands, [rep] prefixes and size keywords ([word],
    [byte]) in either operand position, as the paper itself writes
    ([mov word ax, \[processIndex\]]). *)

type binop = Add | Sub | Mul | Div | Rem | Shl | Shr | And | Or

type expr =
  | Num of int
  | Sym of string        (** label or [equ] constant *)
  | Here                 (** [$] — address of the current item *)
  | Bin of binop * expr * expr
  | Neg of expr

type operand =
  | O_reg16 of Ssx.Registers.reg16
  | O_reg8 of Ssx.Registers.reg8
  | O_sreg of Ssx.Registers.sreg
  | O_imm of expr
  | O_mem of mem_operand
  | O_far of expr * expr  (** [seg:off] jump target *)

and mem_operand = {
  seg : Ssx.Registers.sreg option;
  base : Ssx.Instruction.base;
  disp : expr;
}

type db_arg = Db_expr of expr | Db_string of string

type statement =
  | Label of string
  | Instr of { mnemonic : string; operands : operand list; rep : bool }
  | Org of expr
  | Equ of string * expr
  | Db of db_arg list
  | Dw of expr list
  | Resb of expr         (** reserve N zero bytes *)
  | Times of expr * statement
  | Align of expr        (** pad with [nop] to an N-byte boundary *)

type line = { number : int; stmt : statement }
(** A statement tagged with its 1-based source line. *)

exception Error of int * string
(** [(line, message)] — raised by the parser and assembler. *)

val error : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)
