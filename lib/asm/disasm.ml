type entry = {
  offset : int;
  bytes : string;
  instruction : Ssx.Instruction.t;
}

let disassemble ?(origin = 0) code =
  let n = String.length code in
  let rec sweep pos acc =
    if pos >= n then List.rev acc
    else begin
      let instruction, len = Ssx.Codec.decode_bytes code ~pos in
      let len = min len (n - pos) in
      let entry =
        { offset = origin + pos; bytes = String.sub code pos len; instruction }
      in
      sweep (pos + len) (entry :: acc)
    end
  in
  sweep 0 []

let pp_entry ppf { offset; bytes; instruction } =
  let hex =
    String.concat " "
      (List.init (String.length bytes) (fun i ->
           Printf.sprintf "%02X" (Char.code bytes.[i])))
  in
  Format.fprintf ppf "%04X  %-18s  %a" offset hex Ssx.Instruction.pp instruction

let branch_target = function
  | Ssx.Instruction.Jmp target
  | Ssx.Instruction.Jcc (_, target)
  | Ssx.Instruction.Call target
  | Ssx.Instruction.Loop target ->
    Some target
  | _ -> None

let listing ?origin ?(symbols = []) code =
  let entries = disassemble ?origin code in
  let label_of offset =
    List.find_map (fun (name, v) -> if v = offset then Some name else None) symbols
  in
  let buffer = Buffer.create 1024 in
  List.iter
    (fun entry ->
      (match label_of entry.offset with
      | Some name -> Buffer.add_string buffer (name ^ ":\n")
      | None -> ());
      Buffer.add_string buffer (Format.asprintf "%a" pp_entry entry);
      (match Option.bind (branch_target entry.instruction) label_of with
      | Some name -> Buffer.add_string buffer ("  ; -> " ^ name)
      | None -> ());
      Buffer.add_char buffer '\n')
    entries;
  Buffer.contents buffer
