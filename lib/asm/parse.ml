type token =
  | Ident of string
  | Number of int
  | Str of string
  | Comma
  | Colon
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Dollar
  | Shl_tok
  | Shr_tok
  | Amp
  | Pipe

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize ~number text =
  let n = String.length text in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      let c = text.[i] in
      if c = ';' then List.rev acc
      else if c = ' ' || c = '\t' || c = '\r' then scan (i + 1) acc
      else if c = '\'' || c = '"' then begin
        let quote = c in
        let buf = Buffer.create 8 in
        let rec take j =
          if j >= n then Ast.error number "unterminated string"
          else if text.[j] = quote then j + 1
          else begin
            Buffer.add_char buf text.[j];
            take (j + 1)
          end
        in
        let next = take (i + 1) in
        let s = Buffer.contents buf in
        (* A one-character quote is a character constant in expressions;
           longer strings only make sense in [db]. *)
        if String.length s = 1 then scan next (Number (Char.code s.[0]) :: acc)
        else scan next (Str s :: acc)
      end
      else if is_digit c then begin
        let rec take j =
          if j < n && (is_ident_char text.[j]) then take (j + 1) else j
        in
        let stop = take i in
        let literal = String.sub text i (stop - i) in
        let value =
          try
            if String.length literal > 2 && literal.[0] = '0'
               && (literal.[1] = 'x' || literal.[1] = 'X')
            then int_of_string literal
            else if String.length literal > 2 && literal.[0] = '0'
                    && (literal.[1] = 'b' || literal.[1] = 'B')
            then int_of_string literal
            else int_of_string literal
          with Failure _ -> Ast.error number "bad number literal %S" literal
        in
        scan stop (Number value :: acc)
      end
      else if is_ident_start c then begin
        let rec take j =
          if j < n && is_ident_char text.[j] then take (j + 1) else j
        in
        let stop = take i in
        scan stop (Ident (String.lowercase_ascii (String.sub text i (stop - i))) :: acc)
      end
      else if c = '<' && i + 1 < n && text.[i + 1] = '<' then
        scan (i + 2) (Shl_tok :: acc)
      else if c = '>' && i + 1 < n && text.[i + 1] = '>' then
        scan (i + 2) (Shr_tok :: acc)
      else
        let simple tok = scan (i + 1) (tok :: acc) in
        match c with
        | ',' -> simple Comma
        | ':' -> simple Colon
        | '[' -> simple Lbracket
        | ']' -> simple Rbracket
        | '(' -> simple Lparen
        | ')' -> simple Rparen
        | '+' -> simple Plus
        | '-' -> simple Minus
        | '*' -> simple Star
        | '/' -> simple Slash
        | '%' -> simple Percent
        | '$' -> simple Dollar
        | '&' -> simple Amp
        | '|' -> simple Pipe
        | _ -> Ast.error number "unexpected character %C" c
  in
  scan 0 []

(* --- expression parsing (recursive descent over a token list ref) --- *)

type stream = { number : int; mutable tokens : token list }

let peek s = match s.tokens with [] -> None | t :: _ -> Some t

let advance s =
  match s.tokens with
  | [] -> Ast.error s.number "unexpected end of line"
  | t :: rest ->
    s.tokens <- rest;
    t

let expect s token what =
  let t = advance s in
  if t <> token then Ast.error s.number "expected %s" what

(* Registers are not valid inside plain expressions; the memory-operand
   parser handles them separately. *)
let is_register name =
  Ssx.Registers.reg16_of_name name <> None
  || Ssx.Registers.reg8_of_name name <> None
  || Ssx.Registers.sreg_of_name name <> None

let rec parse_expr s = parse_or s

and parse_or s =
  let left = parse_and s in
  match peek s with
  | Some Pipe ->
    ignore (advance s);
    Ast.Bin (Ast.Or, left, parse_or s)
  | _ -> left

and parse_and s =
  let left = parse_shift s in
  match peek s with
  | Some Amp ->
    ignore (advance s);
    Ast.Bin (Ast.And, left, parse_and s)
  | _ -> left

and parse_shift s =
  let left = parse_sum s in
  match peek s with
  | Some Shl_tok ->
    ignore (advance s);
    Ast.Bin (Ast.Shl, left, parse_shift s)
  | Some Shr_tok ->
    ignore (advance s);
    Ast.Bin (Ast.Shr, left, parse_shift s)
  | _ -> left

and parse_sum s =
  let rec loop left =
    match peek s with
    | Some Plus ->
      ignore (advance s);
      loop (Ast.Bin (Ast.Add, left, parse_product s))
    | Some Minus ->
      ignore (advance s);
      loop (Ast.Bin (Ast.Sub, left, parse_product s))
    | _ -> left
  in
  loop (parse_product s)

and parse_product s =
  let rec loop left =
    match peek s with
    | Some Star ->
      ignore (advance s);
      loop (Ast.Bin (Ast.Mul, left, parse_atom s))
    | Some Slash ->
      ignore (advance s);
      loop (Ast.Bin (Ast.Div, left, parse_atom s))
    | Some Percent ->
      ignore (advance s);
      loop (Ast.Bin (Ast.Rem, left, parse_atom s))
    | _ -> left
  in
  loop (parse_atom s)

and parse_atom s =
  match advance s with
  | Number v -> Ast.Num v
  | Ident name when not (is_register name) -> Ast.Sym name
  | Ident name -> Ast.error s.number "register %s not allowed in expression" name
  | Dollar -> Ast.Here
  | Minus -> Ast.Neg (parse_atom s)
  | Lparen ->
    let e = parse_expr s in
    expect s Rparen "')'";
    e
  | _ -> Ast.error s.number "expected expression"

(* --- operand parsing -------------------------------------------------- *)

let base_of_regs regs number =
  match List.sort compare regs with
  | [] -> Ssx.Instruction.No_base
  | [ "bx" ] -> Ssx.Instruction.Base_bx
  | [ "si" ] -> Ssx.Instruction.Base_si
  | [ "di" ] -> Ssx.Instruction.Base_di
  | [ "bp" ] -> Ssx.Instruction.Base_bp
  | [ "bx"; "si" ] -> Ssx.Instruction.Base_bx_si
  | [ "bx"; "di" ] -> Ssx.Instruction.Base_bx_di
  | names ->
    Ast.error number "unsupported base combination [%s]" (String.concat "+" names)

let parse_mem_operand s =
  (* Inside brackets: optional "sreg :", then +/- separated terms where
     index registers accumulate into the base and everything else into
     the displacement. *)
  let seg =
    match s.tokens with
    | Ident name :: Colon :: rest when Ssx.Registers.sreg_of_name name <> None ->
      s.tokens <- rest;
      Ssx.Registers.sreg_of_name name
    | _ -> None
  in
  let regs = ref [] in
  let disp = ref None in
  let add_disp negate e =
    let e = if negate then Ast.Neg e else e in
    disp := Some (match !disp with None -> e | Some d -> Ast.Bin (Ast.Add, d, e))
  in
  let parse_term negate =
    match s.tokens with
    | Ident name :: rest when Ssx.Registers.reg16_of_name name <> None ->
      if negate then Ast.error s.number "cannot subtract a register";
      s.tokens <- rest;
      regs := name :: !regs
    | _ -> add_disp negate (parse_product s)
  in
  parse_term false;
  let rec more () =
    match peek s with
    | Some Plus ->
      ignore (advance s);
      parse_term false;
      more ()
    | Some Minus ->
      ignore (advance s);
      parse_term true;
      more ()
    | _ -> ()
  in
  more ();
  expect s Rbracket "']'";
  let base = base_of_regs !regs s.number in
  let disp = match !disp with None -> Ast.Num 0 | Some d -> d in
  { Ast.seg; base; disp }

let parse_operand s =
  (* Size keywords may appear before any operand, as in the paper's own
     listings; our ISA derives sizes from registers so they are noise. *)
  (match peek s with
  | Some (Ident ("word" | "byte")) -> ignore (advance s)
  | _ -> ());
  match s.tokens with
  | Ident name :: rest when Ssx.Registers.reg16_of_name name <> None ->
    s.tokens <- rest;
    (match Ssx.Registers.reg16_of_name name with
    | Some r -> Ast.O_reg16 r
    | None -> assert false)
  | Ident name :: rest when Ssx.Registers.reg8_of_name name <> None ->
    s.tokens <- rest;
    (match Ssx.Registers.reg8_of_name name with
    | Some r -> Ast.O_reg8 r
    | None -> assert false)
  | Ident name :: rest when Ssx.Registers.sreg_of_name name <> None ->
    s.tokens <- rest;
    (match Ssx.Registers.sreg_of_name name with
    | Some r -> Ast.O_sreg r
    | None -> assert false)
  | Lbracket :: rest ->
    s.tokens <- rest;
    Ast.O_mem (parse_mem_operand s)
  | _ -> (
    let e = parse_expr s in
    match peek s with
    | Some Colon ->
      ignore (advance s);
      let off = parse_expr s in
      Ast.O_far (e, off)
    | _ -> Ast.O_imm e)

let parse_operands s =
  match peek s with
  | None -> []
  | Some _ ->
    let rec loop acc =
      let operand = parse_operand s in
      match peek s with
      | Some Comma ->
        ignore (advance s);
        loop (operand :: acc)
      | _ -> List.rev (operand :: acc)
    in
    loop []

let parse_db_args s =
  let rec loop acc =
    let arg =
      match s.tokens with
      | Str text :: rest ->
        s.tokens <- rest;
        Ast.Db_string text
      | _ -> Ast.Db_expr (parse_expr s)
    in
    match peek s with
    | Some Comma ->
      ignore (advance s);
      loop (arg :: acc)
    | _ -> List.rev (arg :: acc)
  in
  loop []

let end_of_line s =
  match peek s with
  | None -> ()
  | Some _ -> Ast.error s.number "trailing tokens"

let rec parse_statement s =
  match s.tokens with
  | Ident name :: Ident "equ" :: rest ->
    s.tokens <- rest;
    let e = parse_expr s in
    end_of_line s;
    Ast.Equ (name, e)
  | Ident "org" :: rest ->
    s.tokens <- rest;
    let e = parse_expr s in
    end_of_line s;
    Ast.Org e
  | Ident "db" :: rest ->
    s.tokens <- rest;
    let args = parse_db_args s in
    end_of_line s;
    Ast.Db args
  | Ident "dw" :: rest ->
    s.tokens <- rest;
    let rec loop acc =
      let e = parse_expr s in
      match peek s with
      | Some Comma ->
        ignore (advance s);
        loop (e :: acc)
      | _ -> List.rev (e :: acc)
    in
    let exprs = loop [] in
    end_of_line s;
    Ast.Dw exprs
  | Ident "resb" :: rest ->
    s.tokens <- rest;
    let e = parse_expr s in
    end_of_line s;
    Ast.Resb e
  | Ident "align" :: rest ->
    s.tokens <- rest;
    let e = parse_expr s in
    end_of_line s;
    Ast.Align e
  | Ident "times" :: rest ->
    s.tokens <- rest;
    let count = parse_product s in
    let inner = parse_statement s in
    Ast.Times (count, inner)
  | Ident "rep" :: Ident mnemonic :: rest ->
    s.tokens <- rest;
    let operands = parse_operands s in
    end_of_line s;
    Ast.Instr { mnemonic; operands; rep = true }
  | Ident mnemonic :: rest ->
    s.tokens <- rest;
    let operands = parse_operands s in
    end_of_line s;
    Ast.Instr { mnemonic; operands; rep = false }
  | _ -> Ast.error s.number "cannot parse statement"

let line ~number text =
  match tokenize ~number text with
  | [] -> []
  | Ident name :: Colon :: rest ->
    let label = { Ast.number; stmt = Ast.Label name } in
    if rest = [] then [ label ]
    else
      let s = { number; tokens = rest } in
      [ label; { Ast.number; stmt = parse_statement s } ]
  | tokens ->
    let s = { number; tokens } in
    [ { Ast.number; stmt = parse_statement s } ]

let program text =
  let lines = String.split_on_char '\n' text in
  List.concat (List.mapi (fun i text -> line ~number:(i + 1) text) lines)
