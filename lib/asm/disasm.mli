(** Disassembler and listing generator. *)

type entry = {
  offset : int;           (** segment-relative offset of the instruction *)
  bytes : string;         (** raw encoded bytes *)
  instruction : Ssx.Instruction.t;
}

val disassemble : ?origin:int -> string -> entry list
(** Linear sweep over a byte string from its start. *)

val pp_entry : Format.formatter -> entry -> unit
(** One listing line: offset, hex bytes, mnemonic. *)

val listing : ?origin:int -> ?symbols:(string * int) list -> string -> string
(** Full listing of a byte string.  With [symbols], offsets that carry a
    label are annotated with [label:] lines and branch targets get a
    [; -> label] comment. *)
