(** Parser for SSX16 assembly source.

    Line-oriented: one statement per line ([label:] may share a line
    with an instruction); [;] introduces a comment. *)

val program : string -> Ast.line list
(** Parse a whole source text.
    @raise Ast.Error on the first syntax error. *)

val line : number:int -> string -> Ast.line list
(** Parse a single source line (zero, one or two statements — a label
    can precede an instruction). *)
