type image = {
  origin : int;
  bytes : string;
  symbols : (string * int) list;
}

let symbol image name = List.assoc name image.symbols

(* --- expression evaluation ------------------------------------------- *)

let rec eval ~line ~lookup ~here expr =
  let recurse e = eval ~line ~lookup ~here e in
  match expr with
  | Ast.Num v -> v
  | Ast.Sym name -> (
    match lookup name with
    | Some v -> v
    | None -> Ast.error line "undefined symbol %s" name)
  | Ast.Here -> here
  | Ast.Neg e -> -recurse e
  | Ast.Bin (op, a, b) -> (
    let a = recurse a and b = recurse b in
    match op with
    | Ast.Add -> a + b
    | Ast.Sub -> a - b
    | Ast.Mul -> a * b
    | Ast.Div ->
      if b = 0 then Ast.error line "division by zero in expression";
      a / b
    | Ast.Rem ->
      if b = 0 then Ast.error line "division by zero in expression";
      a mod b
    | Ast.Shl -> a lsl b
    | Ast.Shr -> a lsr b
    | Ast.And -> a land b
    | Ast.Or -> a lor b)

(* --- instruction lowering --------------------------------------------- *)

let lower_mem ~resolve (m : Ast.mem_operand) =
  { Ssx.Instruction.seg_override = m.Ast.seg;
    base = m.Ast.base;
    disp = Ssx.Word.mask (resolve m.Ast.disp) }

let cond_aliases =
  [ ("jc", "jb"); ("jnc", "jnb"); ("jz", "je"); ("jnz", "jne");
    ("jae", "jnb"); ("jnae", "jb"); ("jna", "jbe"); ("jnbe", "ja");
    ("jnl", "jge"); ("jnge", "jl"); ("jng", "jle"); ("jnle", "jg") ]

let lower ~line ~resolve ~mnemonic ~operands ~rep =
  let module I = Ssx.Instruction in
  let module R = Ssx.Registers in
  let imm e = Ssx.Word.mask (resolve e) in
  let imm8 e = resolve e land 0xff in
  let mem m = lower_mem ~resolve m in
  let bad () =
    Ast.error line "invalid operands for %s" mnemonic
  in
  let alu op =
    match operands with
    | [ Ast.O_reg16 d; Ast.O_reg16 s ] -> I.Alu_r16_r16 (op, d, s)
    | [ Ast.O_reg16 d; Ast.O_imm e ] -> I.Alu_r16_imm (op, d, imm e)
    | [ Ast.O_reg16 d; Ast.O_mem m ] -> I.Alu_r16_mem (op, d, mem m)
    | [ Ast.O_mem m; Ast.O_reg16 s ] -> I.Alu_mem_r16 (op, mem m, s)
    | [ Ast.O_reg8 d; Ast.O_reg8 s ] -> I.Alu_r8_r8 (op, d, s)
    | [ Ast.O_reg8 d; Ast.O_imm e ] -> I.Alu_r8_imm (op, d, imm8 e)
    | _ -> bad ()
  in
  let plain instr = match operands with [] -> instr | _ -> bad () in
  let jump_target () =
    match operands with [ Ast.O_imm e ] -> imm e | _ -> bad ()
  in
  let string_op instr = if rep then I.Rep instr else instr in
  let mnemonic =
    match List.assoc_opt mnemonic cond_aliases with
    | Some canonical -> canonical
    | None -> mnemonic
  in
  if rep
     && not (List.mem mnemonic [ "movsb"; "movsw"; "stosb"; "stosw"; "lodsb"; "lodsw" ])
  then Ast.error line "rep prefix only applies to string instructions";
  match mnemonic with
  | "mov" -> (
    match operands with
    | [ Ast.O_reg16 d; Ast.O_imm e ] -> I.Mov_r16_imm (d, imm e)
    | [ Ast.O_reg8 d; Ast.O_imm e ] -> I.Mov_r8_imm (d, imm8 e)
    | [ Ast.O_reg16 d; Ast.O_reg16 s ] -> I.Mov_r16_r16 (d, s)
    | [ Ast.O_sreg d; Ast.O_reg16 s ] -> I.Mov_sreg_r16 (d, s)
    | [ Ast.O_reg16 d; Ast.O_sreg s ] -> I.Mov_r16_sreg (d, s)
    | [ Ast.O_reg16 d; Ast.O_mem m ] -> I.Mov_r16_mem (d, mem m)
    | [ Ast.O_mem m; Ast.O_reg16 s ] -> I.Mov_mem_r16 (mem m, s)
    | [ Ast.O_mem m; Ast.O_imm e ] -> I.Mov_mem_imm (mem m, imm e)
    | [ Ast.O_reg8 d; Ast.O_mem m ] -> I.Mov_r8_mem (d, mem m)
    | [ Ast.O_mem m; Ast.O_reg8 s ] -> I.Mov_mem_r8 (mem m, s)
    | [ Ast.O_sreg d; Ast.O_mem m ] -> I.Mov_sreg_mem (d, mem m)
    | [ Ast.O_mem m; Ast.O_sreg s ] -> I.Mov_mem_sreg (mem m, s)
    | _ -> bad ())
  | "lea" -> (
    match operands with
    | [ Ast.O_reg16 d; Ast.O_mem m ] -> I.Lea (d, mem m)
    | _ -> bad ())
  | "xchg" -> (
    match operands with
    | [ Ast.O_reg16 a; Ast.O_reg16 b ] -> I.Xchg (a, b)
    | _ -> bad ())
  | "add" -> alu I.Add
  | "adc" -> alu I.Adc
  | "sub" -> alu I.Sub
  | "sbb" -> alu I.Sbb
  | "and" -> alu I.And
  | "or" -> alu I.Or
  | "xor" -> alu I.Xor
  | "cmp" -> alu I.Cmp
  | "test" -> alu I.Test
  | "inc" -> (
    match operands with [ Ast.O_reg16 r ] -> I.Inc_r16 r | _ -> bad ())
  | "dec" -> (
    match operands with [ Ast.O_reg16 r ] -> I.Dec_r16 r | _ -> bad ())
  | "neg" -> (
    match operands with [ Ast.O_reg16 r ] -> I.Neg_r16 r | _ -> bad ())
  | "not" -> (
    match operands with [ Ast.O_reg16 r ] -> I.Not_r16 r | _ -> bad ())
  | "shl" -> (
    match operands with
    | [ Ast.O_reg16 r; Ast.O_imm e ] -> I.Shl_r16 (r, resolve e land 0xf)
    | _ -> bad ())
  | "shr" -> (
    match operands with
    | [ Ast.O_reg16 r; Ast.O_imm e ] -> I.Shr_r16 (r, resolve e land 0xf)
    | _ -> bad ())
  | "mul" -> (
    match operands with
    | [ Ast.O_reg8 r ] -> I.Mul_r8 r
    | [ Ast.O_reg16 r ] -> I.Mul_r16 r
    | _ -> bad ())
  | "div" -> (
    match operands with
    | [ Ast.O_reg8 r ] -> I.Div_r8 r
    | [ Ast.O_reg16 r ] -> I.Div_r16 r
    | _ -> bad ())
  | "push" -> (
    match operands with
    | [ Ast.O_reg16 r ] -> I.Push_r16 r
    | [ Ast.O_sreg s ] -> I.Push_sreg s
    | [ Ast.O_imm e ] -> I.Push_imm (imm e)
    | _ -> bad ())
  | "pop" -> (
    match operands with
    | [ Ast.O_reg16 r ] -> I.Pop_r16 r
    | [ Ast.O_sreg s ] -> I.Pop_sreg s
    | _ -> bad ())
  | "pushf" -> plain I.Pushf
  | "popf" -> plain I.Popf
  | "jmp" -> (
    match operands with
    | [ Ast.O_imm e ] -> I.Jmp (imm e)
    | [ Ast.O_far (seg, off) ] -> I.Jmp_far (imm seg, imm off)
    | _ -> bad ())
  | "call" -> I.Call (jump_target ())
  | "ret" -> plain I.Ret
  | "iret" -> plain I.Iret
  | "int" -> (
    match operands with [ Ast.O_imm e ] -> I.Int (imm8 e) | _ -> bad ())
  | "loop" -> I.Loop (jump_target ())
  | "movsb" -> string_op (I.Movs I.Byte)
  | "movsw" -> string_op (I.Movs I.Word_)
  | "stosb" -> string_op (I.Stos I.Byte)
  | "stosw" -> string_op (I.Stos I.Word_)
  | "lodsb" -> string_op (I.Lods I.Byte)
  | "lodsw" -> string_op (I.Lods I.Word_)
  | "in" -> (
    match operands with
    | [ Ast.O_reg8 R.AL; Ast.O_imm e ] -> I.In_ (I.Byte, imm8 e)
    | [ Ast.O_reg16 R.AX; Ast.O_imm e ] -> I.In_ (I.Word_, imm8 e)
    | [ Ast.O_reg8 R.AL; Ast.O_reg16 R.DX ] -> I.In_dx I.Byte
    | [ Ast.O_reg16 R.AX; Ast.O_reg16 R.DX ] -> I.In_dx I.Word_
    | _ -> bad ())
  | "out" -> (
    match operands with
    | [ Ast.O_imm e; Ast.O_reg8 R.AL ] -> I.Out (imm8 e, I.Byte)
    | [ Ast.O_imm e; Ast.O_reg16 R.AX ] -> I.Out (imm8 e, I.Word_)
    | [ Ast.O_reg16 R.DX; Ast.O_reg8 R.AL ] -> I.Out_dx I.Byte
    | [ Ast.O_reg16 R.DX; Ast.O_reg16 R.AX ] -> I.Out_dx I.Word_
    | _ -> bad ())
  | "hlt" -> plain I.Hlt
  | "nop" -> plain I.Nop
  | "cli" -> plain I.Cli
  | "sti" -> plain I.Sti
  | "cld" -> plain I.Cld
  | "std" -> plain I.Std
  | "clc" -> plain I.Clc
  | "stc" -> plain I.Stc
  | name -> (
    match I.cond_of_name (String.sub name 1 (String.length name - 1)) with
    | Some c when String.length name > 1 && name.[0] = 'j' ->
      I.Jcc (c, jump_target ())
    | Some _ | None -> Ast.error line "unknown mnemonic %s" name)

(* --- layout ------------------------------------------------------------ *)

type pass = {
  strict : bool;  (* whether undefined symbols are errors *)
  emit : int list -> unit;
  pad : int -> unit;  (* emit n nop bytes *)
}

let nop_byte =
  match Ssx.Codec.encode Ssx.Instruction.Nop with
  | [ b ] -> b
  | _ -> assert false

let run_pass ~lines ~origin ~instr_align ~symbols ~define pass =
  let pc = ref origin in
  let lookup name =
    match Hashtbl.find_opt symbols name with
    | Some v -> Some v
    | None -> None
  in
  let resolve_with ~line here expr =
    if pass.strict then eval ~line ~lookup ~here expr
    else
      try eval ~line ~lookup ~here expr with Ast.Error _ -> 0
  in
  (* Strict even in pass one: layout decisions must be deterministic. *)
  let resolve_now ~line expr = eval ~line ~lookup ~here:!pc expr in
  let emit bytes =
    pass.emit bytes;
    pc := !pc + List.length bytes
  in
  let pad n =
    if n > 0 then begin
      pass.pad n;
      pc := !pc + n
    end
  in
  let align_to boundary =
    let rem = !pc mod boundary in
    if rem <> 0 then pad (boundary - rem)
  in
  let rec exec_stmt number stmt =
    match stmt with
    | Ast.Label name -> define name !pc
    | Ast.Equ (name, e) -> define name (resolve_now ~line:number e)
    | Ast.Org e ->
      let target = resolve_now ~line:number e in
      if target < !pc then
        Ast.error number "org 0x%X before current location 0x%X" target !pc;
      pad (target - !pc)
    | Ast.Align e ->
      let boundary = resolve_now ~line:number e in
      if boundary <= 0 then Ast.error number "align needs a positive boundary";
      align_to boundary
    | Ast.Resb e ->
      let n = resolve_now ~line:number e in
      if n < 0 then Ast.error number "resb needs a non-negative count";
      pad n
    | Ast.Db args ->
      List.iter
        (fun arg ->
          match arg with
          | Ast.Db_string text ->
            emit (List.map Char.code (List.init (String.length text) (String.get text)))
          | Ast.Db_expr e -> emit [ resolve_with ~line:number !pc e land 0xff ])
        args
    | Ast.Dw exprs ->
      List.iter
        (fun e ->
          let v = Ssx.Word.mask (resolve_with ~line:number !pc e) in
          emit [ Ssx.Word.low_byte v; Ssx.Word.high_byte v ])
        exprs
    | Ast.Times (count, inner) ->
      let n = resolve_now ~line:number count in
      if n < 0 then Ast.error number "times needs a non-negative count";
      for _ = 1 to n do
        exec_stmt number inner
      done
    | Ast.Instr { mnemonic; operands; rep } ->
      let here = !pc in
      let resolve e = resolve_with ~line:number here e in
      let instr = lower ~line:number ~resolve ~mnemonic ~operands ~rep in
      let bytes = Ssx.Codec.encode instr in
      (match instr_align with
      | Some boundary ->
        let len = List.length bytes in
        if len > boundary then
          Ast.error number "instruction longer than alignment boundary";
        if (!pc mod boundary) + len > boundary then align_to boundary
      | None -> ());
      (* Re-lower after padding: [$]-relative operands see the final pc. *)
      let here = !pc in
      let resolve e = resolve_with ~line:number here e in
      let instr = lower ~line:number ~resolve ~mnemonic ~operands ~rep in
      emit (Ssx.Codec.encode instr)
  in
  List.iter (fun { Ast.number; stmt } -> exec_stmt number stmt) lines;
  !pc

let assemble ?(origin = 0) ?instr_align ?(symbols = []) source =
  let lines = Parse.program source in
  let table = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace table (String.lowercase_ascii name) v) symbols;
  (* Pass one: collect symbol values. *)
  let define name value =
    Hashtbl.replace table (String.lowercase_ascii name) value
  in
  let silent = { strict = false; emit = (fun _ -> ()); pad = (fun _ -> ()) } in
  ignore (run_pass ~lines ~origin ~instr_align ~symbols:table ~define silent);
  (* Pass two: encode with all symbols known; redefinition must agree. *)
  let buffer = Buffer.create 1024 in
  let define name value =
    let name = String.lowercase_ascii name in
    match Hashtbl.find_opt table name with
    | Some old when old <> value ->
      Ast.error 0 "symbol %s changed between passes (0x%X -> 0x%X)" name old value
    | Some _ | None -> Hashtbl.replace table name value
  in
  let emit bytes = List.iter (fun b -> Buffer.add_char buffer (Char.chr (b land 0xff))) bytes in
  let pad n =
    for _ = 1 to n do
      Buffer.add_char buffer (Char.chr nop_byte)
    done
  in
  let strict_pass = { strict = true; emit; pad } in
  ignore (run_pass ~lines ~origin ~instr_align ~symbols:table ~define strict_pass);
  let symbols =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) table []
    |> List.sort compare
  in
  { origin; bytes = Buffer.contents buffer; symbols }
