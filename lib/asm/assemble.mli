(** Two-pass assembler.

    Pass one lays out statements (instruction sizes are independent of
    operand values) and assigns label addresses; pass two encodes.
    [equ], [org], [times] and [align] operands must be computable from
    symbols already defined — forward references are allowed everywhere
    else (jump targets, displacements, immediates). *)

type image = {
  origin : int;       (** offset of the first byte within its segment *)
  bytes : string;     (** assembled machine code *)
  symbols : (string * int) list;  (** labels and [equ] constants *)
}

val assemble :
  ?origin:int -> ?instr_align:int -> ?symbols:(string * int) list ->
  string -> image
(** Assemble a source text.

    [origin] is the initial location counter (default 0).
    [instr_align n] guarantees that no instruction crosses an [n]-byte
    boundary by padding with [nop]s — the property §5.2 of the paper
    needs so that every [IP_MASK]-aligned address is an instruction
    start.  [symbols] pre-defines external constants.
    @raise Ast.Error on any assembly error. *)

val symbol : image -> string -> int
(** Look up a symbol. @raise Not_found if undefined. *)

val lower :
  line:int -> resolve:(Ast.expr -> int) ->
  mnemonic:string -> operands:Ast.operand list -> rep:bool ->
  Ssx.Instruction.t
(** Translate one source instruction to the ISA (exposed for tests). *)
