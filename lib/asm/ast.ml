type binop = Add | Sub | Mul | Div | Rem | Shl | Shr | And | Or

type expr =
  | Num of int
  | Sym of string
  | Here
  | Bin of binop * expr * expr
  | Neg of expr

type operand =
  | O_reg16 of Ssx.Registers.reg16
  | O_reg8 of Ssx.Registers.reg8
  | O_sreg of Ssx.Registers.sreg
  | O_imm of expr
  | O_mem of mem_operand
  | O_far of expr * expr

and mem_operand = {
  seg : Ssx.Registers.sreg option;
  base : Ssx.Instruction.base;
  disp : expr;
}

type db_arg = Db_expr of expr | Db_string of string

type statement =
  | Label of string
  | Instr of { mnemonic : string; operands : operand list; rep : bool }
  | Org of expr
  | Equ of string * expr
  | Db of db_arg list
  | Dw of expr list
  | Resb of expr
  | Times of expr * statement
  | Align of expr

type line = { number : int; stmt : statement }

exception Error of int * string

let error line fmt = Format.kasprintf (fun msg -> raise (Error (line, msg))) fmt
