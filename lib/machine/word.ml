type t = int

let mask v = v land 0xffff
let mask8 v = v land 0xff
let low_byte w = w land 0xff
let high_byte w = (w lsr 8) land 0xff
let of_bytes ~low ~high = ((high land 0xff) lsl 8) lor (low land 0xff)
let is_negative w = w land 0x8000 <> 0
let to_signed w = if is_negative w then w - 0x10000 else w

let add a b =
  let sum = a + b in
  let result = mask sum in
  let carry = sum > 0xffff in
  (* Overflow: operands share a sign and the result's sign differs. *)
  let overflow = is_negative a = is_negative b && is_negative result <> is_negative a in
  (result, carry, overflow)

let add_with_carry a b ~carry =
  let sum = a + b + if carry then 1 else 0 in
  let result = mask sum in
  let carry_out = sum > 0xffff in
  let overflow = is_negative a = is_negative b && is_negative result <> is_negative a in
  (result, carry_out, overflow)

let sub a b =
  let diff = a - b in
  let result = mask diff in
  let borrow = diff < 0 in
  let overflow = is_negative a <> is_negative b && is_negative result <> is_negative a in
  (result, borrow, overflow)

let sub_with_borrow a b ~borrow =
  let diff = a - b - if borrow then 1 else 0 in
  let result = mask diff in
  let borrow_out = diff < 0 in
  let overflow = is_negative a <> is_negative b && is_negative result <> is_negative a in
  (result, borrow_out, overflow)

let succ w = mask (w + 1)
let pred w = mask (w - 1)

let parity_even v =
  let rec count bits acc =
    if bits = 0 then acc else count (bits lsr 1) (acc + (bits land 1))
  in
  count (v land 0xff) 0 mod 2 = 0

let pp ppf w = Format.fprintf ppf "0x%04X" w
