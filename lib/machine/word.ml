type t = int

let[@inline] mask v = v land 0xffff
let mask8 v = v land 0xff
let low_byte w = w land 0xff
let high_byte w = (w lsr 8) land 0xff
let of_bytes ~low ~high = ((high land 0xff) lsl 8) lor (low land 0xff)
let is_negative w = w land 0x8000 <> 0
let to_signed w = if is_negative w then w - 0x10000 else w

(* Packed ALU results: the CPU's instruction loop cannot afford a tuple
   allocation per arithmetic instruction, so the primitive operations
   return result, carry and overflow packed into one immediate int (bits
   0-15: result; bit 16: carry/borrow; bit 17: overflow).  The tuple API
   below is a thin view for callers off the hot path. *)

let carry_bit = 0x10000
let overflow_bit = 0x20000

let[@inline] packed_result p = p land 0xffff
let[@inline] packed_carry p = p land carry_bit <> 0
let[@inline] packed_overflow p = p land overflow_bit <> 0

let[@inline] add_packed a b =
  let sum = a + b in
  let result = mask sum in
  (* Overflow: operands share a sign and the result's sign differs. *)
  result
  lor (if sum > 0xffff then carry_bit else 0)
  lor
  (if is_negative a = is_negative b && is_negative result <> is_negative a
   then overflow_bit
   else 0)

let[@inline] add_with_carry_packed a b ~carry =
  let sum = a + b + if carry then 1 else 0 in
  let result = mask sum in
  result
  lor (if sum > 0xffff then carry_bit else 0)
  lor
  (if is_negative a = is_negative b && is_negative result <> is_negative a
   then overflow_bit
   else 0)

let[@inline] sub_packed a b =
  let diff = a - b in
  let result = mask diff in
  result
  lor (if diff < 0 then carry_bit else 0)
  lor
  (if is_negative a <> is_negative b && is_negative result <> is_negative a
   then overflow_bit
   else 0)

let[@inline] sub_with_borrow_packed a b ~borrow =
  let diff = a - b - if borrow then 1 else 0 in
  let result = mask diff in
  result
  lor (if diff < 0 then carry_bit else 0)
  lor
  (if is_negative a <> is_negative b && is_negative result <> is_negative a
   then overflow_bit
   else 0)

let[@inline] unpack p = (packed_result p, packed_carry p, packed_overflow p)
let add a b = unpack (add_packed a b)
let add_with_carry a b ~carry = unpack (add_with_carry_packed a b ~carry)
let sub a b = unpack (sub_packed a b)
let sub_with_borrow a b ~borrow = unpack (sub_with_borrow_packed a b ~borrow)

let succ w = mask (w + 1)
let pred w = mask (w - 1)

let parity_even v =
  let rec count bits acc =
    if bits = 0 then acc else count (bits lsr 1) (acc + (bits land 1))
  in
  count (v land 0xff) 0 mod 2 = 0

let pp ppf w = Format.fprintf ppf "0x%04X" w
