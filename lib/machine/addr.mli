(** Physical addresses and real-mode segmentation.

    SSX16 mirrors the Pentium real-address mode the paper assumes: a
    physical address is 20 bits wide and is formed from a 16-bit segment
    and a 16-bit offset as [segment * 16 + offset], wrapping at 1 MiB. *)

val memory_size : int
(** Total physical address space: 1 MiB. *)

val mask : int -> int
(** Truncate to 20 bits (wrap at [memory_size]). *)

val physical : seg:Word.t -> off:Word.t -> int
(** Real-mode address translation. *)

val pp : Format.formatter -> int -> unit
(** Render as a 5-digit hexadecimal physical address. *)

val pp_seg_off : Format.formatter -> Word.t * Word.t -> unit
(** Render as [seg:off]. *)
