type base =
  | No_base
  | Base_bx
  | Base_si
  | Base_di
  | Base_bp
  | Base_bx_si
  | Base_bx_di

type mem = {
  seg_override : Registers.sreg option;
  base : base;
  disp : Word.t;
}

type alu_op = Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test

type cond = B | NB | BE | A | E | NE | L | GE | LE | G | S | NS | O | NO

type width = Byte | Word_

type t =
  | Mov_r16_imm of Registers.reg16 * Word.t
  | Mov_r8_imm of Registers.reg8 * int
  | Mov_r16_r16 of Registers.reg16 * Registers.reg16
  | Mov_sreg_r16 of Registers.sreg * Registers.reg16
  | Mov_r16_sreg of Registers.reg16 * Registers.sreg
  | Mov_r16_mem of Registers.reg16 * mem
  | Mov_mem_r16 of mem * Registers.reg16
  | Mov_mem_imm of mem * Word.t
  | Mov_r8_mem of Registers.reg8 * mem
  | Mov_mem_r8 of mem * Registers.reg8
  | Mov_sreg_mem of Registers.sreg * mem
  | Mov_mem_sreg of mem * Registers.sreg
  | Lea of Registers.reg16 * mem
  | Xchg of Registers.reg16 * Registers.reg16
  | Alu_r16_r16 of alu_op * Registers.reg16 * Registers.reg16
  | Alu_r16_imm of alu_op * Registers.reg16 * Word.t
  | Alu_r16_mem of alu_op * Registers.reg16 * mem
  | Alu_mem_r16 of alu_op * mem * Registers.reg16
  | Alu_r8_r8 of alu_op * Registers.reg8 * Registers.reg8
  | Alu_r8_imm of alu_op * Registers.reg8 * int
  | Inc_r16 of Registers.reg16
  | Dec_r16 of Registers.reg16
  | Neg_r16 of Registers.reg16
  | Not_r16 of Registers.reg16
  | Shl_r16 of Registers.reg16 * int
  | Shr_r16 of Registers.reg16 * int
  | Mul_r8 of Registers.reg8
  | Mul_r16 of Registers.reg16
  | Div_r8 of Registers.reg8
  | Div_r16 of Registers.reg16
  | Push_r16 of Registers.reg16
  | Push_imm of Word.t
  | Push_sreg of Registers.sreg
  | Pop_r16 of Registers.reg16
  | Pop_sreg of Registers.sreg
  | Pushf
  | Popf
  | Jmp of Word.t
  | Jmp_far of Word.t * Word.t
  | Jcc of cond * Word.t
  | Call of Word.t
  | Ret
  | Iret
  | Int of int
  | Loop of Word.t
  | Movs of width
  | Stos of width
  | Lods of width
  | Rep of t
  | In_ of width * int
  | Out of int * width
  | In_dx of width
  | Out_dx of width
  | Hlt
  | Nop
  | Cli
  | Sti
  | Cld
  | Std
  | Clc
  | Stc
  | Invalid of int

let equal (a : t) (b : t) = a = b

let default_segment = function
  | Base_bp -> Registers.SS
  | No_base | Base_bx | Base_si | Base_di | Base_bx_si | Base_bx_di ->
    Registers.DS

let cond_name = function
  | B -> "b" | NB -> "nb" | BE -> "be" | A -> "a" | E -> "e" | NE -> "ne"
  | L -> "l" | GE -> "ge" | LE -> "le" | G -> "g" | S -> "s" | NS -> "ns"
  | O -> "o" | NO -> "no"

let all_conds = [ B; NB; BE; A; E; NE; L; GE; LE; G; S; NS; O; NO ]

let cond_of_name name = List.find_opt (fun c -> cond_name c = name) all_conds

let alu_name = function
  | Add -> "add" | Adc -> "adc" | Sub -> "sub" | Sbb -> "sbb"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Cmp -> "cmp" | Test -> "test"

let base_name = function
  | No_base -> None
  | Base_bx -> Some "bx"
  | Base_si -> Some "si"
  | Base_di -> Some "di"
  | Base_bp -> Some "bp"
  | Base_bx_si -> Some "bx+si"
  | Base_bx_di -> Some "bx+di"

let pp_mem ppf { seg_override; base; disp } =
  let seg =
    match seg_override with
    | None -> ""
    | Some s -> Registers.sreg_name s ^ ":"
  in
  match base_name base with
  | None -> Format.fprintf ppf "[%s0x%04X]" seg disp
  | Some b when disp = 0 -> Format.fprintf ppf "[%s%s]" seg b
  | Some b -> Format.fprintf ppf "[%s%s+0x%04X]" seg b disp

let r16 = Registers.reg16_name
let r8 = Registers.reg8_name
let sr = Registers.sreg_name

let rec pp ppf instr =
  let f fmt = Format.fprintf ppf fmt in
  match instr with
  | Mov_r16_imm (r, v) -> f "mov %s, 0x%04X" (r16 r) v
  | Mov_r8_imm (r, v) -> f "mov %s, 0x%02X" (r8 r) v
  | Mov_r16_r16 (d, s) -> f "mov %s, %s" (r16 d) (r16 s)
  | Mov_sreg_r16 (d, s) -> f "mov %s, %s" (sr d) (r16 s)
  | Mov_r16_sreg (d, s) -> f "mov %s, %s" (r16 d) (sr s)
  | Mov_r16_mem (d, m) -> f "mov %s, %a" (r16 d) pp_mem m
  | Mov_mem_r16 (m, s) -> f "mov word %a, %s" pp_mem m (r16 s)
  | Mov_mem_imm (m, v) -> f "mov word %a, 0x%04X" pp_mem m v
  | Mov_r8_mem (d, m) -> f "mov %s, %a" (r8 d) pp_mem m
  | Mov_mem_r8 (m, s) -> f "mov byte %a, %s" pp_mem m (r8 s)
  | Mov_sreg_mem (d, m) -> f "mov %s, %a" (sr d) pp_mem m
  | Mov_mem_sreg (m, s) -> f "mov word %a, %s" pp_mem m (sr s)
  | Lea (d, m) -> f "lea %s, %a" (r16 d) pp_mem m
  | Xchg (a, b) -> f "xchg %s, %s" (r16 a) (r16 b)
  | Alu_r16_r16 (op, d, s) -> f "%s %s, %s" (alu_name op) (r16 d) (r16 s)
  | Alu_r16_imm (op, d, v) -> f "%s %s, 0x%04X" (alu_name op) (r16 d) v
  | Alu_r16_mem (op, d, m) -> f "%s %s, %a" (alu_name op) (r16 d) pp_mem m
  | Alu_mem_r16 (op, m, s) -> f "%s word %a, %s" (alu_name op) pp_mem m (r16 s)
  | Alu_r8_r8 (op, d, s) -> f "%s %s, %s" (alu_name op) (r8 d) (r8 s)
  | Alu_r8_imm (op, d, v) -> f "%s %s, 0x%02X" (alu_name op) (r8 d) v
  | Inc_r16 r -> f "inc %s" (r16 r)
  | Dec_r16 r -> f "dec %s" (r16 r)
  | Neg_r16 r -> f "neg %s" (r16 r)
  | Not_r16 r -> f "not %s" (r16 r)
  | Shl_r16 (r, n) -> f "shl %s, %d" (r16 r) n
  | Shr_r16 (r, n) -> f "shr %s, %d" (r16 r) n
  | Mul_r8 r -> f "mul %s" (r8 r)
  | Mul_r16 r -> f "mul %s" (r16 r)
  | Div_r8 r -> f "div %s" (r8 r)
  | Div_r16 r -> f "div %s" (r16 r)
  | Push_r16 r -> f "push %s" (r16 r)
  | Push_imm v -> f "push word 0x%04X" v
  | Push_sreg s -> f "push %s" (sr s)
  | Pop_r16 r -> f "pop %s" (r16 r)
  | Pop_sreg s -> f "pop %s" (sr s)
  | Pushf -> f "pushf"
  | Popf -> f "popf"
  | Jmp target -> f "jmp 0x%04X" target
  | Jmp_far (seg, off) -> f "jmp 0x%04X:0x%04X" seg off
  | Jcc (c, target) -> f "j%s 0x%04X" (cond_name c) target
  | Call target -> f "call 0x%04X" target
  | Ret -> f "ret"
  | Iret -> f "iret"
  | Int n -> f "int 0x%02X" n
  | Loop target -> f "loop 0x%04X" target
  | Movs Byte -> f "movsb"
  | Movs Word_ -> f "movsw"
  | Stos Byte -> f "stosb"
  | Stos Word_ -> f "stosw"
  | Lods Byte -> f "lodsb"
  | Lods Word_ -> f "lodsw"
  | Rep body -> f "rep %a" pp body
  | In_ (Byte, port) -> f "in al, 0x%02X" port
  | In_ (Word_, port) -> f "in ax, 0x%02X" port
  | Out (port, Byte) -> f "out 0x%02X, al" port
  | Out (port, Word_) -> f "out 0x%02X, ax" port
  | In_dx Byte -> f "in al, dx"
  | In_dx Word_ -> f "in ax, dx"
  | Out_dx Byte -> f "out dx, al"
  | Out_dx Word_ -> f "out dx, ax"
  | Hlt -> f "hlt"
  | Nop -> f "nop"
  | Cli -> f "cli"
  | Sti -> f "sti"
  | Cld -> f "cld"
  | Std -> f "std"
  | Clc -> f "clc"
  | Stc -> f "stc"
  | Invalid b -> f "(invalid 0x%02X)" b

let to_string instr = Format.asprintf "%a" pp instr
