type region = { base : int; size : int }

type t = {
  data : Bytes.t;
  prot : Bytes.t;  (* protection bitmap: bit (addr land 7) of byte (addr lsr 3) *)
  mutable rom : region list;
  mutable on_write : int -> unit;
  mutable on_reload : unit -> unit;
  mutable writes : int;
  mutable rom_refusals : int;
}

let size = Addr.memory_size

let no_hook = ignore

let create () =
  { data = Bytes.make size '\000';
    prot = Bytes.make (size lsr 3) '\000';
    rom = [];
    on_write = no_hook;
    on_reload = (fun () -> ());
    writes = 0;
    rom_refusals = 0 }

let is_protected mem addr =
  Char.code (Bytes.unsafe_get mem.prot (addr lsr 3)) land (1 lsl (addr land 7)) <> 0

let protected_regions mem = mem.rom

let set_write_hook mem hook = mem.on_write <- hook
let clear_write_hook mem = mem.on_write <- no_hook
let set_reload_hook mem hook = mem.on_reload <- hook
let clear_reload_hook mem = mem.on_reload <- (fun () -> ())

let[@inline] read_byte mem addr = Char.code (Bytes.unsafe_get mem.data (Addr.mask addr))

let write_byte mem addr v =
  let addr = Addr.mask addr in
  if is_protected mem addr then mem.rom_refusals <- mem.rom_refusals + 1
  else begin
    Bytes.unsafe_set mem.data addr (Char.chr (v land 0xff));
    mem.writes <- mem.writes + 1;
    mem.on_write addr
  end

let force_write_byte mem addr v =
  let addr = Addr.mask addr in
  Bytes.unsafe_set mem.data addr (Char.chr (v land 0xff));
  mem.writes <- mem.writes + 1;
  mem.on_write addr

let unsafe_contents mem = mem.data

let write_count mem = mem.writes
let rom_refusal_count mem = mem.rom_refusals

let read_word mem addr =
  Word.of_bytes ~low:(read_byte mem addr) ~high:(read_byte mem (Addr.mask (addr + 1)))

let write_word mem addr w =
  write_byte mem addr (Word.low_byte w);
  write_byte mem (Addr.mask (addr + 1)) (Word.high_byte w)

let protect mem region =
  mem.rom <- region :: mem.rom;
  for addr = region.base to region.base + region.size - 1 do
    let addr = Addr.mask addr in
    let cell = addr lsr 3 in
    let bits = Char.code (Bytes.unsafe_get mem.prot cell) in
    Bytes.unsafe_set mem.prot cell (Char.chr (bits lor (1 lsl (addr land 7))))
  done

let load_image mem ~base image =
  String.iteri (fun i c -> force_write_byte mem (base + i) (Char.code c)) image

let dump mem ~base ~len =
  (* In-bounds extractions (every caller in practice; campaign digests
     and the fuzzer's full-image compare do this per trial) are one
     blit; only a range that wraps the address space pays the per-byte
     masked path. *)
  if base >= 0 && len >= 0 && base + len <= size then
    Bytes.sub_string mem.data base len
  else String.init len (fun i -> Char.chr (read_byte mem (base + i)))

let blit mem ~src ~dst ~len =
  for i = 0 to len - 1 do
    write_byte mem (dst + i) (read_byte mem (src + i))
  done

(* A region registered through [protect] never wraps the address space
   in practice; fall back to the per-byte path if one ever does so that
   [restore_image] keeps the exact write-protection semantics. *)
let region_in_bounds { base; size = rsize } =
  base >= 0 && rsize >= 0 && base + rsize <= size

let restore_image mem image =
  if String.length image <> size then
    invalid_arg "Memory.restore_image: image must cover the whole memory";
  if List.for_all region_in_bounds mem.rom then begin
    let saved =
      List.map (fun r -> (r, Bytes.sub mem.data r.base r.size)) mem.rom
    in
    Bytes.blit_string image 0 mem.data 0 size;
    List.iter (fun (r, bytes) -> Bytes.blit bytes 0 mem.data r.base r.size) saved;
    mem.on_reload ()
  end
  else
    String.iteri
      (fun addr c ->
        if not (is_protected mem addr) then begin
          Bytes.unsafe_set mem.data addr c;
          mem.on_write addr
        end)
      image
