type region = { base : int; size : int }

type t = { data : Bytes.t; mutable rom : region list }

let size = Addr.memory_size
let create () = { data = Bytes.make size '\000'; rom = [] }

let in_region addr { base; size } = addr >= base && addr < base + size
let is_protected mem addr = List.exists (in_region addr) mem.rom
let protected_regions mem = mem.rom

let read_byte mem addr = Char.code (Bytes.unsafe_get mem.data (Addr.mask addr))

let write_byte mem addr v =
  let addr = Addr.mask addr in
  if not (is_protected mem addr) then
    Bytes.unsafe_set mem.data addr (Char.chr (v land 0xff))

let force_write_byte mem addr v =
  Bytes.unsafe_set mem.data (Addr.mask addr) (Char.chr (v land 0xff))

let read_word mem addr =
  Word.of_bytes ~low:(read_byte mem addr) ~high:(read_byte mem (Addr.mask (addr + 1)))

let write_word mem addr w =
  write_byte mem addr (Word.low_byte w);
  write_byte mem (Addr.mask (addr + 1)) (Word.high_byte w)

let protect mem region = mem.rom <- region :: mem.rom

let load_image mem ~base image =
  String.iteri (fun i c -> force_write_byte mem (base + i) (Char.code c)) image

let dump mem ~base ~len = String.init len (fun i -> Char.chr (read_byte mem (base + i)))

let blit mem ~src ~dst ~len =
  for i = 0 to len - 1 do
    write_byte mem (dst + i) (read_byte mem (src + i))
  done
