type t = Word.t

type flag = Carry | Parity | Zero | Sign | Interrupt | Direction | Overflow

let bit = function
  | Carry -> 0
  | Parity -> 2
  | Zero -> 6
  | Sign -> 7
  | Interrupt -> 9
  | Direction -> 10
  | Overflow -> 11

let get psw flag = psw land (1 lsl bit flag) <> 0

let set psw flag value =
  let m = 1 lsl bit flag in
  if value then psw lor m else psw land lnot m land 0xffff

let initial = 0

let of_result psw result =
  let psw = set psw Zero (result = 0) in
  let psw = set psw Sign (Word.is_negative result) in
  set psw Parity (Word.parity_even result)

let of_result8 psw result =
  let result = result land 0xff in
  let psw = set psw Zero (result = 0) in
  let psw = set psw Sign (result land 0x80 <> 0) in
  set psw Parity (Word.parity_even result)

let pp ppf psw =
  let names =
    [ (Carry, "CF"); (Parity, "PF"); (Zero, "ZF"); (Sign, "SF");
      (Interrupt, "IF"); (Direction, "DF"); (Overflow, "OF") ]
  in
  let present = List.filter (fun (f, _) -> get psw f) names in
  Format.fprintf ppf "[%s]" (String.concat " " (List.map snd present))
