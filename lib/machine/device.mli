(** Peripheral devices.

    A device observes the clock: on every machine tick its [tick]
    function runs before the CPU step and may assert interrupt pins or
    mutate its own state.  Devices expose I/O ports through the machine's
    port table (see {!Machine.register_port}).

    {2 Quiescence}

    A device whose tick is a pure internal countdown can declare how
    long it will stay silent: [quiescent ()] returns the number of
    upcoming ticks during which [tick] is guaranteed to raise no pins
    and touch no machine-visible state (memory, ports), and
    [advance n] (for any [n <= quiescent ()]) applies those [n]
    countdowns at once with the same final device state as [n]
    individual [tick] calls.  The block compiler's quiet runner uses
    the pair to batch delay loops in closed form instead of calling
    the device closure every tick.  The defaults — a zero window and a
    no-op advance — are always sound: a device that cannot look ahead
    simply keeps its per-tick cadence. *)

type t = {
  name : string;
  tick : Cpu.t -> unit;
  quiescent : unit -> int;
  advance : int -> unit;
}

val make :
  ?quiescent:(unit -> int) ->
  ?advance:(int -> unit) ->
  name:string ->
  tick:(Cpu.t -> unit) ->
  unit ->
  t
