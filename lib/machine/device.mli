(** Peripheral devices.

    A device observes the clock: on every machine tick its [tick]
    function runs before the CPU step and may assert interrupt pins or
    mutate its own state.  Devices expose I/O ports through the machine's
    port table (see {!Machine.register_port}). *)

type t = {
  name : string;
  tick : Cpu.t -> unit;
}

val make : name:string -> tick:(Cpu.t -> unit) -> t
