type t = {
  name : string;
  tick : Cpu.t -> unit;
  quiescent : unit -> int;
  advance : int -> unit;
}

let make ?(quiescent = fun () -> 0) ?(advance = fun _ -> ()) ~name ~tick () =
  { name; tick; quiescent; advance }
