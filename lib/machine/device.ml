type t = { name : string; tick : Cpu.t -> unit }

let make ~name ~tick = { name; tick }
