(** The SSX16 processor.

    Implements the paper's processor model (§2): a clock tick triggers a
    processor step; the step is a transition function of the current
    state and inputs.  The processor supports maskable interrupts (INTR,
    gated by the interrupt flag), the non-maskable interrupt (NMI) and
    exceptions, all dispatched through the interrupt descriptor table
    addressed by the IDTR.

    Two of the paper's proposed hardware augmentations are implemented
    and individually switchable so that ablation experiments can
    demonstrate their necessity:

    - the {e NMI counter}: a countdown register decremented on every
      clock tick; the NMI is accepted only when the counter is zero, the
      counter is raised to its maximum when the NMI is taken and cleared
      by [iret].  When disabled, the processor instead uses the
      conventional "in-NMI until iret" latch whose corruption can mask
      NMIs forever — the flaw the paper points out.
    - a {e hardwired NMI vector}: the NMI handler address is read from a
      fixed (ROM) IDT ignoring the corruptible IDTR. *)

type nmi_dispatch =
  | Hardwired_idt of int
      (** Physical base of a fixed IDT used for NMI dispatch only. *)
  | Via_idtr  (** Use the (corruptible) IDTR like any other vector. *)

type config = {
  nmi_counter_enabled : bool;
  nmi_counter_max : int;
      (** Chosen greater than the longest NMI-handler execution, per §2. *)
  nmi_dispatch : nmi_dispatch;
  reset_vector : Word.t * Word.t;  (** [(cs, ip)] loaded on reset. *)
}

val default_config : config
(** NMI counter enabled with max 200000, hardwired IDT at 0xF0000,
    reset vector F000:0000. *)

type io = {
  io_in : int -> Instruction.width -> int;
      (** [io_in port width] — value read by [in]. *)
  io_out : int -> Instruction.width -> int -> unit;
      (** [io_out port width value] — effect of [out]. *)
}

(** What a single step did, for tracing and measurement. *)
type event =
  | Executed of Instruction.t
  | Took_interrupt of { vector : int; nmi : bool }
  | Took_exception of int
  | Halted_idle
  | Did_reset

type t = {
  regs : Registers.t;
  mem : Memory.t;
  config : config;
  mutable idtr : int;  (** IDT physical base; corruptible, as in §1. *)
  mutable nmi_pin : bool;
  mutable in_nmi : bool;
      (** Conventional NMI latch, used when the counter is disabled. *)
  mutable intr : int option;  (** Pending maskable interrupt vector. *)
  mutable reset_pin : bool;
  mutable halted : bool;
  mutable io : io;
  mutable steps : int;  (** Clock ticks executed so far. *)
  mutable decode_cache : event Decode_cache.t option;
      (** Decoded-instruction cache used by the fetch path; [None]
          means decode from raw bytes every step.  The per-entry
          payload is the prebuilt [Executed] event, so cache hits
          allocate nothing.  Whoever installs a cache must also wire
          {!Memory.set_write_hook} to {!Decode_cache.invalidate} (see
          {!Machine.create}). *)
}

(** Vector numbers for machine exceptions (IA-32 numbering). *)
val vec_divide_error : int

val vec_nmi : int
val vec_invalid_opcode : int

val create : ?config:config -> Memory.t -> t
(** Processor in its power-on state attached to [mem]. *)

val reset : t -> unit
(** Apply the reset sequence (also triggered by the reset pin). *)

val raise_nmi : t -> unit
(** Assert the NMI pin (edge-triggered; latched until accepted). *)

val raise_intr : t -> int -> unit
(** Request a maskable interrupt with the given vector. *)

val step : t -> event
(** Execute one clock tick: decrement the NMI counter, accept pending
    interrupts, then fetch-decode-execute one instruction (or one
    iteration of a [rep]-prefixed string instruction). *)

val fetch_decode : t -> Instruction.t * int
(** Decode the instruction at the current [cs:ip] without executing. *)

val read_idt_entry : t -> base:int -> int -> Word.t * Word.t
(** [(segment, offset)] of a vector's handler in the IDT at [base]. *)

val in_nmi_state : t -> bool
(** The paper's "nmi state": the NMI pin is set and the next step will
    enter the NMI handler. *)

(** {1 Execution internals}

    Exported for {!Block_compiler}, which pre-compiles straight-line
    instruction runs into closures and therefore needs the same
    primitive operations the interpreter's [execute] uses.  Nothing
    else should call these. *)

exception Fault of int
(** Machine exception raised mid-execution; vectors through the IDT. *)

val service : t -> int -> nmi:bool -> return_ip:Word.t -> unit
(** Deliver an interrupt/exception: push psw/cs/[return_ip], clear IF,
    arm the NMI counter (when [nmi]) and load the handler address. *)

val execute : t -> Instruction.t -> ip0:Word.t -> len:int -> unit
(** Run one already-decoded instruction.  [r.ip] must already be
    advanced to [ip0 + len]; may raise {!Fault}. *)

val dispatch : t -> Instruction.t -> ip0:Word.t -> len:int -> event -> event
(** Advance [ip] past the instruction, {!execute} it, and turn a
    {!Fault} into IDT dispatch + [Took_exception].  [event] is the
    prebuilt [Executed] value returned on normal completion. *)

val exec_one : t -> event
(** Fetch-decode-execute at the current [cs:ip] (decode cache aware).
    The execute stage of {!step}, without the interrupt prologue. *)

val nmi_acceptable : t -> bool
(** Whether a pending NMI would be accepted this step. *)

val effective_address : t -> Instruction.mem -> int
val alu16 : t -> Instruction.alu_op -> int -> int -> int
val alu8 : t -> Instruction.alu_op -> int -> int -> int
(** ALU with flag update; return the value to store back, or {!no_store}
    for the compare/test forms. *)

val no_store : int

val cond_holds : t -> Instruction.cond -> bool
val push : t -> Word.t -> unit
val pop : t -> Word.t

val cacheable_ip_limit : int
val cacheable_pa_limit : int
(** Largest [ip] / physical opcode address for which the whole decode
    window is linear (no 16-bit or 20-bit wrap) — the precondition both
    the decode cache and the block compiler require before keying
    anything by physical address. *)
