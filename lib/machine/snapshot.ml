type t = {
  regs : Registers.t;  (* a private copy *)
  idtr : int;
  nmi_pin : bool;
  in_nmi : bool;
  intr : int option;
  reset_pin : bool;
  halted : bool;
  steps : int;
  ram : string;
  device_state : (unit -> unit) array;
      (* restore thunks from the machine's resettable devices, bound to
         the device instances of the captured machine *)
}

let capture machine =
  let cpu = Machine.cpu machine in
  { regs = Registers.copy cpu.Cpu.regs;
    idtr = cpu.Cpu.idtr;
    nmi_pin = cpu.Cpu.nmi_pin;
    in_nmi = cpu.Cpu.in_nmi;
    intr = cpu.Cpu.intr;
    reset_pin = cpu.Cpu.reset_pin;
    halted = cpu.Cpu.halted;
    steps = cpu.Cpu.steps;
    ram = Memory.dump (Machine.memory machine) ~base:0 ~len:Memory.size;
    device_state = Machine.capture_device_state machine }

let restore snapshot machine =
  (* A device attached after capture has no restore thunk here; silently
     skipping it would leak trial state across snapshot-reset campaigns
     (a late-attached NIC kept its queues once).  Refuse instead. *)
  let now = Machine.resettable_count machine in
  let captured = Array.length snapshot.device_state in
  if now > captured then
    invalid_arg
      (Printf.sprintf
         "Snapshot.restore: machine has %d resettable devices but the \
          snapshot captured %d; attach devices before capturing"
         now captured);
  let cpu = Machine.cpu machine in
  let mem = Machine.memory machine in
  let dst = cpu.Cpu.regs and src = snapshot.regs in
  List.iter
    (fun r -> Registers.set16 dst r (Registers.get16 src r))
    Registers.all_reg16;
  List.iter
    (fun r -> Registers.set_sreg dst r (Registers.get_sreg src r))
    Registers.all_sreg;
  dst.Registers.ip <- src.Registers.ip;
  dst.Registers.psw <- src.Registers.psw;
  dst.Registers.nmi_counter <- src.Registers.nmi_counter;
  cpu.Cpu.idtr <- snapshot.idtr;
  cpu.Cpu.nmi_pin <- snapshot.nmi_pin;
  cpu.Cpu.in_nmi <- snapshot.in_nmi;
  cpu.Cpu.intr <- snapshot.intr;
  cpu.Cpu.reset_pin <- snapshot.reset_pin;
  cpu.Cpu.halted <- snapshot.halted;
  cpu.Cpu.steps <- snapshot.steps;
  Memory.restore_image mem snapshot.ram;
  Array.iter (fun thunk -> thunk ()) snapshot.device_state

let register_values snapshot =
  List.map
    (fun r -> (Registers.reg16_name r, Registers.get16 snapshot.regs r))
    Registers.all_reg16
  @ List.map
      (fun r -> (Registers.sreg_name r, Registers.get_sreg snapshot.regs r))
      Registers.all_sreg
  @ [ ("ip", snapshot.regs.Registers.ip);
      ("psw", snapshot.regs.Registers.psw);
      ("nmi_counter", snapshot.regs.Registers.nmi_counter);
      ("idtr", snapshot.idtr);
      ("nmi_pin", if snapshot.nmi_pin then 1 else 0);
      ("in_nmi", if snapshot.in_nmi then 1 else 0);
      ("reset_pin", if snapshot.reset_pin then 1 else 0);
      ("halted", if snapshot.halted then 1 else 0);
      ("intr", (match snapshot.intr with None -> -1 | Some v -> v));
      ("steps", snapshot.steps) ]

let digest snapshot =
  (* FNV-1a over the register summary and RAM. *)
  let d = Digest.create () in
  List.iter
    (fun (name, v) ->
      Digest.add_string d name;
      Digest.add_int24 d v)
    (register_values snapshot);
  Digest.add_string d snapshot.ram;
  Digest.to_hex d

let equal a b = register_values a = register_values b && a.ram = b.ram

type difference =
  | Register of string * int * int
  | Memory_range of { first : int; last : int }

let diff a b =
  let register_diffs =
    List.filter_map
      (fun ((name, va), (_, vb)) ->
        if va <> vb then Some (Register (name, va, vb)) else None)
      (List.combine (register_values a) (register_values b))
  in
  let ranges = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (first, last) ->
      ranges := Memory_range { first; last } :: !ranges;
      current := None
    | None -> ()
  in
  String.iteri
    (fun addr ca ->
      if ca <> b.ram.[addr] then
        current :=
          (match !current with
          | Some (first, last) when last + 1 = addr -> Some (first, addr)
          | Some _ ->
            flush ();
            Some (addr, addr)
          | None -> Some (addr, addr))
      else flush ())
    a.ram;
  flush ();
  register_diffs @ List.rev !ranges

let pp_difference ppf = function
  | Register (name, a, b) ->
    Format.fprintf ppf "%s: 0x%04X -> 0x%04X" name a b
  | Memory_range { first; last } ->
    Format.fprintf ppf "memory [%a, %a] (%d bytes)" Addr.pp first Addr.pp last
      (last - first + 1)
