(** The SSX16 instruction set.

    A deliberately Pentium-real-mode-flavoured ISA covering every
    construct used by the paper's Figures 1–5 (mov in all addressing
    forms, lea, segment overrides, mul, and/inc/add/cmp, jb/jmp,
    push/iret, rep movsb, cld, sti/cli, hlt, nop) plus a conventional
    complement of ALU, stack, string and I/O operations so that realistic
    guest programs can be written.

    Jump targets are absolute offsets within the current code segment.
    Instructions are 1–6 bytes long when encoded (see {!Encode}), so a
    corrupted instruction pointer can land mid-instruction and
    mis-decode — the hazard §5.2 of the paper defends against. *)

type base =
  | No_base
  | Base_bx
  | Base_si
  | Base_di
  | Base_bp
  | Base_bx_si
  | Base_bx_di
      (** Index-register component of a memory operand. *)

type mem = {
  seg_override : Registers.sreg option;
      (** Explicit segment, e.g. [\[ss:STACK_TOP-2\]]; default is [DS]
          ([SS] when the base involves [BP]). *)
  base : base;
  disp : Word.t;  (** 16-bit displacement, always encoded. *)
}

type alu_op = Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test

type cond =
  | B   (** below: CF *)
  | NB  (** not below *)
  | BE  (** below or equal: CF or ZF *)
  | A   (** above *)
  | E   (** equal: ZF *)
  | NE
  | L   (** less (signed): SF <> OF *)
  | GE
  | LE
  | G
  | S   (** sign *)
  | NS
  | O   (** overflow *)
  | NO

type width = Byte | Word_

type t =
  | Mov_r16_imm of Registers.reg16 * Word.t
  | Mov_r8_imm of Registers.reg8 * int
  | Mov_r16_r16 of Registers.reg16 * Registers.reg16
  | Mov_sreg_r16 of Registers.sreg * Registers.reg16
  | Mov_r16_sreg of Registers.reg16 * Registers.sreg
  | Mov_r16_mem of Registers.reg16 * mem
  | Mov_mem_r16 of mem * Registers.reg16
  | Mov_mem_imm of mem * Word.t
  | Mov_r8_mem of Registers.reg8 * mem
  | Mov_mem_r8 of mem * Registers.reg8
  | Mov_sreg_mem of Registers.sreg * mem
  | Mov_mem_sreg of mem * Registers.sreg
  | Lea of Registers.reg16 * mem
  | Xchg of Registers.reg16 * Registers.reg16
  | Alu_r16_r16 of alu_op * Registers.reg16 * Registers.reg16
  | Alu_r16_imm of alu_op * Registers.reg16 * Word.t
  | Alu_r16_mem of alu_op * Registers.reg16 * mem
  | Alu_mem_r16 of alu_op * mem * Registers.reg16
  | Alu_r8_r8 of alu_op * Registers.reg8 * Registers.reg8
  | Alu_r8_imm of alu_op * Registers.reg8 * int
  | Inc_r16 of Registers.reg16
  | Dec_r16 of Registers.reg16
  | Neg_r16 of Registers.reg16
  | Not_r16 of Registers.reg16
  | Shl_r16 of Registers.reg16 * int
  | Shr_r16 of Registers.reg16 * int
  | Mul_r8 of Registers.reg8   (** ax := al * r8 *)
  | Mul_r16 of Registers.reg16 (** dx:ax := ax * r16 *)
  | Div_r8 of Registers.reg8   (** al := ax / r8, ah := ax mod r8; #DE on 0 *)
  | Div_r16 of Registers.reg16 (** ax := dx:ax / r16, dx := rem; #DE on 0 *)
  | Push_r16 of Registers.reg16
  | Push_imm of Word.t
  | Push_sreg of Registers.sreg
  | Pop_r16 of Registers.reg16
  | Pop_sreg of Registers.sreg
  | Pushf
  | Popf
  | Jmp of Word.t               (** absolute offset in CS *)
  | Jmp_far of Word.t * Word.t  (** segment, offset *)
  | Jcc of cond * Word.t
  | Call of Word.t
  | Ret
  | Iret
  | Int of int
  | Loop of Word.t
  | Movs of width
  | Stos of width
  | Lods of width
  | Rep of t                    (** rep-prefixed string instruction *)
  | In_ of width * int          (** al/ax := port *)
  | Out of int * width          (** port := al/ax *)
  | In_dx of width              (** al/ax := port named by dx *)
  | Out_dx of width             (** port named by dx := al/ax *)
  | Hlt
  | Nop
  | Cli
  | Sti
  | Cld
  | Std
  | Clc
  | Stc
  | Invalid of int              (** undecodable opcode byte; raises #UD *)

val equal : t -> t -> bool

val default_segment : base -> Registers.sreg
(** [DS], or [SS] when the base register is [BP]. *)

val cond_name : cond -> string
val cond_of_name : string -> cond option
val all_conds : cond list
val alu_name : alu_op -> string
val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit
(** NASM-like rendering, e.g. [mov word \[ss:0xFFFD\], ax]. *)

val to_string : t -> string
