(** The processor status word (flag register).

    The psw is stored as a plain 16-bit word so that it can be pushed,
    popped and corrupted like any other state, exactly as the paper's
    fault model requires.  Bit positions follow IA-32. *)

type t = Word.t

type flag =
  | Carry      (** bit 0 *)
  | Parity     (** bit 2 *)
  | Zero       (** bit 6 *)
  | Sign       (** bit 7 *)
  | Interrupt  (** bit 9 — maskable-interrupt enable *)
  | Direction  (** bit 10 — string-operation direction *)
  | Overflow   (** bit 11 *)

val bit : flag -> int
(** Bit position of a flag. *)

val get : t -> flag -> bool
val set : t -> flag -> bool -> t

val initial : t
(** Power-on value: all arithmetic flags clear, interrupts disabled. *)

val of_result : t -> Word.t -> t
(** Update Zero/Sign/Parity from a 16-bit result, leaving other bits. *)

val of_result8 : t -> int -> t
(** Update Zero/Sign/Parity from an 8-bit result. *)

val pp : Format.formatter -> t -> unit
(** Symbolic rendering, e.g. [\[CF ZF IF\]]. *)
