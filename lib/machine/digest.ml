(* FNV-1a with the 64-bit parameters, folded into OCaml's 63-bit native
   int by [land max_int] after every multiply — exactly the arithmetic
   the inline copies in Snapshot and Cluster always performed, so the
   hex output is unchanged by the deduplication. *)

type t = { mutable h : int }

let offset_basis = 0x4bf29ce484222325
let prime = 0x100000001b3

let create () = { h = offset_basis }

let[@inline] add_byte t byte =
  t.h <- (t.h lxor (byte land 0xff)) * prime land max_int

let add_string t s = String.iter (fun c -> add_byte t (Char.code c)) s

let add_int24 t v =
  add_byte t v;
  add_byte t (v asr 8);
  add_byte t (v asr 16)

let to_hex t = Printf.sprintf "%016x" t.h

let string s =
  let t = create () in
  add_string t s;
  to_hex t
