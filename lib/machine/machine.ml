type port_handler = {
  read : Instruction.width -> int;
  write : Instruction.width -> int -> unit;
}

let null_port =
  { read = (fun _ -> 0); write = (fun _ _ -> ()) }

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  mutable devices : Device.t array;
  mutable device_ticks : (Cpu.t -> unit) array;
      (* devices.(i).tick, pre-extracted for the per-tick loop *)
  ports : port_handler array;  (* indexed by port byte, 256 entries *)
  mutable hooks : (t -> Cpu.event -> unit) array;
  mutable resettables : (unit -> unit -> unit) array;
      (* device-state capture hooks: calling one captures the device's
         current host-side state and returns the thunk that restores it *)
}

let cpu m = m.cpu
let memory m = m.mem
let ticks m = m.cpu.Cpu.steps
let decode_cache m = m.cpu.Cpu.decode_cache

let set_decode_cache m enabled =
  match (m.cpu.Cpu.decode_cache, enabled) with
  | Some _, true | None, false -> ()
  | None, true ->
    let cache = Decode_cache.create ~empty_payload:Cpu.Halted_idle in
    m.cpu.Cpu.decode_cache <- Some cache;
    Memory.set_write_hook m.mem (fun addr -> Decode_cache.invalidate cache addr);
    Memory.set_reload_hook m.mem (fun () -> Decode_cache.clear cache)
  | Some _, false ->
    m.cpu.Cpu.decode_cache <- None;
    Memory.clear_write_hook m.mem;
    Memory.clear_reload_hook m.mem

let create ?config ?(decode_cache = true) () =
  let mem = Memory.create () in
  let cpu = Cpu.create ?config mem in
  let m =
    { cpu; mem; devices = [||]; device_ticks = [||];
      ports = Array.make 256 null_port; hooks = [||]; resettables = [||] }
  in
  (* Port numbers are a single byte in the instruction encoding, so a
     flat 256-entry table replaces the hashtable (and its per-I/O
     option allocation) on the in/out path. *)
  let io_in port width = (Array.unsafe_get m.ports (port land 0xff)).read width in
  let io_out port width value =
    (Array.unsafe_get m.ports (port land 0xff)).write width value
  in
  cpu.Cpu.io <- { Cpu.io_in; io_out };
  set_decode_cache m decode_cache;
  m

let add_device m device =
  m.devices <- Array.append m.devices [| device |];
  m.device_ticks <- Array.map (fun d -> d.Device.tick) m.devices

let register_port m ~port ~read ~write =
  m.ports.(port land 0xff) <- { read; write }

let on_event m hook = m.hooks <- Array.append m.hooks [| hook |]

let add_resettable m capture =
  m.resettables <- Array.append m.resettables [| capture |]

let resettable_count m = Array.length m.resettables
let capture_device_state m = Array.map (fun capture -> capture ()) m.resettables

let tick m =
  let devices = m.device_ticks in
  for i = 0 to Array.length devices - 1 do
    (Array.unsafe_get devices i) m.cpu
  done;
  let event = Cpu.step m.cpu in
  let hooks = m.hooks in
  for i = 0 to Array.length hooks - 1 do
    (Array.unsafe_get hooks i) m event
  done;
  event

let run m ~ticks =
  (* Open-coded [tick]: the arrays are re-read every iteration (hooks
     may be registered from a port handler mid-run), but the common
     shapes — no devices, or the single watchdog of the paper's systems
     — skip the loop set-up entirely. *)
  let cpu = m.cpu in
  for _ = 1 to ticks do
    let devs = m.device_ticks in
    (match Array.length devs with
    | 0 -> ()
    | 1 -> (Array.unsafe_get devs 0) cpu
    | n ->
      for i = 0 to n - 1 do
        (Array.unsafe_get devs i) cpu
      done);
    let event = Cpu.step cpu in
    let hooks = m.hooks in
    if Array.length hooks > 0 then
      for i = 0 to Array.length hooks - 1 do
        (Array.unsafe_get hooks i) m event
      done
  done

let run_until m ~limit pred =
  let rec loop n =
    if n >= limit then None
    else begin
      ignore (tick m);
      if pred m then Some (n + 1) else loop (n + 1)
    end
  in
  loop 0
