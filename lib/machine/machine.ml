type port_handler = {
  read : Instruction.width -> int;
  write : Instruction.width -> int -> unit;
}

let null_port =
  { read = (fun _ -> 0); write = (fun _ _ -> ()) }

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  mutable devices : Device.t array;
  mutable device_ticks : (Cpu.t -> unit) array;
      (* devices.(i).tick, pre-extracted for the per-tick loop *)
  ports : port_handler array;  (* indexed by port byte, 256 entries *)
  mutable hooks : (t -> Cpu.event -> unit) array;
  mutable resettables : (unit -> unit -> unit) array;
      (* device-state capture hooks: calling one captures the device's
         current host-side state and returns the thunk that restores it *)
  mutable jit : Block_compiler.t option;
  mutable counters : Tick_counters.t option;
      (* batched event accounting; installed by Machine_obs *)
}

let cpu m = m.cpu
let memory m = m.mem
let ticks m = m.cpu.Cpu.steps
let decode_cache m = m.cpu.Cpu.decode_cache
let jit m = m.jit
let tick_counters m = m.counters

let attach_tick_counters m =
  match m.counters with
  | Some c -> c
  | None ->
    let c = Tick_counters.make () in
    m.counters <- Some c;
    c

(* The decode cache and the block table share the single memory write /
   reload hook pair: reinstall the composed hooks whenever either side
   is toggled. *)
let refresh_mem_hooks m =
  match (m.cpu.Cpu.decode_cache, m.jit) with
  | None, None ->
    Memory.clear_write_hook m.mem;
    Memory.clear_reload_hook m.mem
  | Some cache, None ->
    Memory.set_write_hook m.mem (fun addr -> Decode_cache.invalidate cache addr);
    Memory.set_reload_hook m.mem (fun () -> Decode_cache.clear cache)
  | None, Some jit ->
    Memory.set_write_hook m.mem (fun addr -> Block_compiler.note_write jit addr);
    Memory.set_reload_hook m.mem (fun () -> Block_compiler.clear jit)
  | Some cache, Some jit ->
    Memory.set_write_hook m.mem (fun addr ->
        Decode_cache.invalidate cache addr;
        Block_compiler.note_write jit addr);
    Memory.set_reload_hook m.mem (fun () ->
        Decode_cache.clear cache;
        Block_compiler.clear jit)

let set_decode_cache m enabled =
  (match (m.cpu.Cpu.decode_cache, enabled) with
  | Some _, true | None, false -> ()
  | None, true ->
    m.cpu.Cpu.decode_cache <-
      Some (Decode_cache.create ~empty_payload:Cpu.Halted_idle)
  | Some _, false -> m.cpu.Cpu.decode_cache <- None);
  refresh_mem_hooks m

let set_jit m enabled =
  (match (m.jit, enabled) with
  | Some _, true | None, false -> ()
  | None, true -> m.jit <- Some (Block_compiler.create ())
  | Some _, false -> m.jit <- None);
  refresh_mem_hooks m

(* Default from the environment, like [Obs.enabled] / SSOS_OBS: the jit
   is on unless SSOS_JIT is "0", "false" or empty. *)
let jit_env_default =
  match Sys.getenv_opt "SSOS_JIT" with
  | Some ("0" | "false" | "") -> false
  | Some _ | None -> true

let jit_default = ref jit_env_default
let set_jit_default v = jit_default := v
let jit_default_enabled () = !jit_default

let create ?config ?(decode_cache = true) ?jit () =
  let jit = match jit with Some v -> v | None -> !jit_default in
  let mem = Memory.create () in
  let cpu = Cpu.create ?config mem in
  let m =
    { cpu; mem; devices = [||]; device_ticks = [||];
      ports = Array.make 256 null_port; hooks = [||]; resettables = [||];
      jit = None; counters = None }
  in
  (* Port numbers are a single byte in the instruction encoding, so a
     flat 256-entry table replaces the hashtable (and its per-I/O
     option allocation) on the in/out path. *)
  let io_in port width = (Array.unsafe_get m.ports (port land 0xff)).read width in
  let io_out port width value =
    (Array.unsafe_get m.ports (port land 0xff)).write width value
  in
  cpu.Cpu.io <- { Cpu.io_in; io_out };
  set_decode_cache m decode_cache;
  set_jit m jit;
  m

let add_device m device =
  m.devices <- Array.append m.devices [| device |];
  m.device_ticks <- Array.map (fun d -> d.Device.tick) m.devices

let register_port m ~port ~read ~write =
  m.ports.(port land 0xff) <- { read; write }

let on_event m hook = m.hooks <- Array.append m.hooks [| hook |]

let add_resettable m capture =
  m.resettables <- Array.append m.resettables [| capture |]

let resettable_count m = Array.length m.resettables
let capture_device_state m = Array.map (fun capture -> capture ()) m.resettables

let tick m =
  let devices = m.device_ticks in
  for i = 0 to Array.length devices - 1 do
    (Array.unsafe_get devices i) m.cpu
  done;
  let event =
    match m.jit with
    | Some jit -> Block_compiler.step_cpu jit m.cpu
    | None -> Cpu.step m.cpu
  in
  (match m.counters with
  | Some c ->
    Tick_counters.note c event;
    Tick_counters.flush c
  | None -> ());
  let hooks = m.hooks in
  for i = 0 to Array.length hooks - 1 do
    (Array.unsafe_get hooks i) m event
  done;
  event

let run m ~ticks =
  (* Three shapes, re-decided every chunk (hooks and devices may be
     registered from a port handler mid-run):

     - jit and no event hooks: hand a whole chunk to the block
       compiler's straight-line loops ({!Block_compiler.run_quiet});
     - jit with hooks: per-tick stepping through the block table, so
       hooks see every event at the usual granularity;
     - no jit: the open-coded interpreter loop, with the common device
       shapes (none, or the single watchdog) specialised. *)
  let cpu = m.cpu in
  let remaining = ref ticks in
  while !remaining > 0 do
    let devs = m.device_ticks in
    let hooks = m.hooks in
    match m.jit with
    | Some jit when Array.length hooks = 0 ->
      let chunk = if !remaining < 4096 then !remaining else 4096 in
      Block_compiler.run_quiet jit cpu ~devices:m.devices ~counters:m.counters
        ~budget:chunk;
      remaining := !remaining - chunk
    | jit ->
      (match Array.length devs with
      | 0 -> ()
      | 1 -> (Array.unsafe_get devs 0) cpu
      | n ->
        for i = 0 to n - 1 do
          (Array.unsafe_get devs i) cpu
        done);
      let event =
        match jit with
        | Some jit -> Block_compiler.step_cpu jit cpu
        | None -> Cpu.step cpu
      in
      (match m.counters with
      | Some c -> Tick_counters.note c event
      | None -> ());
      if Array.length hooks > 0 then
        for i = 0 to Array.length hooks - 1 do
          (Array.unsafe_get hooks i) m event
        done;
      decr remaining
  done;
  match m.counters with
  | Some c -> Tick_counters.flush c
  | None -> ()

let run_until m ~limit pred =
  let rec loop n =
    if n >= limit then None
    else begin
      ignore (tick m);
      if pred m then Some (n + 1) else loop (n + 1)
    end
  in
  loop 0
