type port_handler = {
  read : Instruction.width -> int;
  write : Instruction.width -> int -> unit;
}

type t = {
  cpu : Cpu.t;
  mem : Memory.t;
  mutable devices : Device.t list;
  ports : (int, port_handler) Hashtbl.t;
  mutable hooks : (t -> Cpu.event -> unit) list;
}

let cpu m = m.cpu
let memory m = m.mem
let ticks m = m.cpu.Cpu.steps

let create ?config () =
  let mem = Memory.create () in
  let cpu = Cpu.create ?config mem in
  let m = { cpu; mem; devices = []; ports = Hashtbl.create 16; hooks = [] } in
  let io_in port width =
    match Hashtbl.find_opt m.ports port with
    | Some h -> h.read width
    | None -> 0
  in
  let io_out port width value =
    match Hashtbl.find_opt m.ports port with
    | Some h -> h.write width value
    | None -> ()
  in
  cpu.Cpu.io <- { Cpu.io_in; io_out };
  m

let add_device m device = m.devices <- m.devices @ [ device ]

let register_port m ~port ~read ~write =
  Hashtbl.replace m.ports port { read; write }

let on_event m hook = m.hooks <- m.hooks @ [ hook ]

let tick m =
  List.iter (fun d -> d.Device.tick m.cpu) m.devices;
  let event = Cpu.step m.cpu in
  List.iter (fun hook -> hook m event) m.hooks;
  event

let run m ~ticks =
  for _ = 1 to ticks do
    ignore (tick m)
  done

let run_until m ~limit pred =
  let rec loop n =
    if n >= limit then None
    else begin
      ignore (tick m);
      if pred m then Some (n + 1) else loop (n + 1)
    end
  in
  loop 0
