(** Physical memory: a 1 MiB linear byte array with write-protected
    (ROM) regions.

    The paper's fault model assumes ROM content "is guaranteed to remain
    unchanged" (§2); writes from the CPU to a protected region are
    silently ignored (as on real hardware, where the write strobe simply
    has no effect), and the fault injector refuses to target ROM. *)

type t

type region = { base : int; size : int }
(** A physical address range [\[base, base + size)]. *)

val create : unit -> t
(** Fresh memory, all zero, no protected regions. *)

val read_byte : t -> int -> int
(** [read_byte mem addr] at physical [addr] (wrapped to 20 bits). *)

val write_byte : t -> int -> int -> unit
(** [write_byte mem addr v]; ignored when [addr] lies in ROM. *)

val read_word : t -> int -> Word.t
(** Little-endian 16-bit read. *)

val write_word : t -> int -> Word.t -> unit
(** Little-endian 16-bit write; each byte individually ROM-checked. *)

val force_write_byte : t -> int -> int -> unit
(** Write bypassing ROM protection — used only to initialise ROM images
    at machine-build time, never by running code. *)

val protect : t -> region -> unit
(** Mark a region as ROM from now on. *)

val is_protected : t -> int -> bool
(** Whether a physical address lies in a ROM region.  O(1): backed by a
    precomputed protection bitmap, not a scan of the region list. *)

val protected_regions : t -> region list

val write_count : t -> int
(** Total byte writes accepted through {!write_byte},
    {!force_write_byte} and the paths built on them ({!write_word},
    {!load_image}, {!blit}).  Plain int accounting kept unconditionally
    — a single increment on the store path — and surfaced as a sampled
    observability gauge. *)

val rom_refusal_count : t -> int
(** Writes {!write_byte} silently dropped because the target byte lies
    in a protected (ROM) region — the §2 "ROM remains unchanged"
    guarantee made visible. *)

val set_write_hook : t -> (int -> unit) -> unit
(** [set_write_hook mem f] makes every mutation of a memory byte —
    guest stores, {!force_write_byte}, {!load_image}, {!blit}, fault
    injection, snapshot restore — call [f addr] with the (masked)
    physical address just written.  At most one hook is active; a new
    registration replaces the previous one.  Used by the decoded-
    instruction cache for write invalidation, so that corrupted or
    self-modified code bytes are re-decoded exactly as real hardware
    would (the §5.2 mis-decode hazard). *)

val clear_write_hook : t -> unit

val set_reload_hook : t -> (unit -> unit) -> unit
(** [set_reload_hook mem f] makes {!restore_image} call [f] once after
    rewriting the whole memory, instead of invoking the per-byte write
    hook a million times.  Used by the decoded-instruction cache to
    drop every cached entry in one pass on snapshot restore.  At most
    one hook is active; a new registration replaces the previous one. *)

val clear_reload_hook : t -> unit

val restore_image : t -> string -> unit
(** [restore_image mem image] rewrites the entire memory from [image]
    (which must be exactly {!size} bytes, e.g. a {!dump} of the whole
    address space), preserving the current contents of every protected
    (ROM) region — identical semantics to a {!write_byte} per address,
    but performed with bulk blits and a single reload-hook notification.
    This is the snapshot-restore fast path of the trial engine. *)

val load_image : t -> base:int -> string -> unit
(** Copy a raw byte string into memory at [base] (bypasses protection,
    for building boot images). *)

val unsafe_contents : t -> Bytes.t
(** The live backing store, zero-copy.  Read-only by contract: writing
    through it bypasses write protection, write accounting and the
    write hook (so the decode cache and block compiler would go stale).
    Exists for whole-image comparisons that would otherwise {!dump} a
    fresh copy per call — the differential fuzzer's per-trial memory
    check. *)

val dump : t -> base:int -> len:int -> string
(** Extract [len] raw bytes starting at [base]. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** Memory-to-memory copy honouring ROM protection on the destination. *)

val size : int
(** Total memory size (1 MiB). *)
