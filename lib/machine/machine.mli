(** The whole system: <processor, memory, I/O connectors> (§2).

    A machine owns a CPU, its memory and a set of devices.  One machine
    {e tick} runs every device once and then performs one processor
    step.  Event hooks observe each step for tracing, measurement and
    fault injection. *)

type t

val create : ?config:Cpu.config -> ?decode_cache:bool -> ?jit:bool -> unit -> t
(** Fresh machine with empty memory and no devices.  [decode_cache]
    (default [true]) installs the write-invalidated decoded-instruction
    cache ({!Decode_cache}) and wires memory write notification to it;
    pass [false] to force raw re-decoding on every step (the reference
    interpreter the differential tests compare against).  [jit]
    (default: on unless the [SSOS_JIT] environment variable is "0",
    "false" or empty) additionally installs the basic-block compiler
    ({!Block_compiler}); it shares the memory write/reload hooks with
    the decode cache, and either feature may be toggled independently
    at any time — observable execution never changes, only speed. *)

val cpu : t -> Cpu.t
val memory : t -> Memory.t
val ticks : t -> int
(** Number of ticks executed since creation. *)

val decode_cache : t -> Cpu.event Decode_cache.t option
(** The machine's decode cache, if enabled (for stats and tests). *)

val set_decode_cache : t -> bool -> unit
(** Enable (fresh, empty) or disable the decode cache at any time.
    Either way the observable execution is unchanged — only speed. *)

val jit : t -> Block_compiler.t option
(** The machine's block compiler, if enabled (for stats and tests). *)

val set_jit : t -> bool -> unit
(** Enable (fresh, empty) or disable the block compiler at any time.
    Either way the observable execution is unchanged — only speed. *)

val set_jit_default : bool -> unit
(** Override the process-wide default for [?jit] (initially the
    [SSOS_JIT] environment setting).  Affects machines created
    afterwards; the CLI's [--no-jit] flag calls this. *)

val jit_default_enabled : unit -> bool
(** The current process-wide [?jit] default. *)

val tick_counters : t -> Tick_counters.t option
(** The batched event counters, when observability has attached some. *)

val attach_tick_counters : t -> Tick_counters.t
(** Install (or fetch the already-installed) batched event counters.
    The run loops count each step event into them and flush once per
    {!run}/{!tick}; {!Machine_obs} registers the flush sink. *)

val add_device : t -> Device.t -> unit

val register_port :
  t ->
  port:int ->
  read:(Instruction.width -> int) ->
  write:(Instruction.width -> int -> unit) ->
  unit
(** Attach handlers for one I/O port; later registrations override. *)

val on_event : t -> (t -> Cpu.event -> unit) -> unit
(** Add a hook called after every processor step. *)

val add_resettable : t -> (unit -> unit -> unit) -> unit
(** [add_resettable m capture] registers host-side device state with the
    snapshot machinery.  [capture ()] must record the device's current
    state and return a thunk that restores exactly that state.  Devices
    holding mutable state outside the machine's RAM and registers — the
    heartbeat sample buffer, the watchdog countdown, the console buffer
    — register themselves here when attached, so {!Snapshot.capture} /
    {!Snapshot.restore} cover everything a fault-injection trial can
    mutate.  (The restore thunks act on the captured device instances:
    device state always restores into the machine it was captured
    from.) *)

val resettable_count : t -> int
(** How many resettable capture hooks are registered — {!Snapshot}
    records it at capture time and refuses to restore a machine that
    has since gained devices (their state would silently escape the
    reset). *)

val capture_device_state : t -> (unit -> unit) array
(** Run every registered capture hook now; the returned thunks restore
    each device to its state at this instant (used by {!Snapshot}). *)

val tick : t -> Cpu.event
(** Run one clock tick (devices, then one CPU step). *)

val run : t -> ticks:int -> unit
(** Run exactly [ticks] clock ticks. *)

val run_until : t -> limit:int -> (t -> bool) -> int option
(** Tick until the predicate holds (checked after each tick); returns
    the number of ticks consumed, or [None] if [limit] was reached. *)
