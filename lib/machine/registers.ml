type reg16 = AX | BX | CX | DX | SI | DI | SP | BP
type reg8 = AL | AH | BL | BH | CL | CH | DL | DH
type sreg = CS | DS | ES | SS | FS | GS

type t = {
  mutable ax : Word.t;
  mutable bx : Word.t;
  mutable cx : Word.t;
  mutable dx : Word.t;
  mutable si : Word.t;
  mutable di : Word.t;
  mutable sp : Word.t;
  mutable bp : Word.t;
  mutable cs : Word.t;
  mutable ds : Word.t;
  mutable es : Word.t;
  mutable ss : Word.t;
  mutable fs : Word.t;
  mutable gs : Word.t;
  mutable ip : Word.t;
  mutable psw : Flags.t;
  mutable nmi_counter : int;
}

let create () =
  { ax = 0; bx = 0; cx = 0; dx = 0; si = 0; di = 0; sp = 0; bp = 0;
    cs = 0; ds = 0; es = 0; ss = 0; fs = 0; gs = 0; ip = 0;
    psw = Flags.initial; nmi_counter = 0 }

let copy r = { r with ax = r.ax }

let get16 r = function
  | AX -> r.ax | BX -> r.bx | CX -> r.cx | DX -> r.dx
  | SI -> r.si | DI -> r.di | SP -> r.sp | BP -> r.bp

let set16 r reg v =
  let v = Word.mask v in
  match reg with
  | AX -> r.ax <- v | BX -> r.bx <- v | CX -> r.cx <- v | DX -> r.dx <- v
  | SI -> r.si <- v | DI -> r.di <- v | SP -> r.sp <- v | BP -> r.bp <- v

let get8 r = function
  | AL -> Word.low_byte r.ax | AH -> Word.high_byte r.ax
  | BL -> Word.low_byte r.bx | BH -> Word.high_byte r.bx
  | CL -> Word.low_byte r.cx | CH -> Word.high_byte r.cx
  | DL -> Word.low_byte r.dx | DH -> Word.high_byte r.dx

let set8 r reg v =
  let v = Word.mask8 v in
  let set_low w = Word.of_bytes ~low:v ~high:(Word.high_byte w) in
  let set_high w = Word.of_bytes ~low:(Word.low_byte w) ~high:v in
  match reg with
  | AL -> r.ax <- set_low r.ax | AH -> r.ax <- set_high r.ax
  | BL -> r.bx <- set_low r.bx | BH -> r.bx <- set_high r.bx
  | CL -> r.cx <- set_low r.cx | CH -> r.cx <- set_high r.cx
  | DL -> r.dx <- set_low r.dx | DH -> r.dx <- set_high r.dx

let get_sreg r = function
  | CS -> r.cs | DS -> r.ds | ES -> r.es | SS -> r.ss | FS -> r.fs | GS -> r.gs

let set_sreg r reg v =
  let v = Word.mask v in
  match reg with
  | CS -> r.cs <- v | DS -> r.ds <- v | ES -> r.es <- v
  | SS -> r.ss <- v | FS -> r.fs <- v | GS -> r.gs <- v

(* x86 ModRM register order, kept for familiarity in encodings. *)
let reg16_index = function
  | AX -> 0 | CX -> 1 | DX -> 2 | BX -> 3 | SP -> 4 | BP -> 5 | SI -> 6 | DI -> 7

let reg16_of_index = function
  | 0 -> Some AX | 1 -> Some CX | 2 -> Some DX | 3 -> Some BX
  | 4 -> Some SP | 5 -> Some BP | 6 -> Some SI | 7 -> Some DI
  | _ -> None

let reg8_index = function
  | AL -> 0 | CL -> 1 | DL -> 2 | BL -> 3 | AH -> 4 | CH -> 5 | DH -> 6 | BH -> 7

let reg8_of_index = function
  | 0 -> Some AL | 1 -> Some CL | 2 -> Some DL | 3 -> Some BL
  | 4 -> Some AH | 5 -> Some CH | 6 -> Some DH | 7 -> Some BH
  | _ -> None

let sreg_index = function
  | ES -> 0 | CS -> 1 | SS -> 2 | DS -> 3 | FS -> 4 | GS -> 5

let sreg_of_index = function
  | 0 -> Some ES | 1 -> Some CS | 2 -> Some SS | 3 -> Some DS
  | 4 -> Some FS | 5 -> Some GS
  | _ -> None

let reg16_name = function
  | AX -> "ax" | BX -> "bx" | CX -> "cx" | DX -> "dx"
  | SI -> "si" | DI -> "di" | SP -> "sp" | BP -> "bp"

let reg8_name = function
  | AL -> "al" | AH -> "ah" | BL -> "bl" | BH -> "bh"
  | CL -> "cl" | CH -> "ch" | DL -> "dl" | DH -> "dh"

let sreg_name = function
  | CS -> "cs" | DS -> "ds" | ES -> "es" | SS -> "ss" | FS -> "fs" | GS -> "gs"

let all_reg16 = [ AX; BX; CX; DX; SI; DI; SP; BP ]
let all_reg8 = [ AL; AH; BL; BH; CL; CH; DL; DH ]
let all_sreg = [ CS; DS; ES; SS; FS; GS ]

let reg16_of_name name =
  List.find_opt (fun r -> reg16_name r = name) all_reg16

let reg8_of_name name = List.find_opt (fun r -> reg8_name r = name) all_reg8
let sreg_of_name name = List.find_opt (fun r -> sreg_name r = name) all_sreg

let pp ppf r =
  Format.fprintf ppf
    "@[<v>ax=%04X bx=%04X cx=%04X dx=%04X@,\
     si=%04X di=%04X sp=%04X bp=%04X@,\
     cs=%04X ds=%04X es=%04X ss=%04X fs=%04X gs=%04X@,\
     ip=%04X psw=%a nmi_counter=%d@]"
    r.ax r.bx r.cx r.dx r.si r.di r.sp r.bp
    r.cs r.ds r.es r.ss r.fs r.gs r.ip Flags.pp r.psw r.nmi_counter
