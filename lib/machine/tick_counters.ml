(* Plain-int per-machine event accounting, batched toward lib/obs.

   The observability layer used to count events with a per-tick
   [Machine.on_event] hook — seven atomic increments per tick, ~40%
   overhead when enabled (BENCH_obs.json).  Instead the machine now
   bumps these plain mutable fields (free on the tick path, and the
   block-compiled run loops bump them once per straight-line block) and
   calls [flush] once per [Machine.run]/[Machine.tick], where the
   registered sink moves the accumulated deltas into the shared atomic
   registry. *)

type t = {
  mutable ticks : int;
  mutable executed : int;
  mutable interrupts : int;
  mutable nmis : int;
  mutable exceptions : int;
  mutable idle : int;
  mutable resets : int;
  mutable flush_fn : t -> unit;
}

let make () =
  { ticks = 0; executed = 0; interrupts = 0; nmis = 0; exceptions = 0;
    idle = 0; resets = 0; flush_fn = (fun _ -> ()) }

let note t (event : Cpu.event) =
  t.ticks <- t.ticks + 1;
  match event with
  | Cpu.Executed _ -> t.executed <- t.executed + 1
  | Cpu.Took_interrupt { nmi = true; _ } -> t.nmis <- t.nmis + 1
  | Cpu.Took_interrupt _ -> t.interrupts <- t.interrupts + 1
  | Cpu.Took_exception _ -> t.exceptions <- t.exceptions + 1
  | Cpu.Halted_idle -> t.idle <- t.idle + 1
  | Cpu.Did_reset -> t.resets <- t.resets + 1

(* Merge a local accumulator (the run loops count into a stack-local
   record so the machine-shared one isn't touched per tick). *)
let add t c =
  t.ticks <- t.ticks + c.ticks;
  t.executed <- t.executed + c.executed;
  t.interrupts <- t.interrupts + c.interrupts;
  t.nmis <- t.nmis + c.nmis;
  t.exceptions <- t.exceptions + c.exceptions;
  t.idle <- t.idle + c.idle;
  t.resets <- t.resets + c.resets

let set_flush t f = t.flush_fn <- f
let flush t = t.flush_fn t
