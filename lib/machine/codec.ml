(* Opcode map (one byte each):
     0x01-0x0E  mov family, lea, xchg
     0x10-0x18  ALU (add adc sub sbb and or xor cmp test) + form byte
     0x20-0x29  inc dec neg not shl shr mul8 mul16 div8 div16
     0x30-0x36  push/pop family, pushf, popf
     0x40-0x47  jmp, jmp far, call, ret, iret, int, loop
     0x48-0x55  conditional jumps (cond index 0..13)
     0x60-0x6E  string ops, rep prefix, in/out (imm and dx port forms)
     0x70-0x77  nop hlt cli sti cld std clc stc;  0x90 nop
   Memory-operand "mode" byte: bits 0-2 base register combination,
   bits 3-5 segment override (0 = none, 1+sreg_index otherwise). *)

let base_code = function
  | Instruction.No_base -> 0
  | Instruction.Base_bx -> 1
  | Instruction.Base_si -> 2
  | Instruction.Base_di -> 3
  | Instruction.Base_bp -> 4
  | Instruction.Base_bx_si -> 5
  | Instruction.Base_bx_di -> 6

let base_of_code = function
  | 0 -> Some Instruction.No_base
  | 1 -> Some Instruction.Base_bx
  | 2 -> Some Instruction.Base_si
  | 3 -> Some Instruction.Base_di
  | 4 -> Some Instruction.Base_bp
  | 5 -> Some Instruction.Base_bx_si
  | 6 -> Some Instruction.Base_bx_di
  | _ -> None

let mode_byte { Instruction.seg_override; base; disp = _ } =
  let seg =
    match seg_override with
    | None -> 0
    | Some s -> 1 + Registers.sreg_index s
  in
  (seg lsl 3) lor base_code base

let mem_of_mode mode disp =
  match base_of_code (mode land 7) with
  | None -> None
  | Some base -> (
    match (mode lsr 3) land 7 with
    | 0 -> Some { Instruction.seg_override = None; base; disp }
    | n -> (
      match Registers.sreg_of_index (n - 1) with
      | None -> None
      | Some s -> Some { Instruction.seg_override = Some s; base; disp }))

let split16 v = [ Word.low_byte v; Word.high_byte v ]

let mem_bytes m = mode_byte m :: split16 m.Instruction.disp

let alu_code = function
  | Instruction.Add -> 0
  | Instruction.Adc -> 1
  | Instruction.Sub -> 2
  | Instruction.Sbb -> 3
  | Instruction.And -> 4
  | Instruction.Or -> 5
  | Instruction.Xor -> 6
  | Instruction.Cmp -> 7
  | Instruction.Test -> 8

let alu_of_code = function
  | 0 -> Some Instruction.Add
  | 1 -> Some Instruction.Adc
  | 2 -> Some Instruction.Sub
  | 3 -> Some Instruction.Sbb
  | 4 -> Some Instruction.And
  | 5 -> Some Instruction.Or
  | 6 -> Some Instruction.Xor
  | 7 -> Some Instruction.Cmp
  | 8 -> Some Instruction.Test
  | _ -> None

let cond_code c =
  let rec index i = function
    | [] -> assert false
    | c' :: rest -> if c' = c then i else index (i + 1) rest
  in
  index 0 Instruction.all_conds

let cond_of_code i = List.nth_opt Instruction.all_conds i

let r16i = Registers.reg16_index
let r8i = Registers.reg8_index
let sri = Registers.sreg_index
let pair a b = (a lsl 4) lor b

let rec encode instr =
  match instr with
  | Instruction.Mov_r16_imm (r, v) -> 0x01 :: r16i r :: split16 v
  | Instruction.Mov_r8_imm (r, v) -> [ 0x02; r8i r; v land 0xff ]
  | Instruction.Mov_r16_r16 (d, s) -> [ 0x03; pair (r16i d) (r16i s) ]
  | Instruction.Mov_sreg_r16 (d, s) -> [ 0x04; pair (sri d) (r16i s) ]
  | Instruction.Mov_r16_sreg (d, s) -> [ 0x05; pair (r16i d) (sri s) ]
  | Instruction.Mov_r16_mem (r, m) -> 0x06 :: r16i r :: mem_bytes m
  | Instruction.Mov_mem_r16 (m, r) -> 0x07 :: r16i r :: mem_bytes m
  | Instruction.Mov_mem_imm (m, v) -> (0x08 :: mem_bytes m) @ split16 v
  | Instruction.Mov_r8_mem (r, m) -> 0x09 :: r8i r :: mem_bytes m
  | Instruction.Mov_mem_r8 (m, r) -> 0x0A :: r8i r :: mem_bytes m
  | Instruction.Mov_sreg_mem (s, m) -> 0x0B :: sri s :: mem_bytes m
  | Instruction.Mov_mem_sreg (m, s) -> 0x0C :: sri s :: mem_bytes m
  | Instruction.Lea (r, m) -> 0x0D :: r16i r :: mem_bytes m
  | Instruction.Xchg (a, b) -> [ 0x0E; pair (r16i a) (r16i b) ]
  | Instruction.Alu_r16_r16 (op, d, s) ->
    [ 0x10 + alu_code op; 0; pair (r16i d) (r16i s) ]
  | Instruction.Alu_r16_imm (op, d, v) ->
    (0x10 + alu_code op) :: 1 :: r16i d :: split16 v
  | Instruction.Alu_r16_mem (op, d, m) ->
    (0x10 + alu_code op) :: 2 :: r16i d :: mem_bytes m
  | Instruction.Alu_mem_r16 (op, m, s) ->
    (0x10 + alu_code op) :: 3 :: r16i s :: mem_bytes m
  | Instruction.Alu_r8_r8 (op, d, s) ->
    [ 0x10 + alu_code op; 4; pair (r8i d) (r8i s) ]
  | Instruction.Alu_r8_imm (op, d, v) ->
    [ 0x10 + alu_code op; 5; r8i d; v land 0xff ]
  | Instruction.Inc_r16 r -> [ 0x20; r16i r ]
  | Instruction.Dec_r16 r -> [ 0x21; r16i r ]
  | Instruction.Neg_r16 r -> [ 0x22; r16i r ]
  | Instruction.Not_r16 r -> [ 0x23; r16i r ]
  | Instruction.Shl_r16 (r, n) -> [ 0x24; r16i r; n land 0xf ]
  | Instruction.Shr_r16 (r, n) -> [ 0x25; r16i r; n land 0xf ]
  | Instruction.Mul_r8 r -> [ 0x26; r8i r ]
  | Instruction.Mul_r16 r -> [ 0x27; r16i r ]
  | Instruction.Div_r8 r -> [ 0x28; r8i r ]
  | Instruction.Div_r16 r -> [ 0x29; r16i r ]
  | Instruction.Push_r16 r -> [ 0x30; r16i r ]
  | Instruction.Push_imm v -> 0x31 :: split16 v
  | Instruction.Push_sreg s -> [ 0x32; sri s ]
  | Instruction.Pop_r16 r -> [ 0x33; r16i r ]
  | Instruction.Pop_sreg s -> [ 0x34; sri s ]
  | Instruction.Pushf -> [ 0x35 ]
  | Instruction.Popf -> [ 0x36 ]
  | Instruction.Jmp t -> 0x40 :: split16 t
  | Instruction.Jmp_far (seg, off) -> (0x41 :: split16 off) @ split16 seg
  | Instruction.Call t -> 0x42 :: split16 t
  | Instruction.Ret -> [ 0x43 ]
  | Instruction.Iret -> [ 0x44 ]
  | Instruction.Int n -> [ 0x45; n land 0xff ]
  | Instruction.Loop t -> 0x46 :: split16 t
  | Instruction.Jcc (c, t) -> (0x48 + cond_code c) :: split16 t
  | Instruction.Movs Instruction.Byte -> [ 0x60 ]
  | Instruction.Movs Instruction.Word_ -> [ 0x61 ]
  | Instruction.Stos Instruction.Byte -> [ 0x62 ]
  | Instruction.Stos Instruction.Word_ -> [ 0x63 ]
  | Instruction.Lods Instruction.Byte -> [ 0x64 ]
  | Instruction.Lods Instruction.Word_ -> [ 0x65 ]
  | Instruction.Rep body -> 0x66 :: encode body
  | Instruction.In_ (Instruction.Byte, port) -> [ 0x67; port land 0xff ]
  | Instruction.In_ (Instruction.Word_, port) -> [ 0x68; port land 0xff ]
  | Instruction.Out (port, Instruction.Byte) -> [ 0x69; port land 0xff ]
  | Instruction.Out (port, Instruction.Word_) -> [ 0x6A; port land 0xff ]
  | Instruction.In_dx Instruction.Byte -> [ 0x6B ]
  | Instruction.In_dx Instruction.Word_ -> [ 0x6C ]
  | Instruction.Out_dx Instruction.Byte -> [ 0x6D ]
  | Instruction.Out_dx Instruction.Word_ -> [ 0x6E ]
  | Instruction.Nop -> [ 0x70 ]
  | Instruction.Hlt -> [ 0x71 ]
  | Instruction.Cli -> [ 0x72 ]
  | Instruction.Sti -> [ 0x73 ]
  | Instruction.Cld -> [ 0x74 ]
  | Instruction.Std -> [ 0x75 ]
  | Instruction.Clc -> [ 0x76 ]
  | Instruction.Stc -> [ 0x77 ]
  | Instruction.Invalid b -> [ b land 0xff ]

let encoded_length instr = List.length (encode instr)
let max_length = 7

let decode ~fetch ~pos =
  let byte off = fetch (pos + off) land 0xff in
  let word off = Word.of_bytes ~low:(byte off) ~high:(byte (off + 1)) in
  let invalid () = (Instruction.Invalid (byte 0), 1) in
  let with_reg16 k = match Registers.reg16_of_index (byte 1 land 7) with
    | Some r -> k r
    | None -> invalid ()
  in
  let with_reg8 k = match Registers.reg8_of_index (byte 1 land 7) with
    | Some r -> k r
    | None -> invalid ()
  in
  let with_sreg k = match Registers.sreg_of_index (byte 1 land 7) with
    | Some s -> k s
    | None -> invalid ()
  in
  (* [reg][mode][disp16] operand tail starting at offset 1 *)
  let with_reg16_mem k =
    match
      ( Registers.reg16_of_index (byte 1 land 7),
        mem_of_mode (byte 2) (word 3) )
    with
    | Some r, Some m -> (k r m, 5)
    | _, _ -> invalid ()
  in
  let with_reg8_mem k =
    match
      (Registers.reg8_of_index (byte 1 land 7), mem_of_mode (byte 2) (word 3))
    with
    | Some r, Some m -> (k r m, 5)
    | _, _ -> invalid ()
  in
  let with_sreg_mem k =
    match
      (Registers.sreg_of_index (byte 1 land 7), mem_of_mode (byte 2) (word 3))
    with
    | Some s, Some m -> (k s m, 5)
    | _, _ -> invalid ()
  in
  let reg_pair16 k =
    let b = byte 1 in
    match
      ( Registers.reg16_of_index ((b lsr 4) land 7),
        Registers.reg16_of_index (b land 7) )
    with
    | Some d, Some s -> (k d s, 2)
    | _, _ -> invalid ()
  in
  match byte 0 with
  | 0x01 -> with_reg16 (fun r -> (Instruction.Mov_r16_imm (r, word 2), 4))
  | 0x02 -> with_reg8 (fun r -> (Instruction.Mov_r8_imm (r, byte 2), 3))
  | 0x03 -> reg_pair16 (fun d s -> Instruction.Mov_r16_r16 (d, s))
  | 0x04 -> (
    let b = byte 1 in
    match
      ( Registers.sreg_of_index ((b lsr 4) land 7),
        Registers.reg16_of_index (b land 7) )
    with
    | Some d, Some s -> (Instruction.Mov_sreg_r16 (d, s), 2)
    | _, _ -> invalid ())
  | 0x05 -> (
    let b = byte 1 in
    match
      ( Registers.reg16_of_index ((b lsr 4) land 7),
        Registers.sreg_of_index (b land 7) )
    with
    | Some d, Some s -> (Instruction.Mov_r16_sreg (d, s), 2)
    | _, _ -> invalid ())
  | 0x06 -> with_reg16_mem (fun r m -> Instruction.Mov_r16_mem (r, m))
  | 0x07 -> with_reg16_mem (fun r m -> Instruction.Mov_mem_r16 (m, r))
  | 0x08 -> (
    match mem_of_mode (byte 1) (word 2) with
    | Some m -> (Instruction.Mov_mem_imm (m, word 4), 6)
    | None -> invalid ())
  | 0x09 -> with_reg8_mem (fun r m -> Instruction.Mov_r8_mem (r, m))
  | 0x0A -> with_reg8_mem (fun r m -> Instruction.Mov_mem_r8 (m, r))
  | 0x0B -> with_sreg_mem (fun s m -> Instruction.Mov_sreg_mem (s, m))
  | 0x0C -> with_sreg_mem (fun s m -> Instruction.Mov_mem_sreg (m, s))
  | 0x0D -> with_reg16_mem (fun r m -> Instruction.Lea (r, m))
  | 0x0E -> reg_pair16 (fun a b -> Instruction.Xchg (a, b))
  | op when op >= 0x10 && op <= 0x18 -> (
    match alu_of_code (op - 0x10) with
    | None -> invalid ()
    | Some alu -> (
      match byte 1 with
      | 0 -> (
        let b = byte 2 in
        match
          ( Registers.reg16_of_index ((b lsr 4) land 7),
            Registers.reg16_of_index (b land 7) )
        with
        | Some d, Some s -> (Instruction.Alu_r16_r16 (alu, d, s), 3)
        | _, _ -> invalid ())
      | 1 -> (
        match Registers.reg16_of_index (byte 2 land 7) with
        | Some d -> (Instruction.Alu_r16_imm (alu, d, word 3), 5)
        | None -> invalid ())
      | 2 -> (
        match
          ( Registers.reg16_of_index (byte 2 land 7),
            mem_of_mode (byte 3) (word 4) )
        with
        | Some d, Some m -> (Instruction.Alu_r16_mem (alu, d, m), 6)
        | _, _ -> invalid ())
      | 3 -> (
        match
          ( Registers.reg16_of_index (byte 2 land 7),
            mem_of_mode (byte 3) (word 4) )
        with
        | Some s, Some m -> (Instruction.Alu_mem_r16 (alu, m, s), 6)
        | _, _ -> invalid ())
      | 4 -> (
        let b = byte 2 in
        match
          ( Registers.reg8_of_index ((b lsr 4) land 7),
            Registers.reg8_of_index (b land 7) )
        with
        | Some d, Some s -> (Instruction.Alu_r8_r8 (alu, d, s), 3)
        | _, _ -> invalid ())
      | 5 -> (
        match Registers.reg8_of_index (byte 2 land 7) with
        | Some d -> (Instruction.Alu_r8_imm (alu, d, byte 3), 4)
        | None -> invalid ())
      | _ -> invalid ()))
  | 0x20 -> with_reg16 (fun r -> (Instruction.Inc_r16 r, 2))
  | 0x21 -> with_reg16 (fun r -> (Instruction.Dec_r16 r, 2))
  | 0x22 -> with_reg16 (fun r -> (Instruction.Neg_r16 r, 2))
  | 0x23 -> with_reg16 (fun r -> (Instruction.Not_r16 r, 2))
  | 0x24 -> with_reg16 (fun r -> (Instruction.Shl_r16 (r, byte 2 land 0xf), 3))
  | 0x25 -> with_reg16 (fun r -> (Instruction.Shr_r16 (r, byte 2 land 0xf), 3))
  | 0x26 -> with_reg8 (fun r -> (Instruction.Mul_r8 r, 2))
  | 0x27 -> with_reg16 (fun r -> (Instruction.Mul_r16 r, 2))
  | 0x28 -> with_reg8 (fun r -> (Instruction.Div_r8 r, 2))
  | 0x29 -> with_reg16 (fun r -> (Instruction.Div_r16 r, 2))
  | 0x30 -> with_reg16 (fun r -> (Instruction.Push_r16 r, 2))
  | 0x31 -> (Instruction.Push_imm (word 1), 3)
  | 0x32 -> with_sreg (fun s -> (Instruction.Push_sreg s, 2))
  | 0x33 -> with_reg16 (fun r -> (Instruction.Pop_r16 r, 2))
  | 0x34 -> with_sreg (fun s -> (Instruction.Pop_sreg s, 2))
  | 0x35 -> (Instruction.Pushf, 1)
  | 0x36 -> (Instruction.Popf, 1)
  | 0x40 -> (Instruction.Jmp (word 1), 3)
  | 0x41 -> (Instruction.Jmp_far (word 3, word 1), 5)
  | 0x42 -> (Instruction.Call (word 1), 3)
  | 0x43 -> (Instruction.Ret, 1)
  | 0x44 -> (Instruction.Iret, 1)
  | 0x45 -> (Instruction.Int (byte 1), 2)
  | 0x46 -> (Instruction.Loop (word 1), 3)
  | op when op >= 0x48 && op <= 0x55 -> (
    match cond_of_code (op - 0x48) with
    | Some c -> (Instruction.Jcc (c, word 1), 3)
    | None -> invalid ())
  | 0x60 -> (Instruction.Movs Instruction.Byte, 1)
  | 0x61 -> (Instruction.Movs Instruction.Word_, 1)
  | 0x62 -> (Instruction.Stos Instruction.Byte, 1)
  | 0x63 -> (Instruction.Stos Instruction.Word_, 1)
  | 0x64 -> (Instruction.Lods Instruction.Byte, 1)
  | 0x65 -> (Instruction.Lods Instruction.Word_, 1)
  | 0x66 -> (
    (* rep only prefixes the six one-byte string ops, so the body is
       decoded by direct inspection rather than recursion: a run of
       0x66 bytes filling a wrapping code segment must not recurse
       once per prefix byte. *)
    match byte 1 with
    | 0x60 -> (Instruction.Rep (Instruction.Movs Instruction.Byte), 2)
    | 0x61 -> (Instruction.Rep (Instruction.Movs Instruction.Word_), 2)
    | 0x62 -> (Instruction.Rep (Instruction.Stos Instruction.Byte), 2)
    | 0x63 -> (Instruction.Rep (Instruction.Stos Instruction.Word_), 2)
    | 0x64 -> (Instruction.Rep (Instruction.Lods Instruction.Byte), 2)
    | 0x65 -> (Instruction.Rep (Instruction.Lods Instruction.Word_), 2)
    | _ -> invalid ())
  | 0x67 -> (Instruction.In_ (Instruction.Byte, byte 1), 2)
  | 0x68 -> (Instruction.In_ (Instruction.Word_, byte 1), 2)
  | 0x69 -> (Instruction.Out (byte 1, Instruction.Byte), 2)
  | 0x6A -> (Instruction.Out (byte 1, Instruction.Word_), 2)
  | 0x6B -> (Instruction.In_dx Instruction.Byte, 1)
  | 0x6C -> (Instruction.In_dx Instruction.Word_, 1)
  | 0x6D -> (Instruction.Out_dx Instruction.Byte, 1)
  | 0x6E -> (Instruction.Out_dx Instruction.Word_, 1)
  | 0x70 | 0x90 -> (Instruction.Nop, 1)
  | 0x71 -> (Instruction.Hlt, 1)
  | 0x72 -> (Instruction.Cli, 1)
  | 0x73 -> (Instruction.Sti, 1)
  | 0x74 -> (Instruction.Cld, 1)
  | 0x75 -> (Instruction.Std, 1)
  | 0x76 -> (Instruction.Clc, 1)
  | 0x77 -> (Instruction.Stc, 1)
  | _ -> invalid ()

let decode_bytes s ~pos =
  let fetch i = if i >= 0 && i < String.length s then Char.code s.[i] else 0 in
  decode ~fetch ~pos
