(** Machine-state snapshots.

    A snapshot captures the complete soft state of a machine — the
    register file, control state, the machine tick count, a copy of RAM
    and the state of every resettable device (heartbeat buffers,
    watchdog countdown, console output; see
    {!Machine.add_resettable}) — so tests and experiments can assert
    determinism, diff states around a fault, or roll a machine back.

    Restore is the fast path of the experiments' snapshot-reset trial
    engine: a campaign warms a system up once, captures, and then
    restores before each trial instead of rebuilding the system, with
    bit-identical observable behaviour (the host-level analogue of the
    checkpoint baseline — a measurement harness, not part of any
    recovery design). *)

type t

val capture : Machine.t -> t
val restore : t -> Machine.t -> unit
(** Restore registers, control state, the tick count, RAM (ROM regions
    are skipped: they cannot have changed) and resettable-device state.
    RAM is rewritten with {!Memory.restore_image}, which drops the
    decode cache wholesale instead of invalidating a byte at a time.
    Device state restores into the devices of the machine the snapshot
    was captured from (for the machine given here, only the CPU, RAM
    and tick count are written), so restoring into a {e different}
    machine is meaningful only for machines without resettable
    devices.

    Raises [Invalid_argument] when the machine has {e more} resettable
    devices than the snapshot captured: a device attached after capture
    has no restore thunk, and skipping it would silently leak its state
    across snapshot-reset trials.  Attach every device before
    capturing. *)

val digest : t -> string
(** A short hexadecimal fingerprint of the whole state — equal digests
    mean equal states. *)

val equal : t -> t -> bool

type difference =
  | Register of string * int * int  (** name, left value, right value *)
  | Memory_range of { first : int; last : int }
      (** a maximal physical range of differing bytes *)

val diff : t -> t -> difference list
(** All differences, registers first, memory ranges coalesced. *)

val pp_difference : Format.formatter -> difference -> unit
