(** Machine-state snapshots.

    A snapshot captures the complete soft state of a machine — the
    register file, control state and a copy of RAM — so tests and
    experiments can assert determinism, diff states around a fault, or
    roll a machine back (the host-level analogue of the checkpoint
    baseline, useful for debugging, not part of any recovery design). *)

type t

val capture : Machine.t -> t
val restore : t -> Machine.t -> unit
(** Restore registers, control state and RAM (ROM regions are skipped:
    they cannot have changed). *)

val digest : t -> string
(** A short hexadecimal fingerprint of the whole state — equal digests
    mean equal states. *)

val equal : t -> t -> bool

type difference =
  | Register of string * int * int  (** name, left value, right value *)
  | Memory_range of { first : int; last : int }
      (** a maximal physical range of differing bytes *)

val diff : t -> t -> difference list
(** All differences, registers first, memory ranges coalesced. *)

val pp_difference : Format.formatter -> difference -> unit
