type nmi_dispatch = Hardwired_idt of int | Via_idtr

type config = {
  nmi_counter_enabled : bool;
  nmi_counter_max : int;
  nmi_dispatch : nmi_dispatch;
  reset_vector : Word.t * Word.t;
}

let default_config =
  { nmi_counter_enabled = true;
    nmi_counter_max = 200_000;
    nmi_dispatch = Hardwired_idt 0xF0000;
    reset_vector = (0xF000, 0x0000) }

type io = {
  io_in : int -> Instruction.width -> int;
  io_out : int -> Instruction.width -> int -> unit;
}

type event =
  | Executed of Instruction.t
  | Took_interrupt of { vector : int; nmi : bool }
  | Took_exception of int
  | Halted_idle
  | Did_reset

type t = {
  regs : Registers.t;
  mem : Memory.t;
  config : config;
  mutable idtr : int;
  mutable nmi_pin : bool;
  mutable in_nmi : bool;
  mutable intr : int option;
  mutable reset_pin : bool;
  mutable halted : bool;
  mutable io : io;
  mutable steps : int;
  mutable decode_cache : event Decode_cache.t option;
}

let vec_divide_error = 0
let vec_nmi = 2
let vec_invalid_opcode = 6

let null_io = { io_in = (fun _ _ -> 0); io_out = (fun _ _ _ -> ()) }

let create ?(config = default_config) mem =
  { regs = Registers.create (); mem; config; idtr = 0; nmi_pin = false;
    in_nmi = false; intr = None; reset_pin = false; halted = false;
    io = null_io; steps = 0; decode_cache = None }

let reset cpu =
  let r = cpu.regs in
  let cs, ip = cpu.config.reset_vector in
  r.ax <- 0; r.bx <- 0; r.cx <- 0; r.dx <- 0;
  r.si <- 0; r.di <- 0; r.sp <- 0; r.bp <- 0;
  r.ds <- 0; r.es <- 0; r.ss <- 0; r.fs <- 0; r.gs <- 0;
  r.cs <- cs; r.ip <- ip;
  r.psw <- Flags.initial;
  r.nmi_counter <- 0;
  cpu.in_nmi <- false;
  cpu.halted <- false;
  cpu.reset_pin <- false

let raise_nmi cpu = cpu.nmi_pin <- true
let raise_intr cpu vector = cpu.intr <- Some vector

let read_idt_entry cpu ~base vector =
  let entry = Addr.mask (base + (4 * vector)) in
  let off = Memory.read_word cpu.mem entry in
  let seg = Memory.read_word cpu.mem (Addr.mask (entry + 2)) in
  (seg, off)

(* --- memory helpers ------------------------------------------------- *)

let effective_address cpu (m : Instruction.mem) =
  let r = cpu.regs in
  let base_value =
    match m.Instruction.base with
    | Instruction.No_base -> 0
    | Instruction.Base_bx -> r.bx
    | Instruction.Base_si -> r.si
    | Instruction.Base_di -> r.di
    | Instruction.Base_bp -> r.bp
    | Instruction.Base_bx_si -> Word.mask (r.bx + r.si)
    | Instruction.Base_bx_di -> Word.mask (r.bx + r.di)
  in
  let seg =
    match m.Instruction.seg_override with
    | Some s -> Registers.get_sreg r s
    | None -> Registers.get_sreg r (Instruction.default_segment m.Instruction.base)
  in
  Addr.physical ~seg ~off:(Word.mask (base_value + m.Instruction.disp))

let read_mem16 cpu m = Memory.read_word cpu.mem (effective_address cpu m)
let write_mem16 cpu m v = Memory.write_word cpu.mem (effective_address cpu m) v
let read_mem8 cpu m = Memory.read_byte cpu.mem (effective_address cpu m)
let write_mem8 cpu m v = Memory.write_byte cpu.mem (effective_address cpu m) v

let push cpu v =
  let r = cpu.regs in
  r.sp <- Word.mask (r.sp - 2);
  Memory.write_word cpu.mem (Addr.physical ~seg:r.ss ~off:r.sp) v

let pop cpu =
  let r = cpu.regs in
  let v = Memory.read_word cpu.mem (Addr.physical ~seg:r.ss ~off:r.sp) in
  r.sp <- Word.mask (r.sp + 2);
  v

(* --- interrupt dispatch --------------------------------------------- *)

let service cpu vector ~nmi ~return_ip =
  let r = cpu.regs in
  push cpu r.psw;
  push cpu r.cs;
  push cpu return_ip;
  r.psw <- Flags.set r.psw Flags.Interrupt false;
  if nmi then begin
    if cpu.config.nmi_counter_enabled then
      r.nmi_counter <- cpu.config.nmi_counter_max
    else cpu.in_nmi <- true
  end;
  let base =
    match (nmi, cpu.config.nmi_dispatch) with
    | true, Hardwired_idt fixed -> fixed
    | true, Via_idtr | false, _ -> cpu.idtr
  in
  let seg, off = read_idt_entry cpu ~base vector in
  r.cs <- seg;
  r.ip <- off;
  cpu.halted <- false

exception Fault of int
(* Machine exception raised mid-execution; vectors through the IDT. *)

(* --- flags ----------------------------------------------------------- *)

let set_logic_flags cpu result =
  let r = cpu.regs in
  let psw = Flags.of_result r.psw result in
  let psw = Flags.set psw Flags.Carry false in
  r.psw <- Flags.set psw Flags.Overflow false

let set_logic_flags8 cpu result =
  let r = cpu.regs in
  let psw = Flags.of_result8 r.psw result in
  let psw = Flags.set psw Flags.Carry false in
  r.psw <- Flags.set psw Flags.Overflow false

let set_arith_flags cpu result ~carry ~overflow =
  let r = cpu.regs in
  let psw = Flags.of_result r.psw result in
  let psw = Flags.set psw Flags.Carry carry in
  r.psw <- Flags.set psw Flags.Overflow overflow

(* ALU on 16-bit values: returns the result to store, or [-1] when the
   destination is left alone (cmp/test), and updates flags.  The [-1]
   sentinel (not an option) and the packed {!Word} primitives keep this
   allocation-free — it runs once per arithmetic instruction. *)
let no_store = -1

let[@inline] set_packed_flags cpu p =
  let result = Word.packed_result p in
  set_arith_flags cpu result
    ~carry:(Word.packed_carry p)
    ~overflow:(Word.packed_overflow p);
  result

let alu16 cpu op dst src =
  match op with
  | Instruction.Add -> set_packed_flags cpu (Word.add_packed dst src)
  | Instruction.Adc ->
    let carry = Flags.get cpu.regs.psw Flags.Carry in
    set_packed_flags cpu (Word.add_with_carry_packed dst src ~carry)
  | Instruction.Sub -> set_packed_flags cpu (Word.sub_packed dst src)
  | Instruction.Sbb ->
    let borrow = Flags.get cpu.regs.psw Flags.Carry in
    set_packed_flags cpu (Word.sub_with_borrow_packed dst src ~borrow)
  | Instruction.And ->
    let result = dst land src in
    set_logic_flags cpu result;
    result
  | Instruction.Or ->
    let result = dst lor src in
    set_logic_flags cpu result;
    result
  | Instruction.Xor ->
    let result = dst lxor src in
    set_logic_flags cpu result;
    result
  | Instruction.Cmp ->
    ignore (set_packed_flags cpu (Word.sub_packed dst src));
    no_store
  | Instruction.Test ->
    set_logic_flags cpu (dst land src);
    no_store

(* Same contract as {!alu16}: [-1] means no store-back. *)
let alu8 cpu op dst src =
  let wrap v = v land 0xff in
  match op with
  | Instruction.Add ->
    let sum = dst + src in
    let result = wrap sum in
    let psw = Flags.of_result8 cpu.regs.psw result in
    let psw = Flags.set psw Flags.Carry (sum > 0xff) in
    cpu.regs.psw <- psw;
    result
  | Instruction.Adc ->
    let sum = dst + src + if Flags.get cpu.regs.psw Flags.Carry then 1 else 0 in
    let result = wrap sum in
    let psw = Flags.of_result8 cpu.regs.psw result in
    let psw = Flags.set psw Flags.Carry (sum > 0xff) in
    cpu.regs.psw <- psw;
    result
  | Instruction.Sub ->
    let diff = dst - src in
    let result = wrap diff in
    let psw = Flags.of_result8 cpu.regs.psw result in
    let psw = Flags.set psw Flags.Carry (diff < 0) in
    cpu.regs.psw <- psw;
    result
  | Instruction.Sbb ->
    let diff = dst - src - if Flags.get cpu.regs.psw Flags.Carry then 1 else 0 in
    let result = wrap diff in
    let psw = Flags.of_result8 cpu.regs.psw result in
    let psw = Flags.set psw Flags.Carry (diff < 0) in
    cpu.regs.psw <- psw;
    result
  | Instruction.And ->
    let result = dst land src in
    set_logic_flags8 cpu result;
    result
  | Instruction.Or ->
    let result = dst lor src in
    set_logic_flags8 cpu result;
    result
  | Instruction.Xor ->
    let result = dst lxor src in
    set_logic_flags8 cpu result;
    result
  | Instruction.Cmp ->
    let diff = dst - src in
    let psw = Flags.of_result8 cpu.regs.psw (wrap diff) in
    cpu.regs.psw <- Flags.set psw Flags.Carry (diff < 0);
    no_store
  | Instruction.Test ->
    set_logic_flags8 cpu (dst land src);
    no_store

let cond_holds cpu cond =
  let flag f = Flags.get cpu.regs.psw f in
  let cf = flag Flags.Carry
  and zf = flag Flags.Zero
  and sf = flag Flags.Sign
  and off = flag Flags.Overflow in
  match cond with
  | Instruction.B -> cf
  | Instruction.NB -> not cf
  | Instruction.BE -> cf || zf
  | Instruction.A -> not (cf || zf)
  | Instruction.E -> zf
  | Instruction.NE -> not zf
  | Instruction.L -> sf <> off
  | Instruction.GE -> sf = off
  | Instruction.LE -> zf || sf <> off
  | Instruction.G -> (not zf) && sf = off
  | Instruction.S -> sf
  | Instruction.NS -> not sf
  | Instruction.O -> off
  | Instruction.NO -> not off

(* --- string operations ----------------------------------------------- *)

let string_delta cpu = function
  | Instruction.Byte -> if Flags.get cpu.regs.psw Flags.Direction then -1 else 1
  | Instruction.Word_ -> if Flags.get cpu.regs.psw Flags.Direction then -2 else 2

let exec_string_unit cpu op width =
  let r = cpu.regs in
  let delta = string_delta cpu width in
  (match (op, width) with
  | `Movs, Instruction.Byte ->
    let v = Memory.read_byte cpu.mem (Addr.physical ~seg:r.ds ~off:r.si) in
    Memory.write_byte cpu.mem (Addr.physical ~seg:r.es ~off:r.di) v;
    r.si <- Word.mask (r.si + delta);
    r.di <- Word.mask (r.di + delta)
  | `Movs, Instruction.Word_ ->
    let v = Memory.read_word cpu.mem (Addr.physical ~seg:r.ds ~off:r.si) in
    Memory.write_word cpu.mem (Addr.physical ~seg:r.es ~off:r.di) v;
    r.si <- Word.mask (r.si + delta);
    r.di <- Word.mask (r.di + delta)
  | `Stos, Instruction.Byte ->
    Memory.write_byte cpu.mem (Addr.physical ~seg:r.es ~off:r.di) (Word.low_byte r.ax);
    r.di <- Word.mask (r.di + delta)
  | `Stos, Instruction.Word_ ->
    Memory.write_word cpu.mem (Addr.physical ~seg:r.es ~off:r.di) r.ax;
    r.di <- Word.mask (r.di + delta)
  | `Lods, Instruction.Byte ->
    let v = Memory.read_byte cpu.mem (Addr.physical ~seg:r.ds ~off:r.si) in
    Registers.set8 r Registers.AL v;
    r.si <- Word.mask (r.si + delta)
  | `Lods, Instruction.Word_ ->
    let v = Memory.read_word cpu.mem (Addr.physical ~seg:r.ds ~off:r.si) in
    r.ax <- v;
    r.si <- Word.mask (r.si + delta))

let string_op_kind = function
  | Instruction.Movs w -> (`Movs, w)
  | Instruction.Stos w -> (`Stos, w)
  | Instruction.Lods w -> (`Lods, w)
  | _ -> assert false

(* --- execution -------------------------------------------------------- *)

let decode_at cpu =
  let r = cpu.regs in
  let fetch pos =
    Memory.read_byte cpu.mem (Addr.physical ~seg:r.cs ~off:(Word.mask pos))
  in
  Codec.decode ~fetch ~pos:r.ip

(* The cache is keyed by the physical address of the opcode byte, which
   only determines the instruction bytes when the whole decode window is
   linear: no 16-bit offset wrap within the segment and no 20-bit
   physical wrap.  Wrapping fetches (the §5.2 hazard at its worst) fall
   back to plain decoding. *)
let cacheable_ip_limit = 0x10000 - Codec.max_length
let cacheable_pa_limit = Addr.memory_size - Codec.max_length

let fetch_decode cpu =
  match cpu.decode_cache with
  | None -> decode_at cpu
  | Some cache ->
    let r = cpu.regs in
    if r.ip > cacheable_ip_limit then decode_at cpu
    else begin
      let pa = Addr.physical ~seg:r.cs ~off:r.ip in
      if pa > cacheable_pa_limit then decode_at cpu
      else begin
        let len = Decode_cache.cached_len cache pa in
        if len > 0 then begin
          Decode_cache.record_hit cache;
          (Decode_cache.cached_instr cache pa, len)
        end
        else begin
          Decode_cache.record_miss cache;
          let ((instr, len) as decoded) = decode_at cpu in
          Decode_cache.store cache pa instr len (Executed instr);
          decoded
        end
      end
    end

(* Execute [instr]; [ip0] is the instruction's own offset and [len] its
   encoded length.  [r.ip] has already been advanced to [ip0 + len]. *)
let execute cpu instr ~ip0 ~len =
  let r = cpu.regs in
  match instr with
  | Instruction.Mov_r16_imm (reg, v) -> Registers.set16 r reg v
  | Instruction.Mov_r8_imm (reg, v) -> Registers.set8 r reg v
  | Instruction.Mov_r16_r16 (d, s) -> Registers.set16 r d (Registers.get16 r s)
  | Instruction.Mov_sreg_r16 (d, s) -> Registers.set_sreg r d (Registers.get16 r s)
  | Instruction.Mov_r16_sreg (d, s) -> Registers.set16 r d (Registers.get_sreg r s)
  | Instruction.Mov_r16_mem (d, m) -> Registers.set16 r d (read_mem16 cpu m)
  | Instruction.Mov_mem_r16 (m, s) -> write_mem16 cpu m (Registers.get16 r s)
  | Instruction.Mov_mem_imm (m, v) -> write_mem16 cpu m v
  | Instruction.Mov_r8_mem (d, m) -> Registers.set8 r d (read_mem8 cpu m)
  | Instruction.Mov_mem_r8 (m, s) -> write_mem8 cpu m (Registers.get8 r s)
  | Instruction.Mov_sreg_mem (d, m) -> Registers.set_sreg r d (read_mem16 cpu m)
  | Instruction.Mov_mem_sreg (m, s) -> write_mem16 cpu m (Registers.get_sreg r s)
  | Instruction.Lea (d, m) ->
    let base_value =
      match m.Instruction.base with
      | Instruction.No_base -> 0
      | Instruction.Base_bx -> r.bx
      | Instruction.Base_si -> r.si
      | Instruction.Base_di -> r.di
      | Instruction.Base_bp -> r.bp
      | Instruction.Base_bx_si -> Word.mask (r.bx + r.si)
      | Instruction.Base_bx_di -> Word.mask (r.bx + r.di)
    in
    Registers.set16 r d (Word.mask (base_value + m.Instruction.disp))
  | Instruction.Xchg (a, b) ->
    let va = Registers.get16 r a and vb = Registers.get16 r b in
    Registers.set16 r a vb;
    Registers.set16 r b va
  | Instruction.Alu_r16_r16 (op, d, s) ->
    let result = alu16 cpu op (Registers.get16 r d) (Registers.get16 r s) in
    if result >= 0 then Registers.set16 r d result
  | Instruction.Alu_r16_imm (op, d, v) ->
    let result = alu16 cpu op (Registers.get16 r d) v in
    if result >= 0 then Registers.set16 r d result
  | Instruction.Alu_r16_mem (op, d, m) ->
    let result = alu16 cpu op (Registers.get16 r d) (read_mem16 cpu m) in
    if result >= 0 then Registers.set16 r d result
  | Instruction.Alu_mem_r16 (op, m, s) ->
    let result = alu16 cpu op (read_mem16 cpu m) (Registers.get16 r s) in
    if result >= 0 then write_mem16 cpu m result
  | Instruction.Alu_r8_r8 (op, d, s) ->
    let result = alu8 cpu op (Registers.get8 r d) (Registers.get8 r s) in
    if result >= 0 then Registers.set8 r d result
  | Instruction.Alu_r8_imm (op, d, v) ->
    let result = alu8 cpu op (Registers.get8 r d) v in
    if result >= 0 then Registers.set8 r d result
  | Instruction.Inc_r16 reg ->
    let p = Word.add_packed (Registers.get16 r reg) 1 in
    let result = Word.packed_result p in
    Registers.set16 r reg result;
    let psw = Flags.of_result r.psw result in
    r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p)
  | Instruction.Dec_r16 reg ->
    let p = Word.sub_packed (Registers.get16 r reg) 1 in
    let result = Word.packed_result p in
    Registers.set16 r reg result;
    let psw = Flags.of_result r.psw result in
    r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p)
  | Instruction.Neg_r16 reg ->
    let v = Registers.get16 r reg in
    let p = Word.sub_packed 0 v in
    let result = Word.packed_result p in
    Registers.set16 r reg result;
    set_arith_flags cpu result ~carry:(v <> 0)
      ~overflow:(Word.packed_overflow p)
  | Instruction.Not_r16 reg ->
    Registers.set16 r reg (Word.mask (lnot (Registers.get16 r reg)))
  | Instruction.Shl_r16 (reg, n) ->
    let v = Registers.get16 r reg in
    if n > 0 then begin
      let shifted = v lsl n in
      let result = Word.mask shifted in
      Registers.set16 r reg result;
      let carry = shifted land 0x10000 <> 0 in
      set_arith_flags cpu result ~carry ~overflow:false
    end
  | Instruction.Shr_r16 (reg, n) ->
    let v = Registers.get16 r reg in
    if n > 0 then begin
      let result = v lsr n in
      Registers.set16 r reg result;
      let carry = (v lsr (n - 1)) land 1 <> 0 in
      set_arith_flags cpu result ~carry ~overflow:false
    end
  | Instruction.Mul_r8 src ->
    let product = Registers.get8 r Registers.AL * Registers.get8 r src in
    r.ax <- Word.mask product;
    let upper_nonzero = Word.high_byte r.ax <> 0 in
    let psw = Flags.set r.psw Flags.Carry upper_nonzero in
    r.psw <- Flags.set psw Flags.Overflow upper_nonzero
  | Instruction.Mul_r16 src ->
    let product = r.ax * Registers.get16 r src in
    r.ax <- Word.mask product;
    r.dx <- Word.mask (product lsr 16);
    let upper_nonzero = r.dx <> 0 in
    let psw = Flags.set r.psw Flags.Carry upper_nonzero in
    r.psw <- Flags.set psw Flags.Overflow upper_nonzero
  | Instruction.Div_r8 src ->
    let divisor = Registers.get8 r src in
    if divisor = 0 then raise (Fault vec_divide_error);
    let quotient = r.ax / divisor and remainder = r.ax mod divisor in
    if quotient > 0xff then raise (Fault vec_divide_error);
    r.ax <- Word.of_bytes ~low:quotient ~high:remainder
  | Instruction.Div_r16 src ->
    let divisor = Registers.get16 r src in
    if divisor = 0 then raise (Fault vec_divide_error);
    let dividend = (r.dx lsl 16) lor r.ax in
    let quotient = dividend / divisor and remainder = dividend mod divisor in
    if quotient > 0xffff then raise (Fault vec_divide_error);
    r.ax <- quotient;
    r.dx <- remainder
  | Instruction.Push_r16 reg -> push cpu (Registers.get16 r reg)
  | Instruction.Push_imm v -> push cpu v
  | Instruction.Push_sreg s -> push cpu (Registers.get_sreg r s)
  | Instruction.Pop_r16 reg -> Registers.set16 r reg (pop cpu)
  | Instruction.Pop_sreg s -> Registers.set_sreg r s (pop cpu)
  | Instruction.Pushf -> push cpu r.psw
  | Instruction.Popf -> r.psw <- pop cpu
  | Instruction.Jmp target -> r.ip <- target
  | Instruction.Jmp_far (seg, off) ->
    r.cs <- seg;
    r.ip <- off
  | Instruction.Jcc (cond, target) -> if cond_holds cpu cond then r.ip <- target
  | Instruction.Call target ->
    push cpu r.ip;
    r.ip <- target
  | Instruction.Ret -> r.ip <- pop cpu
  | Instruction.Iret ->
    r.ip <- pop cpu;
    r.cs <- pop cpu;
    r.psw <- pop cpu;
    (* The paper's augmentation: iret re-arms NMI acceptance. *)
    r.nmi_counter <- 0;
    cpu.in_nmi <- false
  | Instruction.Int vector -> service cpu vector ~nmi:false ~return_ip:r.ip
  | Instruction.Loop target ->
    r.cx <- Word.pred r.cx;
    if r.cx <> 0 then r.ip <- target
  | Instruction.Movs _ | Instruction.Stos _ | Instruction.Lods _ ->
    exec_string_unit cpu (fst (string_op_kind instr)) (snd (string_op_kind instr))
  | Instruction.Rep body ->
    (* One iteration per clock tick, controlled by cx as in
       [19]{2/3.2-REP}; ip stays on the instruction until cx drains, so
       interrupts can preempt and resume the copy. *)
    if r.cx = 0 then ()
    else begin
      let kind, width = string_op_kind body in
      exec_string_unit cpu kind width;
      r.cx <- Word.pred r.cx;
      if r.cx <> 0 then r.ip <- ip0
    end
  | Instruction.In_ (width, port) -> (
    let v = cpu.io.io_in port width in
    match width with
    | Instruction.Byte -> Registers.set8 r Registers.AL v
    | Instruction.Word_ -> r.ax <- Word.mask v)
  | Instruction.Out (port, width) ->
    let v =
      match width with
      | Instruction.Byte -> Registers.get8 r Registers.AL
      | Instruction.Word_ -> r.ax
    in
    cpu.io.io_out port width v
  | Instruction.In_dx width -> (
    let v = cpu.io.io_in r.dx width in
    match width with
    | Instruction.Byte -> Registers.set8 r Registers.AL v
    | Instruction.Word_ -> r.ax <- Word.mask v)
  | Instruction.Out_dx width ->
    let v =
      match width with
      | Instruction.Byte -> Registers.get8 r Registers.AL
      | Instruction.Word_ -> r.ax
    in
    cpu.io.io_out r.dx width v
  | Instruction.Hlt -> cpu.halted <- true
  | Instruction.Nop -> ()
  | Instruction.Cli -> r.psw <- Flags.set r.psw Flags.Interrupt false
  | Instruction.Sti -> r.psw <- Flags.set r.psw Flags.Interrupt true
  | Instruction.Cld -> r.psw <- Flags.set r.psw Flags.Direction false
  | Instruction.Std -> r.psw <- Flags.set r.psw Flags.Direction true
  | Instruction.Clc -> r.psw <- Flags.set r.psw Flags.Carry false
  | Instruction.Stc -> r.psw <- Flags.set r.psw Flags.Carry true
  | Instruction.Invalid _ ->
    ignore len;
    raise (Fault vec_invalid_opcode)

(* Advance past the instruction and run it.  [event] is the (possibly
   cache-resident) [Executed] value to return on normal completion, so
   the hot path allocates nothing. *)
let dispatch cpu instr ~ip0 ~len event =
  cpu.regs.ip <- Word.mask (ip0 + len);
  match execute cpu instr ~ip0 ~len with
  | () -> event
  | exception Fault vector ->
    (* Faults push the address of the faulting instruction. *)
    service cpu vector ~nmi:false ~return_ip:ip0;
    Took_exception vector

let exec_uncached cpu ~ip0 =
  let instr, len = decode_at cpu in
  dispatch cpu instr ~ip0 ~len (Executed instr)

(* Fetch-decode-execute with the decode cache inlined: a hit costs one
   bounds pair, one byte load and one array load, and returns the
   entry's prebuilt event. *)
let exec_one cpu =
  let ip0 = cpu.regs.ip in
  match cpu.decode_cache with
  | Some cache when ip0 <= cacheable_ip_limit ->
    let pa = Addr.physical ~seg:cpu.regs.cs ~off:ip0 in
    if pa > cacheable_pa_limit then exec_uncached cpu ~ip0
    else begin
      let len = Decode_cache.cached_len cache pa in
      if len > 0 then
        (* No hit counter here: the step loop is the one place where an
           extra load/store per tick is measurable.  [misses] still
           counts every fill, so hit totals are recoverable as
           executed-instructions minus misses. *)
        dispatch cpu
          (Decode_cache.cached_instr cache pa)
          ~ip0 ~len
          (Decode_cache.cached_payload cache pa)
      else begin
        Decode_cache.record_miss cache;
        let instr, len = decode_at cpu in
        let event = Executed instr in
        Decode_cache.store cache pa instr len event;
        dispatch cpu instr ~ip0 ~len event
      end
    end
  | Some _ | None -> exec_uncached cpu ~ip0

let nmi_acceptable cpu =
  if cpu.config.nmi_counter_enabled then cpu.regs.nmi_counter = 0
  else not cpu.in_nmi

let in_nmi_state cpu = cpu.nmi_pin && nmi_acceptable cpu

let step cpu =
  cpu.steps <- cpu.steps + 1;
  if cpu.reset_pin then begin
    reset cpu;
    Did_reset
  end
  else begin
    (* The NMI counter is decremented on every clock tick (§2).  The
       physical register cannot hold more than its maximum, so an
       arbitrarily corrupted value is clamped — this bounds the time any
       state can mask NMIs. *)
    if cpu.config.nmi_counter_enabled then begin
      if cpu.regs.nmi_counter > cpu.config.nmi_counter_max then
        cpu.regs.nmi_counter <- cpu.config.nmi_counter_max;
      if cpu.regs.nmi_counter > 0 then
        cpu.regs.nmi_counter <- cpu.regs.nmi_counter - 1
    end;
    if cpu.nmi_pin && nmi_acceptable cpu then begin
      cpu.nmi_pin <- false;
      service cpu vec_nmi ~nmi:true ~return_ip:cpu.regs.ip;
      Took_interrupt { vector = vec_nmi; nmi = true }
    end
    else
      match cpu.intr with
      | Some vector when Flags.get cpu.regs.psw Flags.Interrupt ->
        cpu.intr <- None;
        service cpu vector ~nmi:false ~return_ip:cpu.regs.ip;
        Took_interrupt { vector; nmi = false }
      | Some _ | None ->
        if cpu.halted then Halted_idle else exec_one cpu
  end
