let memory_size = 0x100000
let[@inline] mask a = a land (memory_size - 1)
let[@inline] physical ~seg ~off = mask ((seg lsl 4) + off)
let pp ppf a = Format.fprintf ppf "0x%05X" a
let pp_seg_off ppf (seg, off) = Format.fprintf ppf "%04X:%04X" seg off
