(** 16-bit machine words.

    All SSX16 registers and memory words are 16-bit unsigned quantities
    represented as OCaml [int]s in the range [0, 0xFFFF].  The functions
    here perform the wrap-around arithmetic of the machine and expose the
    carry/overflow information the CPU needs to set flags. *)

type t = int
(** A 16-bit word; invariant: [0 <= w <= 0xffff]. *)

val mask : int -> t
(** Truncate an arbitrary integer to 16 bits. *)

val mask8 : int -> int
(** Truncate an arbitrary integer to 8 bits. *)

val low_byte : t -> int
(** Least-significant byte. *)

val high_byte : t -> int
(** Most-significant byte. *)

val of_bytes : low:int -> high:int -> t
(** Assemble a word from two bytes (each masked to 8 bits). *)

val is_negative : t -> bool
(** Sign bit (bit 15) viewed as two's complement. *)

val to_signed : t -> int
(** Two's-complement value in [-32768, 32767]. *)

val add : t -> t -> t * bool * bool
(** [add a b] is [(result, carry, overflow)]. *)

val add_with_carry : t -> t -> carry:bool -> t * bool * bool

val sub : t -> t -> t * bool * bool
(** [sub a b] is [(a - b mod 2^16, borrow, overflow)]. *)

val sub_with_borrow : t -> t -> borrow:bool -> t * bool * bool

(** {2 Allocation-free ALU}

    The same operations with result, carry and overflow packed into one
    immediate [int] — bits 0-15 hold the 16-bit result, bit 16 the
    carry (or borrow) out and bit 17 signed overflow.  The CPU's
    instruction loop uses these so that an arithmetic instruction
    allocates nothing; the tuple functions above are defined on top of
    them and remain the readable interface elsewhere. *)

val add_packed : t -> t -> int
val add_with_carry_packed : t -> t -> carry:bool -> int
val sub_packed : t -> t -> int
val sub_with_borrow_packed : t -> t -> borrow:bool -> int

val packed_result : int -> t
val packed_carry : int -> bool
val packed_overflow : int -> bool

val succ : t -> t
(** Increment modulo 2^16. *)

val pred : t -> t
(** Decrement modulo 2^16. *)

val parity_even : int -> bool
(** Even parity of the low byte, as on x86. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x1F40]. *)
