(* Decoded instructions keyed by the physical address of their opcode
   byte.  Validity lives in [lens]: a zero length means empty, so the
   hot-path probe is a single byte load.  [instrs] and [payloads] are
   only meaningful where [lens] is non-zero.

   The cache is polymorphic in a per-entry payload so the CPU can stash
   a prebuilt [Executed] event next to each decode: a cache hit then
   allocates nothing at all on the step fast path. *)

type 'a t = {
  instrs : Instruction.t array;
  payloads : 'a array;
  lens : Bytes.t;
  empty_payload : 'a;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

(* A cached entry's bytes never wrap: entries are only stored when the
   whole [max_length] window is linear (see {!Cpu.fetch_decode}), so a
   write at [a] can only affect entries at [a - max_length + 1 .. a]. *)
let max_span = Codec.max_length

let create ~empty_payload =
  { instrs = Array.make Addr.memory_size Instruction.Nop;
    payloads = Array.make Addr.memory_size empty_payload;
    lens = Bytes.make Addr.memory_size '\000';
    empty_payload;
    hits = 0;
    misses = 0;
    invalidations = 0 }

let[@inline] cached_len t addr = Char.code (Bytes.unsafe_get t.lens addr)
let[@inline] cached_instr t addr = Array.unsafe_get t.instrs addr
let[@inline] cached_payload t addr = Array.unsafe_get t.payloads addr

let[@inline] store t addr instr len payload =
  Array.unsafe_set t.instrs addr instr;
  Array.unsafe_set t.payloads addr payload;
  Bytes.unsafe_set t.lens addr (Char.unsafe_chr len)

let[@inline] record_hit t = t.hits <- t.hits + 1
let[@inline] record_miss t = t.misses <- t.misses + 1

let invalidate t addr =
  t.invalidations <- t.invalidations + 1;
  for p = addr - max_span + 1 to addr do
    Bytes.unsafe_set t.lens (Addr.mask p) '\000'
  done

let clear t = Bytes.fill t.lens 0 (Bytes.length t.lens) '\000'

let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
