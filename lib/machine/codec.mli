(** Binary encoding of SSX16 instructions.

    Instructions occupy 1–6 bytes: one opcode byte followed by operand
    bytes.  The encoding is dense enough that many random byte sequences
    decode to executable instructions (mirroring the variable-length
    hazard of IA-32 that §5.2 of the paper discusses), while genuinely
    undecodable bytes yield {!Instruction.Invalid}, which the CPU turns
    into an undefined-opcode exception through the IDT. *)

val encode : Instruction.t -> int list
(** Bytes of an instruction, opcode first. *)

val encoded_length : Instruction.t -> int
(** [List.length (encode i)], without building the list. *)

val max_length : int
(** Upper bound on instruction length (6 bytes; 7 for rep-prefixed). *)

val decode : fetch:(int -> int) -> pos:int -> Instruction.t * int
(** [decode ~fetch ~pos] decodes the instruction whose opcode byte is at
    [fetch pos]; [fetch] receives byte offsets (the caller wraps them
    into segment-relative fetches).  Returns the instruction and its
    encoded length.  Never raises: unknown bytes decode to
    [Invalid b] of length 1. *)

val decode_bytes : string -> pos:int -> Instruction.t * int
(** Convenience wrapper decoding from a byte string. *)
