(** Basic-block threaded-code compiler (ROADMAP item 2, DESIGN §4g).

    Discovers basic blocks — straight-line runs ending at control
    transfers, port I/O, [iret]/[int], CS writes, [hlt], or a length
    cap — and compiles each into an array of closures with operands and
    successor-ip constants pre-resolved, keyed by the physical address
    of the first opcode byte.  Executing compiled code skips
    fetch/decode/dispatch entirely.

    The §5.2 self-modifying-code contract is preserved: every memory
    write (routed here from {!Memory.set_write_hook} by {!Machine})
    bumps a per-page generation; a block runs only while its recorded
    code bytes are proven identical to memory (fresh generations, or a
    direct byte comparison that tolerates unrelated writes into the
    same page).  Freshness is rechecked at block entry, after each
    memory-writing instruction, and on every single-stepped tick —
    guest stores into compiled code, including the currently executing
    block, force re-translation at the next instruction boundary.
    {!clear} (snapshot restore, taken reset pins) drops every block.

    Observable behaviour — events, architectural state after every
    tick, device and port interleaving — is identical to the
    interpreter; only speed changes.  The jit-on/jit-off differential
    suite asserts this. *)

type t

val create : unit -> t
(** Empty block table.  One per machine; install {!note_write} /
    {!clear} on the machine's memory hooks (see {!Machine.set_jit}). *)

val note_write : t -> int -> unit
(** Memory write notification: bump the written page's generation. *)

val clear : t -> unit
(** Invalidate every block (O(1) epoch bump) and drop the cursor. *)

val step_cpu : t -> Cpu.t -> Cpu.event
(** One clock tick, exactly as {!Cpu.step} would perform it, with the
    execute stage routed through the block table.  Uncompilable
    positions (wrapping decode windows) fall back to the
    interpreter. *)

val run_quiet :
  t ->
  Cpu.t ->
  devices:Device.t array ->
  counters:Tick_counters.t option ->
  budget:int ->
  unit
(** Run exactly [budget] ticks of a machine with {e no event hooks}:
    device ticks first each tick, then the CPU step through the block
    table.  With no devices, interrupt pins are polled at block
    boundaries only (nothing can assert them mid-block) and a halted
    CPU idles in O(1); with devices, pins are re-polled every tick.
    A single device that declares a quiescence window
    ({!Device.quiescent}) lets self-targeting delay loops batch whole
    window-sized runs of ticks in closed form.  [steps] and the NMI
    countdown stay exact per tick (port handlers read them); event
    counts are batched into [counters] with one flush per call. *)

(** {1 Stats} *)

val built : t -> int
(** Blocks compiled since creation (including re-translations). *)

val retranslations : t -> int
(** Blocks recompiled over a live same-epoch predecessor — the §5.2
    path: code bytes changed under a compiled block. *)

val chained : t -> int
(** Block entries taken through a chain pointer: a block ending in an
    unconditional [jmp] caches its successor block, so jmp-linked runs
    re-enter compiled code without a table probe.  Adoption re-checks
    the successor's epoch, CS, leading ip and code-byte freshness, so
    chaining is invisible to the architectural state — only this
    counter and speed change. *)

val block_ticks : t -> int
(** Ticks executed through compiled ops (vs interpreter fallback). *)

val fused_ticks : t -> int
(** Ticks executed through fused two-op superinstructions (a subset of
    {!block_ticks}; always even — each fused pair covers two ticks). *)
