(** Bounded execution tracing.

    Attaches to a machine and keeps the most recent events in a ring
    buffer — the tool you reach for when a fault-injection run does
    something surprising.  Each entry records the tick, the pre-dispatch
    [cs:ip] and what the step did. *)

type entry = {
  tick : int;
  cs : Word.t;
  ip : Word.t;  (** location {e after} the step (jump targets resolved) *)
  event : Cpu.event;
}

type t

val attach : ?capacity:int -> Machine.t -> t
(** Start tracing (default capacity 256 entries). *)

val entries : t -> entry list
(** Oldest first, at most [capacity] entries. *)

val clear : t -> unit

val pause : t -> unit
(** Stop recording (the hook stays installed). *)

val resume : t -> unit

val pp_entry : Format.formatter -> entry -> unit
val dump : Format.formatter -> t -> unit
(** Render the whole buffer, one line per entry. *)

val to_json : t -> string
(** The buffer as a JSON array, oldest first.  Each entry carries
    [tick], [cs]/[ip] (hex strings), a [kind]
    ([executed]/[interrupt]/[nmi]/[exception]/[halted]/[reset]) and a
    [detail] (the mnemonic, or the vector number).  For
    [ssos trace --format json] and mechanical diffing. *)
