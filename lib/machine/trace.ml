type entry = {
  tick : int;
  cs : Word.t;
  ip : Word.t;
  event : Cpu.event;
}

type t = {
  capacity : int;
  buffer : entry option array;
  mutable next : int;  (* next write slot *)
  mutable total : int;
  mutable recording : bool;
}

let attach ?(capacity = 256) machine =
  if capacity <= 0 then invalid_arg "Trace.attach: capacity must be positive";
  let trace =
    { capacity;
      buffer = Array.make capacity None;
      next = 0;
      total = 0;
      recording = true }
  in
  Machine.on_event machine (fun machine event ->
      if trace.recording then begin
        let regs = (Machine.cpu machine).Cpu.regs in
        trace.buffer.(trace.next) <-
          Some
            { tick = Machine.ticks machine;
              cs = regs.Registers.cs;
              ip = regs.Registers.ip;
              event };
        trace.next <- (trace.next + 1) mod trace.capacity;
        trace.total <- trace.total + 1
      end);
  trace

let entries trace =
  let slots =
    List.init trace.capacity (fun i ->
        trace.buffer.((trace.next + i) mod trace.capacity))
  in
  List.filter_map Fun.id slots

let clear trace =
  Array.fill trace.buffer 0 trace.capacity None;
  trace.next <- 0;
  trace.total <- 0

let pause trace = trace.recording <- false
let resume trace = trace.recording <- true

let pp_event ppf = function
  | Cpu.Executed instr -> Instruction.pp ppf instr
  | Cpu.Took_interrupt { vector; nmi } ->
    Format.fprintf ppf "<interrupt %d%s>" vector (if nmi then " (nmi)" else "")
  | Cpu.Took_exception vector -> Format.fprintf ppf "<exception %d>" vector
  | Cpu.Halted_idle -> Format.fprintf ppf "<halted>"
  | Cpu.Did_reset -> Format.fprintf ppf "<reset>"

let pp_entry ppf { tick; cs; ip; event } =
  Format.fprintf ppf "%8d  %04X:%04X  %a" tick cs ip pp_event event

let dump ppf trace =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (entries trace)
