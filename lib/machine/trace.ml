type entry = {
  tick : int;
  cs : Word.t;
  ip : Word.t;
  event : Cpu.event;
}

type t = {
  capacity : int;
  buffer : entry option array;
  mutable next : int;  (* next write slot *)
  mutable total : int;
  mutable recording : bool;
}

let attach ?(capacity = 256) machine =
  if capacity <= 0 then invalid_arg "Trace.attach: capacity must be positive";
  let trace =
    { capacity;
      buffer = Array.make capacity None;
      next = 0;
      total = 0;
      recording = true }
  in
  Machine.on_event machine (fun machine event ->
      if trace.recording then begin
        let regs = (Machine.cpu machine).Cpu.regs in
        trace.buffer.(trace.next) <-
          Some
            { tick = Machine.ticks machine;
              cs = regs.Registers.cs;
              ip = regs.Registers.ip;
              event };
        trace.next <- (trace.next + 1) mod trace.capacity;
        trace.total <- trace.total + 1
      end);
  trace

let entries trace =
  let slots =
    List.init trace.capacity (fun i ->
        trace.buffer.((trace.next + i) mod trace.capacity))
  in
  List.filter_map Fun.id slots

let clear trace =
  Array.fill trace.buffer 0 trace.capacity None;
  trace.next <- 0;
  trace.total <- 0

let pause trace = trace.recording <- false
let resume trace = trace.recording <- true

let pp_event ppf = function
  | Cpu.Executed instr -> Instruction.pp ppf instr
  | Cpu.Took_interrupt { vector; nmi } ->
    Format.fprintf ppf "<interrupt %d%s>" vector (if nmi then " (nmi)" else "")
  | Cpu.Took_exception vector -> Format.fprintf ppf "<exception %d>" vector
  | Cpu.Halted_idle -> Format.fprintf ppf "<halted>"
  | Cpu.Did_reset -> Format.fprintf ppf "<reset>"

let pp_entry ppf { tick; cs; ip; event } =
  Format.fprintf ppf "%8d  %04X:%04X  %a" tick cs ip pp_event event

let dump ppf trace =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (entries trace)

(* lib/machine depends on nothing above the ISA, so the JSON encoder is
   local — it only ever has to escape mnemonic strings. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let entry_json buf { tick; cs; ip; event } =
  let kind, detail =
    match event with
    | Cpu.Executed instr -> ("executed", Instruction.to_string instr)
    | Cpu.Took_interrupt { vector; nmi } ->
      ((if nmi then "nmi" else "interrupt"), string_of_int vector)
    | Cpu.Took_exception vector -> ("exception", string_of_int vector)
    | Cpu.Halted_idle -> ("halted", "")
    | Cpu.Did_reset -> ("reset", "")
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"tick\": %d, \"cs\": \"%04X\", \"ip\": \"%04X\", \"kind\": \"%s\", \
        \"detail\": \"%s\"}"
       tick cs ip kind (json_escape detail))

let to_json trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i entry ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      entry_json buf entry)
    (entries trace);
  Buffer.add_string buf "\n]";
  Buffer.contents buf
