(** The CPU register file.

    Contains the registers the paper's model names (§2): general purpose
    registers, segment registers, stack registers, instruction pointer,
    processor status word — plus the paper's proposed hardware addition,
    the {e nmi counter} (§2, "Additional necessary and sufficient
    hardware support"). *)

type reg16 = AX | BX | CX | DX | SI | DI | SP | BP
(** 16-bit general-purpose and index registers. *)

type reg8 = AL | AH | BL | BH | CL | CH | DL | DH
(** 8-bit halves of [AX]..[DX]. *)

type sreg = CS | DS | ES | SS | FS | GS
(** Segment registers. *)

type t = {
  mutable ax : Word.t;
  mutable bx : Word.t;
  mutable cx : Word.t;
  mutable dx : Word.t;
  mutable si : Word.t;
  mutable di : Word.t;
  mutable sp : Word.t;
  mutable bp : Word.t;
  mutable cs : Word.t;
  mutable ds : Word.t;
  mutable es : Word.t;
  mutable ss : Word.t;
  mutable fs : Word.t;
  mutable gs : Word.t;
  mutable ip : Word.t;
  mutable psw : Flags.t;
  mutable nmi_counter : int;
      (** The paper's countdown register: while non-zero the processor
          ignores NMIs; decremented every clock tick; set to its maximum
          when an NMI is taken and cleared by [iret]. *)
}

val create : unit -> t
(** Power-on register file (all zero; [psw = Flags.initial]). *)

val copy : t -> t
(** Snapshot (used by tracing, schedulers and the fault injector). *)

val get16 : t -> reg16 -> Word.t
val set16 : t -> reg16 -> Word.t -> unit
val get8 : t -> reg8 -> int
val set8 : t -> reg8 -> int -> unit
val get_sreg : t -> sreg -> Word.t
val set_sreg : t -> sreg -> Word.t -> unit

val reg16_index : reg16 -> int
(** Stable encoding index (x86 order: ax cx dx bx sp bp si di). *)

val reg16_of_index : int -> reg16 option
val reg8_index : reg8 -> int
val reg8_of_index : int -> reg8 option
val sreg_index : sreg -> int
val sreg_of_index : int -> sreg option

val reg16_name : reg16 -> string
val reg8_name : reg8 -> string
val sreg_name : sreg -> string
val reg16_of_name : string -> reg16 option
val reg8_of_name : string -> reg8 option
val sreg_of_name : string -> sreg option

val all_reg16 : reg16 list
val all_reg8 : reg8 list
val all_sreg : sreg list

val pp : Format.formatter -> t -> unit
(** Multi-line dump of the whole register file. *)
