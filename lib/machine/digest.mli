(** The repo's one content digest: FNV-1a folded to 63 bits.

    Snapshot state hashing, cluster-wide configuration digests and fuzz
    corpus keying all need the same thing — a fast, dependency-free,
    deterministic fingerprint with a stable printable form — and each
    used to hand-roll it.  This module is the single implementation;
    the regression suite pins its output against the historical inline
    versions byte for byte.

    Not cryptographic.  Collisions are astronomically unlikely for the
    state spaces involved but an adversary could construct one; nothing
    here is used for integrity against an attacker. *)

type t
(** A digest in progress (mutable accumulator). *)

val create : unit -> t
(** Fresh accumulator at the FNV-1a offset basis (63-bit variant
    [0x4bf29ce484222325]). *)

val add_byte : t -> int -> unit
(** Mix one byte (only the low 8 bits of the argument are used). *)

val add_string : t -> string -> unit
(** Mix every byte of the string in order. *)

val add_int24 : t -> int -> unit
(** Mix the low 24 bits of an integer, least-significant byte first —
    the encoding {!Snapshot.digest} uses for register values. *)

val to_hex : t -> string
(** Current value as 16 lowercase hex digits (zero-padded). *)

val string : string -> string
(** [string s] is the one-shot digest of [s] — [create], [add_string],
    [to_hex]. *)
