(* Basic-block threaded-code compiler for SSX16.

   The interpreter pays a per-tick fetch/decode/dispatch price even
   with the decode cache: probe, bounds pair, and one walk of the
   instruction match per executed instruction.  This module discovers
   basic blocks — straight-line instruction runs ending at a control
   transfer, port I/O, iret, a CS write, or a length cap — and compiles
   each into an array of closures with operands pre-resolved (register
   accessors, effective-address components, successor ip constants are
   all baked at compile time).  Executing a block is then an indirect
   call per instruction with no decode, no operand matching and no
   per-instruction event allocation.

   Soundness against self-modifying and corrupted code (§5.2 of the
   paper) rests on one invariant: a block executes only while the code
   bytes it was compiled from are byte-identical to memory.  Two layers
   enforce it cheaply:

   - every memory write (guest stores, [rep movs] sweeps, fault
     injection, image loads — anything behind {!Memory.set_write_hook})
     bumps a generation counter for its 256-byte page via {!note_write};
     a block records the generations of the (at most two) pages its
     span covers and is fresh while they are unchanged;
   - when the generations have moved, the block's recorded code bytes
     are compared against memory directly: untouched blocks (e.g. a
     stack page shared with code) refresh their generations and keep
     running, modified blocks are recompiled from the bytes now in
     memory — exactly the re-decode an uncached interpreter performs.

   Freshness is checked at every block entry, after every
   memory-writing instruction inside a block, and on every tick of the
   single-step path, so a store into the *currently executing* block
   takes effect at the next instruction boundary — the same granularity
   as the per-tick interpreter.  {!clear} (wired to snapshot restore
   and taken reset pins) invalidates every block in O(1) by bumping an
   epoch. *)

open Registers
open Instruction

type op = {
  exec : Cpu.t -> Cpu.event;
  base_event : Cpu.event;  (* prebuilt [Executed]; anything else means a fault *)
  op_ip : Word.t;          (* offset of the opcode byte *)
  writes_mem : bool;       (* may store to memory without ending the block *)
  self_loop : int;
  (* [loop] targeting its own address — the shape of every delay and
     polling loop: the fall-through ip when >= 0, [-1] otherwise.  The
     run loops fuse consecutive executions of such an op (per-tick
     device/pin/step/NMI semantics preserved) instead of re-entering
     the one-instruction block through the cursor every tick. *)
}

(* A superinstruction: two adjacent ops compiled into one closure that
   performs both ticks' architectural work ([tick_time] twice included).
   Only built when the *first* op is from the [can_lead] set — provably
   no fault path, no memory write, falls through — so nothing between
   the two ticks is observable in a device-free run.  [f_base]/
   [f_writes] describe the second op, whose fault/staleness handling
   the caller still performs. *)
type fused = {
  f_exec : Cpu.t -> Cpu.event;
  f_base : Cpu.event;
  f_writes : bool;
}

type block = {
  ops : op array;
  pairs : fused array;  (* [pairs.(i)] covers ops [i, i+1]; [no_fused] gaps *)
  n_ops : int;
  start_pa : int;
  span : int;       (* code bytes covered: [start_pa, start_pa + span) *)
  b_cs : Word.t;
  bytes : string;   (* the code bytes at compile time — ground truth *)
  b_epoch : int;
  page0 : int;
  page1 : int;
  mutable g0 : int; (* page generations last seen matching [bytes] *)
  mutable g1 : int;
  chain_ip : int;   (* target ip of a final unconditional [jmp]; -1 if none *)
  mutable chain : block;
      (* cached successor block for [chain_ip] — purely a probe-skipping
         hint: adoption re-runs the full validity checks (epoch, cs,
         first-op ip, generations), so a stale pointer only costs the
         fallback path it would have taken anyway *)
}

let page_shift = 8
let page_count = Addr.memory_size lsr page_shift
let max_block_bytes = 128 (* spans at most two 256-byte pages *)
let max_block_ops = 32

let no_op =
  { exec = (fun _ -> assert false); base_event = Cpu.Halted_idle;
    op_ip = 0; writes_mem = false; self_loop = -1 }

let no_fused =
  { f_exec = (fun _ -> assert false); f_base = Cpu.Halted_idle;
    f_writes = false }

let rec dummy_block =
  { ops = [||]; pairs = [||]; n_ops = 0; start_pa = 0; span = 0; b_cs = -1;
    bytes = ""; b_epoch = -1; page0 = 0; page1 = 0; g0 = 0; g1 = 0;
    chain_ip = -1; chain = dummy_block }

type t = {
  blocks : block array;  (* indexed by start physical address *)
  gens : int array;      (* per-page write generation *)
  mutable epoch : int;
  mutable version : int; (* bumped on every write and every {!clear} *)
  mutable cur : block;   (* cursor: resume point for straight-line runs *)
  mutable cur_ix : int;
  mutable cur_version : int; (* [version] when [cur] was last validated *)
  mutable built : int;
  mutable retranslations : int; (* rebuilds forced by changed code bytes *)
  mutable chained : int;        (* block entries taken via a chain pointer *)
  mutable block_ticks : int;    (* instructions executed via compiled ops *)
  mutable fused_ticks : int;    (* ticks executed through superinstructions *)
  scratch : Tick_counters.t;    (* sink for counts nobody reads *)
}

let create () =
  { blocks = Array.make Addr.memory_size dummy_block;
    gens = Array.make page_count 0;
    epoch = 0; version = 0; cur = dummy_block; cur_ix = 0; cur_version = -1;
    built = 0; retranslations = 0; chained = 0;
    block_ticks = 0; fused_ticks = 0;
    scratch = Tick_counters.make () }

let built t = t.built
let retranslations t = t.retranslations
let chained t = t.chained
let block_ticks t = t.block_ticks
let fused_ticks t = t.fused_ticks

let note_write t addr =
  let page = addr lsr page_shift in
  Array.unsafe_set t.gens page (Array.unsafe_get t.gens page + 1);
  t.version <- t.version + 1

let clear t =
  t.epoch <- t.epoch + 1;
  t.version <- t.version + 1;
  t.cur <- dummy_block;
  t.cur_ix <- 0;
  t.cur_version <- -1

let[@inline] fresh t b =
  Array.unsafe_get t.gens b.page0 = b.g0
  && Array.unsafe_get t.gens b.page1 = b.g1

(* The block's pages have been written: decide by comparing the actual
   code bytes.  Unchanged bytes (writes elsewhere in the page) refresh
   the recorded generations; changed bytes condemn the block. *)
let revalidate t b mem =
  let same = ref true in
  let i = ref 0 in
  while !same && !i < b.span do
    if Memory.read_byte mem (b.start_pa + !i)
       <> Char.code (String.unsafe_get b.bytes !i)
    then same := false;
    incr i
  done;
  if !same then begin
    b.g0 <- Array.unsafe_get t.gens b.page0;
    b.g1 <- Array.unsafe_get t.gens b.page1;
    true
  end
  else false

(* --- per-instruction compilation ------------------------------------- *)

(* Per-tick time that every non-reset tick pays: the step counter and
   the NMI countdown (§2).  Kept exact per tick — port handlers and
   devices may read [steps] mid-run. *)
let[@inline] tick_time cpu =
  cpu.Cpu.steps <- cpu.Cpu.steps + 1;
  let config = cpu.Cpu.config in
  if config.Cpu.nmi_counter_enabled then begin
    let r = cpu.Cpu.regs in
    if r.nmi_counter > config.Cpu.nmi_counter_max then
      r.nmi_counter <- config.Cpu.nmi_counter_max;
    if r.nmi_counter > 0 then r.nmi_counter <- r.nmi_counter - 1
  end

let getter16 = function
  | AX -> (fun r -> r.ax) | BX -> (fun r -> r.bx)
  | CX -> (fun r -> r.cx) | DX -> (fun r -> r.dx)
  | SI -> (fun r -> r.si) | DI -> (fun r -> r.di)
  | SP -> (fun r -> r.sp) | BP -> (fun r -> r.bp)

let setter16 = function
  | AX -> (fun r v -> r.ax <- v land 0xffff)
  | BX -> (fun r v -> r.bx <- v land 0xffff)
  | CX -> (fun r v -> r.cx <- v land 0xffff)
  | DX -> (fun r v -> r.dx <- v land 0xffff)
  | SI -> (fun r v -> r.si <- v land 0xffff)
  | DI -> (fun r v -> r.di <- v land 0xffff)
  | SP -> (fun r v -> r.sp <- v land 0xffff)
  | BP -> (fun r v -> r.bp <- v land 0xffff)

let sreg_getter = function
  | CS -> (fun r -> r.cs) | DS -> (fun r -> r.ds) | ES -> (fun r -> r.es)
  | SS -> (fun r -> r.ss) | FS -> (fun r -> r.fs) | GS -> (fun r -> r.gs)

(* Effective address with the base/segment selection resolved at
   compile time; the masking chain reproduces {!Cpu.effective_address}
   (double 16-bit masking collapses: both are mod 2^16 of the sum). *)
let ea_fn (m : Instruction.mem) =
  let disp = m.disp in
  let base : Registers.t -> int =
    match m.base with
    | No_base -> (fun _ -> 0)
    | Base_bx -> (fun r -> r.bx)
    | Base_si -> (fun r -> r.si)
    | Base_di -> (fun r -> r.di)
    | Base_bp -> (fun r -> r.bp)
    | Base_bx_si -> (fun r -> r.bx + r.si)
    | Base_bx_di -> (fun r -> r.bx + r.di)
  in
  let seg =
    sreg_getter
      (match m.seg_override with
      | Some s -> s
      | None -> Instruction.default_segment m.base)
  in
  fun r -> Addr.physical ~seg:(seg r) ~off:(Word.mask (base r + disp))

(* Instructions after which the successor address is not the textual
   successor (or not compile-time determined): block enders. *)
let is_terminator = function
  | Jmp _ | Jmp_far _ | Jcc _ | Call _ | Ret | Iret | Int _ | Loop _
  | Rep _ | Hlt | Invalid _ -> true
  (* Port I/O is device-visible: handlers may read machine state or
     raise pins, so architectural state must be spilled and pins
     re-polled right after — end the block. *)
  | In_ _ | Out _ | In_dx _ | Out_dx _ -> true
  (* A CS write invalidates every baked ip→pa mapping downstream. *)
  | Mov_sreg_r16 (CS, _) | Mov_sreg_mem (CS, _) | Pop_sreg CS -> true
  | _ -> false

let writes_memory = function
  | Mov_mem_r16 _ | Mov_mem_imm _ | Mov_mem_r8 _ | Mov_mem_sreg _
  | Alu_mem_r16 _
  | Push_r16 _ | Push_imm _ | Push_sreg _ | Pushf
  | Movs _ | Stos _ -> true
  | _ -> false

(* Compile one decoded instruction into an [op].  The fallback calls
   {!Cpu.dispatch} — the interpreter's own execute stage — so every
   instruction is covered; the explicit cases below additionally
   pre-resolve operands for the forms that dominate guest code.  Each
   closure must reproduce {!Cpu.execute} for its instruction exactly
   (the jit-on/jit-off differential suite pins this). *)
let compile_op instr ~ip0 ~len : op =
  let event = Cpu.Executed instr in
  let ip1 = Word.mask (ip0 + len) in
  let writes_mem = writes_memory instr in
  let mk ?(self_loop = -1) exec =
    { exec; base_event = event; op_ip = ip0; writes_mem; self_loop }
  in
  let generic =
    lazy (mk (fun cpu -> Cpu.dispatch cpu instr ~ip0 ~len event))
  in
  match instr with
  | Nop -> mk (fun cpu -> cpu.Cpu.regs.ip <- ip1; event)
  | Mov_r16_imm (reg, v) ->
    let set = setter16 reg in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1; set r v; event)
  | Mov_r16_r16 (d, s) ->
    let get = getter16 s and set = setter16 d in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1; set r (get r); event)
  | Mov_r16_mem (d, m) ->
    let ea = ea_fn m and set = setter16 d in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        set r (Memory.read_word cpu.Cpu.mem (ea r));
        event)
  | Mov_mem_r16 (m, s) ->
    let ea = ea_fn m and get = getter16 s in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        Memory.write_word cpu.Cpu.mem (ea r) (get r);
        event)
  | Mov_mem_imm (m, v) ->
    let ea = ea_fn m in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        Memory.write_word cpu.Cpu.mem (ea r) v;
        event)
  | Alu_r16_r16 (op, d, s) ->
    let get_d = getter16 d and get_s = getter16 s in
    (match op with
    | Cmp | Test ->
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          ignore (Cpu.alu16 cpu op (get_d r) (get_s r));
          event)
    | _ ->
      let set = setter16 d in
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          set r (Cpu.alu16 cpu op (get_d r) (get_s r));
          event))
  | Alu_r16_imm (op, d, v) ->
    let get = getter16 d in
    (match op with
    | Cmp | Test ->
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          ignore (Cpu.alu16 cpu op (get r) v);
          event)
    | _ ->
      let set = setter16 d in
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          set r (Cpu.alu16 cpu op (get r) v);
          event))
  | Alu_r16_mem (op, d, m) ->
    let get = getter16 d and ea = ea_fn m in
    (match op with
    | Cmp | Test ->
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          ignore (Cpu.alu16 cpu op (get r) (Memory.read_word cpu.Cpu.mem (ea r)));
          event)
    | _ ->
      let set = setter16 d in
      mk (fun cpu ->
          let r = cpu.Cpu.regs in
          r.ip <- ip1;
          set r (Cpu.alu16 cpu op (get r) (Memory.read_word cpu.Cpu.mem (ea r)));
          event))
  | Inc_r16 reg ->
    let get = getter16 reg and set = setter16 reg in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        let p = Word.add_packed (get r) 1 in
        let result = Word.packed_result p in
        set r result;
        let psw = Flags.of_result r.psw result in
        r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p);
        event)
  | Dec_r16 reg ->
    let get = getter16 reg and set = setter16 reg in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        let p = Word.sub_packed (get r) 1 in
        let result = Word.packed_result p in
        set r result;
        let psw = Flags.of_result r.psw result in
        r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p);
        event)
  | Push_r16 reg ->
    let get = getter16 reg in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        Cpu.push cpu (get r);
        event)
  | Pop_r16 reg ->
    let set = setter16 reg in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        set r (Cpu.pop cpu);
        event)
  | Lea (d, m) ->
    (* Address arithmetic without the segment: resolve base at compile
       time like {!ea_fn} but keep the 16-bit offset. *)
    let set = setter16 d in
    let disp = m.disp in
    let base : Registers.t -> int =
      (match m.base with
      | No_base -> (fun _ -> 0)
      | Base_bx -> (fun r -> r.bx)
      | Base_si -> (fun r -> r.si)
      | Base_di -> (fun r -> r.di)
      | Base_bp -> (fun r -> r.bp)
      | Base_bx_si -> (fun r -> r.bx + r.si)
      | Base_bx_di -> (fun r -> r.bx + r.di))
    in
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        set r (base r + disp);
        event)
  | Cli ->
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        r.psw <- Flags.set r.psw Flags.Interrupt false;
        event)
  | Sti ->
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- ip1;
        r.psw <- Flags.set r.psw Flags.Interrupt true;
        event)
  | Jmp target ->
    mk (fun cpu -> cpu.Cpu.regs.ip <- target; event)
  | Jcc (c, target) ->
    mk (fun cpu ->
        let r = cpu.Cpu.regs in
        r.ip <- (if Cpu.cond_holds cpu c then target else ip1);
        event)
  | Loop target ->
    let self_loop = if target = ip0 then ip1 else -1 in
    mk ~self_loop (fun cpu ->
        let r = cpu.Cpu.regs in
        r.cx <- Word.pred r.cx;
        r.ip <- (if r.cx <> 0 then target else ip1);
        event)
  | Call target ->
    mk (fun cpu ->
        Cpu.push cpu ip1;
        cpu.Cpu.regs.ip <- target;
        event)
  | Ret ->
    mk (fun cpu -> cpu.Cpu.regs.ip <- Cpu.pop cpu; event)
  | _ -> Lazy.force generic

(* --- superinstructions ------------------------------------------------ *)

(* Instructions allowed to *lead* a fused pair: exactly the explicitly
   compiled cases of [compile_op] minus memory writers and terminators.
   Their closures always return their base event (no fault path), never
   store, and fall through to the textual successor, so between the two
   ticks of a fused pair the fault check, the staleness check and the
   cursor advance are all statically known to do nothing.  They also
   touch neither the step counter nor the NMI countdown, so the two
   [tick_time] moves commute past the first op and a pair may batch
   them up front. *)
let can_lead = function
  | Nop | Mov_r16_imm _ | Mov_r16_r16 _ | Mov_r16_mem _
  | Alu_r16_r16 _ | Alu_r16_imm _ | Alu_r16_mem _
  | Inc_r16 _ | Dec_r16 _ | Pop_r16 _ | Lea _ | Cli | Sti -> true
  | _ -> false

(* Compile ops [i, i+1] into one superinstruction.  [ip2] is the second
   instruction's fall-through ip.  The specialized cases fuse the pairs
   that dominate the repo's guest code — compare-and-branch loop heads,
   counted loops, and back-to-back register loads — eliding the
   intermediate ip store (unobservable: the first op cannot fault and
   nothing runs between the two ticks); everything else gets the
   generic two-closure form, which still saves the dispatch loop
   iteration.  Each case must reproduce two [Cpu.execute] steps exactly
   (the jit-on/jit-off differential suites pin this). *)
let fuse op1 op2 instr1 instr2 ~ip2 =
  let ev2 = op2.base_event in
  let mk f_exec = { f_exec; f_base = ev2; f_writes = op2.writes_mem } in
  match instr1, instr2 with
  | Mov_r16_imm (a, va), Mov_r16_imm (b, vb) ->
    let set_a = setter16 a and set_b = setter16 b in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        r.ip <- ip2;
        set_a r va;
        set_b r vb;
        ev2)
  | Mov_r16_imm (a, va), Jmp target ->
    let set_a = setter16 a in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        r.ip <- target;
        set_a r va;
        ev2)
  | Alu_r16_imm (Cmp, d, v), Jcc (c, target) ->
    let get = getter16 d in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        ignore (Cpu.alu16 cpu Cmp (get r) v);
        r.ip <- (if Cpu.cond_holds cpu c then target else ip2);
        ev2)
  | Alu_r16_r16 (Cmp, d, s), Jcc (c, target) ->
    let get_d = getter16 d and get_s = getter16 s in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        ignore (Cpu.alu16 cpu Cmp (get_d r) (get_s r));
        r.ip <- (if Cpu.cond_holds cpu c then target else ip2);
        ev2)
  | Alu_r16_mem (Cmp, d, m), Jcc (c, target) ->
    let get = getter16 d and ea = ea_fn m in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        ignore
          (Cpu.alu16 cpu Cmp (get r) (Memory.read_word cpu.Cpu.mem (ea r)));
        r.ip <- (if Cpu.cond_holds cpu c then target else ip2);
        ev2)
  | Dec_r16 d, Jcc (c, target) ->
    let get = getter16 d and set = setter16 d in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        let p = Word.sub_packed (get r) 1 in
        let result = Word.packed_result p in
        set r result;
        let psw = Flags.of_result r.psw result in
        r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p);
        r.ip <- (if Cpu.cond_holds cpu c then target else ip2);
        ev2)
  | Inc_r16 d, Jcc (c, target) ->
    let get = getter16 d and set = setter16 d in
    mk (fun cpu ->
        tick_time cpu;
        tick_time cpu;
        let r = cpu.Cpu.regs in
        let p = Word.add_packed (get r) 1 in
        let result = Word.packed_result p in
        set r result;
        let psw = Flags.of_result r.psw result in
        r.psw <- Flags.set psw Flags.Overflow (Word.packed_overflow p);
        r.ip <- (if Cpu.cond_holds cpu c then target else ip2);
        ev2)
  | _ ->
    let e1 = op1.exec and e2 = op2.exec in
    mk (fun cpu ->
        tick_time cpu;
        ignore (e1 cpu);
        tick_time cpu;
        e2 cpu)

(* --- block discovery -------------------------------------------------- *)

(* Compile the straight-line run starting at the current cs:ip.  Returns
   [None] when even the first instruction's decode window is not linear
   (16-bit or 20-bit wrap) — those positions always take the
   interpreter path, mirroring the decode cache's cacheability rule. *)
let build t cpu =
  let r = cpu.Cpu.regs in
  let mem = cpu.Cpu.mem in
  let cs = r.cs in
  let start_ip = r.ip in
  let fetch pos =
    Memory.read_byte mem (Addr.physical ~seg:cs ~off:(Word.mask pos))
  in
  if start_ip > Cpu.cacheable_ip_limit then None
  else begin
    let start_pa = Addr.physical ~seg:cs ~off:start_ip in
    if start_pa > Cpu.cacheable_pa_limit then None
    else begin
      let ops = ref [] in
      let count = ref 0 in
      let ip = ref start_ip in
      let last_pa = ref start_pa in
      let continue_ = ref true in
      while !continue_ do
        if !count >= max_block_ops || !ip > Cpu.cacheable_ip_limit then
          continue_ := false
        else begin
          let pa = Addr.physical ~seg:cs ~off:!ip in
          (* Keep the whole span linear and within the byte cap; the +1
             leaves room for a rep prefix exceeding [Codec.max_length]. *)
          if
            pa < start_pa
            || pa > Cpu.cacheable_pa_limit
            || pa - start_pa + Codec.max_length + 1 > max_block_bytes
          then continue_ := false
          else begin
            let instr, len = Codec.decode ~fetch ~pos:!ip in
            ops := (compile_op instr ~ip0:!ip ~len, instr, Word.mask (!ip + len)) :: !ops;
            incr count;
            ip := !ip + len;
            last_pa := pa;
            if is_terminator instr then continue_ := false
          end
        end
      done;
      match !ops with
      | [] -> None
      | rev_ops ->
        let annotated = Array.of_list (List.rev rev_ops) in
        let ops = Array.map (fun (op, _, _) -> op) annotated in
        (* Fuse adjacent pairs whose lead op satisfies [can_lead]; the
           last slot stays [no_fused] (no successor), so indexing
           [pairs] at any valid op index is safe. *)
        let nops = Array.length ops in
        let pairs = Array.make nops no_fused in
        for idx = 0 to nops - 2 do
          let op1, instr1, _ = annotated.(idx) in
          let op2, instr2, ip2 = annotated.(idx + 1) in
          if can_lead instr1 then
            pairs.(idx) <- fuse op1 op2 instr1 instr2 ~ip2
        done;
        (* The guarded window must cover every byte the decoder may have
           {e examined}, not just the bytes it consumed: an opcode with
           an invalid operand byte decodes to [Invalid] of length 1
           only after reading past it, so a later write to that operand
           byte must condemn the block.  Over-approximate with a full
           decode window after the last opcode byte (clamped at the end
           of memory; the build guard above kept it within the byte
           cap, hence within two pages). *)
        let window_end =
          min Addr.memory_size (!last_pa + Codec.max_length + 1)
        in
        let span = window_end - start_pa in
        let bytes = Memory.dump mem ~base:start_pa ~len:span in
        let page0 = start_pa lsr page_shift in
        let page1 = (start_pa + span - 1) lsr page_shift in
        (* A final unconditional [jmp] has a compile-time successor:
           record it so the cursor can chain into the next block without
           re-probing the table. *)
        let chain_ip =
          let _, last_instr, _ = annotated.(nops - 1) in
          match last_instr with
          | Jmp target when target <= Cpu.cacheable_ip_limit -> target
          | _ -> -1
        in
        let b =
          { ops; pairs; n_ops = nops; start_pa; span; b_cs = cs; bytes;
            b_epoch = t.epoch; page0; page1;
            g0 = Array.unsafe_get t.gens page0;
            g1 = Array.unsafe_get t.gens page1;
            chain_ip; chain = dummy_block }
        in
        if t.blocks.(start_pa) != dummy_block
           && t.blocks.(start_pa).b_epoch = t.epoch
        then t.retranslations <- t.retranslations + 1;
        t.blocks.(start_pa) <- b;
        t.built <- t.built + 1;
        Some b
    end
  end

(* The op to execute at the current cs:ip, advancing nothing.  Fast
   path: the cursor (the block being run straight through) still
   matches.  Returns [no_op] when the position is uncompilable. *)
let current_op t cpu =
  let r = cpu.Cpu.regs in
  let b = t.cur in
  let ix = t.cur_ix in
  if
    ix < b.n_ops
    && b.b_cs = r.cs
    && (Array.unsafe_get b.ops ix).op_ip = r.ip
    && (t.version = t.cur_version
       || (b.b_epoch = t.epoch
          && (fresh t b || revalidate t b cpu.Cpu.mem)
          && begin
               t.cur_version <- t.version;
               true
             end))
  then Array.unsafe_get b.ops ix
  else if r.ip > Cpu.cacheable_ip_limit then no_op
  else begin
    (* The cursor block just ran off its end through an unconditional
       [jmp] whose target matches the new ip: try its cached successor
       before the table probe.  Adoption re-runs every validity check
       the probe would (epoch, cs, leading ip, byte generations), so a
       stale pointer — target bytes rewritten, epoch bumped — merely
       falls through to the probe/build path it was caching. *)
    let chain_from =
      if ix >= b.n_ops && b.b_cs = r.cs && b.chain_ip = r.ip then b
      else dummy_block
    in
    let c = chain_from.chain in
    if
      chain_from != dummy_block
      && c.n_ops > 0 && c.b_epoch = t.epoch && c.b_cs = r.cs
      && (Array.unsafe_get c.ops 0).op_ip = r.ip
      && (fresh t c || revalidate t c cpu.Cpu.mem)
    then begin
      t.cur <- c;
      t.cur_ix <- 0;
      t.cur_version <- t.version;
      t.chained <- t.chained + 1;
      Array.unsafe_get c.ops 0
    end
    else begin
      let pa = Addr.physical ~seg:r.cs ~off:r.ip in
      if pa > Cpu.cacheable_pa_limit then no_op
      else begin
        let b = Array.unsafe_get t.blocks pa in
        if
          b.b_epoch = t.epoch && b.b_cs = r.cs
          && (fresh t b || revalidate t b cpu.Cpu.mem)
        then begin
          if chain_from != dummy_block then chain_from.chain <- b;
          t.cur <- b;
          t.cur_ix <- 0;
          t.cur_version <- t.version;
          Array.unsafe_get b.ops 0
        end
        else
          match build t cpu with
          | Some b ->
            if chain_from != dummy_block then chain_from.chain <- b;
            t.cur <- b;
            t.cur_ix <- 0;
            t.cur_version <- t.version;
            Array.unsafe_get b.ops 0
          | None -> no_op
      end
    end
  end

(* --- stepping --------------------------------------------------------- *)

(* One architectural clock tick.  This mirrors {!Cpu.step} exactly
   (the jit-on/jit-off differential suite pins the two together); the
   only difference is that the execute stage goes through the block
   table, and a taken reset pin also clears it. *)
let step_cpu t cpu =
  cpu.Cpu.steps <- cpu.Cpu.steps + 1;
  if cpu.Cpu.reset_pin then begin
    Cpu.reset cpu;
    clear t;
    Cpu.Did_reset
  end
  else begin
    let r = cpu.Cpu.regs in
    let config = cpu.Cpu.config in
    if config.Cpu.nmi_counter_enabled then begin
      if r.nmi_counter > config.Cpu.nmi_counter_max then
        r.nmi_counter <- config.Cpu.nmi_counter_max;
      if r.nmi_counter > 0 then r.nmi_counter <- r.nmi_counter - 1
    end;
    if cpu.Cpu.nmi_pin && Cpu.nmi_acceptable cpu then begin
      cpu.Cpu.nmi_pin <- false;
      Cpu.service cpu Cpu.vec_nmi ~nmi:true ~return_ip:r.ip;
      Cpu.Took_interrupt { vector = Cpu.vec_nmi; nmi = true }
    end
    else
      match cpu.Cpu.intr with
      | Some vector when Flags.get r.psw Flags.Interrupt ->
        cpu.Cpu.intr <- None;
        Cpu.service cpu vector ~nmi:false ~return_ip:r.ip;
        Cpu.Took_interrupt { vector; nmi = false }
      | Some _ | None ->
        if cpu.Cpu.halted then Cpu.Halted_idle
        else begin
          let op = current_op t cpu in
          if op == no_op then Cpu.exec_one cpu
          else begin
            t.cur_ix <- t.cur_ix + 1;
            t.block_ticks <- t.block_ticks + 1;
            op.exec cpu
          end
        end
  end

(* Straight-line run with no devices: pins cannot change while a block
   executes (no hooks, no devices; port I/O and [hlt] end blocks), so
   they are polled at block boundaries only, and a halted CPU with no
   pending wake-up is idle for the whole remaining budget. *)
let run_quiet0 t cpu ~(c : Tick_counters.t) ~budget =
  let i = ref 0 in
  while !i < budget do
    if cpu.Cpu.reset_pin || cpu.Cpu.nmi_pin || cpu.Cpu.intr != None then begin
      Tick_counters.note c (step_cpu t cpu);
      incr i
    end
    else if cpu.Cpu.halted then begin
      let n = budget - !i in
      cpu.Cpu.steps <- cpu.Cpu.steps + n;
      (let config = cpu.Cpu.config in
       if config.Cpu.nmi_counter_enabled then begin
         let r = cpu.Cpu.regs in
         let c0 = min r.nmi_counter config.Cpu.nmi_counter_max in
         r.nmi_counter <- (if c0 > n then c0 - n else 0)
       end);
      c.Tick_counters.ticks <- c.Tick_counters.ticks + n;
      c.Tick_counters.idle <- c.Tick_counters.idle + n;
      i := budget
    end
    else begin
      let op = current_op t cpu in
      if op == no_op then begin
        Tick_counters.note c (step_cpu t cpu);
        incr i
      end
      else if op.self_loop >= 0 then begin
        (* Fused self-targeting [loop]: with no devices and no hooks,
           pins cannot change and the code byte pair cannot be rewritten
           mid-burst, so the whole burst batches — per-tick step counts
           and the NMI countdown collapse to closed forms (the countdown
           only clamps once, then decrements). *)
        let r = cpu.Cpu.regs in
        let rem = budget - !i in
        let cx0 = r.cx in
        let iters = if cx0 = 0 then 0x10000 else cx0 in
        let k = if iters <= rem then iters else rem in
        cpu.Cpu.steps <- cpu.Cpu.steps + k;
        (let config = cpu.Cpu.config in
         if config.Cpu.nmi_counter_enabled then begin
           let c0 = min r.nmi_counter config.Cpu.nmi_counter_max in
           r.nmi_counter <- (if c0 > k then c0 - k else 0)
         end);
        r.cx <- (cx0 - k) land 0xffff;
        if iters <= rem then begin
          r.ip <- op.self_loop;
          t.cur_ix <- t.cur_ix + 1
        end;
        t.block_ticks <- t.block_ticks + k;
        i := !i + k;
        c.Tick_counters.ticks <- c.Tick_counters.ticks + k;
        c.Tick_counters.executed <- c.Tick_counters.executed + k
      end
      else begin
        let b = t.cur in
        let ops = b.ops in
        let pairs = b.pairs in
        let n = b.n_ops in
        let fuel = ref (budget - !i) in
        let ix = ref t.cur_ix in
        let k = ref 0 in
        let faults = ref 0 in
        let stop = ref false in
        while (not !stop) && !ix < n && !fuel > 0 do
          let pair = Array.unsafe_get pairs !ix in
          if pair != no_fused && !fuel >= 2 then begin
            (* Superinstruction: two ticks in one call.  The lead op
               cannot fault or write memory ([can_lead]), so the only
               checks needed are the trailing op's — same tests as two
               trips around this loop, minus one iteration. *)
            let ev = pair.f_exec cpu in
            t.fused_ticks <- t.fused_ticks + 2;
            k := !k + 2;
            ix := !ix + 2;
            fuel := !fuel - 2;
            if ev != pair.f_base then begin
              incr faults;
              stop := true
            end
            else if pair.f_writes && not (fresh t b) then stop := true
          end
          else begin
            let op = Array.unsafe_get ops !ix in
            tick_time cpu;
            let ev = op.exec cpu in
            incr k;
            incr ix;
            decr fuel;
            if ev != op.base_event then begin
              incr faults;
              stop := true
            end
            else if op.writes_mem && not (fresh t b) then stop := true
          end
        done;
        t.cur_ix <- !ix;
        t.block_ticks <- t.block_ticks + !k;
        i := !i + !k;
        c.Tick_counters.ticks <- c.Tick_counters.ticks + !k;
        c.Tick_counters.executed <- c.Tick_counters.executed + !k - !faults;
        c.Tick_counters.exceptions <- c.Tick_counters.exceptions + !faults
      end
    end
  done

(* One device: the shape of every single-machine system in the repo
   (the watchdog).  The device runs every tick and may raise pins, so
   pins are re-polled per tick; the block cursor still removes the
   fetch/decode/dispatch work.  A device that declares a quiescence
   window ({!Device.quiescent}) additionally lets the fused self-loop
   below batch that many ticks in closed form. *)
let run_quiet_dev t cpu ~(dev : Device.t) ~(c : Tick_counters.t) ~budget =
  let tick_dev = dev.Device.tick in
  let quiescent = dev.Device.quiescent in
  let advance = dev.Device.advance in
  let i = ref 0 in
  while !i < budget do
    tick_dev cpu;
    if
      cpu.Cpu.reset_pin || cpu.Cpu.nmi_pin || cpu.Cpu.intr != None
      || cpu.Cpu.halted
    then begin
      Tick_counters.note c (step_cpu t cpu);
      incr i
    end
    else begin
      (* Inlined cursor fast path of {!current_op}: the common tick
         resumes the current block with no write (and no clear) since
         it was last validated, so one int compare replaces the
         generation checks. *)
      let r = cpu.Cpu.regs in
      let b = t.cur in
      let ix = t.cur_ix in
      if
        t.version = t.cur_version
        && ix < b.n_ops
        && b.b_cs = r.cs
        && (Array.unsafe_get b.ops ix).op_ip = r.ip
      then begin
        let op = Array.unsafe_get b.ops ix in
        if op.self_loop >= 0 then begin
          (* Fused self-targeting [loop].  Per-tick semantics are kept
             intact — the device runs first every tick and may raise
             pins or write memory (visible as a [t.version] move, at
             which point the architectural machine would refetch the
             loop's own bytes) — but the cursor re-match, closure
             dispatch and counter read-modify-writes are hoisted out of
             the burst. *)
          let config = cpu.Cpu.config in
          let nmi_en = config.Cpu.nmi_counter_enabled in
          let nmi_max = config.Cpu.nmi_counter_max in
          let v0 = t.version in
          let k = ref 1 in
          let looping = ref true in
          let pending = ref false in
          (* First tick: the device ran and pins were clear above. *)
          cpu.Cpu.steps <- cpu.Cpu.steps + 1;
          if nmi_en then begin
            if r.nmi_counter > nmi_max then r.nmi_counter <- nmi_max;
            if r.nmi_counter > 0 then r.nmi_counter <- r.nmi_counter - 1
          end;
          r.cx <- (r.cx - 1) land 0xffff;
          if r.cx = 0 then looping := false;
          while !looping && !i + !k < budget do
            let win = quiescent () in
            if win > 0 then begin
              (* The device promises [win] silent ticks: apply as many
                 of them as the budget and the loop count allow in one
                 closed-form move.  [r.cx] is exactly the number of
                 iterations left before fall-through, so [n >= 1] and
                 no batched tick can cross the loop exit, a pin, or a
                 memory write. *)
              let rem = budget - !i - !k in
              let n = if win < rem then win else rem in
              let n = if n < r.cx then n else r.cx in
              advance n;
              cpu.Cpu.steps <- cpu.Cpu.steps + n;
              if nmi_en then begin
                let c0 =
                  if r.nmi_counter > nmi_max then nmi_max else r.nmi_counter
                in
                if c0 > 0 then
                  r.nmi_counter <- (if c0 > n then c0 - n else 0)
                else r.nmi_counter <- c0
              end;
              r.cx <- r.cx - n;
              k := !k + n;
              if r.cx = 0 then looping := false
            end
            else begin
              tick_dev cpu;
              if
                cpu.Cpu.reset_pin || cpu.Cpu.nmi_pin || cpu.Cpu.intr != None
                || cpu.Cpu.halted
                || t.version <> v0
              then begin
                looping := false;
                pending := true
              end
              else begin
                cpu.Cpu.steps <- cpu.Cpu.steps + 1;
                if nmi_en then begin
                  if r.nmi_counter > nmi_max then r.nmi_counter <- nmi_max;
                  if r.nmi_counter > 0 then r.nmi_counter <- r.nmi_counter - 1
                end;
                r.cx <- (r.cx - 1) land 0xffff;
                incr k;
                if r.cx = 0 then looping := false
              end
            end
          done;
          if r.cx = 0 then begin
            (* Exhausted: fall through to the textual successor. *)
            r.ip <- op.self_loop;
            t.cur_ix <- ix + 1
          end;
          t.block_ticks <- t.block_ticks + !k;
          c.Tick_counters.ticks <- c.Tick_counters.ticks + !k;
          c.Tick_counters.executed <- c.Tick_counters.executed + !k;
          i := !i + !k;
          if !pending then begin
            (* The device already ran for this tick; complete it through
               the stepper (which revalidates and services pins). *)
            Tick_counters.note c (step_cpu t cpu);
            incr i
          end
        end
        else if
          Array.unsafe_get b.pairs ix != no_fused && !i + 1 < budget
        then begin
          (* Fused pair on the device path: the device must still run
             between the two ticks, so [f_exec] (which batches both
             ticks) is unusable here.  Instead the lead op executes —
             it cannot fault or write memory ([can_lead]) — the device
             ticks, and if nothing was raised the trailing op completes
             without re-running the cursor match.  If the device did
             raise a pin or write memory ([t.version] moved), the
             second tick completes through the stepper, exactly like
             the self-loop burst's pending tick. *)
          t.cur_ix <- ix + 1;
          t.block_ticks <- t.block_ticks + 1;
          tick_time cpu;
          ignore (op.exec cpu);
          c.Tick_counters.ticks <- c.Tick_counters.ticks + 1;
          c.Tick_counters.executed <- c.Tick_counters.executed + 1;
          incr i;
          tick_dev cpu;
          if
            cpu.Cpu.reset_pin || cpu.Cpu.nmi_pin || cpu.Cpu.intr != None
            || cpu.Cpu.halted
            || t.version <> t.cur_version
          then begin
            Tick_counters.note c (step_cpu t cpu);
            incr i
          end
          else begin
            let op2 = Array.unsafe_get b.ops (ix + 1) in
            t.cur_ix <- ix + 2;
            t.block_ticks <- t.block_ticks + 1;
            t.fused_ticks <- t.fused_ticks + 2;
            tick_time cpu;
            let ev2 = op2.exec cpu in
            c.Tick_counters.ticks <- c.Tick_counters.ticks + 1;
            if ev2 == op2.base_event then
              c.Tick_counters.executed <- c.Tick_counters.executed + 1
            else
              c.Tick_counters.exceptions <- c.Tick_counters.exceptions + 1;
            incr i
          end
        end
        else begin
          t.cur_ix <- ix + 1;
          t.block_ticks <- t.block_ticks + 1;
          tick_time cpu;
          let ev = op.exec cpu in
          c.Tick_counters.ticks <- c.Tick_counters.ticks + 1;
          if ev == op.base_event then
            c.Tick_counters.executed <- c.Tick_counters.executed + 1
          else
            c.Tick_counters.exceptions <- c.Tick_counters.exceptions + 1;
          incr i
        end
      end
      else begin
        let op = current_op t cpu in
        if op == no_op then Tick_counters.note c (step_cpu t cpu)
        else begin
          t.cur_ix <- t.cur_ix + 1;
          t.block_ticks <- t.block_ticks + 1;
          tick_time cpu;
          let ev = op.exec cpu in
          c.Tick_counters.ticks <- c.Tick_counters.ticks + 1;
          if ev == op.base_event then
            c.Tick_counters.executed <- c.Tick_counters.executed + 1
          else
            c.Tick_counters.exceptions <- c.Tick_counters.exceptions + 1
        end;
        incr i
      end
    end
  done

let run_quiet_devs t cpu ~(devices : Device.t array) ~(c : Tick_counters.t)
    ~budget =
  let ticks = Array.map (fun d -> d.Device.tick) devices in
  let ndev = Array.length ticks in
  let i = ref 0 in
  while !i < budget do
    for d = 0 to ndev - 1 do
      (Array.unsafe_get ticks d) cpu
    done;
    if
      cpu.Cpu.reset_pin || cpu.Cpu.nmi_pin || cpu.Cpu.intr != None
      || cpu.Cpu.halted
    then Tick_counters.note c (step_cpu t cpu)
    else begin
      let op = current_op t cpu in
      if op == no_op then Tick_counters.note c (step_cpu t cpu)
      else begin
        t.cur_ix <- t.cur_ix + 1;
        t.block_ticks <- t.block_ticks + 1;
        tick_time cpu;
        let ev = op.exec cpu in
        c.Tick_counters.ticks <- c.Tick_counters.ticks + 1;
        if ev == op.base_event then
          c.Tick_counters.executed <- c.Tick_counters.executed + 1
        else
          c.Tick_counters.exceptions <- c.Tick_counters.exceptions + 1
      end
    end;
    incr i
  done

let run_quiet t cpu ~(devices : Device.t array) ~counters ~budget =
  let c =
    match counters with
    | Some _ -> Tick_counters.make ()
    | None ->
      (* Nobody reads the accumulator: reuse the machine-local sink to
         avoid per-call allocation (fields just grow, harmlessly). *)
      t.scratch
  in
  (match Array.length devices with
  | 0 -> run_quiet0 t cpu ~c ~budget
  | 1 -> run_quiet_dev t cpu ~dev:(Array.unsafe_get devices 0) ~c ~budget
  | _ -> run_quiet_devs t cpu ~devices ~c ~budget);
  match counters with
  | Some tc ->
    Tick_counters.add tc c;
    Tick_counters.flush tc
  | None -> ()
