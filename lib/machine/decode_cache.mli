(** Write-invalidated decoded-instruction cache.

    Re-decoding variable-length instructions from raw memory bytes on
    every clock tick dominates simulation time.  This cache memoises
    [(instruction, length)] keyed by the {e physical} address of the
    opcode byte, and is invalidated by every memory write (via
    {!Memory.set_write_hook}), whatever its source: guest stores,
    [rep movs] sweeps, ROM reinstalls through {!Memory.blit},
    {!Memory.load_image}, snapshot restores and fault-injector
    corruption.

    Faithfulness to the paper's fault model (§5.2) is the design
    constraint: a corrupted code byte must make the simulated processor
    re-decode — and therefore possibly {e mis-decode} — exactly the
    bytes now in memory, never a stale cached decode.  Because each
    write kills every cached entry whose span could cover the written
    byte, a cached execution is observationally identical to an
    uncached one (asserted by the differential trace tests).

    Entries are only created for instruction windows that are linear in
    physical memory (no 16-bit offset wrap, no 20-bit address wrap);
    the fetch path falls back to plain decoding otherwise.

    Each entry additionally carries a caller-chosen payload ['a] — the
    CPU stores a prebuilt [Executed] event there so that a hit
    allocates nothing on the step fast path. *)

type 'a t

val create : empty_payload:'a -> 'a t
(** An empty cache covering all of physical memory; [empty_payload]
    fills the (never-read) payload slots of empty entries. *)

val cached_len : 'a t -> int -> int
(** Encoded length of the entry at a physical address, or [0] when the
    slot is empty.  [addr] must already be masked to memory size. *)

val cached_instr : 'a t -> int -> Instruction.t
(** The cached instruction; only meaningful when [cached_len] is
    non-zero for the same address. *)

val cached_payload : 'a t -> int -> 'a
(** The payload stored with the entry; same validity rule. *)

val store : 'a t -> int -> Instruction.t -> int -> 'a -> unit
(** [store t addr instr len payload] fills the slot at [addr]. *)

val invalidate : 'a t -> int -> unit
(** [invalidate t addr] empties every slot whose decoded span could
    include the byte at [addr] (the preceding [Codec.max_length - 1]
    addresses and [addr] itself). *)

val clear : 'a t -> unit
(** Empty the whole cache. *)

val record_hit : 'a t -> unit
val record_miss : 'a t -> unit

val hits : 'a t -> int
val misses : 'a t -> int
val invalidations : 'a t -> int
(** Counters for benchmarks and tests.  [misses] counts every fill and
    [invalidations] every invalidating write.  [hits] is only recorded
    by the out-of-line {!Cpu.fetch_decode} probe — the step fast path
    deliberately skips the counter, so total hits over a run are
    executed-instruction count minus [misses]. *)
