(** Per-machine event counters, batched toward the observability layer.

    A machine with observability attached counts step events in these
    plain mutable fields instead of firing a per-tick hook; the
    block-compiled run loops bump them once per straight-line block.
    {!flush} (called once per [Machine.run] / [Machine.tick]) hands the
    accumulated values to the sink registered with {!set_flush} —
    {!Machine_obs} moves them into the shared atomic registry and
    zeroes the fields.  See DESIGN.md §4f/§4g for the cost argument. *)

type t = {
  mutable ticks : int;
  mutable executed : int;
  mutable interrupts : int;
  mutable nmis : int;
  mutable exceptions : int;
  mutable idle : int;
  mutable resets : int;
  mutable flush_fn : t -> unit;
}

val make : unit -> t
(** All-zero counters with a no-op flush sink. *)

val note : t -> Cpu.event -> unit
(** Count one step event. *)

val add : t -> t -> unit
(** [add t c] merges the counts of [c] into [t] (the run loops
    accumulate into a local record and merge once per call). *)

val set_flush : t -> (t -> unit) -> unit
(** Register the sink invoked by {!flush}.  The sink owns zeroing the
    fields after publishing them. *)

val flush : t -> unit
