(* Shared test plumbing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let case name f = Alcotest.test_case name `Quick f

(* Build a bare machine with a program assembled at [seg]:0 and the CPU
   pointed at it.  No ROM, no devices: pure ISA semantics. *)
let machine_with ?(seg = 0x1000) ?(symbols = []) ?decode_cache ?jit source =
  let machine = Ssx.Machine.create ?decode_cache ?jit () in
  let image = Ssx_asm.Assemble.assemble ~origin:0 ~symbols source in
  Ssx.Memory.load_image (Ssx.Machine.memory machine) ~base:(seg lsl 4)
    image.Ssx_asm.Assemble.bytes;
  let regs = (Ssx.Machine.cpu machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- seg;
  regs.Ssx.Registers.ip <- 0;
  regs.Ssx.Registers.ss <- seg;
  regs.Ssx.Registers.sp <- 0xFFFE;
  (machine, image)

let run_steps machine n = Ssx.Machine.run machine ~ticks:n

let regs machine = (Ssx.Machine.cpu machine).Ssx.Cpu.regs

(* Run until the CPU halts (the conventional end of a test program). *)
let run_to_halt ?(limit = 100_000) machine =
  match
    Ssx.Machine.run_until machine ~limit (fun m ->
        (Ssx.Machine.cpu m).Ssx.Cpu.halted)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "program did not halt"

let exec ?seg ?symbols source =
  let machine, _ = machine_with ?seg ?symbols source in
  run_to_halt machine;
  machine

let flag machine f = Ssx.Flags.get (regs machine).Ssx.Registers.psw f
