let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* ------------------------------ trace ------------------------------ *)

let test_trace_records () =
  let machine, _ = Helpers.machine_with "mov ax, 1\nmov bx, 2\nhlt\n" in
  let trace = Ssx.Trace.attach machine in
  Helpers.run_to_halt machine;
  let entries = Ssx.Trace.entries trace in
  check_bool "three entries" true (List.length entries >= 3);
  match entries with
  | first :: _ ->
    check_bool "first is the first mov" true
      (first.Ssx.Trace.event = Ssx.Cpu.Executed (Ssx.Instruction.Mov_r16_imm (Ssx.Registers.AX, 1)))
  | [] -> Alcotest.fail "no entries"

let test_trace_ring_buffer () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let trace = Ssx.Trace.attach ~capacity:8 machine in
  Helpers.run_steps machine 100;
  check_int "bounded" 8 (List.length (Ssx.Trace.entries trace));
  (* The retained entries are the most recent ones. *)
  (match List.rev (Ssx.Trace.entries trace) with
  | newest :: _ -> check_int "newest tick" 100 newest.Ssx.Trace.tick
  | [] -> Alcotest.fail "empty");
  Ssx.Trace.clear trace;
  check_int "cleared" 0 (List.length (Ssx.Trace.entries trace))

let test_trace_pause_resume () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let trace = Ssx.Trace.attach machine in
  Helpers.run_steps machine 5;
  Ssx.Trace.pause trace;
  Helpers.run_steps machine 5;
  check_int "paused" 5 (List.length (Ssx.Trace.entries trace));
  Ssx.Trace.resume trace;
  Helpers.run_steps machine 5;
  check_int "resumed" 10 (List.length (Ssx.Trace.entries trace))

let test_trace_dump () =
  let machine, _ = Helpers.machine_with "mov ax, 1\nhlt\n" in
  let trace = Ssx.Trace.attach machine in
  Helpers.run_to_halt machine;
  let rendered = Format.asprintf "%a" Ssx.Trace.dump trace in
  check_bool "mentions mov" true (Astring_contains.contains rendered "mov ax")

(* ----------------------------- snapshot ---------------------------- *)

let test_snapshot_roundtrip () =
  let machine, _ = Helpers.machine_with "mov ax, 7\nmov [0x100], ax\nspin:\njmp spin\n" in
  Helpers.run_steps machine 5;
  let snapshot = Ssx.Snapshot.capture machine in
  Helpers.run_steps machine 50;
  Ssx.Memory.write_word (Ssx.Machine.memory machine) 0x100 0x999;
  (Helpers.regs machine).Ssx.Registers.ax <- 0x42;
  Ssx.Snapshot.restore snapshot machine;
  check_int "ax restored" 7 (Helpers.regs machine).Ssx.Registers.ax;
  (* ds is zero in the helper machine, so the guest's store landed at
     physical 0x100. *)
  check_int "memory restored" 7
    (Ssx.Memory.read_word (Ssx.Machine.memory machine) 0x100);
  check_bool "snapshot equal after restore" true
    (Ssx.Snapshot.equal snapshot (Ssx.Snapshot.capture machine))

let test_snapshot_digest_determinism () =
  (* Two machines running the same program reach the same digest. *)
  let run () =
    let machine, _ = Helpers.machine_with "mov ax, 3\nmov [0x20], ax\nhlt\n" in
    Helpers.run_to_halt machine;
    Ssx.Snapshot.digest (Ssx.Snapshot.capture machine)
  in
  Helpers.check_string "digests equal" (run ()) (run ())

let test_snapshot_digest_sensitivity () =
  let machine, _ = Helpers.machine_with "hlt\n" in
  Helpers.run_to_halt machine;
  let a = Ssx.Snapshot.capture machine in
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x77777 1;
  let b = Ssx.Snapshot.capture machine in
  check_bool "digests differ" true (Ssx.Snapshot.digest a <> Ssx.Snapshot.digest b)

let test_snapshot_diff () =
  let machine, _ = Helpers.machine_with "hlt\n" in
  Helpers.run_to_halt machine;
  let a = Ssx.Snapshot.capture machine in
  (Helpers.regs machine).Ssx.Registers.bx <- 0x1234;
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x5000 1;
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x5001 2;
  Ssx.Memory.write_byte (Ssx.Machine.memory machine) 0x5003 3;
  let b = Ssx.Snapshot.capture machine in
  let diffs = Ssx.Snapshot.diff a b in
  let registers, ranges =
    List.partition (function Ssx.Snapshot.Register _ -> true | _ -> false) diffs
  in
  check_int "one register differs" 1 (List.length registers);
  check_int "two coalesced memory ranges" 2 (List.length ranges);
  (match ranges with
  | [ Ssx.Snapshot.Memory_range { first; last };
      Ssx.Snapshot.Memory_range { first = first2; last = _ } ] ->
    check_int "range start" 0x5000 first;
    check_int "range end" 0x5001 last;
    check_int "second range" 0x5003 first2
  | _ -> Alcotest.fail "unexpected ranges");
  check_bool "equal snapshots diff empty" true (Ssx.Snapshot.diff a a = [])

let test_determinism_of_whole_systems () =
  (* The same seed must produce byte-identical final states — the
     reproducibility claim of the experiments. *)
  let run () =
    let system = Ssos.Reinstall.build () in
    let rng = Ssx_faults.Rng.create 77L in
    Ssos.System.run system ~ticks:20_000;
    ignore
      (Ssx_faults.Injector.inject_now
         (Ssos.System.fault_system system)
         ~rng ~space:Ssos.System.default_fault_space 20);
    Ssos.System.run system ~ticks:80_000;
    Ssx.Snapshot.digest (Ssx.Snapshot.capture system.Ssos.System.machine)
  in
  Helpers.check_string "identical digests" (run ()) (run ())

let suite =
  [ case "trace records events" test_trace_records;
    case "trace is a ring buffer" test_trace_ring_buffer;
    case "trace pause and resume" test_trace_pause_resume;
    case "trace dump" test_trace_dump;
    case "snapshot capture/restore roundtrip" test_snapshot_roundtrip;
    case "snapshot digests are deterministic" test_snapshot_digest_determinism;
    case "snapshot digests are sensitive" test_snapshot_digest_sensitivity;
    case "snapshot diff" test_snapshot_diff;
    case "whole-system determinism" test_determinism_of_whole_systems ]
