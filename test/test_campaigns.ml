(* Differential tests for the parallel snapshot-reset campaign engine:
   the same campaign must produce bit-identical summaries whatever the
   worker count and whether trials rebuild or snapshot-reset.  This is
   the license for [Runner]'s defaults (parallel, snapshot-reset). *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* ------------------------------------------------------------- pool *)

(* [~oversubscribe:true] below forces the requested number of domains
   even when the host has fewer cores, so the genuinely concurrent
   code path is exercised on any machine. *)

let test_pool_run_in_order () =
  let expected = Array.init 23 (fun i -> i * i) in
  check_bool "jobs:1" true
    (Pool.run ~jobs:1 23 (fun i -> i * i) = expected);
  check_bool "jobs:4" true
    (Pool.run ~oversubscribe:true ~jobs:4 23 (fun i -> i * i)
    = expected);
  check_bool "more jobs than tasks" true
    (Pool.run ~oversubscribe:true ~jobs:64 23 (fun i -> i * i)
    = expected);
  check_int "zero tasks" 0
    (Array.length (Pool.run ~jobs:4 0 (fun i -> i)))

let test_pool_run_with_shares_state () =
  let inits = Atomic.make 0 in
  let results =
    Pool.run_with ~oversubscribe:true ~jobs:3
      ~init:(fun () ->
        ignore (Atomic.fetch_and_add inits 1);
        Atomic.get inits)
      12
      (fun _state i -> 2 * i)
  in
  check_bool "results in order" true (results = Array.init 12 (fun i -> 2 * i));
  (* Lazy per-worker state: at most one init per worker, at least one
     overall. *)
  let inits = Atomic.get inits in
  check_bool "init bounded by jobs" true (inits >= 1 && inits <= 3)

exception Boom of int

let test_pool_propagates_exception () =
  match
    Pool.run ~oversubscribe:true ~jobs:4 16 (fun i ->
        if i = 11 then raise (Boom i) else i)
  with
  | _ -> Alcotest.fail "expected the task's exception"
  | exception Boom 11 -> ()
  | exception Boom _ ->
    (* Only index 11 raises, so only [Boom 11] can surface. *)
    Alcotest.fail "wrong task's exception"

(* --------------------------------------------- campaign differential *)

let check_summary_equal label (a : Ssos_experiments.Runner.summary) b =
  check_int (label ^ ": trials") a.Ssos_experiments.Runner.trials
    b.Ssos_experiments.Runner.trials;
  check_int (label ^ ": recoveries") a.Ssos_experiments.Runner.recoveries
    b.Ssos_experiments.Runner.recoveries;
  check_bool (label ^ ": identical summary") true (a = b)

(* Trimmed T1: the section-3 reinstall design under the full default
   fault space (RAM + registers + control + watchdog). *)
let heartbeat_summary ~strategy ~jobs =
  Ssos_experiments.Runner.heartbeat_campaign
    ~build:(fun () -> Ssos.Reinstall.build ())
    ~space:Ssos.System.default_fault_space
    ~spec:(Ssos.Reinstall.weak_spec ())
    ~burst:10 ~warmup:10_000 ~horizon:120_000 ~strategy ~oversubscribe:true
    ~jobs ~trials:6 ~seed:42L ()

let test_heartbeat_campaign_differential () =
  let reference =
    heartbeat_summary ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:1
  in
  check_int "reference ran all trials" 6
    reference.Ssos_experiments.Runner.trials;
  check_summary_equal "rebuild jobs:4" reference
    (heartbeat_summary ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:4);
  check_summary_equal "snapshot-reset jobs:1" reference
    (heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1);
  check_summary_equal "snapshot-reset jobs:4" reference
    (heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4);
  (* And the default-strategy entry point reproduces the same numbers. *)
  check_summary_equal "defaults" reference
    (Ssos_experiments.Runner.heartbeat_campaign
       ~build:(fun () -> Ssos.Reinstall.build ())
       ~space:Ssos.System.default_fault_space
       ~spec:(Ssos.Reinstall.weak_spec ())
       ~burst:10 ~warmup:10_000 ~horizon:120_000 ~jobs:2 ~trials:6 ~seed:42L ())

(* Trimmed T6/T7: the section-5.2 scheduler under targeted corruption
   of the instruction bytes themselves (ROM-adjacent code faults) — the
   space that exercises [Memory.restore_image]'s ROM-skipping path and
   the per-process code-refresh machinery. *)
let sched_summary ~strategy ~jobs =
  let code_space =
    { Ssx_faults.Fault.ram_regions =
        List.init 4 (fun i -> (Ssos.Layout.proc_segment i lsl 4, 48));
      registers = false;
      control_state = false;
      halt_faults = false;
      idtr_faults = false;
      watchdog_state = false }
  in
  Ssos_experiments.Runner.sched_campaign
    ~build:(fun () -> Ssos.Sched.build ())
    ~space:code_space ~burst:8 ~warmup:30_000 ~horizon:200_000
    ~max_gap:100_000 ~window:120_000 ~strategy ~oversubscribe:true ~jobs
    ~trials:4 ~seed:9L ()

let test_sched_campaign_differential () =
  let reference =
    sched_summary ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:1
  in
  check_int "reference ran all trials" 4 reference.Ssos_experiments.Runner.trials;
  check_summary_equal "rebuild jobs:4" reference
    (sched_summary ~strategy:Ssos_experiments.Runner.Rebuild ~jobs:4);
  check_summary_equal "snapshot-reset jobs:1" reference
    (sched_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1);
  check_summary_equal "snapshot-reset jobs:4" reference
    (sched_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4)

let test_snapshot_reset_trials_are_independent () =
  (* Reordering must not matter: a snapshot-reset worker that runs
     trials back-to-back on one machine reports the same outcome for
     trial [i] as a fresh machine running only trial [i]. *)
  let build () = Ssos.Reinstall.build () in
  let space = Ssos.System.default_fault_space in
  let spec = Ssos.Reinstall.weak_spec () in
  let lone =
    Ssos_experiments.Runner.heartbeat_trial ~build ~space ~spec ~burst:10
      ~warmup:10_000 ~horizon:120_000
      ~seed:(Ssos_experiments.Runner.trial_seed 42L 5)
  in
  let in_sequence =
    heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1
  in
  let with_only_five =
    Ssos_experiments.Runner.heartbeat_campaign
      ~build ~space ~spec ~burst:10 ~warmup:10_000 ~horizon:120_000
      ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1 ~trials:5
      ~seed:42L ()
  in
  (* Dropping the last trial from the 6-trial campaign must reproduce
     the 5-trial campaign plus trial 5's lone outcome. *)
  check_int "prefix trials" 5 with_only_five.Ssos_experiments.Runner.trials;
  let expected_recoveries =
    with_only_five.Ssos_experiments.Runner.recoveries
    + if lone.Ssos_experiments.Runner.recovered then 1 else 0
  in
  check_int "recoveries compose" expected_recoveries
    in_sequence.Ssos_experiments.Runner.recoveries

let test_campaign_obs_invariance () =
  (* Metrics publish after the summary is computed and never touch the
     trial RNGs, so a campaign is bit-identical with instrumentation on
     or off — and, with it on, across worker counts. *)
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled false;
  let off = heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1 in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let on1 =
        heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:1
      in
      check_summary_equal "obs on, jobs:1" off on1;
      let on4 =
        heartbeat_summary ~strategy:Ssos_experiments.Runner.Snapshot_reset ~jobs:4
      in
      check_summary_equal "obs on, jobs:4" off on4;
      (* The run left the promised per-layer metrics behind. *)
      let rows = (Obs.snapshot ()).Obs.rows in
      let has name = List.exists (fun (r : Obs.row) -> r.Obs.name = name) rows in
      let has_prefix p =
        List.exists
          (fun (r : Obs.row) -> String.starts_with ~prefix:p r.Obs.name)
          rows
      in
      check_bool "campaign trial counter" true (has "campaign{id=heartbeat}.trials");
      check_bool "recovery histogram" true (has "campaign{id=heartbeat}.recovery-ticks");
      check_bool "fault counters" true (has "fault.injected");
      check_bool "per-kind fault counters" true (has_prefix "fault.injected{kind=");
      check_bool "pool worker throughput" true (has_prefix "pool.worker{id=");
      check_bool "machine counters" true (has "machine.ticks"))

(* ------------------------------------------ sharded stepper invariance *)

(* The within-trial sharded cluster stepper must be invisible at the
   campaign level: same summary for any shard count, composed with any
   worker count and strategy.  Latency 4 so the conservative horizon
   actually engages (latency < 2 falls back to sequential stepping),
   lossy links so the replayed per-link RNG schedules are exercised. *)
let ring_summary ~jobs ~shards =
  let build () =
    Ssos_net.Net_ring.build ~n:6 ~latency:4
      ~faults:(fun ~src:_ ~dst:_ ->
        Ssos_net.Link.lossy ~drop:0.1 ~max_delay:2 ())
      ~seed:77L ()
  in
  let perturb rng ring =
    for i = 0 to ring.Ssos_net.Net_ring.n - 1 do
      Ssos_net.Net_ring.corrupt_state ring i (Ssx_faults.Rng.int rng 0x10000);
      Ssos_net.Net_ring.corrupt_view ring i (Ssx_faults.Rng.int rng 0x10000)
    done
  in
  Ssos_experiments.Runner.ring_campaign ~build ~perturb ~horizon:8_000
    ~window:600 ~oversubscribe:true ~jobs ~shards ~trials:3 ~seed:5L ()

let test_ring_campaign_shards_differential () =
  let reference = ring_summary ~jobs:1 ~shards:1 in
  check_int "reference ran all trials" 3
    reference.Ssos_experiments.Runner.trials;
  check_bool "reference recovered at least once" true
    (reference.Ssos_experiments.Runner.recoveries > 0);
  check_summary_equal "shards:2" reference (ring_summary ~jobs:1 ~shards:2);
  check_summary_equal "shards:4" reference (ring_summary ~jobs:1 ~shards:4);
  check_summary_equal "jobs:2 shards:3" reference
    (ring_summary ~jobs:2 ~shards:3)

let test_tables_shards_invariant () =
  (* The published T14/T15 tables are bit-identical for any --shards,
     exactly as their doc comments promise. *)
  let t14 shards =
    Ssos_experiments.Experiments.t14_ring_link_faults ~trials:1 ~shards ()
  in
  let t15 shards =
    Ssos_experiments.Experiments.t15_ring_combined_faults ~trials:1 ~shards ()
  in
  check_bool "T14 shards:1 = shards:4" true (t14 1 = t14 4);
  check_bool "T15 shards:1 = shards:4" true (t15 1 = t15 4)

(* ------------------------------------------------ rsm campaign *)

(* The replicated-service campaign adds a serve phase (client traffic
   plus a linearizability verdict) after the judged recovery; its
   summary must stay bit-identical across worker and shard counts just
   like the plain ring campaign.  Latency 3 so the sharded stepper's
   conservative horizon engages; lossy links so the per-link RNG replay
   is exercised; the perturbation corrupts every replica's counter,
   view, store and received-frame tags. *)
let rsm_summary_run ~jobs ~shards =
  let build () =
    Ssos_rsm.Service.build ~n:5 ~obs:false ~latency:3
      ~faults:(fun ~src:_ ~dst:_ ->
        Ssos_net.Link.lossy ~drop:0.1 ~max_delay:1 ())
      ~seed:31L ()
  in
  let perturb rng (service : Ssos_rsm.Service.t) =
    for i = 0 to service.Ssos_rsm.Service.n - 1 do
      Ssos_rsm.Service.corrupt_state service i (Ssx_faults.Rng.int rng 0x10000);
      Ssos_rsm.Service.corrupt_view service i (Ssx_faults.Rng.int rng 0x10000);
      for k = 0 to Ssos_rsm.Wire.keys - 1 do
        Ssos_rsm.Service.corrupt_kv service i k (Ssx_faults.Rng.int rng 0x10000);
        Ssos_rsm.Service.corrupt_tag service i k (Ssx_faults.Rng.int rng 0x10000)
      done
    done
  in
  Ssos_experiments.Runner.rsm_campaign ~build ~perturb ~oversubscribe:true
    ~jobs ~shards ~trials:2 ~seed:13L ()

let test_rsm_campaign_differential () =
  let reference = rsm_summary_run ~jobs:1 ~shards:1 in
  check_int "reference ran all trials" 2
    reference.Ssos_experiments.Runner.core.Ssos_experiments.Runner.trials;
  check_bool "reference linearized at least one trial" true
    (reference.Ssos_experiments.Runner.linearized > 0);
  check_bool "jobs:4" true (rsm_summary_run ~jobs:4 ~shards:1 = reference);
  check_bool "shards:4" true (rsm_summary_run ~jobs:1 ~shards:4 = reference);
  check_bool "jobs:4 shards:4" true
    (rsm_summary_run ~jobs:4 ~shards:4 = reference)

let test_rsm_tables_shards_invariant () =
  (* The published T16/T17 tables are bit-identical for any --shards,
     exactly as their doc comments promise. *)
  let t16 shards =
    Ssos_experiments.Experiments.t16_rsm_link_faults ~trials:1 ~shards ()
  in
  let t17 shards =
    Ssos_experiments.Experiments.t17_rsm_combined_faults ~trials:1 ~shards ()
  in
  check_bool "T16 shards:1 = shards:4" true (t16 1 = t16 4);
  check_bool "T17 shards:1 = shards:4" true (t17 1 = t17 4)

let suite =
  [ case "pool returns results in task order" test_pool_run_in_order;
    case "pool shares per-worker state" test_pool_run_with_shares_state;
    case "pool propagates task exceptions" test_pool_propagates_exception;
    case "heartbeat campaign: jobs/strategy differential"
      test_heartbeat_campaign_differential;
    case "sched campaign with code faults: jobs/strategy differential"
      test_sched_campaign_differential;
    case "snapshot-reset trials are independent"
      test_snapshot_reset_trials_are_independent;
    case "campaign is bit-identical with metrics on or off"
      test_campaign_obs_invariance;
    case "ring campaign: shards/jobs differential"
      test_ring_campaign_shards_differential;
    case "T14/T15 tables are shard-invariant" test_tables_shards_invariant;
    case "rsm campaign: jobs/shards differential" test_rsm_campaign_differential;
    case "T16/T17 tables are shard-invariant" test_rsm_tables_shards_invariant ]
