let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let system () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  { Ssx_faults.Fault.machine; watchdog = None }

let test_rng_deterministic () =
  let a = Ssx_faults.Rng.create 42L and b = Ssx_faults.Rng.create 42L in
  for _ = 1 to 100 do
    check_bool "same stream" true
      (Ssx_faults.Rng.next_int64 a = Ssx_faults.Rng.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Ssx_faults.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Ssx_faults.Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Ssx_faults.Rng.float rng in
    check_bool "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let rng = Ssx_faults.Rng.create 1L in
  let child = Ssx_faults.Rng.split rng in
  check_bool "different streams" true
    (Ssx_faults.Rng.next_int64 rng <> Ssx_faults.Rng.next_int64 child)

let test_rng_copy () =
  let rng = Ssx_faults.Rng.create 5L in
  ignore (Ssx_faults.Rng.next_int64 rng);
  let snapshot = Ssx_faults.Rng.copy rng in
  check_bool "copy continues identically" true
    (Ssx_faults.Rng.next_int64 rng = Ssx_faults.Rng.next_int64 snapshot)

let test_ram_bit_flip () =
  let sys = system () in
  let mem = Ssx.Machine.memory sys.Ssx_faults.Fault.machine in
  Ssx.Memory.write_byte mem 0x5000 0b1010;
  check_bool "applied" true
    (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Ram_bit_flip { addr = 0x5000; bit = 1 }));
  check_int "bit flipped" 0b1000 (Ssx.Memory.read_byte mem 0x5000)

let test_rom_refused () =
  let sys = system () in
  let mem = Ssx.Machine.memory sys.Ssx_faults.Fault.machine in
  Ssx.Memory.protect mem { Ssx.Memory.base = 0x7000; size = 0x100 };
  check_bool "refused" false
    (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Ram_bit_flip { addr = 0x7000; bit = 0 }));
  check_bool "byte refused too" false
    (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Ram_byte { addr = 0x7050; value = 1 }))

let test_register_faults () =
  let sys = system () in
  let regs = (Ssx.Machine.cpu sys.Ssx_faults.Fault.machine).Ssx.Cpu.regs in
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Reg16 (Ssx.Registers.BX, 0xDEAD)));
  check_int "bx" 0xDEAD regs.Ssx.Registers.bx;
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Sreg (Ssx.Registers.SS, 0x1234)));
  check_int "ss" 0x1234 regs.Ssx.Registers.ss;
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Ip 0x4321));
  check_int "ip" 0x4321 regs.Ssx.Registers.ip;
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Psw 0xFFFF));
  check_int "psw" 0xFFFF regs.Ssx.Registers.psw

let test_control_faults () =
  let sys = system () in
  let cpu = Ssx.Machine.cpu sys.Ssx_faults.Fault.machine in
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Idtr 0x12345));
  check_int "idtr" 0x12345 cpu.Ssx.Cpu.idtr;
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Nmi_latch true));
  check_bool "latch" true cpu.Ssx.Cpu.in_nmi;
  ignore (Ssx_faults.Fault.apply sys Ssx_faults.Fault.Spurious_halt);
  check_bool "halted" true cpu.Ssx.Cpu.halted;
  ignore (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Nmi_counter 99));
  check_int "counter" 99 cpu.Ssx.Cpu.regs.Ssx.Registers.nmi_counter

let test_watchdog_fault_needs_device () =
  let sys = system () in
  check_bool "no watchdog -> refused" false
    (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Watchdog_counter 5));
  let wd = Ssx_devices.Watchdog.create ~period:10 ~target:Ssx_devices.Watchdog.Nmi_pin in
  let sys = { sys with Ssx_faults.Fault.watchdog = Some wd } in
  check_bool "applied" true
    (Ssx_faults.Fault.apply sys (Ssx_faults.Fault.Watchdog_counter 5));
  check_int "counter set" 5 (Ssx_devices.Watchdog.counter wd)

let space_without sel =
  let base = Ssx_faults.Fault.default_space in
  sel { base with Ssx_faults.Fault.ram_regions = [ (0x1000, 0x100) ] }

let test_space_filters () =
  let rng = Ssx_faults.Rng.create 11L in
  (* idtr disabled: no Idtr faults in 2000 draws. *)
  let space =
    space_without (fun s -> { s with Ssx_faults.Fault.idtr_faults = false })
  in
  for _ = 1 to 2000 do
    match Ssx_faults.Fault.random rng space with
    | Ssx_faults.Fault.Idtr _ -> Alcotest.fail "idtr fault drawn"
    | _ -> ()
  done;
  let space =
    space_without (fun s -> { s with Ssx_faults.Fault.halt_faults = false })
  in
  for _ = 1 to 2000 do
    match Ssx_faults.Fault.random rng space with
    | Ssx_faults.Fault.Spurious_halt -> Alcotest.fail "halt fault drawn"
    | _ -> ()
  done

let test_ram_faults_respect_regions () =
  let rng = Ssx_faults.Rng.create 13L in
  let space =
    { Ssx_faults.Fault.ram_regions = [ (0x2000, 0x10); (0x8000, 0x10) ];
      registers = false;
      control_state = false;
      halt_faults = false;
      idtr_faults = false;
      watchdog_state = false }
  in
  for _ = 1 to 1000 do
    match Ssx_faults.Fault.random rng space with
    | Ssx_faults.Fault.Ram_bit_flip { addr; _ } | Ssx_faults.Fault.Ram_byte { addr; _ } ->
      check_bool "in region" true
        ((addr >= 0x2000 && addr < 0x2010) || (addr >= 0x8000 && addr < 0x8010))
    | fault ->
      Alcotest.failf "unexpected fault %s" (Ssx_faults.Fault.to_string fault)
  done

let test_injector_burst () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let sys = { Ssx_faults.Fault.machine; watchdog = None } in
  let rng = Ssx_faults.Rng.create 3L in
  let space =
    { Ssx_faults.Fault.default_space with
      Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ] }
  in
  let injector =
    Ssx_faults.Injector.attach sys ~rng ~space
      ~schedule:(Ssx_faults.Injector.Burst { at = 10; count = 5 })
  in
  Helpers.run_steps machine 20;
  check_bool "about five faults at tick 10" true
    (Ssx_faults.Injector.injected_count injector >= 3);
  List.iter
    (fun (tick, _) -> check_int "all at tick 10" 10 tick)
    (Ssx_faults.Injector.injected injector)

let test_injector_every () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let sys = { Ssx_faults.Fault.machine; watchdog = None } in
  let rng = Ssx_faults.Rng.create 3L in
  let space =
    { Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ];
      registers = false; control_state = false; halt_faults = false;
      idtr_faults = false; watchdog_state = false }
  in
  let injector =
    Ssx_faults.Injector.attach sys ~rng ~space
      ~schedule:(Ssx_faults.Injector.Every { period = 10; start_tick = 10; stop_tick = 50 })
  in
  Helpers.run_steps machine 100;
  check_int "five injections" 5 (Ssx_faults.Injector.injected_count injector)

let test_injector_disarm () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let sys = { Ssx_faults.Fault.machine; watchdog = None } in
  let rng = Ssx_faults.Rng.create 3L in
  let space =
    { Ssx_faults.Fault.default_space with
      Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ] }
  in
  let injector =
    Ssx_faults.Injector.attach sys ~rng ~space
      ~schedule:(Ssx_faults.Injector.Every { period = 1; start_tick = 0; stop_tick = max_int })
  in
  Helpers.run_steps machine 10;
  Ssx_faults.Injector.disarm injector;
  let before = Ssx_faults.Injector.injected_count injector in
  Helpers.run_steps machine 10;
  check_int "no faults after disarm" before (Ssx_faults.Injector.injected_count injector)

let test_injector_at () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let sys = { Ssx_faults.Fault.machine; watchdog = None } in
  let rng = Ssx_faults.Rng.create 19L in
  let space =
    { Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ];
      registers = false; control_state = false; halt_faults = false;
      idtr_faults = false; watchdog_state = false }
  in
  let injector =
    Ssx_faults.Injector.attach sys ~rng ~space
      ~schedule:(Ssx_faults.Injector.At [ 3; 7; 7; 15 ])
  in
  Helpers.run_steps machine 20;
  check_int "one fault per listed tick (7 twice)" 4
    (Ssx_faults.Injector.injected_count injector);
  let ticks = List.map fst (Ssx_faults.Injector.injected injector) in
  Alcotest.(check (list int)) "at the listed ticks" [ 3; 7; 7; 15 ] ticks

let test_injector_poisson_window_and_determinism () =
  let run () =
    let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
    let sys = { Ssx_faults.Fault.machine; watchdog = None } in
    let rng = Ssx_faults.Rng.create 23L in
    let space =
      { Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ];
        registers = false; control_state = false; halt_faults = false;
        idtr_faults = false; watchdog_state = false }
    in
    let injector =
      Ssx_faults.Injector.attach sys ~rng ~space
        ~schedule:
          (Ssx_faults.Injector.Poisson
             { rate = 0.05; start_tick = 100; stop_tick = 900 })
    in
    Helpers.run_steps machine 1_000;
    Ssx_faults.Injector.injected injector
  in
  let a = run () and b = run () in
  check_bool "some faults fired" true (List.length a > 10);
  List.iter
    (fun (tick, _) -> check_bool "inside the window" true (tick >= 100 && tick <= 900))
    a;
  check_int "same seed, same schedule" (List.length a) (List.length b);
  Alcotest.(check (list int)) "tick-for-tick deterministic"
    (List.map fst a) (List.map fst b)

let test_nothing_schedule () =
  let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
  let sys = { Ssx_faults.Fault.machine; watchdog = None } in
  let rng = Ssx_faults.Rng.create 1L in
  let injector =
    Ssx_faults.Injector.attach sys ~rng ~space:Ssx_faults.Fault.default_space
      ~schedule:Ssx_faults.Injector.Nothing
  in
  Helpers.run_steps machine 100;
  check_int "never fires" 0 (Ssx_faults.Injector.injected_count injector)

let test_fault_pretty_printing () =
  List.iter
    (fun (fault, fragment) ->
      check_bool
        (Printf.sprintf "renders %s" fragment)
        true
        (Astring_contains.contains (Ssx_faults.Fault.to_string fault) fragment))
    [ (Ssx_faults.Fault.Ram_bit_flip { addr = 0x1234; bit = 3 }, "ram-bit-flip");
      (Ssx_faults.Fault.Ram_byte { addr = 0x1234; value = 0xFF }, "ram-byte");
      (Ssx_faults.Fault.Reg16 (Ssx.Registers.AX, 1), "reg ax");
      (Ssx_faults.Fault.Sreg (Ssx.Registers.SS, 1), "sreg ss");
      (Ssx_faults.Fault.Ip 0x10, "ip <-");
      (Ssx_faults.Fault.Psw 0x10, "psw <-");
      (Ssx_faults.Fault.Nmi_counter 9, "nmi-counter");
      (Ssx_faults.Fault.Nmi_latch true, "nmi-latch");
      (Ssx_faults.Fault.Idtr 0x10, "idtr");
      (Ssx_faults.Fault.Spurious_halt, "halt");
      (Ssx_faults.Fault.Watchdog_counter 7, "watchdog-counter") ]

let test_inject_now () =
  let sys = system () in
  let rng = Ssx_faults.Rng.create 17L in
  let space =
    { Ssx_faults.Fault.default_space with
      Ssx_faults.Fault.ram_regions = [ (0x2000, 0x100) ] }
  in
  let faults = Ssx_faults.Injector.inject_now sys ~rng ~space 7 in
  check_int "exactly seven applied" 7 (List.length faults)

let prop_random_faults_apply =
  QCheck.Test.make ~count:200 ~name:"random faults always apply outside ROM"
    (QCheck.int_bound 1_000_000)
    (fun seed ->
      let machine, _ = Helpers.machine_with "spin:\n    jmp spin\n" in
      let wd = Ssx_devices.Watchdog.create ~period:10 ~target:Ssx_devices.Watchdog.Nmi_pin in
      let sys = { Ssx_faults.Fault.machine; watchdog = Some wd } in
      let rng = Ssx_faults.Rng.create (Int64.of_int seed) in
      let space =
        { Ssx_faults.Fault.default_space with
          Ssx_faults.Fault.ram_regions = [ (0x1000, 0x1000) ] }
      in
      Ssx_faults.Fault.apply sys (Ssx_faults.Fault.random rng space))

let suite =
  [ case "rng is deterministic" test_rng_deterministic;
    case "rng bounds" test_rng_bounds;
    case "rng split independence" test_rng_split_independent;
    case "rng copy" test_rng_copy;
    case "ram bit flip" test_ram_bit_flip;
    case "ROM faults are refused" test_rom_refused;
    case "register faults" test_register_faults;
    case "control-state faults" test_control_faults;
    case "watchdog fault needs the device" test_watchdog_fault_needs_device;
    case "space filters exclude classes" test_space_filters;
    case "ram faults stay in their regions" test_ram_faults_respect_regions;
    case "burst schedule" test_injector_burst;
    case "every schedule" test_injector_every;
    case "disarm" test_injector_disarm;
    case "at schedule" test_injector_at;
    case "poisson schedule: window and determinism"
      test_injector_poisson_window_and_determinism;
    case "nothing schedule" test_nothing_schedule;
    case "fault pretty-printing" test_fault_pretty_printing;
    case "inject_now applies exactly n" test_inject_now ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_random_faults_apply ]
