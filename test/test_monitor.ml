let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let samples monitor =
  Ssx_devices.Heartbeat.samples monitor.Ssos.Monitor.system.Ssos.System.heartbeat

let end_tick monitor =
  Ssx.Machine.ticks monitor.Ssos.Monitor.system.Ssos.System.machine

let strictly_legal monitor =
  Ssx_stab.Convergence.converged
    (Ssx_stab.Convergence.judge ~spec:(Ssos.Monitor.spec ())
       ~samples:(samples monitor) ~end_tick:(end_tick monitor))

let test_clean_run_strongly_legal () =
  let monitor = Ssos.Monitor.build () in
  Ssos.System.run monitor.Ssos.Monitor.system ~ticks:200_000;
  check_bool "no violations across watchdog pulses" true (strictly_legal monitor);
  check_int "no detections on a clean run" 0
    (List.length (Ssos.Monitor.detections monitor));
  check_bool "checks did run" true (monitor.Ssos.Monitor.checks > 0)

let test_index_repair () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Ssx.Memory.write_word mem Ssos.Guest.task_index_addr 0x4444;
  Ssos.System.run system ~ticks:200_000;
  check_bool "detected" true
    (List.exists
       (fun d -> List.mem "task-index-in-range" d.Ssos.Monitor.violated)
       (Ssos.Monitor.detections monitor));
  check_bool "index back in range" true
    (Ssx.Memory.read_word mem Ssos.Guest.task_index_addr < 4);
  check_bool "behaviour legal again" true (strictly_legal monitor)

let test_table_repair () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Ssx.Memory.write_word mem Ssos.Guest.task_table_addr 0x0042;
  Ssos.System.run system ~ticks:200_000;
  check_bool "detected" true
    (List.exists
       (fun d -> List.mem "task-table-golden" d.Ssos.Monitor.violated)
       (Ssos.Monitor.detections monitor));
  check_int "golden value restored" 1
    (Ssx.Memory.read_word mem Ssos.Guest.task_table_addr)

let test_divisor_zero_graduated_repair () =
  (* #DE -> exception path -> predicate repairs the divisor -> retry
     succeeds with no full restart. *)
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Ssx.Memory.write_word mem (Ssos.Guest.task_table_addr + 2) 0;
  let counter_before = Ssx.Memory.read_word mem Ssos.Guest.counter_addr in
  Ssos.System.run system ~ticks:50_000;
  check_bool "repaired" true
    (Ssx.Memory.read_word mem (Ssos.Guest.task_table_addr + 2)
    = Ssos.Guest.task_divisor);
  (* The counter kept growing from where it was: no reinstall of data. *)
  let counter_after = Ssx.Memory.read_word mem Ssos.Guest.counter_addr in
  check_bool "counter survived (graduated repair, not restart)" true
    (counter_after > counter_before)

let test_code_refresh () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  (* Corrupt an early code byte; the next NMI (or exception) refreshes. *)
  Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + 1) 0xEE;
  Ssos.System.run system ~ticks:120_000;
  check_bool "code matches the golden image again" true
    (Ssx_devices.Nvstore.verify system.Ssos.System.nvstore mem "os"
    ||
    (* data half may differ; compare only the code portion *)
    (let golden = Ssos.Guest.image_bytes system.Ssos.System.guest in
     Ssx.Memory.dump mem
       ~base:(Ssos.Layout.os_segment lsl 4)
       ~len:Ssos.Layout.os_data_offset
     = String.sub golden 0 Ssos.Layout.os_data_offset));
  check_bool "legal again" true (strictly_legal monitor)

let test_wild_frame_restarts () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let regs = (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- 0x4242;
  regs.Ssx.Registers.ip <- 0x1234;
  Ssos.System.run system ~ticks:200_000;
  check_bool "guest runs again" true
    (match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
    | Some s -> end_tick monitor - s.Ssx_devices.Heartbeat.tick < 10_000
    | None -> false)

let test_exception_escalation_without_predicates () =
  (* With predicates disabled nothing repairs a zero divisor; the
     repeat-exception latch must escalate to the full reinstall, which
     restores the golden data. *)
  let monitor = Ssos.Monitor.build ~predicates_enabled:false () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  Ssx.Memory.write_word mem (Ssos.Guest.task_table_addr + 2) 0;
  Ssos.System.run system ~ticks:200_000;
  check_int "golden divisor restored by reinstall" Ssos.Guest.task_divisor
    (Ssx.Memory.read_word mem (Ssos.Guest.task_table_addr + 2));
  check_bool "beating again" true
    (match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
    | Some s -> end_tick monitor - s.Ssx_devices.Heartbeat.tick < 10_000
    | None -> false)

let test_stack_repair () =
  let monitor = Ssos.Monitor.build () in
  let system = monitor.Ssos.Monitor.system in
  Ssos.System.run system ~ticks:30_000;
  let regs = (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.sp <- 0x0010;
  Ssos.System.run system ~ticks:200_000;
  check_bool "detected" true
    (List.exists
       (fun d -> List.mem "stack-registers-sane" d.Ssos.Monitor.violated)
       (Ssos.Monitor.detections monitor));
  check_bool "sp back in range" true (regs.Ssx.Registers.sp >= 0xFF00)

let test_guest_predicates_structure () =
  let predicates = Ssos.Monitor.guest_predicates ~tasks:4 in
  check_int "three predicates" 3 (List.length predicates);
  List.iter
    (fun p ->
      check_bool "repairable" true (p.Ssx_stab.Predicate.repair <> None))
    predicates

let suite =
  [ case "clean runs are strongly legal" test_clean_run_strongly_legal;
    case "index predicate detects and repairs" test_index_repair;
    case "table predicate restores golden entries" test_table_repair;
    case "divisor zero: graduated repair without restart"
      test_divisor_zero_graduated_repair;
    case "code refresh repairs corrupted code" test_code_refresh;
    case "wild frames are restarted" test_wild_frame_restarts;
    case "repeat exceptions escalate to reinstall"
      test_exception_escalation_without_predicates;
    case "stack predicate repairs sp" test_stack_repair;
    case "guest predicates structure" test_guest_predicates_structure ]
