let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let test_read_write () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.write_byte mem 0x1234 0xAB;
  check_int "byte" 0xAB (Ssx.Memory.read_byte mem 0x1234);
  check_int "fresh memory is zero" 0 (Ssx.Memory.read_byte mem 0x4321)

let test_word_endianness () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.write_word mem 0x100 0x1234;
  check_int "little-endian low" 0x34 (Ssx.Memory.read_byte mem 0x100);
  check_int "little-endian high" 0x12 (Ssx.Memory.read_byte mem 0x101);
  check_int "word read" 0x1234 (Ssx.Memory.read_word mem 0x100)

let test_address_wrap () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.write_byte mem Ssx.Addr.memory_size 0x77;
  check_int "wraps at 1 MiB" 0x77 (Ssx.Memory.read_byte mem 0);
  Ssx.Memory.write_word mem (Ssx.Addr.memory_size - 1) 0xBEEF;
  check_int "word wraps" 0xEF (Ssx.Memory.read_byte mem (Ssx.Addr.memory_size - 1));
  check_int "word wraps high byte" 0xBE (Ssx.Memory.read_byte mem 0)

let test_rom_protection () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.write_byte mem 0x5000 0x11;
  Ssx.Memory.protect mem { Ssx.Memory.base = 0x5000; size = 0x100 };
  Ssx.Memory.write_byte mem 0x5000 0x99;
  check_int "write to ROM ignored" 0x11 (Ssx.Memory.read_byte mem 0x5000);
  Ssx.Memory.write_byte mem 0x50FF 0x99;
  check_int "last ROM byte protected" 0 (Ssx.Memory.read_byte mem 0x50FF);
  Ssx.Memory.write_byte mem 0x5100 0x99;
  check_int "byte after ROM writable" 0x99 (Ssx.Memory.read_byte mem 0x5100);
  check_bool "is_protected inside" true (Ssx.Memory.is_protected mem 0x5080);
  check_bool "is_protected outside" false (Ssx.Memory.is_protected mem 0x5100)

let test_force_write () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.protect mem { Ssx.Memory.base = 0; size = 0x10 };
  Ssx.Memory.force_write_byte mem 0 0x42;
  check_int "force write bypasses ROM" 0x42 (Ssx.Memory.read_byte mem 0)

let test_load_dump () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.load_image mem ~base:0x2000 "hello";
  Helpers.check_string "roundtrip" "hello" (Ssx.Memory.dump mem ~base:0x2000 ~len:5);
  check_int "bytes placed" (Char.code 'h') (Ssx.Memory.read_byte mem 0x2000)

let test_load_into_rom () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.protect mem { Ssx.Memory.base = 0x3000; size = 0x10 };
  Ssx.Memory.load_image mem ~base:0x3000 "xyz";
  Helpers.check_string "load_image bypasses protection (boot-time install)" "xyz"
    (Ssx.Memory.dump mem ~base:0x3000 ~len:3)

let test_blit () =
  let mem = Ssx.Memory.create () in
  Ssx.Memory.load_image mem ~base:0x1000 "abcdef";
  Ssx.Memory.blit mem ~src:0x1000 ~dst:0x2000 ~len:6;
  Helpers.check_string "copied" "abcdef" (Ssx.Memory.dump mem ~base:0x2000 ~len:6);
  (* blit honours ROM protection on the destination *)
  Ssx.Memory.protect mem { Ssx.Memory.base = 0x4000; size = 3 };
  Ssx.Memory.blit mem ~src:0x1000 ~dst:0x4000 ~len:6;
  Helpers.check_string "first three protected" "\000\000\000def"
    (Ssx.Memory.dump mem ~base:0x4000 ~len:6)

let test_regions () =
  let mem = Ssx.Memory.create () in
  check_int "no regions initially" 0 (List.length (Ssx.Memory.protected_regions mem));
  Ssx.Memory.protect mem { Ssx.Memory.base = 0; size = 1 };
  Ssx.Memory.protect mem { Ssx.Memory.base = 2; size = 1 };
  check_int "two regions" 2 (List.length (Ssx.Memory.protected_regions mem))

let prop_byte_roundtrip =
  QCheck.Test.make ~name:"byte write/read roundtrip"
    (QCheck.pair (QCheck.int_bound 0xFFFFF) (QCheck.int_bound 0xFF))
    (fun (addr, v) ->
      let mem = Ssx.Memory.create () in
      Ssx.Memory.write_byte mem addr v;
      Ssx.Memory.read_byte mem addr = v)

let prop_word_roundtrip =
  QCheck.Test.make ~name:"word write/read roundtrip"
    (QCheck.pair (QCheck.int_bound 0xFFFFF) (QCheck.int_bound 0xFFFF))
    (fun (addr, v) ->
      let mem = Ssx.Memory.create () in
      Ssx.Memory.write_word mem addr v;
      Ssx.Memory.read_word mem addr = v)

let suite =
  [ case "read and write bytes" test_read_write;
    case "words are little-endian" test_word_endianness;
    case "addresses wrap at 1 MiB" test_address_wrap;
    case "ROM write protection" test_rom_protection;
    case "force write" test_force_write;
    case "load and dump images" test_load_dump;
    case "load_image bypasses protection" test_load_into_rom;
    case "blit" test_blit;
    case "protected regions" test_regions ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_byte_roundtrip; prop_word_roundtrip ]
