let case = Helpers.case
let check_bool = Helpers.check_bool
let check_int = Helpers.check_int

let all_flags =
  [ Ssx.Flags.Carry; Ssx.Flags.Parity; Ssx.Flags.Zero; Ssx.Flags.Sign;
    Ssx.Flags.Interrupt; Ssx.Flags.Direction; Ssx.Flags.Overflow ]

let test_set_get () =
  List.iter
    (fun f ->
      let psw = Ssx.Flags.set Ssx.Flags.initial f true in
      check_bool "set" true (Ssx.Flags.get psw f);
      let psw = Ssx.Flags.set psw f false in
      check_bool "cleared" false (Ssx.Flags.get psw f))
    all_flags

let test_independence () =
  (* Setting one flag must not disturb the others. *)
  List.iter
    (fun f ->
      let psw = Ssx.Flags.set 0 f true in
      List.iter
        (fun other ->
          if other <> f then
            check_bool "independent" false (Ssx.Flags.get psw other))
        all_flags)
    all_flags

let test_initial () =
  check_bool "interrupts disabled at power-on" false
    (Ssx.Flags.get Ssx.Flags.initial Ssx.Flags.Interrupt);
  check_int "initial is zero" 0 Ssx.Flags.initial

let test_of_result () =
  let psw = Ssx.Flags.of_result 0 0 in
  check_bool "zero" true (Ssx.Flags.get psw Ssx.Flags.Zero);
  check_bool "not signed" false (Ssx.Flags.get psw Ssx.Flags.Sign);
  let psw = Ssx.Flags.of_result 0 0x8000 in
  check_bool "sign" true (Ssx.Flags.get psw Ssx.Flags.Sign);
  check_bool "not zero" false (Ssx.Flags.get psw Ssx.Flags.Zero);
  (* Carry is untouched by of_result. *)
  let with_carry = Ssx.Flags.set 0 Ssx.Flags.Carry true in
  let psw = Ssx.Flags.of_result with_carry 7 in
  check_bool "carry preserved" true (Ssx.Flags.get psw Ssx.Flags.Carry)

let test_of_result8 () =
  let psw = Ssx.Flags.of_result8 0 0x80 in
  check_bool "8-bit sign" true (Ssx.Flags.get psw Ssx.Flags.Sign);
  let psw = Ssx.Flags.of_result8 0 0x100 in
  check_bool "masked to byte: zero" true (Ssx.Flags.get psw Ssx.Flags.Zero)

let test_word_identity () =
  (* The psw is a plain word: corruption can set any bit pattern. *)
  let psw = 0xFFFF in
  List.iter (fun f -> check_bool "all set" true (Ssx.Flags.get psw f)) all_flags

let test_pp () =
  let psw = Ssx.Flags.set (Ssx.Flags.set 0 Ssx.Flags.Carry true) Ssx.Flags.Zero true in
  Helpers.check_string "symbolic" "[CF ZF]" (Format.asprintf "%a" Ssx.Flags.pp psw)

let suite =
  [ case "set and get" test_set_get;
    case "flag independence" test_independence;
    case "initial state" test_initial;
    case "of_result updates ZF/SF/PF" test_of_result;
    case "of_result8" test_of_result8;
    case "psw is a plain word" test_word_identity;
    case "pretty printing" test_pp ]
