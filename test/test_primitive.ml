let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let beats sched i =
  Ssx_devices.Heartbeat.count sched.Ssos.Primitive_sched.heartbeats.(i)

let test_round_runs_all_processes () =
  let sched = Ssos.Primitive_sched.build () in
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:10_000;
  for i = 0 to sched.Ssos.Primitive_sched.n - 1 do
    check_bool (Printf.sprintf "process %d ran" i) true (beats sched i > 0)
  done

let test_exact_fairness () =
  (* Theorem 5.1: one execution per round, for every process. *)
  let sched = Ssos.Primitive_sched.build () in
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:50_000;
  let counts = Array.init sched.Ssos.Primitive_sched.n (beats sched) in
  let min_count = Array.fold_left min max_int counts in
  let max_count = Array.fold_left max 0 counts in
  check_bool "spread at most one round" true (max_count - min_count <= 1)

let test_counters_strictly_increment () =
  let sched = Ssos.Primitive_sched.build () in
  Ssx.Machine.run sched.Ssos.Primitive_sched.machine ~ticks:20_000;
  Array.iteri
    (fun i hb ->
      List.iteri
        (fun j s ->
          check_int
            (Printf.sprintf "process %d beat %d" i j)
            (j + 1) s.Ssx_devices.Heartbeat.value)
        (Ssx_devices.Heartbeat.samples hb))
    sched.Ssos.Primitive_sched.heartbeats

let test_bundle_fill () =
  let bundle = Ssos.Primitive_sched.bundle ~n:4 in
  check_int "region-sized" Ssos.Primitive_sched.region_size (String.length bundle);
  (* Decoding from the code end onward must reach a jump home. *)
  let code_len = (Ssos.Primitive_sched.build ~n:4 ()).Ssos.Primitive_sched.code_len in
  let decoded, _ = Ssx.Codec.decode_bytes bundle ~pos:code_len in
  check_bool "filler jumps to the entry" true
    (decoded = Ssx.Instruction.Jmp Ssos.Primitive_sched.region_offset)

let test_ip_corruption_recovers () =
  let sched = Ssos.Primitive_sched.build () in
  let machine = sched.Ssos.Primitive_sched.machine in
  Ssx.Machine.run machine ~ticks:5_000;
  (* Throw ip into the filler area. *)
  (Helpers.regs machine).Ssx.Registers.ip <-
    Ssos.Primitive_sched.region_offset + Ssos.Primitive_sched.region_size - 7;
  let before = Array.init 4 (beats sched) in
  Ssx.Machine.run machine ~ticks:5_000;
  Array.iteri
    (fun i b ->
      check_bool (Printf.sprintf "process %d resumed" i) true (beats sched i > b))
    before

let test_misdecode_recovers_via_exception () =
  let sched = Ssos.Primitive_sched.build () in
  let machine = sched.Ssos.Primitive_sched.machine in
  Ssx.Machine.run machine ~ticks:5_000;
  (* Land mid-instruction: offset 1 of the round decodes garbage. *)
  (Helpers.regs machine).Ssx.Registers.ip <- Ssos.Primitive_sched.region_offset + 1;
  let before = Array.init 4 (beats sched) in
  Ssx.Machine.run machine ~ticks:10_000;
  Array.iteri
    (fun i b ->
      check_bool (Printf.sprintf "process %d resumed" i) true (beats sched i > b))
    before

let test_wild_cs_recovers () =
  let sched = Ssos.Primitive_sched.build () in
  let machine = sched.Ssos.Primitive_sched.machine in
  Ssx.Machine.run machine ~ticks:5_000;
  (Helpers.regs machine).Ssx.Registers.cs <- 0x4567;
  (Helpers.regs machine).Ssx.Registers.ip <- 0x0123;
  let before = Array.init 4 (beats sched) in
  Ssx.Machine.run machine ~ticks:10_000;
  Array.iteri
    (fun i b ->
      check_bool (Printf.sprintf "process %d resumed" i) true (beats sched i > b))
    before

let test_data_faults_one_violation_only () =
  (* A corrupted counter yields a single spec violation then legality:
     each process is self-stabilizing. *)
  let sched = Ssos.Primitive_sched.build () in
  let machine = sched.Ssos.Primitive_sched.machine in
  Ssx.Machine.run machine ~ticks:5_000;
  Ssx.Memory.write_word (Ssx.Machine.memory machine)
    (Ssos.Process.data_segment 2 lsl 4)
    0x9999;
  Ssx.Machine.run machine ~ticks:5_000;
  let spec = Ssx_stab.Convergence.counter_spec ~max_gap:1_000 ~window:100 () in
  let violations =
    Ssx_stab.Convergence.violation_count ~spec
      ~samples:(Ssx_devices.Heartbeat.samples sched.Ssos.Primitive_sched.heartbeats.(2))
      ~end_tick:(Ssx.Machine.ticks machine)
  in
  check_int "exactly one violation" 1 violations

let test_bundle_sources_shown () =
  let source = Ssos.Primitive_sched.bundle_source ~n:2 in
  check_bool "mentions both processes" true
    (Astring_contains.contains source "process 0"
    && Astring_contains.contains source "process 1")

let suite =
  [ case "a round runs every process" test_round_runs_all_processes;
    case "exact fairness (theorem 5.1)" test_exact_fairness;
    case "counters strictly increment" test_counters_strictly_increment;
    case "bundle fill" test_bundle_fill;
    case "ip corruption recovers" test_ip_corruption_recovers;
    case "mis-decode recovers via the exception path"
      test_misdecode_recovers_via_exception;
    case "wild cs recovers" test_wild_cs_recovers;
    case "data faults cost one violation" test_data_faults_one_violation_only;
    case "bundle source generation" test_bundle_sources_shown ]
