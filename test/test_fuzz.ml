(* Tier-1 coverage of lib/fuzz: a fixed-seed differential smoke budget,
   campaign determinism across job counts, snapshot round-trips over
   fuzz-generated machines, interrupt-schedule replay determinism, the
   shrinker, the reproducer format, and replay of every checked-in
   regression under test/regressions/. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool
let check_string = Helpers.check_string
module FL = Ssx_fuzz.Fuzz_loop
module Gen = Ssx_fuzz.Gen
module Rng = Ssx_faults.Rng

(* A quick fixed-seed differential budget.  The full 2,000-program
   budget lives behind the @fuzz-smoke alias; this keeps a smaller
   always-on slice inside `dune runtest` so a semantics regression
   fails the ordinary test run too. *)
let test_differential_smoke () =
  let summary = FL.run ~jobs:2 ~seed:11L ~iters:300 () in
  check_int "trials executed" 300 summary.FL.programs;
  check_bool "ticks executed" true (summary.FL.total_ticks > 0);
  check_bool "coverage lit" true (summary.FL.coverage_points > 0);
  check_bool "corpus grew" true (summary.FL.corpus_size > 0);
  (match summary.FL.divergences with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "unexpected divergence: %a" FL.pp_divergence d)

(* Shard seeds derive from the campaign seed alone and Pool returns
   results in task-index order, so a campaign is a pure function of
   (seed, iters) — the jobs knob must not leak into the summary. *)
let test_campaign_jobs_determinism () =
  let run jobs = FL.run ~jobs ~seed:23L ~iters:200 () in
  let s1 = run 1 and s4 = run 4 in
  check_bool "jobs:1 = jobs:4" true (s1 = s4)

(* The machine-side block compiler must not leak into campaign results
   either: summaries are bit-identical with the compiler on or off,
   whatever the jobs knob says. *)
let test_campaign_jit_determinism () =
  let run ~jit jobs = FL.run ~jobs ~jit ~seed:29L ~iters:200 () in
  let reference = run ~jit:false 1 in
  check_bool "jit:1 = interp:1" true (run ~jit:true 1 = reference);
  check_bool "jit:4 = interp:1" true (run ~jit:true 4 = reference);
  check_bool "interp:4 = interp:1" true (run ~jit:false 4 = reference)

(* Snapshot round-trip over fuzz-shaped machines: capture, perturb,
   restore, re-capture — digests must be bit-exact.  Every third
   machine carries a NIC with pending RX data so device queues go
   through the same resettable machinery. *)
let test_snapshot_roundtrip_fuzzed () =
  let rng = Rng.create 0xF00DL in
  for i = 0 to 49 do
    let program = Gen.generate rng in
    let machine = FL.prepare_machine program in
    if i mod 3 = 0 then begin
      let nic = Ssos_net.Nic.create ~rx_irq:3 () in
      Ssos_net.Nic.attach nic machine;
      ignore (Ssos_net.Nic.deliver nic 0xBEEF);
      ignore (Ssos_net.Nic.deliver nic (i land 0xFFFF))
    end;
    Ssx.Machine.run machine ~ticks:(min 64 program.Gen.steps);
    let before = Ssx.Snapshot.capture machine in
    Ssx.Machine.run machine ~ticks:32;
    Ssx.Snapshot.restore before machine;
    let after = Ssx.Snapshot.capture machine in
    if not (Ssx.Snapshot.equal before after) then
      Alcotest.failf "machine %d: digest %s became %s after restore" i
        (Ssx.Snapshot.digest before)
        (Ssx.Snapshot.digest after)
  done

(* Memory.restore_image rewrites all of RAM behind the decode cache's
   back, so it must drop the cache wholesale rather than invalidate a
   byte at a time. *)
let test_restore_image_clears_decode_cache () =
  let program = { Gen.code = "\x70\x70\x70\x71"; schedule = []; steps = 8 } in
  (* Block compiler off: this test asserts decode-cache fill counts,
     which only the plain interpreter path populates. *)
  let machine = FL.prepare_machine ~jit:false program in
  Ssx.Machine.run machine ~ticks:2;
  let cache =
    match Ssx.Machine.decode_cache machine with
    | Some c -> c
    | None -> Alcotest.fail "expected a decode cache"
  in
  check_int "warm entry" 1
    (Ssx.Decode_cache.cached_len cache FL.trial_code_base);
  Ssx.Memory.restore_image (Ssx.Machine.memory machine)
    (String.make Ssx.Memory.size '\000');
  check_int "entry dropped" 0
    (Ssx.Decode_cache.cached_len cache FL.trial_code_base)

(* Replay one program with its NMI schedule and digest the trace. *)
let trace_digest ~decode_cache ~jit program =
  let machine = FL.prepare_machine ~decode_cache ~jit program in
  let trace = Ssx.Trace.attach ~capacity:256 machine in
  let schedule = ref program.Gen.schedule in
  for tick = 0 to program.Gen.steps - 1 do
    (match !schedule with
    | t :: rest when t = tick ->
        Ssx.Cpu.raise_nmi (Ssx.Machine.cpu machine);
        schedule := rest
    | _ -> ());
    ignore (Ssx.Machine.tick machine)
  done;
  Digest.to_hex (Digest.string (Ssx.Trace.to_json trace))

(* Same program + same NMI tick schedule must produce the same trace
   whether or not the decode cache is installed, and whether the
   replay runs on one worker or four. *)
let test_interrupt_schedule_determinism () =
  let rng = Rng.create 0xCAFEL in
  let rec with_schedule () =
    let p = Gen.generate rng in
    if p.Gen.schedule = [] then with_schedule () else p
  in
  let program = with_schedule () in
  let reference = trace_digest ~decode_cache:true ~jit:false program in
  check_string "decode cache off matches" reference
    (trace_digest ~decode_cache:false ~jit:false program);
  check_string "block compiler on matches" reference
    (trace_digest ~decode_cache:true ~jit:true program);
  let replay jobs =
    Pool.run ~oversubscribe:true ~jobs 6 (fun _ ->
        trace_digest ~decode_cache:true ~jit:false program)
  in
  Array.iter (check_string "jobs:1 replay matches" reference) (replay 1);
  Array.iter (check_string "jobs:4 replay matches" reference) (replay 4)

(* The shrinker against a synthetic predicate: a single interesting
   byte buried in nops must survive minimisation, and nearly
   everything else must go. *)
let test_shrink_minimises () =
  let code =
    String.concat ""
      [ String.make 20 '\x70'; "\x2a"; String.make 20 '\x70' ]
  in
  let program = { Gen.code; schedule = [ 1; 5; 9 ]; steps = 200 } in
  let reproduces p = String.contains p.Gen.code '\x2a' in
  let shrunk = FL.shrink ~reproduces program in
  check_bool "still reproduces" true (reproduces shrunk);
  check_bool "code minimised" true (String.length shrunk.Gen.code <= 4);
  check_bool "schedule thinned" true
    (List.length shrunk.Gen.schedule <= List.length program.Gen.schedule)

(* Reproducer text must carry everything a trial needs: parsing it
   back (through the real assembler) recovers code, schedule and tick
   budget byte-exactly. *)
let test_reproducer_roundtrip () =
  let program =
    { Gen.code = "\x01\x00\x23\x00\xff\x70\x71\x10\x01\x34\x12";
      schedule = [ 3; 17; 90 ];
      steps = 250 }
  in
  let divergence =
    { FL.program; original = program; seed = 0xDEADBEEFL; shard = 2;
      iter = 41; tick = 7; detail = "synthetic round-trip fixture" }
  in
  let text = FL.reproducer_text divergence in
  let parsed = FL.program_of_reproducer text in
  check_string "code" program.Gen.code parsed.Gen.code;
  check_int "steps" program.Gen.steps parsed.Gen.steps;
  check_bool "schedule" true (program.Gen.schedule = parsed.Gen.schedule)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every checked-in reproducer replays without divergence. *)
let test_regressions_replay () =
  let dir = "regressions" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ssx")
    |> List.sort compare
  in
  check_bool "regression corpus present" true (files <> []);
  List.iter
    (fun file ->
      let text = read_file (Filename.concat dir file) in
      List.iter
        (fun jit ->
          match FL.replay ~jit text with
          | None -> ()
          | Some (tick, detail) ->
              Alcotest.failf "%s (jit:%b) diverges at tick %d: %s" file jit
                tick detail)
        [ false; true ])
    files

let test_fuzz_obs_invariance () =
  (* Metrics publish from the assembled summary, after the campaign:
     identical results with instrumentation on or off, and the gauges
     mirror the summary they were derived from. *)
  let module Obs = Ssos_obs.Obs in
  Obs.reset ();
  Obs.set_enabled false;
  let off = FL.run ~jobs:2 ~seed:5L ~iters:80 () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let on_ = FL.run ~jobs:2 ~seed:5L ~iters:80 () in
      check_bool "summary identical with metrics on" true (off = on_);
      let rows = (Obs.snapshot ()).Obs.rows in
      let value name =
        match List.find_opt (fun (r : Obs.row) -> r.Obs.name = name) rows with
        | Some { Obs.value = Obs.Counter n; _ } -> float_of_int n
        | Some { Obs.value = Obs.Gauge v; _ } -> v
        | Some _ | None -> Alcotest.failf "no metric %s" name
      in
      check_bool "programs counter" true
        (value "fuzz.programs" = float_of_int on_.FL.programs);
      check_bool "ticks counter" true
        (value "fuzz.ticks" = float_of_int on_.FL.total_ticks);
      check_bool "corpus gauge" true
        (value "fuzz.corpus-size" = float_of_int on_.FL.corpus_size);
      check_bool "coverage gauge" true
        (value "fuzz.coverage-points" = float_of_int on_.FL.coverage_points))

let suite =
  [ case "fixed-seed differential smoke" test_differential_smoke;
    case "campaign is jobs-independent" test_campaign_jobs_determinism;
    case "campaign is jit-independent" test_campaign_jit_determinism;
    case "snapshot round-trip over fuzzed machines"
      test_snapshot_roundtrip_fuzzed;
    case "restore_image clears the decode cache"
      test_restore_image_clears_decode_cache;
    case "interrupt schedule replays deterministically"
      test_interrupt_schedule_determinism;
    case "shrinker minimises against a predicate" test_shrink_minimises;
    case "reproducer text round-trips" test_reproducer_roundtrip;
    case "checked-in regressions replay clean" test_regressions_replay;
    case "campaign is bit-identical with metrics on or off"
      test_fuzz_obs_invariance ]
