let case = Helpers.case
let check_bool = Helpers.check_bool

let preempt_count system =
  Ssx.Memory.read_word
    (Ssx.Machine.memory system.Ssos.System.machine)
    Ssos.Guest.preempt_count_addr

let test_timer_preempts_the_guest () =
  let system =
    Ssos.Reinstall.build ~guest:(Ssos.Guest.preemptive_kernel ())
      ~timer_period:500 ()
  in
  Ssos.System.run system ~ticks:40_000;
  check_bool "many preemptions" true (preempt_count system > 20);
  check_bool "main loop still beats" true
    (Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat > 50)

let test_preemptions_interleave_with_recovery () =
  (* A reinstall resets the preemption counter with the rest of the
     data, then preemptions resume: the maskable path and the recovery
     path coexist. *)
  let system =
    Ssos.Reinstall.build ~guest:(Ssos.Guest.preemptive_kernel ())
      ~watchdog_period:10_000 ~timer_period:500 ()
  in
  Ssos.System.run system ~ticks:9_000;
  let before = preempt_count system in
  check_bool "preempting before the reinstall" true (before > 5);
  (* Cross the tick-10000 watchdog reinstall (the handler itself takes
     ~4.1k ticks); shortly after it the counter has been reset with the
     rest of the data and only a couple of fresh preemptions exist. *)
  Ssos.System.run system ~ticks:6_500;
  let after = preempt_count system in
  check_bool "counter was reset by the reinstall" true (after < before);
  Ssos.System.run system ~ticks:3_000;
  check_bool "and it is growing again" true (preempt_count system > after)

let test_recovers_with_timer_running () =
  let system =
    Ssos.Reinstall.build ~guest:(Ssos.Guest.preemptive_kernel ())
      ~timer_period:500 ()
  in
  let rng = Ssx_faults.Rng.create 31L in
  Ssos.System.run system ~ticks:30_000;
  ignore
    (Ssx_faults.Injector.inject_now
       (Ssos.System.fault_system system)
       ~rng ~space:Ssos.System.default_fault_space 40);
  Ssos.System.run system ~ticks:200_000;
  let spec = Ssos.Reinstall.weak_spec () in
  check_bool "recovered with the timer active" true
    (Ssx_stab.Convergence.converged
       (Ssx_stab.Convergence.judge ~spec
          ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
          ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)))

let test_reset_wired_watchdog_recovers () =
  (* §2: "in the first two schemes it may trigger the reset pin
     instead" — reboot through the reset vector, which also reinstalls. *)
  let system =
    Ssos.Reinstall.build ~wiring:Ssos.Reinstall.Reset_wired
      ~watchdog_period:20_000 ()
  in
  Ssos.System.run system ~ticks:30_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  for i = 0 to Ssos.Layout.os_image_size - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + i) 0xEE
  done;
  Ssos.System.run system ~ticks:120_000;
  let spec = Ssos.Reinstall.weak_spec () in
  check_bool "reset wiring recovers too" true
    (Ssx_stab.Convergence.converged
       (Ssx_stab.Convergence.judge ~spec
          ~samples:(Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
          ~end_tick:(Ssx.Machine.ticks system.Ssos.System.machine)))

let test_reset_wired_periodicity () =
  let system =
    Ssos.Reinstall.build ~wiring:Ssos.Reinstall.Reset_wired
      ~watchdog_period:10_000 ()
  in
  Ssos.System.run system ~ticks:45_000;
  let restarts =
    List.length
      (List.filter
         (fun s -> s.Ssx_devices.Heartbeat.value = 1)
         (Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat))
  in
  check_bool "several reboots" true (restarts >= 3)

let test_masked_interrupts_stay_masked () =
  (* A guest that never executes sti never sees the timer: the request
     stays pinned on the pending-interrupt slot and the guest's
     behaviour is unaffected. *)
  let system =
    Ssos.Reinstall.build ~guest:(Ssos.Guest.task_kernel ()) ~timer_period:500 ()
  in
  Ssos.System.run system ~ticks:30_000;
  check_bool "interrupt pending but never delivered" true
    ((Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.intr
    = Some Ssos.Layout.timer_vector);
  check_bool "guest undisturbed" true
    (Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat > 100)

let suite =
  [ case "timer preempts the guest" test_timer_preempts_the_guest;
    case "preemption and recovery coexist" test_preemptions_interleave_with_recovery;
    case "recovers with the timer running" test_recovers_with_timer_running;
    case "reset-wired watchdog recovers" test_reset_wired_watchdog_recovers;
    case "reset-wired watchdog reboots periodically" test_reset_wired_periodicity;
    case "IF masks the timer" test_masked_interrupts_stay_masked ]
