let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let beats system = Ssx_devices.Heartbeat.count system.Ssos.System.heartbeat

let alive system ~within =
  let now = Ssx.Machine.ticks system.Ssos.System.machine in
  match Ssx_devices.Heartbeat.last system.Ssos.System.heartbeat with
  | Some s -> now - s.Ssx_devices.Heartbeat.tick < within
  | None -> false

let test_none_runs_clean () =
  let system = Ssos.Baselines.none () in
  Ssos.System.run system ~ticks:50_000;
  check_bool "beating" true (beats system > 50)

let test_none_halts_on_exception () =
  let system = Ssos.Baselines.none () in
  Ssos.System.run system ~ticks:10_000;
  (* Send it into zeroed RAM: invalid opcode -> halt handler. *)
  let regs = (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- 0x6000;
  regs.Ssx.Registers.ip <- 0;
  Ssos.System.run system ~ticks:10_000;
  check_bool "halted forever" true (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.halted

let test_reset_only_reboots () =
  let system = Ssos.Baselines.reset_only ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:50_000;
  (* Reboots reset the registers and restart the guest, whose data
     survives in RAM: the counter does NOT restart from 1. *)
  check_bool "beating" true (beats system > 50);
  let restarts =
    List.filter
      (fun s -> s.Ssx_devices.Heartbeat.value = 1)
      (Ssx_devices.Heartbeat.samples system.Ssos.System.heartbeat)
  in
  check_int "only the boot beat is 1" 1 (List.length restarts)

let test_reset_only_cannot_fix_code () =
  let system = Ssos.Baselines.reset_only ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:10_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  (* Zero the guest's whole code: no reboot will ever repair it. *)
  for i = 0 to Ssos.Layout.os_data_offset - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + i) 0
  done;
  Ssos.System.run system ~ticks:200_000;
  check_bool "dead despite reboots" false (alive system ~within:50_000)

let test_checkpoint_takes_checkpoints () =
  let system = Ssos.Baselines.checkpoint ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:25_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  (* After a progress NMI, the checkpoint area mirrors the OS image. *)
  let image =
    Ssx.Memory.dump mem ~base:(Ssos.Layout.os_segment lsl 4) ~len:Ssos.Layout.os_data_offset
  in
  let ckpt =
    Ssx.Memory.dump mem
      ~base:(Ssos.Layout.checkpoint_segment lsl 4)
      ~len:Ssos.Layout.os_data_offset
  in
  Helpers.check_string "checkpointed code matches" image ckpt;
  check_bool "meta word recorded" true
    (Ssx.Memory.read_word mem
       ((Ssos.Layout.checkpoint_segment lsl 4) + Ssos.Layout.os_image_size)
    > 0)

let test_checkpoint_rolls_back_on_stall () =
  let system = Ssos.Baselines.checkpoint ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:25_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  (* Break the code so the guest wedges; the next pulses must roll back
     to the checkpointed image and restart. *)
  Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + 1) 0xFF;
  let regs = (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.regs in
  regs.Ssx.Registers.cs <- Ssos.Layout.os_segment;
  regs.Ssx.Registers.ip <- 0;
  Ssos.System.run system ~ticks:100_000;
  check_bool "recovered from the checkpoint" true (alive system ~within:30_000)

let test_checkpoint_defeated_by_ckpt_corruption () =
  let system = Ssos.Baselines.checkpoint ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:25_000;
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  (* Corrupt both the running code and the checkpoint copy: rollback
     reinstates garbage, and no golden source exists. *)
  for i = 0 to Ssos.Layout.os_data_offset - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.os_segment lsl 4) + i) 0;
    Ssx.Memory.write_byte mem ((Ssos.Layout.checkpoint_segment lsl 4) + i) 0
  done;
  Ssos.System.run system ~ticks:200_000;
  check_bool "never recovers" false (alive system ~within:50_000)

let test_petted_watchdog_never_fires_when_healthy () =
  let system = Ssos.Baselines.petted_watchdog ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:60_000;
  (match system.Ssos.System.watchdog with
  | Some wd -> check_int "never fired" 0 (Ssx_devices.Watchdog.fired_count wd)
  | None -> Alcotest.fail "watchdog expected");
  check_bool "guest healthy" true (beats system > 100)

let test_petted_watchdog_rescues_a_dead_guest () =
  let system = Ssos.Baselines.petted_watchdog ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:30_000;
  (* Halt it outright: kicking stops, the watchdog fires, reinstall. *)
  (Ssx.Machine.cpu system.Ssos.System.machine).Ssx.Cpu.halted <- true;
  Ssos.System.run system ~ticks:60_000;
  check_bool "rebooted and beating" true (alive system ~within:15_000)

let test_petted_watchdog_blind_to_silent_wedge () =
  let system = Ssos.Baselines.petted_watchdog ~watchdog_period:10_000 () in
  Ssos.System.run system ~ticks:30_000;
  (* Nop out the heartbeat write: the loop still runs and still kicks. *)
  let mem = Ssx.Machine.memory system.Ssos.System.machine in
  let base = Ssos.Layout.os_segment lsl 4 in
  let rec hunt i =
    if
      Ssx.Memory.read_byte mem (base + i) = 0x6A
      && Ssx.Memory.read_byte mem (base + i + 1) = Ssos.Layout.heartbeat_port
    then begin
      Ssx.Memory.write_byte mem (base + i) 0x70;
      Ssx.Memory.write_byte mem (base + i + 1) 0x70
    end
    else hunt (i + 1)
  in
  hunt 0;
  Ssos.System.run system ~ticks:120_000;
  check_bool "wedged forever: the watchdog is being kicked" false
    (alive system ~within:60_000);
  (match system.Ssos.System.watchdog with
  | Some wd -> check_int "never fired" 0 (Ssx_devices.Watchdog.fired_count wd)
  | None -> Alcotest.fail "watchdog expected")

let suite =
  [ case "no-recovery baseline runs clean" test_none_runs_clean;
    case "petted watchdog stays quiet when healthy"
      test_petted_watchdog_never_fires_when_healthy;
    case "petted watchdog rescues a dead guest"
      test_petted_watchdog_rescues_a_dead_guest;
    case "petted watchdog is blind to silent wedges"
      test_petted_watchdog_blind_to_silent_wedge;
    case "no-recovery baseline halts on exceptions" test_none_halts_on_exception;
    case "reset-only reboots preserve RAM" test_reset_only_reboots;
    case "reset-only cannot repair code" test_reset_only_cannot_fix_code;
    case "checkpoint handler takes checkpoints" test_checkpoint_takes_checkpoints;
    case "checkpoint rolls back on stall" test_checkpoint_rolls_back_on_stall;
    case "checkpoint defeated by checkpoint-area corruption"
      test_checkpoint_defeated_by_ckpt_corruption ]
