let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let beats sched i = Ssx_devices.Heartbeat.count sched.Ssos.Sched.heartbeats.(i)

let all_beating sched ~within =
  let now = Ssx.Machine.ticks sched.Ssos.Sched.machine in
  Array.for_all
    (fun hb ->
      match Ssx_devices.Heartbeat.last hb with
      | Some s -> now - s.Ssx_devices.Heartbeat.tick < within
      | None -> false)
    sched.Ssos.Sched.heartbeats

let test_bootstraps_from_zeroed_state () =
  (* No initialisation exists: the scheduler starts from all-zero soft
     state and the first NMI launches process work. *)
  let sched = Ssos.Sched.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:150_000;
  for i = 0 to sched.Ssos.Sched.n - 1 do
    check_bool (Printf.sprintf "process %d ran" i) true (beats sched i > 0)
  done

let test_round_robin_fairness () =
  let sched = Ssos.Sched.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:800_000;
  let counts = Array.init sched.Ssos.Sched.n (beats sched) in
  let min_count = Array.fold_left min max_int counts in
  let max_count = Array.fold_left max 0 counts in
  check_bool "no process starves" true (min_count > 0);
  (* Slot rounding allows at most a factor ~(slots+1)/slots. *)
  check_bool "fair within slot rounding" true
    (float_of_int max_count /. float_of_int min_count < 2.0)

let test_state_preserved_across_switches () =
  (* Lemma 5.4: context switching preserves each process's computation,
     so counters equal the number of beats (no lost increments). *)
  let sched = Ssos.Sched.build () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  Array.iteri
    (fun i hb ->
      match Ssx_devices.Heartbeat.samples hb with
      | [] -> Alcotest.failf "process %d never beat" i
      | samples ->
        List.iteri
          (fun j s ->
            check_int
              (Printf.sprintf "process %d beat %d" i j)
              (j + 1) s.Ssx_devices.Heartbeat.value)
          samples)
    sched.Ssos.Sched.heartbeats

let test_process_index_masked () =
  let sched = Ssos.Sched.build () in
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  Ssx.Memory.write_word mem Ssos.Sched.process_index_addr 0xFFFF;
  (* After the next NMI the index is used masked and stored masked. *)
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:(2 * Ssos.Sched.default_watchdog_period);
  check_bool "index back under n" true
    (Ssx.Memory.read_word mem Ssos.Sched.process_index_addr < 4)

let test_record_cs_validated () =
  let sched = Ssos.Sched.build () in
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  (* Corrupt the stored cs of process 2's record. *)
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 2 + 2) 0x8A8A;
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  check_int "record cs restored to the limit" (Ssos.Layout.proc_segment 2)
    (Ssx.Memory.read_word mem (Ssos.Sched.process_record_addr 2 + 2));
  check_bool "all processes alive" true (all_beating sched ~within:200_000)

let test_record_ip_masked () =
  let sched = Ssos.Sched.build () in
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  Ssx.Memory.write_word mem (Ssos.Sched.process_record_addr 1 + 4) 0xFFFF;
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  check_bool "all processes alive after ip corruption" true
    (all_beating sched ~within:200_000)

let test_refresh_restores_code () =
  let sched = Ssos.Sched.build ~refresh:true () in
  let mem = Ssx.Machine.memory sched.Ssos.Sched.machine in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:100_000;
  (* Trash process 3's whole RAM code window. *)
  for i = 0 to Ssos.Layout.proc_image_size - 1 do
    Ssx.Memory.write_byte mem ((Ssos.Layout.proc_segment 3 lsl 4) + i) 0x00
  done;
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  let golden = Ssos.Process.assemble_image sched.Ssos.Sched.processes.(3) in
  Helpers.check_string "window matches the golden image" golden
    (Ssx.Memory.dump mem
       ~base:(Ssos.Layout.proc_segment 3 lsl 4)
       ~len:Ssos.Layout.proc_image_size);
  check_bool "process 3 alive again" true (all_beating sched ~within:200_000)

let test_scrambled_processor_recovers () =
  let rng = Ssx_faults.Rng.create 4242L in
  for _ = 1 to 5 do
    let sched = Ssos.Sched.build () in
    let cpu = Ssx.Machine.cpu sched.Ssos.Sched.machine in
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:50_000;
    let regs = cpu.Ssx.Cpu.regs in
    let word () = Ssx_faults.Rng.int rng 0x10000 in
    List.iter (fun r -> Ssx.Registers.set16 regs r (word ())) Ssx.Registers.all_reg16;
    List.iter (fun r -> Ssx.Registers.set_sreg regs r (word ())) Ssx.Registers.all_sreg;
    regs.Ssx.Registers.ip <- word ();
    regs.Ssx.Registers.psw <- word ();
    cpu.Ssx.Cpu.halted <- Ssx_faults.Rng.bool rng;
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:300_000;
    check_bool "recovered" true (all_beating sched ~within:150_000)
  done

let test_figures_source_assembles_and_runs () =
  (* The verbatim Figures 2-5 variant (jb check, 0xFFF0 mask, no
     refresh) must still schedule correctly in the fault-free case. *)
  let sched =
    Ssos.Sched.build ~cs_check:Ssos.Sched.Paper_jb ~ip_mask:Ssos.Sched.Paper_mask
      ~refresh:false ()
  in
  (* The published jb comparison accepts the zeroed record's cs = 0, so
     it cannot bootstrap on its own (see EXPERIMENTS.md); initialise. *)
  Ssos.Sched.initialize_records sched;
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:300_000;
  for i = 0 to sched.Ssos.Sched.n - 1 do
    check_bool (Printf.sprintf "process %d ran" i) true (beats sched i > 0)
  done

let test_shared_data_breaks_composition () =
  (* §5.2's caveat, demonstrated: "When there is a mixture of data space
     it is possible that stabilization of each process when executed
     separately may not imply stabilization when scheduled."  Two
     counter processes configured onto the SAME data word are each
     self-stabilizing in isolation, but composed they trample each
     other: every context switch makes each stream jump by the other's
     increments, so strict legality is violated forever. *)
  let clash index =
    let base = Ssos.Process.counter_process ~index in
    { base with
      Ssos.Process.symbols =
        [ ("DATA_SEG", Ssos.Process.data_segment 0) (* both on segment 0! *);
          ("MY_PORT", Ssos.Layout.process_heartbeat_port index) ] }
  in
  let sched =
    Ssos.Sched.build ~n:2 ~processes:[| clash 0; clash 1 |] ()
  in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:600_000;
  let end_tick = Ssx.Machine.ticks sched.Ssos.Sched.machine in
  let spec = Ssx_stab.Convergence.counter_spec ~max_gap:100_000 ~window:100_000 () in
  Array.iteri
    (fun i hb ->
      let violations =
        Ssx_stab.Convergence.violation_count ~spec
          ~samples:(Ssx_devices.Heartbeat.samples hb)
          ~end_tick
      in
      check_bool
        (Printf.sprintf "process %d keeps violating (one per slot)" i)
        true (violations >= 5);
      check_bool
        (Printf.sprintf "process %d never converges" i)
        false
        (Ssx_stab.Convergence.converged
           (Ssx_stab.Convergence.judge ~spec
              ~samples:(Ssx_devices.Heartbeat.samples hb)
              ~end_tick)))
    sched.Ssos.Sched.heartbeats

let test_n_must_be_power_of_two () =
  check_bool "n = 3 rejected" true
    (match
       Ssos.Sched.source ~n:3 ~cs_check:Ssos.Sched.Strict_eq
         ~ip_mask:Ssos.Sched.Windowed ~refresh:true
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_two_processes () =
  let sched = Ssos.Sched.build ~n:2 () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:150_000;
  check_bool "both ran" true (beats sched 0 > 0 && beats sched 1 > 0)

let test_eight_processes () =
  let sched = Ssos.Sched.build ~n:8 () in
  Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:400_000;
  for i = 0 to 7 do
    check_bool (Printf.sprintf "process %d ran" i) true (beats sched i > 0)
  done

let suite =
  [ case "bootstraps from all-zero soft state" test_bootstraps_from_zeroed_state;
    case "round-robin fairness (lemma 5.3)" test_round_robin_fairness;
    case "state preserved across switches (lemma 5.4)"
      test_state_preserved_across_switches;
    case "process index is masked (figure 4)" test_process_index_masked;
    case "record cs is validated (figure 5)" test_record_cs_validated;
    case "record ip is masked (figure 5)" test_record_ip_masked;
    case "refresh restores process code" test_refresh_restores_code;
    case "recovers from scrambled processors" test_scrambled_processor_recovers;
    case "the published figures 2-5 variant runs" test_figures_source_assembles_and_runs;
    case "shared data breaks composition (5.2 caveat)" test_shared_data_breaks_composition;
    case "n must be a power of two" test_n_must_be_power_of_two;
    case "two processes" test_two_processes;
    case "eight processes" test_eight_processes ]
