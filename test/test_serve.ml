(* The continuous-operation engine (lib/serve): bit-identity of the
   closed loop across shard and job counts (the DESIGN.md §4k
   argument), the full execute→observe→detect→repair→verify cycle
   under a background fault process, the open-loop workload's
   equivalence to its fixed-schedule ancestor, and the serve.* metric
   registry. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

module Engine = Ssos_serve.Engine
module Workload = Ssos_rsm.Workload

let serve ~shards ~jobs =
  Engine.serve ~nodes:5 ~rate:0.08 ~fault_rate:0.002 ~duration:1500 ~shards
    ~jobs ~seed:7L ()

(* Tentpole pin: a fixed-duration serve run is bit-identical across
   shard and job counts.  Every host-side action — fault arrivals,
   metric windows, repair pulses — lands at a quiescent epoch boundary
   where the sharded stepper's state equals the sequential stepper's,
   so neither the shard partition nor the worker-domain count can leak
   into observables. *)
let test_determinism_across_shards_and_jobs () =
  let reference = serve ~shards:1 ~jobs:1 in
  check_bool "traffic flowed" true (reference.Engine.injected > 0);
  check_bool "background faults landed" true
    (reference.Engine.fault_arrivals <> []);
  List.iter
    (fun (shards, jobs) ->
      let s = serve ~shards ~jobs in
      check_bool
        (Printf.sprintf "summary bit-identical at shards=%d jobs=%d" shards
           jobs)
        true (s = reference))
    [ (1, 4); (4, 1); (4, 4) ]

(* The closed loop, end to end: a fault process breaks a window, the
   breach outlasts the patience, the engine escalates to a reset pulse
   (the paper's reinstall-and-restart path), and the incident closes
   only after a verified-healthy window — with the SLO still met over
   the whole run. *)
let test_closed_loop_detects_and_repairs () =
  let s =
    Engine.serve ~nodes:5 ~rate:0.08 ~fault_rate:0.008 ~duration:2400
      ~seed:3L ()
  in
  check_bool "faults landed" true (s.Engine.fault_arrivals <> []);
  check_int "incident detected" 1 s.Engine.detected;
  check_int "incident repaired" 1 s.Engine.repaired;
  check_int "engine escalated to a reset pulse" 1 s.Engine.repairs;
  check_bool "every incident closed by a verified-healthy window" true
    (List.for_all
       (fun (i : Engine.incident) -> i.Engine.closed_at <> None)
       s.Engine.incidents);
  check_bool "per-cause mttr reported" true (s.Engine.mttr <> []);
  check_bool "mttr positive" true
    (List.for_all (fun (m : Engine.mttr) -> m.Engine.mean_steps > 0.) s.Engine.mttr);
  check_bool "availability held above the SLO floor" true
    (s.Engine.availability >= Engine.default_slo.Engine.availability);
  check_bool "final two-part legality re-verified" true s.Engine.final_legal;
  check_bool "slo met" true s.Engine.slo_met

(* Fault-free serve: no detector may fire (in particular the startup
   pipeline-fill transient must not read as an outage), and the run
   must end SLO-clean. *)
let test_fault_free_run_is_clean () =
  let s = Engine.serve ~nodes:5 ~rate:0.08 ~duration:1500 ~seed:7L () in
  check_bool "no arrivals" true (s.Engine.fault_arrivals = []);
  check_int "no incidents detected" 0 s.Engine.detected;
  check_int "no engine resets" 0 s.Engine.repairs;
  check_int "nothing dropped" 0 s.Engine.dropped;
  check_bool "availability near 1 (in-flight tail only)" true
    (s.Engine.availability >= 0.95);
  check_bool "slo met" true s.Engine.slo_met

(* The open-loop source performs exactly the draw sequence of the
   batch [schedule]: the same per-node streams, the same per-slot
   draws.  Two identically seeded services — one driven open-loop, one
   from a sufficiently long fixed schedule — inject the same words and
   produce the same responses, and the streaming commit counter agrees
   with the batch multiset matcher it refactors. *)
let test_open_loop_matches_schedule () =
  let steps = 1_200 in
  let drive make_workload =
    let service = Ssos_rsm.Service.build ~n:5 ~latency:2 ~seed:42L () in
    Ssos_net.Cluster.run service.Ssos_rsm.Service.cluster ~steps:600;
    let wl = make_workload service in
    Workload.discard wl;
    Workload.run wl ~steps;
    wl
  in
  let open_wl = drive (fun s -> Workload.open_loop ~rate:0.08 ~seed:9L s) in
  let fixed_wl =
    drive (fun s ->
        Workload.create s
          (Workload.schedule ~rate:0.08 ~n:5 ~slots:steps ~seed:9L ()))
  in
  check_bool "traffic flowed" true (Workload.injected open_wl > 0);
  check_int "same injections" (Workload.injected fixed_wl)
    (Workload.injected open_wl);
  check_bool "same responses" true
    (Workload.responses open_wl = Workload.responses fixed_wl);
  check_int "streaming commits equal the batch multiset matching"
    (Workload.matched open_wl)
    (Workload.committed open_wl);
  check_bool "latencies drained once, all positive" true
    (let lats = Workload.take_latencies open_wl in
     List.length lats = Workload.committed open_wl
     && List.for_all (fun l -> l > 0) lats
     && Workload.take_latencies open_wl = [])

(* The serve.* registry under --metrics: counters, the availability
   gauge and the sliding latency histogram all register, and the
   sliding histogram's quantile is served from the aggregated
   window. *)
let test_serve_metrics_registry () =
  Ssos_obs.Obs.reset ();
  Ssos_obs.Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ssos_obs.Obs.set_enabled false;
      Ssos_obs.Obs.reset ())
    (fun () ->
      let s =
        Engine.serve ~nodes:5 ~rate:0.08 ~fault_rate:0.008 ~duration:2400
          ~seed:3L ()
      in
      let snap = Ssos_obs.Obs.snapshot () in
      let find name =
        List.find_opt
          (fun (r : Ssos_obs.Obs.row) -> r.Ssos_obs.Obs.name = name)
          snap.Ssos_obs.Obs.rows
      in
      List.iter
        (fun name ->
          check_bool ("row " ^ name) true (find name <> None))
        [ "serve.injected"; "serve.committed"; "serve.incidents";
          "serve.repairs"; "serve.window-availability"; "serve.step";
          "serve.latency-steps" ];
      (match find "serve.injected" with
      | Some { Ssos_obs.Obs.value = Ssos_obs.Obs.Counter n; _ } ->
        check_int "injected counter matches the summary" s.Engine.injected n
      | _ -> Alcotest.fail "serve.injected is not a counter");
      match find "serve.latency-steps" with
      | Some { Ssos_obs.Obs.value = Ssos_obs.Obs.Histogram { count; _ }; _ } ->
        check_bool "sliding histogram observed commits" true (count > 0)
      | _ -> Alcotest.fail "serve.latency-steps is not a histogram")

let test_argument_validation () =
  let invalid name thunk =
    match thunk () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  invalid "negative duration" (fun () ->
      Engine.serve ~duration:(-1) ~seed:1L ());
  invalid "bad fault rate" (fun () ->
      Engine.serve ~fault_rate:1.5 ~duration:100 ~seed:1L ());
  invalid "bad rate" (fun () ->
      Engine.serve ~rate:(-0.1) ~duration:100 ~seed:1L ());
  invalid "zero epoch" (fun () ->
      Engine.serve ~epoch:0 ~duration:100 ~seed:1L ());
  invalid "open_loop bad rate" (fun () ->
      Workload.open_loop ~rate:2.0 ~seed:1L
        (Ssos_rsm.Service.build ~n:3 ~seed:1L ()))

let suite =
  [ case "bit-identical across shard and job counts"
      test_determinism_across_shards_and_jobs;
    case "closed loop: detect, escalate, repair, verify"
      test_closed_loop_detects_and_repairs;
    case "fault-free run stays clean" test_fault_free_run_is_clean;
    case "open loop performs the schedule's draw sequence"
      test_open_loop_matches_schedule;
    case "serve.* metric registry" test_serve_metrics_registry;
    case "argument validation" test_argument_validation ]
