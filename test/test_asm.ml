let case = Helpers.case
let check_int = Helpers.check_int

let assemble ?origin ?instr_align ?symbols source =
  Ssx_asm.Assemble.assemble ?origin ?instr_align ?symbols source

let first_instr image =
  let decoded, _ = Ssx.Codec.decode_bytes image.Ssx_asm.Assemble.bytes ~pos:0 in
  decoded

let test_simple_mov () =
  let image = assemble "mov ax, 0x1234\n" in
  Alcotest.(check bool) "decodes back" true
    (first_instr image = Ssx.Instruction.Mov_r16_imm (Ssx.Registers.AX, 0x1234))

let test_comments_and_blank_lines () =
  let image = assemble "; a comment\n\n   ; another\nnop ; trailing\n" in
  check_int "one nop" 1 (String.length image.Ssx_asm.Assemble.bytes)

let test_label_backward () =
  let image = assemble "start:\n    nop\n    jmp start\n" in
  check_int "label at zero" 0 (Ssx_asm.Assemble.symbol image "start");
  let decoded, _ = Ssx.Codec.decode_bytes image.Ssx_asm.Assemble.bytes ~pos:1 in
  Alcotest.(check bool) "jumps to zero" true (decoded = Ssx.Instruction.Jmp 0)

let test_label_forward () =
  let image = assemble "    jmp target\n    nop\ntarget:\n    hlt\n" in
  let decoded, _ = Ssx.Codec.decode_bytes image.Ssx_asm.Assemble.bytes ~pos:0 in
  check_int "forward target" 4 (Ssx_asm.Assemble.symbol image "target");
  Alcotest.(check bool) "encoded" true (decoded = Ssx.Instruction.Jmp 4)

let test_label_with_statement () =
  let image = assemble "here: nop\n" in
  check_int "label shares the line" 0 (Ssx_asm.Assemble.symbol image "here")

let test_equ_and_expressions () =
  let image =
    assemble "BASE equ 0x100\nSIZE equ BASE*2+8\n    mov ax, SIZE-1\n"
  in
  check_int "computed" 0x208 (Ssx_asm.Assemble.symbol image "size");
  Alcotest.(check bool) "used in operand" true
    (first_instr image = Ssx.Instruction.Mov_r16_imm (Ssx.Registers.AX, 0x207))

let test_expression_precedence () =
  let image = assemble "V equ 2+3*4\nW equ (2+3)*4\nX equ 1 << 4\nY equ 0xFF & 0x0F\n    nop\n" in
  check_int "mul binds tighter" 14 (Ssx_asm.Assemble.symbol image "v");
  check_int "parens" 20 (Ssx_asm.Assemble.symbol image "w");
  check_int "shift" 16 (Ssx_asm.Assemble.symbol image "x");
  check_int "and" 0x0F (Ssx_asm.Assemble.symbol image "y")

let test_org_and_origin () =
  let image = assemble ~origin:0x200 "entry:\n    nop\norg 0x210\nlate:\n    hlt\n" in
  check_int "origin honoured" 0x200 (Ssx_asm.Assemble.symbol image "entry");
  check_int "org sets location" 0x210 (Ssx_asm.Assemble.symbol image "late");
  check_int "padding emitted" 0x11 (String.length image.Ssx_asm.Assemble.bytes)

let test_org_backwards_rejected () =
  match assemble "org 0x10\nnop\norg 0x5\n" with
  | _ -> Alcotest.fail "org backwards must fail"
  | exception Ssx_asm.Ast.Error (_, _) -> ()

let test_db_dw () =
  let image = assemble "db 1, 2, 'AB', 0x3\ndw 0x1234, label\nlabel:\n" in
  let bytes = image.Ssx_asm.Assemble.bytes in
  Helpers.check_string "db bytes" "\x01\x02AB\x03" (String.sub bytes 0 5);
  check_int "dw little-endian" 0x34 (Char.code bytes.[5]);
  check_int "dw forward label" 9 (Char.code bytes.[7])

let test_times () =
  let image = assemble "times 4 nop\n" in
  check_int "repeated" 4 (String.length image.Ssx_asm.Assemble.bytes)

let test_resb () =
  let image = assemble "resb 8\nhlt\n" in
  check_int "reserved" 9 (String.length image.Ssx_asm.Assemble.bytes)

let test_align () =
  let image = assemble "nop\nalign 8\nmarker:\n    hlt\n" in
  check_int "aligned" 8 (Ssx_asm.Assemble.symbol image "marker")

let test_mem_operands () =
  let image =
    assemble
      "mov word [ss:0x100-2], ax\nmov ax, [bx+2]\nmov cx, [bx+si]\n\
       lea bx, [0x42]\nhlt\n"
  in
  let entries = Ssx_asm.Disasm.disassemble image.Ssx_asm.Assemble.bytes in
  match List.map (fun e -> e.Ssx_asm.Disasm.instruction) entries with
  | [ Ssx.Instruction.Mov_mem_r16 (m1, Ssx.Registers.AX);
      Ssx.Instruction.Mov_r16_mem (Ssx.Registers.AX, m2);
      Ssx.Instruction.Mov_r16_mem (Ssx.Registers.CX, m3);
      Ssx.Instruction.Lea (Ssx.Registers.BX, m4); Ssx.Instruction.Hlt ] ->
    check_int "ss override disp" 0xFE m1.Ssx.Instruction.disp;
    Alcotest.(check bool) "ss override" true
      (m1.Ssx.Instruction.seg_override = Some Ssx.Registers.SS);
    Alcotest.(check bool) "bx base" true
      (m2.Ssx.Instruction.base = Ssx.Instruction.Base_bx);
    check_int "disp 2" 2 m2.Ssx.Instruction.disp;
    Alcotest.(check bool) "bx+si base" true
      (m3.Ssx.Instruction.base = Ssx.Instruction.Base_bx_si);
    check_int "lea disp" 0x42 m4.Ssx.Instruction.disp
  | _ -> Alcotest.fail "unexpected disassembly"

let test_size_keywords_anywhere () =
  (* The paper writes "mov word ax, [processIndex]". *)
  let image = assemble "mov word ax, [0x10]\nmov ax, word [0x10]\n" in
  let entries = Ssx_asm.Disasm.disassemble image.Ssx_asm.Assemble.bytes in
  check_int "both parsed" 2 (List.length entries)

let test_rep_prefix () =
  let image = assemble "rep movsb\n" in
  Alcotest.(check bool) "rep" true
    (first_instr image = Ssx.Instruction.Rep (Ssx.Instruction.Movs Ssx.Instruction.Byte))

let test_far_jump_syntax () =
  let image = assemble "jmp 0x1000:0x0004\n" in
  Alcotest.(check bool) "far" true
    (first_instr image = Ssx.Instruction.Jmp_far (0x1000, 0x0004))

let test_jcc_aliases () =
  let image = assemble "target:\n    jnz target\n    jz target\n    jc target\n" in
  let entries = Ssx_asm.Disasm.disassemble image.Ssx_asm.Assemble.bytes in
  match List.map (fun e -> e.Ssx_asm.Disasm.instruction) entries with
  | [ Ssx.Instruction.Jcc (Ssx.Instruction.NE, 0);
      Ssx.Instruction.Jcc (Ssx.Instruction.E, 0);
      Ssx.Instruction.Jcc (Ssx.Instruction.B, 0) ] -> ()
  | _ -> Alcotest.fail "aliases mis-lowered"

let test_char_literal () =
  let image = assemble "mov al, 'A'\n" in
  Alcotest.(check bool) "char" true
    (first_instr image = Ssx.Instruction.Mov_r8_imm (Ssx.Registers.AL, 65))

let test_undefined_symbol_rejected () =
  match assemble "mov ax, NOWHERE\n" with
  | _ -> Alcotest.fail "must fail"
  | exception Ssx_asm.Ast.Error (line, msg) ->
    check_int "line number" 1 line;
    Alcotest.(check bool) "mentions symbol" true
      (String.length msg > 0)

let test_bad_operands_rejected () =
  List.iter
    (fun source ->
      match assemble source with
      | _ -> Alcotest.failf "should reject %S" source
      | exception Ssx_asm.Ast.Error _ -> ())
    [ "mov 5, ax\n"; "lea ax, bx\n"; "push\n"; "frobnicate ax\n";
      "mov ax,\n"; "jmp\n"; "rep nop\n"; "shl ax\n" ]

let test_external_symbols () =
  let image = assemble ~symbols:[ ("EXT", 0x99) ] "mov ax, EXT\n" in
  Alcotest.(check bool) "external constant" true
    (first_instr image = Ssx.Instruction.Mov_r16_imm (Ssx.Registers.AX, 0x99))

let test_instr_align () =
  (* With 16-byte alignment no instruction crosses a boundary, so every
     16-aligned offset decodes to the start of a real instruction. *)
  let source =
    String.concat ""
      (List.init 24 (fun i -> Printf.sprintf "mov ax, 0x%04X\nmov [0x10], ax\n" i))
  in
  let image = assemble ~instr_align:16 source in
  let bytes = image.Ssx_asm.Assemble.bytes in
  let rec scan pos =
    if pos < String.length bytes then begin
      let _, len = Ssx.Codec.decode_bytes bytes ~pos in
      Alcotest.(check bool) "no boundary crossing" true
        ((pos mod 16) + len <= 16);
      scan (pos + len)
    end
  in
  scan 0

let test_figure_sources_assemble () =
  (* The paper's artifacts must assemble. *)
  let symbols = Ssos.Rom_builder.layout_symbols in
  let fig1 = assemble ~symbols Ssos.Reinstall.figure1_source in
  Alcotest.(check bool) "figure 1 nonempty" true
    (String.length fig1.Ssx_asm.Assemble.bytes > 30);
  let sched = assemble ~symbols Ssos.Sched.figures_2_to_5_source in
  Alcotest.(check bool) "figures 2-5 nonempty" true
    (String.length sched.Ssx_asm.Assemble.bytes > 150)

let test_figure1_exact_semantics () =
  (* Spot-check the byte stream: the first instruction must be
     mov ax, OS_ROM_SEGMENT and the last iret. *)
  let image =
    assemble ~symbols:Ssos.Rom_builder.layout_symbols Ssos.Reinstall.figure1_source
  in
  let entries = Ssx_asm.Disasm.disassemble image.Ssx_asm.Assemble.bytes in
  (match entries with
  | first :: _ ->
    Alcotest.(check bool) "starts with mov ax, OS_ROM_SEGMENT" true
      (first.Ssx_asm.Disasm.instruction
      = Ssx.Instruction.Mov_r16_imm (Ssx.Registers.AX, Ssos.Layout.os_rom_segment))
  | [] -> Alcotest.fail "empty");
  match List.rev entries with
  | last :: _ ->
    Alcotest.(check bool) "ends with iret" true
      (last.Ssx_asm.Disasm.instruction = Ssx.Instruction.Iret)
  | [] -> Alcotest.fail "empty"

let test_disasm_listing () =
  let image = assemble "mov ax, 1\nhlt\n" in
  let listing = Ssx_asm.Disasm.listing image.Ssx_asm.Assemble.bytes in
  Alcotest.(check bool) "mentions mov" true
    (Astring_contains.contains listing "mov ax")

let test_disasm_symbolized () =
  let image = assemble "entry:\n    nop\nagain:\n    jmp again\n" in
  let listing =
    Ssx_asm.Disasm.listing ~symbols:image.Ssx_asm.Assemble.symbols
      image.Ssx_asm.Assemble.bytes
  in
  Alcotest.(check bool) "labels emitted" true
    (Astring_contains.contains listing "entry:"
    && Astring_contains.contains listing "again:");
  Alcotest.(check bool) "branch target annotated" true
    (Astring_contains.contains listing "; -> again")

let test_port_io_roundtrip () =
  (* The NIC guests poll and transmit through both port forms: immediate
     ports for fixed device registers and dx-named ports computed at run
     time.  Assemble every form, check the decoded instructions, and check
     that the disassembler listing reassembles to the same bytes. *)
  let source =
    "in al, 0x30\nin ax, 0x31\nout 0x32, al\nout 0x33, ax\n\
     in al, dx\nin ax, dx\nout dx, al\nout dx, ax\n"
  in
  let image = assemble source in
  let entries = Ssx_asm.Disasm.disassemble image.Ssx_asm.Assemble.bytes in
  let open Ssx.Instruction in
  (match List.map (fun e -> e.Ssx_asm.Disasm.instruction) entries with
  | [ In_ (Byte, 0x30); In_ (Word_, 0x31); Out (0x32, Byte); Out (0x33, Word_);
      In_dx Byte; In_dx Word_; Out_dx Byte; Out_dx Word_ ] -> ()
  | _ -> Alcotest.fail "port I/O forms mis-decoded");
  (* Disassembled text must reassemble to the same bytes. *)
  let printed =
    String.concat "\n"
      (List.map
         (fun e -> Ssx.Instruction.to_string e.Ssx_asm.Disasm.instruction)
         entries)
    ^ "\n"
  in
  let reassembled = assemble printed in
  Helpers.check_string "disassembly reassembles bit-exact"
    image.Ssx_asm.Assemble.bytes reassembled.Ssx_asm.Assemble.bytes

(* Printer/parser/encoder consistency: assembling the pretty-printed
   form of any instruction must reproduce its own encoding. *)
let prop_print_parse_encode =
  QCheck.Test.make ~count:500 ~name:"printed instructions reassemble to their encoding"
    Test_codec.arbitrary_instruction
    (fun instr ->
      match instr with
      | Ssx.Instruction.Invalid _ -> true (* not printable as source *)
      | _ ->
        let source = Ssx.Instruction.to_string instr ^ "\n" in
        let image = Ssx_asm.Assemble.assemble ~origin:0 source in
        let expected =
          String.init
            (List.length (Ssx.Codec.encode instr))
            (fun i -> Char.chr (List.nth (Ssx.Codec.encode instr) i))
        in
        image.Ssx_asm.Assemble.bytes = expected)

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_print_parse_encode ]
  @ [ case "simple mov" test_simple_mov;
    case "comments and blank lines" test_comments_and_blank_lines;
    case "backward label" test_label_backward;
    case "forward label" test_label_forward;
    case "label sharing a line" test_label_with_statement;
    case "equ and expressions" test_equ_and_expressions;
    case "expression precedence" test_expression_precedence;
    case "org and origin" test_org_and_origin;
    case "org backwards rejected" test_org_backwards_rejected;
    case "db and dw" test_db_dw;
    case "times" test_times;
    case "resb" test_resb;
    case "align" test_align;
    case "memory operand forms" test_mem_operands;
    case "size keywords in either position" test_size_keywords_anywhere;
    case "rep prefix" test_rep_prefix;
    case "port I/O round-trip" test_port_io_roundtrip;
    case "far jump syntax" test_far_jump_syntax;
    case "jcc aliases" test_jcc_aliases;
    case "character literals" test_char_literal;
    case "undefined symbol rejected" test_undefined_symbol_rejected;
    case "bad operands rejected" test_bad_operands_rejected;
    case "external symbols" test_external_symbols;
    case "instruction alignment mode" test_instr_align;
    case "the paper's figures assemble" test_figure_sources_assemble;
    case "figure 1 structure" test_figure1_exact_semantics;
    case "disassembler listing" test_disasm_listing;
    case "symbolized disassembly" test_disasm_symbolized ]
