(* Cross-cutting consistency properties tying the frameworks together. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

(* The §3 continue handler must hand back the interrupted register file
   untouched (it stacks and restores everything it clobbers). *)
let test_continue_preserves_registers () =
  let system = Ssos.Reinstall.build ~variant:Ssos.Reinstall.Continue () in
  Ssos.System.run system ~ticks:10_000;
  let machine = system.Ssos.System.machine in
  let cpu = Ssx.Machine.cpu machine in
  (* bx, dx, bp are unused by the heartbeat kernel: plant markers. *)
  cpu.Ssx.Cpu.regs.Ssx.Registers.bx <- 0x1234;
  cpu.Ssx.Cpu.regs.Ssx.Registers.dx <- 0x5678;
  cpu.Ssx.Cpu.regs.Ssx.Registers.bp <- 0x9ABC;
  Ssx.Cpu.raise_nmi cpu;
  let back_in_guest m =
    (Ssx.Machine.cpu m).Ssx.Cpu.regs.Ssx.Registers.cs = Ssos.Layout.os_segment
  in
  (* Step once to enter the handler, then run until the guest resumes. *)
  ignore (Ssx.Machine.tick machine);
  check_bool "entered the handler" true
    (cpu.Ssx.Cpu.regs.Ssx.Registers.cs = Ssos.Layout.rom_segment);
  (match Ssx.Machine.run_until machine ~limit:20_000 back_in_guest with
  | Some _ -> ()
  | None -> Alcotest.fail "never resumed the guest");
  check_int "bx preserved" 0x1234 cpu.Ssx.Cpu.regs.Ssx.Registers.bx;
  check_int "dx preserved" 0x5678 cpu.Ssx.Cpu.regs.Ssx.Registers.dx;
  check_int "bp preserved" 0x9ABC cpu.Ssx.Cpu.regs.Ssx.Registers.bp

(* The §5.2 scheduler, by contrast, restores the registers of the NEXT
   process from its record — a full context switch. *)
let test_sched_context_switch_isolates_registers () =
  let sched = Ssos.Sched.build ~n:2 () in
  let machine = sched.Ssos.Sched.machine in
  let cpu = Ssx.Machine.cpu machine in
  Ssx.Machine.run machine ~ticks:100_000;
  (* Plant a marker in the RUNNING process's registers; after one full
     rotation it must come back exactly (saved to and restored from its
     record), proving isolation. *)
  cpu.Ssx.Cpu.regs.Ssx.Registers.si <- 0x7E57;
  let period = Ssos.Sched.default_watchdog_period in
  Ssx.Machine.run machine ~ticks:(period / 2);
  check_bool "marker swapped out" true
    (cpu.Ssx.Cpu.regs.Ssx.Registers.si <> 0x7E57
    || cpu.Ssx.Cpu.regs.Ssx.Registers.cs = Ssos.Layout.proc_segment 0
    || cpu.Ssx.Cpu.regs.Ssx.Registers.cs = Ssos.Layout.proc_segment 1)

(* Convergence judging is internally consistent: if a trace converges at
   tick t, the suffix of samples from t onward contains no violations. *)
let gen_trace =
  QCheck.Gen.(
    let sample =
      map2
        (fun dt glitch -> (max 1 (dt mod 200), glitch))
        int (int_bound 20)
    in
    list_size (int_range 2 60) sample)

let arbitrary_trace = QCheck.make gen_trace

let build_samples steps =
  let tick = ref 0 and value = ref 0 in
  List.map
    (fun (dt, glitch) ->
      tick := !tick + dt;
      (* Mostly increment; occasionally glitch to a wild value. *)
      if glitch = 0 then value := !value + 100 else incr value;
      { Ssx_devices.Heartbeat.tick = !tick; value = !value land 0xffff })
    steps

let prop_judge_consistent =
  QCheck.Test.make ~count:300 ~name:"converged implies a violation-free suffix"
    arbitrary_trace
    (fun steps ->
      let samples = build_samples steps in
      let end_tick =
        (match List.rev samples with
        | last :: _ -> last.Ssx_devices.Heartbeat.tick
        | [] -> 0)
        + 10
      in
      let spec = Ssx_stab.Convergence.counter_spec ~max_gap:500 ~window:1 () in
      match Ssx_stab.Convergence.judge ~spec ~samples ~end_tick with
      | Ssx_stab.Convergence.Not_converged _ -> true
      | Ssx_stab.Convergence.Converged { at_tick; _ } ->
        let suffix =
          List.filter (fun s -> s.Ssx_devices.Heartbeat.tick >= at_tick) samples
        in
        (* Rebase ticks so the suffix is judged as a trace of its own
           (the whole-trace initial-gap rule does not apply mid-run). *)
        let shift =
          match suffix with
          | first :: _ -> first.Ssx_devices.Heartbeat.tick
          | [] -> at_tick
        in
        let rebased =
          List.map
            (fun s ->
              { s with Ssx_devices.Heartbeat.tick = s.Ssx_devices.Heartbeat.tick - shift })
            suffix
        in
        Ssx_stab.Convergence.violation_count ~spec ~samples:rebased
          ~end_tick:(end_tick - shift)
        = 0)

(* The disassembler covers every byte exactly once. *)
let prop_disasm_covers_all_bytes =
  QCheck.Test.make ~count:300 ~name:"disassembly partitions the byte string"
    QCheck.(string_of_size (Gen.int_range 1 64))
    (fun code ->
      let entries = Ssx_asm.Disasm.disassemble code in
      let total =
        List.fold_left
          (fun acc e -> acc + String.length e.Ssx_asm.Disasm.bytes)
          0 entries
      in
      let offsets_ok =
        let rec check expected = function
          | [] -> true
          | e :: rest ->
            e.Ssx_asm.Disasm.offset = expected
            && check (expected + String.length e.Ssx_asm.Disasm.bytes) rest
        in
        check 0 entries
      in
      total = String.length code && offsets_ok)

(* Snapshot digests commute with determinism at the system level for the
   tiny OS as well. *)
let test_sched_determinism () =
  let run () =
    let sched = Ssos.Sched.build () in
    Ssx.Machine.run sched.Ssos.Sched.machine ~ticks:150_000;
    Ssx.Snapshot.digest (Ssx.Snapshot.capture sched.Ssos.Sched.machine)
  in
  Helpers.check_string "identical" (run ()) (run ())

let suite =
  [ case "continue handler preserves registers" test_continue_preserves_registers;
    case "scheduler context switch isolates registers"
      test_sched_context_switch_isolates_registers;
    case "tiny OS runs are deterministic" test_sched_determinism ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_judge_consistent; prop_disasm_covers_all_bytes ]
