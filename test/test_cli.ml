(* Drives the installed ssos_cli binary as a subprocess: argument
   validation must reach stderr with a non-zero exit, and the global
   --metrics flag must dump a parseable registry. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool
let contains = Astring_contains.contains

(* Tests run in _build/default/test; the binary is a declared dune
   dependency one directory over. *)
let binary = "../bin/ssos_cli.exe"

let read_all channel =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf channel 1
     done
   with End_of_file -> ());
  Buffer.contents buf

(* Run the CLI with [args]; returns (exit code, stdout, stderr).
   Signals fail the test — the CLI must exit, not crash. *)
let run_cli args =
  let command = Printf.sprintf "%s %s" binary args in
  let stdout_c, stdin_c, stderr_c =
    Unix.open_process_full command (Unix.environment ())
  in
  close_out stdin_c;
  let out = read_all stdout_c in
  let err = read_all stderr_c in
  match Unix.close_process_full (stdout_c, stdin_c, stderr_c) with
  | Unix.WEXITED code -> (code, out, err)
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Alcotest.failf "ssos_cli killed by signal %d" n

let test_unknown_subcommand_rejected () =
  let code, _out, err = run_cli "frobnicate" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "names the bad command" true (contains err "frobnicate");
  check_bool "points at --help" true (contains err "--help")

let test_unknown_demo_design_rejected () =
  let code, _out, err = run_cli "demo bogus" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "invalid value on stderr" true (contains err "invalid value");
  (* The error enumerates the valid designs. *)
  check_bool "lists alternatives" true (contains err "reinstall")

let test_unknown_flag_rejected () =
  let code, _out, err = run_cli "demo --no-such-flag" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "unknown option on stderr" true (contains err "--no-such-flag")

let test_unknown_experiment_rejected () =
  let code, _out, err = run_cli "experiment T99" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "unknown experiment on stderr" true
    (contains err "unknown experiment")

(* --metrics=json after a real run: exit 0 and one JSON object per
   line, covering the machine and device layers the demo exercises. *)
let test_metrics_json_dump () =
  let code, out, _err = run_cli "demo reinstall --metrics=json" in
  check_int "exit 0" 0 code;
  let json_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
  in
  check_bool "emits JSON lines" true (json_lines <> []);
  List.iter
    (fun line ->
      check_bool "line closes its object" true
        (line.[String.length line - 1] = '}'))
    json_lines;
  let has affix = List.exists (fun l -> contains l affix) json_lines in
  check_bool "machine metrics present" true (has {|"name": "machine.ticks"|});
  check_bool "device metrics present" true (has {|"name": "device.|});
  check_bool "kinds tagged" true (has {|"kind": "counter"|})

let test_metrics_table_dump () =
  let code, out, _err = run_cli "demo reinstall --metrics" in
  check_int "exit 0" 0 code;
  check_bool "table mentions machine.ticks" true (contains out "machine.ticks")

(* serve: the closed loop completes a full detect/repair cycle and
   reports the SLO verdict in its exit status. *)
let test_serve_full_cycle () =
  let code, out, _err =
    run_cli
      "serve --fault-rate 0.004 --seed 5 --duration 1800 --require-incident"
  in
  check_int "exit 0 (SLO met, incident repaired)" 0 code;
  check_bool "per-epoch dashboard lines" true (contains out "epoch");
  check_bool "reports availability" true (contains out "availability");
  check_bool "reports an incident" true (contains out "incidents: 1 detected");
  check_bool "reports mttr" true (contains out "mttr");
  check_bool "slo met" true (contains out "SLO (availability >= 0.85): MET")

let test_serve_slo_breach_exits_nonzero () =
  let code, out, _err =
    run_cli "serve --fault-rate 0.004 --seed 11 --duration 1800 --quiet"
  in
  check_bool "non-zero exit on SLO breach" true (code <> 0);
  check_bool "breach reported" true (contains out "BREACHED")

let test_serve_require_incident_fails_fault_free () =
  let code, out, _err =
    run_cli "serve --seed 7 --duration 1200 --quiet --require-incident"
  in
  check_bool "non-zero exit without an incident" true (code <> 0);
  check_bool "explains the failure" true (contains out "none closed")

let test_serve_rejects_bad_rate () =
  let code, _out, err = run_cli "serve --fault-rate 1.5 --duration 300" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "error on stderr" true (String.length err > 0)

let suite =
  [ case "unknown subcommand is rejected" test_unknown_subcommand_rejected;
    case "unknown demo design is rejected" test_unknown_demo_design_rejected;
    case "unknown flag is rejected" test_unknown_flag_rejected;
    case "unknown experiment id is rejected" test_unknown_experiment_rejected;
    case "--metrics=json dumps a parseable registry" test_metrics_json_dump;
    case "--metrics dumps the pretty table" test_metrics_table_dump;
    case "serve completes a detect/repair cycle" test_serve_full_cycle;
    case "serve exits non-zero on SLO breach"
      test_serve_slo_breach_exits_nonzero;
    case "serve --require-incident fails on a clean run"
      test_serve_require_incident_fails_fault_free;
    case "serve rejects an invalid fault rate" test_serve_rejects_bad_rate ]
