(* Drives the installed ssos_cli binary as a subprocess: argument
   validation must reach stderr with a non-zero exit, and the global
   --metrics flag must dump a parseable registry. *)

let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool
let contains = Astring_contains.contains

(* Tests run in _build/default/test; the binary is a declared dune
   dependency one directory over. *)
let binary = "../bin/ssos_cli.exe"

let read_all channel =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf channel 1
     done
   with End_of_file -> ());
  Buffer.contents buf

(* Run the CLI with [args]; returns (exit code, stdout, stderr).
   Signals fail the test — the CLI must exit, not crash. *)
let run_cli args =
  let command = Printf.sprintf "%s %s" binary args in
  let stdout_c, stdin_c, stderr_c =
    Unix.open_process_full command (Unix.environment ())
  in
  close_out stdin_c;
  let out = read_all stdout_c in
  let err = read_all stderr_c in
  match Unix.close_process_full (stdout_c, stdin_c, stderr_c) with
  | Unix.WEXITED code -> (code, out, err)
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Alcotest.failf "ssos_cli killed by signal %d" n

let test_unknown_subcommand_rejected () =
  let code, _out, err = run_cli "frobnicate" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "names the bad command" true (contains err "frobnicate");
  check_bool "points at --help" true (contains err "--help")

let test_unknown_demo_design_rejected () =
  let code, _out, err = run_cli "demo bogus" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "invalid value on stderr" true (contains err "invalid value");
  (* The error enumerates the valid designs. *)
  check_bool "lists alternatives" true (contains err "reinstall")

let test_unknown_flag_rejected () =
  let code, _out, err = run_cli "demo --no-such-flag" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "unknown option on stderr" true (contains err "--no-such-flag")

let test_unknown_experiment_rejected () =
  let code, _out, err = run_cli "experiment T99" in
  check_bool "non-zero exit" true (code <> 0);
  check_bool "unknown experiment on stderr" true
    (contains err "unknown experiment")

(* --metrics=json after a real run: exit 0 and one JSON object per
   line, covering the machine and device layers the demo exercises. *)
let test_metrics_json_dump () =
  let code, out, _err = run_cli "demo reinstall --metrics=json" in
  check_int "exit 0" 0 code;
  let json_lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '{')
  in
  check_bool "emits JSON lines" true (json_lines <> []);
  List.iter
    (fun line ->
      check_bool "line closes its object" true
        (line.[String.length line - 1] = '}'))
    json_lines;
  let has affix = List.exists (fun l -> contains l affix) json_lines in
  check_bool "machine metrics present" true (has {|"name": "machine.ticks"|});
  check_bool "device metrics present" true (has {|"name": "device.|});
  check_bool "kinds tagged" true (has {|"kind": "counter"|})

let test_metrics_table_dump () =
  let code, out, _err = run_cli "demo reinstall --metrics" in
  check_int "exit 0" 0 code;
  check_bool "table mentions machine.ticks" true (contains out "machine.ticks")

let suite =
  [ case "unknown subcommand is rejected" test_unknown_subcommand_rejected;
    case "unknown demo design is rejected" test_unknown_demo_design_rejected;
    case "unknown flag is rejected" test_unknown_flag_rejected;
    case "unknown experiment id is rejected" test_unknown_experiment_rejected;
    case "--metrics=json dumps a parseable registry" test_metrics_json_dump;
    case "--metrics dumps the pretty table" test_metrics_table_dump ]
