let case = Helpers.case
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let module_tr = ()

let test_ring_initially_legitimate () =
  ignore module_tr;
  let ring = Ssos_algorithms.Token_ring.create ~n:5 ~k:5 in
  check_bool "one token" true (Ssos_algorithms.Token_ring.legitimate ring);
  check_int "token at machine 0" 1 (Ssos_algorithms.Token_ring.token_count ring)

let test_token_circulates () =
  let ring = Ssos_algorithms.Token_ring.create ~n:4 ~k:4 in
  let holders = ref [] in
  for _ = 1 to 8 do
    (match Ssos_algorithms.Token_ring.privileged_machines ring with
    | [ holder ] -> holders := holder :: !holders
    | _ -> Alcotest.fail "not exactly one token");
    (* Let only the privileged machine move (central daemon). *)
    let holder = List.hd !holders in
    check_bool "move taken" true (Ssos_algorithms.Token_ring.step ring holder)
  done;
  (* Every machine held the token at least once. *)
  let distinct = List.sort_uniq compare !holders in
  check_int "all machines served" 4 (List.length distinct)

let test_closure () =
  (* Steps from a legitimate configuration stay legitimate. *)
  let ring = Ssos_algorithms.Token_ring.create ~n:6 ~k:7 in
  for _ = 1 to 50 do
    ignore (Ssos_algorithms.Token_ring.step_round ring);
    check_bool "still one token" true (Ssos_algorithms.Token_ring.legitimate ring)
  done

let test_convergence_from_corruption () =
  let ring = Ssos_algorithms.Token_ring.create ~n:5 ~k:6 in
  Ssos_algorithms.Token_ring.set_state ring 1 3;
  Ssos_algorithms.Token_ring.set_state ring 3 5;
  check_bool "corrupted" true (Ssos_algorithms.Token_ring.token_count ring > 1);
  match Ssos_algorithms.Token_ring.rounds_to_stabilize ring ~max_rounds:100 with
  | Some rounds -> check_bool "stabilized quickly" true (rounds <= 100)
  | None -> Alcotest.fail "did not stabilize"

let prop_ring_converges =
  QCheck.Test.make ~count:200 ~name:"token ring converges from any state"
    (QCheck.triple (QCheck.int_range 2 8) (QCheck.int_range 0 1000) QCheck.int)
    (fun (n, salt, seed) ->
      let k = n + 1 in
      let ring = Ssos_algorithms.Token_ring.create ~n ~k in
      let rng = Ssx_faults.Rng.create (Int64.of_int (seed + salt)) in
      for i = 0 to n - 1 do
        Ssos_algorithms.Token_ring.set_state ring i (Ssx_faults.Rng.int rng k)
      done;
      (* Dijkstra's bound is O(n^2) rounds; use a safe cap. *)
      match
        Ssos_algorithms.Token_ring.rounds_to_stabilize ring ~max_rounds:(4 * n * n + 10)
      with
      | Some _ -> Ssos_algorithms.Token_ring.legitimate ring
      | None -> false)

let prop_ring_at_least_one_privilege =
  QCheck.Test.make ~count:200 ~name:"some machine is always privileged"
    (QCheck.pair (QCheck.int_range 2 8) QCheck.int)
    (fun (n, seed) ->
      let ring = Ssos_algorithms.Token_ring.create ~n ~k:(n + 1) in
      let rng = Ssx_faults.Rng.create (Int64.of_int seed) in
      for i = 0 to n - 1 do
        Ssos_algorithms.Token_ring.set_state ring i (Ssx_faults.Rng.int rng (n + 1))
      done;
      Ssos_algorithms.Token_ring.token_count ring >= 1)

let test_ring_validation () =
  check_bool "n < 2 rejected" true
    (match Ssos_algorithms.Token_ring.create ~n:1 ~k:3 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_max_finder_clean () =
  let mf = Ssos_algorithms.Max_finder.create ~inputs:[| 3; 9; 1; 4 |] in
  check_int "max known" 9 (Ssos_algorithms.Max_finder.global_max mf);
  match Ssos_algorithms.Max_finder.rounds_to_stabilize mf ~max_rounds:10 with
  | Some _ -> check_bool "legitimate" true (Ssos_algorithms.Max_finder.legitimate mf)
  | None -> Alcotest.fail "did not stabilize"

let test_max_finder_overestimate_corruption () =
  let mf = Ssos_algorithms.Max_finder.create ~inputs:[| 3; 9; 1; 4 |] in
  ignore (Ssos_algorithms.Max_finder.rounds_to_stabilize mf ~max_rounds:10);
  (* An over-estimate above every input must be flushed, not adopted. *)
  Ssos_algorithms.Max_finder.set_estimate mf 2 1_000;
  match Ssos_algorithms.Max_finder.rounds_to_stabilize mf ~max_rounds:10 with
  | Some _ ->
    check_bool "converged back to the true max" true
      (Array.for_all (fun e -> e = 9) (Ssos_algorithms.Max_finder.estimates mf))
  | None -> Alcotest.fail "did not flush the over-estimate"

let prop_max_finder_converges =
  QCheck.Test.make ~count:200 ~name:"max finder converges from any estimates"
    (QCheck.pair
       (QCheck.array_of_size (QCheck.Gen.int_range 1 10) (QCheck.int_bound 100))
       QCheck.int)
    (fun (inputs, seed) ->
      QCheck.assume (Array.length inputs > 0);
      let mf = Ssos_algorithms.Max_finder.create ~inputs in
      let rng = Ssx_faults.Rng.create (Int64.of_int seed) in
      Array.iteri
        (fun i _ ->
          Ssos_algorithms.Max_finder.set_estimate mf i (Ssx_faults.Rng.int rng 10_000))
        inputs;
      match
        Ssos_algorithms.Max_finder.rounds_to_stabilize mf
          ~max_rounds:(2 * Array.length inputs + 4)
      with
      | Some _ -> Ssos_algorithms.Max_finder.legitimate mf
      | None -> false)

let suite =
  [ case "ring starts legitimate" test_ring_initially_legitimate;
    case "the token circulates" test_token_circulates;
    case "closure of legitimate configurations" test_closure;
    case "convergence from corruption" test_convergence_from_corruption;
    case "ring validation" test_ring_validation;
    case "max finder stabilizes" test_max_finder_clean;
    case "max finder flushes over-estimates" test_max_finder_overestimate_corruption ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_ring_converges; prop_ring_at_least_one_privilege;
        prop_max_finder_converges ]
